// Package mem implements the simulated 32-bit address space: a sparse paged
// memory, and a heap allocator that places canary words at block boundaries
// and maintains the allocation map that the Heap Guard monitor consults.
//
// Two allocator behaviours are deliberate hosts for the paper's defect
// classes: freed blocks are recycled LIFO per size class *without being
// cleared* (use-after-free and uninitialized-reallocation defects, Bugzilla
// 269095/312278/320182), and out-of-bounds writes inside the mapped heap
// arena do not fault — they silently corrupt, exactly as on real hardware,
// unless Heap Guard notices a canary being overwritten.
package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// PageSize is the granularity of the sparse address space.
const PageSize = 4096

// Canary is the value Heap Guard plants at allocated-block boundaries.
const Canary uint32 = 0xFDFDFDFD

// Fault reports an access to unmapped memory. The execution environment
// converts faults into crashes (not monitor-detected failures).
type Fault struct {
	Addr  uint32
	Write bool
}

func (f *Fault) Error() string {
	kind := "read"
	if f.Write {
		kind = "write"
	}
	return fmt.Sprintf("memory fault: %s at %#x", kind, f.Addr)
}

// Memory is a sparse paged 32-bit address space.
//
// Clone produces copy-on-write clones: the clone and the original share
// page storage until one of them writes a shared page, at which point the
// writer copies just that page. A clone therefore costs one pointer per
// mapped page up front and one page copy per page actually dirtied — the
// property the snapshot/replay machinery depends on.
type Memory struct {
	pages map[uint32][]byte
	// cow marks pages whose storage is shared with a clone; they must be
	// copied before this Memory writes them. Lazily allocated: a Memory
	// that was never cloned pays nothing on the write path beyond one nil
	// check.
	cow map[uint32]struct{}

	// mu serializes Clone calls so many goroutines may clone the same
	// frozen Memory (e.g. restoring workers from one snapshot)
	// concurrently. Reads and writes are NOT synchronized: a Memory is
	// owned by one machine at a time.
	mu sync.Mutex

	cowBreaks uint64
}

// New returns an empty address space.
func New() *Memory {
	return &Memory{pages: make(map[uint32][]byte)}
}

// Clone returns a copy-on-write snapshot of the address space. Both the
// original and the clone remain writable; the first write to a shared page
// from either side copies that page. Clone is safe to call concurrently on
// the same receiver as long as no goroutine is concurrently writing it.
func (m *Memory) Clone() *Memory {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := &Memory{
		pages: make(map[uint32][]byte, len(m.pages)),
		cow:   make(map[uint32]struct{}, len(m.pages)),
	}
	if m.cow == nil {
		m.cow = make(map[uint32]struct{}, len(m.pages))
	}
	for pn, p := range m.pages {
		c.pages[pn] = p
		c.cow[pn] = struct{}{}
		m.cow[pn] = struct{}{}
	}
	return c
}

// PageCount returns the number of mapped pages.
func (m *Memory) PageCount() int { return len(m.pages) }

// CowBreaks returns how many shared pages this Memory has privatized —
// the dirty-page count a snapshot's cost is proportional to.
func (m *Memory) CowBreaks() uint64 { return m.cowBreaks }

// Map makes [addr, addr+size) accessible, zero filled.
func (m *Memory) Map(addr, size uint32) {
	if size == 0 {
		return
	}
	first := addr / PageSize
	last := (addr + size - 1) / PageSize
	for p := first; ; p++ {
		if _, ok := m.pages[p]; !ok {
			m.pages[p] = make([]byte, PageSize)
		}
		if p == last {
			break
		}
	}
}

// Mapped reports whether addr is accessible.
func (m *Memory) Mapped(addr uint32) bool {
	_, ok := m.pages[addr/PageSize]
	return ok
}

func (m *Memory) page(addr uint32, write bool) ([]byte, error) {
	pn := addr / PageSize
	p, ok := m.pages[pn]
	if !ok {
		return nil, &Fault{Addr: addr, Write: write}
	}
	if write && m.cow != nil {
		if _, shared := m.cow[pn]; shared {
			dup := make([]byte, PageSize)
			copy(dup, p)
			m.pages[pn] = dup
			delete(m.cow, pn)
			m.cowBreaks++
			p = dup
		}
	}
	return p, nil
}

// Read8 loads one byte.
func (m *Memory) Read8(addr uint32) (byte, error) {
	p, err := m.page(addr, false)
	if err != nil {
		return 0, err
	}
	return p[addr%PageSize], nil
}

// Write8 stores one byte.
func (m *Memory) Write8(addr uint32, v byte) error {
	p, err := m.page(addr, true)
	if err != nil {
		return err
	}
	p[addr%PageSize] = v
	return nil
}

// Read32 loads a little-endian 32-bit word. The word may straddle pages.
func (m *Memory) Read32(addr uint32) (uint32, error) {
	if addr%PageSize <= PageSize-4 {
		p, err := m.page(addr, false)
		if err != nil {
			return 0, err
		}
		o := addr % PageSize
		return uint32(p[o]) | uint32(p[o+1])<<8 | uint32(p[o+2])<<16 | uint32(p[o+3])<<24, nil
	}
	var v uint32
	for i := uint32(0); i < 4; i++ {
		b, err := m.Read8(addr + i)
		if err != nil {
			return 0, err
		}
		v |= uint32(b) << (8 * i)
	}
	return v, nil
}

// Write32 stores a little-endian 32-bit word.
func (m *Memory) Write32(addr uint32, v uint32) error {
	if addr%PageSize <= PageSize-4 {
		p, err := m.page(addr, true)
		if err != nil {
			return err
		}
		o := addr % PageSize
		p[o] = byte(v)
		p[o+1] = byte(v >> 8)
		p[o+2] = byte(v >> 16)
		p[o+3] = byte(v >> 24)
		return nil
	}
	for i := uint32(0); i < 4; i++ {
		if err := m.Write8(addr+i, byte(v>>(8*i))); err != nil {
			return err
		}
	}
	return nil
}

// ReadBytes copies n bytes starting at addr.
func (m *Memory) ReadBytes(addr, n uint32) ([]byte, error) {
	out := make([]byte, n)
	for i := uint32(0); i < n; i++ {
		b, err := m.Read8(addr + i)
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return out, nil
}

// WriteBytes copies b into memory starting at addr.
func (m *Memory) WriteBytes(addr uint32, b []byte) error {
	for i, v := range b {
		if err := m.Write8(addr+uint32(i), v); err != nil {
			return err
		}
	}
	return nil
}

// MarshalBinary serializes the address space: a page count followed by
// (page index, flag, data) records in ascending page order. All-zero pages
// are encoded as a flag byte only, so sparse spaces stay small on the wire.
// gob uses this automatically, which is how snapshots inside a
// replay.Recording travel between community nodes and the manager.
func (m *Memory) MarshalBinary() ([]byte, error) {
	idx := make([]uint32, 0, len(m.pages))
	for pn := range m.pages {
		idx = append(idx, pn)
	}
	sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] })
	out := make([]byte, 4, 4+len(idx)*5)
	binary.LittleEndian.PutUint32(out, uint32(len(idx)))
	var pnb [4]byte
	for _, pn := range idx {
		p := m.pages[pn]
		binary.LittleEndian.PutUint32(pnb[:], pn)
		out = append(out, pnb[:]...)
		if allZero(p) {
			out = append(out, 0)
			continue
		}
		out = append(out, 1)
		out = append(out, p...)
	}
	return out, nil
}

// UnmarshalBinary reconstructs an address space serialized by
// MarshalBinary. The result owns all its pages (no sharing).
func (m *Memory) UnmarshalBinary(b []byte) error {
	if len(b) < 4 {
		return fmt.Errorf("mem: truncated page table header: %d bytes", len(b))
	}
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	// Each page record is at least 5 bytes, so a count that cannot fit in
	// the remaining payload is corrupt. Checking before allocating keeps a
	// hostile page count (recordings arrive over the community transport)
	// from forcing a giant map allocation.
	if uint64(n)*5 > uint64(len(b)) {
		return fmt.Errorf("mem: page count %d exceeds payload (%d bytes)", n, len(b))
	}
	m.pages = make(map[uint32][]byte, n)
	m.cow = nil
	m.cowBreaks = 0
	for i := uint32(0); i < n; i++ {
		if len(b) < 5 {
			return fmt.Errorf("mem: truncated page record %d", i)
		}
		pn := binary.LittleEndian.Uint32(b)
		flag := b[4]
		b = b[5:]
		page := make([]byte, PageSize)
		if flag != 0 {
			if len(b) < PageSize {
				return fmt.Errorf("mem: truncated page data for page %#x", pn)
			}
			copy(page, b[:PageSize])
			b = b[PageSize:]
		}
		m.pages[pn] = page
	}
	return nil
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// Block is one allocated heap block in the allocation map.
type Block struct {
	Addr uint32 // first usable byte
	Size uint32 // usable size (rounded up to 4)
}

// Heap is a canary-guarded bump allocator with LIFO per-size recycling.
type Heap struct {
	mem      *Memory
	base     uint32
	limit    uint32
	brk      uint32
	blocks   []Block             // sorted by Addr
	freelist map[uint32][]uint32 // size -> LIFO of recycled block addresses
	allocs   uint64
	frees    uint64
}

// NewHeap creates a heap managing [base, base+size).
func NewHeap(m *Memory, base, size uint32) *Heap {
	return &Heap{
		mem:      m,
		base:     base,
		limit:    base + size,
		brk:      base,
		freelist: make(map[uint32][]uint32),
	}
}

// Base returns the lowest heap address.
func (h *Heap) Base() uint32 { return h.base }

// Limit returns one past the highest heap address.
func (h *Heap) Limit() uint32 { return h.limit }

// Contains reports whether addr lies inside the heap arena.
func (h *Heap) Contains(addr uint32) bool { return addr >= h.base && addr < h.limit }

// Stats returns cumulative allocation and free counts.
func (h *Heap) Stats() (allocs, frees uint64) { return h.allocs, h.frees }

func roundUp4(n uint32) uint32 { return (n + 3) &^ 3 }

// Alloc returns a block of at least size bytes, with canary words planted
// immediately before and after it. Recycled blocks are returned with their
// previous contents intact (deliberately — see the package comment).
func (h *Heap) Alloc(size uint32) (uint32, error) {
	size = roundUp4(size)
	if size == 0 {
		size = 4
	}
	h.allocs++
	if fl := h.freelist[size]; len(fl) > 0 {
		addr := fl[len(fl)-1]
		h.freelist[size] = fl[:len(fl)-1]
		h.insertBlock(Block{Addr: addr, Size: size})
		// Canaries were planted when the block was first carved and are
		// re-planted here in case the application overwrote them while
		// the block was live (a legitimate in-bounds canary-value write).
		h.plantCanaries(addr, size)
		return addr, nil
	}
	need := size + 8 // front canary + block + rear canary
	if h.brk+need > h.limit || h.brk+need < h.brk {
		return 0, fmt.Errorf("heap: out of memory: %d bytes requested", size)
	}
	start := h.brk
	h.brk += need
	h.mem.Map(start, need)
	addr := start + 4
	h.plantCanaries(addr, size)
	h.insertBlock(Block{Addr: addr, Size: size})
	return addr, nil
}

func (h *Heap) plantCanaries(addr, size uint32) {
	// The canary pages are always mapped because they were carved from brk.
	_ = h.mem.Write32(addr-4, Canary)
	_ = h.mem.Write32(addr+size, Canary)
}

func (h *Heap) insertBlock(b Block) {
	i := sort.Search(len(h.blocks), func(i int) bool { return h.blocks[i].Addr >= b.Addr })
	h.blocks = append(h.blocks, Block{})
	copy(h.blocks[i+1:], h.blocks[i:])
	h.blocks[i] = b
}

// Free releases the block at addr. Contents are not cleared. Freeing an
// address that is not a live block start is an error (the simulated
// application's defects never double-free; they free too early).
func (h *Heap) Free(addr uint32) error {
	i := sort.Search(len(h.blocks), func(i int) bool { return h.blocks[i].Addr >= addr })
	if i >= len(h.blocks) || h.blocks[i].Addr != addr {
		return fmt.Errorf("heap: free of non-allocated address %#x", addr)
	}
	size := h.blocks[i].Size
	h.blocks = append(h.blocks[:i], h.blocks[i+1:]...)
	h.freelist[size] = append(h.freelist[size], addr)
	h.frees++
	return nil
}

// Realloc allocates a new block of the requested size, copies the smaller
// of the two sizes, and frees the old block.
func (h *Heap) Realloc(addr, size uint32) (uint32, error) {
	b, ok := h.FindBlock(addr)
	if !ok || b.Addr != addr {
		return 0, fmt.Errorf("heap: realloc of non-allocated address %#x", addr)
	}
	na, err := h.Alloc(size)
	if err != nil {
		return 0, err
	}
	n := b.Size
	if size < n {
		n = size
	}
	data, err := h.mem.ReadBytes(addr, n)
	if err != nil {
		return 0, err
	}
	if err := h.mem.WriteBytes(na, data); err != nil {
		return 0, err
	}
	if err := h.Free(addr); err != nil {
		return 0, err
	}
	return na, nil
}

// FindBlock returns the allocated block containing addr, if any. This is
// the allocation-map lookup Heap Guard performs when a write target holds
// the canary value (§2.3).
func (h *Heap) FindBlock(addr uint32) (Block, bool) {
	i := sort.Search(len(h.blocks), func(i int) bool { return h.blocks[i].Addr > addr })
	if i == 0 {
		return Block{}, false
	}
	b := h.blocks[i-1]
	if addr >= b.Addr && addr < b.Addr+b.Size {
		return b, true
	}
	return Block{}, false
}

// LiveBlocks returns a copy of the allocation map, sorted by address.
func (h *Heap) LiveBlocks() []Block {
	return append([]Block(nil), h.blocks...)
}

// HeapState is a self-contained deep copy of the allocator bookkeeping —
// everything a Heap holds besides the backing Memory. All fields are
// exported so the state gob-serializes inside machine snapshots.
type HeapState struct {
	Base     uint32
	Limit    uint32
	Brk      uint32
	Blocks   []Block
	Freelist map[uint32][]uint32
	Allocs   uint64
	Frees    uint64
}

// State captures the allocator bookkeeping. The copy is deep: mutating the
// heap afterwards never changes the returned state.
func (h *Heap) State() HeapState {
	fl := make(map[uint32][]uint32, len(h.freelist))
	for size, list := range h.freelist {
		if len(list) == 0 {
			continue
		}
		fl[size] = append([]uint32(nil), list...)
	}
	return HeapState{
		Base:     h.base,
		Limit:    h.limit,
		Brk:      h.brk,
		Blocks:   append([]Block(nil), h.blocks...),
		Freelist: fl,
		Allocs:   h.allocs,
		Frees:    h.frees,
	}
}

// NewHeapFromState rebuilds an allocator over m from captured bookkeeping.
// The state is copied in, so one HeapState may seed many heaps (the replay
// farm restores every worker from the same snapshot).
func NewHeapFromState(m *Memory, s HeapState) *Heap {
	fl := make(map[uint32][]uint32, len(s.Freelist))
	for size, list := range s.Freelist {
		fl[size] = append([]uint32(nil), list...)
	}
	return &Heap{
		mem:      m,
		base:     s.Base,
		limit:    s.Limit,
		brk:      s.Brk,
		blocks:   append([]Block(nil), s.Blocks...),
		freelist: fl,
		allocs:   s.Allocs,
		frees:    s.Frees,
	}
}
