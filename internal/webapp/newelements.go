package webapp

import (
	"repro/internal/asm"
	"repro/internal/isa"
)

// This file assembles the three extended-failure-class elements — the
// defects the Red Team exercise would have targeted if the paper's
// detector families had covered arithmetic faults and runaway loops:
//
//	0x0A SCALE [val u8] [bias u8]   divide-by-zero (FaultGuard)
//	0x0B WALK  [cnt u8] [stride u8] unaligned table walk (FaultGuard)
//	0x0C LOOP  [count u8] [step u8] non-terminating loop (HangGuard)
//
// Each defect is engineered so that exactly one of the new invariant
// families corrects it: the SCALE divisor spans both signs in training
// (lower bound below zero, one-of overflowed), so only the nonzero
// invariant dies on the zero divisor; the WALK stride is always a
// multiple of four (one-of overflowed, bound satisfied by the misaligned
// stride), so only the modulus invariant corrects the walk; the LOOP
// stride is derived from a biased byte whose raw values stay inside every
// learned bound, so the zero stride violates only the nonzero invariant
// on the loop's stride operand.

// emitScaleHandler assembles the SCALE element (divide-by-zero): the
// element scales a display value by a quality divisor derived from a
// biased byte (den = bias - 8) that training never sets to 8. A page with
// bias 8 yields divisor zero, and the unchecked DIVRR faults — FaultGuard
// converts the fault into a monitored failure at site_divzero_div. The
// correcting invariant is the divisor's nonzero (its lower bound is
// negative, its one-of long dead), repaired by the nonzero-guard clamp to
// the learned witness.
func emitScaleHandler(a *asm.Assembler) {
	a.Label("scale_render")
	a.LoadB(isa.EDX, asm.M(isa.EBX, 1)) // display value
	a.LoadB(isa.ECX, asm.M(isa.EBX, 2)) // bias byte
	a.SubRI(isa.ECX, 8)                 // divisor = bias - 8 (mixed sign)
	a.MovRR(isa.EAX, isa.EDX)
	a.MulRI(isa.EAX, 16) // scaled = val * 16
	a.Label("site_divzero_div")
	a.DivRR(isa.EAX, isa.ECX) // the defect: divisor never validated
	a.Push(isa.EAX)
	a.MovRR(isa.EAX, isa.ESP)
	a.MovRI(isa.ECX, 1)
	a.Sys(isa.SysWrite)
	a.Pop(isa.EAX)
	a.MovRI(isa.EAX, 3)
	a.Ret()
}

// emitWalkHandler assembles the WALK element (unaligned access): it scans
// the constant word table with aligned loads at page-supplied strides.
// Training strides are always word multiples; a stride of 6 lands the
// second load on a misaligned address and LOADA faults — FaultGuard
// reports the unaligned access at site_unaligned_load. The correcting
// invariant is the stride's modulus (≡ 0 mod 4); the clamp-mod repair
// rounds the stride back onto the learned alignment.
func emitWalkHandler(a *asm.Assembler) {
	a.Label("walk_render")
	a.LoadB(isa.ECX, asm.M(isa.EBX, 1)) // word count
	a.LoadB(isa.EDX, asm.M(isa.EBX, 2)) // stride in bytes
	a.Load(isa.ESI, asm.M(isa.EBP, GlobWordTab))
	a.MovRI(isa.EDI, 0) // offset
	a.MovRI(isa.EAX, 0) // checksum accumulator
	a.Label("site_unaligned_load")
	a.LoadA(isa.EBX, asm.MX(isa.ESI, isa.EDI, 0, 0)) // the defect: offset unchecked
	a.XorRR(isa.EAX, isa.EBX)
	a.AddRR(isa.EDI, isa.EDX) // offset += stride
	a.SubRI(isa.ECX, 1)
	a.CmpRI(isa.ECX, 0)
	a.Jg("site_unaligned_load")
	a.Push(isa.EAX)
	a.MovRR(isa.EAX, isa.ESP)
	a.MovRI(isa.ECX, 1)
	a.Sys(isa.SysWrite)
	a.Pop(isa.EAX)
	a.MovRI(isa.EAX, 3)
	a.Ret()
}

// emitLoopHandler assembles the LOOP element (runaway loop): a countdown
// whose stride is derived from a biased byte (stride = step - 16;
// training steps 4..15 give strides -12..-1). A page with step 16 yields
// stride zero: the count never decreases, the single-block loop spins
// forever, and HangGuard's step budget fires at the loop head
// (site_hang_loop). Every raw byte stays inside the learned bounds, so
// the only violated invariant is the nonzero on the loop's stride
// operand — the nonzero-guard clamp restores the learned progress and
// doubles as the loop-bound clamp.
func emitLoopHandler(a *asm.Assembler) {
	a.Label("loop_render")
	a.LoadB(isa.ECX, asm.M(isa.EBX, 1)) // iteration budget (countdown)
	a.LoadB(isa.EDX, asm.M(isa.EBX, 2)) // step byte
	a.SubRI(isa.EDX, 16)                // stride = step - 16 (negative in training)
	a.Label("site_hang_stride")
	a.MovRR(isa.ESI, isa.EDX) // stride observed pre-loop (the host_render idiom)
	a.MovRI(isa.EAX, 0)       // iterations completed
	a.Label("site_hang_loop")
	a.AddRI(isa.EAX, 1)
	a.AddRR(isa.ECX, isa.EDX) // the defect: stride never validated
	a.CmpRI(isa.ECX, 0)
	a.Jg("site_hang_loop")
	a.Push(isa.EAX)
	a.MovRR(isa.EAX, isa.ESP)
	a.MovRI(isa.ECX, 1)
	a.Sys(isa.SysWrite)
	a.Pop(isa.EAX)
	a.MovRI(isa.EAX, 3)
	a.Ret()
}
