package daikon

import "sort"

// Obs is one runtime observation of a variable's value.
type Obs struct {
	Var VarID
	Val uint32
}

// DefaultMaxOneOf is the largest value set a one-of invariant may hold
// before the inference gives up on it (keeping inference tractable —
// §2.2.2's "small enough to make the inference task computationally
// tractable").
const DefaultMaxOneOf = 8

// varStat accumulates per-variable statistics.
type varStat struct {
	count      uint64
	min        int32
	vals       map[uint32]bool // nil once the one-of set overflowed
	nonPointer bool

	// Nonzero family: sawZero kills the invariant; nzWitness folds toward
	// the observed value of smallest magnitude (ties: smaller unsigned),
	// the deterministic constant the nonzero-guard repair enforces.
	sawZero   bool
	nzWitness uint32

	// Modulus family: modFirst is the first observed value; modGCD is the
	// running gcd of 2^32 and every unsigned difference (v - modFirst)
	// over later observations (2^32 until a second distinct value
	// arrives). Folding 2^32 into the gcd keeps the modulus a divisor of
	// 2^32, which makes the unsigned mod-2^32 congruence check in
	// Invariant.Holds exact — a modulus derived from signed distances
	// would otherwise be violated by its own training data (e.g. values
	// 5 and -1 are 6 apart signed but 0xFFFFFFFA apart in Z/2^32).
	// A final gcd in [2, 2^32) yields v ≡ modFirst (mod gcd).
	modFirst uint32
	modGCD   uint64
}

// closerToZero reports whether a is a "smaller" value than b for witness
// selection: smaller signed magnitude first, smaller unsigned value on ties.
func closerToZero(a, b uint32) bool {
	ma, mb := int64(int32(a)), int64(int32(b))
	if ma < 0 {
		ma = -ma
	}
	if mb < 0 {
		mb = -mb
	}
	if ma != mb {
		return ma < mb
	}
	return a < b
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// pairKey orders the two variables by execution order (earlier first).
type pairKey struct{ a, b VarID }

// pairStat tracks the surviving relations between two variables observed
// in the same basic-block pass.
type pairStat struct {
	count    uint64
	alwaysLE bool // a ≤ b in every pass (signed)
	alwaysGE bool // a ≥ b in every pass (signed)
	alwaysEQ bool // a == b in every pass (duplicate-variable candidates)
}

// spStat tracks the stack-pointer offset at one instruction.
type spStat struct {
	delta      uint32
	count      uint64
	consistent bool
}

// Engine is one member's local inference engine. Observations are fed in
// per completed basic-block pass; Finalize produces the invariant database.
// An Engine must only be fed data from executions that ended normally —
// the trace front end buffers per run and discards erroneous runs (§3.1:
// "our currently implemented system simply excludes invariants from
// erroneous executions").
type Engine struct {
	MaxOneOf int

	vars  map[VarID]*varStat
	pairs map[pairKey]*pairStat
	sps   map[uint32]*spStat
}

// NewEngine returns an empty inference engine.
func NewEngine() *Engine {
	return &Engine{
		MaxOneOf: DefaultMaxOneOf,
		vars:     make(map[VarID]*varStat),
		pairs:    make(map[pairKey]*pairStat),
		sps:      make(map[uint32]*spStat),
	}
}

func (e *Engine) observeVar(o Obs) {
	st := e.vars[o.Var]
	if st == nil {
		st = &varStat{
			min: int32(o.Val), vals: map[uint32]bool{},
			nzWitness: o.Val, modFirst: o.Val, modGCD: 1 << 32,
		}
		e.vars[o.Var] = st
	}
	st.count++
	if int32(o.Val) < st.min {
		st.min = int32(o.Val)
	}
	if o.Val == 0 {
		st.sawZero = true
	} else if closerToZero(o.Val, st.nzWitness) || st.nzWitness == 0 {
		st.nzWitness = o.Val
	}
	if o.Val != st.modFirst {
		st.modGCD = gcd(st.modGCD, uint64(o.Val-st.modFirst))
	}
	if st.vals != nil {
		st.vals[o.Val] = true
		if len(st.vals) > e.MaxOneOf {
			st.vals = nil
		}
	}
	// The pointer heuristic of §2.2.4: a negative value or one between 1
	// and 100,000 proves the variable is not a pointer.
	if int32(o.Val) < 0 || (o.Val >= 1 && o.Val <= 100000) {
		st.nonPointer = true
	}
}

// ObserveBlockPass feeds one execution pass through a basic block: the
// observations of every instrumented instruction in the block, in
// execution order. Pair relations (less-than and duplicate detection) are
// tracked only within a pass, implementing the same-basic-block restriction
// that keeps two-variable inference tractable.
func (e *Engine) ObserveBlockPass(obs []Obs) {
	for _, o := range obs {
		e.observeVar(o)
	}
	for i := 0; i < len(obs); i++ {
		for j := i + 1; j < len(obs); j++ {
			a, b := obs[i], obs[j]
			if a.Var == b.Var {
				continue
			}
			k := pairKey{a.Var, b.Var}
			ps := e.pairs[k]
			if ps == nil {
				ps = &pairStat{alwaysLE: true, alwaysGE: true, alwaysEQ: true}
				e.pairs[k] = ps
			}
			ps.count++
			av, bv := int32(a.Val), int32(b.Val)
			if av > bv {
				ps.alwaysLE = false
			}
			if av < bv {
				ps.alwaysGE = false
			}
			if av != bv {
				ps.alwaysEQ = false
			}
		}
	}
}

// ObserveSP feeds the stack-pointer offset (spEntry - spHere) observed at
// one instruction.
func (e *Engine) ObserveSP(pc uint32, delta uint32) {
	st := e.sps[pc]
	if st == nil {
		e.sps[pc] = &spStat{delta: delta, count: 1, consistent: true}
		return
	}
	st.count++
	if st.delta != delta {
		st.consistent = false
	}
}

// VarsObserved returns how many distinct variables have been observed.
func (e *Engine) VarsObserved() int { return len(e.vars) }

// Options controls invariant production.
type Options struct {
	// DisablePointerHeuristic emits lower-bound/less-than invariants for
	// pointer variables too (ablation knob). Duplicate-variable
	// elimination is the trace front end's job (it is a static analysis
	// over basic blocks — see internal/trace/dup.go).
	DisablePointerHeuristic bool
}

// Finalize produces the invariant database from everything observed.
func (e *Engine) Finalize(opt Options) *DB {
	db := NewDB()

	for v, st := range e.vars {
		db.VarsSeen[v] = st.count
		if st.vals != nil && len(st.vals) > 0 {
			vals := make([]uint32, 0, len(st.vals))
			for val := range st.vals {
				vals = append(vals, val)
			}
			sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
			db.Add(&Invariant{Kind: KindOneOf, Var: v, Values: vals, Samples: st.count})
		}
		if st.nonPointer || opt.DisablePointerHeuristic {
			db.Add(&Invariant{Kind: KindLowerBound, Var: v, Bound: st.min, Samples: st.count})
			if !st.sawZero {
				db.Add(&Invariant{Kind: KindNonzero, Var: v, Bound: int32(st.nzWitness), Samples: st.count})
			}
			if st.modGCD >= 2 && st.modGCD < 1<<32 {
				m := uint32(st.modGCD)
				db.Add(&Invariant{Kind: KindModulus, Var: v, Values: []uint32{m, st.modFirst % m}, Samples: st.count})
			}
		}
	}

	for k, ps := range e.pairs {
		aPtr := !e.vars[k.a].nonPointer
		bPtr := !e.vars[k.b].nonPointer
		if (aPtr || bPtr) && !opt.DisablePointerHeuristic {
			continue
		}
		// Emit at most one direction; prefer a ≤ b when both hold
		// (constant-equal pairs that survived dup-elim being disabled).
		switch {
		case ps.alwaysLE:
			db.Add(&Invariant{Kind: KindLessThan, Var: k.a, Var2: k.b, Samples: ps.count})
		case ps.alwaysGE:
			db.Add(&Invariant{Kind: KindLessThan, Var: k.b, Var2: k.a, Samples: ps.count})
		}
	}

	for pc, st := range e.sps {
		if st.consistent {
			db.Add(&Invariant{
				Kind: KindSPOffset, Var: VarID{PC: pc, Slot: 0xFF},
				Bound: int32(st.delta), Samples: st.count,
			})
		}
	}
	return db
}
