// The benchmark harness regenerates every table and figure of the paper's
// evaluation (§4) plus ablations of the design decisions DESIGN.md calls
// out. Absolute times are simulator times, not the authors' testbed times;
// the reported custom metrics (presentations, check counts, invariant
// counts, unsuccessful repair runs) carry the reproducible shape.
//
//	go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/correlate"
	"repro/internal/daikon"
	"repro/internal/monitor"
	"repro/internal/redteam"
	"repro/internal/replay"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/webapp"
)

// shared expensive fixtures, built once per bench binary.
var (
	setupOnce     sync.Once
	setupDefault  *redteam.Setup
	setupExpanded *redteam.Setup
	setupErr      error
)

func sharedSetups(b *testing.B) (*redteam.Setup, *redteam.Setup) {
	b.Helper()
	setupOnce.Do(func() {
		setupDefault, setupErr = redteam.NewSetup(false)
		if setupErr == nil {
			setupExpanded, setupErr = redteam.NewSetup(true)
		}
	})
	if setupErr != nil {
		b.Fatal(setupErr)
	}
	return setupDefault, setupExpanded
}

func exploit(b *testing.B, id string) redteam.Exploit {
	b.Helper()
	for _, ex := range redteam.AllExploits() {
		if ex.Bugzilla == id {
			return ex
		}
	}
	b.Fatalf("unknown exploit %s", id)
	return redteam.Exploit{}
}

// BenchmarkTable1 regenerates Table 1: one sub-benchmark per exploit, the
// "presentations" metric being the paper's headline number.
func BenchmarkTable1(b *testing.B) {
	base, expanded := sharedSetups(b)
	for _, ex := range redteam.AllExploits() {
		if !ex.Repairable {
			continue // 307259 appears in BenchmarkTable3 and the tests
		}
		ex := ex
		b.Run(ex.Bugzilla, func(b *testing.B) {
			setup := base
			if ex.NeedsExpandedCorpus {
				setup = expanded
			}
			presentations := 0
			for i := 0; i < b.N; i++ {
				cv, err := setup.ClearView(ex.NeedsStackScope)
				if err != nil {
					b.Fatal(err)
				}
				res := redteam.RunSingleVariant(cv, setup.App, ex, 24)
				if !res.Patched {
					b.Fatalf("%s not patched", ex.Bugzilla)
				}
				presentations = res.Presentations
			}
			b.ReportMetric(float64(presentations), "presentations")
		})
	}
}

// BenchmarkTable3 regenerates the Table 3 breakdown for a representative
// exploit: the custom metrics mirror the table's columns.
func BenchmarkTable3(b *testing.B) {
	base, _ := sharedSetups(b)
	for _, id := range []string{"290162", "296134", "307259"} {
		ex := exploit(b, id)
		b.Run(id, func(b *testing.B) {
			var m core.Metrics
			for i := 0; i < b.N; i++ {
				cv, err := base.ClearView(1)
				if err != nil {
					b.Fatal(err)
				}
				redteam.RunSingleVariant(cv, base.App, ex, 24)
				m = cv.Cases()[0].Metrics
			}
			b.ReportMetric(float64(m.CandidateCount), "checks-built")
			b.ReportMetric(float64(m.CheckExecs), "checks-run")
			b.ReportMetric(float64(m.CheckViolations), "violations")
			b.ReportMetric(float64(m.RepairCount), "repairs")
			b.ReportMetric(float64(m.Unsuccessful), "unsuccessful-runs")
		})
	}
}

// BenchmarkTable2 regenerates Table 2: the 57-evaluation-page load under
// each monitor configuration. Compare ns/op across sub-benchmarks for the
// overhead ratios; the deterministic hook-runs metric carries the same
// ordering (bare < MF < MF+SS < MF+HG < MF+HG+SS) without timer noise.
func BenchmarkTable2(b *testing.B) {
	app := webapp.MustBuild()
	configs := []struct {
		name string
		mf   bool
		hg   bool
		ss   bool
	}{
		{"Bare", false, false, false},
		{"MemoryFirewall", true, false, false},
		{"MemoryFirewall+ShadowStack", true, false, true},
		{"MemoryFirewall+HeapGuard", true, true, false},
		{"MemoryFirewall+HeapGuard+ShadowStack", true, true, true},
	}
	pages := redteam.EvaluationPages()
	for _, cfg := range configs {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			var hooks uint64
			for i := 0; i < b.N; i++ {
				hooks = 0
				for _, page := range pages {
					res := runPage(b, app, page, cfg.mf, cfg.hg, cfg.ss)
					hooks += res.HookRuns
				}
			}
			b.ReportMetric(float64(hooks), "hook-runs")
		})
	}
}

// runPage executes one evaluation page directly under the requested
// monitors (no pipeline wrapper, so the measured cost is the monitors').
func runPage(b *testing.B, app *webapp.App, page []byte, mf, hg, ss bool) vm.RunResult {
	b.Helper()
	var plugins []vm.Plugin
	var shadow *monitor.ShadowStack
	if ss {
		shadow = monitor.NewShadowStack()
		plugins = append(plugins, shadow)
	}
	if mf {
		plugins = append(plugins, monitor.NewMemoryFirewall())
	}
	if hg {
		plugins = append(plugins, monitor.NewHeapGuard())
	}
	machine, err := vm.New(vm.Config{Image: app.Image, Input: page, Plugins: plugins})
	if err != nil {
		b.Fatal(err)
	}
	if shadow != nil {
		shadow.Install(machine)
	}
	res := machine.Run()
	if res.Outcome != vm.OutcomeExit {
		b.Fatalf("evaluation page failed: %+v", res)
	}
	return res
}

// BenchmarkLearningOff/On regenerate §4.4.1 (the learning overhead): the
// same twelve-page corpus bare versus under the Daikon front end.
func BenchmarkLearningOff(b *testing.B) {
	app := webapp.MustBuild()
	corpus := redteam.LearningCorpus()
	for i := 0; i < b.N; i++ {
		machine, err := vm.New(vm.Config{Image: app.Image, Input: corpus})
		if err != nil {
			b.Fatal(err)
		}
		if res := machine.Run(); res.Outcome != vm.OutcomeExit {
			b.Fatal(res.Outcome)
		}
	}
}

func BenchmarkLearningOn(b *testing.B) {
	app := webapp.MustBuild()
	corpus := redteam.LearningCorpus()
	var obs uint64
	for i := 0; i < b.N; i++ {
		_, stats, err := core.Learn(app.Image, core.LearnConfig{Inputs: [][]byte{corpus}})
		if err != nil {
			b.Fatal(err)
		}
		obs = stats.Observations
	}
	b.ReportMetric(float64(obs), "trace-entries")
}

// BenchmarkPatchGenerationTime regenerates the §4.4.3 aggregate: the mean
// number of executions from first exposure to a protective patch, across
// all repairable exploits (paper: 5.4 executions including the 311710
// outlier).
func BenchmarkPatchGenerationTime(b *testing.B) {
	base, expanded := sharedSetups(b)
	var mean float64
	for i := 0; i < b.N; i++ {
		total, n := 0, 0
		for _, ex := range redteam.Exploits() {
			if !ex.Repairable {
				continue
			}
			setup := base
			if ex.NeedsExpandedCorpus {
				setup = expanded
			}
			cv, err := setup.ClearView(ex.NeedsStackScope)
			if err != nil {
				b.Fatal(err)
			}
			res := redteam.RunSingleVariant(cv, setup.App, ex, 24)
			if !res.Patched {
				b.Fatalf("%s not patched", ex.Bugzilla)
			}
			total += res.Presentations
			n++
		}
		mean = float64(total) / float64(n)
	}
	b.ReportMetric(mean, "mean-presentations")
}

// ---- ablation benches (DESIGN.md "key design decisions") ----

// BenchmarkAblationSameBlock measures the §2.4.1 same-block restriction:
// candidate invariants selected with and without it.
func BenchmarkAblationSameBlock(b *testing.B) {
	_, expanded := sharedSetups(b)
	for _, disabled := range []bool{false, true} {
		name := "restricted"
		if disabled {
			name = "unrestricted"
		}
		disabled := disabled
		b.Run(name, func(b *testing.B) {
			var cands int
			for i := 0; i < b.N; i++ {
				cv, err := core.New(core.Config{
					Image:      expanded.App.Image,
					Invariants: expanded.DB,
					StackScope: 1, MemoryFirewall: true, HeapGuard: true, ShadowStack: true,
					DisableSameBlockRestriction: disabled,
				})
				if err != nil {
					b.Fatal(err)
				}
				ex := exploit(b, "325403")
				redteam.RunSingleVariant(cv, expanded.App, ex, 24)
				cands = cv.Cases()[0].Metrics.CandidateCount
			}
			b.ReportMetric(float64(cands), "candidates")
		})
	}
}

// BenchmarkAblationDupElim measures duplicate-variable elimination
// (§2.2.4: "reduced the number of inferred invariants by a factor of
// two"): invariants and trace entries with and without it.
func BenchmarkAblationDupElim(b *testing.B) {
	app := webapp.MustBuild()
	corpus := redteam.LearningCorpus()
	for _, disabled := range []bool{false, true} {
		name := "eliminated"
		if disabled {
			name = "kept"
		}
		disabled := disabled
		b.Run(name, func(b *testing.B) {
			var invs int
			var obs uint64
			for i := 0; i < b.N; i++ {
				eng := daikon.NewEngine()
				rec := trace.NewRecorder(eng)
				rec.DisableDupElim = disabled
				machine, err := vm.New(vm.Config{
					Image: app.Image, Input: corpus, Plugins: []vm.Plugin{rec},
				})
				if err != nil {
					b.Fatal(err)
				}
				if res := machine.Run(); res.Outcome != vm.OutcomeExit {
					b.Fatal(res.Outcome)
				}
				rec.CommitRun()
				invs = eng.Finalize(daikon.Options{}).Len()
				obs = rec.Observations()
			}
			b.ReportMetric(float64(invs), "invariants")
			b.ReportMetric(float64(obs), "trace-entries")
		})
	}
}

// BenchmarkAblationPointerHeuristic measures the §2.2.4 pointer heuristic:
// invariants inferred with and without skipping bound invariants on
// pointer-valued variables.
func BenchmarkAblationPointerHeuristic(b *testing.B) {
	app := webapp.MustBuild()
	corpus := redteam.LearningCorpus()
	for _, disabled := range []bool{false, true} {
		name := "heuristic"
		if disabled {
			name = "disabled"
		}
		disabled := disabled
		b.Run(name, func(b *testing.B) {
			var invs int
			for i := 0; i < b.N; i++ {
				db, _, err := core.Learn(app.Image, core.LearnConfig{
					Inputs:  [][]byte{corpus},
					Options: daikon.Options{DisablePointerHeuristic: disabled},
				})
				if err != nil {
					b.Fatal(err)
				}
				invs = db.Len()
			}
			b.ReportMetric(float64(invs), "invariants")
		})
	}
}

// BenchmarkAblationCorrelationGate measures the §2.5 gating (repairs only
// for the highest correlated tier) against repairing every correlated
// invariant.
func BenchmarkAblationCorrelationGate(b *testing.B) {
	base, _ := sharedSetups(b)
	ex := exploit(b, "269095")
	for _, gated := range []bool{true, false} {
		name := "gated"
		if !gated {
			name = "all-correlated"
		}
		gated := gated
		b.Run(name, func(b *testing.B) {
			var selected int
			for i := 0; i < b.N; i++ {
				cv, err := base.ClearView(1)
				if err != nil {
					b.Fatal(err)
				}
				redteam.RunSingleVariant(cv, base.App, ex, 24)
				fc := cv.Cases()[0]
				if gated {
					selected = len(correlate.SelectForRepair(fc.Candidates, fc.Correlations))
				} else {
					selected = len(correlate.SelectAllCorrelated(fc.Candidates, fc.Correlations))
				}
			}
			b.ReportMetric(float64(selected), "invariants-to-repair")
		})
	}
}

// BenchmarkAblationRepairOrder measures the §2.6 ordering rules for
// 269095 (whose third repair, return-from-procedure, is the one that
// works). The reversed order reaches the working repair sooner here — the
// paper's state-before-control-flow preference is not about minimizing
// unsuccessful runs but about fidelity: state repairs "execute more of the
// normal-case code following the error" (§4.3.3), while control-flow
// repairs abort functionality, so they are tried last even at the cost of
// extra evaluation runs.
func BenchmarkAblationRepairOrder(b *testing.B) {
	base, _ := sharedSetups(b)
	ex := exploit(b, "269095")
	for _, reversed := range []bool{false, true} {
		name := "paper-order"
		if reversed {
			name = "reversed"
		}
		reversed := reversed
		b.Run(name, func(b *testing.B) {
			var unsuccessful, presentations int
			for i := 0; i < b.N; i++ {
				cv, err := core.New(core.Config{
					Image:      base.App.Image,
					Invariants: base.DB,
					StackScope: 1, MemoryFirewall: true, HeapGuard: true, ShadowStack: true,
					ReverseRepairOrder: reversed,
				})
				if err != nil {
					b.Fatal(err)
				}
				res := redteam.RunSingleVariant(cv, base.App, ex, 24)
				unsuccessful = cv.Cases()[0].Metrics.Unsuccessful
				presentations = res.Presentations
			}
			b.ReportMetric(float64(unsuccessful), "unsuccessful-runs")
			b.ReportMetric(float64(presentations), "presentations")
		})
	}
}

// BenchmarkSnapshotClone measures the copy-on-write machine snapshot: the
// cost of capturing a fully warmed webapp machine (Snapshot), of rewinding
// a machine onto one (Restore), and of rewinding to a step-0 snapshot and
// re-running the page to completion (the fast-forward/replay primitive;
// the farm itself builds fresh machines, which adds image-load cost on
// top). Snapshot cost must stay O(mapped page table + dirty pages), not
// O(address space) — the pages metric gives the denominator.
func BenchmarkSnapshotClone(b *testing.B) {
	app := webapp.MustBuild()
	page := redteam.EvaluationPages()[0]
	warm, err := vm.New(vm.Config{Image: app.Image, Input: page})
	if err != nil {
		b.Fatal(err)
	}
	if res := warm.Run(); res.Outcome != vm.OutcomeExit {
		b.Fatal(res.Outcome)
	}

	b.Run("Snapshot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = warm.Snapshot()
		}
		b.ReportMetric(float64(warm.Mem.PageCount()), "pages")
	})

	snap := warm.Snapshot()
	b.Run("Restore", func(b *testing.B) {
		m, err := vm.New(vm.Config{Image: app.Image, Input: page})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			m.Restore(snap)
		}
	})

	start, err := vm.New(vm.Config{Image: app.Image, Input: page})
	if err != nil {
		b.Fatal(err)
	}
	startSnap := start.Snapshot()
	b.Run("RestoreAndRun", func(b *testing.B) {
		m, err := vm.New(vm.Config{Image: app.Image, Input: page})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			m.Restore(startSnap)
			if res := m.Run(); res.Outcome != vm.OutcomeExit {
				b.Fatal(res.Outcome)
			}
		}
	})
}

// BenchmarkReplayFarm measures parallel candidate evaluation against the
// sequential re-execution it replaces: 311710's 30 candidate repairs
// judged against one recorded failing run. Sequential is the farm with one
// worker — the same full replays the live pipeline would spend 30
// presentations on; Parallel uses all CPUs. Compare ns/op: on an n-core
// host Parallel approaches n× (per-replay machines share nothing but the
// read-only recording); on a single-core host the two arms necessarily
// coincide, since the farm's only sequential overhead is the worker pool.
func BenchmarkReplayFarm(b *testing.B) {
	base, _ := sharedSetups(b)
	ex := exploit(b, "311710")
	cv, err := base.ClearView(ex.NeedsStackScope)
	if err != nil {
		b.Fatal(err)
	}
	attack := redteam.AttackInput(base.App, ex, 0)
	for i := 0; i < 3; i++ { // run 1 detects, runs 2-3 check
		cv.Execute(attack)
	}
	fc := cv.Cases()[0]
	if len(fc.Repairs) < 4 {
		b.Fatalf("only %d candidate repairs; the farm comparison needs >= 4", len(fc.Repairs))
	}
	rec, _, err := redteam.RecordAttack(base, ex, 0)
	if err != nil {
		b.Fatal(err)
	}

	for _, cfg := range []struct {
		name    string
		workers int
	}{
		{"Sequential", 1},
		{"Parallel", 0}, // GOMAXPROCS
	} {
		cfg := cfg
		b.Run(fmt.Sprintf("%s-%dcandidates", cfg.name, len(fc.Repairs)), func(b *testing.B) {
			farm := &replay.Farm{Workers: cfg.workers}
			survivors := 0
			for i := 0; i < b.N; i++ {
				verdicts := farm.Evaluate(rec, fc.ID, fc.Repairs)
				survivors = 0
				for _, v := range verdicts {
					if v.Err != "" {
						b.Fatalf("verdict error: %s", v.Err)
					}
					if v.Survived {
						survivors++
					}
				}
			}
			b.ReportMetric(float64(survivors), "survivors")
		})
	}
}

// BenchmarkCommunityProtection measures the community round-trip (§3): a
// victim node absorbing an attack until the manager distributes a patch,
// over the in-process transport.
func BenchmarkCommunityProtection(b *testing.B) {
	base, _ := sharedSetups(b)
	ex := exploit(b, "290162")
	for i := 0; i < b.N; i++ {
		runCommunityCampaign(b, base, ex)
	}
}

func runCommunityCampaign(b *testing.B, setup *redteam.Setup, ex redteam.Exploit) {
	b.Helper()
	m, err := newBenchManager(setup)
	if err != nil {
		b.Fatal(err)
	}
	node := m.node("victim")
	attack := redteam.AttackInput(setup.App, ex, 0)
	for i := 0; i < 10; i++ {
		res, err := node.RunOnce(attack)
		if err != nil {
			b.Fatal(err)
		}
		if res.Outcome == vm.OutcomeExit && res.ExitCode == 0 {
			return
		}
	}
	b.Fatal("community never patched")
}
