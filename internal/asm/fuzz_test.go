package asm

import (
	"testing"

	"repro/internal/isa"
)

// buildProgram drives the assembler from a fuzz byte stream: each pair of
// bytes selects one assembler operation and its argument. Labels are
// created and referenced from the same stream, so the fuzzer explores
// defined, duplicate, and undefined label combinations as well as every
// instruction form.
func buildProgram(a *Assembler, data []byte) {
	labels := []string{"L0", "L1", "L2", "L3"}
	reg := func(b byte) isa.Reg { return isa.Reg(b % isa.NumRegs) }
	for i := 0; i+1 < len(data); i += 2 {
		op, arg := data[i], data[i+1]
		switch op % 19 {
		case 0:
			a.Nop()
		case 1:
			a.MovRI(reg(arg), int32(arg)-64)
		case 2:
			a.MovRR(reg(arg), reg(arg>>3))
		case 3:
			a.Load(reg(arg), M(reg(arg>>3), int32(arg%32)))
		case 4:
			a.Store(MX(reg(arg), reg(arg>>3), arg%4, int32(arg%16)), reg(arg>>5))
		case 5:
			a.AddRI(reg(arg), int32(arg))
		case 6:
			a.CmpRI(reg(arg), int32(arg))
		case 7:
			a.Label(labels[int(arg)%len(labels)])
		case 8:
			a.Jmp(labels[int(arg)%len(labels)])
		case 9:
			a.Je(labels[int(arg)%len(labels)])
		case 10:
			a.Call(labels[int(arg)%len(labels)])
		case 11:
			a.Push(reg(arg))
		case 12:
			a.Pop(reg(arg))
		case 13:
			a.Ret()
		case 14:
			a.Word(uint32(arg) * 0x01010101)
		case 15:
			a.Sys(int32(arg % 10))
		case 16:
			a.DivRR(reg(arg), reg(arg>>3))
		case 17:
			a.ModRR(reg(arg), reg(arg>>3))
		case 18:
			a.LoadA(reg(arg), MX(reg(arg>>3), reg(arg>>5), arg%4, int32(arg%16)))
		}
	}
}

// FuzzAssemble: any operation stream must either be rejected by Assemble
// with an error (duplicate or undefined labels) or produce a code image
// whose every instruction decodes, re-encodes to the identical bytes, and
// disassembles one line per slot — the assembler/decoder round-trip
// contract the webapp build and the repair patch generator both rely on.
func FuzzAssemble(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x05, 0x05, 0x10, 0x0F, 0x00})                         // mov/add/sys
	f.Add([]byte{0x07, 0x00, 0x08, 0x00, 0x0D, 0x00})                         // label, jmp to it, ret
	f.Add([]byte{0x08, 0x01, 0x07, 0x01, 0x0E, 0x7F})                         // forward ref + data word
	f.Add([]byte{0x07, 0x02, 0x07, 0x02})                                     // duplicate label
	f.Add([]byte{0x0A, 0x03, 0x03, 0x2A, 0x04, 0xC9, 0x0B, 0x06, 0x0C, 0x02}) // call undefined + mem ops
	f.Add([]byte{0x10, 0x11, 0x11, 0x0A, 0x12, 0x6B})                         // div/mod/aligned-load forms
	f.Add([]byte{0x12, 0x00, 0x12, 0xFF, 0x10, 0x00})                         // loada edge operands + div
	f.Fuzz(func(t *testing.T, data []byte) {
		a := New(0x1000)
		buildProgram(a, data)
		code, labels, err := a.Assemble()
		if err != nil {
			return // rejected streams are fine; panics are not
		}
		if len(code)%isa.InstSize != 0 {
			// Data words are emitted in InstSize-agnostic units; the only
			// data op above emits 4 bytes, so a misaligned image is legal.
			// Disassembly still must not panic on it.
			_ = Disassemble(code, 0x1000)
			return
		}
		for off := 0; off+isa.InstSize <= len(code); off += isa.InstSize {
			in, derr := isa.Decode(code[off : off+isa.InstSize])
			if derr != nil {
				continue // a data word that does not decode; allowed
			}
			enc := in.Encode()
			for k, b := range enc {
				if code[off+k] != b {
					t.Fatalf("offset %#x: decode/encode round trip changed byte %d: %#x -> %#x",
						off, k, code[off+k], b)
				}
			}
		}
		lines := Disassemble(code, 0x1000)
		if want := len(code) / isa.InstSize; len(lines) != want {
			t.Fatalf("disassembly produced %d lines for %d instruction slots", len(lines), want)
		}
		end := 0x1000 + uint32(len(code))
		for name, addr := range labels {
			if addr < 0x1000 || addr > end {
				t.Fatalf("label %s resolved outside the image: %#x not in [0x1000, %#x]", name, addr, end)
			}
		}
	})
}
