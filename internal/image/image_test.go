package image

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	im := &Image{Base: 0x1000, Entry: 0x1008, Code: []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}}
	got, err := Unmarshal(im.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Base != im.Base || got.Entry != im.Entry || !bytes.Equal(got.Code, im.Code) {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestMarshalUnmarshalQuick(t *testing.T) {
	f := func(code []byte, entryOff uint16) bool {
		if len(code) == 0 {
			code = []byte{0}
		}
		im := &Image{Base: 0x10000, Code: code}
		im.Entry = im.Base + uint32(int(entryOff)%len(code))
		got, err := Unmarshal(im.Marshal())
		return err == nil && got.Base == im.Base && got.Entry == im.Entry && bytes.Equal(got.Code, im.Code)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	if err := (&Image{Base: 0, Code: nil, Entry: 0}).Validate(); err == nil {
		t.Error("empty image validated")
	}
	if err := (&Image{Base: 0x1000, Code: make([]byte, 8), Entry: 0x2000}).Validate(); err == nil {
		t.Error("out-of-range entry validated")
	}
	if err := (&Image{Base: 0x1000, Code: make([]byte, 8), Entry: 0x1000}).Validate(); err != nil {
		t.Errorf("valid image rejected: %v", err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte{1, 2, 3}); err == nil {
		t.Error("truncated header accepted")
	}
	im := &Image{Base: 0x1000, Entry: 0x1000, Code: make([]byte, 32)}
	b := im.Marshal()
	b[0] = 0xFF // corrupt magic
	if _, err := Unmarshal(b); err == nil {
		t.Error("bad magic accepted")
	}
	b = im.Marshal()
	if _, err := Unmarshal(b[:20]); err == nil {
		t.Error("truncated code accepted")
	}
}

func TestContains(t *testing.T) {
	im := &Image{Base: 0x1000, Entry: 0x1000, Code: make([]byte, 16)}
	if !im.Contains(0x1000) || !im.Contains(0x100F) {
		t.Error("interior addresses not contained")
	}
	if im.Contains(0x1010) || im.Contains(0xFFF) {
		t.Error("exterior addresses contained")
	}
	if im.End() != 0x1010 {
		t.Errorf("End = %#x", im.End())
	}
}
