package community

import (
	"fmt"

	"repro/internal/image"
	"repro/internal/vm"
)

// The Handle entry points below are the synchronous twins of the Serve
// loops: one envelope in, one reply out, with the request token echoed
// exactly as Serve would echo it. They exist for transports without a
// serving goroutine — the discrete-event simulator in
// internal/community/sim drives entire campaigns through them over a
// loopback Conn, so a 100k-node simulated community needs no goroutine
// per connection. bound is the connection's pinned sender identity and
// must persist for the connection's lifetime (see bindSender); pass a
// pointer to a per-connection string, zero-valued before the first
// envelope.

// HandleEnvelope applies one envelope to the manager exactly as one
// Serve loop iteration would and returns the reply with the request
// token echoed.
func (m *Manager) HandleEnvelope(env Envelope, bound *string) (Envelope, error) {
	reply, err := m.handle(env, bound)
	if err != nil {
		return Envelope{}, err
	}
	reply.Token = env.Token // correlate; see Envelope.Token
	return reply, nil
}

// HandleEnvelope applies one envelope to the aggregator exactly as one
// Serve loop iteration would and returns the reply with the request
// token echoed. A closed aggregator rejects the envelope, mirroring
// Serve's refusal to accept connections after Close.
func (a *Aggregator) HandleEnvelope(env Envelope, bound *string) (Envelope, error) {
	a.mu.Lock()
	closed := a.closed
	a.mu.Unlock()
	if closed {
		return Envelope{}, fmt.Errorf("community: aggregator %s is closed", a.conf.ID)
	}
	reply, err := a.handle(env, bound)
	if err != nil {
		return Envelope{}, err
	}
	reply.Token = env.Token // correlate; see Envelope.Token
	return reply, nil
}

// HandleEnvelope applies one envelope to the root group — leader plus
// followers, appended to the replication log — exactly as one Serve loop
// iteration would, and returns the reply with the request token echoed.
// A closed group rejects the envelope, mirroring Serve.
func (g *RootGroup) HandleEnvelope(env Envelope, bound *string) (Envelope, error) {
	g.mu.Lock()
	closed := g.closed
	g.mu.Unlock()
	if closed {
		return Envelope{}, fmt.Errorf("community: root group is closed")
	}
	reply, err := g.handle(env, bound)
	if err != nil {
		return Envelope{}, err
	}
	reply.Token = env.Token // correlate; see Envelope.Token
	return reply, nil
}

// RunLocal executes one input under the node's current directives —
// compile, monitored run, failure detection, observation drain, optional
// recording — without shipping anything upstream. It returns the VM
// result, the run report the node would send, and the sealed recording
// bytes when the node records failures (nil otherwise). It is RunOnce
// minus the protocol round trips; the simulator uses it to execute
// modeled nodes and ship the envelopes on its own schedule.
func (n *Node) RunLocal(input []byte) (vm.RunResult, RunReport, []byte, error) {
	return n.runLocal(input)
}

// RoundTrip sends one envelope upstream and applies the reply, with the
// node's full wire discipline — token correlation, resilience retries
// when enabled, directives adoption. It is the exported form of the
// node's internal round trip, for callers (adversary models, the
// simulator) that assemble their own envelopes.
func (n *Node) RoundTrip(env Envelope) error {
	return n.roundTrip(env)
}

// RepairSpecID derives the canonical repair identifier for a wire-form
// repair spec — the same identity Manager.Adoptions reports, so tests
// and the soak's convergence checks can compare holdings across nodes.
func RepairSpecID(spec *RepairSpec) string {
	return repairSpecID(spec)
}

// DirectivesFingerprint returns a compact, collision-free fingerprint
// of d with the sequence number masked out: two directive sets share a
// fingerprint iff they are equal apart from Seq. The simulator's
// execution memo keys on it — execution depends on the installed
// patches, not on which directive sequence delivered them.
func DirectivesFingerprint(d Directives) string {
	d.Seq = 0
	return dirKey(&d)
}

// ProbeFailurePC runs input against a pristine image under the full
// monitor set and reports the failure PC and monitor it trips. It is how
// the soak harness learns each attack's expected defect site; exported
// for the simulator's identical probe.
func ProbeFailurePC(img *image.Image, input []byte) (uint32, string, error) {
	return probeFailurePC(img, input)
}
