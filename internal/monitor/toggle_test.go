package monitor

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/vm"
)

// TestHeapGuardToggledMidRun exercises the §2.3 capability: Heap Guard can
// be enabled and disabled as the application executes without otherwise
// perturbing the execution. The program performs two out-of-bounds writes;
// a patch hook enables the guard between them, so only the second is
// detected.
func TestHeapGuardToggledMidRun(t *testing.T) {
	// Two blocks: the pre-toggle write destroys block 1's canary
	// unnoticed (and unrecoverably — a disabled guard cannot undo
	// corruption); the post-toggle write hits block 2's intact canary.
	im, labels := buildImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.MovRI(isa.EAX, 8)
		a.Sys(isa.SysAlloc)
		a.MovRR(isa.EBX, isa.EAX) // block 1
		a.MovRI(isa.EAX, 8)
		a.Sys(isa.SysAlloc)
		a.MovRR(isa.ESI, isa.EAX) // block 2
		a.MovRI(isa.ECX, 0x11)
		a.Label("oob1")
		a.Store(asm.M(isa.EBX, 8), isa.ECX) // block 1 rear canary: undetected
		a.Label("mid")
		a.MovRI(isa.ECX, 0x22)
		a.Label("oob2")
		a.Store(asm.M(isa.ESI, 8), isa.ECX) // block 2 rear canary: detected
		a.MovRI(isa.EAX, 0)
		a.Sys(isa.SysExit)
	})
	hg := NewHeapGuard()
	hg.Enabled = false
	enable := &vm.Patch{
		ID: "enable-hg", Addr: labels["mid"], Prio: vm.PrioRepair,
		Hook: func(ctx *vm.Ctx) error {
			hg.Enabled = true
			return nil
		},
	}
	machine, err := vm.New(vm.Config{Image: im, Plugins: []vm.Plugin{hg}, Patches: []*vm.Patch{enable}})
	if err != nil {
		t.Fatal(err)
	}
	res := machine.Run()
	if res.Outcome != vm.OutcomeFailure {
		t.Fatalf("res = %+v", res)
	}
	if res.Failure.PC != labels["oob2"] {
		t.Errorf("failure at %#x, want the post-toggle write %#x (first write must pass undetected)",
			res.Failure.PC, labels["oob2"])
	}
}

// TestHeapGuardDisableMidRun: the opposite toggle — disabling the guard
// before the violation suppresses detection (the §3.2 policy option of
// turning monitors off after a quiet period).
func TestHeapGuardDisableMidRun(t *testing.T) {
	im, labels := buildImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.MovRI(isa.EAX, 8)
		a.Sys(isa.SysAlloc)
		a.MovRR(isa.EBX, isa.EAX)
		a.Label("mid")
		a.MovRI(isa.ECX, 0x33)
		a.Label("oob")
		a.Store(asm.M(isa.EBX, 8), isa.ECX)
		a.MovRI(isa.EAX, 0)
		a.Sys(isa.SysExit)
	})
	hg := NewHeapGuard()
	disable := &vm.Patch{
		ID: "disable-hg", Addr: labels["mid"], Prio: vm.PrioRepair,
		Hook: func(ctx *vm.Ctx) error {
			hg.Enabled = false
			return nil
		},
	}
	machine, err := vm.New(vm.Config{Image: im, Plugins: []vm.Plugin{hg}, Patches: []*vm.Patch{disable}})
	if err != nil {
		t.Fatal(err)
	}
	if res := machine.Run(); res.Outcome != vm.OutcomeExit {
		t.Fatalf("disabled guard still fired: %+v", res)
	}
}
