package vm

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// Hook priorities. At one instruction, hooks run in ascending priority
// order. Repairs run first so that enforcement happens before monitors
// validate (an enforced one-of invariant redirects an indirect call before
// Memory Firewall inspects the target, as in the paper where the patch
// replaces the call itself). Invariant checks run next, observing the
// possibly-enforced state at the patch point. Monitors run before tracing
// so a failing instruction does not contaminate the learning data.
const (
	PrioRepair  = 0
	PrioCheck   = 10
	PrioMonitor = 20
	PrioTrace   = 30
)

// Hook is instrumentation attached in front of one instruction. Returning
// a *Failure terminates the run as a monitor-detected failure; any other
// non-nil error terminates it as a crash.
type Hook func(ctx *Ctx) error

// hookEntry keeps hooks ordered by (priority, insertion sequence).
type hookEntry struct {
	prio int
	seq  int
	h    Hook
}

// blockLink is one cached successor: the resolved *Block for a successor
// start address, valid only while gen matches the VM's cache generation.
// Generation matching makes patch-time invalidation O(1): ejecting any
// block bumps the generation and every link in the machine goes stale at
// once, including links held by the block currently executing.
type blockLink struct {
	pc  uint32
	gen uint64
	b   *Block
}

// Block is one basic block in the code cache.
type Block struct {
	Start uint32
	Insts []isa.Inst
	Addrs []uint32 // Addrs[i] is the address of Insts[i]

	hooks  [][]hookEntry
	nextSq int

	// links is a 2-entry successor cache so straight-line and
	// direct-branch dispatch (fallthrough + taken target, or call +
	// return site) skips the code-cache map. Dynamic targets (RET,
	// indirect calls) share the same two slots under round-robin
	// replacement.
	links    [2]blockLink
	linkRR   uint8
	hasHooks bool

	// Trace tier (trace.go). heat counts dispatch entries; when it crosses
	// the VM's trace threshold the executed chain through this head is
	// recorded and installed as sb. A superblock is valid only for the
	// cache generation it was built under (same rule as links), so patch
	// application invalidates every trace in O(1).
	heat uint32
	sb   *superblock
	// noFuse marks blocks the fused sweep must not run: COPYB's step cost
	// is input-dependent (one step per copied byte, so the per-step budget
	// check cannot be hoisted), and an out-of-range register operand on a
	// hot opcode must keep the interpreter's exact failure behavior. Such
	// blocks always run under the per-step loops.
	noFuse bool
}

// AddHook attaches a hook in front of instruction index i. The entry list
// stays ordered by (priority, insertion sequence); because sequence numbers
// are monotonically increasing, the new entry's position is simply after
// the last entry with priority <= prio — a single backward scan and shift
// instead of re-sorting the whole list on every insert.
func (b *Block) AddHook(i, prio int, h Hook) {
	b.hasHooks = true
	if b.hooks == nil {
		b.hooks = make([][]hookEntry, len(b.Insts))
	}
	b.nextSq++
	list := append(b.hooks[i], hookEntry{})
	pos := len(list) - 1
	for pos > 0 && list[pos-1].prio > prio {
		list[pos] = list[pos-1]
		pos--
	}
	list[pos] = hookEntry{prio: prio, seq: b.nextSq, h: h}
	b.hooks[i] = list
}

// contains reports whether the block covers the instruction address.
func (b *Block) contains(addr uint32) bool {
	if len(b.Addrs) == 0 {
		return false
	}
	last := b.Addrs[len(b.Addrs)-1]
	return addr >= b.Start && addr <= last && (addr-b.Start)%isa.InstSize == 0
}

// Patch is a unit of runtime modification: a hook bound to one instruction
// address. ClearView expresses invariant checks and repairs as patches.
type Patch struct {
	ID   string
	Addr uint32
	Prio int
	Hook Hook
}

type patchSet struct {
	byAddr map[uint32][]*Patch
	byID   map[string]*Patch
}

func newPatchSet() *patchSet {
	return &patchSet{byAddr: make(map[uint32][]*Patch), byID: make(map[string]*Patch)}
}

// ApplyPatch installs a patch, ejecting any cached blocks that contain the
// patched address so the next execution of that code picks it up. This is
// the running-application patching capability of §2.1.
func (v *VM) ApplyPatch(p *Patch) error {
	if p.ID == "" {
		return fmt.Errorf("vm: patch with empty ID at %#x", p.Addr)
	}
	if _, dup := v.patches.byID[p.ID]; dup {
		return fmt.Errorf("vm: duplicate patch ID %q", p.ID)
	}
	v.patches.byID[p.ID] = p
	v.patches.byAddr[p.Addr] = append(v.patches.byAddr[p.Addr], p)
	v.flushBlocksContaining(p.Addr)
	return nil
}

// RemovePatch uninstalls a patch by ID, ejecting affected cached blocks.
// Removing an unknown ID is a no-op so that community-wide removal
// directives are idempotent.
func (v *VM) RemovePatch(id string) {
	p, ok := v.patches.byID[id]
	if !ok {
		return
	}
	delete(v.patches.byID, id)
	list := v.patches.byAddr[p.Addr]
	for i, q := range list {
		if q.ID == id {
			v.patches.byAddr[p.Addr] = append(list[:i], list[i+1:]...)
			break
		}
	}
	v.flushBlocksContaining(p.Addr)
}

// PatchIDs returns the IDs of all installed patches, sorted.
func (v *VM) PatchIDs() []string {
	ids := make([]string, 0, len(v.patches.byID))
	for id := range v.patches.byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func (v *VM) flushBlocksContaining(addr uint32) {
	// The address index maps every instruction address covered by a cached
	// block to the blocks containing it, so a patch flush touches exactly
	// the affected blocks instead of walking the whole code cache (blocks
	// may overlap: a jump into the middle of a block decodes a second
	// block sharing the tail). The index is built lazily on the first
	// flush — until a patch actually lands, decode stays index-free.
	if v.addrIndex == nil {
		v.addrIndex = make(map[uint32][]*Block, len(v.cache))
		for _, b := range v.cache {
			for _, a := range b.Addrs {
				v.addrIndex[a] = append(v.addrIndex[a], b)
			}
		}
	}
	victims := v.addrIndex[addr]
	if len(victims) == 0 {
		return
	}
	for _, b := range victims {
		if v.cache[b.Start] != b {
			continue // already ejected via another address
		}
		delete(v.cache, b.Start)
		for _, a := range b.Addrs {
			list := v.addrIndex[a]
			for i, q := range list {
				if q == b {
					list[i] = list[len(list)-1]
					v.addrIndex[a] = list[:len(list)-1]
					break
				}
			}
			if len(v.addrIndex[a]) == 0 {
				delete(v.addrIndex, a)
			}
		}
	}
	// Invalidate every successor link and superblock in one step: both
	// carry the generation they were created under, so bumping it orphans
	// links into (and out of) the ejected blocks — and every recorded
	// trace — without walking the cache.
	v.cacheGen++
}

// dispatch returns the block starting at pc. This is the code cache's
// dispatch point: edge coverage is recorded on every entry — linked or
// not, hit or miss — so coverage fingerprints are independent of the
// linking optimization. When prev has a valid successor link for pc the
// code-cache map is skipped entirely; otherwise the resolved block is
// linked into prev for next time.
func (v *VM) dispatch(prev *Block, pc uint32) (*Block, error) {
	if v.cov != nil {
		v.cov.hit(v.lastBlock, pc)
		v.lastBlock = pc
	}
	if prev != nil {
		if l := &prev.links[0]; l.b != nil && l.pc == pc && l.gen == v.cacheGen {
			return l.b, nil
		}
		if l := &prev.links[1]; l.b != nil && l.pc == pc && l.gen == v.cacheGen {
			return l.b, nil
		}
	}
	b, err := v.fetchBlock(pc)
	if err != nil {
		return nil, err
	}
	if prev != nil {
		// After a cache-generation bump, a slot may already hold this pc
		// with a stale gen. Refresh that slot in place rather than
		// claiming the round-robin slot: otherwise both slots end up
		// duplicating one successor and the live second target is evicted
		// (link thrash on every two-successor block after a patch).
		switch {
		case prev.links[0].b != nil && prev.links[0].pc == pc:
			prev.links[0] = blockLink{pc: pc, gen: v.cacheGen, b: b}
		case prev.links[1].b != nil && prev.links[1].pc == pc:
			prev.links[1] = blockLink{pc: pc, gen: v.cacheGen, b: b}
		default:
			prev.links[prev.linkRR&1] = blockLink{pc: pc, gen: v.cacheGen, b: b}
			prev.linkRR++
		}
	}
	return b, nil
}

// fetchBlock returns the cached block starting at pc, decoding and
// instrumenting it on a miss.
func (v *VM) fetchBlock(pc uint32) (*Block, error) {
	if b, ok := v.cache[pc]; ok {
		return b, nil
	}
	b, err := v.decodeBlock(pc)
	if err != nil {
		return nil, err
	}
	for _, pl := range v.plugins {
		pl.Instrument(v, b)
	}
	// Patch hooks are attached after plugin instrumentation so their
	// relative order is governed purely by priority.
	for i, addr := range b.Addrs {
		for _, p := range v.patches.byAddr[addr] {
			b.AddHook(i, p.Prio, p.Hook)
		}
	}
	v.cache[pc] = b
	if v.addrIndex != nil {
		for _, addr := range b.Addrs {
			v.addrIndex[addr] = append(v.addrIndex[addr], b)
		}
	}
	v.blocks++
	return b, nil
}

// decodeBlock reads instructions from pc until a block terminator.
func (v *VM) decodeBlock(pc uint32) (*Block, error) {
	b := &Block{Start: pc}
	for addr := pc; ; addr += isa.InstSize {
		if !v.InCode(addr) {
			return nil, fmt.Errorf("instruction fetch outside code region at %#x", addr)
		}
		raw, err := v.Mem.ReadBytes(addr, isa.InstSize)
		if err != nil {
			return nil, fmt.Errorf("instruction fetch fault at %#x", addr)
		}
		in, err := isa.Decode(raw)
		if err != nil {
			return nil, fmt.Errorf("undecodable instruction at %#x: %v", addr, err)
		}
		b.Insts = append(b.Insts, in)
		b.Addrs = append(b.Addrs, addr)
		if in.Op == isa.COPYB || !fuseSafe(&in) {
			b.noFuse = true
		}
		if in.Op.EndsBlock() {
			return b, nil
		}
	}
}

// CacheSize returns the number of blocks currently cached (for tests and
// the overhead benchmarks).
func (v *VM) CacheSize() int { return len(v.cache) }
