// Package sim is a deterministic discrete-event simulator for the
// community soak: a virtual clock and an event heap drive modeled-node
// state machines that emit real protocol envelopes into real Manager /
// Aggregator / RootGroup instances over loopback connections — no
// goroutine per node, no wall-clock sleeps. At small populations a
// simulated campaign is byte-identical to community.RunSoak with the
// same configuration (the equivalence oracle TestSimMatchesGoroutineSoak
// enforces); at large populations it reaches the paper's deployment
// scale (100k+ modeled nodes) in seconds.
package sim

// event is one scheduled simulator action: a virtual timestamp, a
// monotonic sequence number breaking timestamp ties in schedule order, a
// kind naming the obs stage the scheduler accounts it under, and the
// action itself.
type event struct {
	at   int64        // virtual time, abstract ticks
	seq  uint64       // schedule order; deterministic tie-break at equal times
	kind string       // event type; the scheduler's obs stage is "sim."+kind
	fn   func() error // the action
}

// before is the heap order: by time, then by schedule order — so
// same-time events fire exactly in the order they were scheduled.
func (e *event) before(o *event) bool {
	return e.at < o.at || (e.at == o.at && e.seq < o.seq)
}

// eventHeap is a binary min-heap of events ordered by (at, seq). It is
// hand-rolled rather than built on container/heap so Push and Pop stay
// monomorphic and allocation-free beyond the backing slice — the
// simulator schedules one event per node state transition, hundreds of
// thousands per round.
type eventHeap struct {
	items []*event
}

// Len reports how many events are pending.
func (h *eventHeap) Len() int { return len(h.items) }

// Push inserts an event.
func (h *eventHeap) Push(e *event) {
	h.items = append(h.items, e)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.items[i].before(h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

// Pop removes and returns the earliest event, nil when empty.
func (h *eventHeap) Pop() *event {
	if len(h.items) == 0 {
		return nil
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items[last] = nil // release for GC
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.items) && h.items[l].before(h.items[smallest]) {
			smallest = l
		}
		if r < len(h.items) && h.items[r].before(h.items[smallest]) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}
