package community

import (
	"testing"

	"repro/internal/core"
	"repro/internal/redteam"
	"repro/internal/vm"
)

// roundsToPatch drives n nodes in lock-step rounds (every node presents
// the attack once per round) and returns the number of rounds until some
// node survives.
func roundsToPatch(t *testing.T, nodes []*Node, attack []byte, maxRounds int) int {
	t.Helper()
	for round := 1; round <= maxRounds; round++ {
		survived := false
		for _, n := range nodes {
			res, err := n.RunOnce(attack)
			if err != nil {
				t.Fatal(err)
			}
			if res.Outcome == vm.OutcomeExit && res.ExitCode == 0 {
				survived = true
			}
		}
		if survived {
			return round
		}
	}
	t.Fatalf("not patched within %d rounds", maxRounds)
	return 0
}

// TestParallelRepairEvaluationIsFaster verifies the §3 benefit: "the
// community can evaluate candidate repairs in parallel, reducing the time
// required to find a successful repair". Exploit 269095 needs its third
// candidate repair; a single member must burn a round per candidate, while
// three members evaluate all three candidates in one round.
func TestParallelRepairEvaluationIsFaster(t *testing.T) {
	app := webappApp(t)
	ex := exploit269(t)
	attack := redteam.AttackInput(app.App, ex, 0)

	_, solo := startManager(t, setupManagerConfig(app), []string{"solo"})
	soloRounds := roundsToPatch(t, solo, attack, 12)

	_, trio := startManager(t, setupManagerConfig(app), []string{"n1", "n2", "n3"})
	trioRounds := roundsToPatch(t, trio, attack, 12)

	// Single member: 1 detect + 2 checks + 3 sequential repair rounds = 6.
	if soloRounds != 6 {
		t.Errorf("solo rounds = %d, want 6", soloRounds)
	}
	// Three members: detection and the two checking runs complete within
	// the first round (three presentations), and the one evaluation round
	// covers all three candidates — the member assigned the working
	// repair survives in round 2.
	if trioRounds >= soloRounds {
		t.Errorf("parallel evaluation not faster: trio %d rounds vs solo %d", trioRounds, soloRounds)
	}
}

// TestParallelAssignmentsAreDistinct: during the evaluation phase,
// different members are handed different candidate repairs.
func TestParallelAssignmentsAreDistinct(t *testing.T) {
	app := webappApp(t)
	ex := exploit269(t)
	attack := redteam.AttackInput(app.App, ex, 0)
	m, nodes := startManager(t, setupManagerConfig(app), []string{"a", "b", "c"})

	// Drive to the evaluation phase: three failing presentations
	// (detection + two checking runs) spread across the members.
	for i := 0; i < 3; i++ {
		if _, err := nodes[i].RunOnce(attack); err != nil {
			t.Fatal(err)
		}
	}
	site := app.App.Labels["site_269095"]
	if st := m.CaseStates()[site]; st != core.StateEvaluating {
		t.Fatalf("state = %v, want evaluating", st)
	}
	// Sync all members and compare assignments.
	ids := map[string]bool{}
	for _, n := range nodes {
		if err := n.Sync(); err != nil {
			t.Fatal(err)
		}
		reps := n.Directives().Repairs
		if len(reps) != 1 {
			t.Fatalf("%s: %d repair directives", n.ID, len(reps))
		}
		key := reps[0].Strategy.String()
		if ids[key] {
			t.Errorf("strategy %s assigned to two members", key)
		}
		ids[key] = true
	}
	if len(ids) != 3 {
		t.Errorf("distinct assignments = %d, want 3", len(ids))
	}
}

// helpers shared with the other community tests.

// setupManagerConfig builds a manager config from an already-learned
// setup (avoiding a fresh learning pass per manager).
func setupManagerConfig(s *redteam.Setup) ManagerConfig {
	return ManagerConfig{
		Image:           s.App.Image,
		Seed:            s.DB,
		BootstrapInputs: [][]byte{redteam.LearningCorpus()},
		StackScope:      1,
	}
}

var sharedSetup *redteam.Setup

func webappApp(t *testing.T) *redteam.Setup {
	t.Helper()
	if sharedSetup == nil {
		s, err := redteam.NewSetup(false)
		if err != nil {
			t.Fatal(err)
		}
		sharedSetup = s
	}
	return sharedSetup
}

func exploit269(t *testing.T) redteam.Exploit {
	t.Helper()
	for _, e := range redteam.Exploits() {
		if e.Bugzilla == "269095" {
			return e
		}
	}
	t.Fatal("missing 269095")
	return redteam.Exploit{}
}
