package repro_test

import (
	"testing"

	"repro/internal/community"
	"repro/internal/redteam"
)

// benchManager bundles a community manager with a node factory over the
// in-process transport for BenchmarkCommunityProtection.
type benchManager struct {
	m   *community.Manager
	app *redteam.Setup
}

func newBenchManager(setup *redteam.Setup) (*benchManager, error) {
	m, err := community.NewManager(community.ManagerConfig{
		Image:           setup.App.Image,
		Seed:            setup.DB,
		BootstrapInputs: [][]byte{redteam.LearningCorpus()},
	})
	if err != nil {
		return nil, err
	}
	return &benchManager{m: m, app: setup}, nil
}

func (bm *benchManager) node(id string) *community.Node {
	nodeSide, mgrSide := community.Pipe()
	go func() { _ = bm.m.Serve(mgrSide) }()
	n := community.NewNode(id, bm.app.App.Image, nodeSide)
	if err := n.Connect(); err != nil {
		panic(err)
	}
	return n
}

// BenchmarkCommunitySoak compares the two community shipping modes on an
// identical soak: batched (one MsgBatch per node per round) versus
// per-message (a sync and a report per run, plus recording uploads). The
// msgs metric is the manager-side envelope count the batching protocol
// exists to amortize; both modes must converge on every defect.
func BenchmarkCommunitySoak(b *testing.B) {
	setup, _ := sharedSetups(b)
	attacks := func() []community.SoakAttack {
		var out []community.SoakAttack
		for _, id := range []string{"290162", "312278"} {
			out = append(out, community.SoakAttack{
				Label: id, Input: redteam.AttackInput(setup.App, exploit(b, id), 0),
			})
		}
		return out
	}()
	for _, mode := range []struct {
		name    string
		batched bool
	}{{"batched", true}, {"per-message", false}} {
		b.Run(mode.name, func(b *testing.B) {
			var msgs, replays float64
			for i := 0; i < b.N; i++ {
				rep, err := community.RunSoak(community.SoakConfig{
					Image:           setup.App.Image,
					Seed:            setup.DB,
					BootstrapInputs: [][]byte{redteam.LearningCorpus()},
					Nodes:           12,
					Rounds:          6,
					Attacks:         attacks,
					Benign:          redteam.EvaluationPages()[:2],
					Batched:         mode.batched,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Converged {
					b.Fatalf("soak did not converge: %+v", rep)
				}
				msgs = float64(rep.Messages)
				replays = float64(rep.ReplayRuns)
			}
			b.ReportMetric(msgs, "msgs")
			b.ReportMetric(replays, "replays")
		})
	}
}
