//go:build !race

package sim

// raceDetectorEnabled reports whether this test binary was built with
// the race detector; see race_on_test.go.
const raceDetectorEnabled = false
