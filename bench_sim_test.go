package repro_test

import (
	"testing"

	"repro/internal/community"
	"repro/internal/community/sim"
	"repro/internal/redteam"
)

// BenchmarkSimSoak times the discrete-event simulator on a mid-scale
// hierarchical campaign — 2,000 nodes behind 16 aggregators with 40
// adversaries and churn, two orders of magnitude past what the
// goroutine soak benches at — and reports the scheduler's own shape:
// events fired, central-manager envelopes, and memoized executions.
// The campaign must converge with every adversary quarantined; the
// counts are deterministic (the sim is seeded and serial) and ride
// along as Info metrics, so the perf surface tracked here is the
// scheduler + wire-cache cost per simulated campaign.
func BenchmarkSimSoak(b *testing.B) {
	setup, _ := sharedSetups(b)
	var attacks []community.SoakAttack
	for _, id := range []string{"290162", "312278"} {
		attacks = append(attacks, community.SoakAttack{
			Label: id, Input: redteam.AttackInput(setup.App, exploit(b, id), 0),
		})
	}
	var events, msgs, memoHits float64
	for i := 0; i < b.N; i++ {
		rep, err := sim.Run(community.SoakConfig{
			Image:           setup.App.Image,
			Seed:            setup.DB,
			BootstrapInputs: [][]byte{redteam.LearningCorpus()},
			Nodes:           2000,
			Rounds:          6,
			Attacks:         attacks,
			Benign:          redteam.EvaluationPages()[:2],
			Batched:         true,
			Aggregators:     16,
			Adversaries:     40,
			Churn:           &community.ChurnConfig{CrashPerRound: 4, JoinPerRound: 2},
		})
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Converged {
			b.Fatalf("sim soak did not converge: %+v", rep.SoakReport)
		}
		if len(rep.Quarantined) != 40 {
			b.Fatalf("quarantined %d adversaries, want 40", len(rep.Quarantined))
		}
		events = float64(rep.Events)
		msgs = float64(rep.Messages)
		memoHits = float64(rep.MemoHits)
	}
	b.ReportMetric(events, "events")
	b.ReportMetric(msgs, "msgs")
	b.ReportMetric(memoHits, "memo-hits")
}
