// Package isa defines the instruction set architecture of the simulated
// 32-bit machine that ClearView protects.
//
// The ISA is deliberately x86-flavoured: eight general-purpose registers
// including a hardware stack pointer (ESP) and frame pointer (EBP), a flags
// register set by CMP, push/pop/call/ret with an in-memory stack, and —
// crucially for ClearView — indirect control transfers through registers
// (CALLR, JMPR) and through memory (CALLM, the vtable-dispatch idiom).
//
// Unlike real x86 the encoding is fixed width (8 bytes per instruction).
// Fixed width keeps the decoder and the symbolic CFG tracer simple without
// changing anything ClearView's algorithms depend on: binaries are still
// stripped (raw bytes, no symbols or procedure boundaries), control flow is
// still discovered dynamically, and operands are still registers and
// computed memory addresses.
//
// Instruction layout (little endian):
//
//	byte 0   opcode
//	byte 1   low nibble: register A   high nibble: register B
//	byte 2   low nibble: index register X (0xF = none)
//	         high nibble: scale shift (address = B + X<<scale + imm)
//	byte 3   reserved (must be zero)
//	byte 4-7 imm32 (signed immediate / displacement / branch offset)
package isa

import "fmt"

// InstSize is the fixed encoded size of every instruction in bytes.
const InstSize = 8

// Reg identifies a general-purpose register.
type Reg uint8

// General-purpose registers. ESP is the hardware stack pointer used
// implicitly by PUSH/POP/CALL/RET.
const (
	EAX Reg = 0
	ECX Reg = 1
	EDX Reg = 2
	EBX Reg = 3
	ESP Reg = 4
	EBP Reg = 5
	ESI Reg = 6
	EDI Reg = 7

	// NoReg marks an absent index register in a memory operand.
	NoReg Reg = 0xF
)

// NumRegs is the number of general-purpose registers.
const NumRegs = 8

var regNames = [...]string{"eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"}

// String returns the conventional lower-case register mnemonic.
func (r Reg) String() string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	if r == NoReg {
		return "none"
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// Valid reports whether r names an actual register (not NoReg).
func (r Reg) Valid() bool { return r < NumRegs }

// Op is an opcode.
type Op uint8

// Opcodes. The comment after each opcode gives its operational semantics
// in terms of the encoded fields A, B, X, S (scale shift) and Imm.
const (
	NOP  Op = iota // no operation
	HALT           // stop the machine (normal exit only via SYS exit)

	MOVRI // A = Imm
	MOVRR // A = B
	LOAD  // A = mem32[B + X<<S + Imm]
	STORE // mem32[B + X<<S + Imm] = A
	LOADB // A = zero-extend mem8[B + X<<S + Imm]
	STOREB
	// mem8[B + X<<S + Imm] = low byte of A
	LEA // A = B + X<<S + Imm

	ADDRR // A += B
	ADDRI // A += Imm
	SUBRR // A -= B
	SUBRI // A -= Imm
	MULRR // A *= B
	MULRI // A *= Imm
	ANDRR // A &= B
	ANDRI // A &= Imm
	ORRR  // A |= B
	ORRI  // A |= Imm
	XORRR // A ^= B
	XORRI // A ^= Imm
	SHLRI // A <<= Imm (mod 32)
	SHRRI // A >>= Imm logical (mod 32)
	SARRI // A >>= Imm arithmetic (mod 32)
	SEXTB // A = sign-extend low byte of A (the movsx idiom)

	CMPRR // flags = compare(A, B)
	CMPRI // flags = compare(A, Imm)

	JMP  // pc = next + Imm
	JMPR // pc = A (indirect)
	JE   // conditional relative branches on flags
	JNE
	JL  // signed <
	JLE // signed <=
	JG  // signed >
	JGE // signed >=
	JB  // unsigned <
	JBE // unsigned <=
	JA  // unsigned >
	JAE // unsigned >=

	CALL  // push next; pc = next + Imm
	CALLR // push next; pc = A (indirect through register)
	CALLM // push next; pc = mem32[B + X<<S + Imm] (indirect through memory)
	RET   // pc = pop()

	PUSH  // push A
	PUSHI // push Imm
	POP   // A = pop()

	SYS // system call; Imm selects the service (see Sys* constants)

	// COPYB is a block byte copy with implicit operands, modelled on the
	// x86 "rep movsb" idiom: while ECX != 0 { mem8[EDI] = mem8[ESI];
	// EDI++; ESI++; ECX-- }. Like rep movsb it is a single instruction
	// whose observable operands include the count register — which is why
	// ClearView's less-than invariants relating a copy length to a buffer
	// size live in the same basic block as the copy itself.
	COPYB

	// DIVRR and MODRR are signed division and remainder (A /= B, A %= B).
	// Like the x86 idiv they raise an arithmetic fault when the divisor is
	// zero — the fault class monitor.FaultGuard converts into a monitored
	// failure. The most-negative-dividend / -1 case wraps (no fault).
	DIVRR
	MODRR
	// LOADA is a 32-bit load that requires its computed address to be
	// 4-aligned (the word-walk idiom of SIMD/RISC-style table scans); a
	// misaligned address raises an alignment fault instead of loading.
	// The ordinary LOAD keeps x86's tolerance of unaligned access.
	LOADA

	opCount // sentinel; must remain last
)

// System call numbers carried in the Imm field of SYS.
const (
	SysExit    = 0 // exit(status=EAX); ends the run normally
	SysAlloc   = 1 // EAX = alloc(size=EAX)
	SysFree    = 2 // free(ptr=EAX)
	SysRealloc = 3 // EAX = realloc(ptr=EAX, size=ECX)
	SysRead    = 4 // EAX = read(buf=EAX, max=ECX) from the input stream
	SysWrite   = 5 // write(buf=EAX, len=ECX) to the display output
	SysInAvail = 6 // EAX = number of input bytes remaining
	// SysSetEH registers the address (EAX) of an exception-handler record
	// slot, emulating Windows structured exception handling: on a memory
	// fault the machine dispatches to the handler address stored in that
	// slot. Because the record lives on the application stack, a stack
	// overflow can overwrite it — the code-injection vector of Bugzilla
	// 296134 that Memory Firewall intercepts at dispatch time.
	SysSetEH = 7
)

var opNames = [...]string{
	NOP: "nop", HALT: "halt",
	MOVRI: "movri", MOVRR: "movrr",
	LOAD: "load", STORE: "store", LOADB: "loadb", STOREB: "storeb", LEA: "lea",
	ADDRR: "addrr", ADDRI: "addri", SUBRR: "subrr", SUBRI: "subri",
	MULRR: "mulrr", MULRI: "mulri", ANDRR: "andrr", ANDRI: "andri",
	ORRR: "orrr", ORRI: "orri", XORRR: "xorrr", XORRI: "xorri",
	SHLRI: "shlri", SHRRI: "shrri", SARRI: "sarri", SEXTB: "sextb",
	CMPRR: "cmprr", CMPRI: "cmpri",
	JMP: "jmp", JMPR: "jmpr",
	JE: "je", JNE: "jne", JL: "jl", JLE: "jle", JG: "jg", JGE: "jge",
	JB: "jb", JBE: "jbe", JA: "ja", JAE: "jae",
	CALL: "call", CALLR: "callr", CALLM: "callm", RET: "ret",
	PUSH: "push", PUSHI: "pushi", POP: "pop",
	SYS: "sys", COPYB: "copyb",
	DIVRR: "divrr", MODRR: "modrr", LOADA: "loada",
}

// String returns the opcode mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o < opCount }

// Inst is one decoded instruction.
type Inst struct {
	Op    Op
	A     Reg   // primary register operand
	B     Reg   // secondary register operand / memory base
	X     Reg   // memory index register, NoReg if absent
	Scale uint8 // shift applied to X (address = B + X<<Scale + Imm)
	Imm   int32 // immediate / displacement / relative branch offset
}

// IsCondBranch reports whether the opcode is a conditional relative branch.
func (o Op) IsCondBranch() bool { return o >= JE && o <= JAE }

// IsCall reports whether the opcode is any call form.
func (o Op) IsCall() bool { return o == CALL || o == CALLR || o == CALLM }

// IsIndirect reports whether the opcode transfers control to a
// runtime-computed target (the transfers Memory Firewall validates).
// RET is indirect: its target comes from the (possibly corrupted) stack.
func (o Op) IsIndirect() bool {
	return o == JMPR || o == CALLR || o == CALLM || o == RET
}

// EndsBlock reports whether the opcode terminates a basic block. Calls end
// blocks (as in DynamoRIO) with a fall-through successor at the return
// point. HALT and SYS exit the block because SYS may terminate the run.
func (o Op) EndsBlock() bool {
	switch o {
	case JMP, JMPR, RET, HALT, SYS:
		return true
	}
	return o.IsCondBranch() || o.IsCall()
}

// HasMemOperand reports whether the instruction computes a memory address
// from B + X<<Scale + Imm.
func (o Op) HasMemOperand() bool {
	switch o {
	case LOAD, STORE, LOADB, STOREB, LEA, CALLM, LOADA:
		return true
	}
	return false
}

// Faultable reports whether the instruction can raise an arithmetic or
// alignment fault from its operand values alone (the faults FaultGuard
// intercepts): division by zero and misaligned word loads.
func (o Op) Faultable() bool { return o == DIVRR || o == MODRR || o == LOADA }

// IsStore reports whether the opcode writes memory through its computed
// address (the writes Heap Guard instruments).
func (o Op) IsStore() bool { return o == STORE || o == STOREB }

// Encode packs the instruction into its 8-byte representation.
func (in Inst) Encode() [InstSize]byte {
	var b [InstSize]byte
	b[0] = byte(in.Op)
	b[1] = byte(in.A&0xF) | byte(in.B&0xF)<<4
	b[2] = byte(in.X&0xF) | (in.Scale&0xF)<<4
	b[3] = 0
	u := uint32(in.Imm)
	b[4] = byte(u)
	b[5] = byte(u >> 8)
	b[6] = byte(u >> 16)
	b[7] = byte(u >> 24)
	return b
}

// Decode unpacks one instruction from an 8-byte slice. It returns an error
// for undefined opcodes or malformed register fields so that the CFG tracer
// can stop at garbage bytes instead of mis-tracing.
func Decode(b []byte) (Inst, error) {
	if len(b) < InstSize {
		return Inst{}, fmt.Errorf("isa: short instruction: %d bytes", len(b))
	}
	in := Inst{
		Op:    Op(b[0]),
		A:     Reg(b[1] & 0xF),
		B:     Reg(b[1] >> 4),
		X:     Reg(b[2] & 0xF),
		Scale: b[2] >> 4,
		Imm:   int32(uint32(b[4]) | uint32(b[5])<<8 | uint32(b[6])<<16 | uint32(b[7])<<24),
	}
	if !in.Op.Valid() {
		return Inst{}, fmt.Errorf("isa: invalid opcode %d", b[0])
	}
	if b[3] != 0 {
		return Inst{}, fmt.Errorf("isa: nonzero reserved byte %#x", b[3])
	}
	if in.A == NoReg && usesA(in.Op) {
		return Inst{}, fmt.Errorf("isa: %s: missing A register", in.Op)
	}
	return in, nil
}

func usesA(o Op) bool {
	switch o {
	case NOP, HALT, JMP, CALL, RET, PUSHI, SYS, CALLM, COPYB:
		return false
	}
	return !o.IsCondBranch()
}

// String renders the instruction in a readable assembly-like syntax.
func (in Inst) String() string {
	mem := func() string {
		s := fmt.Sprintf("[%s", in.B)
		if in.X.Valid() {
			s += fmt.Sprintf("+%s<<%d", in.X, in.Scale)
		}
		if in.Imm != 0 {
			s += fmt.Sprintf("%+d", in.Imm)
		}
		return s + "]"
	}
	switch in.Op {
	case NOP, HALT, RET:
		return in.Op.String()
	case MOVRI, ADDRI, SUBRI, MULRI, ANDRI, ORRI, XORRI, SHLRI, SHRRI, SARRI, CMPRI:
		return fmt.Sprintf("%s %s, %d", in.Op, in.A, in.Imm)
	case SEXTB:
		return fmt.Sprintf("%s %s", in.Op, in.A)
	case MOVRR, ADDRR, SUBRR, MULRR, ANDRR, ORRR, XORRR, CMPRR, DIVRR, MODRR:
		return fmt.Sprintf("%s %s, %s", in.Op, in.A, in.B)
	case LOAD, LOADB, LEA, LOADA:
		return fmt.Sprintf("%s %s, %s", in.Op, in.A, mem())
	case STORE, STOREB:
		return fmt.Sprintf("%s %s, %s", in.Op, mem(), in.A)
	case JMP, CALL:
		return fmt.Sprintf("%s %+d", in.Op, in.Imm)
	case JMPR, CALLR, PUSH, POP:
		return fmt.Sprintf("%s %s", in.Op, in.A)
	case CALLM:
		return fmt.Sprintf("%s %s", in.Op, mem())
	case PUSHI:
		return fmt.Sprintf("%s %d", in.Op, in.Imm)
	case SYS:
		return fmt.Sprintf("%s %d", in.Op, in.Imm)
	case COPYB:
		return "copyb [edi], [esi], ecx"
	}
	if in.Op.IsCondBranch() {
		return fmt.Sprintf("%s %+d", in.Op, in.Imm)
	}
	return fmt.Sprintf("%s ?", in.Op)
}
