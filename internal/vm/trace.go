package vm

// Trace recording: the profiling half of the trace tier.
//
// The dispatch loop counts block-entry heat at the same point that records
// edge coverage. When a head crosses the VM's trace threshold, the recorder
// turns on and captures the chain of blocks execution actually takes —
// not a static CFG walk, but the hot path as run, exactly as Dynamo-style
// trace selection does. The recording closes when execution returns to the
// head (a loop trace) or hits the length cap (a linear trace), and is
// installed as a superblock on the head block (superblock.go).
//
// A recording is abandoned whenever its view of the world goes stale:
// the cache generation bumps (a patch landed mid-recording), a different
// superblock executes (the recorder cannot see the blocks it runs), or the
// run ends (Run resets the recorder on entry).

// maxTraceBlocks caps the logical blocks fused into one superblock. Inner
// loops shorter than the cap unroll into the trace; longer chains become
// linear traces whose tail side-exits back to dispatch.
const maxTraceBlocks = 16

// traceRecorder is the per-VM in-flight recording state.
type traceRecorder struct {
	active bool
	gen    uint64 // cache generation the recording is valid for
	head   *Block
	blocks []*Block // the chain as executed, head first
}

// observeBlock is called at the dispatch point for every block entry that
// does not run as a superblock. It advances an active recording or counts
// heat toward starting one.
func (v *VM) observeBlock(b *Block) {
	if v.rec.active {
		switch {
		case v.rec.gen != v.cacheGen:
			// A patch landed mid-recording; the captured chain may not
			// reflect the patched code. Drop it and let heat re-arm.
			v.rec.active = false
		case b == v.rec.head:
			// Execution closed the loop back to the head: the recorded
			// chain is the loop body, and the superblock may iterate it
			// in place instead of side-exiting after every pass.
			v.installTrace(true)
			return
		default:
			v.rec.blocks = append(v.rec.blocks, b)
			if len(v.rec.blocks) >= maxTraceBlocks {
				v.installTrace(false)
			}
			return
		}
	}
	b.heat++
	if b.heat >= v.traceThreshold && (b.sb == nil || b.sb.gen != v.cacheGen) {
		v.rec.active = true
		v.rec.gen = v.cacheGen
		v.rec.head = b
		v.rec.blocks = append(v.rec.blocks[:0], b)
	}
}

// installTrace freezes the current recording into a superblock on its head
// block. The superblock carries the cache generation it was recorded
// under; any subsequent patch apply/remove bumps the generation and the
// trace dies without being visited (same O(1) invalidation rule as
// successor links).
func (v *VM) installTrace(loop bool) {
	v.rec.active = false
	blocks := make([]*Block, len(v.rec.blocks))
	copy(blocks, v.rec.blocks)
	v.rec.head.sb = &superblock{gen: v.rec.gen, blocks: blocks, loop: loop}
}
