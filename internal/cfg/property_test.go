package cfg

import (
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/image"
	"repro/internal/isa"
)

// randomProc emits a structurally valid random procedure: straight-line
// runs punctuated by forward conditional branches (guaranteeing
// termination of the static trace) and a final return.
func randomProc(rng *rand.Rand, a *asm.Assembler, name string, blocks int) {
	a.Label(name)
	for i := 0; i < blocks; i++ {
		run := 1 + rng.Intn(3)
		for j := 0; j < run; j++ {
			a.MovRI(isa.Reg(rng.Intn(4)), int32(rng.Intn(100)))
		}
		if i < blocks-1 && rng.Intn(2) == 0 {
			// Forward branch over the next block (both arms exist).
			a.CmpRI(isa.EAX, int32(rng.Intn(10)))
			a.Je(procLabel(name, i+1))
		}
		a.Label(procLabel(name, i+1))
	}
	a.Ret()
}

func procLabel(name string, i int) string {
	return name + "_b" + string(rune('0'+i%10)) + string(rune('a'+i/10))
}

// TestDominancePartialOrder checks the defining properties of the
// predominator relation over randomly generated procedures: reflexivity,
// antisymmetry, transitivity, and that the entry instruction predominates
// everything.
func TestDominancePartialOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		a := asm.New(0x1000)
		randomProc(rng, a, "f", 2+rng.Intn(5))
		code, labels, err := a.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		img := &image.Image{Base: 0x1000, Entry: labels["f"], Code: code}
		db := NewDB(img)
		p := db.NoteBlockExec(labels["f"])
		instrs := p.Instrs()
		if len(instrs) == 0 {
			t.Fatal("empty procedure")
		}
		entry := labels["f"]
		for _, i := range instrs {
			if !p.Predominates(i, i) {
				t.Fatalf("trial %d: not reflexive at %#x", trial, i)
			}
			if !p.Predominates(entry, i) {
				t.Fatalf("trial %d: entry does not predominate %#x", trial, i)
			}
		}
		for _, i := range instrs {
			for _, j := range instrs {
				if i != j && p.Predominates(i, j) && p.Predominates(j, i) {
					t.Fatalf("trial %d: %#x and %#x predominate each other", trial, i, j)
				}
				for _, k := range instrs {
					if p.Predominates(i, j) && p.Predominates(j, k) && !p.Predominates(i, k) {
						t.Fatalf("trial %d: transitivity broken %#x->%#x->%#x", trial, i, j, k)
					}
				}
			}
		}
	}
}

// TestPredominatorsChainOrdered checks that Predominators returns a chain
// in dominance order (each element predominates all later ones) ending at
// the query instruction.
func TestPredominatorsChainOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		a := asm.New(0x1000)
		randomProc(rng, a, "g", 2+rng.Intn(5))
		code, labels, err := a.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		img := &image.Image{Base: 0x1000, Entry: labels["g"], Code: code}
		db := NewDB(img)
		p := db.NoteBlockExec(labels["g"])
		for _, q := range p.Instrs() {
			chain := p.Predominators(q)
			if len(chain) == 0 || chain[len(chain)-1] != q {
				t.Fatalf("trial %d: chain for %#x does not end at it: %#v", trial, q, chain)
			}
			for x := 0; x < len(chain); x++ {
				for y := x + 1; y < len(chain); y++ {
					if !p.Predominates(chain[x], chain[y]) {
						t.Fatalf("trial %d: chain out of order: %#x !dom %#x",
							trial, chain[x], chain[y])
					}
				}
			}
		}
	}
}
