package redteam

import (
	"testing"

	"repro/internal/core"
	"repro/internal/daikon"
	"repro/internal/vm"
	"repro/internal/webapp"
)

// The learning corpus carries an invisible contract with the exploits:
// incidental values (element offsets, heap addresses, free-ranging fields)
// must vary enough across the twelve pages that their one-of invariants
// overflow and die, while the stable properties the repairs rely on
// survive. These tests pin that contract so corpus edits cannot silently
// break the Table 1 reproduction.

func learnedDB(t *testing.T, expanded bool) (*webapp.App, *daikon.DB) {
	t.Helper()
	setup := getSetup(t, expanded)
	return setup.App, setup.DB
}

func invariantsAt(db *daikon.DB, pc uint32) map[daikon.Kind]int {
	out := map[daikon.Kind]int{}
	for _, inv := range db.At(pc) {
		out[inv.Kind]++
	}
	return out
}

func TestCorpusLearnsCallSiteOneOfs(t *testing.T) {
	// Every virtual-dispatch site must carry a one-of invariant on its
	// call-target slot — the invariant behind five of the repairs.
	app, db := learnedDB(t, false)
	for _, site := range []string{
		"site_290162", "site_295854", "site_312278", "site_269095", "site_320182",
		"site_311710a_call", "site_311710b_call", "site_311710c_call",
	} {
		pc := app.Labels[site]
		found := false
		for _, inv := range db.At(pc) {
			if inv.Kind == daikon.KindOneOf && inv.Var.Slot == 2 && len(inv.Values) == 1 {
				found = true
				// The single observed callee must be a code address.
				if !app.Image.Contains(inv.Values[0]) {
					t.Errorf("%s: one-of value %#x outside code", site, inv.Values[0])
				}
			}
		}
		if !found {
			t.Errorf("%s: no single-valued call-target one-of; got %v", site, db.At(pc))
		}
	}
}

func TestCorpusLearnsSPOffsetsAtCallSites(t *testing.T) {
	// The return-from-procedure repair needs a stack-pointer-offset
	// invariant at the dispatch sites (269095/320182 depend on it).
	app, db := learnedDB(t, false)
	for _, site := range []string{"site_269095", "site_320182"} {
		if _, ok := db.SPOffsetAt(app.Labels[site]); !ok {
			t.Errorf("%s: no sp-offset invariant learned", site)
		}
	}
}

func TestCorpusKillsIncidentalOneOfs(t *testing.T) {
	// The copy-length slot at the STR copy must have lower-bound but NOT
	// one-of (nine distinct lengths kill it); a surviving one-of would
	// change which repair wins for 296134.
	app, db := learnedDB(t, false)
	kinds := invariantsAt(db, app.Labels["site_296134_len"])
	if kinds[daikon.KindLowerBound] == 0 {
		t.Error("no lower bound on the computed string length")
	}
	for _, inv := range db.At(app.Labels["site_296134_len"]) {
		if inv.Kind == daikon.KindOneOf && inv.Var.Slot == 0 {
			t.Errorf("one-of survived on the string length: %v", inv)
		}
	}
}

func TestExpandedCorpusCoversGrowthPath(t *testing.T) {
	// §4.3.2: the default corpus leaves the unicode growth path dark; the
	// expanded corpus lights it up.
	app, base := learnedDB(t, false)
	if n := len(base.At(app.Labels["site_325403_grow"])); n != 0 {
		t.Errorf("default corpus learned %d invariants on the growth path", n)
	}
	_, expanded := learnedDB(t, true)
	if n := len(expanded.At(app.Labels["site_325403_grow"])); n == 0 {
		t.Error("expanded corpus learned nothing on the growth path")
	}
}

func TestCorpusPagesFitTheBuffer(t *testing.T) {
	for k, page := range LearningPages() {
		if body := len(page) - 2; body > webapp.PageBufSize {
			t.Errorf("learning page %d body = %d bytes > %d", k, body, webapp.PageBufSize)
		}
	}
	for j, page := range EvaluationPages() {
		if body := len(page) - 2; body > webapp.PageBufSize {
			t.Errorf("evaluation page %d body = %d bytes > %d", j, body, webapp.PageBufSize)
		}
	}
	if got := len(EvaluationPages()); got != 57 {
		t.Errorf("evaluation pages = %d, want the Red Team's 57", got)
	}
	if got := len(LearningPages()); got != 12 {
		t.Errorf("learning pages = %d, want the Blue Team's 12", got)
	}
}

func TestFillerAvoidsSentinelBytes(t *testing.T) {
	b := bytesOfLen(4096, 5)
	for i, v := range b {
		if v == 0xAD {
			t.Fatalf("filler[%d] is the soft-hyphen byte", i)
		}
		if v == 0xFD {
			t.Fatalf("filler[%d] is the canary byte", i)
		}
	}
}

// TestPatchedGifRendersExploitImage pins the §6.2 claim: after the 285595
// patch, users can view image files that also contain exploits — the
// repair neutralizes the attack "and enables Firefox to display the image
// correctly" rather than filtering the input out.
func TestPatchedGifRendersExploitImage(t *testing.T) {
	setup := getSetup(t, false)
	cv, err := setup.ClearView(2)
	if err != nil {
		t.Fatal(err)
	}
	ex := exploitByID(t, "285595")
	res := RunSingleVariant(cv, setup.App, ex, 10)
	if !res.Patched {
		t.Fatal("setup: 285595 not patched")
	}
	out := cv.Execute(Input(ex.Build(setup.App, 0)))
	if out.Outcome != vm.OutcomeExit {
		t.Fatalf("patched app did not survive the image: %+v", out)
	}
	// The GIF handler writes the first canvas row: the image displayed.
	if len(out.Output) < 4 {
		t.Fatalf("exploit image not rendered: display = %v", out.Output)
	}
}

// TestCaseStateAfterFullExercise: one instance absorbing all the
// scope-1-repairable exploits ends with every case patched and reports
// available for each.
func TestCaseStateAfterFullExercise(t *testing.T) {
	setup := getSetup(t, false)
	cv, err := setup.ClearView(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"269095", "290162", "295854", "296134", "311710", "312278", "320182"} {
		ex := exploitByID(t, id)
		if res := RunSingleVariant(cv, setup.App, ex, 24); !res.Patched {
			t.Fatalf("%s not patched", id)
		}
	}
	cases := cv.Cases()
	if len(cases) != 9 { // 7 exploits, 311710 contributing three cases
		t.Fatalf("cases = %d, want 9", len(cases))
	}
	for _, fc := range cases {
		if fc.State != core.StatePatched {
			t.Errorf("%s: %v", fc.ID, fc.State)
		}
		if fc.Report() == "" {
			t.Errorf("%s: empty maintainer report", fc.ID)
		}
	}
}
