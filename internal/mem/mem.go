// Package mem implements the simulated 32-bit address space: a sparse paged
// memory, and a heap allocator that places canary words at block boundaries
// and maintains the allocation map that the Heap Guard monitor consults.
//
// Two allocator behaviours are deliberate hosts for the paper's defect
// classes: freed blocks are recycled LIFO per size class *without being
// cleared* (use-after-free and uninitialized-reallocation defects, Bugzilla
// 269095/312278/320182), and out-of-bounds writes inside the mapped heap
// arena do not fault — they silently corrupt, exactly as on real hardware,
// unless Heap Guard notices a canary being overwritten.
package mem

import (
	"fmt"
	"sort"
)

// PageSize is the granularity of the sparse address space.
const PageSize = 4096

// Canary is the value Heap Guard plants at allocated-block boundaries.
const Canary uint32 = 0xFDFDFDFD

// Fault reports an access to unmapped memory. The execution environment
// converts faults into crashes (not monitor-detected failures).
type Fault struct {
	Addr  uint32
	Write bool
}

func (f *Fault) Error() string {
	kind := "read"
	if f.Write {
		kind = "write"
	}
	return fmt.Sprintf("memory fault: %s at %#x", kind, f.Addr)
}

// Memory is a sparse paged 32-bit address space.
type Memory struct {
	pages map[uint32][]byte
}

// New returns an empty address space.
func New() *Memory {
	return &Memory{pages: make(map[uint32][]byte)}
}

// Map makes [addr, addr+size) accessible, zero filled.
func (m *Memory) Map(addr, size uint32) {
	if size == 0 {
		return
	}
	first := addr / PageSize
	last := (addr + size - 1) / PageSize
	for p := first; ; p++ {
		if _, ok := m.pages[p]; !ok {
			m.pages[p] = make([]byte, PageSize)
		}
		if p == last {
			break
		}
	}
}

// Mapped reports whether addr is accessible.
func (m *Memory) Mapped(addr uint32) bool {
	_, ok := m.pages[addr/PageSize]
	return ok
}

func (m *Memory) page(addr uint32, write bool) ([]byte, error) {
	p, ok := m.pages[addr/PageSize]
	if !ok {
		return nil, &Fault{Addr: addr, Write: write}
	}
	return p, nil
}

// Read8 loads one byte.
func (m *Memory) Read8(addr uint32) (byte, error) {
	p, err := m.page(addr, false)
	if err != nil {
		return 0, err
	}
	return p[addr%PageSize], nil
}

// Write8 stores one byte.
func (m *Memory) Write8(addr uint32, v byte) error {
	p, err := m.page(addr, true)
	if err != nil {
		return err
	}
	p[addr%PageSize] = v
	return nil
}

// Read32 loads a little-endian 32-bit word. The word may straddle pages.
func (m *Memory) Read32(addr uint32) (uint32, error) {
	if addr%PageSize <= PageSize-4 {
		p, err := m.page(addr, false)
		if err != nil {
			return 0, err
		}
		o := addr % PageSize
		return uint32(p[o]) | uint32(p[o+1])<<8 | uint32(p[o+2])<<16 | uint32(p[o+3])<<24, nil
	}
	var v uint32
	for i := uint32(0); i < 4; i++ {
		b, err := m.Read8(addr + i)
		if err != nil {
			return 0, err
		}
		v |= uint32(b) << (8 * i)
	}
	return v, nil
}

// Write32 stores a little-endian 32-bit word.
func (m *Memory) Write32(addr uint32, v uint32) error {
	if addr%PageSize <= PageSize-4 {
		p, err := m.page(addr, true)
		if err != nil {
			return err
		}
		o := addr % PageSize
		p[o] = byte(v)
		p[o+1] = byte(v >> 8)
		p[o+2] = byte(v >> 16)
		p[o+3] = byte(v >> 24)
		return nil
	}
	for i := uint32(0); i < 4; i++ {
		if err := m.Write8(addr+i, byte(v>>(8*i))); err != nil {
			return err
		}
	}
	return nil
}

// ReadBytes copies n bytes starting at addr.
func (m *Memory) ReadBytes(addr, n uint32) ([]byte, error) {
	out := make([]byte, n)
	for i := uint32(0); i < n; i++ {
		b, err := m.Read8(addr + i)
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return out, nil
}

// WriteBytes copies b into memory starting at addr.
func (m *Memory) WriteBytes(addr uint32, b []byte) error {
	for i, v := range b {
		if err := m.Write8(addr+uint32(i), v); err != nil {
			return err
		}
	}
	return nil
}

// Block is one allocated heap block in the allocation map.
type Block struct {
	Addr uint32 // first usable byte
	Size uint32 // usable size (rounded up to 4)
}

// Heap is a canary-guarded bump allocator with LIFO per-size recycling.
type Heap struct {
	mem      *Memory
	base     uint32
	limit    uint32
	brk      uint32
	blocks   []Block             // sorted by Addr
	freelist map[uint32][]uint32 // size -> LIFO of recycled block addresses
	allocs   uint64
	frees    uint64
}

// NewHeap creates a heap managing [base, base+size).
func NewHeap(m *Memory, base, size uint32) *Heap {
	return &Heap{
		mem:      m,
		base:     base,
		limit:    base + size,
		brk:      base,
		freelist: make(map[uint32][]uint32),
	}
}

// Base returns the lowest heap address.
func (h *Heap) Base() uint32 { return h.base }

// Limit returns one past the highest heap address.
func (h *Heap) Limit() uint32 { return h.limit }

// Contains reports whether addr lies inside the heap arena.
func (h *Heap) Contains(addr uint32) bool { return addr >= h.base && addr < h.limit }

// Stats returns cumulative allocation and free counts.
func (h *Heap) Stats() (allocs, frees uint64) { return h.allocs, h.frees }

func roundUp4(n uint32) uint32 { return (n + 3) &^ 3 }

// Alloc returns a block of at least size bytes, with canary words planted
// immediately before and after it. Recycled blocks are returned with their
// previous contents intact (deliberately — see the package comment).
func (h *Heap) Alloc(size uint32) (uint32, error) {
	size = roundUp4(size)
	if size == 0 {
		size = 4
	}
	h.allocs++
	if fl := h.freelist[size]; len(fl) > 0 {
		addr := fl[len(fl)-1]
		h.freelist[size] = fl[:len(fl)-1]
		h.insertBlock(Block{Addr: addr, Size: size})
		// Canaries were planted when the block was first carved and are
		// re-planted here in case the application overwrote them while
		// the block was live (a legitimate in-bounds canary-value write).
		h.plantCanaries(addr, size)
		return addr, nil
	}
	need := size + 8 // front canary + block + rear canary
	if h.brk+need > h.limit || h.brk+need < h.brk {
		return 0, fmt.Errorf("heap: out of memory: %d bytes requested", size)
	}
	start := h.brk
	h.brk += need
	h.mem.Map(start, need)
	addr := start + 4
	h.plantCanaries(addr, size)
	h.insertBlock(Block{Addr: addr, Size: size})
	return addr, nil
}

func (h *Heap) plantCanaries(addr, size uint32) {
	// The canary pages are always mapped because they were carved from brk.
	_ = h.mem.Write32(addr-4, Canary)
	_ = h.mem.Write32(addr+size, Canary)
}

func (h *Heap) insertBlock(b Block) {
	i := sort.Search(len(h.blocks), func(i int) bool { return h.blocks[i].Addr >= b.Addr })
	h.blocks = append(h.blocks, Block{})
	copy(h.blocks[i+1:], h.blocks[i:])
	h.blocks[i] = b
}

// Free releases the block at addr. Contents are not cleared. Freeing an
// address that is not a live block start is an error (the simulated
// application's defects never double-free; they free too early).
func (h *Heap) Free(addr uint32) error {
	i := sort.Search(len(h.blocks), func(i int) bool { return h.blocks[i].Addr >= addr })
	if i >= len(h.blocks) || h.blocks[i].Addr != addr {
		return fmt.Errorf("heap: free of non-allocated address %#x", addr)
	}
	size := h.blocks[i].Size
	h.blocks = append(h.blocks[:i], h.blocks[i+1:]...)
	h.freelist[size] = append(h.freelist[size], addr)
	h.frees++
	return nil
}

// Realloc allocates a new block of the requested size, copies the smaller
// of the two sizes, and frees the old block.
func (h *Heap) Realloc(addr, size uint32) (uint32, error) {
	b, ok := h.FindBlock(addr)
	if !ok || b.Addr != addr {
		return 0, fmt.Errorf("heap: realloc of non-allocated address %#x", addr)
	}
	na, err := h.Alloc(size)
	if err != nil {
		return 0, err
	}
	n := b.Size
	if size < n {
		n = size
	}
	data, err := h.mem.ReadBytes(addr, n)
	if err != nil {
		return 0, err
	}
	if err := h.mem.WriteBytes(na, data); err != nil {
		return 0, err
	}
	if err := h.Free(addr); err != nil {
		return 0, err
	}
	return na, nil
}

// FindBlock returns the allocated block containing addr, if any. This is
// the allocation-map lookup Heap Guard performs when a write target holds
// the canary value (§2.3).
func (h *Heap) FindBlock(addr uint32) (Block, bool) {
	i := sort.Search(len(h.blocks), func(i int) bool { return h.blocks[i].Addr > addr })
	if i == 0 {
		return Block{}, false
	}
	b := h.blocks[i-1]
	if addr >= b.Addr && addr < b.Addr+b.Size {
		return b, true
	}
	return Block{}, false
}

// LiveBlocks returns a copy of the allocation map, sorted by address.
func (h *Heap) LiveBlocks() []Block {
	return append([]Block(nil), h.blocks...)
}
