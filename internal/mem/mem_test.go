package mem

import (
	"testing"
	"testing/quick"
)

func TestReadWriteBasic(t *testing.T) {
	m := New()
	m.Map(0x1000, 0x100)
	if err := m.Write32(0x1000, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	v, err := m.Read32(0x1000)
	if err != nil || v != 0xDEADBEEF {
		t.Fatalf("Read32 = %#x, %v", v, err)
	}
	b, err := m.Read8(0x1000)
	if err != nil || b != 0xEF {
		t.Fatalf("little-endian low byte = %#x, %v", b, err)
	}
}

func TestUnmappedFaults(t *testing.T) {
	m := New()
	if _, err := m.Read32(0x5000); err == nil {
		t.Error("read of unmapped memory succeeded")
	}
	if err := m.Write8(0x5000, 1); err == nil {
		t.Error("write of unmapped memory succeeded")
	}
	var f *Fault
	_, err := m.Read8(0x7777)
	if f, _ = err.(*Fault); f == nil || f.Addr != 0x7777 || f.Write {
		t.Errorf("fault detail wrong: %v", err)
	}
}

func TestCrossPageWord(t *testing.T) {
	m := New()
	m.Map(PageSize-2, 8) // maps pages 0 and 1
	if err := m.Write32(PageSize-2, 0x11223344); err != nil {
		t.Fatal(err)
	}
	v, err := m.Read32(PageSize - 2)
	if err != nil || v != 0x11223344 {
		t.Fatalf("cross-page word = %#x, %v", v, err)
	}
}

func TestReadWriteBytesRoundTrip(t *testing.T) {
	m := New()
	m.Map(0x2000, 0x1000)
	f := func(data []byte, off uint16) bool {
		if len(data) > 512 {
			data = data[:512]
		}
		addr := 0x2000 + uint32(off%1024)
		if err := m.WriteBytes(addr, data); err != nil {
			return false
		}
		got, err := m.ReadBytes(addr, uint32(len(data)))
		if err != nil {
			return false
		}
		for i := range data {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func newTestHeap(t *testing.T) (*Memory, *Heap) {
	t.Helper()
	m := New()
	return m, NewHeap(m, 0x2000_0000, 0x10_0000)
}

func TestHeapAllocPlantsCanaries(t *testing.T) {
	m, h := newTestHeap(t)
	addr, err := h.Alloc(16)
	if err != nil {
		t.Fatal(err)
	}
	front, _ := m.Read32(addr - 4)
	rear, _ := m.Read32(addr + 16)
	if front != Canary || rear != Canary {
		t.Errorf("canaries = %#x %#x, want %#x", front, rear, Canary)
	}
}

func TestHeapAllocRoundsUp(t *testing.T) {
	_, h := newTestHeap(t)
	addr, err := h.Alloc(5)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := h.FindBlock(addr)
	if !ok || b.Size != 8 {
		t.Errorf("size 5 rounds to %d, want 8", b.Size)
	}
	z, err := h.Alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	if b, _ := h.FindBlock(z); b.Size != 4 {
		t.Errorf("zero alloc size = %d, want 4", b.Size)
	}
}

func TestHeapFindBlock(t *testing.T) {
	_, h := newTestHeap(t)
	a, _ := h.Alloc(32)
	b, _ := h.Alloc(8)
	if blk, ok := h.FindBlock(a + 31); !ok || blk.Addr != a {
		t.Error("interior address not found")
	}
	if blk, ok := h.FindBlock(b); !ok || blk.Addr != b {
		t.Error("block start not found")
	}
	if _, ok := h.FindBlock(a + 32); ok {
		t.Error("rear canary address reported in-bounds")
	}
	if _, ok := h.FindBlock(a - 4); ok {
		t.Error("front canary address reported in-bounds")
	}
}

func TestHeapFreeRecyclesLIFOWithoutClearing(t *testing.T) {
	// This behaviour hosts the paper's uninitialized-reallocation defects
	// (Bugzilla 269095/320182): a recycled block keeps its old contents.
	m, h := newTestHeap(t)
	a, _ := h.Alloc(16)
	if err := m.Write32(a, 0xCAFEBABE); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	b, _ := h.Alloc(16)
	if b != a {
		t.Fatalf("LIFO recycling: got %#x want %#x", b, a)
	}
	v, _ := m.Read32(b)
	if v != 0xCAFEBABE {
		t.Errorf("recycled block cleared: %#x", v)
	}
}

func TestHeapFreeErrors(t *testing.T) {
	_, h := newTestHeap(t)
	a, _ := h.Alloc(16)
	if err := h.Free(a + 4); err == nil {
		t.Error("free of interior pointer succeeded")
	}
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(a); err == nil {
		t.Error("double free succeeded")
	}
}

func TestHeapRealloc(t *testing.T) {
	m, h := newTestHeap(t)
	a, _ := h.Alloc(8)
	_ = m.Write32(a, 0x11111111)
	_ = m.Write32(a+4, 0x22222222)
	b, err := h.Realloc(a, 16)
	if err != nil {
		t.Fatal(err)
	}
	v0, _ := m.Read32(b)
	v1, _ := m.Read32(b + 4)
	if v0 != 0x11111111 || v1 != 0x22222222 {
		t.Errorf("realloc lost data: %#x %#x", v0, v1)
	}
	if _, ok := h.FindBlock(a); ok && a != b {
		t.Error("old block still live after realloc")
	}
	if _, err := h.Realloc(0x12345678, 8); err == nil {
		t.Error("realloc of wild pointer succeeded")
	}
}

func TestHeapOutOfMemory(t *testing.T) {
	m := New()
	h := NewHeap(m, 0x2000_0000, 64)
	if _, err := h.Alloc(128); err == nil {
		t.Error("oversized alloc succeeded")
	}
}

func TestHeapCanariesRestoredOnRecycle(t *testing.T) {
	m, h := newTestHeap(t)
	a, _ := h.Alloc(16)
	_ = m.Write32(a-4, 0) // simulate corruption while live... then free
	_ = h.Free(a)
	b, _ := h.Alloc(16)
	front, _ := m.Read32(b - 4)
	if front != Canary {
		t.Errorf("front canary not re-planted on recycle: %#x", front)
	}
}

func TestHeapInvariantNoOverlap(t *testing.T) {
	// Property: live blocks never overlap, and every block's canaries
	// never fall inside another live block.
	_, h := newTestHeap(t)
	var live []uint32
	f := func(sizes []uint16, freeIdx []uint8) bool {
		for _, s := range sizes {
			a, err := h.Alloc(uint32(s%256 + 1))
			if err != nil {
				return false
			}
			live = append(live, a)
		}
		for _, fi := range freeIdx {
			if len(live) == 0 {
				break
			}
			i := int(fi) % len(live)
			if err := h.Free(live[i]); err != nil {
				return false
			}
			live = append(live[:i], live[i+1:]...)
		}
		blocks := h.LiveBlocks()
		for i := 1; i < len(blocks); i++ {
			prev, cur := blocks[i-1], blocks[i]
			if prev.Addr+prev.Size > cur.Addr {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHeapStats(t *testing.T) {
	_, h := newTestHeap(t)
	a, _ := h.Alloc(8)
	_, _ = h.Alloc(8)
	_ = h.Free(a)
	allocs, frees := h.Stats()
	if allocs != 2 || frees != 1 {
		t.Errorf("stats = %d/%d, want 2/1", allocs, frees)
	}
}
