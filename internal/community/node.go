package community

import (
	"fmt"

	"repro/internal/correlate"
	"repro/internal/daikon"
	"repro/internal/image"
	"repro/internal/obs"
	"repro/internal/repair"
	"repro/internal/replay"
	"repro/internal/trace"
	"repro/internal/vm"
)

// Node is one community member's node manager (the Determina Node Manager
// analog): it applies the manager's directives to its application
// instances, runs its own workload, streams observations and failure
// notifications back, and contributes its share of the distributed
// learning.
type Node struct {
	ID    string       // stable identity; all community state is keyed by it
	Image *image.Image // the protected binary this node runs

	// RecordFailures makes the node capture every execution as a
	// copy-on-write recording and ship failing ones to the manager
	// (MsgRecording), enabling the manager's replay fast path.
	RecordFailures bool
	// SnapshotInterval tunes the recording snapshot cadence;
	// 0 selects replay.DefaultSnapshotInterval.
	SnapshotInterval uint64

	// Obs, when set, traces this node's pipeline stages: node.execute
	// (the VM run), detect (failure detection to report assembly),
	// record.seal (tape sealing), and node.sync (the upstream round
	// trip). Nil disables tracing.
	Obs *obs.Tracer

	conn Conn
	dir  Directives

	// Resilience (nil rt = the legacy fail-fast path, byte-identical to
	// pre-chaos behavior). See EnableResilience.
	rt     *retrier
	redial func() (Conn, error)
	token  uint64

	cRetries    *obs.Counter // node.retries
	cReconnects *obs.Counter // node.reconnects

	engine   *daikon.Engine
	maxSteps uint64
}

// NewNode creates a node manager speaking to the central manager over
// conn.
func NewNode(id string, img *image.Image, conn Conn) *Node {
	return &Node{ID: id, Image: img, conn: conn, engine: daikon.NewEngine()}
}

// EnableResilience arms the retry/backoff/reconnect path: every round trip
// runs under the policy's receive timeout and is retried with exponential
// backoff and seeded jitter; between attempts the node re-dials a fresh
// connection (redial; nil falls back to failing in place) and re-registers
// with a Hello, so its registration and directive cache survive the
// reconnect. Non-idempotent requests (reports, batches, recordings) are
// never re-sent once a send has succeeded — the peer may already have
// applied them — so community counts stay exact at the cost of at-most-once
// delivery under faults. reg (nil ok) receives the node.retries and
// node.reconnects counters.
func (n *Node) EnableResilience(p *RetryPolicy, redial func() (Conn, error), reg *obs.Registry) {
	n.rt = newRetrier(p, n.ID)
	n.redial = redial
	n.cRetries = reg.Counter("node.retries")
	n.cReconnects = reg.Counter("node.reconnects")
	n.applyRecvTimeout()
}

// applyRecvTimeout pushes the policy's receive deadline onto the current
// connection, when both exist.
func (n *Node) applyRecvTimeout() {
	if n.rt == nil || n.conn == nil {
		return
	}
	if rt, ok := n.conn.(RecvTimeouter); ok {
		rt.SetRecvTimeout(n.rt.pol.RecvTimeout)
	}
}

// nextToken stamps a fresh request token (resilient path only; a node's
// round trips are serial, so no lock is needed).
func (n *Node) nextToken() uint64 {
	n.token++
	return n.token
}

// Connect registers with the manager and fetches initial directives.
func (n *Node) Connect() error {
	env, err := helloEnvelope(n.ID)
	if err != nil {
		return err
	}
	return n.roundTrip(env)
}

// Attach re-homes the node onto a replacement transport — a sibling
// aggregator after its own crashed, or the same manager after a network
// drop — and re-registers. The node keeps its identity, its locally
// inferred learning state, and its last directives; everything durable on
// the community side (learning shard, repair assignment, quarantine
// status) is keyed by node ID at the manager, so a re-attached node
// resumes exactly where it left off no matter which tier it lands on.
func (n *Node) Attach(conn Conn) error {
	if n.conn != nil {
		_ = n.conn.Close()
	}
	n.conn = conn
	n.applyRecvTimeout()
	return n.Connect()
}

// roundTrip sends a message and applies the directives that come back.
func (n *Node) roundTrip(env Envelope) error {
	sp := n.Obs.Start("node.sync")
	defer sp.Finish()
	if n.rt == nil {
		_, err := n.roundTripOnce(sp, env)
		return err
	}
	return n.roundTripResilient(sp, env)
}

// roundTripOnce is one send/receive exchange. sent reports whether the
// send itself succeeded — the retry loop must know, because a request that
// may have reached the peer must not be re-sent unless it is idempotent.
func (n *Node) roundTripOnce(sp *obs.Span, env Envelope) (sent bool, err error) {
	var sendErr error
	sp.BlockFor("upstream", func() { sendErr = n.conn.Send(env) })
	if sendErr != nil {
		return false, sendErr
	}
	var reply Envelope
	var recvErr error
	for {
		sp.BlockFor("upstream", func() { reply, recvErr = n.conn.Recv() })
		if recvErr != nil {
			return true, recvErr
		}
		if n.rt == nil || reply.Token == env.Token {
			break
		}
		// A reply carrying a stale token is the stray answer to a
		// duplicated earlier request; draining it here re-aligns the
		// request/response framing.
	}
	switch reply.Kind {
	case MsgDirectives:
		// decodeDirectives hands back a fresh value: gob merges into
		// existing structures (zero fields are omitted on the wire and keep
		// their old bytes on decode), so reusing n.dir would let directives
		// from a previous phase bleed into this one.
		dir, err := decodeDirectives(reply.Payload)
		if err != nil {
			return true, err
		}
		if n.rt != nil && dir.Seq < n.dir.Seq {
			// Resilient nodes keep their newest directives: a reconnect may
			// land on an aggregator whose cache has not seen this node since
			// its last flush, and trading installed patches for that cache
			// miss's empty set would reopen the protection window PR 4's
			// guarantee closed. The node's reports keep carrying the kept
			// sequence, so the manager still credits them correctly.
			return true, nil
		}
		n.dir = dir
		return true, nil
	case MsgAck:
		return true, nil
	}
	return true, fmt.Errorf("community: unexpected reply %v", reply.Kind)
}

// roundTripResilient drives roundTripOnce under the retry policy: backoff
// with seeded jitter between attempts, a reconnect-and-resync (fresh
// connection + Hello re-registration) before each retry, and at-most-once
// delivery for non-idempotent payloads — once a send has succeeded, the
// request is never sent again; the reconnect's Hello refreshes the
// directives and the payload is surrendered to the fault.
func (n *Node) roundTripResilient(sp *obs.Span, env Envelope) error {
	env.Token = n.nextToken()
	sentOnce := false
	var lastErr error
	hard, slow := 0, 0
	for {
		sent, err := n.roundTripOnce(sp, env)
		if err == nil {
			return nil
		}
		sentOnce = sentOnce || sent
		lastErr = err
		inPlace := sent && IsTimeout(err) && env.Kind == MsgHello
		if inPlace {
			slow++
		} else {
			hard++
		}
		if hard >= n.rt.pol.MaxAttempts || hard+slow >= n.rt.pol.TimeoutAttempts {
			break
		}
		n.cRetries.Inc()
		n.rt.sleep(hard)
		if inPlace {
			// A Hello (registration or sync) is idempotent and the wire is
			// healthy — the reply is lost or just slow behind a busy
			// upstream. Re-send in place; reconnecting would abandon the
			// connection a slow reply is still riding on.
			continue
		}
		if rerr := n.reconnect(sp); rerr != nil {
			lastErr = rerr
			continue
		}
		if sentOnce && env.Kind != MsgHello {
			// The request may already have been applied upstream;
			// re-sending it would double-count this node's runs. The
			// reconnect re-registered the node and refreshed its
			// directives, which is all the campaign needs to continue.
			return nil
		}
	}
	return fmt.Errorf("community: node %s: round trip failed after %d attempts: %w",
		n.ID, hard+slow, lastErr)
}

// reconnect re-dials a fresh connection and re-registers over it — the
// resync half of retry: the upstream (a sibling aggregator or the manager
// itself) re-learns the member, and the Hello's reply refreshes the
// directive cache, so protection survives the reconnect.
func (n *Node) reconnect(sp *obs.Span) error {
	if n.redial == nil {
		return fmt.Errorf("community: node %s: no redial path", n.ID)
	}
	conn, err := n.redial()
	if err != nil {
		return err
	}
	if n.conn != nil {
		_ = n.conn.Close()
	}
	n.conn = conn
	n.applyRecvTimeout()
	n.cReconnects.Inc()
	henv, err := helloEnvelope(n.ID)
	if err != nil {
		return err
	}
	henv.Token = n.nextToken()
	_, err = n.roundTripOnce(sp, henv)
	return err
}

// Directives returns the node's current instruction set (for tests).
func (n *Node) Directives() Directives { return n.dir }

// Sync pulls the manager's current directives.
func (n *Node) Sync() error {
	env, err := helloEnvelope(n.ID)
	if err != nil {
		return err
	}
	return n.roundTrip(env)
}

// compile turns the manager's declarative patch specs into local
// execution-environment patches — the node-side analog of compiling the
// generated C snippets (§3.2).
func (n *Node) compile() ([]*vm.Patch, []*correlate.CheckSet) {
	var patches []*vm.Patch

	byFailure := map[string][]correlate.Candidate{}
	for i := range n.dir.Checks {
		spec := &n.dir.Checks[i]
		inv := spec.Invariant
		byFailure[spec.FailureID] = append(byFailure[spec.FailureID],
			correlate.Candidate{Inv: &inv})
	}
	var sets []*correlate.CheckSet
	for fid, cands := range byFailure {
		cs := correlate.BuildCheckSet(fid, cands)
		cs.StartRun()
		sets = append(sets, cs)
		patches = append(patches, cs.Patches...)
	}

	for i := range n.dir.Repairs {
		spec := &n.dir.Repairs[i]
		inv := spec.Invariant
		r := &repair.Repair{
			Inv:      &inv,
			Strategy: spec.Strategy,
			Value:    spec.Value,
			SPDelta:  spec.SPDelta,
			PC:       spec.PC,
			Depth:    spec.Depth,
		}
		patches = append(patches, r.BuildPatches(spec.FailureID)...)
	}
	return patches, sets
}

// runLocal executes the application on one input under the current
// directives and assembles the run report; if the node records failures
// and the run failed, the sealed recording's wire form is returned too.
func (n *Node) runLocal(input []byte) (vm.RunResult, RunReport, []byte, error) {
	patches, sets := n.compile()

	// The node runs the full detector set — the same configuration
	// sealRecording claims (replay.AllMonitors), so the manager's replays
	// and vets reproduce the node's detections bit for bit.
	plugins, shadow, hang := replay.AllMonitors().Plugins()

	var rec *trace.Recorder
	if n.dir.LearnHi > n.dir.LearnLo {
		lo, hi := n.dir.LearnLo, n.dir.LearnHi
		rec = trace.NewRecorder(n.engine)
		rec.Filter = func(pc uint32) bool { return pc >= lo && pc < hi }
		plugins = append(plugins, rec)
	}

	cfg := vm.Config{
		Image:    n.Image,
		Plugins:  plugins,
		Patches:  patches,
		Input:    input,
		MaxSteps: n.maxSteps,
	}
	var tape *replay.Tape
	if n.RecordFailures {
		tape = replay.NewTape(n.SnapshotInterval)
		cfg.SnapshotInterval = tape.Interval()
		cfg.SnapshotSink = tape.Sink
	}
	machine, err := vm.New(cfg)
	if err != nil {
		return vm.RunResult{}, RunReport{}, nil, err
	}
	shadow.Install(machine)
	hang.Install(machine)
	esp := n.Obs.Start("node.execute")
	res := machine.Run()
	esp.Finish()

	if rec != nil {
		if res.Outcome == vm.OutcomeExit && res.ExitCode == 0 {
			rec.CommitRun()
		} else {
			rec.DiscardRun()
		}
	}

	rep := RunReport{
		NodeID:   n.ID,
		Seq:      n.dir.Seq,
		Outcome:  uint8(res.Outcome),
		ExitCode: res.ExitCode,
	}
	if res.Failure != nil {
		// The monitor fired during the run; the detect span covers turning
		// that detection into the wire-form failure notification.
		dsp := n.Obs.Start("detect")
		rep.Failure = &FailureInfo{
			PC:      res.Failure.PC,
			Monitor: res.Failure.Monitor,
			Kind:    res.Failure.Kind,
			Target:  res.Failure.Target,
			Stack:   res.Failure.Stack,
		}
		dsp.Finish()
	}
	for _, cs := range sets {
		rep.Observations = append(rep.Observations, cs.DrainRun()...)
	}

	var raw []byte
	if tape != nil && res.Failure != nil {
		rsp := n.Obs.Start("record.seal")
		raw, err = n.sealRecording(tape, input, res)
		rsp.Finish()
		if err != nil {
			return res, rep, nil, err
		}
	}
	return res, rep, raw, nil
}

// RunOnce executes the application on one input under the current
// directives and reports the result to the manager. The updated
// directives in the reply take effect for the next run.
func (n *Node) RunOnce(input []byte) (vm.RunResult, error) {
	// Refresh directives first: a presentation happens only after the
	// manager's actions from the previous one have been applied (the Red
	// Team exercise protocol, §4.3.1).
	if err := n.Sync(); err != nil {
		return vm.RunResult{}, err
	}
	res, rep, rawRec, err := n.runLocal(input)
	if err != nil {
		return res, err
	}
	env, err := NewEnvelope(MsgRunReport, rep)
	if err != nil {
		return res, err
	}
	if err := n.roundTrip(env); err != nil {
		return res, err
	}
	if rawRec != nil {
		env, err := NewEnvelope(MsgRecording, RecordingUpload{NodeID: n.ID, Recording: rawRec})
		if err != nil {
			return res, err
		}
		if err := n.roundTrip(env); err != nil {
			return res, err
		}
	}
	return res, nil
}

// RunBatch executes the application on every input under one directive
// snapshot and ships the accumulated reports and failing-run recordings
// as a single MsgBatch — one round trip for the whole batch instead of
// two per run. The manager's reply (its post-batch directives) takes
// effect for the next batch. This is how a large community keeps manager
// load O(batches) rather than O(executions).
func (n *Node) RunBatch(inputs [][]byte) ([]vm.RunResult, error) {
	if err := n.Sync(); err != nil {
		return nil, err
	}
	batch := Batch{NodeID: n.ID}
	results := make([]vm.RunResult, 0, len(inputs))
	for _, input := range inputs {
		res, rep, rawRec, err := n.runLocal(input)
		if err != nil {
			return results, err
		}
		results = append(results, res)
		batch.Reports = append(batch.Reports, rep)
		if rawRec != nil {
			batch.Recordings = append(batch.Recordings, rawRec)
		}
	}
	env, err := NewEnvelope(MsgBatch, batch)
	if err != nil {
		return results, err
	}
	return results, n.roundTrip(env)
}

// sealRecording seals the tape of a failing run — including the repair
// patches the node was running under, so the manager replays the same
// machine — and returns its wire form for a MsgRecording or MsgBatch
// upload.
func (n *Node) sealRecording(tape *replay.Tape, input []byte, res vm.RunResult) ([]byte, error) {
	deployed := make([]replay.PatchSpec, 0, len(n.dir.Repairs))
	for i := range n.dir.Repairs {
		spec := &n.dir.Repairs[i]
		deployed = append(deployed, replay.PatchSpec{
			FailureID: spec.FailureID,
			Invariant: spec.Invariant,
			Strategy:  spec.Strategy,
			Value:     spec.Value,
			SPDelta:   spec.SPDelta,
			PC:        spec.PC,
			Depth:     spec.Depth,
		})
	}
	rec := tape.Seal(
		fmt.Sprintf("%s/seq%d", n.ID, n.dir.Seq),
		n.Image, input, deployed, replay.AllMonitors(), n.maxSteps, res,
	)
	return rec.Marshal()
}

// UploadLearning finalizes the node's locally inferred invariants and
// uploads them to the manager (§3.1: invariants only, never trace data).
func (n *Node) UploadLearning() error {
	db := n.engine.Finalize(daikon.Options{})
	raw, err := db.Marshal()
	if err != nil {
		return err
	}
	env, err := NewEnvelope(MsgLearnUpload, LearnUpload{NodeID: n.ID, DB: raw})
	if err != nil {
		return err
	}
	return n.roundTrip(env)
}

// Close releases the node's connection.
func (n *Node) Close() error { return n.conn.Close() }
