// Package evaluate implements candidate repair evaluation (§2.6): each
// repair carries a score (s − f) + b, where s counts successful executions
// with the repair in place, f counts failures, and b is a bonus awarded
// while the repair has never failed. ClearView always deploys the highest
// scoring repair, breaking ties with the earlier-first and
// state-before-control-flow rules, and keeps evaluating for as long as the
// application runs — a repair that fails long after adoption is demoted
// and replaced.
package evaluate

import (
	"sort"

	"repro/internal/repair"
)

// DefaultBonus is the never-failed bonus b.
const DefaultBonus = 1

// Entry tracks one repair's evaluation state.
type Entry struct {
	Repair    *repair.Repair
	Successes int
	Failures  int
}

// Score returns (s − f) + b with the bonus applied only while the repair
// has never failed.
func (e *Entry) Score(bonus int) int {
	s := e.Successes - e.Failures
	if e.Failures == 0 {
		s += bonus
	}
	return s
}

// Evaluator ranks a candidate repair set for one failure.
type Evaluator struct {
	Bonus int
	// ReverseTieBreak inverts the §2.6 ordering rules (latest-first,
	// control-flow before state) — the ablation baseline showing how the
	// paper's ordering minimizes unsuccessful repair runs.
	ReverseTieBreak bool

	entries []*Entry
	byID    map[string]*Entry
}

// New builds an evaluator over the candidate repairs.
func New(repairs []*repair.Repair, bonus int) *Evaluator {
	if bonus <= 0 {
		bonus = DefaultBonus
	}
	ev := &Evaluator{Bonus: bonus, byID: make(map[string]*Entry, len(repairs))}
	for _, r := range repairs {
		if _, dup := ev.byID[r.ID()]; dup {
			continue
		}
		e := &Entry{Repair: r}
		ev.entries = append(ev.entries, e)
		ev.byID[r.ID()] = e
	}
	return ev
}

// Len returns the number of distinct candidate repairs.
func (ev *Evaluator) Len() int { return len(ev.entries) }

// Best returns the highest-scoring repair entry, or nil when the candidate
// set is empty. Ties break by the repair ordering rules.
func (ev *Evaluator) Best() *Entry {
	var best *Entry
	for _, e := range ev.entries {
		if best == nil {
			best = e
			continue
		}
		bs, es := best.Score(ev.Bonus), e.Score(ev.Bonus)
		tieWins := repair.Less(e.Repair, best.Repair)
		if ev.ReverseTieBreak {
			tieWins = repair.Less(best.Repair, e.Repair)
		}
		if es > bs || (es == bs && tieWins) {
			best = e
		}
	}
	return best
}

// Ranked returns all entries ordered as the evaluator would deploy them:
// by score descending, ties broken by the repair ordering rules. The
// community manager uses this to assign different candidate repairs to
// different members for parallel evaluation (§3).
func (ev *Evaluator) Ranked() []*Entry {
	out := append([]*Entry(nil), ev.entries...)
	less := func(a, b *Entry) bool {
		as, bs := a.Score(ev.Bonus), b.Score(ev.Bonus)
		if as != bs {
			return as > bs
		}
		if ev.ReverseTieBreak {
			return repair.Less(b.Repair, a.Repair)
		}
		return repair.Less(a.Repair, b.Repair)
	}
	sort.SliceStable(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}

// RecordSuccess credits a successful evaluation run.
func (ev *Evaluator) RecordSuccess(id string) {
	if e := ev.byID[id]; e != nil {
		e.Successes++
	}
}

// RecordFailure debits a failed evaluation run.
func (ev *Evaluator) RecordFailure(id string) {
	if e := ev.byID[id]; e != nil {
		e.Failures++
	}
}

// Record feeds one evaluation verdict — live or replayed — crediting a
// survival and debiting anything else. The replay farm uses this to apply
// a whole batch of offline verdicts before the next live deployment.
func (ev *Evaluator) Record(id string, survived bool) {
	if survived {
		ev.RecordSuccess(id)
	} else {
		ev.RecordFailure(id)
	}
}

// Exhausted reports whether every candidate repair has failed at least
// once and none has ever succeeded — the point at which ClearView has no
// further repair worth deploying for this failure (the monitors continue
// to block the attack; exploit 307259 ends here).
func (ev *Evaluator) Exhausted() bool {
	if len(ev.entries) == 0 {
		return true
	}
	for _, e := range ev.entries {
		if e.Failures == 0 || e.Successes > 0 {
			return false
		}
	}
	return true
}

// Entries returns all evaluation entries (stable candidate order).
func (ev *Evaluator) Entries() []*Entry { return ev.entries }

// UnsuccessfulRuns returns the total number of failed evaluation runs —
// the Table 3 "Unsuccessful Repair Runs (n)" count.
func (ev *Evaluator) UnsuccessfulRuns() int {
	n := 0
	for _, e := range ev.entries {
		n += e.Failures
	}
	return n
}
