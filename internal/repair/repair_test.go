package repair

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/correlate"
	"repro/internal/daikon"
	"repro/internal/image"
	"repro/internal/isa"
	"repro/internal/vm"
)

func vid(pc uint32, slot uint8) daikon.VarID { return daikon.VarID{PC: pc, Slot: slot} }

func mkImage(t *testing.T, build func(a *asm.Assembler)) (*image.Image, map[string]uint32) {
	t.Helper()
	a := asm.New(0x1000)
	build(a)
	code, labels, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	entry := labels["main"]
	return &image.Image{Base: 0x1000, Entry: entry, Code: code}, labels
}

func instAtFor(img *image.Image) InstAt {
	return func(pc uint32) (isa.Inst, bool) {
		if !img.Contains(pc) {
			return isa.Inst{}, false
		}
		in, err := isa.Decode(img.Code[pc-img.Base:])
		return in, err == nil
	}
}

func noSP(uint32) (uint32, bool) { return 0, false }

func TestGenerateOneOfCallTarget(t *testing.T) {
	img, labels := mkImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.Label("site")
		a.CallM(asm.M(isa.EDI, 0))
		a.Sys(isa.SysExit)
	})
	site := labels["site"]
	inv := &daikon.Invariant{
		Kind:   daikon.KindOneOf,
		Var:    vid(site, 2), // CALLM memval slot
		Values: []uint32{0x1100, 0x1200},
	}
	withSP := func(pc uint32) (uint32, bool) { return 4, pc == site }
	rs := Generate(correlate.Candidate{Inv: inv}, instAtFor(img), withSP)

	var strategies []Strategy
	for _, r := range rs {
		strategies = append(strategies, r.Strategy)
	}
	// Order: two set-value repairs (state), skip-call, return-proc.
	want := []Strategy{StratSetValue, StratSetValue, StratSkipCall, StratReturnProc}
	if len(strategies) != len(want) {
		t.Fatalf("strategies = %v", strategies)
	}
	for i := range want {
		if strategies[i] != want[i] {
			t.Fatalf("strategies = %v, want %v", strategies, want)
		}
	}
	if rs[0].Value != 0x1100 || rs[1].Value != 0x1200 {
		t.Errorf("set-value order: %#x %#x", rs[0].Value, rs[1].Value)
	}
	if rs[3].SPDelta != 4 {
		t.Errorf("sp delta = %d", rs[3].SPDelta)
	}
}

func TestGenerateOneOfNonCallHasNoSkip(t *testing.T) {
	img, labels := mkImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.Label("site")
		a.MovRR(isa.ECX, isa.EDX)
		a.Sys(isa.SysExit)
	})
	inv := &daikon.Invariant{Kind: daikon.KindOneOf, Var: vid(labels["site"], 0), Values: []uint32{5}}
	rs := Generate(correlate.Candidate{Inv: inv}, instAtFor(img), noSP)
	for _, r := range rs {
		if r.Strategy == StratSkipCall {
			t.Error("skip-call generated for a non-call instruction")
		}
		if r.Strategy == StratReturnProc {
			t.Error("return-proc generated without an sp-offset invariant")
		}
	}
	if len(rs) != 1 || rs[0].Strategy != StratSetValue {
		t.Errorf("repairs = %v", rs)
	}
}

func TestTieBreakOrdering(t *testing.T) {
	inv := &daikon.Invariant{Kind: daikon.KindOneOf, Var: vid(0x100, 0), Values: []uint32{1}}
	early := &Repair{Inv: inv, Strategy: StratSetValue, PC: 0x100, Depth: 0, Value: 1}
	laterPC := &Repair{Inv: inv, Strategy: StratSetValue, PC: 0x108, Depth: 0, Value: 1}
	deeper := &Repair{Inv: inv, Strategy: StratSetValue, PC: 0x90, Depth: 1, Value: 1}
	control := &Repair{Inv: inv, Strategy: StratSkipCall, PC: 0x100, Depth: 0}

	if !Less(early, laterPC) {
		t.Error("earlier instruction must order first")
	}
	if !Less(early, deeper) {
		t.Error("lower on the call stack must order first")
	}
	if !Less(early, control) {
		t.Error("state change must order before control flow")
	}
	if !Less(control, &Repair{Inv: inv, Strategy: StratReturnProc, PC: 0x100}) {
		t.Error("skip-call must order before return-proc")
	}
}

func TestClampLowerPatchEnforces(t *testing.T) {
	img, labels := mkImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.MovRI(isa.EDX, -7)
		a.Label("site")
		a.MovRR(isa.ECX, isa.EDX) // regA slot... slot 0 is regB (EDX)
		a.MovRR(isa.EAX, isa.ECX)
		a.Sys(isa.SysExit)
	})
	inv := &daikon.Invariant{Kind: daikon.KindLowerBound, Var: vid(labels["site"], 0), Bound: 1}
	rs := Generate(correlate.Candidate{Inv: inv}, instAtFor(img), noSP)
	if len(rs) != 1 || rs[0].Strategy != StratClampLower {
		t.Fatalf("repairs = %v", rs)
	}
	machine, _ := vm.New(vm.Config{Image: img, Patches: rs[0].BuildPatches("t")})
	res := machine.Run()
	if res.ExitCode != 1 {
		t.Errorf("exit = %d, want clamped 1", int32(res.ExitCode))
	}
}

func TestClampLowerNoOpWhenSatisfied(t *testing.T) {
	img, labels := mkImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.MovRI(isa.EDX, 9)
		a.Label("site")
		a.MovRR(isa.ECX, isa.EDX)
		a.MovRR(isa.EAX, isa.ECX)
		a.Sys(isa.SysExit)
	})
	inv := &daikon.Invariant{Kind: daikon.KindLowerBound, Var: vid(labels["site"], 0), Bound: 1}
	rs := Generate(correlate.Candidate{Inv: inv}, instAtFor(img), noSP)
	machine, _ := vm.New(vm.Config{Image: img, Patches: rs[0].BuildPatches("t")})
	if res := machine.Run(); res.ExitCode != 9 {
		t.Errorf("repair perturbed a satisfied execution: exit = %d", res.ExitCode)
	}
}

func TestSetValuePatchRedirectsCall(t *testing.T) {
	img, labels := mkImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.MovRI(isa.EAX, 16)
		a.Sys(isa.SysAlloc)
		a.MovRR(isa.EDI, isa.EAX) // heap object; word 0 = garbage fn ptr
		a.Label("site")
		a.CallM(asm.M(isa.EDI, 0))
		a.Sys(isa.SysExit)
		a.Label("good")
		a.MovRI(isa.EAX, 42)
		a.Ret()
	})
	inv := &daikon.Invariant{
		Kind: daikon.KindOneOf, Var: vid(labels["site"], 2),
		Values: []uint32{labels["good"]},
	}
	rs := Generate(correlate.Candidate{Inv: inv}, instAtFor(img), noSP)
	if rs[0].Strategy != StratSetValue {
		t.Fatalf("first repair = %v", rs[0].Strategy)
	}
	machine, _ := vm.New(vm.Config{Image: img, Patches: rs[0].BuildPatches("t")})
	res := machine.Run()
	if res.Outcome != vm.OutcomeExit || res.ExitCode != 42 {
		t.Fatalf("res = %+v", res)
	}
}

func TestReturnProcPatch(t *testing.T) {
	img, labels := mkImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.Call("f")
		// EAX is the synthesized return value 0 after the repair fires.
		a.AddRI(isa.EAX, 5)
		a.Sys(isa.SysExit)
		a.Label("f")
		a.PushI(11)
		a.PushI(22) // sp now entry-8
		a.MovRI(isa.EDX, -3)
		a.Label("site")
		a.MovRR(isa.ECX, isa.EDX) // invariant on EDX violated here
		a.Halt()                  // would crash if not returned early
	})
	inv := &daikon.Invariant{Kind: daikon.KindOneOf, Var: vid(labels["site"], 0), Values: []uint32{1}}
	spOff := func(pc uint32) (uint32, bool) { return 8, pc == labels["site"] }
	rs := Generate(correlate.Candidate{Inv: inv}, instAtFor(img), spOff)
	var ret *Repair
	for _, r := range rs {
		if r.Strategy == StratReturnProc {
			ret = r
		}
	}
	if ret == nil {
		t.Fatal("no return-proc repair")
	}
	machine, _ := vm.New(vm.Config{Image: img, Patches: ret.BuildPatches("t")})
	res := machine.Run()
	if res.Outcome != vm.OutcomeExit || res.ExitCode != 5 {
		t.Fatalf("res = %+v", res)
	}
}

func TestClampLessSameInstruction(t *testing.T) {
	// CMPRR reads both variables: v1 = regA (copy length), v2 = regB
	// (buffer size). The clamp-less repair lowers v1 to v2.
	img, labels := mkImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.MovRI(isa.EDX, 100) // copy length (attacker controlled)
		a.MovRI(isa.EBX, 16)  // buffer size
		a.Label("site")
		a.CmpRR(isa.EDX, isa.EBX)
		a.MovRR(isa.EAX, isa.EDX)
		a.Sys(isa.SysExit)
	})
	inv := &daikon.Invariant{
		Kind: daikon.KindLessThan,
		Var:  vid(labels["site"], 0), Var2: vid(labels["site"], 1),
	}
	rs := Generate(correlate.Candidate{Inv: inv}, instAtFor(img), noSP)
	var clamp *Repair
	for _, r := range rs {
		if r.Strategy == StratClampLess {
			clamp = r
		}
	}
	if clamp == nil {
		t.Fatalf("no clamp-less repair in %v", rs)
	}
	machine, _ := vm.New(vm.Config{Image: img, Patches: clamp.BuildPatches("t")})
	if res := machine.Run(); res.ExitCode != 16 {
		t.Errorf("exit = %d, want clamped 16", res.ExitCode)
	}
}

// TestClampModEnforcement: the clamp-mod repair rounds a violating value
// onto the learned congruence class — downward normally, upward when
// rounding down would wrap past zero (the 1-under-(v ≡ 2 mod 4) case
// must enforce 2, not 0xFFFFFFFE).
func TestClampModEnforcement(t *testing.T) {
	for _, tc := range []struct {
		start, want uint32
	}{
		{start: 7, want: 6}, // round down to ≡ 2 (mod 4)
		{start: 1, want: 2}, // rounding down would wrap; round up
		{start: 10, want: 10} /* already congruent: untouched */} {
		img, labels := mkImage(t, func(a *asm.Assembler) {
			a.Label("main")
			a.MovRI(isa.EDX, int32(tc.start))
			a.Label("site")
			a.MovRR(isa.EAX, isa.EDX) // slot 0 = regB (EDX), the offset
			a.Sys(isa.SysExit)
		})
		inv := &daikon.Invariant{
			Kind: daikon.KindModulus, Var: vid(labels["site"], 0), Values: []uint32{4, 2},
		}
		rs := Generate(correlate.Candidate{Inv: inv}, instAtFor(img), noSP)
		if len(rs) != 1 || rs[0].Strategy != StratClampMod {
			t.Fatalf("repairs for modulus = %v, want one clamp-mod", rs)
		}
		machine, _ := vm.New(vm.Config{Image: img, Patches: rs[0].BuildPatches("t")})
		if res := machine.Run(); res.ExitCode != tc.want {
			t.Errorf("start %d: exit = %d, want %d", tc.start, res.ExitCode, tc.want)
		}
	}
}

// TestNonzeroEnforcement: the nonzero-guard clamp replaces a zero value
// with the learned witness; skip-inst suppresses the instruction.
func TestNonzeroEnforcement(t *testing.T) {
	img, labels := mkImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.MovRI(isa.EDX, 0)
		a.Label("site")
		a.MovRR(isa.EAX, isa.EDX)
		a.Sys(isa.SysExit)
	})
	inv := &daikon.Invariant{
		Kind: daikon.KindNonzero, Var: vid(labels["site"], 0), Bound: -3,
	}
	rs := Generate(correlate.Candidate{Inv: inv}, instAtFor(img), noSP)
	if len(rs) != 2 || rs[0].Strategy != StratNonzeroClamp || rs[1].Strategy != StratSkipInst {
		t.Fatalf("repairs for nonzero = %v, want [nonzero-clamp skip-inst]", rs)
	}
	machine, _ := vm.New(vm.Config{Image: img, Patches: rs[0].BuildPatches("t")})
	if res := machine.Run(); res.ExitCode != uint32(0xFFFF_FFFD) { // -3, the witness
		t.Errorf("clamp exit = %#x, want the witness -3", res.ExitCode)
	}
	machine, _ = vm.New(vm.Config{Image: img, Patches: rs[1].BuildPatches("t")})
	if res := machine.Run(); res.ExitCode != 0 { // MOVRR skipped; EAX still 0
		t.Errorf("skip-inst exit = %d, want 0", res.ExitCode)
	}
}

func TestCountByKind(t *testing.T) {
	oneof := &daikon.Invariant{Kind: daikon.KindOneOf, Var: vid(0x100, 0), Values: []uint32{1, 2}}
	lb := &daikon.Invariant{Kind: daikon.KindLowerBound, Var: vid(0x108, 0)}
	rs := []*Repair{
		{Inv: oneof, Strategy: StratSetValue, Value: 1},
		{Inv: oneof, Strategy: StratSetValue, Value: 2},
		{Inv: oneof, Strategy: StratSkipCall},
		{Inv: lb, Strategy: StratClampLower},
	}
	if got := CountByKind(rs); got != [NumKinds]int{1, 1, 0, 0, 0} {
		t.Errorf("counts = %v, want [1 1 0 0 0] (distinct invariants)", got)
	}
}

func TestRepairIDsDistinct(t *testing.T) {
	inv := &daikon.Invariant{Kind: daikon.KindOneOf, Var: vid(0x100, 0), Values: []uint32{1, 2}}
	r1 := &Repair{Inv: inv, Strategy: StratSetValue, Value: 1}
	r2 := &Repair{Inv: inv, Strategy: StratSetValue, Value: 2}
	r3 := &Repair{Inv: inv, Strategy: StratSkipCall}
	if r1.ID() == r2.ID() || r1.ID() == r3.ID() || r2.ID() == r3.ID() {
		t.Errorf("IDs collide: %s %s %s", r1.ID(), r2.ID(), r3.ID())
	}
}
