// Command learn runs the invariant-learning phase over a page corpus and
// reports (or saves) the resulting database — the standalone analog of the
// Blue Team's pre-exercise learning run (§4.2.2).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/daikon"
	"repro/internal/redteam"
	"repro/internal/webapp"
)

func main() {
	expanded := flag.Bool("expanded", false, "use the §4.3.2 expanded corpus")
	out := flag.String("o", "", "write the serialized invariant database to this file")
	verbose := flag.Bool("v", false, "list every invariant")
	flag.Parse()

	app, err := webapp.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, "learn:", err)
		os.Exit(1)
	}
	corpus := redteam.LearningCorpus()
	name := "default (12 pages)"
	if *expanded {
		corpus = redteam.ExpandedCorpus()
		name = "expanded"
	}
	db, stats, err := core.Learn(app.Image, core.LearnConfig{Inputs: [][]byte{corpus}})
	if err != nil {
		fmt.Fprintln(os.Stderr, "learn:", err)
		os.Exit(1)
	}
	fmt.Printf("corpus: %s\n", name)
	fmt.Printf("runs: %d (%d normal, %d discarded)\n", stats.Runs, stats.NormalRuns, stats.Discarded)
	fmt.Printf("trace entries: %d\n", stats.Observations)
	counts := db.CountByKind()
	fmt.Printf("invariants: %d total (one-of %d, lower-bound %d, less-than %d, sp-offset %d)\n",
		db.Len(), counts[daikon.KindOneOf], counts[daikon.KindLowerBound],
		counts[daikon.KindLessThan], counts[daikon.KindSPOffset])

	if *verbose {
		for _, inv := range db.All() {
			fmt.Printf("  %s\n", inv)
		}
	}
	if *out != "" {
		raw, err := db.Marshal()
		if err != nil {
			fmt.Fprintln(os.Stderr, "learn:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, raw, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "learn:", err)
			os.Exit(1)
		}
		fmt.Printf("database written to %s (%d bytes)\n", *out, len(raw))
	}
}
