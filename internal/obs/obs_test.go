package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestNilSafety: the disabled state — nil registry, tracer, span, and
// metric handles — must be inert, not panic.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(7)
	r.Histogram("x").Observe(time.Second)
	r.Stage("x").addBlocked("p", time.Second)
	if got := r.Counter("x").Value(); got != 0 {
		t.Fatalf("nil counter value = %d", got)
	}
	if snap := r.Snapshot(); len(snap.Counters)+len(snap.Stages) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}

	var tr *Tracer
	if tr.WithPprofLabels() != nil || tr.Registry() != nil {
		t.Fatal("nil tracer did not stay nil")
	}
	sp := tr.Start("stage")
	if sp != nil {
		t.Fatal("nil tracer handed out a span")
	}
	sp.Block("p")()
	sp.AddBlocked("p", time.Second)
	ran := false
	sp.BlockFor("p", func() { ran = true })
	if !ran {
		t.Fatal("BlockFor on a nil span did not run f")
	}
	sp.Finish()
	tr.Observe("stage", time.Second, time.Second, "p")
	if NewTracer(nil) != nil {
		t.Fatal("NewTracer(nil) is not disabled")
	}
}

// TestCounterGaugeBasics: counters accumulate, gauges overwrite.
func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("pipeline.messages")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("pipeline.messages") != c {
		t.Fatal("counter not interned")
	}
	g := r.Gauge("pipeline.cases")
	g.Set(3)
	g.Set(2)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %d, want 2", got)
	}
}

// TestHistogramBucketEdges pins the bucket boundaries: a value exactly on
// an edge lands in that edge's bucket, one past it in the next, and
// anything beyond the last edge in the overflow bucket.
func TestHistogramBucketEdges(t *testing.T) {
	edges := BucketEdges()
	for i, edge := range edges {
		h := New().Histogram("edge")
		h.Observe(edge)
		h.Observe(edge + 1)
		snap := mustHistogram(t, New(), h)
		if snap.Buckets[i] != 1 {
			t.Fatalf("edge %v: bucket %d = %d, want exactly the on-edge observation", edge, i, snap.Buckets[i])
		}
		next := i + 1
		if snap.Buckets[next] != 1 {
			t.Fatalf("edge %v + 1: bucket %d = %d, want the past-edge observation", edge, next, snap.Buckets[next])
		}
	}

	h := New().Histogram("overflow")
	h.Observe(time.Minute)
	h.Observe(-time.Second) // clamped to zero -> first bucket
	snap := mustHistogram(t, New(), h)
	if snap.Buckets[NumBuckets-1] != 1 {
		t.Fatalf("overflow bucket = %d, want 1", snap.Buckets[NumBuckets-1])
	}
	if snap.Buckets[0] != 1 {
		t.Fatalf("negative observation not clamped into first bucket: %+v", snap.Buckets)
	}
	if snap.SumNs != int64(time.Minute) {
		t.Fatalf("sum = %d, want %d (negative clamped to 0)", snap.SumNs, int64(time.Minute))
	}
	if snap.MaxNs != int64(time.Minute) {
		t.Fatalf("max = %d, want %d", snap.MaxNs, int64(time.Minute))
	}
}

// mustHistogram snapshots one histogram through a throwaway registry.
func mustHistogram(t *testing.T, _ *Registry, h *Histogram) HistogramSnap {
	t.Helper()
	var hs HistogramSnap
	hs.Count = h.count.Load()
	hs.SumNs = h.sum.Load()
	hs.MaxNs = h.max.Load()
	for i := range h.buckets {
		hs.Buckets[i] = h.buckets[i].Load()
	}
	return hs
}

// TestSnapshotDeterministicOrder: snapshots list metrics name-sorted, so
// identical registry contents serialize identically.
func TestSnapshotDeterministicOrder(t *testing.T) {
	build := func(names []string) string {
		r := New()
		for i, n := range names {
			r.Counter("c." + n).Add(int64(i + 1))
			r.Gauge("g." + n).Set(int64(i))
			r.Histogram("h." + n).Observe(time.Millisecond)
			sp := NewTracer(r).Start("s." + n)
			sp.AddBlocked("z."+n, time.Millisecond)
			sp.AddBlocked("a."+n, time.Millisecond)
			sp.Finish()
		}
		raw, err := json.Marshal(r.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return string(raw)
	}
	forward := build([]string{"alpha", "beta", "gamma"})
	reversed := build([]string{"gamma", "beta", "alpha"})

	var a, b Snapshot
	if err := json.Unmarshal([]byte(forward), &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(reversed), &b); err != nil {
		t.Fatal(err)
	}
	for i := range a.Counters {
		if a.Counters[i].Name != b.Counters[i].Name {
			t.Fatalf("counter order differs: %s vs %s", a.Counters[i].Name, b.Counters[i].Name)
		}
	}
	for i := range a.Stages {
		if a.Stages[i].Name != b.Stages[i].Name {
			t.Fatalf("stage order differs: %s vs %s", a.Stages[i].Name, b.Stages[i].Name)
		}
		for j := range a.Stages[i].Points {
			if a.Stages[i].Points[j].Point != b.Stages[i].Points[j].Point {
				t.Fatalf("point order differs in stage %s", a.Stages[i].Name)
			}
		}
	}
	// Counter values differ (registration order affects them by
	// construction above) but the name sequences must match; stages and
	// points must be sorted.
	for i := 1; i < len(a.Stages); i++ {
		if a.Stages[i-1].Name >= a.Stages[i].Name {
			t.Fatalf("stages not sorted: %s >= %s", a.Stages[i-1].Name, a.Stages[i].Name)
		}
	}
}

// TestSpanLifecycle: double-finished and orphaned spans are harmless, and
// blocked time lands on the right stage and point.
func TestSpanLifecycle(t *testing.T) {
	r := New()
	tr := NewTracer(r)

	sp := tr.Start("vet")
	sp.AddBlocked("vetsem", 3*time.Millisecond)
	sp.Finish()
	sp.Finish() // double finish: must not double-count
	sp.Finish()

	orphan := tr.Start("vet")
	_ = orphan // never finished: contributes nothing, panics nothing

	snap := r.Snapshot()
	st := snap.Stage("vet")
	if st == nil {
		t.Fatal("stage vet missing")
	}
	if st.Spans != 1 {
		t.Fatalf("spans = %d, want 1 (double finish double-counted?)", st.Spans)
	}
	if st.BlockedNs != int64(3*time.Millisecond) {
		t.Fatalf("blocked = %d, want %d", st.BlockedNs, int64(3*time.Millisecond))
	}
	if st.WallNs < st.BlockedNs {
		// Wall includes the blocked portion; it can't be less than what
		// we measured as blocked... except a span finished faster than
		// its attributed waits, which AddBlocked allows. Here the wait
		// was attributed before Finish, so wall >= 0 is all we can pin.
		t.Logf("wall %d < blocked %d (clamped on-CPU expected)", st.WallNs, st.BlockedNs)
	}
	if st.OnCPUNs < 0 {
		t.Fatalf("on-CPU went negative: %d", st.OnCPUNs)
	}
	top := st.TopPoint()
	if top == nil || top.Point != "vetsem" || top.Waits != 1 {
		t.Fatalf("top point = %+v, want vetsem with 1 wait", top)
	}

	// Block() closure path.
	sp2 := tr.Start("flush")
	done := sp2.Block("upstream")
	time.Sleep(time.Millisecond)
	done()
	sp2.Finish()
	snap2 := r.Snapshot()
	fl := snap2.Stage("flush")
	if fl.BlockedNs <= 0 || fl.WallNs < fl.BlockedNs {
		t.Fatalf("flush stage accounting wrong: %+v", fl)
	}

	// Observe() one-shot path.
	tr.Observe("adopt", 2*time.Millisecond, time.Millisecond, "mgr.mu")
	snap3 := r.Snapshot()
	ad := snap3.Stage("adopt")
	if ad.Spans != 1 || ad.WallNs != int64(2*time.Millisecond) || ad.BlockedNs != int64(time.Millisecond) {
		t.Fatalf("observe accounting wrong: %+v", ad)
	}
}

// TestRegistryConcurrency hammers every metric type from many goroutines;
// run under -race this is the registry's thread-safety proof, and the
// final totals prove no update was lost.
func TestRegistryConcurrency(t *testing.T) {
	r := New()
	tr := NewTracer(r)
	const workers = 16
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("shared").Inc()
				r.Gauge("gauge").Set(int64(i))
				r.Histogram("hist").Observe(time.Duration(i) * time.Microsecond)
				sp := tr.Start("stage")
				sp.AddBlocked("point", time.Microsecond)
				sp.Finish()
				if i%10 == 0 {
					_ = r.Snapshot() // concurrent snapshots must be safe too
				}
			}
		}(w)
	}
	wg.Wait()
	snap := r.Snapshot()
	if got := snap.Counter("shared"); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	st := snap.Stage("stage")
	if st.Spans != workers*perWorker {
		t.Fatalf("spans = %d, want %d", st.Spans, workers*perWorker)
	}
	if st.BlockedNs != int64(workers*perWorker)*int64(time.Microsecond) {
		t.Fatalf("blocked = %d, want %d", st.BlockedNs, int64(workers*perWorker)*int64(time.Microsecond))
	}
	var hist *HistogramSnap
	for i := range snap.Histograms {
		if snap.Histograms[i].Name == "hist" {
			hist = &snap.Histograms[i]
		}
	}
	if hist == nil || hist.Count != workers*perWorker {
		t.Fatalf("histogram = %+v, want count %d", hist, workers*perWorker)
	}
	var bucketSum int64
	for _, b := range hist.Buckets {
		bucketSum += b
	}
	if bucketSum != hist.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, hist.Count)
	}
}

// TestFormatStageTableGolden pins the -profile table's exact rendering
// for a synthetic snapshot: blocked-descending order, duration
// formatting, blocked share, and top-wait attribution.
func TestFormatStageTableGolden(t *testing.T) {
	snap := &Snapshot{Stages: []StageSnap{
		{Name: "execute", Spans: 45000, WallNs: 4_320_000_000, BlockedNs: 0, OnCPUNs: 4_320_000_000},
		{
			Name: "flush", Spans: 160, WallNs: 2_100_000_000, BlockedNs: 1_700_000_000, OnCPUNs: 400_000_000,
			Points: []PointSnap{
				{Point: "agg.mu", Waits: 160, BlockedNs: 100_000_000},
				{Point: "upstream", Waits: 160, BlockedNs: 1_600_000_000},
			},
		},
		{
			Name: "vet", Spans: 33, WallNs: 90_000_000, BlockedNs: 45_000_000, OnCPUNs: 45_000_000,
			Points: []PointSnap{{Point: "vetsem", Waits: 33, BlockedNs: 45_000_000}},
		},
		{Name: "adopt", Spans: 8, WallNs: 8_000, BlockedNs: 0, OnCPUNs: 8_000},
	}}
	got := FormatStageTable(snap)
	want := "" +
		"stage               spans       wall     on-cpu    blocked   blk%  top wait (share of blocked)\n" +
		"flush                 160       2.1s    400.0ms       1.7s  81.0%  upstream (94%)\n" +
		"vet                    33     90.0ms     45.0ms     45.0ms  50.0%  vetsem (100%)\n" +
		"execute             45000       4.3s       4.3s          0   0.0%  -\n" +
		"adopt                   8      8.0µs      8.0µs          0   0.0%  -\n"
	if got != want {
		t.Fatalf("stage table drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if top := TopBlockedStage(snap); top == nil || top.Name != "flush" {
		t.Fatalf("top blocked stage = %+v, want flush", top)
	}
}
