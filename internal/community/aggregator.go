package community

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/daikon"
	"repro/internal/image"
	"repro/internal/obs"
	"repro/internal/replay"
)

// AggregatorConfig assembles one region's aggregator.
type AggregatorConfig struct {
	// ID names the aggregator on the wire (it is the NodeID of the
	// compacted batches it sends upstream).
	ID string
	// Image is the protected binary, for edge sanity checks.
	Image *image.Image
	// Upstream is the connection to the central manager. (Only the
	// manager can terminate an aggregated batch — aggregators do not
	// chain under each other.)
	Upstream Conn
	// FlushEvery auto-flushes once this many run reports are buffered;
	// 0 flushes only when Flush is called (e.g. once per soak round).
	FlushEvery int
	// VetReports enables the edge sanity checks: reports, uploads, and
	// recordings whose PCs fall outside the image's code range quarantine
	// the sending node locally — the poisoned input never travels
	// upstream — and the verdict is reported to the manager with the next
	// flush. Checks that need global state (observation provenance) or a
	// replay farm (recording reproduction) remain the manager's.
	VetReports bool

	// Obs, when set, records aggregator telemetry into the tracer's
	// registry: a span per member envelope (agg.handle) and per flush,
	// with waits attributed to flushmu, agg.mu, and the upstream round
	// trip. Nil disables tracing; counters stay live either way.
	Obs *obs.Tracer

	// Retry, when set, arms the resilient upstream path: flush round trips
	// run under the policy's receive timeout and are retried with backoff,
	// re-dialing the manager via Redial between attempts (root failover:
	// the re-dial lands on the promoted leader). Each flush snapshot is
	// numbered (Batch.FlushSeq), so a retried or duplicated flush is
	// applied at most once upstream — reports are never double-counted
	// across a retried Send. Nil keeps the legacy fail-fast flush.
	Retry *RetryPolicy
	// Redial reopens the upstream connection for the resilient path.
	Redial func() (Conn, error)
}

// Aggregator is the middle tier of the two-level community: it serves a
// region of member nodes exactly like a manager would — same protocol,
// same Conn transport — while speaking to the central manager as a single,
// well-batched client. It merges its region's learning uploads into one
// database, deduplicates failing-run recordings per failure location,
// buffers run reports in arrival order, and forwards the lot as one
// compacted MsgBatch per flush. The manager's DirectivesSet reply is
// cached per member node, so node syncs between flushes cost no upstream
// traffic at all: central-manager load scales with the number of
// aggregators, not the number of nodes.
//
// Members may attach, detach, and re-attach freely (see Node.Attach): all
// community state is keyed by node ID at the manager, so a node that
// crashes mid-campaign and comes back through a different aggregator keeps
// its learning shard and its repair assignments.
type Aggregator struct {
	conf AggregatorConfig

	// flushMu serializes flushes: exactly one upstream round trip is in
	// flight at a time, and the snapshot-clear-restore dance around it is
	// atomic with respect to other flushes. It is always acquired before
	// a.mu, never while holding it.
	flushMu sync.Mutex

	mu    sync.Mutex
	nodes map[string]bool       // member IDs seen (registered upstream at next flush)
	dirs  map[string]Directives // per-member directive cache from the last flush

	reports    []RunReport
	learn      *daikon.DB
	learnCount int
	recRaw     map[uint32][]byte // pending recordings, deduped per failure PC
	recFrom    map[uint32]string // capturing node per pending recording

	quarantined map[string]bool
	newlyQuar   []string // edge verdicts not yet reported upstream
	imgWire     []byte   // the protected image's wire form, for recording identity checks

	// epoch counts flush snapshots taken (takeLocked bumps it); state
	// buffered at epoch e rides the NEXT snapshot, number e+1. delivered
	// is the highest snapshot number whose flush fully completed — batch
	// sent AND DirectivesSet reply merged — so "my data went upstream and
	// the directive cache reflects it" is exactly delivered > e (see
	// flushIfDue). A failed Send restores its snapshot without advancing
	// delivered; a lost reply leaves delivered behind too, costing at
	// worst one redundant near-empty re-flush.
	epoch     uint64
	delivered uint64 // see epoch

	conns  map[Conn]bool // live member connections, for Close
	closed bool

	// upstream is the live manager connection — conf.Upstream until the
	// resilient path re-dials past a fault or a root failover. Written
	// under a.mu; the flush path reads it while holding flushMu, so at
	// most one round trip uses it at a time.
	upstream Conn
	// rt/token drive the resilient flush path (nil rt = legacy fail-fast;
	// token is guarded by flushMu, the only path that stamps it).
	rt    *retrier
	token uint64

	// Telemetry; see Manager's twin fields. The counters are atomics in
	// reg, readable without a.mu.
	tr        *obs.Tracer
	reg       *obs.Registry
	cUpstream *obs.Counter // envelopes sent upstream (the number the hierarchy minimizes)
	cFlushes  *obs.Counter // completed flushes
	cRejects  *obs.Counter // member-batch reports dropped for claiming a peer's identity
	cRetries  *obs.Counter // flush round-trip retries (resilient path)
	cRedials  *obs.Counter // upstream re-dials (resilient path)
}

// NewAggregator builds an aggregator speaking to the manager over
// conf.Upstream.
func NewAggregator(conf AggregatorConfig) (*Aggregator, error) {
	if conf.ID == "" {
		return nil, fmt.Errorf("community: aggregator needs an ID")
	}
	if conf.Image == nil {
		return nil, fmt.Errorf("community: aggregator needs an image")
	}
	if conf.Upstream == nil {
		return nil, fmt.Errorf("community: aggregator needs an upstream connection")
	}
	reg := conf.Obs.Registry()
	if reg == nil {
		reg = obs.New()
	}
	a := &Aggregator{
		conf:        conf,
		nodes:       make(map[string]bool),
		dirs:        make(map[string]Directives),
		recRaw:      make(map[uint32][]byte),
		recFrom:     make(map[uint32]string),
		quarantined: make(map[string]bool),
		imgWire:     conf.Image.Marshal(),
		conns:       make(map[Conn]bool),
		upstream:    conf.Upstream,
		tr:          conf.Obs,
		reg:         reg,
		cUpstream:   reg.Counter("agg.upstream"),
		cFlushes:    reg.Counter("agg.flushes"),
		cRejects:    reg.Counter("agg.rejects"),
		cRetries:    reg.Counter("agg.retries"),
		cRedials:    reg.Counter("agg.redials"),
	}
	if conf.Retry != nil {
		a.rt = newRetrier(conf.Retry, conf.ID)
		if rt, ok := a.upstream.(RecvTimeouter); ok {
			rt.SetRecvTimeout(a.rt.pol.RecvTimeout)
		}
	}
	return a, nil
}

// Serve handles one member connection until it closes; run it in a
// goroutine per connection, like Manager.Serve. The connection is bound to
// the first sender identity it claims (see bindSender), so a member cannot
// switch to a peer's identity mid-stream.
func (a *Aggregator) Serve(conn Conn) error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		_ = conn.Close()
		return fmt.Errorf("community: aggregator %s is closed", a.conf.ID)
	}
	a.conns[conn] = true
	a.mu.Unlock()
	defer func() {
		// Drop the tracking entry when the connection dies, so a
		// long-lived aggregator under churn (members re-attaching over
		// fresh connections for years) holds only live connections.
		a.mu.Lock()
		delete(a.conns, conn)
		a.mu.Unlock()
		_ = conn.Close()
	}()
	var sender string
	for {
		env, err := conn.Recv()
		if err != nil {
			return err
		}
		reply, err := a.handle(env, &sender)
		if err != nil {
			return err
		}
		reply.Token = env.Token // correlate; see Envelope.Token
		if err := conn.Send(reply); err != nil {
			return err
		}
	}
}

// handle buffers one member message, flushes if the message made a flush
// due, and answers from the directive cache. bound is the connection's
// pinned sender identity (see bindSender).
//
// Handling is two-phase. decode does everything that needs no aggregator
// state — gob decode, learn-database and recording unmarshal, the static
// vet checks — on the member connection's own goroutine, outside every
// lock. apply then takes a.mu only to fold the pre-decoded, pre-vetted
// items into the flush buffers. Profiling the 1,000-node soak showed the
// old single-phase shape (all decode work under a.mu) convoying every
// member in a region behind whichever one was unmarshalling a batch:
// agg.handle spent ~85% of its wall time blocked on agg.mu, and the
// members' node.sync upstream waits were the same convoy seen from the
// other side of the wire.
func (a *Aggregator) handle(env Envelope, bound *string) (Envelope, error) {
	sp := a.tr.Start("agg.handle")
	defer sp.Finish()
	msg, err := a.decode(env, bound, sp)
	if err != nil {
		return Envelope{}, err
	}
	nodeID, epoch, needFlush, err := a.apply(msg, sp)
	if err != nil {
		return Envelope{}, err
	}
	if needFlush {
		if err := a.flushIfDue(epoch); err != nil {
			return Envelope{}, err
		}
	}
	done := sp.Block("agg.mu")
	a.mu.Lock()
	done()
	defer a.mu.Unlock()
	return a.cachedDirectives(nodeID)
}

// decoded is one member envelope after the lock-free half of handling:
// every payload unmarshalled, every static vet check already run. bad
// flags carry the vet verdicts into apply, which executes them under a.mu
// in arrival order — so the first bad item still quarantines the sender
// and drops the rest of its batch, exactly as the single-phase shape did.
type decoded struct {
	kind   MsgKind
	nodeID string

	hello bool // MsgHello: registration, maybe a mid-campaign join

	reports []vettedReport
	dbs     []vettedDB
	recs    []vettedRec
}

type vettedReport struct {
	rep RunReport
	bad bool // failed checkReportStatic
}

type vettedDB struct {
	db  *daikon.DB
	bad bool // failed checkLearnDBStatic
}

type vettedRec struct {
	rec  *replay.Recording
	raw  []byte
	pc   uint32
	skip bool // not a failing run: dropped silently, no verdict
	bad  bool // failed checkRecordingStatic
}

// decode is handle's lock-free phase: unmarshal and statically vet one
// member envelope using only immutable config (the image, VetReports) and
// the connection-local sender binding. The one piece of mutable state it
// reads is the sender's quarantine flag, through a short a.mu peek, so a
// quarantined member's batch still costs the region a map lookup rather
// than unmarshal work; the peek is advisory (apply re-checks under the
// lock), it only avoids wasted decoding.
func (a *Aggregator) decode(env Envelope, bound *string, sp *obs.Span) (decoded, error) {
	switch env.Kind {
	case MsgHello:
		nodeID, err := decodeHello(env.Payload)
		if err != nil {
			return decoded{}, err
		}
		if err := bindSender(bound, nodeID); err != nil {
			return decoded{}, err
		}
		return decoded{kind: env.Kind, nodeID: nodeID, hello: true}, nil
	case MsgRunReport:
		var rep RunReport
		if err := decodePayload(env.Payload, &rep); err != nil {
			return decoded{}, err
		}
		if err := bindSender(bound, rep.NodeID); err != nil {
			return decoded{}, err
		}
		return decoded{kind: env.Kind, nodeID: rep.NodeID,
			reports: []vettedReport{a.vetReport(&rep)}}, nil
	case MsgLearnUpload:
		var up LearnUpload
		if err := decodePayload(env.Payload, &up); err != nil {
			return decoded{}, err
		}
		if err := bindSender(bound, up.NodeID); err != nil {
			return decoded{}, err
		}
		// The learn span covers the lock-free unmarshal+vet — the
		// aggregator's share of the learning stage's work — and the
		// quarantine drop too: a rejected upload is still the learning
		// stage doing its (cheap) work.
		lsp := a.tr.Start("learn")
		defer lsp.Finish()
		msg := decoded{kind: env.Kind, nodeID: up.NodeID}
		if a.peekQuarantined(up.NodeID, sp) {
			return msg, nil
		}
		db, err := daikon.UnmarshalDB(up.DB)
		if err != nil {
			return decoded{}, err
		}
		msg.dbs = []vettedDB{a.vetDB(db)}
		return msg, nil
	case MsgRecording:
		var up RecordingUpload
		if err := decodePayload(env.Payload, &up); err != nil {
			return decoded{}, err
		}
		if err := bindSender(bound, up.NodeID); err != nil {
			return decoded{}, err
		}
		msg := decoded{kind: env.Kind, nodeID: up.NodeID}
		if a.peekQuarantined(up.NodeID, sp) {
			return msg, nil
		}
		rec, err := replay.Unmarshal(up.Recording)
		if err != nil {
			return decoded{}, err
		}
		msg.recs = []vettedRec{a.vetRecording(rec, up.Recording)}
		return msg, nil
	case MsgBatch:
		var b Batch
		if err := decodePayload(env.Payload, &b); err != nil {
			return decoded{}, err
		}
		if batchAggregated(&b) {
			return decoded{}, fmt.Errorf("community: aggregator %s cannot relay an aggregated batch", a.conf.ID)
		}
		if err := bindSender(bound, b.NodeID); err != nil {
			return decoded{}, err
		}
		msg := decoded{kind: env.Kind, nodeID: b.NodeID}
		if a.peekQuarantined(b.NodeID, sp) {
			return msg, nil
		}
		// Decode every payload before buffering anything, mirroring the
		// manager's handleBatch: a malformed item rejects the batch whole
		// rather than shipping its earlier items upstream half-applied.
		for _, raw := range b.LearnDBs {
			lsp := a.tr.Start("learn")
			db, err := daikon.UnmarshalDB(raw)
			lsp.Finish()
			if err != nil {
				return decoded{}, err
			}
			msg.dbs = append(msg.dbs, a.vetDB(db))
		}
		for _, raw := range b.Recordings {
			rec, err := replay.Unmarshal(raw)
			if err != nil {
				return decoded{}, err
			}
			msg.recs = append(msg.recs, a.vetRecording(rec, raw))
		}
		for i := range b.Reports {
			if b.Reports[i].NodeID != b.NodeID {
				// A member batch may only report the member's own runs: a
				// report claiming a peer's identity is a framing attempt —
				// under VetReports its sanity-check verdict would land on
				// the named peer — and is dropped before any check can
				// quarantine anyone.
				a.cRejects.Inc()
				continue
			}
			msg.reports = append(msg.reports, a.vetReport(&b.Reports[i]))
		}
		return msg, nil
	default:
		return decoded{}, fmt.Errorf("community: aggregator %s: unexpected message %v", a.conf.ID, env.Kind)
	}
}

// vetReport runs the static report check (when armed) outside a.mu.
func (a *Aggregator) vetReport(rep *RunReport) vettedReport {
	v := vettedReport{rep: *rep}
	if a.conf.VetReports {
		v.bad = checkReportStatic(a.conf.Image, rep) != ""
	}
	return v
}

// vetDB runs the static learning-database check (when armed) outside a.mu.
func (a *Aggregator) vetDB(db *daikon.DB) vettedDB {
	v := vettedDB{db: db}
	if a.conf.VetReports {
		v.bad = checkLearnDBStatic(a.conf.Image, db) != ""
	}
	return v
}

// vetRecording runs the static recording checks (when armed) outside a.mu.
func (a *Aggregator) vetRecording(rec *replay.Recording, raw []byte) vettedRec {
	v := vettedRec{rec: rec, raw: raw}
	pc, ok := rec.FailurePC()
	if !ok {
		v.skip = true // only failing runs are worth upstream bytes
		return v
	}
	v.pc = pc
	if a.conf.VetReports {
		v.bad = checkRecordingStatic(a.conf.Image, a.imgWire, rec, pc) != ""
	}
	return v
}

// peekQuarantined reads the sender's quarantine flag under a short a.mu
// hold. Advisory only — see decode.
func (a *Aggregator) peekQuarantined(nodeID string, sp *obs.Span) bool {
	done := sp.Block("agg.mu")
	a.mu.Lock()
	done()
	q := a.quarantined[nodeID]
	a.mu.Unlock()
	return q
}

// apply is handle's locked phase: fold one decoded envelope into the
// flush buffers and report whether a flush is now due — the report buffer
// reached FlushEvery, or a new member joined mid-campaign (it must be
// registered upstream before it leaves with real directives — §3's
// protection without exposure must survive the cache tier; cold-start
// attaches, before any flush, register locally: the whole region is new
// and flushes soon anyway). The flush itself happens back in handle,
// after a.mu is released, so members on other connections never stall
// behind the upstream round trip; epoch is the snapshot epoch the message
// was buffered under, letting that flush skip the round trip when a
// concurrent one already swept the buffers (see flushIfDue).
func (a *Aggregator) apply(msg decoded, sp *obs.Span) (nodeID string, epoch uint64, needFlush bool, err error) {
	done := sp.Block("agg.mu")
	a.mu.Lock()
	done()
	defer a.mu.Unlock()
	epoch = a.epoch
	if msg.hello {
		// Mid-campaign means a flush snapshot has been taken (epoch > 0),
		// not that one has completed: a joiner arriving while the very
		// first flush's round trip is in flight is already too late for
		// its snapshot and needs a flush of its own.
		_, known := a.nodes[msg.nodeID]
		a.nodes[msg.nodeID] = true
		return msg.nodeID, epoch, !known && epoch > 0, nil
	}
	a.nodes[msg.nodeID] = true
	for i := range msg.dbs {
		a.bufferLearnVetted(msg.nodeID, &msg.dbs[i])
	}
	for i := range msg.reports {
		a.bufferReportVetted(msg.nodeID, &msg.reports[i])
	}
	for i := range msg.recs {
		a.bufferRecordingVetted(msg.nodeID, &msg.recs[i])
	}
	due := false
	if msg.kind == MsgRunReport || msg.kind == MsgBatch {
		due = a.flushDueLocked()
	}
	return msg.nodeID, epoch, due, nil
}

// cachedDirectives answers a member from the per-node cache. A member the
// cache has never seen gets the empty directive set at sequence 0 — NOT
// the cached sequence: the member is about to run without this phase's
// patches, and stamping its reports with the current sequence would let an
// unprotected newcomer's failure demote a community-adopted repair. Its
// real directives arrive with the next flush. Called with a.mu held.
func (a *Aggregator) cachedDirectives(nodeID string) (Envelope, error) {
	d, ok := a.dirs[nodeID]
	if !ok {
		d = Directives{}
	}
	return directivesEnvelope(d)
}

// bufferReportVetted queues one pre-vetted run report for the next flush,
// dropping it if the sender is quarantined and executing a failed vet
// verdict. Called with a.mu held.
func (a *Aggregator) bufferReportVetted(nodeID string, v *vettedReport) {
	if a.quarantined[nodeID] {
		return
	}
	if v.bad {
		a.quarantineLocked(nodeID)
		return
	}
	a.reports = append(a.reports, v.rep)
}

// bufferLearnVetted folds one pre-decoded, pre-vetted learning upload into
// the region database. Called with a.mu held.
func (a *Aggregator) bufferLearnVetted(nodeID string, v *vettedDB) {
	if a.quarantined[nodeID] {
		return
	}
	if v.bad {
		a.quarantineLocked(nodeID)
		return
	}
	if a.learn == nil {
		a.learn = v.db
	} else {
		a.learn.Merge(v.db, daikon.DefaultMaxOneOf)
	}
	a.learnCount++
}

// bufferRecordingVetted queues one pre-decoded, pre-vetted failing-run
// recording (v.raw is its wire form, forwarded upstream verbatim),
// deduplicating per failure location — the first capture wins; the
// manager's farm only needs one copy of a deterministic failure. The edge
// ran every static recording check outside the lock (replays are the
// manager's): a recording of some other binary, one claiming an
// out-of-range failure, or one with an implausible step budget never
// travels upstream. Called with a.mu held.
func (a *Aggregator) bufferRecordingVetted(nodeID string, v *vettedRec) {
	if a.quarantined[nodeID] || v.skip {
		return
	}
	if v.bad {
		a.quarantineLocked(nodeID)
		return
	}
	if _, dup := a.recRaw[v.pc]; dup {
		return
	}
	a.recRaw[v.pc] = v.raw
	a.recFrom[v.pc] = nodeID
}

// quarantineLocked records an edge verdict: the node's traffic is dropped
// here from now on, and the manager learns of the verdict at the next
// flush. Called with a.mu held.
func (a *Aggregator) quarantineLocked(nodeID string) {
	if a.quarantined[nodeID] {
		return
	}
	a.quarantined[nodeID] = true
	a.newlyQuar = append(a.newlyQuar, nodeID)
}

// flushDueLocked reports whether the report buffer has reached the
// configured auto-flush size. Called with a.mu held.
func (a *Aggregator) flushDueLocked() bool {
	return a.conf.FlushEvery > 0 && len(a.reports) >= a.conf.FlushEvery
}

// flushSnapshot is one flush's worth of buffered state, taken (and
// cleared) under a.mu so the upstream round trip can run outside the lock.
type flushSnapshot struct {
	members    []string // sorted member IDs at snapshot time
	reports    []RunReport
	learn      *daikon.DB
	learnCount int
	recRaw     map[uint32][]byte
	recFrom    map[uint32]string
	newlyQuar  []string
}

// takeLocked moves the buffered state into a snapshot, leaving the buffers
// empty. Called with a.mu held.
func (a *Aggregator) takeLocked() flushSnapshot {
	snap := flushSnapshot{
		members:    make([]string, 0, len(a.nodes)),
		reports:    a.reports,
		learn:      a.learn,
		learnCount: a.learnCount,
		recRaw:     a.recRaw,
		recFrom:    a.recFrom,
		newlyQuar:  a.newlyQuar,
	}
	for id := range a.nodes {
		snap.members = append(snap.members, id)
	}
	sort.Strings(snap.members)
	a.reports = nil
	a.learn = nil
	a.learnCount = 0
	a.recRaw = make(map[uint32][]byte)
	a.recFrom = make(map[uint32]string)
	a.newlyQuar = nil
	a.epoch++
	return snap
}

// restore merges an unsent snapshot back into the buffers, ahead of
// whatever members buffered while the flush was in flight, so a failed
// Send loses nothing. Takes a.mu.
func (a *Aggregator) restore(snap flushSnapshot) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.reports = append(snap.reports, a.reports...)
	if snap.learnCount > 0 {
		if a.learn != nil {
			snap.learn.Merge(a.learn, daikon.DefaultMaxOneOf)
		}
		a.learn = snap.learn
		a.learnCount += snap.learnCount
	}
	for pc, raw := range snap.recRaw {
		// The snapshot's capture came first, so it wins the per-location
		// dedupe over anything buffered during the flush attempt.
		a.recRaw[pc] = raw
		a.recFrom[pc] = snap.recFrom[pc]
	}
	a.newlyQuar = append(snap.newlyQuar, a.newlyQuar...)
}

// batch compacts a snapshot into the upstream envelope's payload.
func (snap *flushSnapshot) batch(aggID string) (Batch, error) {
	b := Batch{
		NodeID:      aggID,
		Aggregated:  true,
		NodeIDs:     snap.members,
		Reports:     snap.reports,
		Quarantined: snap.newlyQuar,
	}
	var pcs []uint32
	for pc := range snap.recRaw {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	for _, pc := range pcs {
		b.Recordings = append(b.Recordings, snap.recRaw[pc])
		b.RecordingFrom = append(b.RecordingFrom, snap.recFrom[pc])
	}
	if snap.learnCount > 0 {
		raw, err := snap.learn.Marshal()
		if err != nil {
			return Batch{}, err
		}
		b.LearnDBs = [][]byte{raw}
	}
	return b, nil
}

// Flush compacts everything buffered since the last flush into one
// upstream MsgBatch — the region's reports in arrival order, its learning
// uploads pre-merged into a single database, its recordings deduplicated
// per failure location, and any edge quarantine verdicts — and refreshes
// the per-member directive cache from the manager's DirectivesSet reply.
// A flush with nothing buffered still runs: it registers new members and
// pulls fresh directives (the region's heartbeat).
//
// The buffers are snapshotted and cleared under a.mu, but the upstream
// round trip itself runs outside it, so member connections keep being
// served while the manager works. If Send fails, the snapshot is restored
// and the next flush re-sends it; once Send has succeeded the buffers stay
// cleared whatever happens to the reply — the manager may already have
// applied the batch, and re-sending it would double-count the region's
// runs and detections upstream.
func (a *Aggregator) Flush() error {
	sp := a.tr.Start("flush")
	defer sp.Finish()
	done := sp.Block("flushmu")
	a.flushMu.Lock()
	done()
	defer a.flushMu.Unlock()
	return a.flushHoldingFlushMu(sp)
}

// flushIfDue is the auto-flush entry point (FlushEvery reached, or a
// mid-campaign join): it flushes unless the state buffered at epoch has
// already been DELIVERED by a concurrent flush — one whose snapshot was
// taken after the triggering message was buffered (snapshot number >
// epoch) and which completed its whole round trip, reply merge included.
// That flush finished before flushMu was granted here, so the directive
// cache already reflects the buffered state; another round trip would
// only ship a redundant near-empty envelope, inflating the very upstream
// count the hierarchy minimizes. A snapshot alone is not enough: a failed
// Send restored the buffers, and a lost reply left the cache stale, so in
// either case the due flush must still run.
func (a *Aggregator) flushIfDue(epoch uint64) error {
	sp := a.tr.Start("flush")
	defer sp.Finish()
	done := sp.Block("flushmu")
	a.flushMu.Lock()
	done()
	defer a.flushMu.Unlock()
	done = sp.Block("agg.mu")
	a.mu.Lock()
	done()
	carried := a.delivered > epoch
	a.mu.Unlock()
	if carried {
		return nil
	}
	return a.flushHoldingFlushMu(sp)
}

// flushHoldingFlushMu is Flush's body. Called with a.flushMu held (and
// a.mu NOT held).
func (a *Aggregator) flushHoldingFlushMu(sp *obs.Span) error {
	done := sp.Block("agg.mu")
	a.mu.Lock()
	done()
	if a.closed {
		a.mu.Unlock()
		return fmt.Errorf("community: aggregator %s is closed", a.conf.ID)
	}
	snap := a.takeLocked()
	snapEpoch := a.epoch
	a.mu.Unlock()

	b, err := snap.batch(a.conf.ID)
	if err != nil {
		a.restore(snap)
		return err
	}
	if a.rt != nil {
		// Number the snapshot so the manager applies it at most once even
		// if the resilient loop below sends it more than once.
		b.FlushSeq = snapEpoch
	}
	env, err := NewEnvelope(MsgBatch, b)
	if err != nil {
		a.restore(snap)
		return err
	}
	reply, err := a.flushRoundTrip(sp, env, snap)
	if err != nil {
		return err
	}
	if reply.Kind != MsgDirectivesSet {
		return fmt.Errorf("community: aggregator %s: unexpected reply %v", a.conf.ID, reply.Kind)
	}
	var set DirectivesSet
	if err := decodePayload(reply.Payload, &set); err != nil {
		return err
	}

	done = sp.Block("agg.mu")
	a.mu.Lock()
	done()
	for id, d := range set.ByNode {
		a.dirs[id] = d
	}
	// delivered advances only now, after the reply refreshed the directive
	// cache: flushIfDue's skip promises BOTH that the buffered data went
	// upstream and that the cache reflects it (a mid-campaign joiner's
	// skipped flush must still leave it with real directives). If the
	// reply is lost after a successful Send, the next due flush runs
	// again — a near-empty envelope, never a double-send, because the
	// buffers stay cleared.
	a.delivered = snapEpoch
	a.cFlushes.Inc()
	a.mu.Unlock()
	return nil
}

// flushRoundTrip runs one flush's upstream exchange and returns the reply.
//
// Legacy path (no Retry policy): one shot. A failed Send restores the
// snapshot — on the in-process pipe a send error means the envelope never
// left — and a lost reply propagates with the buffers left cleared (see
// Flush's contract).
//
// Resilient path: the same numbered envelope is retried across backoff and
// upstream re-dials until a reply arrives or attempts run out. Re-sending
// is safe — even when an earlier attempt was actually delivered (a
// mid-flush disconnect is ambiguous) — because FlushSeq makes the manager
// apply each snapshot at most once, so a retried flush can recover its
// reply instead of surrendering it.
func (a *Aggregator) flushRoundTrip(sp *obs.Span, env Envelope, snap flushSnapshot) (Envelope, error) {
	if a.rt == nil {
		var sendErr error
		sp.BlockFor("upstream", func() { sendErr = a.conf.Upstream.Send(env) })
		if sendErr != nil {
			a.restore(snap)
			return Envelope{}, sendErr
		}
		a.cUpstream.Inc()
		var reply Envelope
		var recvErr error
		sp.BlockFor("upstream", func() { reply, recvErr = a.conf.Upstream.Recv() })
		if recvErr != nil {
			return Envelope{}, recvErr
		}
		return reply, nil
	}

	a.token++ // flushMu serializes every stamper
	env.Token = a.token
	up := a.upstreamConn()
	var lastErr error
	hard, slow := 0, 0
	for {
		var sendErr error
		sp.BlockFor("upstream", func() { sendErr = up.Send(env) })
		if sendErr == nil {
			a.cUpstream.Inc()
			reply, recvErr := a.recvMatching(sp, up, env.Token)
			if recvErr == nil {
				return reply, nil
			}
			lastErr = recvErr
		} else {
			lastErr = sendErr
		}
		timedOut := sendErr == nil && IsTimeout(lastErr)
		if timedOut {
			slow++
		} else {
			hard++
		}
		if hard >= a.rt.pol.MaxAttempts || hard+slow >= a.rt.pol.TimeoutAttempts {
			break
		}
		a.cRetries.Inc()
		a.rt.sleep(hard)
		if timedOut {
			// The wire is healthy; the reply is lost or just slow (a batch
			// apply can outlast the receive window). Re-sending on the SAME
			// connection keeps a slow reply reachable — a redial would
			// guarantee its loss — and FlushSeq makes the duplicate safe.
			continue
		}
		if c, err := a.redialUpstream(); err != nil {
			lastErr = err // keep the dead conn; the next Send fails fast
		} else {
			up = c
		}
	}
	// Exhausted. The manager may or may not have applied the snapshot, so
	// restoring the reports would risk double-counting them under a fresh
	// FlushSeq; only the idempotent state is re-queued.
	a.restoreIdempotent(snap)
	return Envelope{}, fmt.Errorf("community: aggregator %s: flush failed after %d attempts: %w",
		a.conf.ID, hard+slow, lastErr)
}

// recvMatching receives until a reply carries the given token, draining
// the stray replies duplicated earlier requests left on the channel.
func (a *Aggregator) recvMatching(sp *obs.Span, up Conn, token uint64) (Envelope, error) {
	for {
		var reply Envelope
		var recvErr error
		sp.BlockFor("upstream", func() { reply, recvErr = up.Recv() })
		if recvErr != nil {
			return Envelope{}, recvErr
		}
		if reply.Token == token {
			return reply, nil
		}
	}
}

// upstreamConn reads the live upstream connection.
func (a *Aggregator) upstreamConn() Conn {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.upstream
}

// redialUpstream reopens the manager connection — after a root failover
// the re-dial lands on the promoted leader — and installs it as the live
// upstream.
func (a *Aggregator) redialUpstream() (Conn, error) {
	if a.conf.Redial == nil {
		return nil, fmt.Errorf("community: aggregator %s: no redial path", a.conf.ID)
	}
	c, err := a.conf.Redial()
	if err != nil {
		return nil, err
	}
	if rt, ok := c.(RecvTimeouter); ok {
		rt.SetRecvTimeout(a.rt.pol.RecvTimeout)
	}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		_ = c.Close()
		return nil, fmt.Errorf("community: aggregator %s is closed", a.conf.ID)
	}
	old := a.upstream
	a.upstream = c
	a.mu.Unlock()
	_ = old.Close()
	a.cRedials.Inc()
	return c, nil
}

// restoreIdempotent re-queues the parts of an undeliverable snapshot that
// are safe to ship twice: quarantine verdicts (the manager's merge is
// idempotent, and protection-without-exposure must not lose them) and
// failing-run recordings (latest-wins per location upstream). Reports and
// the merged learn database are surrendered — the manager may already
// have applied the snapshot, and re-shipping them under a fresh FlushSeq
// would double-count the region's runs.
func (a *Aggregator) restoreIdempotent(snap flushSnapshot) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for pc, raw := range snap.recRaw {
		a.recRaw[pc] = raw
		a.recFrom[pc] = snap.recFrom[pc]
	}
	a.newlyQuar = append(snap.newlyQuar, a.newlyQuar...)
}

// UpstreamEnvelopes returns how many envelopes this aggregator has sent to
// the manager — the count the hierarchy exists to keep small.
func (a *Aggregator) UpstreamEnvelopes() int {
	return int(a.cUpstream.Value())
}

// Flushes returns how many flushes have completed.
func (a *Aggregator) Flushes() int {
	return int(a.cFlushes.Value())
}

// ObsSnapshot captures the aggregator's telemetry without taking a.mu.
func (a *Aggregator) ObsSnapshot() obs.Snapshot {
	return a.reg.Snapshot()
}

// Members returns the sorted IDs of every member node seen.
func (a *Aggregator) Members() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.nodes))
	for id := range a.nodes {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Rejects returns how many member-batch reports were dropped for claiming
// a NodeID other than the sending member's own (attempted framing).
func (a *Aggregator) Rejects() int {
	return int(a.cRejects.Value())
}

// QuarantinedNodes returns the sorted IDs of members quarantined at this
// edge.
func (a *Aggregator) QuarantinedNodes() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.quarantined))
	for id := range a.quarantined {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Close simulates the aggregator failing: the upstream connection and
// every member connection are torn down, and all buffered (unflushed)
// state is lost. Members detect the dead connection and fail over to a
// sibling aggregator with Node.Attach; nothing they lose is
// unrecoverable, because all durable community state lives at the manager
// keyed by node ID.
func (a *Aggregator) Close() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	conns := make([]Conn, 0, len(a.conns))
	for c := range a.conns {
		conns = append(conns, c)
	}
	a.conns = make(map[Conn]bool)
	up := a.upstream
	a.mu.Unlock()
	_ = up.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	return nil
}
