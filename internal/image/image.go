// Package image defines the stripped binary image format that ClearView
// protects: raw code bytes, a load base, and an entry point. There are no
// symbols, relocation tables, procedure boundaries, or debug records — by
// design, matching the paper's "stripped Windows x86 binaries" constraint.
package image

import (
	"encoding/binary"
	"fmt"
)

// Image is a loadable stripped binary.
type Image struct {
	Base  uint32 // load address of Code[0]
	Entry uint32 // initial program counter
	Code  []byte
}

// End returns one past the last code address.
func (im *Image) End() uint32 { return im.Base + uint32(len(im.Code)) }

// Contains reports whether addr falls inside the code region.
func (im *Image) Contains(addr uint32) bool {
	return addr >= im.Base && addr < im.End()
}

// Validate checks structural sanity: a non-empty image whose entry point
// lies inside the code region.
func (im *Image) Validate() error {
	if len(im.Code) == 0 {
		return fmt.Errorf("image: empty code")
	}
	if !im.Contains(im.Entry) {
		return fmt.Errorf("image: entry %#x outside code [%#x,%#x)", im.Entry, im.Base, im.End())
	}
	return nil
}

const magic = 0x42565743 // "CWVB"

// Marshal serializes the image to a flat byte format:
// magic, base, entry, code length, code bytes (all little endian).
func (im *Image) Marshal() []byte {
	out := make([]byte, 16+len(im.Code))
	binary.LittleEndian.PutUint32(out[0:], magic)
	binary.LittleEndian.PutUint32(out[4:], im.Base)
	binary.LittleEndian.PutUint32(out[8:], im.Entry)
	binary.LittleEndian.PutUint32(out[12:], uint32(len(im.Code)))
	copy(out[16:], im.Code)
	return out
}

// Unmarshal parses a serialized image.
func Unmarshal(b []byte) (*Image, error) {
	if len(b) < 16 {
		return nil, fmt.Errorf("image: truncated header: %d bytes", len(b))
	}
	if binary.LittleEndian.Uint32(b) != magic {
		return nil, fmt.Errorf("image: bad magic %#x", binary.LittleEndian.Uint32(b))
	}
	n := binary.LittleEndian.Uint32(b[12:])
	if uint32(len(b)-16) < n {
		return nil, fmt.Errorf("image: truncated code: want %d have %d", n, len(b)-16)
	}
	im := &Image{
		Base:  binary.LittleEndian.Uint32(b[4:]),
		Entry: binary.LittleEndian.Uint32(b[8:]),
		Code:  append([]byte(nil), b[16:16+n]...),
	}
	if err := im.Validate(); err != nil {
		return nil, err
	}
	return im, nil
}
