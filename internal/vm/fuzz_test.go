package vm

import (
	"math/rand"
	"testing"

	"repro/internal/image"
	"repro/internal/isa"
)

// TestRandomCodeNeverPanicsHost: arbitrary bytes loaded as a binary must
// produce a defined outcome (exit, failure, or crash) without panicking
// the host — the robustness a managed execution environment owes its
// operator even for garbage binaries.
func TestRandomCodeNeverPanicsHost(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		code := make([]byte, 64*isa.InstSize)
		rng.Read(code)
		img := &image.Image{Base: 0x1000, Entry: 0x1000, Code: code}
		machine, err := New(Config{Image: img, MaxSteps: 10_000})
		if err != nil {
			t.Fatal(err)
		}
		res := machine.Run()
		switch res.Outcome {
		case OutcomeExit, OutcomeFailure, OutcomeCrash:
		default:
			t.Fatalf("trial %d: undefined outcome %v", trial, res.Outcome)
		}
	}
}

// TestRandomValidProgramsBounded: randomly assembled *valid* instructions
// (all operands in range) always terminate within the step budget with a
// defined outcome, and the step accounting is consistent.
func TestRandomValidProgramsBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(1337))
	ops := []isa.Op{
		isa.NOP, isa.MOVRI, isa.MOVRR, isa.ADDRR, isa.ADDRI, isa.SUBRR,
		isa.MULRI, isa.ANDRI, isa.ORRR, isa.XORRR, isa.SHLRI, isa.SARRI,
		isa.SEXTB, isa.CMPRR, isa.CMPRI, isa.PUSH, isa.POP, isa.PUSHI,
		isa.LEA, isa.JMP, isa.JE, isa.JNE,
	}
	for trial := 0; trial < 200; trial++ {
		n := 16 + rng.Intn(48)
		code := make([]byte, 0, (n+1)*isa.InstSize)
		for i := 0; i < n; i++ {
			op := ops[rng.Intn(len(ops))]
			in := isa.Inst{
				Op: op,
				A:  isa.Reg(rng.Intn(isa.NumRegs)),
				B:  isa.Reg(rng.Intn(isa.NumRegs)),
				X:  isa.NoReg,
			}
			switch op {
			case isa.JMP, isa.JE, isa.JNE:
				// Forward-only branches within the program keep it finite.
				remaining := n - i
				in.Imm = int32(rng.Intn(remaining)) * isa.InstSize
			case isa.MOVRI, isa.ADDRI, isa.CMPRI, isa.PUSHI, isa.MULRI, isa.ANDRI:
				in.Imm = int32(rng.Intn(1 << 16))
			case isa.SHLRI, isa.SARRI:
				in.Imm = int32(rng.Intn(32))
			case isa.LEA:
				in.Imm = int32(rng.Intn(64))
			}
			enc := in.Encode()
			code = append(code, enc[:]...)
		}
		halt := isa.Inst{Op: isa.SYS, X: isa.NoReg, Imm: isa.SysExit}.Encode()
		code = append(code, halt[:]...)

		img := &image.Image{Base: 0x1000, Entry: 0x1000, Code: code}
		machine, err := New(Config{Image: img, MaxSteps: 100_000})
		if err != nil {
			t.Fatal(err)
		}
		res := machine.Run()
		if res.Steps == 0 {
			t.Fatalf("trial %d: no steps executed", trial)
		}
		if res.Outcome == OutcomeCrash && res.Crash == nil {
			t.Fatalf("trial %d: crash without detail", trial)
		}
	}
}

// TestRandomProgramsDeterministic: the same random program produces the
// same outcome, step count, and output twice — the determinism that all
// of ClearView's replay-based phases rely on.
func TestRandomProgramsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 50; trial++ {
		code := make([]byte, 48*isa.InstSize)
		rng.Read(code)
		img := &image.Image{Base: 0x1000, Entry: 0x1000, Code: code}
		run := func() RunResult {
			m, err := New(Config{Image: img, MaxSteps: 5_000})
			if err != nil {
				t.Fatal(err)
			}
			return m.Run()
		}
		r1, r2 := run(), run()
		if r1.Outcome != r2.Outcome || r1.Steps != r2.Steps {
			t.Fatalf("trial %d: nondeterministic: %v/%d vs %v/%d",
				trial, r1.Outcome, r1.Steps, r2.Outcome, r2.Steps)
		}
	}
}
