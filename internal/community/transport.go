package community

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Conn is one bidirectional message channel between a node and the
// manager. Implementations must be safe for one concurrent sender and one
// concurrent receiver.
type Conn interface {
	Send(Envelope) error
	Recv() (Envelope, error)
	Close() error
}

// RecvTimeouter is the optional Conn extension the resilient client path
// needs: a per-receive deadline, so a dropped request or reply (or a dead
// peer) surfaces as a timeout error instead of hanging the caller forever.
// Both built-in transports implement it; zero disables the timeout.
type RecvTimeouter interface {
	SetRecvTimeout(time.Duration)
}

// errRecvTimeout marks a receive that expired without an envelope. It
// implements net.Error's Timeout contract so callers can treat pipe and
// TCP deadline expiries uniformly (see IsTimeout).
type errRecvTimeout struct{}

func (errRecvTimeout) Error() string   { return "community: recv timed out" }
func (errRecvTimeout) Timeout() bool   { return true }
func (errRecvTimeout) Temporary() bool { return true }

// IsTimeout reports whether an error from Conn.Recv (either substrate) is
// a receive-deadline expiry rather than a dead connection.
func IsTimeout(err error) bool {
	t, ok := err.(interface{ Timeout() bool })
	return ok && t.Timeout()
}

// ---- in-process transport ----

// pipeShared is the state common to both ends of an in-process pipe; the
// close is shared so that either (or both) ends may Close safely.
type pipeShared struct {
	once sync.Once
	done chan struct{}
}

func (s *pipeShared) close() { s.once.Do(func() { close(s.done) }) }

type pipeConn struct {
	out    chan<- Envelope
	in     <-chan Envelope
	shared *pipeShared
	// recvTimeout bounds each Recv in nanoseconds (0 = wait forever). An
	// atomic so SetRecvTimeout from a connecting goroutine never races the
	// receiver.
	recvTimeout atomic.Int64
}

// Pipe returns a connected in-process transport pair (node side, manager
// side). It is the test/bench substrate; the TCP transport below is the
// deployment analog. Closing either end closes the pair.
func Pipe() (Conn, Conn) {
	a := make(chan Envelope, 64)
	b := make(chan Envelope, 64)
	shared := &pipeShared{done: make(chan struct{})}
	return &pipeConn{out: a, in: b, shared: shared},
		&pipeConn{out: b, in: a, shared: shared}
}

func (c *pipeConn) Send(e Envelope) error {
	select {
	case <-c.shared.done:
		return fmt.Errorf("community: send on closed pipe")
	case c.out <- e:
		return nil
	}
}

// SetRecvTimeout bounds every subsequent Recv (0 = wait forever).
func (c *pipeConn) SetRecvTimeout(d time.Duration) { c.recvTimeout.Store(int64(d)) }

func (c *pipeConn) Recv() (Envelope, error) {
	// Envelopes already buffered in the channel beat both the close signal
	// and the timeout: a real TCP stack delivers bytes that were in flight
	// before the FIN, and a racing Close must not drop them (the manager's
	// last directive snapshot may be in that buffer).
	select {
	case e := <-c.in:
		return e, nil
	default:
	}
	var timeout <-chan time.Time
	if d := time.Duration(c.recvTimeout.Load()); d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case <-c.shared.done:
		// The close may have raced an in-flight Send; drain it if so.
		select {
		case e := <-c.in:
			return e, nil
		default:
		}
		return Envelope{}, fmt.Errorf("community: recv on closed pipe")
	case e := <-c.in:
		return e, nil
	case <-timeout:
		return Envelope{}, errRecvTimeout{}
	}
}

func (c *pipeConn) Close() error {
	c.shared.close()
	return nil
}

// ---- TCP transport ----

type tcpConn struct {
	c   net.Conn
	enc *gob.Encoder
	dec *gob.Decoder
	sMu sync.Mutex
	rMu sync.Mutex
	// recvTimeout/sendTimeout bound each op in nanoseconds (0 = no
	// deadline). Atomics for the same reason as pipeConn's.
	recvTimeout atomic.Int64
	sendTimeout atomic.Int64
}

// defaultTCPSendTimeout bounds every TCP send even when the caller sets no
// explicit timeout: a peer that stops draining its socket (dead but not
// closed, or partitioned away) must surface as a write error, never hang a
// manager goroutine forever. Generous — an honest envelope flushes in
// microseconds; only a wedged peer takes minutes.
const defaultTCPSendTimeout = 2 * time.Minute

func newTCPConn(c net.Conn) *tcpConn {
	return &tcpConn{c: c, enc: gob.NewEncoder(c), dec: gob.NewDecoder(c)}
}

// SetRecvTimeout bounds every subsequent Recv (0 = wait forever).
func (t *tcpConn) SetRecvTimeout(d time.Duration) { t.recvTimeout.Store(int64(d)) }

// SetSendTimeout bounds every subsequent Send (0 = the package default;
// see defaultTCPSendTimeout).
func (t *tcpConn) SetSendTimeout(d time.Duration) { t.sendTimeout.Store(int64(d)) }

func (t *tcpConn) Send(e Envelope) error {
	t.sMu.Lock()
	defer t.sMu.Unlock()
	d := time.Duration(t.sendTimeout.Load())
	if d <= 0 {
		d = defaultTCPSendTimeout
	}
	if err := t.c.SetWriteDeadline(time.Now().Add(d)); err != nil {
		return fmt.Errorf("community: tcp send deadline: %w", err)
	}
	return t.enc.Encode(e)
}

func (t *tcpConn) Recv() (Envelope, error) {
	t.rMu.Lock()
	defer t.rMu.Unlock()
	var deadline time.Time // zero = wait forever
	if d := time.Duration(t.recvTimeout.Load()); d > 0 {
		deadline = time.Now().Add(d)
	}
	if err := t.c.SetReadDeadline(deadline); err != nil {
		return Envelope{}, fmt.Errorf("community: tcp recv deadline: %w", err)
	}
	var e Envelope
	err := t.dec.Decode(&e)
	return e, err
}

func (t *tcpConn) Close() error { return t.c.Close() }

// Dial connects a node to a manager's TCP listener.
func Dial(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("community: dial %s: %w", addr, err)
	}
	return newTCPConn(c), nil
}

// Listener accepts node connections for a manager.
type Listener struct {
	l net.Listener
}

// Listen opens a manager-side TCP listener on addr ("127.0.0.1:0" for an
// ephemeral test port).
func Listen(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("community: listen %s: %w", addr, err)
	}
	return &Listener{l: l}, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.l.Addr().String() }

// Accept returns the next node connection.
func (l *Listener) Accept() (Conn, error) {
	c, err := l.l.Accept()
	if err != nil {
		return nil, fmt.Errorf("community: accept on %s: %w", l.Addr(), err)
	}
	return newTCPConn(c), nil
}

// Close stops accepting.
func (l *Listener) Close() error { return l.l.Close() }
