package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// requiredStages is every pipeline stage a hierarchical soak with
// adversaries, churn, and a recorder must report — the per-stage table's
// contract. The names map onto the paper's pipeline; see ARCHITECTURE.md.
var requiredStages = []string{
	"detect", "record", "record.seal", "vet", "farm", "correlate",
	"learn", "evaluate", "adopt",
	"mgr.handle", "agg.handle", "flush", "node.execute", "node.sync",
}

// smokeFlags is the shared small-but-full-featured soak shape: two
// aggregators, a spoofing and a forging adversary, churn, one recorder.
func smokeFlags(t *testing.T) soakFlags {
	t.Helper()
	return soakFlags{
		nodes: 24, aggregators: 2, rounds: 4,
		exploits: "290162,div-zero", batch: true, recorders: 1,
		adversaries: 2, churn: true, crashPerRound: 1, joinPerRound: 1,
		metricsPath: filepath.Join(t.TempDir(), "metrics.json"),
		parallel:    true,
	}
}

// checkSnapshotFile parses a -metrics file and asserts the telemetry
// contract: valid JSON, every required stage present with at least one
// span, and no registered stage silently idle.
func checkSnapshotFile(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading metrics file: %v", err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics file is not valid JSON: %v", err)
	}
	for _, name := range requiredStages {
		st := snap.Stage(name)
		if st == nil {
			t.Errorf("stage %q missing from metrics", name)
		} else if st.Spans == 0 {
			t.Errorf("stage %q reports zero samples", name)
		}
	}
	for i := range snap.Stages {
		if snap.Stages[i].Spans == 0 {
			t.Errorf("registered stage %q reports zero samples", snap.Stages[i].Name)
		}
	}
}

// TestSoakSmokeMetrics runs the soak in-process with telemetry armed and
// asserts the -metrics contract end to end.
func TestSoakSmokeMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("soak smoke skipped in -short mode")
	}
	f := smokeFlags(t)
	if err := run(f); err != nil {
		t.Fatalf("soak failed: %v", err)
	}
	checkSnapshotFile(t, f.metricsPath)
}

// TestChaosSoakSmoke is the CI chaos gate: the smoke-shaped soak with the
// seeded fault schedule armed — transport drops, delays, duplicates,
// mid-flush disconnects, partition windows, a replicated root, and a
// leader crash mid-campaign. It must converge (run returns nil), and the
// metrics snapshot must prove the faults actually fired and were
// absorbed: nonzero chaos, retry, reconnect, and failover counters.
func TestChaosSoakSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("soak smoke skipped in -short mode")
	}
	f := smokeFlags(t)
	f.chaos = true
	f.seed = 1
	if err := run(f); err != nil {
		t.Fatalf("chaos soak failed: %v", err)
	}
	checkSnapshotFile(t, f.metricsPath)

	data, err := os.ReadFile(f.metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"chaos.dropped", "node.retries", "node.reconnects",
		"root.failovers", "root.log_entries",
	} {
		if snap.Counter(name) == 0 {
			t.Errorf("counter %q is zero; the chaos run proved nothing", name)
		}
	}
	if got := snap.Counter("root.failovers"); got != 1 {
		t.Errorf("root.failovers = %d, want exactly 1", got)
	}
}

// TestSoakFailureExitsNonzeroWithPartialMetrics pins the failure
// contract: a soak that cannot converge must report an error (main turns
// it into a nonzero exit) AND still write the telemetry it gathered — a
// failed run without its partial metrics is undiagnosable.
func TestSoakFailureExitsNonzeroWithPartialMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("soak smoke skipped in -short mode")
	}
	f := smokeFlags(t)
	// One round cannot converge: adoption needs a second presentation.
	f.rounds = 1
	f.churn = false
	err := run(f)
	if err == nil {
		t.Fatal("one-round soak reported success; want a convergence error")
	}
	if !strings.Contains(err.Error(), "converge") {
		t.Fatalf("unexpected soak error: %v", err)
	}
	data, readErr := os.ReadFile(f.metricsPath)
	if readErr != nil {
		t.Fatalf("failed soak wrote no metrics: %v", readErr)
	}
	var snap obs.Snapshot
	if jsonErr := json.Unmarshal(data, &snap); jsonErr != nil {
		t.Fatalf("partial metrics are not valid JSON: %v", jsonErr)
	}
	if st := snap.Stage("node.execute"); st == nil || st.Spans == 0 {
		t.Error("partial metrics carry no node.execute samples")
	}
}

// TestMetricsFileStages lets CI assert an externally produced -metrics
// file (SOAK_METRICS_FILE) without re-running the soak. Skipped when the
// variable is unset.
func TestMetricsFileStages(t *testing.T) {
	path := os.Getenv("SOAK_METRICS_FILE")
	if path == "" {
		t.Skip("SOAK_METRICS_FILE not set")
	}
	checkSnapshotFile(t, path)
}

// simStages is every scheduler event kind a churning sim soak with
// adversaries must have fired, on top of the shared pipeline stages —
// the discrete-event equivalent of the goroutine soak's stage table.
var simStages = []string{
	"sim.sync", "sim.execute", "sim.detect", "sim.report", "sim.adopt",
	"sim.flush", "sim.churn", "sim.converge", "sim.tamper", "sim.decoy",
}

// checkSimSnapshotFile layers the simulator's telemetry contract on the
// shared one: every sim.* event kind sampled, and the scheduler's own
// counters (events fired, member turns, memoized executions) nonzero.
func checkSimSnapshotFile(t *testing.T, path string) {
	t.Helper()
	checkSnapshotFile(t, path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	for _, name := range simStages {
		st := snap.Stage(name)
		if st == nil {
			t.Errorf("sim stage %q missing from metrics", name)
		} else if st.Spans == 0 {
			t.Errorf("sim stage %q reports zero samples", name)
		}
	}
	for _, name := range []string{"sim.events", "sim.turns", "sim.memo_hits"} {
		if snap.Counter(name) == 0 {
			t.Errorf("counter %q is zero; the sim run proved nothing", name)
		}
	}
}

// TestSimSoakSmokeMetrics runs the smoke-shaped soak through the
// discrete-event simulator (-sim) and asserts the same telemetry
// contract plus the sim scheduler's own stages and counters.
func TestSimSoakSmokeMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("soak smoke skipped in -short mode")
	}
	f := smokeFlags(t)
	f.sim = true
	if err := run(f); err != nil {
		t.Fatalf("sim soak failed: %v", err)
	}
	checkSimSnapshotFile(t, f.metricsPath)
}

// TestSimMetricsFileStages lets CI assert the -metrics snapshot from an
// externally run `soak -sim` (SIM_METRICS_FILE) without re-running it —
// the sim-soak smoke gate parses its own 10k-node run through this.
// Skipped when the variable is unset.
func TestSimMetricsFileStages(t *testing.T) {
	path := os.Getenv("SIM_METRICS_FILE")
	if path == "" {
		t.Skip("SIM_METRICS_FILE not set")
	}
	checkSimSnapshotFile(t, path)
}
