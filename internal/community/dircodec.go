package community

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/daikon"
)

// This file is the directives wire-form cache. Every member contact is
// answered with a MsgDirectives snapshot, and within a phase almost
// every member of a region receives the identical snapshot — but gob
// pays its full per-stream price (type descriptors on encode, engine
// compilation on decode) for each one, which at deployment scale
// (cmd/soak, internal/community/sim) makes serializing identical
// directives the dominant campaign cost. The cache collapses that:
// identical snapshots are encoded once per process (keyed by an exact
// structural fingerprint) and decoded once (keyed by the payload bytes,
// handing out deep copies so callers own their value as if they had
// decoded it themselves). Entries are only ever whole snapshots keyed
// by their full content, so a hit is exactly the bytes or value a
// fresh gob run would produce.

// dirCacheLimit bounds each cache side. A campaign cycles through few
// distinct snapshots; the bound only matters across many campaigns in
// one long-lived process, where the maps are reset wholesale.
const dirCacheLimit = 4096

// helloCacheLimit bounds the hello caches: one entry per community
// member, sized for the deployment-scale simulation.
const helloCacheLimit = 1 << 18

var dirWire = struct {
	sync.Mutex
	enc map[string][]byte     // dirKey fingerprint -> encoded payload
	dec map[string]Directives // payload bytes -> decoded template
}{
	enc: make(map[string][]byte),
	dec: make(map[string]Directives),
}

func appendStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendInv(b []byte, inv *daikon.Invariant) []byte {
	b = append(b, byte(inv.Kind))
	b = binary.AppendUvarint(b, uint64(inv.Var.PC))
	b = append(b, inv.Var.Slot)
	b = binary.AppendUvarint(b, uint64(inv.Var2.PC))
	b = append(b, inv.Var2.Slot)
	b = binary.AppendUvarint(b, uint64(len(inv.Values)))
	for _, v := range inv.Values {
		b = binary.AppendUvarint(b, uint64(v))
	}
	b = binary.AppendVarint(b, int64(inv.Bound))
	return binary.AppendUvarint(b, inv.Samples)
}

// dirKey is a collision-free fingerprint of d: every field, length-
// prefixed where variable — two directives share a key iff they are
// equal. Reflection-free, so it costs a fraction of encoding d.
func dirKey(d *Directives) string {
	b := make([]byte, 0, 48+64*(len(d.Checks)+len(d.Repairs)))
	b = binary.AppendUvarint(b, d.Seq)
	b = binary.AppendUvarint(b, uint64(d.LearnLo))
	b = binary.AppendUvarint(b, uint64(d.LearnHi))
	b = binary.AppendUvarint(b, uint64(len(d.Checks)))
	for i := range d.Checks {
		b = appendStr(b, d.Checks[i].FailureID)
		b = appendInv(b, &d.Checks[i].Invariant)
	}
	b = binary.AppendUvarint(b, uint64(len(d.Repairs)))
	for i := range d.Repairs {
		r := &d.Repairs[i]
		b = appendStr(b, r.FailureID)
		b = appendInv(b, &r.Invariant)
		b = append(b, byte(r.Strategy))
		b = binary.AppendUvarint(b, uint64(r.Value))
		b = binary.AppendUvarint(b, uint64(r.SPDelta))
		b = binary.AppendUvarint(b, uint64(r.PC))
		b = binary.AppendVarint(b, int64(r.Depth))
	}
	return string(b)
}

// cloneDirectives deep-copies d, so cache consumers own their value
// exactly as if they had gob-decoded it.
func cloneDirectives(d Directives) Directives {
	out := d
	out.Checks = append([]CheckSpec(nil), d.Checks...)
	for i := range out.Checks {
		out.Checks[i].Invariant.Values = append([]uint32(nil), out.Checks[i].Invariant.Values...)
	}
	out.Repairs = append([]RepairSpec(nil), d.Repairs...)
	for i := range out.Repairs {
		out.Repairs[i].Invariant.Values = append([]uint32(nil), out.Repairs[i].Invariant.Values...)
	}
	return out
}

// helloWire is the same idea for MsgHello, the other every-contact
// payload: a node's hello bytes depend only on its identity, so each
// node encodes them once and each server decodes each distinct
// registration once.
var helloWire = struct {
	sync.Mutex
	enc map[string][]byte // node ID -> encoded Hello payload
	dec map[string]string // payload bytes -> node ID
}{
	enc: make(map[string][]byte),
	dec: make(map[string]string),
}

// helloEnvelope builds a node's MsgHello envelope through the encode
// cache.
func helloEnvelope(nodeID string) (Envelope, error) {
	helloWire.Lock()
	payload, ok := helloWire.enc[nodeID]
	helloWire.Unlock()
	if ok {
		return Envelope{Kind: MsgHello, Payload: payload}, nil
	}
	payload, err := encodePayload(Hello{NodeID: nodeID})
	if err != nil {
		return Envelope{}, fmt.Errorf("community: encode %v: %w", MsgHello, err)
	}
	helloWire.Lock()
	if len(helloWire.enc) >= helloCacheLimit {
		helloWire.enc = make(map[string][]byte)
	}
	helloWire.enc[nodeID] = payload
	helloWire.Unlock()
	return Envelope{Kind: MsgHello, Payload: payload}, nil
}

// decodeHello extracts the registering node's identity through the
// decode cache.
func decodeHello(payload []byte) (string, error) {
	key := string(payload)
	helloWire.Lock()
	id, ok := helloWire.dec[key]
	helloWire.Unlock()
	if ok {
		return id, nil
	}
	var h Hello
	if err := decodePayload(payload, &h); err != nil {
		return "", err
	}
	helloWire.Lock()
	if len(helloWire.dec) >= helloCacheLimit {
		helloWire.dec = make(map[string]string)
	}
	helloWire.dec[key] = h.NodeID
	helloWire.Unlock()
	return h.NodeID, nil
}

// directivesEnvelope is NewEnvelope(MsgDirectives, d) through the
// encode cache.
func directivesEnvelope(d Directives) (Envelope, error) {
	key := dirKey(&d)
	dirWire.Lock()
	payload, ok := dirWire.enc[key]
	dirWire.Unlock()
	if ok {
		return Envelope{Kind: MsgDirectives, Payload: payload}, nil
	}
	payload, err := encodePayload(d)
	if err != nil {
		return Envelope{}, fmt.Errorf("community: encode %v: %w", MsgDirectives, err)
	}
	dirWire.Lock()
	if len(dirWire.enc) >= dirCacheLimit {
		dirWire.enc = make(map[string][]byte)
	}
	dirWire.enc[key] = payload
	dirWire.Unlock()
	return Envelope{Kind: MsgDirectives, Payload: payload}, nil
}

// decodeDirectives is decodePayload(payload, &d) through the decode
// cache.
func decodeDirectives(payload []byte) (Directives, error) {
	key := string(payload)
	dirWire.Lock()
	d, ok := dirWire.dec[key]
	dirWire.Unlock()
	if ok {
		return cloneDirectives(d), nil
	}
	if err := decodePayload(payload, &d); err != nil {
		return Directives{}, err
	}
	dirWire.Lock()
	if len(dirWire.dec) >= dirCacheLimit {
		dirWire.dec = make(map[string]Directives)
	}
	dirWire.dec[key] = cloneDirectives(d)
	dirWire.Unlock()
	return d, nil
}
