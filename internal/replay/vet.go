package replay

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/vm"
)

// Vet replays the recording exactly as sealed — same image, input, monitor
// set, and deployed patches, no extras — and checks that the reproduced run
// matches the recording's claimed outcome bit for bit: outcome kind, exit
// code, step count, and (for failing runs) the failure location and the
// monitor that fired.
//
// The machine is deterministic, so for an honestly captured recording the
// replay cannot diverge; any mismatch means the claim was fabricated or the
// recording was altered after sealing. This is the community's report-vetting
// primitive (the §5 discussion's "attacker submits a report designed to
// cause ClearView to install a patch that intentionally damages the
// application"): a manager vets foreign recordings on its farm before
// letting them drive the checking or evaluation phases, and quarantines the
// sender on a mismatch. The farm's Deadline applies, so a recording crafted
// to stall the vetter is rejected rather than waited on.
func (f *Farm) Vet(rec *Recording) error {
	run := func() error {
		res, err := rec.Replay(nil, "")
		if err != nil {
			return fmt.Errorf("replay: vet: %w", err)
		}
		return diffClaim(rec, res)
	}
	if f.Deadline <= 0 {
		return run()
	}
	ch := make(chan error, 1)
	go func() { ch <- run() }()
	select {
	case err := <-ch:
		return err
	case <-time.After(f.Deadline):
		return fmt.Errorf("replay: vet: deadline exceeded")
	}
}

// VetAll vets every recording concurrently on the farm's worker pool and
// returns one verdict per recording, in input order (nil = the claim
// reproduced).
func (f *Farm) VetAll(recs []*Recording) []error {
	errs := make([]error, len(recs))
	if len(recs) == 0 {
		return errs
	}
	workers := f.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(recs) {
		workers = len(recs)
	}
	jobs := make(chan int)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := range jobs {
				errs[i] = f.Vet(recs[i])
			}
		}()
	}
	for i := range recs {
		jobs <- i
	}
	close(jobs)
	for w := 0; w < workers; w++ {
		<-done
	}
	return errs
}

// diffClaim compares a reproduced run against the recording's claims.
func diffClaim(rec *Recording, res vm.RunResult) error {
	if res.Outcome != rec.Outcome {
		return fmt.Errorf("replay: vet: claimed outcome %v, reproduced %v", rec.Outcome, res.Outcome)
	}
	if res.ExitCode != rec.ExitCode {
		return fmt.Errorf("replay: vet: claimed exit code %d, reproduced %d", rec.ExitCode, res.ExitCode)
	}
	if res.Steps != rec.Steps {
		return fmt.Errorf("replay: vet: claimed %d steps, reproduced %d", rec.Steps, res.Steps)
	}
	switch {
	case rec.Failure == nil && res.Failure != nil:
		return fmt.Errorf("replay: vet: claimed clean run, reproduced failure at %#x", res.Failure.PC)
	case rec.Failure != nil && res.Failure == nil:
		return fmt.Errorf("replay: vet: claimed failure at %#x, reproduced none", rec.Failure.PC)
	case rec.Failure != nil:
		if res.Failure.PC != rec.Failure.PC {
			return fmt.Errorf("replay: vet: claimed failure at %#x, reproduced at %#x",
				rec.Failure.PC, res.Failure.PC)
		}
		if res.Failure.Monitor != rec.Failure.Monitor {
			return fmt.Errorf("replay: vet: claimed monitor %s, reproduced %s",
				rec.Failure.Monitor, res.Failure.Monitor)
		}
	}
	return nil
}
