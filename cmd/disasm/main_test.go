package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/webapp"
)

var update = flag.Bool("update", false, "rewrite golden files")

// normalize strips addresses out of the rendered output so the golden
// files capture structure (label names, mnemonics, operand shapes), not
// the exact layout of the current webapp build.
func normalize(lines []string) string {
	hexCol := regexp.MustCompile(`^[0-9a-f]{8}  `)
	hexLit := regexp.MustCompile(`0x[0-9a-fA-F]+`)
	out := make([]string, len(lines))
	for i, line := range lines {
		line = hexCol.ReplaceAllString(line, "ADDR  ")
		line = hexLit.ReplaceAllString(line, "0xADDR")
		out[i] = line
	}
	return strings.Join(out, "\n") + "\n"
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("output differs from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

func TestDescribeLabelsGolden(t *testing.T) {
	app := webapp.MustBuild()
	lines, err := describe(app, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != len(app.Labels) {
		t.Fatalf("listed %d labels, app has %d", len(lines), len(app.Labels))
	}
	checkGolden(t, "labels.golden", normalize(lines))
}

func TestDescribeAddressGolden(t *testing.T) {
	app := webapp.MustBuild()
	// The defect site of exploit 290162: a stable, meaningful address to
	// disassemble around, referenced by name so layout drift cannot move
	// the golden's anchor.
	site, ok := app.Labels["site_290162"]
	if !ok {
		t.Fatal("webapp has no site_290162 label")
	}
	lines, err := describe(app, fmt.Sprintf("%#x", site))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(lines[0], "site_290162+0") {
		t.Fatalf("header does not attribute the address to its label: %q", lines[0])
	}
	checkGolden(t, "site290162.golden", normalize(lines))
}

func TestDescribeErrors(t *testing.T) {
	app := webapp.MustBuild()
	if _, err := describe(app, "zzz"); err == nil {
		t.Fatal("malformed address accepted")
	}
	if _, err := describe(app, "0x10"); err == nil {
		t.Fatal("out-of-image address accepted")
	}
}
