package vm

import "repro/internal/isa"

// superblock is a compiled hot trace: the chain of basic blocks execution
// took through a hot head, run back to back without returning to the
// dispatch loop between them. The per-step work of the generic interpreter
// is hoisted to logical-block entry:
//
//   - the step/hang budget is checked once per block, not per instruction
//     (a block whose remaining budget cannot cover it falls back to the
//     per-step loop, so the limit still interrupts at the exact step);
//   - the decoded instruction stream is consulted directly — no code-cache
//     probe, no successor-link lookup between fused blocks;
//   - hot opcodes execute inline against a register file cached in a local,
//     skipping the generic exec switch and its context bookkeeping.
//
// Side exits keep the trace honest: before each logical block the executor
// re-checks the cache generation (a patch-point apply/remove bumps it, so
// the very next logical block re-enters dispatch and picks up the new
// hooks) and that execution still follows the recorded path. A side exit
// returns the pc *before* recording that block's coverage edge — the
// dispatch loop records it — so coverage fingerprints are bit-identical
// with the trace tier on or off.
type superblock struct {
	gen    uint64 // cache generation the trace was recorded under
	blocks []*Block
	// loop marks a trace whose recording closed back at its head: the
	// executor iterates the chain in place (re-running the logical-entry
	// checks, including the head's coverage edge, each pass) instead of
	// side-exiting to dispatch after every pass.
	loop bool
}

// regMask reduces a 4-bit register nibble to a register-file index. The
// fused sweeps apply it only to operands fuseSafe proved in range, so the
// mask is the identity — it exists to let the compiler drop the
// register-file bounds check on the hottest loads and stores.
const regMask = isa.NumRegs - 1

// fuseSafe reports whether the fused sweeps may execute the instruction's
// inlined form: every register operand the inlined case dereferences must
// be a real register. Out-of-range operands (possible in hand-crafted
// images: the nibble encoding admits 0..15, the file has NumRegs) keep
// the generic interpreter's exact failure behavior by disqualifying the
// whole block from fusion. Opcodes the sweep routes through exec anyway
// are always safe.
func fuseSafe(in *isa.Inst) bool {
	switch in.Op {
	case isa.MOVRI, isa.ADDRI, isa.SUBRI, isa.MULRI, isa.ANDRI, isa.ORRI,
		isa.XORRI, isa.SHLRI, isa.SHRRI, isa.SARRI, isa.SEXTB, isa.CMPRI:
		return in.A < isa.NumRegs
	case isa.MOVRR, isa.ADDRR, isa.SUBRR, isa.MULRR, isa.ANDRR, isa.ORRR,
		isa.XORRR, isa.CMPRR:
		return in.A < isa.NumRegs && in.B < isa.NumRegs
	case isa.LEA, isa.LOAD, isa.LOADB, isa.STORE, isa.STOREB:
		return in.A < isa.NumRegs && in.B < isa.NumRegs
	}
	return true
}

// runSuperblock executes the trace starting at its head. The head block's
// dispatch bookkeeping (hang check, coverage edge, generation guard) was
// already performed by Run; interior blocks get the identical bookkeeping
// here. Returns the successor pc on a side exit or trace fall-through, or
// the final result when the run terminated inside the trace.
//
// The common case — an unhooked block whose step cost fits the remaining
// budget — runs as an inline fused sweep: the register file and step
// counter live in locals that persist across the fused blocks of the
// trace, hot opcodes execute without the generic exec switch, and CPU.PC
// is materialized only where observable (faults, exec fallbacks,
// terminators). Every path that calls out to code that can observe
// v.steps flushes the local counter first and reloads it after.
func (v *VM) runSuperblock(sb *superblock) (uint32, RunResult, bool) {
	blocks := sb.blocks
	regs := &v.CPU.Regs
	vmem := v.Mem
	maxSteps := v.maxSteps
	pc := blocks[0].Start
	entry := true // head entry: Run already did the dispatch bookkeeping
	steps := v.steps
	for {
	blockLoop:
		for _, b := range blocks {
			if !entry {
				if sb.gen != v.cacheGen {
					v.steps = steps
					return pc, RunResult{}, false // side exit: patch point invalidated the trace
				}
				if b.Start != pc {
					v.steps = steps
					return pc, RunResult{}, false // side exit: path diverged from the recording
				}
				if v.hangBudget != 0 && steps >= v.hangBudget {
					v.steps = steps
					f := v.hangFail(pc, steps)
					if f.Stack == nil {
						f.Stack = v.snapshotStack()
					}
					return 0, v.result(OutcomeFailure, 0, f, nil), true
				}
				if v.cov != nil {
					v.cov.hit(v.lastBlock, pc)
					v.lastBlock = pc
				}
			}
			entry = false
			insts := b.Insts
			if b.hasHooks || v.snapSink != nil || b.noFuse || steps+uint64(len(insts)) > maxSteps {
				// Instrumented, snapshot-capturing, variable-step (COPYB),
				// or the budget may expire mid-block: the per-step loops
				// preserve exact hook and limit semantics.
				v.steps = steps
				var npc uint32
				var res RunResult
				var done bool
				if b.hasHooks || v.snapSink != nil {
					if v.snapSink == nil && !b.noFuse && steps+uint64(len(insts)) <= maxSteps {
						npc, res, done = v.execBlockFusedHooked(b)
					} else {
						npc, res, done = v.execBlockHooked(b)
					}
				} else {
					npc, res, done = v.execBlockFast(b)
				}
				if done {
					return 0, res, true
				}
				pc = npc
				steps = v.steps
				continue blockLoop
			}
			for i := range insts {
				in := &insts[i]
				steps++
				switch in.Op {
				case isa.NOP:
				case isa.MOVRI:
					regs[in.A&regMask] = uint32(in.Imm)
				case isa.MOVRR:
					regs[in.A&regMask] = regs[in.B&regMask]
				case isa.ADDRR:
					regs[in.A&regMask] += regs[in.B&regMask]
				case isa.ADDRI:
					regs[in.A&regMask] += uint32(in.Imm)
				case isa.SUBRR:
					regs[in.A&regMask] -= regs[in.B&regMask]
				case isa.SUBRI:
					regs[in.A&regMask] -= uint32(in.Imm)
				case isa.MULRR:
					regs[in.A&regMask] *= regs[in.B&regMask]
				case isa.MULRI:
					regs[in.A&regMask] *= uint32(in.Imm)
				case isa.ANDRR:
					regs[in.A&regMask] &= regs[in.B&regMask]
				case isa.ANDRI:
					regs[in.A&regMask] &= uint32(in.Imm)
				case isa.ORRR:
					regs[in.A&regMask] |= regs[in.B&regMask]
				case isa.ORRI:
					regs[in.A&regMask] |= uint32(in.Imm)
				case isa.XORRR:
					regs[in.A&regMask] ^= regs[in.B&regMask]
				case isa.XORRI:
					regs[in.A&regMask] ^= uint32(in.Imm)
				case isa.SHLRI:
					regs[in.A&regMask] <<= uint32(in.Imm) & 31
				case isa.SHRRI:
					regs[in.A&regMask] >>= uint32(in.Imm) & 31
				case isa.SARRI:
					regs[in.A&regMask] = uint32(int32(regs[in.A&regMask]) >> (uint32(in.Imm) & 31))
				case isa.SEXTB:
					regs[in.A&regMask] = uint32(int32(int8(regs[in.A&regMask])))
				case isa.CMPRR:
					v.setCmpFlags(regs[in.A&regMask], regs[in.B&regMask])
				case isa.CMPRI:
					v.setCmpFlags(regs[in.A&regMask], uint32(in.Imm))
				case isa.LEA:
					a := regs[in.B&regMask] + uint32(in.Imm)
					if in.X.Valid() {
						a += regs[in.X&regMask] << in.Scale
					}
					regs[in.A&regMask] = a
				case isa.LOAD:
					a := regs[in.B&regMask] + uint32(in.Imm)
					if in.X.Valid() {
						a += regs[in.X&regMask] << in.Scale
					}
					val, err := vmem.Read32(a)
					if err != nil {
						v.steps = steps
						return v.fusedFault(b, i, err)
					}
					regs[in.A&regMask] = val
				case isa.LOADB:
					a := regs[in.B&regMask] + uint32(in.Imm)
					if in.X.Valid() {
						a += regs[in.X&regMask] << in.Scale
					}
					val, err := vmem.Read8(a)
					if err != nil {
						v.steps = steps
						return v.fusedFault(b, i, err)
					}
					regs[in.A&regMask] = uint32(val)
				case isa.STORE:
					a := regs[in.B&regMask] + uint32(in.Imm)
					if in.X.Valid() {
						a += regs[in.X&regMask] << in.Scale
					}
					if err := vmem.Write32(a, regs[in.A&regMask]); err != nil {
						v.steps = steps
						return v.fusedFault(b, i, err)
					}
				case isa.STOREB:
					a := regs[in.B&regMask] + uint32(in.Imm)
					if in.X.Valid() {
						a += regs[in.X&regMask] << in.Scale
					}
					if err := vmem.Write8(a, byte(regs[in.A&regMask])); err != nil {
						v.steps = steps
						return v.fusedFault(b, i, err)
					}
				case isa.JMP:
					addr := b.Addrs[i]
					v.CPU.PC = addr
					pc = addr + isa.InstSize + uint32(in.Imm)
					continue blockLoop
				case isa.JE, isa.JNE, isa.JL, isa.JLE, isa.JG, isa.JGE,
					isa.JB, isa.JBE, isa.JA, isa.JAE:
					// Conditional terminator with the flag test inlined
					// (condHolds is beyond the inliner's budget).
					addr := b.Addrs[i]
					v.CPU.PC = addr
					next := addr + isa.InstSize
					f := v.CPU.Flags
					var take bool
					switch in.Op {
					case isa.JE:
						take = f.Z
					case isa.JNE:
						take = !f.Z
					case isa.JL:
						take = f.S != f.O
					case isa.JLE:
						take = f.Z || f.S != f.O
					case isa.JG:
						take = !f.Z && f.S == f.O
					case isa.JGE:
						take = f.S == f.O
					case isa.JB:
						take = f.C
					case isa.JBE:
						take = f.C || f.Z
					case isa.JA:
						take = !f.C && !f.Z
					case isa.JAE:
						take = !f.C
					}
					if take {
						pc = next + uint32(in.Imm)
					} else {
						pc = next
					}
					continue blockLoop
				default:
					addr := b.Addrs[i]
					v.CPU.PC = addr
					if in.Op.IsCondBranch() {
						next := addr + isa.InstSize
						if v.condHolds(in.Op) {
							pc = next + uint32(in.Imm)
						} else {
							pc = next
						}
						continue blockLoop
					}
					// Cold opcode or non-branch terminator: full
					// interpreter semantics for this one instruction.
					v.steps = steps
					v.fastCtx.PC = addr
					v.fastCtx.Inst = *in
					next, err := v.exec(*in, addr, &v.fastCtx)
					if err != nil {
						target, res, done := v.finishExec(addr, err)
						if done {
							return 0, res, true
						}
						pc = target
						continue blockLoop
					}
					if in.Op.EndsBlock() {
						if v.intr != intrNone {
							return 0, v.serviceInterrupt(), true
						}
						pc = next
						continue blockLoop
					}
				}
			}
			// decodeBlock guarantees a terminator; fall through defensively.
			pc = b.Start + uint32(len(insts))*isa.InstSize
		}
		if !sb.loop {
			v.steps = steps
			return pc, RunResult{}, false
		}
		// Loop trace: iterate in place. The head's logical-entry checks
		// (generation, divergence, hang, coverage) run at the top of the
		// next pass exactly as dispatch would run them.
	}
}

// fusedFault materializes the faulting instruction's PC (the fused loop
// skips the per-instruction PC write) and routes the fault through the
// shared termination/exception-dispatch logic.
func (v *VM) fusedFault(b *Block, i int, err error) (uint32, RunResult, bool) {
	addr := b.Addrs[i]
	v.CPU.PC = addr
	target, res, done := v.finishExec(addr, err)
	if done {
		return 0, res, true
	}
	return target, RunResult{}, false
}

// execBlockFusedHooked runs one hooked basic block inside a superblock:
// the caller has discharged the step budget for the whole block and
// guaranteed no snapshot sink, so the per-instruction work is the hook
// chain plus inlined hot opcodes — the generic exec call survives only
// for cold opcodes and non-branch terminators. Unlike the unhooked fused
// sweep, CPU.PC and v.steps stay live per instruction: hooks observe both
// through ctx.VM.
func (v *VM) execBlockFusedHooked(b *Block) (uint32, RunResult, bool) {
	ctx := &v.hookCtx
	regs := &v.CPU.Regs
	insts := b.Insts
	for i := range insts {
		addr := b.Addrs[i]
		in := insts[i]
		v.CPU.PC = addr
		v.steps++
		ctx.reset(addr, in)
		if b.hooks != nil {
			for _, he := range b.hooks[i] {
				v.hookRuns++
				if err := he.h(ctx); err != nil {
					if f, ok := err.(*Failure); ok {
						if f.Stack == nil {
							f.Stack = v.snapshotStack()
						}
						return 0, v.result(OutcomeFailure, 0, f, nil), true
					}
					return 0, v.result(OutcomeCrash, 0, nil, &Crash{PC: addr, Reason: err.Error()}), true
				}
				// A hook that diverts or suppresses the instruction
				// replaces it entirely (see execBlockHooked).
				if ctx.hasJump || ctx.skip {
					break
				}
			}
			if ctx.hasJump {
				return ctx.jumpTo, RunResult{}, false
			}
			if ctx.skip {
				if in.Op.EndsBlock() {
					return addr + isa.InstSize, RunResult{}, false
				}
				continue
			}
		}
		switch in.Op {
		case isa.NOP:
		case isa.MOVRI:
			regs[in.A&regMask] = uint32(in.Imm)
		case isa.MOVRR:
			regs[in.A&regMask] = regs[in.B&regMask]
		case isa.ADDRR:
			regs[in.A&regMask] += regs[in.B&regMask]
		case isa.ADDRI:
			regs[in.A&regMask] += uint32(in.Imm)
		case isa.SUBRR:
			regs[in.A&regMask] -= regs[in.B&regMask]
		case isa.SUBRI:
			regs[in.A&regMask] -= uint32(in.Imm)
		case isa.MULRR:
			regs[in.A&regMask] *= regs[in.B&regMask]
		case isa.MULRI:
			regs[in.A&regMask] *= uint32(in.Imm)
		case isa.ANDRR:
			regs[in.A&regMask] &= regs[in.B&regMask]
		case isa.ANDRI:
			regs[in.A&regMask] &= uint32(in.Imm)
		case isa.ORRR:
			regs[in.A&regMask] |= regs[in.B&regMask]
		case isa.ORRI:
			regs[in.A&regMask] |= uint32(in.Imm)
		case isa.XORRR:
			regs[in.A&regMask] ^= regs[in.B&regMask]
		case isa.XORRI:
			regs[in.A&regMask] ^= uint32(in.Imm)
		case isa.SHLRI:
			regs[in.A&regMask] <<= uint32(in.Imm) & 31
		case isa.SHRRI:
			regs[in.A&regMask] >>= uint32(in.Imm) & 31
		case isa.SARRI:
			regs[in.A&regMask] = uint32(int32(regs[in.A&regMask]) >> (uint32(in.Imm) & 31))
		case isa.SEXTB:
			regs[in.A&regMask] = uint32(int32(int8(regs[in.A&regMask])))
		case isa.CMPRR:
			v.setCmpFlags(regs[in.A&regMask], regs[in.B&regMask])
		case isa.CMPRI:
			v.setCmpFlags(regs[in.A&regMask], uint32(in.Imm))
		case isa.LEA:
			a := regs[in.B&regMask] + uint32(in.Imm)
			if in.X.Valid() {
				a += regs[in.X&regMask] << in.Scale
			}
			regs[in.A&regMask] = a
		case isa.LOAD:
			a := regs[in.B&regMask] + uint32(in.Imm)
			if in.X.Valid() {
				a += regs[in.X&regMask] << in.Scale
			}
			val, err := v.Mem.Read32(a)
			if err != nil {
				return v.fusedFault(b, i, err)
			}
			regs[in.A&regMask] = val
		case isa.LOADB:
			a := regs[in.B&regMask] + uint32(in.Imm)
			if in.X.Valid() {
				a += regs[in.X&regMask] << in.Scale
			}
			val, err := v.Mem.Read8(a)
			if err != nil {
				return v.fusedFault(b, i, err)
			}
			regs[in.A&regMask] = uint32(val)
		case isa.STORE:
			a := regs[in.B&regMask] + uint32(in.Imm)
			if in.X.Valid() {
				a += regs[in.X&regMask] << in.Scale
			}
			if err := v.Mem.Write32(a, regs[in.A&regMask]); err != nil {
				return v.fusedFault(b, i, err)
			}
		case isa.STOREB:
			a := regs[in.B&regMask] + uint32(in.Imm)
			if in.X.Valid() {
				a += regs[in.X&regMask] << in.Scale
			}
			if err := v.Mem.Write8(a, byte(regs[in.A&regMask])); err != nil {
				return v.fusedFault(b, i, err)
			}
		case isa.JMP:
			return addr + isa.InstSize + uint32(in.Imm), RunResult{}, false
		default:
			if in.Op.IsCondBranch() {
				next := addr + isa.InstSize
				if v.condHolds(in.Op) {
					return next + uint32(in.Imm), RunResult{}, false
				}
				return next, RunResult{}, false
			}
			// Cold opcode or non-branch terminator: full interpreter
			// semantics for this one instruction, honouring any
			// disposition a hook set (indirect-target override).
			next, err := v.exec(in, addr, ctx)
			if err != nil {
				target, res, done := v.finishExec(addr, err)
				if done {
					return 0, res, true
				}
				return target, RunResult{}, false
			}
			if in.Op.EndsBlock() {
				if v.intr != intrNone {
					return 0, v.serviceInterrupt(), true
				}
				return next, RunResult{}, false
			}
		}
	}
	return b.Start + uint32(len(insts))*isa.InstSize, RunResult{}, false
}
