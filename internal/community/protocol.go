// Package community implements the application community of §3: a group of
// machines running the same application that cooperate to detect failures,
// learn invariants, and distribute patches. A central Manager (the
// Determina Management Console analog) talks to per-machine NodeManagers
// over a transport — an in-process pipe for tests and a real TCP transport
// (the production analog of the console's secure channel).
//
// Patches cross the wire as declarative PatchSpecs (the analog of the
// paper's generated-and-compiled C snippets): nodes compile the specs into
// execution-environment patches locally, apply them to running and newly
// launched instances, and stream invariant-check observations back.
package community

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/correlate"
	"repro/internal/daikon"
	"repro/internal/repair"
)

// MsgKind discriminates protocol messages.
type MsgKind uint8

const (
	// MsgHello introduces a node to the manager.
	MsgHello MsgKind = iota
	// MsgLearnUpload carries a node's locally inferred invariant DB
	// (§3.1: only invariants travel, never raw trace data).
	MsgLearnUpload
	// MsgRunReport carries one execution's outcome, failure information,
	// and invariant-check observations.
	MsgRunReport
	// MsgDirectives carries the manager's current patch set and learning
	// assignment for a node.
	MsgDirectives
	// MsgAck acknowledges a message with no payload.
	MsgAck
	// MsgRecording carries a node's deterministic recording of a failing
	// execution (replay.Recording wire form). The manager replays it to
	// fast-path invariant checking and to judge candidate repairs on its
	// replay farm instead of waiting for live recurrences at the nodes.
	MsgRecording
	// MsgBatch carries many run reports, recordings, and learning uploads
	// in one envelope. Large communities batch so manager work is
	// O(batches), not O(messages): one envelope, one directive snapshot,
	// and at most one replay-farm pass per failure location per batch —
	// however many runs the batch describes.
	MsgBatch
	// MsgDirectivesSet is the reply to an aggregated MsgBatch (one whose
	// NodeIDs list the member nodes an Aggregator speaks for): one
	// Directives snapshot per listed node, so the aggregator can serve
	// member syncs from its cache without an upstream round trip each.
	MsgDirectivesSet
)

// String names the message kind for logs and errors.
func (k MsgKind) String() string {
	switch k {
	case MsgHello:
		return "hello"
	case MsgLearnUpload:
		return "learn-upload"
	case MsgRunReport:
		return "run-report"
	case MsgDirectives:
		return "directives"
	case MsgAck:
		return "ack"
	case MsgRecording:
		return "recording"
	case MsgBatch:
		return "batch"
	case MsgDirectivesSet:
		return "directives-set"
	}
	return fmt.Sprintf("msg%d", uint8(k))
}

// Hello is a node's registration.
type Hello struct {
	NodeID string // the registering node's stable identity
}

// LearnUpload is a serialized local invariant database.
type LearnUpload struct {
	NodeID string // the uploading node
	DB     []byte // daikon.DB.Marshal output
}

// FailureInfo mirrors vm.Failure across the wire.
type FailureInfo struct {
	PC      uint32   // instruction at which the monitor fired
	Monitor string   // which monitor detected the failure
	Kind    string   // monitor-specific failure classification
	Target  uint32   // offending transfer target or write address
	Stack   []uint32 // innermost-first procedure-entry snapshot
}

// RunReport is one execution's result. Seq echoes the directive sequence
// the node ran under, so the manager can discard reports from instances
// that had not yet applied the current phase's patches.
type RunReport struct {
	NodeID       string                  // the reporting node
	Seq          uint64                  // directive sequence the run executed under
	Outcome      uint8                   // vm.Outcome
	ExitCode     uint32                  // exit status when Outcome is an exit
	Failure      *FailureInfo            // the detected failure, if any
	Observations []correlate.Observation // invariant-check observations from the run
}

// RecordingUpload ships one failing execution's recording to the manager.
// The payload is the replay.Recording wire form (rec.Marshal), kept opaque
// here so the protocol layer does not depend on the replay machinery.
type RecordingUpload struct {
	NodeID    string // the capturing node
	Recording []byte // replay.Recording wire form
}

// Batch aggregates activity since the sender's last contact: the run
// reports in execution order, the recordings of any failing runs (each a
// replay.Recording wire form), and any learning-database uploads. The
// manager decodes the whole batch up front, applies it (recording vetting
// runs off the manager lock), and replies with one Directives snapshot.
//
// A Batch is also the envelope an Aggregator compacts a whole region's
// round into: NodeIDs then lists every member node the aggregator speaks
// for (reports keep their original NodeID, recordings are deduplicated per
// failure location with RecordingFrom attributing each survivor, and the
// region's learning uploads arrive pre-merged as a single database). An
// aggregated batch is answered with MsgDirectivesSet instead of
// MsgDirectives.
type Batch struct {
	NodeID  string      // the sender: a node, or an aggregator when NodeIDs is set
	Reports []RunReport // run reports in execution order
	// Recordings are failing-run recordings (replay.Recording wire form).
	Recordings [][]byte
	// RecordingFrom, when present, is parallel to Recordings and names the
	// node that captured each one (for quarantine attribution). Absent, the
	// recordings are attributed to NodeID.
	RecordingFrom []string
	// LearnDBs are serialized invariant databases (daikon.DB.Marshal) —
	// one per member upload, or a single pre-merged region database in an
	// aggregated batch.
	LearnDBs [][]byte

	// Aggregated marks the sender as an Aggregator (every flush sets it,
	// even an empty heartbeat with no members yet), which selects the
	// MsgDirectivesSet reply shape and — when the manager provisions a
	// trusted tier — subjects the sender to the aggregator allowlist.
	Aggregated bool
	// NodeIDs lists the member nodes an aggregated batch relays for
	// (sorted). The manager registers the members (learn shards are keyed
	// by node ID, so members keep theirs wherever they re-attach) and
	// replies with one Directives per member.
	NodeIDs []string
	// Quarantined lists nodes the sending aggregator has quarantined since
	// its last flush (edge sanity checks); the manager merges them into
	// its own quarantine set.
	Quarantined []string
	// FlushSeq, when nonzero on an aggregated batch, numbers the sending
	// aggregator's flush snapshots (1, 2, ...). The manager applies each
	// snapshot at most once per sender: a re-sent or duplicated flush —
	// a resilient aggregator retrying across a lost reply, or a faulty
	// wire delivering the envelope twice — is answered with fresh
	// directives but never double-counts the region's reports. Zero (the
	// legacy wire form) disables the dedupe.
	FlushSeq uint64
}

// CheckSpec asks a node to install checking patches for one invariant.
type CheckSpec struct {
	FailureID string           // the failure case the check belongs to
	Invariant daikon.Invariant // the invariant to observe
}

// RepairSpec asks a node to install one repair patch. It carries exactly
// the fields a node needs to compile the enforcement locally.
type RepairSpec struct {
	FailureID string           // the failure case the repair targets
	Invariant daikon.Invariant // the invariant the repair enforces
	Strategy  repair.Strategy  // enforcement strategy (§2.5)
	Value     uint32           // strategy operand (e.g. the set-value constant)
	SPDelta   uint32           // stack-pointer restore for return-from-procedure
	PC        uint32           // enforcement site
	Depth     int              // call-stack depth of the enforcement site
}

// Directives is the manager's current instruction set for a node. It is
// idempotent: nodes reconcile their installed patches to match.
type Directives struct {
	Seq     uint64       // the manager's directive sequence at snapshot time
	Checks  []CheckSpec  // invariant checks to install
	Repairs []RepairSpec // repair patches to install
	// LearnLo/LearnHi restrict the node's tracing to instruction
	// addresses in [LearnLo, LearnHi) (0,0 = no learning assignment) —
	// the amortized distributed learning of §3.1.
	LearnLo uint32
	LearnHi uint32 // see LearnLo
}

// DirectivesSet is the manager's reply to an aggregated Batch: the current
// Directives snapshot of every member node the batch spoke for. Seq mirrors
// the per-node snapshots' sequence (they are taken together, under one
// lock).
type DirectivesSet struct {
	Seq    uint64                // the manager's directive sequence at snapshot time
	ByNode map[string]Directives // one snapshot per member node
}

// Envelope frames one message on the wire.
type Envelope struct {
	Kind    MsgKind // payload discriminator
	Payload []byte  // gob-encoded message of that kind
	// Token correlates a reply with its request: servers echo the request's
	// token verbatim. Resilient clients stamp each request with a fresh
	// token and discard replies carrying any other — the stray reply a
	// duplicated request produces would otherwise shift the
	// request/response framing off by one forever. Zero (the legacy wire
	// form: gob omits it) means "uncorrelated" and is matched by zero.
	Token uint64
}

func encodePayload(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodePayload(b []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(b)).Decode(v)
}

// NewEnvelope builds an envelope for a payload value.
func NewEnvelope(kind MsgKind, v any) (Envelope, error) {
	p, err := encodePayload(v)
	if err != nil {
		return Envelope{}, fmt.Errorf("community: encode %v: %w", kind, err)
	}
	return Envelope{Kind: kind, Payload: p}, nil
}
