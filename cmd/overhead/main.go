// Command overhead regenerates the performance measurements of §4.4:
// Table 2 (page-load overhead under the monitor configurations) and the
// §4.4.1 learning overhead.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/redteam"
	"repro/internal/webapp"
)

func main() {
	repeats := flag.Int("repeats", 5, "workload repetitions per configuration")
	learning := flag.Bool("learning", false, "measure §4.4.1 learning overhead instead of Table 2")
	flag.Parse()

	if *learning {
		app, err := webapp.Build()
		if err != nil {
			fmt.Fprintln(os.Stderr, "overhead:", err)
			os.Exit(1)
		}
		lo, err := redteam.MeasureLearningOverhead(app, *repeats)
		if err != nil {
			fmt.Fprintln(os.Stderr, "overhead:", err)
			os.Exit(1)
		}
		fmt.Println("§4.4.1 learning overhead (twelve-page corpus):")
		fmt.Printf("  without learning: %v\n", lo.BareWall)
		fmt.Printf("  with learning:    %v (%.1fx)\n", lo.LearnWall, lo.Ratio)
		fmt.Printf("  trace entries:    %d\n", lo.Observations)
		fmt.Printf("  invariants:       %d\n", lo.Invariants)
		return
	}

	setup, err := redteam.NewSetup(false)
	if err != nil {
		fmt.Fprintln(os.Stderr, "overhead:", err)
		os.Exit(1)
	}
	rows, err := redteam.MeasureOverheadWithPatch(setup, *repeats)
	if err != nil {
		fmt.Fprintln(os.Stderr, "overhead:", err)
		os.Exit(1)
	}
	fmt.Println("Table 2: page-load cost of the 57 evaluation pages per configuration")
	fmt.Println("(unmonitored = bare; monitored = monitor rows; patched = last row;")
	fmt.Println(" the trace-JIT-off row prices the superblock tier against the per-step interpreter)")
	redteam.PrintTable2(os.Stdout, rows)
}
