package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// normalize strips hex addresses out of the narration so the goldens pin
// structure — presentation outcomes, case states, candidate/correlation/
// repair listings — rather than the exact layout of the current webapp
// build (the cmd/disasm pattern).
func normalize(s string) string {
	return regexp.MustCompile(`0x[0-9a-fA-F]+`).ReplaceAllString(s, "0xADDR")
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("output differs from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestAttackLogGolden pins the full campaign narration for one paper
// exploit and one extended-class exploit per new detector family: the
// presentation-by-presentation outcomes, the candidate and correlation
// listings, and the adopted repair, with addresses normalized away.
func TestAttackLogGolden(t *testing.T) {
	for _, id := range []string{"290162", "div-zero", "unaligned", "hang-loop"} {
		id := id
		t.Run(id, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(&buf, id); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, id+".golden", normalize(buf.String()))
		})
	}
}

func TestAttackLogUnknownExploit(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "999999"); err == nil {
		t.Fatal("unknown exploit id accepted")
	}
}
