// Command perfvc is the repo's performance version system (Perun-style):
// it records per-PR benchmark profiles with repeated samples and honest
// error bars, compares them with noise-aware verdicts, and gates CI on
// regression.
//
//	perfvc record -pr 8 -title "..." -out BENCH_pr8.json   full suite, 5 samples
//	perfvc compare -baseline BENCH_pr7.json -candidate new.json
//	perfvc ci                                              short samples vs latest BENCH_pr*.json
//
// `record` runs the canonical suite (internal/perfvc's registry: the
// root paper tables, internal/vm dispatch, internal/mem, and the
// community soak arm) with -count samples per benchmark and writes a
// BENCH_prN.json carrying the established meta block (pr, date, cpu, go
// version, regenerate commands) and per-benchmark median/min/max.
//
// `compare` classifies every benchmark of two profiles as regression /
// improvement / within-noise / new / removed: a change only leaves the
// noise when the candidate median exits the baseline's [min, max] band
// by more than max(class tolerance × baseline median, the baseline's own
// min–max spread). Exit status 1 on any regression.
//
// `ci` runs the suite at short CI benchtimes, compares against the
// latest committed BENCH_pr*.json with a generous tolerance floor (the
// shared single-core runner), prints the ranked verdict table, and exits
// nonzero naming the offending benchmarks on regression. -candidate
// skips the run and gates a pre-recorded profile instead.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/perfvc"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: perfvc {record|compare|ci} [flags]")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = runRecord(parseRecordFlags(os.Args[2:]))
	case "compare":
		err = runCompare(parseCompareFlags(os.Args[2:]), os.Stdout)
	case "ci":
		err = runCI(parseCIFlags(os.Args[2:]), os.Stdout)
	default:
		err = fmt.Errorf("unknown subcommand %q (want record, compare, or ci)", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfvc:", err)
		os.Exit(1)
	}
}

// recordFlags carries the `perfvc record` command line.
type recordFlags struct {
	pr          int
	title, note string
	out, dir    string
	count       int
}

func parseRecordFlags(args []string) recordFlags {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	f := recordFlags{}
	fs.IntVar(&f.pr, "pr", 0, "PR number the profile is the baseline for (required)")
	fs.StringVar(&f.title, "title", "", "one-line description of the PR")
	fs.StringVar(&f.note, "note", "", "methodology caveats for the meta block")
	fs.StringVar(&f.out, "out", "", "output path (default BENCH_pr<pr>.json)")
	fs.StringVar(&f.dir, "dir", ".", "repo root to run the suite in")
	fs.IntVar(&f.count, "count", 5, "samples per benchmark (>= 3 for a committed baseline)")
	fs.Parse(args)
	return f
}

// runRecord runs the full suite and writes the profile.
func runRecord(f recordFlags) error {
	if f.pr <= 0 {
		return fmt.Errorf("record: -pr is required")
	}
	if f.out == "" {
		f.out = fmt.Sprintf("BENCH_pr%d.json", f.pr)
	}
	runner := &perfvc.Runner{Dir: f.dir, Count: f.count, Log: os.Stderr}
	profile, commands, err := runner.Run(perfvc.Registry())
	if err != nil {
		return err
	}
	profile.Meta.PR = f.pr
	profile.Meta.Title = f.title
	profile.Meta.Note = f.note
	profile.Meta.Date = time.Now().UTC().Format("2006-01-02")
	profile.Meta.Go = runtime.Version()
	if profile.Meta.CPU == "" {
		profile.Meta.CPU = "unknown"
	}
	profile.Meta.Regenerate = append(
		[]string{fmt.Sprintf("go run ./cmd/perfvc record -pr %d -count %d -out %s", f.pr, f.count, f.out)},
		commands...)
	if err := profile.Validate(3); err != nil {
		return fmt.Errorf("recorded profile fails the baseline contract: %w", err)
	}
	if err := perfvc.Save(f.out, profile); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "perfvc: wrote %s (%d benchmarks, %d samples each)\n",
		f.out, len(profile.Benchmarks), f.count)
	return nil
}

// compareFlags carries the `perfvc compare` command line.
type compareFlags struct {
	baseline, candidate string
	floor               float64
}

func parseCompareFlags(args []string) compareFlags {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	f := compareFlags{}
	fs.StringVar(&f.baseline, "baseline", "", "baseline profile (required)")
	fs.StringVar(&f.candidate, "candidate", "", "candidate profile (required)")
	fs.Float64Var(&f.floor, "tolerance-floor", 0, "raise every class tolerance to at least this")
	fs.Parse(args)
	return f
}

// runCompare gates one recorded profile against another.
func runCompare(f compareFlags, w io.Writer) error {
	if f.baseline == "" || f.candidate == "" {
		return fmt.Errorf("compare: -baseline and -candidate are required")
	}
	base, err := perfvc.Load(f.baseline)
	if err != nil {
		return err
	}
	cand, err := perfvc.Load(f.candidate)
	if err != nil {
		return err
	}
	rep := perfvc.Compare(base, cand, perfvc.Options{ToleranceFloor: f.floor})
	fmt.Fprintf(w, "baseline %s (pr %d) vs candidate %s\n\n", f.baseline, base.Meta.PR, f.candidate)
	fmt.Fprint(w, rep.Table())
	return rep.Err()
}

// ciFlags carries the `perfvc ci` command line.
type ciFlags struct {
	dir          string
	baseline     string
	candidate    string
	candidateOut string
	count        int
	floor        float64
}

func parseCIFlags(args []string) ciFlags {
	fs := flag.NewFlagSet("ci", flag.ExitOnError)
	f := ciFlags{}
	fs.StringVar(&f.dir, "dir", ".", "repo root holding the committed BENCH_pr*.json lineage")
	fs.StringVar(&f.baseline, "baseline", "", "baseline profile (default: latest committed BENCH_pr*.json)")
	fs.StringVar(&f.candidate, "candidate", "", "pre-recorded candidate profile (default: run the CI suite)")
	fs.StringVar(&f.candidateOut, "candidate-out", "", "write the candidate profile here (CI uploads it on failure)")
	fs.IntVar(&f.count, "count", 2, "samples per benchmark for the CI run")
	fs.Float64Var(&f.floor, "tolerance-floor", 0.75, "generous tolerance for the shared 1-core CI runner")
	fs.Parse(args)
	return f
}

// runCI is the CI gate: fresh short-sample run (or -candidate) against
// the latest committed baseline; nonzero on regression.
func runCI(f ciFlags, w io.Writer) error {
	var base *perfvc.Profile
	var basePath string
	var err error
	if f.baseline != "" {
		basePath = f.baseline
		base, err = perfvc.Load(basePath)
	} else {
		base, basePath, err = perfvc.LatestBaseline(f.dir)
	}
	if err != nil {
		return err
	}
	suite := perfvc.Registry()
	var cand *perfvc.Profile
	if f.candidate != "" {
		cand, err = perfvc.Load(f.candidate)
		if err != nil {
			return err
		}
	} else {
		runner := &perfvc.Runner{Dir: f.dir, Count: f.count, CI: true, Log: os.Stderr}
		cand, _, err = runner.Run(suite)
		if err != nil {
			return err
		}
		cand.Meta.PR = base.Meta.PR
		cand.Meta.Title = "ci candidate"
		cand.Meta.Date = time.Now().UTC().Format("2006-01-02")
		cand.Meta.Go = runtime.Version()
		cand.Meta.Regenerate = []string{"go run ./cmd/perfvc ci"}
		if cand.Meta.CPU == "" {
			cand.Meta.CPU = "unknown"
		}
	}
	if f.candidateOut != "" {
		if err := perfvc.Save(f.candidateOut, cand); err != nil {
			return err
		}
	}
	rep := perfvc.Compare(base, cand, perfvc.Options{
		ToleranceFloor: f.floor,
		Scope:          suite.Scope(),
	})
	fmt.Fprintf(w, "perfvc ci: baseline %s (pr %d), tolerance floor %.0f%%\n\n",
		basePath, base.Meta.PR, 100*f.floor)
	fmt.Fprint(w, rep.Table())
	return rep.Err()
}
