package redteam

import (
	"testing"

	"repro/internal/core"
	"repro/internal/vm"
)

// setups are expensive (a full learning run); share them per test binary.
var (
	defaultSetup  *Setup
	expandedSetup *Setup
)

func getSetup(t *testing.T, expanded bool) *Setup {
	t.Helper()
	ptr := &defaultSetup
	if expanded {
		ptr = &expandedSetup
	}
	if *ptr == nil {
		s, err := NewSetup(expanded)
		if err != nil {
			t.Fatal(err)
		}
		*ptr = s
	}
	return *ptr
}

func exploitByID(t *testing.T, id string) Exploit {
	t.Helper()
	for _, ex := range AllExploits() {
		if ex.Bugzilla == id {
			return ex
		}
	}
	t.Fatalf("unknown exploit %s", id)
	return Exploit{}
}

// expectedPresentations is Table 1 (the starred rows measured under their
// §4.3.2 reconfiguration).
//
// 311710: the paper reports 12 (three strictly sequential 4-presentation
// sub-campaigns). Our pipeline takes 10 because the presentation in which
// defect k's repair first succeeds is also the presentation in which
// defect k+1 is first detected — the sub-campaigns overlap by one
// presentation at each boundary (4 + 3 + 3). See EXPERIMENTS.md.
var expectedPresentations = map[string]int{
	"269095": 6,
	"285595": 4, // with StackScope 2
	"290162": 4,
	"295854": 5,
	"296134": 4,
	"311710": 10, // paper: 12; see note above
	"312278": 4,
	"320182": 6,
	"325403": 4, // with the expanded corpus
	// Extended failure classes (not in the paper): each follows the
	// minimum-presentations arithmetic — detect, two checking runs, and a
	// first-ranked repair that works.
	"div-zero":  4,
	"unaligned": 4,
	"hang-loop": 4,
}

func runExploit(t *testing.T, id string) AttackResult {
	t.Helper()
	ex := exploitByID(t, id)
	setup := getSetup(t, ex.NeedsExpandedCorpus)
	cv, err := setup.ClearView(ex.NeedsStackScope)
	if err != nil {
		t.Fatal(err)
	}
	return RunSingleVariant(cv, setup.App, ex, 20)
}

func TestTable1Presentations(t *testing.T) {
	for id, want := range expectedPresentations {
		id, want := id, want
		t.Run(id, func(t *testing.T) {
			res := runExploit(t, id)
			if !res.Patched {
				t.Fatalf("%s: never patched (%d presentations, %d unsuccessful)",
					id, res.Presentations, res.Unsuccessful)
			}
			if res.Presentations != want {
				t.Errorf("%s: %d presentations, want %d", id, res.Presentations, want)
			}
		})
	}
}

func Test307259NeverPatched(t *testing.T) {
	// The soft-hyphen defect needs an invariant outside Daikon's grammar:
	// ClearView evaluates the correlated-but-unhelpful repairs, discards
	// them all, and the attack stays blocked but unrepaired (§4.3.2).
	setup := getSetup(t, false)
	cv, err := setup.ClearView(1)
	if err != nil {
		t.Fatal(err)
	}
	ex := exploitByID(t, "307259")
	res := RunSingleVariant(cv, setup.App, ex, 15)
	if res.Patched {
		t.Fatalf("307259 patched after %d presentations — the invariant grammar should not cover it", res.Presentations)
	}
	fc := cv.Case(setup.App.Labels["site_307259_store"])
	if fc == nil {
		t.Fatal("no failure case opened")
	}
	if fc.State != core.StateUnrepaired {
		t.Errorf("state = %v, want unrepaired", fc.State)
	}
	if fc.Metrics.Unsuccessful == 0 {
		t.Error("expected some unsuccessful repair runs (the paper saw 7)")
	}
	// Every presentation was still blocked by a monitor.
	if !res.Blocked {
		t.Error("attack not blocked")
	}
}

func Test285595RequiresWiderStackScope(t *testing.T) {
	// Under the Red Team configuration (scope 1) the relevant invariant
	// sits one procedure above the lowest procedure with invariants, so
	// no patch emerges; widening the scope fixes it (§4.3.2).
	setup := getSetup(t, false)
	ex := exploitByID(t, "285595")

	cv1, err := setup.ClearView(1)
	if err != nil {
		t.Fatal(err)
	}
	if res := RunSingleVariant(cv1, setup.App, ex, 10); res.Patched {
		t.Fatalf("patched under scope 1 after %d presentations", res.Presentations)
	}

	cv2, err := setup.ClearView(2)
	if err != nil {
		t.Fatal(err)
	}
	res := RunSingleVariant(cv2, setup.App, ex, 10)
	if !res.Patched || res.Presentations != 4 {
		t.Fatalf("scope 2: %+v, want patched in 4", res)
	}
}

func Test325403RequiresExpandedCorpus(t *testing.T) {
	ex := exploitByID(t, "325403")

	base := getSetup(t, false)
	cv1, err := base.ClearView(1)
	if err != nil {
		t.Fatal(err)
	}
	if res := RunSingleVariant(cv1, base.App, ex, 10); res.Patched {
		t.Fatalf("patched under the default corpus after %d presentations", res.Presentations)
	}

	expanded := getSetup(t, true)
	cv2, err := expanded.ClearView(1)
	if err != nil {
		t.Fatal(err)
	}
	res := RunSingleVariant(cv2, expanded.App, ex, 10)
	if !res.Patched || res.Presentations != 4 {
		t.Fatalf("expanded corpus: %+v, want patched in 4", res)
	}
}

func Test311710RepairsThreeDefectsInSequence(t *testing.T) {
	setup := getSetup(t, false)
	cv, err := setup.ClearView(1)
	if err != nil {
		t.Fatal(err)
	}
	ex := exploitByID(t, "311710")
	res := RunSingleVariant(cv, setup.App, ex, 20)
	if !res.Patched || res.Presentations != expectedPresentations["311710"] {
		t.Fatalf("res = %+v, want %d presentations", res, expectedPresentations["311710"])
	}
	// Three separate failure cases, all patched.
	if got := len(cv.Cases()); got != 3 {
		t.Fatalf("cases = %d, want 3", got)
	}
	for _, fc := range cv.Cases() {
		if fc.State != core.StatePatched {
			t.Errorf("case %s: state %v", fc.ID, fc.State)
		}
	}
}

func TestMultiVariantAttacks(t *testing.T) {
	// §4.3.4: interleaving exploit variants yields the same patch after
	// the same number of presentations as the single-variant attack.
	setup := getSetup(t, false)
	for _, id := range []string{"290162", "296134", "311710"} {
		ex := exploitByID(t, id)
		if ex.Variants < 2 {
			t.Fatalf("%s has no variants", id)
		}
		cv, err := setup.ClearView(1)
		if err != nil {
			t.Fatal(err)
		}
		res := RunMultiVariant(cv, setup.App, ex, 20)
		if !res.Patched || res.Presentations != expectedPresentations[id] {
			t.Errorf("%s variants: %+v, want %d", id, res, expectedPresentations[id])
		}
	}
}

func TestSimultaneousMultipleExploits(t *testing.T) {
	// §4.3.5: interleaved exploits against different defects do not
	// interfere; each is patched after the same cumulative number of its
	// own presentations.
	setup := getSetup(t, false)
	cv, err := setup.ClearView(1)
	if err != nil {
		t.Fatal(err)
	}
	exs := []Exploit{exploitByID(t, "290162"), exploitByID(t, "296134"), exploitByID(t, "312278")}
	results := RunSimultaneous(cv, setup.App, exs, 10)
	for _, ex := range exs {
		res := results[ex.Bugzilla]
		if !res.Patched || res.Presentations != expectedPresentations[ex.Bugzilla] {
			t.Errorf("%s: %+v, want %d presentations", ex.Bugzilla, res, expectedPresentations[ex.Bugzilla])
		}
	}
}

func TestFalsePositiveEvaluation(t *testing.T) {
	// §4.3.7: the 57 evaluation pages trigger no patch generation at all.
	setup := getSetup(t, false)
	cv, err := setup.ClearView(1)
	if err != nil {
		t.Fatal(err)
	}
	patches, cases := FalsePositives(cv)
	if patches != 0 || cases != 0 {
		t.Fatalf("false positives: %d patches, %d cases", patches, cases)
	}
}

func TestAutoimmuneEvaluation(t *testing.T) {
	// §4.3.6: after patching every repairable exploit on one instance,
	// the evaluation pages must display bit-identically to the unpatched
	// application.
	setup := getSetup(t, false)
	cv, err := setup.ClearView(2) // scope 2 so 285595 is patched too
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"269095", "285595", "290162", "295854", "296134", "311710", "312278", "320182"} {
		ex := exploitByID(t, id)
		res := RunSingleVariant(cv, setup.App, ex, 20)
		if !res.Patched {
			t.Fatalf("%s not patched during setup", id)
		}
	}
	diffs, err := Autoimmune(cv, setup.App)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Errorf("pages rendered differently under patches: %v", diffs)
	}
}

func TestPatchedInstanceSurvivesReplays(t *testing.T) {
	// An adopted patch protects immediately against replays of the attack
	// ("immune to the attack", §1.1).
	setup := getSetup(t, false)
	cv, err := setup.ClearView(1)
	if err != nil {
		t.Fatal(err)
	}
	ex := exploitByID(t, "290162")
	if res := RunSingleVariant(cv, setup.App, ex, 10); !res.Patched {
		t.Fatal("setup: not patched")
	}
	for i := 0; i < 3; i++ {
		if out := cv.Execute(AttackInput(setup.App, ex, 0)); out.Outcome != vm.OutcomeExit {
			t.Fatalf("replay %d: %+v", i, out)
		}
	}
}
