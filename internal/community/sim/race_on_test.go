//go:build race

package sim

// raceDetectorEnabled reports whether this test binary was built with
// the race detector; the 100k-node simulation is skipped there (the
// simulator is single-threaded — the small equivalence soaks provide the
// race coverage — and the detector's ~10x slowdown would dominate the
// suite).
const raceDetectorEnabled = true
