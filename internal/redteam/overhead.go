package redteam

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/daikon"
	"repro/internal/monitor"
	"repro/internal/vm"
	"repro/internal/webapp"
)

// OverheadRow is one configuration's cost in the Table 2 reproduction.
type OverheadRow struct {
	Config   string
	Wall     time.Duration
	Steps    uint64
	HookRuns uint64
	Ratio    float64 // wall time relative to the bare configuration
}

// monitorConfig names one Table 2 row's monitor set.
type monitorConfig struct {
	name        string
	firewall    bool
	heapGuard   bool
	shadowStack bool
}

// table2Configs are the five rows of Table 2 (§4.4.2).
func table2Configs() []monitorConfig {
	return []monitorConfig{
		{name: "Bare application"},
		{name: "Memory Firewall", firewall: true},
		{name: "Memory Firewall + Shadow Stack", firewall: true, shadowStack: true},
		{name: "Memory Firewall + Heap Guard", firewall: true, heapGuard: true},
		{name: "Memory Firewall + Heap Guard + Shadow Stack", firewall: true, heapGuard: true, shadowStack: true},
	}
}

func runUnderConfig(app *webapp.App, input []byte, mc monitorConfig) (vm.RunResult, error) {
	var plugins []vm.Plugin
	var shadow *monitor.ShadowStack
	if mc.shadowStack {
		shadow = monitor.NewShadowStack()
		plugins = append(plugins, shadow)
	}
	if mc.firewall {
		plugins = append(plugins, monitor.NewMemoryFirewall())
	}
	if mc.heapGuard {
		plugins = append(plugins, monitor.NewHeapGuard())
	}
	machine, err := vm.New(vm.Config{Image: app.Image, Input: input, Plugins: plugins})
	if err != nil {
		return vm.RunResult{}, err
	}
	if shadow != nil {
		shadow.Install(machine)
	}
	return machine.Run(), nil
}

// MeasureTable2 loads the 57 evaluation pages under each monitor
// configuration (the page-load workload of §4.4.2) and reports the
// relative overheads. repeats > 1 smooths wall-clock noise.
func MeasureTable2(app *webapp.App, repeats int) ([]OverheadRow, error) {
	if repeats <= 0 {
		repeats = 1
	}
	pages := EvaluationPages()
	var rows []OverheadRow
	for _, mc := range table2Configs() {
		var row OverheadRow
		row.Config = mc.name
		start := time.Now()
		for r := 0; r < repeats; r++ {
			for i, page := range pages {
				res, err := runUnderConfig(app, page, mc)
				if err != nil {
					return nil, err
				}
				if res.Outcome != vm.OutcomeExit {
					return nil, fmt.Errorf("page %d failed under %q: %v", i, mc.name, res.Outcome)
				}
				row.Steps += res.Steps
				row.HookRuns += res.HookRuns
			}
		}
		row.Wall = time.Since(start)
		rows = append(rows, row)
	}
	base := rows[0].Wall
	for i := range rows {
		rows[i].Ratio = float64(rows[i].Wall) / float64(base)
	}
	return rows, nil
}

// LearningOverhead reports the cost of running the learning corpus with
// the Daikon front end enabled versus disabled (§4.4.1: the paper measured
// a factor of ~300; the structure — instrumentation dominating run time —
// is what this reproduces).
type LearningOverhead struct {
	BareWall     time.Duration
	LearnWall    time.Duration
	Ratio        float64
	Observations uint64
	Invariants   int
}

// MeasureLearningOverhead runs the default corpus bare and under learning.
func MeasureLearningOverhead(app *webapp.App, repeats int) (LearningOverhead, error) {
	if repeats <= 0 {
		repeats = 1
	}
	corpus := LearningCorpus()
	var out LearningOverhead

	start := time.Now()
	for r := 0; r < repeats; r++ {
		machine, err := vm.New(vm.Config{Image: app.Image, Input: corpus})
		if err != nil {
			return out, err
		}
		if res := machine.Run(); res.Outcome != vm.OutcomeExit {
			return out, fmt.Errorf("bare corpus run failed: %v", res.Outcome)
		}
	}
	out.BareWall = time.Since(start)

	start = time.Now()
	var db *daikon.DB
	var stats core.LearnStats
	for r := 0; r < repeats; r++ {
		var err error
		db, stats, err = core.Learn(app.Image, core.LearnConfig{Inputs: [][]byte{corpus}})
		if err != nil {
			return out, err
		}
	}
	out.LearnWall = time.Since(start)
	out.Ratio = float64(out.LearnWall) / float64(out.BareWall)
	out.Observations = stats.Observations
	out.Invariants = db.Len()
	return out, nil
}

// PrintTable2 renders Table 2 rows.
func PrintTable2(w io.Writer, rows []OverheadRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ClearView Configuration\tTime\tRatio\tHook runs")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%d\n",
			r.Config, r.Wall.Round(time.Microsecond), r.Ratio, r.HookRuns)
	}
	tw.Flush()
}
