package repair

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/correlate"
	"repro/internal/daikon"
	"repro/internal/isa"
)

// orderFixture assembles a program with a call site and builds the
// correlated candidates a real checking phase would hand GenerateAll:
// a one-of over the call target, a lower bound, and a less-than.
func orderFixture(t *testing.T) ([]correlate.Candidate, InstAt, func(uint32) (uint32, bool)) {
	t.Helper()
	img, labels := mkImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.MovRI(isa.EAX, 5)
		a.Label("site")
		a.CallR(isa.EAX)
		a.Label("after")
		a.MovRI(isa.EBX, 1)
		a.Ret()
	})
	site := labels["site"]
	after := labels["after"]
	cands := []correlate.Candidate{
		{Inv: &daikon.Invariant{Kind: daikon.KindOneOf, Var: vid(site, 0), Values: []uint32{0x1000, 0x2000}}, Depth: 0},
		{Inv: &daikon.Invariant{Kind: daikon.KindLowerBound, Var: vid(after, 1), Bound: 1}, Depth: 0},
		{Inv: &daikon.Invariant{Kind: daikon.KindLessThan, Var: vid(site, 0), Var2: vid(after, 1)}, Depth: 1},
	}
	sp := func(pc uint32) (uint32, bool) { return 8, true }
	return cands, instAtFor(img), sp
}

// TestGenerateAllDeterministicOrder: same candidates ⇒ same repairs in
// the same order, run after run. The evaluator's tie-break starts from
// this order, so any instability here would make adopted repairs flap
// between identical campaigns.
func TestGenerateAllDeterministicOrder(t *testing.T) {
	cands, instAt, sp := orderFixture(t)
	ref := GenerateAll(cands, instAt, sp)
	if len(ref) == 0 {
		t.Fatal("fixture generated no repairs")
	}
	refIDs := make([]string, len(ref))
	for i, r := range ref {
		refIDs[i] = r.ID()
	}
	for trial := 0; trial < 20; trial++ {
		got := GenerateAll(cands, instAt, sp)
		if len(got) != len(ref) {
			t.Fatalf("trial %d: %d repairs, want %d", trial, len(got), len(ref))
		}
		for i, r := range got {
			if r.ID() != refIDs[i] {
				t.Fatalf("trial %d: repair %d = %s, want %s", trial, i, r.ID(), refIDs[i])
			}
		}
	}
}

// TestLessIsStrictWeakOrder: the tie-break comparator must be a strict
// weak order over a representative repair set — irreflexive,
// antisymmetric, and total on distinct IDs — or sort.SliceStable would
// silently produce platform-dependent rankings.
func TestLessIsStrictWeakOrder(t *testing.T) {
	cands, instAt, sp := orderFixture(t)
	rs := GenerateAll(cands, instAt, sp)
	for _, a := range rs {
		if Less(a, a) {
			t.Fatalf("Less(%s, %s) is true: not irreflexive", a.ID(), a.ID())
		}
		for _, b := range rs {
			if a == b {
				continue
			}
			ab, ba := Less(a, b), Less(b, a)
			if ab && ba {
				t.Fatalf("Less not antisymmetric for %s / %s", a.ID(), b.ID())
			}
			if !ab && !ba && a.ID() != b.ID() {
				t.Fatalf("Less cannot order distinct repairs %s / %s", a.ID(), b.ID())
			}
		}
	}
	// Transitivity over every triple (the set is small).
	for _, a := range rs {
		for _, b := range rs {
			for _, c := range rs {
				if Less(a, b) && Less(b, c) && !Less(a, c) {
					t.Fatalf("Less not transitive: %s < %s < %s but not %s < %s",
						a.ID(), b.ID(), c.ID(), a.ID(), c.ID())
				}
			}
		}
	}
}

// TestGenerateAllDepthCarriesThrough: the candidate's stack depth must
// survive into every generated repair — Less orders by it first, so a
// dropped depth would corrupt the whole ranking.
func TestGenerateAllDepthCarriesThrough(t *testing.T) {
	cands, instAt, sp := orderFixture(t)
	for _, r := range GenerateAll(cands, instAt, sp) {
		want := 0
		for _, c := range cands {
			if c.Inv.ID() == r.Inv.ID() {
				want = c.Depth
			}
		}
		if r.Depth != want {
			t.Fatalf("repair %s carries depth %d, candidate had %d", r.ID(), r.Depth, want)
		}
	}
}
