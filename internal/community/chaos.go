package community

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/obs"
)

// ChaosConfig schedules deterministic transport faults. A FaultConn built
// from the same config and stream number injects the same fault sequence
// every run, so a chaos soak is reproducible from its seed alone. All
// probabilities are per envelope; every injected fault increments an obs
// counter (chaos.*), so a run can prove its faults actually fired.
type ChaosConfig struct {
	// Seed is the master seed; each FaultConn derives its own generator
	// from (Seed, stream), so connections fault independently but
	// reproducibly.
	Seed int64

	// Drop silently loses an envelope: a dropped send claims success, a
	// dropped receive discards the delivered envelope and keeps waiting.
	// The victim recovers via its receive timeout and retry policy.
	Drop float64
	// Delay holds an envelope for a uniform duration in (0, MaxDelay]
	// before delivering it.
	Delay float64
	// MaxDelay bounds injected delays; default 2ms.
	MaxDelay time.Duration
	// Duplicate delivers an envelope twice. On a request/response
	// protocol the stray reply desynchronizes the channel; the client must
	// detect the stale reply and reconnect-and-resync.
	Duplicate float64
	// Disconnect delivers the envelope, then tears the connection down
	// mid-flush and reports a send error — the ambiguous failure where the
	// peer may or may not have applied the payload.
	Disconnect float64

	// PartitionEvery carves periodic partition windows into each
	// connection's send schedule: of every PartitionEvery envelopes, the
	// last PartitionLen fail with a partition error (0 disables).
	PartitionEvery int
	// PartitionLen is the partition window length, in envelopes. It must
	// be < PartitionEvery so every window heals.
	PartitionLen int
}

// DefaultChaos is the chaos schedule the soak's -chaos flag arms: every
// fault class fires at a rate a healthy retry policy absorbs.
func DefaultChaos(seed int64) *ChaosConfig {
	return &ChaosConfig{
		Seed:           seed,
		Drop:           0.01,
		Delay:          0.05,
		MaxDelay:       2 * time.Millisecond,
		Duplicate:      0.01,
		Disconnect:     0.005,
		PartitionEvery: 40,
		PartitionLen:   2,
	}
}

// validate rejects schedules that could never heal.
func (c *ChaosConfig) validate() error {
	if c.PartitionEvery > 0 && c.PartitionLen >= c.PartitionEvery {
		return fmt.Errorf("community: partition window %d must be shorter than its period %d",
			c.PartitionLen, c.PartitionEvery)
	}
	return nil
}

// mixSeed folds a per-connection stream number into the master seed
// (splitmix64 finalizer), so two connections never share a schedule.
func mixSeed(seed, stream int64) int64 {
	z := uint64(seed) + uint64(stream)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// FaultConn wraps a Conn — either substrate — with a seeded fault
// schedule: dropped, delayed, and duplicated envelopes, mid-flush
// disconnects, and periodic partition windows. It implements Conn (and
// forwards RecvTimeouter), so it can stand between any client and any
// tier. Faults are injected on this end's traffic only; wrap both ends to
// fault both directions.
type FaultConn struct {
	inner Conn
	conf  ChaosConfig

	mu    sync.Mutex
	rng   *rand.Rand
	sends int

	cDropped     *obs.Counter
	cDelayed     *obs.Counter
	cDuplicated  *obs.Counter
	cDisconnects *obs.Counter
	cPartitioned *obs.Counter
}

// NewFaultConn wraps inner with conf's fault schedule. stream
// distinguishes this connection's generator from its siblings'; reg (nil
// ok) receives the chaos.* fault counters.
func NewFaultConn(inner Conn, conf *ChaosConfig, stream int64, reg *obs.Registry) (*FaultConn, error) {
	if conf == nil {
		return nil, fmt.Errorf("community: FaultConn needs a ChaosConfig")
	}
	if err := conf.validate(); err != nil {
		return nil, err
	}
	return &FaultConn{
		inner:        inner,
		conf:         *conf,
		rng:          rand.New(rand.NewSource(mixSeed(conf.Seed, stream))),
		cDropped:     reg.Counter("chaos.dropped"),
		cDelayed:     reg.Counter("chaos.delayed"),
		cDuplicated:  reg.Counter("chaos.duplicated"),
		cDisconnects: reg.Counter("chaos.disconnects"),
		cPartitioned: reg.Counter("chaos.partitioned"),
	}, nil
}

// faultDraw is one envelope's scheduled fate.
type faultDraw int

const (
	faultNone faultDraw = iota
	faultDrop
	faultDelay
	faultDuplicate
	faultDisconnect
)

// draw consumes one uniform variate and maps it onto the configured fault
// probabilities (cumulative, so one draw decides the envelope's fate and
// the schedule stays stable as individual probabilities are tuned).
func (f *FaultConn) draw() faultDraw {
	u := f.rng.Float64()
	cum := f.conf.Drop
	if u < cum {
		return faultDrop
	}
	if cum += f.conf.Delay; u < cum {
		return faultDelay
	}
	if cum += f.conf.Duplicate; u < cum {
		return faultDuplicate
	}
	if cum += f.conf.Disconnect; u < cum {
		return faultDisconnect
	}
	return faultNone
}

// inPartition reports whether send index idx falls in a partition window.
func (f *FaultConn) inPartition(idx int) bool {
	if f.conf.PartitionEvery <= 0 || f.conf.PartitionLen <= 0 {
		return false
	}
	return idx%f.conf.PartitionEvery >= f.conf.PartitionEvery-f.conf.PartitionLen
}

// Send delivers, drops, delays, duplicates, or disconnects according to
// the schedule. Partition windows preempt the per-envelope draw: inside
// one, every send fails (and still consumes its draw, so the schedule
// after the window does not depend on how much traffic hit it).
func (f *FaultConn) Send(e Envelope) error {
	f.mu.Lock()
	idx := f.sends
	f.sends++
	fate := f.draw()
	var delay time.Duration
	if fate == faultDelay {
		max := f.conf.MaxDelay
		if max <= 0 {
			max = 2 * time.Millisecond
		}
		delay = time.Duration(f.rng.Int63n(int64(max))) + 1
	}
	f.mu.Unlock()

	if f.inPartition(idx) {
		f.cPartitioned.Inc()
		return fmt.Errorf("community: injected partition (envelope %d)", idx)
	}
	switch fate {
	case faultDrop:
		f.cDropped.Inc()
		return nil // claimed delivered, silently lost
	case faultDelay:
		f.cDelayed.Inc()
		time.Sleep(delay)
		return f.inner.Send(e)
	case faultDuplicate:
		f.cDuplicated.Inc()
		if err := f.inner.Send(e); err != nil {
			return err
		}
		return f.inner.Send(e)
	case faultDisconnect:
		f.cDisconnects.Inc()
		_ = f.inner.Send(e) // the peer may have gotten it...
		_ = f.inner.Close() // ...but the sender only sees a dead wire
		return fmt.Errorf("community: injected disconnect (envelope %d)", idx)
	default:
		return f.inner.Send(e)
	}
}

// Recv forwards the inner receive, discarding envelopes the schedule
// drops (the receive-direction loss: the caller keeps waiting and its
// receive timeout, not this wrapper, decides when to give up).
func (f *FaultConn) Recv() (Envelope, error) {
	for {
		e, err := f.inner.Recv()
		if err != nil {
			return Envelope{}, err
		}
		f.mu.Lock()
		fate := f.draw()
		f.mu.Unlock()
		if fate == faultDrop {
			f.cDropped.Inc()
			continue
		}
		return e, nil
	}
}

// Close closes the wrapped connection.
func (f *FaultConn) Close() error { return f.inner.Close() }

// SetRecvTimeout forwards to the wrapped connection when it supports
// receive deadlines.
func (f *FaultConn) SetRecvTimeout(d time.Duration) {
	if rt, ok := f.inner.(RecvTimeouter); ok {
		rt.SetRecvTimeout(d)
	}
}
