// Package vm implements the managed program execution environment — the
// analog of the Determina/DynamoRIO substrate ClearView builds on (§2.1).
//
// All application code executes out of a basic-block code cache. Plugins
// are given each block once, as it enters the cache, and may attach hooks
// to individual instructions (instrumentation). Patches attach hooks to
// instruction addresses through the patch manager and can be applied to and
// removed from a *running* machine; affected blocks are ejected from the
// cache so the change takes effect immediately, without a restart and
// without otherwise perturbing the execution.
package vm

import (
	"fmt"

	"repro/internal/image"
	"repro/internal/isa"
	"repro/internal/mem"
)

// Default address-space layout.
const (
	DefaultStackTop  = 0x3000_0000
	DefaultStackSize = 0x0004_0000
	DefaultHeapBase  = 0x2000_0000
	DefaultHeapSize  = 0x0100_0000
	DefaultMaxSteps  = 20_000_000
)

// Flags holds the condition codes set by CMP.
type Flags struct {
	Z bool // zero
	S bool // sign of the subtraction result
	C bool // unsigned borrow
	O bool // signed overflow
}

// CPU is the architectural register state.
type CPU struct {
	Regs  [isa.NumRegs]uint32
	PC    uint32
	Flags Flags
}

// Outcome classifies how a run ended, following the paper's taxonomy (§2):
// a failure is an error detected by a ClearView monitor; a crash is any
// other termination of the application (fault, invalid instruction,
// resource exhaustion, hang).
type Outcome uint8

const (
	// OutcomeExit means the application terminated normally via SYS exit.
	OutcomeExit Outcome = iota
	// OutcomeFailure means a monitor detected a failure and terminated
	// the application.
	OutcomeFailure
	// OutcomeCrash means the application terminated abnormally without a
	// monitor detection.
	OutcomeCrash
)

func (o Outcome) String() string {
	switch o {
	case OutcomeExit:
		return "exit"
	case OutcomeFailure:
		return "failure"
	case OutcomeCrash:
		return "crash"
	}
	return fmt.Sprintf("outcome%d", uint8(o))
}

// Failure describes a monitor-detected failure: the location (program
// counter) where the monitor detected it, which monitor fired, and the
// call-stack snapshot if a shadow stack was maintained.
type Failure struct {
	PC      uint32
	Monitor string
	Kind    string
	Detail  string
	Target  uint32   // offending transfer target or write address
	Stack   []uint32 // innermost-first procedure-entry snapshot, if available
}

func (f *Failure) Error() string {
	return fmt.Sprintf("%s at %#x: %s (target %#x)", f.Monitor, f.PC, f.Kind, f.Target)
}

// Crash describes an abnormal termination that no monitor caught.
type Crash struct {
	PC     uint32
	Reason string
}

func (c *Crash) Error() string { return fmt.Sprintf("crash at %#x: %s", c.PC, c.Reason) }

// RunResult summarizes one execution.
type RunResult struct {
	Outcome  Outcome
	ExitCode uint32
	Failure  *Failure // set iff Outcome == OutcomeFailure
	Crash    *Crash   // set iff Outcome == OutcomeCrash
	Output   []byte   // the "display": everything the app wrote via SYS write
	Steps    uint64   // instructions executed
	Blocks   int      // basic blocks decoded into the cache
	HookRuns uint64   // instrumentation/patch hook invocations
}

// Plugin instruments basic blocks as they enter the code cache. A plugin
// instance may be shared across VM instances to accumulate state between
// runs (e.g. the CFG database or the learning engine).
type Plugin interface {
	Name() string
	// Instrument may attach hooks to the block's instructions. It is
	// called exactly once per block per cache insertion.
	Instrument(v *VM, b *Block)
}

// StackProvider supplies a call-stack snapshot at failure time. The shadow
// stack monitor registers itself as the provider; without one, failures
// carry no stack (the native stack may be corrupted — §2.3).
type StackProvider interface {
	StackSnapshot() []uint32
}

// Config assembles a machine.
type Config struct {
	Image     *image.Image
	Plugins   []Plugin
	Patches   []*Patch // initial patch set; more may be applied mid-run
	Input     []byte   // the input stream (sequence of pages)
	MaxSteps  uint64
	StackTop  uint32
	StackSize uint32
	HeapBase  uint32
	HeapSize  uint32

	// SnapshotInterval asks the machine to emit a state snapshot to
	// SnapshotSink every ~interval executed instructions (plus one at step
	// 0, before the first instruction). Snapshots are copy-on-write, so
	// the recording overhead is proportional to pages dirtied between
	// snapshots. Both fields must be set for capture to happen.
	SnapshotInterval uint64
	SnapshotSink     func(*Snapshot)

	// Coverage, when non-nil, records per-basic-block edge coverage: every
	// time the dispatch loop enters a block from the code cache, the
	// (previous block, next block) edge is counted. nil costs nothing.
	Coverage *Coverage

	// TraceThreshold is the block-entry heat at which the dispatch loop
	// records the executed path through a block head and fuses it into a
	// superblock (trace.go). Zero selects DefaultTraceThreshold;
	// TraceDisabled turns trace compilation off entirely (pure
	// block-at-a-time interpretation, e.g. for differential oracles).
	TraceThreshold int
}

// Trace-tier tuning. The threshold is deliberately low: the guest programs
// are short request handlers, so a loop that runs even a few dozen times
// dominates a run.
const (
	// DefaultTraceThreshold is the block-entry count that triggers trace
	// recording when Config.TraceThreshold is zero.
	DefaultTraceThreshold = 64
	// TraceDisabled as Config.TraceThreshold disables the trace tier.
	TraceDisabled = -1
)

// VM is one executing instance of the protected application.
type VM struct {
	CPU   CPU
	Mem   *mem.Memory
	Heap  *mem.Heap
	Image *image.Image

	plugins []Plugin
	patches *patchSet
	cache   map[uint32]*Block
	// cacheGen is the code-cache generation; block successor links are
	// valid only for the generation they were created under, so any
	// flush (ApplyPatch/RemovePatch/Restore) invalidates all links by
	// incrementing it.
	cacheGen uint64
	stack    StackProvider

	// fastCtx is the reusable hook context of the unhooked fast path.
	// No hook ever observes it, so its disposition fields stay unset and
	// the hot loop performs no per-instruction allocation.
	fastCtx Ctx
	// hookCtx is the reusable context of the instrumented path: hooks see
	// it for exactly one instruction and never retain it, so it is reset
	// (not reallocated) per instruction.
	hookCtx Ctx

	// intr is the pending software interrupt (exec.go): a SYS exit stores
	// its request here and the block executors service it at the block
	// boundary instead of threading a sentinel error through exec.
	intr intrCode

	// Trace tier (trace.go/superblock.go).
	traceThreshold uint32        // block heat that triggers recording; 0 = disabled
	rec            traceRecorder // in-flight trace recording, if any
	// addrIndex maps each code address covered by a cached block to the
	// blocks containing it, so patch apply/remove flushes only the blocks
	// actually touching the patched instruction instead of walking the
	// whole cache. It is lazy: nil until the first flush builds it from
	// the cache, incrementally maintained at block decode afterwards —
	// machines that never see a patch land (replay restores, fuzz runs)
	// never pay the per-decode indexing.
	addrIndex map[uint32][]*Block

	// Exception handling emulation (SysSetEH): on a memory fault the
	// machine dispatches to the handler address stored at ehSlot, subject
	// to the registered transfer validator (Memory Firewall).
	ehSlot       uint32
	ehDispatched bool
	validator    func(pc, target uint32) *Failure

	input    []byte
	inPos    int
	output   []byte
	maxSteps uint64
	exitCode uint32 // set when SYS exit raises intrExit

	steps    uint64
	hookRuns uint64
	blocks   int

	snapInterval uint64
	snapSink     func(*Snapshot)
	nextSnap     uint64

	cov       *Coverage
	lastBlock uint32

	// Hang watch (monitor.HangGuard): when hangBudget is nonzero and the
	// step count reaches it, the next code-cache dispatch — the same point
	// that records edge coverage — terminates the run with the failure
	// hangFail produces instead of executing the block. Checking at
	// dispatch (not per instruction) keeps the watch off the hot loop and
	// pins the failure location to a basic-block head, so every run of the
	// same input fails at the same PC.
	hangBudget uint64
	hangFail   func(pc uint32, steps uint64) *Failure

	stackLo, stackHi uint32
}

// New builds a machine, loads the image, maps stack and heap, and points
// the CPU at the entry point with ESP at the top of the stack.
func New(cfg Config) (*VM, error) {
	if cfg.Image == nil {
		return nil, fmt.Errorf("vm: nil image")
	}
	if err := cfg.Image.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = DefaultMaxSteps
	}
	if cfg.StackTop == 0 {
		cfg.StackTop = DefaultStackTop
	}
	if cfg.StackSize == 0 {
		cfg.StackSize = DefaultStackSize
	}
	if cfg.HeapBase == 0 {
		cfg.HeapBase = DefaultHeapBase
	}
	if cfg.HeapSize == 0 {
		cfg.HeapSize = DefaultHeapSize
	}
	m := mem.New()
	m.Map(cfg.Image.Base, uint32(len(cfg.Image.Code)))
	if err := m.WriteBytes(cfg.Image.Base, cfg.Image.Code); err != nil {
		return nil, err
	}
	m.Map(cfg.StackTop-cfg.StackSize, cfg.StackSize)
	v := &VM{
		Mem:      m,
		Heap:     mem.NewHeap(m, cfg.HeapBase, cfg.HeapSize),
		Image:    cfg.Image,
		plugins:  cfg.Plugins,
		patches:  newPatchSet(),
		cache:    make(map[uint32]*Block),
		input:    cfg.Input,
		maxSteps: cfg.MaxSteps,
		stackLo:  cfg.StackTop - cfg.StackSize,
		stackHi:  cfg.StackTop,
	}
	switch {
	case cfg.TraceThreshold > 0:
		v.traceThreshold = uint32(cfg.TraceThreshold)
	case cfg.TraceThreshold == 0:
		v.traceThreshold = DefaultTraceThreshold
	default: // TraceDisabled
		v.traceThreshold = 0
	}
	if cfg.SnapshotInterval > 0 && cfg.SnapshotSink != nil {
		v.snapInterval = cfg.SnapshotInterval
		v.snapSink = cfg.SnapshotSink
	}
	v.cov = cfg.Coverage
	v.fastCtx.VM = v
	v.hookCtx.VM = v
	v.CPU.PC = cfg.Image.Entry
	v.CPU.Regs[isa.ESP] = cfg.StackTop
	for _, p := range cfg.Patches {
		if err := v.ApplyPatch(p); err != nil {
			return nil, err
		}
	}
	return v, nil
}

// SetStackProvider registers the shadow-stack snapshot source.
func (v *VM) SetStackProvider(p StackProvider) { v.stack = p }

// SetHangWatch arms the step-budget watchdog: once budget instructions
// have executed, the next basic-block dispatch ends the run with the
// failure fail produces (given the block's start PC and the step count).
// A zero budget disarms the watch. monitor.HangGuard registers itself
// here; the budget must stay below Config.MaxSteps or the ordinary
// step-limit crash fires first.
func (v *VM) SetHangWatch(budget uint64, fail func(pc uint32, steps uint64) *Failure) {
	v.hangBudget = budget
	v.hangFail = fail
}

// SetTransferValidator registers a validation check applied to
// runtime-dispatched control transfers that do not correspond to a decoded
// instruction — currently only exception-handler dispatch. Memory Firewall
// registers itself here so that a corrupted handler record cannot divert
// execution to injected code.
func (v *VM) SetTransferValidator(f func(pc, target uint32) *Failure) {
	v.validator = f
}

// StackBounds returns the [lo, hi) bounds of the machine stack region.
func (v *VM) StackBounds() (lo, hi uint32) { return v.stackLo, v.stackHi }

// InCode reports whether addr lies within the application code region —
// the legality predicate Memory Firewall applies to transfer targets.
func (v *VM) InCode(addr uint32) bool { return v.Image.Contains(addr) }

// Output returns the display bytes written so far.
func (v *VM) OutputBytes() []byte { return v.output }

// Steps returns the number of instructions executed so far.
func (v *VM) Steps() uint64 { return v.steps }

// InputRemaining returns the number of unconsumed input bytes.
func (v *VM) InputRemaining() int { return len(v.input) - v.inPos }

// Coverage returns the attached edge-coverage accumulator, or nil.
func (v *VM) Coverage() *Coverage { return v.cov }

func (v *VM) snapshotStack() []uint32 {
	if v.stack == nil {
		return nil
	}
	return v.stack.StackSnapshot()
}

func (v *VM) result(o Outcome, exit uint32, f *Failure, c *Crash) RunResult {
	return RunResult{
		Outcome: o, ExitCode: exit, Failure: f, Crash: c,
		Output: v.output, Steps: v.steps, Blocks: v.blocks, HookRuns: v.hookRuns,
	}
}
