package replay_test

import (
	"strings"
	"testing"

	"repro/internal/redteam"
	"repro/internal/replay"
	"repro/internal/vm"
)

// vetRecordings builds one honest failing recording and one honest clean
// recording for the vetting tests.
func vetRecordings(t *testing.T) (failing, clean *replay.Recording) {
	t.Helper()
	setup := baseSetup(t)
	ex := exploit(t, "290162")
	attack := redteam.AttackInput(setup.App, ex, 0)
	rec, res, err := replay.Record("vet-fail", setup.App.Image, attack, nil, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failure == nil {
		t.Fatal("attack did not fail")
	}
	benign, res, err := replay.Record("vet-clean", setup.App.Image, redteam.EvaluationPages()[0], nil, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failure != nil {
		t.Fatalf("benign page failed: %+v", res.Failure)
	}
	return rec, benign
}

// TestVetAcceptsHonestRecordings: an unmodified recording — failing or
// clean — always passes, because the machine is deterministic.
func TestVetAcceptsHonestRecordings(t *testing.T) {
	failing, clean := vetRecordings(t)
	farm := &replay.Farm{}
	if err := farm.Vet(failing); err != nil {
		t.Errorf("honest failing recording rejected: %v", err)
	}
	if err := farm.Vet(clean); err != nil {
		t.Errorf("honest clean recording rejected: %v", err)
	}
}

// TestVetRejectsTampering: every tamperable claim — outcome, failure
// location, monitor, step count — is caught by one bare replay.
func TestVetRejectsTampering(t *testing.T) {
	failing, clean := vetRecordings(t)
	img := baseSetup(t).App.Image

	cases := []struct {
		name   string
		rec    replay.Recording // shallow copy to tamper
		tamper func(*replay.Recording)
		want   string
	}{
		{
			name: "clean run relabelled as a failure",
			rec:  *clean,
			tamper: func(r *replay.Recording) {
				r.Outcome = vm.OutcomeFailure
				r.Failure = &vm.Failure{PC: img.Entry, Monitor: "MemoryFirewall", Kind: "forged"}
			},
			want: "outcome",
		},
		{
			name:   "failure location moved",
			rec:    *failing,
			tamper: func(r *replay.Recording) { f := *r.Failure; f.PC = img.Entry; r.Failure = &f },
			want:   "failure at",
		},
		{
			name:   "monitor swapped",
			rec:    *failing,
			tamper: func(r *replay.Recording) { f := *r.Failure; f.Monitor = "HeapGuard"; r.Failure = &f },
			want:   "monitor",
		},
		{
			name:   "step count inflated",
			rec:    *failing,
			tamper: func(r *replay.Recording) { r.Steps += 1000 },
			want:   "steps",
		},
		{
			name:   "failure erased",
			rec:    *failing,
			tamper: func(r *replay.Recording) { r.Outcome = vm.OutcomeExit; r.Failure = nil },
			want:   "outcome",
		},
	}
	farm := &replay.Farm{}
	for _, tc := range cases {
		tc.tamper(&tc.rec)
		err := farm.Vet(&tc.rec)
		if err == nil {
			t.Errorf("%s: tampered recording passed vetting", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestVetAll: verdicts come back in input order, concurrently.
func TestVetAll(t *testing.T) {
	failing, clean := vetRecordings(t)
	forged := *clean
	forged.Outcome = vm.OutcomeFailure
	forged.Failure = &vm.Failure{PC: baseSetup(t).App.Image.Entry, Monitor: "MemoryFirewall"}

	farm := &replay.Farm{Workers: 2}
	errs := farm.VetAll([]*replay.Recording{failing, &forged, clean})
	if errs[0] != nil {
		t.Errorf("honest recording rejected: %v", errs[0])
	}
	if errs[1] == nil {
		t.Error("forged recording passed")
	}
	if errs[2] != nil {
		t.Errorf("honest clean recording rejected: %v", errs[2])
	}
}
