// Red Team exercise walkthrough: the protected browser-like application
// under the ten exploits of §4, printing a live narration of each
// campaign — detection, invariant checking, repair evaluation, adoption.
//
// Run:  go run ./examples/redteam
package main

import (
	"fmt"
	"log"

	"repro/internal/redteam"
	"repro/internal/vm"
)

func main() {
	fmt.Println("Building the application and learning the invariant database...")
	setups := map[bool]*redteam.Setup{}
	for _, expanded := range []bool{false, true} {
		s, err := redteam.NewSetup(expanded)
		if err != nil {
			log.Fatal(err)
		}
		setups[expanded] = s
	}

	for _, ex := range redteam.Exploits() {
		setup := setups[ex.NeedsExpandedCorpus]
		cv, err := setup.ClearView(ex.NeedsStackScope)
		if err != nil {
			log.Fatal(err)
		}
		note := ""
		if ex.NeedsStackScope > 1 {
			note = " (stack scope widened per §4.3.2)"
		}
		if ex.NeedsExpandedCorpus {
			note = " (expanded learning corpus per §4.3.2)"
		}
		fmt.Printf("\n== Bugzilla %s — %s%s ==\n", ex.Bugzilla, ex.ErrorType, note)

		patched := false
		for i := 1; i <= 16 && !patched; i++ {
			res := cv.Execute(redteam.AttackInput(setup.App, ex, 0))
			switch {
			case res.Outcome == vm.OutcomeExit && res.ExitCode == 0:
				fmt.Printf("  presentation %2d: application SURVIVED — patch adopted\n", i)
				patched = true
			case res.Outcome == vm.OutcomeFailure:
				fmt.Printf("  presentation %2d: blocked by %s at %#x\n",
					i, res.Failure.Monitor, res.Failure.PC)
			default:
				fmt.Printf("  presentation %2d: candidate repair failed (%v); discarded\n",
					i, res.Outcome)
			}
		}
		if !patched {
			if ex.Repairable {
				fmt.Println("  -> NOT patched (unexpected)")
			} else {
				fmt.Println("  -> never patched: the correcting invariant is outside")
				fmt.Println("     Daikon's grammar (§4.3.2); every attack stays blocked")
			}
		}
	}
}
