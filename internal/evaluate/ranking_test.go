package evaluate

import (
	"testing"

	"repro/internal/daikon"
	"repro/internal/repair"
)

// tieRepairs builds repairs that all carry the same score so that only
// the §2.6 ordering rules decide their rank: mixed depths, PCs, and
// strategies.
func tieRepairs() []*repair.Repair {
	inv := func(pc uint32) *daikon.Invariant {
		return &daikon.Invariant{Kind: daikon.KindOneOf, Var: daikon.VarID{PC: pc}, Values: []uint32{1}}
	}
	return []*repair.Repair{
		{Inv: inv(0x200), Strategy: repair.StratReturnProc, PC: 0x200, Depth: 0},
		{Inv: inv(0x100), Strategy: repair.StratSetValue, Value: 7, PC: 0x100, Depth: 1},
		{Inv: inv(0x200), Strategy: repair.StratSkipCall, PC: 0x200, Depth: 0},
		{Inv: inv(0x100), Strategy: repair.StratSetValue, Value: 3, PC: 0x100, Depth: 0},
		{Inv: inv(0x200), Strategy: repair.StratSetValue, Value: 9, PC: 0x200, Depth: 0},
	}
}

// TestRankedTieOrdering: with every score tied, Ranked must follow the
// paper's rules — lower depth first, earlier PC first, state changes
// before control-flow changes (skip-call before return-proc), then value.
func TestRankedTieOrdering(t *testing.T) {
	ev := New(tieRepairs(), 1)
	ranked := ev.Ranked()
	wantIDs := []string{
		"oneof@0x100.0/set-value=0x3", // depth 0, PC 0x100
		"oneof@0x200.0/set-value=0x9", // depth 0, PC 0x200, state change
		"oneof@0x200.0/skip-call",     // depth 0, PC 0x200, control flow rank 1
		"oneof@0x200.0/return-proc",   // depth 0, PC 0x200, control flow rank 2
		"oneof@0x100.0/set-value=0x7", // depth 1 last
	}
	if len(ranked) != len(wantIDs) {
		t.Fatalf("ranked %d entries, want %d", len(ranked), len(wantIDs))
	}
	for i, e := range ranked {
		if e.Repair.ID() != wantIDs[i] {
			t.Fatalf("rank %d = %s, want %s", i, e.Repair.ID(), wantIDs[i])
		}
	}
	if best := ev.Best(); best.Repair.ID() != wantIDs[0] {
		t.Fatalf("Best = %s, disagrees with Ranked[0] = %s", best.Repair.ID(), wantIDs[0])
	}
}

// TestRankedDeterministic: same inputs ⇒ same ranked order, call after
// call and evaluator after evaluator — the property the community
// manager's parallel assignment and the replay farm both lean on.
func TestRankedDeterministic(t *testing.T) {
	ref := New(tieRepairs(), 1).Ranked()
	for trial := 0; trial < 20; trial++ {
		ev := New(tieRepairs(), 1)
		for pass := 0; pass < 2; pass++ { // repeated calls must agree too
			got := ev.Ranked()
			for i := range got {
				if got[i].Repair.ID() != ref[i].Repair.ID() {
					t.Fatalf("trial %d pass %d: rank %d = %s, want %s",
						trial, pass, i, got[i].Repair.ID(), ref[i].Repair.ID())
				}
			}
		}
	}
}

// TestRankedScoreBeatsTieBreak: a score advantage overrides every
// ordering rule, and verdicts recorded mid-evaluation reorder the
// ranking deterministically.
func TestRankedScoreBeatsTieBreak(t *testing.T) {
	rs := tieRepairs()
	ev := New(rs, 1)
	last := rs[1] // depth 1: bottom of the tie-broken order
	ev.RecordSuccess(last.ID())
	if got := ev.Ranked()[0].Repair.ID(); got != last.ID() {
		t.Fatalf("scored repair ranked %s first instead of %s", got, last.ID())
	}
	// A failure drops it below the untried (bonus-carrying) candidates.
	ev.RecordFailure(last.ID())
	ev.RecordFailure(last.ID())
	if got := ev.Ranked()[len(rs)-1].Repair.ID(); got != last.ID() {
		t.Fatalf("failed repair is not ranked last: %s", got)
	}
}

// TestReverseTieBreakInverts: the ablation knob must invert only the
// tie-break, not the score ordering.
func TestReverseTieBreakInverts(t *testing.T) {
	fwd := New(tieRepairs(), 1)
	rev := New(tieRepairs(), 1)
	rev.ReverseTieBreak = true
	f, r := fwd.Ranked(), rev.Ranked()
	for i := range f {
		if f[i].Repair.ID() != r[len(r)-1-i].Repair.ID() {
			t.Fatalf("reverse tie-break is not the mirror image at %d: %s vs %s",
				i, f[i].Repair.ID(), r[len(r)-1-i].Repair.ID())
		}
	}
}
