package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// FormatStageTable renders a snapshot's stages as the per-stage
// wall/on-CPU/blocked table `cmd/soak -profile` prints, sorted by blocked
// time descending (the convoy you should look at first is the first row),
// with wall time as the tiebreak. Durations are rounded for reading; the
// JSON snapshot carries the exact nanoseconds.
func FormatStageTable(snap *Snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %8s %10s %10s %10s %6s  %s\n",
		"stage", "spans", "wall", "on-cpu", "blocked", "blk%", "top wait (share of blocked)")
	stages := make([]StageSnap, len(snap.Stages))
	copy(stages, snap.Stages)
	sort.SliceStable(stages, func(i, j int) bool {
		if stages[i].BlockedNs != stages[j].BlockedNs {
			return stages[i].BlockedNs > stages[j].BlockedNs
		}
		if stages[i].WallNs != stages[j].WallNs {
			return stages[i].WallNs > stages[j].WallNs
		}
		return stages[i].Name < stages[j].Name
	})
	for i := range stages {
		st := &stages[i]
		topWait := "-"
		if top := st.TopPoint(); top != nil && st.BlockedNs > 0 {
			topWait = fmt.Sprintf("%s (%.0f%%)", top.Point,
				100*float64(top.BlockedNs)/float64(st.BlockedNs))
		}
		fmt.Fprintf(&b, "%-16s %8d %10s %10s %10s %5.1f%%  %s\n",
			st.Name, st.Spans,
			fmtDur(st.WallNs), fmtDur(st.OnCPUNs), fmtDur(st.BlockedNs),
			100*st.BlockedShare(), topWait)
	}
	return b.String()
}

// TopBlockedStage returns the stage with the most blocked time, or nil
// when nothing blocked at all.
func TopBlockedStage(snap *Snapshot) *StageSnap {
	var top *StageSnap
	for i := range snap.Stages {
		st := &snap.Stages[i]
		if st.BlockedNs > 0 && (top == nil || st.BlockedNs > top.BlockedNs) {
			top = st
		}
	}
	return top
}

// fmtDur renders nanoseconds at three significant-ish digits, never wider
// than the table column.
func fmtDur(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d == 0:
		return "0"
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", ns)
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%.1fs", float64(ns)/1e9)
	}
}
