package community

import (
	"fmt"
	"testing"

	"repro/internal/redteam"
	"repro/internal/vm"
	"repro/internal/webapp"
)

// flakyConn wraps a Conn, failing the next failSends Send calls.
type flakyConn struct {
	Conn
	failSends int
}

func (c *flakyConn) Send(e Envelope) error {
	if c.failSends > 0 {
		c.failSends--
		return fmt.Errorf("transient upstream failure")
	}
	return c.Conn.Send(e)
}

// TestFlushSendFailureRestoresBuffers: a flush whose upstream Send fails
// loses nothing — the snapshot is restored and the next flush delivers it
// — and a pending auto-flush is not skipped on the strength of the failed
// attempt's snapshot: only a DELIVERED snapshot counts as carried.
func TestFlushSendFailureRestoresBuffers(t *testing.T) {
	app := webapp.MustBuild()
	m, err := NewManager(ManagerConfig{Image: app.Image})
	if err != nil {
		t.Fatal(err)
	}
	upSide, mgrSide := Pipe()
	go func() { _ = m.Serve(mgrSide) }()
	flaky := &flakyConn{Conn: upSide, failSends: 1}
	agg, err := NewAggregator(AggregatorConfig{ID: "agg00", Image: app.Image, Upstream: flaky})
	if err != nil {
		t.Fatal(err)
	}

	n := NewNode("n0", app.Image, nil)
	attachNode(t, agg, n)
	site := app.Labels["site_290162"]
	env, err := NewEnvelope(MsgRunReport, RunReport{
		NodeID:  "n0",
		Outcome: uint8(vm.OutcomeFailure),
		Failure: &FailureInfo{PC: site, Monitor: "MemoryFirewall"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.roundTrip(env); err != nil {
		t.Fatal(err)
	}

	if err := agg.Flush(); err == nil {
		t.Fatal("flush with a failing upstream send reported success")
	}
	if len(m.CaseStates()) != 0 {
		t.Fatalf("failed flush reached the manager: %v", m.CaseStates())
	}
	// An auto-flush for state buffered before the failed attempt (epoch 0)
	// must still run: the attempt snapshotted but delivered nothing.
	if err := agg.flushIfDue(0); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.CaseStates()[site]; !ok {
		t.Fatalf("restored report did not reach the manager: %v", m.CaseStates())
	}
	if got := agg.UpstreamEnvelopes(); got != 1 {
		t.Fatalf("upstream envelopes = %d, want 1 (a failed send must not count)", got)
	}
	// Once delivered, an auto-flush for state buffered before the delivery
	// is skipped — the data is already upstream.
	if err := agg.flushIfDue(0); err != nil {
		t.Fatal(err)
	}
	if got := agg.UpstreamEnvelopes(); got != 1 {
		t.Fatalf("redundant auto-flush sent an envelope: upstream = %d", got)
	}
	// The explicit heartbeat Flush still always runs.
	if err := agg.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := agg.UpstreamEnvelopes(); got != 2 {
		t.Fatalf("heartbeat flush did not run: upstream = %d", got)
	}
}

// hierSoakConfig assembles a small hierarchical soak over real Red Team
// scenarios.
func hierSoakConfig(t *testing.T, app *webapp.App, nodes, aggregators int) SoakConfig {
	t.Helper()
	conf := soakConfig(t, app, nodes, true)
	conf.Aggregators = aggregators
	return conf
}

// TestHierarchicalSoakConverges: the two-tier topology reaches the same
// community outcome as the flat star — one adopted repair per defect,
// held by every node.
func TestHierarchicalSoakConverges(t *testing.T) {
	app := webapp.MustBuild()
	rep, err := RunSoak(hierSoakConfig(t, app, 12, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("hierarchical soak did not converge: %+v", rep)
	}
	for _, d := range rep.Defects {
		if !d.Converged || d.Adopted == "" {
			t.Fatalf("defect %s did not converge: %+v", d.Label, d)
		}
		if d.Agree != rep.Nodes {
			t.Fatalf("defect %s: %d/%d nodes agree", d.Label, d.Agree, rep.Nodes)
		}
	}
}

// TestHierarchyReducesManagerEnvelopes enforces the scaling contract of
// the aggregator tier: at equal node count, the central manager handles at
// least 5x fewer envelopes than under the flat topology, because member
// syncs are served from the aggregators' directive caches and a whole
// region's round travels upstream as one compacted batch.
func TestHierarchyReducesManagerEnvelopes(t *testing.T) {
	app := webapp.MustBuild()
	flat, err := RunSoak(soakConfig(t, app, 10, true))
	if err != nil {
		t.Fatal(err)
	}
	hier, err := RunSoak(hierSoakConfig(t, app, 10, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !flat.Converged || !hier.Converged {
		t.Fatalf("convergence: flat=%v hierarchical=%v", flat.Converged, hier.Converged)
	}
	if hier.Messages*5 > flat.Messages {
		t.Fatalf("aggregation reduced manager envelopes only %dx (%d flat vs %d hierarchical), want >=5x",
			flat.Messages/max(hier.Messages, 1), flat.Messages, hier.Messages)
	}
	t.Logf("manager envelopes: %d flat vs %d hierarchical (%.1fx)",
		flat.Messages, hier.Messages, float64(flat.Messages)/float64(hier.Messages))
}

// TestHierarchicalSoakDeterministic: identical hierarchical soaks adopt
// identical repairs in identical rounds.
func TestHierarchicalSoakDeterministic(t *testing.T) {
	app := webapp.MustBuild()
	a, err := RunSoak(hierSoakConfig(t, app, 9, 3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSoak(hierSoakConfig(t, app, 9, 3))
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range a.Defects {
		if d.Adopted != b.Defects[i].Adopted || d.Rounds != b.Defects[i].Rounds {
			t.Fatalf("identical soaks diverged on defect %s: %+v vs %+v", d.Label, d, b.Defects[i])
		}
	}
	if a.Messages != b.Messages {
		t.Fatalf("identical soaks cost different manager envelopes: %d vs %d", a.Messages, b.Messages)
	}
}

// TestAggregatorServesSyncsFromCache: once a region's directives are
// cached, member syncs cost the manager nothing — the property that makes
// manager load O(aggregators).
func TestAggregatorServesSyncsFromCache(t *testing.T) {
	app := webapp.MustBuild()
	m, err := NewManager(redTeamManagerConfig(t, app))
	if err != nil {
		t.Fatal(err)
	}
	upSide, mgrSide := Pipe()
	go func() { _ = m.Serve(mgrSide) }()
	agg, err := NewAggregator(AggregatorConfig{ID: "agg00", Image: app.Image, Upstream: upSide})
	if err != nil {
		t.Fatal(err)
	}
	attachTo := func(id string) *Node {
		nodeSide, aggSide := Pipe()
		go func() { _ = agg.Serve(aggSide) }()
		n := NewNode(id, app.Image, nil)
		if err := n.Attach(nodeSide); err != nil {
			t.Fatal(err)
		}
		return n
	}
	n1 := attachTo("n1")
	n2 := attachTo("n2")
	if err := agg.Flush(); err != nil {
		t.Fatal(err)
	}
	before := m.Messages()
	for i := 0; i < 10; i++ {
		if err := n1.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := n2.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Messages(); got != before {
		t.Fatalf("20 member syncs cost the manager %d envelopes, want 0", got-before)
	}
	members := agg.Members()
	if len(members) != 2 || members[0] != "n1" || members[1] != "n2" {
		t.Fatalf("members = %v", members)
	}
}

// TestAggregatorHeartbeatFlushBeforeMembers: a flush with no members ever
// seen still round-trips — it is the region's heartbeat, and it must
// count as a flush so the mid-campaign-join registration path arms before
// the first member arrives.
func TestAggregatorHeartbeatFlushBeforeMembers(t *testing.T) {
	app := webapp.MustBuild()
	m, err := NewManager(ManagerConfig{Image: app.Image})
	if err != nil {
		t.Fatal(err)
	}
	upSide, mgrSide := Pipe()
	go func() { _ = m.Serve(mgrSide) }()
	agg, err := NewAggregator(AggregatorConfig{ID: "agg00", Image: app.Image, Upstream: upSide})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if err := agg.Flush(); err != nil {
			t.Fatalf("empty heartbeat flush %d: %v", i, err)
		}
		if agg.Flushes() != i {
			t.Fatalf("flushes = %d, want %d", agg.Flushes(), i)
		}
	}
}

// TestAggregatorAutoFlush: the FlushEvery threshold forwards a compacted
// batch without an explicit Flush call.
func TestAggregatorAutoFlush(t *testing.T) {
	app := webapp.MustBuild()
	m, err := NewManager(redTeamManagerConfig(t, app))
	if err != nil {
		t.Fatal(err)
	}
	upSide, mgrSide := Pipe()
	go func() { _ = m.Serve(mgrSide) }()
	agg, err := NewAggregator(AggregatorConfig{
		ID: "agg00", Image: app.Image, Upstream: upSide, FlushEvery: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	nodeSide, aggSide := Pipe()
	go func() { _ = agg.Serve(aggSide) }()
	n := NewNode("n0", app.Image, nil)
	if err := n.Attach(nodeSide); err != nil {
		t.Fatal(err)
	}
	benign := redteam.EvaluationPages()[0]
	for i := 0; i < 3; i++ {
		if agg.Flushes() != 0 {
			t.Fatalf("flushed after %d reports, threshold 3", i)
		}
		if _, err := n.RunOnce(benign); err != nil {
			t.Fatal(err)
		}
	}
	if agg.Flushes() != 1 {
		t.Fatalf("flushes = %d after 3 reports, want 1", agg.Flushes())
	}
}
