// Application community over TCP: a central manager and three node
// managers on localhost. One member absorbs an attack until the community
// finds a patch; the others then survive their first exposure
// ("protection without exposure", §3).
//
// Run:  go run ./examples/community
package main

import (
	"fmt"
	"log"

	"repro/internal/community"
	"repro/internal/core"
	"repro/internal/redteam"
	"repro/internal/vm"
	"repro/internal/webapp"
)

func main() {
	app, err := webapp.Build()
	if err != nil {
		log.Fatal(err)
	}
	seed, _, err := core.Learn(app.Image, core.LearnConfig{
		Inputs: [][]byte{redteam.LearningCorpus()},
	})
	if err != nil {
		log.Fatal(err)
	}

	manager, err := community.NewManager(community.ManagerConfig{
		Image:           app.Image,
		Seed:            seed,
		BootstrapInputs: [][]byte{redteam.LearningCorpus()},
	})
	if err != nil {
		log.Fatal(err)
	}
	listener, err := community.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer listener.Close()
	go func() {
		for {
			conn, err := listener.Accept()
			if err != nil {
				return
			}
			go func() { _ = manager.Serve(conn) }()
		}
	}()
	fmt.Printf("manager listening on %s\n", listener.Addr())

	newNode := func(id string) *community.Node {
		conn, err := community.Dial(listener.Addr())
		if err != nil {
			log.Fatal(err)
		}
		n := community.NewNode(id, app.Image, conn)
		if err := n.Connect(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("node %q connected\n", id)
		return n
	}
	victim := newNode("victim")
	peers := []*community.Node{newNode("peer-1"), newNode("peer-2")}

	var ex redteam.Exploit
	for _, e := range redteam.Exploits() {
		if e.Bugzilla == "290162" {
			ex = e
		}
	}
	attack := redteam.AttackInput(app, ex, 0)

	fmt.Printf("\nattacking %q with exploit %s...\n", victim.ID, ex.Bugzilla)
	for i := 1; ; i++ {
		res, err := victim.RunOnce(attack)
		if err != nil {
			log.Fatal(err)
		}
		if res.Outcome == vm.OutcomeExit && res.ExitCode == 0 {
			fmt.Printf("  presentation %d: survived — community patch adopted\n", i)
			break
		}
		fmt.Printf("  presentation %d: %v (community responding)\n", i, res.Outcome)
		if i > 12 {
			log.Fatal("community never patched")
		}
	}

	fmt.Println("\nfirst exposure of the other members:")
	for _, peer := range peers {
		res, err := peer.RunOnce(attack)
		if err != nil {
			log.Fatal(err)
		}
		immune := res.Outcome == vm.OutcomeExit && res.ExitCode == 0
		fmt.Printf("  %q survives first exposure: %v\n", peer.ID, immune)
	}
}
