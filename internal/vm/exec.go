package vm

import (
	"errors"
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
)

// Ctx is the machine context a hook sees: the instruction about to execute
// and the disposition controls a repair patch may use to alter execution.
// Dispositions are plain values (not pointers) so that the per-VM reusable
// contexts stay allocation-free even when a repair fires.
type Ctx struct {
	VM   *VM
	PC   uint32
	Inst isa.Inst

	skip           bool
	hasJump        bool
	hasOverride    bool
	jumpTo         uint32
	overrideTarget uint32
}

// reset clears the dispositions for the next instruction; the reusable
// per-VM contexts call it instead of being reconstructed.
func (c *Ctx) reset(pc uint32, in isa.Inst) {
	c.PC = pc
	c.Inst = in
	c.skip = false
	c.hasJump = false
	c.hasOverride = false
}

// Skip suppresses the instruction's execution; control falls through to the
// next instruction. This implements the "skip the call" repair (§2.5.1).
func (c *Ctx) Skip() { c.skip = true }

// Jump transfers control to target instead of executing the instruction.
// This implements the "return immediately from the enclosing procedure"
// repair (after the patch has adjusted the stack pointer).
func (c *Ctx) Jump(target uint32) { c.jumpTo = target; c.hasJump = true }

// OverrideTarget replaces the runtime-computed target of an indirect
// transfer. This implements the one-of enforcement that redirects a
// corrupted function pointer to a previously observed callee.
func (c *Ctx) OverrideTarget(target uint32) { c.overrideTarget = target; c.hasOverride = true }

// Reg reads a register.
func (c *Ctx) Reg(r isa.Reg) uint32 { return c.VM.CPU.Regs[r] }

// SetReg writes a register.
func (c *Ctx) SetReg(r isa.Reg, v uint32) { c.VM.CPU.Regs[r] = v }

// EffAddr returns the memory address the current instruction computes:
// B + X<<Scale + Imm for memory-operand instructions, ESP for RET/POP.
func (c *Ctx) EffAddr() uint32 { return c.VM.effAddr(c.Inst) }

// TransferTarget computes the target of the current indirect control
// transfer as the interpreter would, honouring any override already set.
func (c *Ctx) TransferTarget() (uint32, error) {
	if c.hasOverride {
		return c.overrideTarget, nil
	}
	return c.VM.computeTarget(c.Inst)
}

// EvalSlot reads the current value of slot index si of the instruction.
func (c *Ctx) EvalSlot(si int) (uint32, error) {
	specs := isa.Slots(c.Inst)
	if si < 0 || si >= len(specs) {
		return 0, fmt.Errorf("vm: slot %d out of range for %s", si, c.Inst)
	}
	spec := specs[si]
	switch spec.Kind {
	case isa.SlotRegA, isa.SlotRegB, isa.SlotRegX:
		return c.VM.CPU.Regs[spec.Reg], nil
	case isa.SlotAddr:
		return c.VM.effAddr(c.Inst), nil
	case isa.SlotMemVal:
		// The observed value has the instruction's access width: a byte
		// load's operand is one byte, not the surrounding word.
		if c.Inst.Op == isa.LOADB {
			b, err := c.VM.Mem.Read8(c.VM.effAddr(c.Inst))
			return uint32(b), err
		}
		return c.VM.Mem.Read32(c.VM.effAddr(c.Inst))
	}
	return 0, fmt.Errorf("vm: unknown slot kind %v", spec.Kind)
}

// SetSlot enforces a value on slot index si before the instruction
// executes: registers are written directly; memory-value slots are written
// through the computed address so the instruction reads the enforced value.
// For the target slot of an indirect transfer, the transfer is redirected
// without mutating application memory.
func (c *Ctx) SetSlot(si int, val uint32) error {
	specs := isa.Slots(c.Inst)
	if si < 0 || si >= len(specs) {
		return fmt.Errorf("vm: slot %d out of range for %s", si, c.Inst)
	}
	spec := specs[si]
	switch spec.Kind {
	case isa.SlotRegA, isa.SlotRegB, isa.SlotRegX:
		c.VM.CPU.Regs[spec.Reg] = val
		return nil
	case isa.SlotMemVal:
		if isa.TargetSlot(c.Inst) == si {
			c.OverrideTarget(val)
			return nil
		}
		if c.Inst.Op == isa.LOADB {
			return c.VM.Mem.Write8(c.VM.effAddr(c.Inst), byte(val))
		}
		return c.VM.Mem.Write32(c.VM.effAddr(c.Inst), val)
	}
	return fmt.Errorf("vm: slot %v is not settable", spec.Kind)
}

func (v *VM) effAddr(in isa.Inst) uint32 {
	switch in.Op {
	case isa.RET, isa.POP:
		return v.CPU.Regs[isa.ESP]
	}
	a := v.CPU.Regs[in.B] + uint32(in.Imm)
	if in.X.Valid() {
		a += v.CPU.Regs[in.X] << in.Scale
	}
	return a
}

// computeTarget evaluates the destination of an indirect transfer without
// executing it (used by Memory Firewall and by repair patches).
func (v *VM) computeTarget(in isa.Inst) (uint32, error) {
	switch in.Op {
	case isa.JMPR, isa.CALLR:
		return v.CPU.Regs[in.A], nil
	case isa.CALLM:
		return v.Mem.Read32(v.effAddr(in))
	case isa.RET:
		return v.Mem.Read32(v.CPU.Regs[isa.ESP])
	}
	return 0, fmt.Errorf("vm: %s is not an indirect transfer", in.Op)
}

func (v *VM) push(val uint32) error {
	v.CPU.Regs[isa.ESP] -= 4
	return v.Mem.Write32(v.CPU.Regs[isa.ESP], val)
}

func (v *VM) pop() (uint32, error) {
	val, err := v.Mem.Read32(v.CPU.Regs[isa.ESP])
	if err != nil {
		return 0, err
	}
	v.CPU.Regs[isa.ESP] += 4
	return val, nil
}

func (v *VM) setCmpFlags(a, b uint32) {
	r := a - b
	v.CPU.Flags.Z = r == 0
	v.CPU.Flags.S = int32(r) < 0
	v.CPU.Flags.C = a < b
	v.CPU.Flags.O = (a^b)&(a^r)&0x8000_0000 != 0
}

func (v *VM) condHolds(op isa.Op) bool {
	f := v.CPU.Flags
	switch op {
	case isa.JE:
		return f.Z
	case isa.JNE:
		return !f.Z
	case isa.JL:
		return f.S != f.O
	case isa.JLE:
		return f.Z || f.S != f.O
	case isa.JG:
		return !f.Z && f.S == f.O
	case isa.JGE:
		return f.S == f.O
	case isa.JB:
		return f.C
	case isa.JBE:
		return f.C || f.Z
	case isa.JA:
		return !f.C && !f.Z
	case isa.JAE:
		return !f.C
	}
	return false
}

// intrCode identifies a pending software interrupt. Following the classic
// emulator design (a syscall stores its request on the machine and the
// dispatch loop services it at the block boundary), a SYS exit no longer
// threads a sentinel error through exec: syscall raises intrExit, exec
// returns normally, and the block executors service the interrupt after
// the terminating instruction. SYS ends a basic block, so the check costs
// one compare per block, not per instruction.
type intrCode uint8

const (
	intrNone intrCode = iota
	intrExit
)

// serviceInterrupt consumes the pending interrupt and produces the final
// run result. Only intrExit exists today.
func (v *VM) serviceInterrupt() RunResult {
	v.intr = intrNone
	return v.result(OutcomeExit, v.exitCode, nil, nil)
}

// errDivZero is the arithmetic fault DIVRR/MODRR raise on a zero divisor.
// Unguarded it terminates the run as a crash; monitor.FaultGuard checks
// the divisor first and converts the would-be fault into a monitored
// failure with stack provenance.
var errDivZero = errors.New("integer divide by zero")

// exec performs the instruction's semantics and returns the next PC.
func (v *VM) exec(in isa.Inst, addr uint32, ctx *Ctx) (uint32, error) {
	next := addr + isa.InstSize
	regs := &v.CPU.Regs
	switch in.Op {
	case isa.NOP:
	case isa.HALT:
		return 0, fmt.Errorf("halt instruction")
	case isa.MOVRI:
		regs[in.A] = uint32(in.Imm)
	case isa.MOVRR:
		regs[in.A] = regs[in.B]
	case isa.LOAD:
		val, err := v.Mem.Read32(v.effAddr(in))
		if err != nil {
			return 0, err
		}
		regs[in.A] = val
	case isa.LOADB:
		b, err := v.Mem.Read8(v.effAddr(in))
		if err != nil {
			return 0, err
		}
		regs[in.A] = uint32(b)
	case isa.STORE:
		if err := v.Mem.Write32(v.effAddr(in), regs[in.A]); err != nil {
			return 0, err
		}
	case isa.STOREB:
		if err := v.Mem.Write8(v.effAddr(in), byte(regs[in.A])); err != nil {
			return 0, err
		}
	case isa.LEA:
		regs[in.A] = v.effAddr(in)
	case isa.ADDRR:
		regs[in.A] += regs[in.B]
	case isa.ADDRI:
		regs[in.A] += uint32(in.Imm)
	case isa.SUBRR:
		regs[in.A] -= regs[in.B]
	case isa.SUBRI:
		regs[in.A] -= uint32(in.Imm)
	case isa.MULRR:
		regs[in.A] *= regs[in.B]
	case isa.MULRI:
		regs[in.A] *= uint32(in.Imm)
	case isa.DIVRR:
		if regs[in.B] == 0 {
			return 0, errDivZero
		}
		regs[in.A] = uint32(int32(regs[in.A]) / int32(regs[in.B]))
	case isa.MODRR:
		if regs[in.B] == 0 {
			return 0, errDivZero
		}
		regs[in.A] = uint32(int32(regs[in.A]) % int32(regs[in.B]))
	case isa.LOADA:
		a := v.effAddr(in)
		if a&3 != 0 {
			return 0, fmt.Errorf("unaligned 32-bit load at %#x", a)
		}
		val, err := v.Mem.Read32(a)
		if err != nil {
			return 0, err
		}
		regs[in.A] = val
	case isa.ANDRR:
		regs[in.A] &= regs[in.B]
	case isa.ANDRI:
		regs[in.A] &= uint32(in.Imm)
	case isa.ORRR:
		regs[in.A] |= regs[in.B]
	case isa.ORRI:
		regs[in.A] |= uint32(in.Imm)
	case isa.XORRR:
		regs[in.A] ^= regs[in.B]
	case isa.XORRI:
		regs[in.A] ^= uint32(in.Imm)
	case isa.SHLRI:
		regs[in.A] <<= uint32(in.Imm) & 31
	case isa.SHRRI:
		regs[in.A] >>= uint32(in.Imm) & 31
	case isa.SARRI:
		regs[in.A] = uint32(int32(regs[in.A]) >> (uint32(in.Imm) & 31))
	case isa.SEXTB:
		regs[in.A] = uint32(int32(int8(regs[in.A])))
	case isa.CMPRR:
		v.setCmpFlags(regs[in.A], regs[in.B])
	case isa.CMPRI:
		v.setCmpFlags(regs[in.A], uint32(in.Imm))
	case isa.JMP:
		return next + uint32(in.Imm), nil
	case isa.JMPR:
		t, err := ctx.TransferTarget()
		if err != nil {
			return 0, err
		}
		return t, nil
	case isa.CALL:
		if err := v.push(next); err != nil {
			return 0, err
		}
		return next + uint32(in.Imm), nil
	case isa.CALLR, isa.CALLM:
		t, err := ctx.TransferTarget()
		if err != nil {
			return 0, err
		}
		if err := v.push(next); err != nil {
			return 0, err
		}
		return t, nil
	case isa.RET:
		if ctx.hasOverride {
			t := ctx.overrideTarget
			v.CPU.Regs[isa.ESP] += 4
			return t, nil
		}
		t, err := v.pop()
		if err != nil {
			return 0, err
		}
		return t, nil
	case isa.PUSH:
		if err := v.push(regs[in.A]); err != nil {
			return 0, err
		}
	case isa.PUSHI:
		if err := v.push(uint32(in.Imm)); err != nil {
			return 0, err
		}
	case isa.POP:
		val, err := v.pop()
		if err != nil {
			return 0, err
		}
		regs[in.A] = val
	case isa.SYS:
		if err := v.syscall(in.Imm); err != nil {
			return 0, err
		}
	case isa.COPYB:
		if err := v.copyBlock(); err != nil {
			return 0, err
		}
	default:
		if in.Op.IsCondBranch() {
			if v.condHolds(in.Op) {
				return next + uint32(in.Imm), nil
			}
			return next, nil
		}
		return 0, fmt.Errorf("unimplemented opcode %s", in.Op)
	}
	return next, nil
}

// copyBlock executes COPYB page-run-at-a-time while preserving the
// byte-at-a-time semantics it replaces: registers advance per chunk and a
// fault mid-copy leaves the partial-progress state visible, exactly like
// an interrupted rep movsb; every copied byte still counts one step, and
// the step limit interrupts the copy at the same byte it always did.
// Chunks never cross a page boundary, never exceed the remaining step
// budget, and — when the destination chases the source upward — never
// exceed the src→dst distance, so a bulk copy re-reads previously written
// bytes on the next chunk just as the byte loop re-read them one at a
// time (the classic rep-movsb pattern-fill).
func (v *VM) copyBlock() error {
	regs := &v.CPU.Regs
	for regs[isa.ECX] != 0 {
		if v.steps >= v.maxSteps {
			return fmt.Errorf("step limit exceeded during block copy")
		}
		src, dst := regs[isa.ESI], regs[isa.EDI]
		run := regs[isa.ECX]
		if left := v.maxSteps - v.steps; uint64(run) > left {
			run = uint32(left)
		}
		if r := mem.PageSize - src%mem.PageSize; run > r {
			run = r
		}
		if r := mem.PageSize - dst%mem.PageSize; run > r {
			run = r
		}
		if dist := dst - src; dist != 0 && dist < run {
			run = dist
		}
		// Fault order matches the byte loop: the read is attempted first,
		// and the faulting byte's step is already counted when it faults.
		sp, err := v.Mem.ReadRun(src, run)
		if err != nil {
			v.steps++
			return err
		}
		dp, err := v.Mem.WriteRun(dst, run)
		if err != nil {
			v.steps++
			return err
		}
		copy(dp, sp)
		v.steps += uint64(run)
		regs[isa.ESI] += run
		regs[isa.EDI] += run
		regs[isa.ECX] -= run
	}
	return nil
}

func (v *VM) syscall(num int32) error {
	regs := &v.CPU.Regs
	switch num {
	case isa.SysExit:
		v.exitCode = regs[isa.EAX]
		v.intr = intrExit
		return nil
	case isa.SysAlloc:
		addr, err := v.Heap.Alloc(regs[isa.EAX])
		if err != nil {
			return err
		}
		regs[isa.EAX] = addr
	case isa.SysFree:
		return v.Heap.Free(regs[isa.EAX])
	case isa.SysRealloc:
		addr, err := v.Heap.Realloc(regs[isa.EAX], regs[isa.ECX])
		if err != nil {
			return err
		}
		regs[isa.EAX] = addr
	case isa.SysRead:
		max := int(regs[isa.ECX])
		n := len(v.input) - v.inPos
		if n > max {
			n = max
		}
		if n > 0 {
			if err := v.Mem.WriteBytes(regs[isa.EAX], v.input[v.inPos:v.inPos+n]); err != nil {
				return err
			}
			v.inPos += n
		}
		regs[isa.EAX] = uint32(n)
	case isa.SysWrite:
		data, err := v.Mem.ReadBytes(regs[isa.EAX], regs[isa.ECX])
		if err != nil {
			return err
		}
		v.output = append(v.output, data...)
	case isa.SysInAvail:
		regs[isa.EAX] = uint32(len(v.input) - v.inPos)
	case isa.SysSetEH:
		v.ehSlot = regs[isa.EAX]
	default:
		return fmt.Errorf("unknown syscall %d", num)
	}
	return nil
}

// dispatchException implements the SysSetEH fault model: when application
// semantics hit a memory fault and a handler record is registered, control
// transfers to the handler address stored in that record. The record lives
// in application memory (conventionally on the stack), so corruption can
// redirect the dispatch — which is why the transfer is submitted to the
// registered validator (Memory Firewall) first.
//
// Returns (target, nil, true) to continue execution at the handler,
// (0, failure, true) when the validator rejects the transfer, and
// (0, nil, false) when the fault is unhandled (ordinary crash).
func (v *VM) dispatchException(pc uint32, execErr error) (uint32, *Failure, bool) {
	var fault *mem.Fault
	if !errors.As(execErr, &fault) {
		return 0, nil, false
	}
	if v.ehSlot == 0 || v.ehDispatched {
		return 0, nil, false
	}
	v.ehDispatched = true // one dispatch per run: a faulting handler crashes
	handler, err := v.Mem.Read32(v.ehSlot)
	if err != nil {
		return 0, nil, false
	}
	if v.validator != nil {
		if f := v.validator(pc, handler); f != nil {
			return 0, f, true
		}
	}
	if !v.InCode(handler) {
		// No firewall and the handler points at injected bytes: on real
		// hardware the attacker's code would now run. The simulated
		// machine cannot execute non-code, so the compromise manifests
		// as an unhandled crash.
		return 0, nil, false
	}
	return handler, nil, true
}

// finishExec converts a non-nil exec error into either a continuation pc
// (exception-handler dispatch) or a final RunResult. Shared by the fast
// and instrumented dispatch loops so the two agree bit-for-bit on
// termination semantics.
func (v *VM) finishExec(addr uint32, err error) (pc uint32, res RunResult, done bool) {
	if f, ok := err.(*Failure); ok {
		if f.Stack == nil {
			f.Stack = v.snapshotStack()
		}
		return 0, v.result(OutcomeFailure, 0, f, nil), true
	}
	if target, f, handled := v.dispatchException(addr, err); handled {
		if f != nil {
			if f.Stack == nil {
				f.Stack = v.snapshotStack()
			}
			return 0, v.result(OutcomeFailure, 0, f, nil), true
		}
		return target, RunResult{}, false
	}
	return 0, v.result(OutcomeCrash, 0, nil, &Crash{PC: addr, Reason: err.Error()}), true
}

// Run executes until normal exit, monitor-detected failure, crash, or the
// step limit (treated as a hang crash).
//
// Dispatch is three-tier. Block heads that cross the trace-heat threshold
// get the hot path through them recorded and fused into a superblock
// (trace.go): decode consulted once, per-step guard checks hoisted to
// logical-block entry, side exits on path divergence or patch-point
// invalidation. Below that, blocks with no hooks on a machine with no
// snapshot sink run the fast loop (execBlockFast): no per-instruction Ctx
// construction, no snapshot or hook checks, and no allocations.
// Everything else runs the instrumented loop (execBlockHooked), which
// reuses the per-VM hook context so monitored dispatch is allocation-free
// too.
func (v *VM) Run() RunResult {
	pc := v.CPU.PC
	var prev *Block
	// A reused machine must not leak dispatch state between runs: the
	// entry edge of every run has From == 0 (the coverage.go Edge
	// contract), no trace recording spans runs, and no software interrupt
	// is pending.
	v.lastBlock = 0
	v.rec.active = false
	v.intr = intrNone
	for {
		if v.hangBudget != 0 && v.steps >= v.hangBudget {
			f := v.hangFail(pc, v.steps)
			if f.Stack == nil {
				f.Stack = v.snapshotStack()
			}
			return v.result(OutcomeFailure, 0, f, nil)
		}
		b, err := v.dispatch(prev, pc)
		if err != nil {
			return v.result(OutcomeCrash, 0, nil, &Crash{PC: pc, Reason: err.Error()})
		}
		prev = b

		if sb := b.sb; sb != nil && sb.gen == v.cacheGen {
			// The trace recorder cannot see the blocks a superblock runs,
			// so an in-flight recording of some other head is abandoned.
			v.rec.active = false
			npc, res, done := v.runSuperblock(sb)
			if done {
				return res
			}
			pc = npc
			continue
		}
		if v.traceThreshold != 0 {
			v.observeBlock(b)
		}

		var npc uint32
		var res RunResult
		var done bool
		if !b.hasHooks && v.snapSink == nil {
			npc, res, done = v.execBlockFast(b)
		} else {
			npc, res, done = v.execBlockHooked(b)
		}
		if done {
			return res
		}
		pc = npc
	}
}

// execBlockFast runs one unhooked basic block on a machine with no
// snapshot sink: no per-instruction Ctx construction and no allocations —
// the reusable fastCtx carries the (never set) disposition state exec
// consults for indirect transfers. Returns the successor pc, or the final
// result when the run terminated inside the block.
func (v *VM) execBlockFast(b *Block) (uint32, RunResult, bool) {
	insts := b.Insts
	for i := range insts {
		addr := b.Addrs[i]
		in := insts[i]
		v.CPU.PC = addr
		if v.steps >= v.maxSteps {
			return 0, v.result(OutcomeCrash, 0, nil, &Crash{PC: addr, Reason: "step limit exceeded (hang)"}), true
		}
		v.steps++
		v.fastCtx.PC = addr
		v.fastCtx.Inst = in
		next, err := v.exec(in, addr, &v.fastCtx)
		if err != nil {
			target, res, done := v.finishExec(addr, err)
			if done {
				return 0, res, true
			}
			return target, RunResult{}, false
		}
		if in.Op.EndsBlock() {
			if v.intr != intrNone {
				return 0, v.serviceInterrupt(), true
			}
			return next, RunResult{}, false
		}
	}
	// decodeBlock guarantees a terminator; fall through defensively.
	return b.Start + uint32(len(insts))*isa.InstSize, RunResult{}, false
}

// execBlockHooked runs one basic block under full instrumentation: the
// per-instruction snapshot check and the hook chains. The per-VM hookCtx
// is reused with its dispositions reset per instruction, so the monitored
// path performs no per-instruction allocation either.
func (v *VM) execBlockHooked(b *Block) (uint32, RunResult, bool) {
	ctx := &v.hookCtx
	for i := range b.Insts {
		addr := b.Addrs[i]
		in := b.Insts[i]
		v.CPU.PC = addr
		if v.steps >= v.maxSteps {
			return 0, v.result(OutcomeCrash, 0, nil, &Crash{PC: addr, Reason: "step limit exceeded (hang)"}), true
		}
		v.maybeSnapshot()
		v.steps++
		ctx.reset(addr, in)
		if b.hooks != nil {
			for _, he := range b.hooks[i] {
				v.hookRuns++
				if err := he.h(ctx); err != nil {
					if f, ok := err.(*Failure); ok {
						if f.Stack == nil {
							f.Stack = v.snapshotStack()
						}
						return 0, v.result(OutcomeFailure, 0, f, nil), true
					}
					return 0, v.result(OutcomeCrash, 0, nil, &Crash{PC: addr, Reason: err.Error()}), true
				}
				// A hook that diverts or suppresses the instruction
				// replaces it entirely: later hooks (monitors, tracing)
				// must not observe or validate an instruction that will
				// not execute.
				if ctx.hasJump || ctx.skip {
					break
				}
			}
		}
		if ctx.hasJump {
			return ctx.jumpTo, RunResult{}, false
		}
		if ctx.skip {
			if in.Op.EndsBlock() {
				return addr + isa.InstSize, RunResult{}, false
			}
			continue
		}
		next, err := v.exec(in, addr, ctx)
		if err != nil {
			target, res, done := v.finishExec(addr, err)
			if done {
				return 0, res, true
			}
			return target, RunResult{}, false
		}
		if in.Op.EndsBlock() {
			if v.intr != intrNone {
				return 0, v.serviceInterrupt(), true
			}
			return next, RunResult{}, false
		}
	}
	return b.Start + uint32(len(b.Insts))*isa.InstSize, RunResult{}, false
}
