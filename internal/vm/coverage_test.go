package vm

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/image"
	"repro/internal/isa"
)

// covImage assembles a three-block program: main branches on EAX, both
// arms join at a common exit.
func covImage(t *testing.T) *image.Image {
	t.Helper()
	a := asm.New(0x1000)
	a.Label("main")
	a.CmpRI(isa.EAX, 0)
	a.Je("else")
	a.MovRI(isa.EBX, 1)
	a.Jmp("exit")
	a.Label("else")
	a.MovRI(isa.EBX, 2)
	a.Label("exit")
	a.MovRI(isa.EAX, 0)
	a.Sys(isa.SysExit)
	code, labels, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return &image.Image{Base: 0x1000, Entry: labels["main"], Code: code}
}

func runWithCoverage(t *testing.T, img *image.Image) *Coverage {
	t.Helper()
	cov := NewCoverage()
	machine, err := New(Config{Image: img, Coverage: cov})
	if err != nil {
		t.Fatal(err)
	}
	if res := machine.Run(); res.Outcome != OutcomeExit {
		t.Fatalf("run did not exit: %+v", res)
	}
	return cov
}

func TestCoverageRecordsEntryEdge(t *testing.T) {
	img := covImage(t)
	cov := runWithCoverage(t, img)
	if got := cov.Hits(Edge{From: 0, To: img.Entry}); got != 1 {
		t.Fatalf("entry edge hit %d times, want 1", got)
	}
	if cov.EdgeCount() == 0 || cov.BlockCount() == 0 {
		t.Fatalf("no coverage recorded: %d edges, %d blocks", cov.EdgeCount(), cov.BlockCount())
	}
}

func TestCoverageDistinguishesPaths(t *testing.T) {
	img := covImage(t)
	// EAX starts 0, so the JE arm runs: the fallthrough arm's edges must
	// be absent and a second identical run must add no new edges.
	cov := runWithCoverage(t, img)
	again := runWithCoverage(t, img)
	probe := NewCoverage()
	if novel := probe.Merge(cov); novel != cov.EdgeCount() {
		t.Fatalf("merge into empty found %d novel edges, want %d", novel, cov.EdgeCount())
	}
	if novel := probe.Merge(again); novel != 0 {
		t.Fatalf("identical run contributed %d novel edges, want 0", novel)
	}
	if probe.TotalHits() != cov.TotalHits()+again.TotalHits() {
		t.Fatalf("merged hits %d, want %d", probe.TotalHits(), cov.TotalHits()+again.TotalHits())
	}
}

func TestCoverageDeterministicHash(t *testing.T) {
	img := covImage(t)
	h1 := runWithCoverage(t, img).Hash()
	h2 := runWithCoverage(t, img).Hash()
	if h1 != h2 {
		t.Fatalf("same program, different coverage hashes: %#x vs %#x", h1, h2)
	}
	if h1 == NewCoverage().Hash() {
		t.Fatal("non-empty coverage hashed like empty coverage")
	}
}

func TestCoverageEdgesSorted(t *testing.T) {
	img := covImage(t)
	edges := runWithCoverage(t, img).Edges()
	for i := 1; i < len(edges); i++ {
		a, b := edges[i-1], edges[i]
		if a.From > b.From || (a.From == b.From && a.To >= b.To) {
			t.Fatalf("edges not strictly sorted at %d: %+v then %+v", i, a, b)
		}
	}
}

func TestCoverageZeroCostWhenAbsent(t *testing.T) {
	img := covImage(t)
	machine, err := New(Config{Image: img})
	if err != nil {
		t.Fatal(err)
	}
	machine.Run()
	if machine.Coverage() != nil {
		t.Fatal("machine invented a coverage accumulator")
	}
}
