package correlate

import (
	"reflect"
	"testing"

	"repro/internal/daikon"
)

// TestClassifyTable covers the classification edge cases as one table:
// empty inputs, zero-correlation shapes, single-observation runs, and the
// boundary between the tiers.
func TestClassifyTable(t *testing.T) {
	cases := []struct {
		name string
		runs []RunLog
		want map[string]Correlation
	}{
		{
			name: "no runs",
			runs: nil,
			want: map[string]Correlation{},
		},
		{
			name: "only normal runs",
			runs: []RunLog{
				{Detected: false, Obs: []Observation{obs("i", false), obs("i", true)}},
				{Detected: false, Obs: []Observation{obs("i", false)}},
			},
			want: map[string]Correlation{},
		},
		{
			name: "all checks pass in every failing run",
			runs: []RunLog{
				{Detected: true, Obs: []Observation{obs("i", true), obs("i", true)}},
				{Detected: true, Obs: []Observation{obs("i", true)}},
			},
			want: map[string]Correlation{"i": NotCorrelated},
		},
		{
			name: "single observation violated in every failing run",
			runs: []RunLog{
				{Detected: true, Obs: []Observation{obs("i", false)}},
				{Detected: true, Obs: []Observation{obs("i", false)}},
			},
			want: map[string]Correlation{"i": HighlyCorrelated},
		},
		{
			name: "violated last everywhere with one extra violation",
			runs: []RunLog{
				{Detected: true, Obs: []Observation{obs("i", false), obs("i", false)}},
				{Detected: true, Obs: []Observation{obs("i", true), obs("i", false)}},
			},
			want: map[string]Correlation{"i": ModeratelyCorrelated},
		},
		{
			name: "violation only in a run that did not fail",
			runs: []RunLog{
				{Detected: false, Obs: []Observation{obs("i", false)}},
				{Detected: true, Obs: []Observation{obs("i", true)}},
			},
			want: map[string]Correlation{"i": NotCorrelated},
		},
		{
			name: "unchecked in a later failing run demotes to slightly",
			runs: []RunLog{
				{Detected: true, Obs: []Observation{obs("i", false)}},
				{Detected: true, Obs: nil},
			},
			want: map[string]Correlation{"i": SlightlyCorrelated},
		},
		{
			name: "unchecked in an earlier failing run demotes to slightly",
			runs: []RunLog{
				{Detected: true, Obs: nil},
				{Detected: true, Obs: []Observation{obs("i", false)}},
			},
			want: map[string]Correlation{"i": SlightlyCorrelated},
		},
		{
			name: "two invariants classified independently",
			runs: []RunLog{
				{Detected: true, Obs: []Observation{obs("a", false), obs("b", true)}},
				{Detected: true, Obs: []Observation{obs("a", false), obs("b", true)}},
			},
			want: map[string]Correlation{"a": HighlyCorrelated, "b": NotCorrelated},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Classify(tc.runs)
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("Classify = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestSelectForRepairTies: candidates tied at the same correlation tier
// are all selected and keep their selection order — the evaluator's
// deterministic tie-break depends on receiving them in a stable order.
func TestSelectForRepairTies(t *testing.T) {
	mk := func(pc uint32) Candidate {
		return Candidate{Inv: &daikon.Invariant{Kind: daikon.KindLowerBound, Var: v(pc, 0)}}
	}
	c1, c2, c3 := mk(0x100), mk(0x108), mk(0x110)
	cands := []Candidate{c1, c2, c3}

	tied := map[string]Correlation{
		c1.Inv.ID(): HighlyCorrelated,
		c2.Inv.ID(): HighlyCorrelated,
		c3.Inv.ID(): HighlyCorrelated,
	}
	got := SelectForRepair(cands, tied)
	if len(got) != 3 {
		t.Fatalf("tied candidates: selected %d of 3", len(got))
	}
	for i := range got {
		if got[i].Inv != cands[i].Inv {
			t.Fatalf("selection reordered tied candidates at %d", i)
		}
	}

	// An empty correlation map (nothing was ever violated) selects nothing.
	if got := SelectForRepair(cands, map[string]Correlation{}); len(got) != 0 {
		t.Fatalf("zero-correlation selection returned %d candidates", len(got))
	}

	// All slightly correlated: the gating admits neither tier.
	slight := map[string]Correlation{
		c1.Inv.ID(): SlightlyCorrelated,
		c2.Inv.ID(): SlightlyCorrelated,
		c3.Inv.ID(): SlightlyCorrelated,
	}
	if got := SelectForRepair(cands, slight); len(got) != 0 {
		t.Fatalf("slightly-correlated-only selection returned %d candidates", len(got))
	}

	// SelectAllCorrelated (the ablation baseline) admits all three tiers.
	mixed := map[string]Correlation{
		c1.Inv.ID(): SlightlyCorrelated,
		c2.Inv.ID(): NotCorrelated,
		c3.Inv.ID(): ModeratelyCorrelated,
	}
	if got := SelectAllCorrelated(cands, mixed); len(got) != 2 {
		t.Fatalf("SelectAllCorrelated returned %d candidates, want 2", len(got))
	}
}

// TestClassifyDeterministic: Classify over the same logs yields the same
// map however many times it runs (it iterates internal maps; the result,
// not the iteration, must be what is observable).
func TestClassifyDeterministic(t *testing.T) {
	runs := []RunLog{
		{Detected: true, Obs: []Observation{obs("a", false), obs("b", true), obs("c", false)}},
		{Detected: true, Obs: []Observation{obs("a", false), obs("c", true)}},
		{Detected: false, Obs: []Observation{obs("b", false)}},
	}
	first := Classify(runs)
	for i := 0; i < 10; i++ {
		if got := Classify(runs); !reflect.DeepEqual(got, first) {
			t.Fatalf("classification changed between runs: %v vs %v", got, first)
		}
	}
}
