package community

import (
	"fmt"
	"sync"

	"repro/internal/obs"
)

// logEntry is one replicated root envelope: the message and the sender
// identity its connection was bound to when the leader applied it.
// Manager state is a deterministic function of the applied envelope
// sequence, so shipping (envelope, sender) pairs is full state
// replication.
type logEntry struct {
	env    Envelope
	sender string
}

// RootGroup replicates the central manager: a leader serves the community
// while hot followers apply the same envelope stream in the same order, so
// any follower's learn database, directive state, case machines, and
// quarantine set are the leader's. FailLeader promotes the senior follower
// mid-campaign — clients re-dial and resume against state identical to the
// crashed leader's — and rebuilds a replacement follower by replaying the
// group's log, restoring the replication factor.
//
// Replies are part of the state machine too: generating a node's
// directives assigns evaluation candidates (caseState.assignFor mutates
// per-case assignment), so followers generate and discard every reply the
// leader sends. The group lock serializes root handling; the community's
// concurrency lives at the aggregator tier, which keeps root traffic
// O(aggregators).
type RootGroup struct {
	mu        sync.Mutex
	conf      ManagerConfig
	leader    *Manager
	followers []*Manager
	log       []logEntry
	conns     map[Conn]bool
	closed    bool

	cFailovers  *obs.Counter // root.failovers
	cLogEntries *obs.Counter // root.log_entries
	cReplayed   *obs.Counter // root.log_replayed
}

// NewRootGroup builds a leader from conf plus `followers` hot replicas.
// Followers run with tracing disabled (their spans would double-count the
// pipeline) but keep private counters, so a promoted follower's accessors
// report the same envelope stream the old leader's did. reg (nil ok)
// receives the root.* replication counters.
func NewRootGroup(conf ManagerConfig, followers int, reg *obs.Registry) (*RootGroup, error) {
	leader, err := NewManager(conf)
	if err != nil {
		return nil, err
	}
	g := &RootGroup{
		conf:        conf,
		leader:      leader,
		conns:       make(map[Conn]bool),
		cFailovers:  reg.Counter("root.failovers"),
		cLogEntries: reg.Counter("root.log_entries"),
		cReplayed:   reg.Counter("root.log_replayed"),
	}
	for i := 0; i < followers; i++ {
		f, err := NewManager(g.followerConf())
		if err != nil {
			return nil, err
		}
		g.followers = append(g.followers, f)
	}
	return g, nil
}

// followerConf is the leader's config with tracing stripped: followers
// apply the same envelopes, and tracing them would double every pipeline
// span and counter in the shared registry.
func (g *RootGroup) followerConf() ManagerConfig {
	conf := g.conf
	conf.Obs = nil
	return conf
}

// Serve handles one connection (an aggregator's upstream, or a directly
// attached node) until it closes — the replicated analog of
// Manager.Serve. Connections are tracked so a leader crash can sever them:
// clients must re-dial and reach the promoted leader.
func (g *RootGroup) Serve(conn Conn) error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		_ = conn.Close()
		return fmt.Errorf("community: root group is closed")
	}
	g.conns[conn] = true
	g.mu.Unlock()
	defer func() {
		g.mu.Lock()
		delete(g.conns, conn)
		g.mu.Unlock()
		_ = conn.Close()
	}()
	var sender string
	for {
		env, err := conn.Recv()
		if err != nil {
			return err
		}
		reply, err := g.handle(env, &sender)
		if err != nil {
			return err
		}
		reply.Token = env.Token // correlate; see Envelope.Token
		if err := conn.Send(reply); err != nil {
			return err
		}
	}
}

// handle applies one envelope to the leader and, on success, appends it to
// the replay log and applies it to every follower (replies generated and
// discarded; see RootGroup). An envelope the leader rejects replicates
// nowhere — the log holds exactly the accepted stream.
func (g *RootGroup) handle(env Envelope, bound *string) (Envelope, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	reply, err := g.leader.handle(env, bound)
	if err != nil {
		return Envelope{}, err
	}
	g.log = append(g.log, logEntry{env: env, sender: *bound})
	g.cLogEntries.Inc()
	for _, f := range g.followers {
		// The leader's bindSender already pinned the connection to *bound,
		// so the follower's own binding (seeded with the same identity)
		// accepts exactly what the leader accepted.
		fbound := *bound
		if _, ferr := f.handle(env, &fbound); ferr != nil {
			return Envelope{}, fmt.Errorf("community: root replica diverged: %w", ferr)
		}
	}
	return reply, nil
}

// FailLeader simulates the root manager crashing mid-campaign: every live
// connection is severed (clients re-dial and reach the new leader), the
// senior follower — whose state is byte-for-byte the crashed leader's — is
// promoted, and a replacement follower is rebuilt by replaying the log, so
// the group tolerates the next crash too.
func (g *RootGroup) FailLeader() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.followers) == 0 {
		return fmt.Errorf("community: root group has no follower to promote")
	}
	g.leader = g.followers[0]
	g.followers = g.followers[1:]
	g.cFailovers.Inc()
	for c := range g.conns {
		_ = c.Close()
	}
	g.conns = make(map[Conn]bool)
	f, err := g.rebuildLocked()
	if err != nil {
		return err
	}
	g.followers = append(g.followers, f)
	return nil
}

// rebuildLocked bootstraps a fresh follower from the replay log. Called
// with g.mu held — root traffic waits while the replica catches up, which
// is the price of rejoining with full state.
func (g *RootGroup) rebuildLocked() (*Manager, error) {
	f, err := NewManager(g.followerConf())
	if err != nil {
		return nil, err
	}
	for i := range g.log {
		bound := g.log[i].sender
		if _, err := f.handle(g.log[i].env, &bound); err != nil {
			return nil, fmt.Errorf("community: root log replay diverged at entry %d: %w", i, err)
		}
		g.cReplayed.Inc()
	}
	return f, nil
}

// Leader returns the current leader, for the accessors the soak's
// accounting reads (Messages, Quarantined, CaseStates, ...). The promoted
// follower applied the same envelope stream, so its counters continue the
// crashed leader's.
func (g *RootGroup) Leader() *Manager {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.leader
}

// Followers returns the current replication factor (for tests).
func (g *RootGroup) Followers() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.followers)
}

// LogLen returns the replay log's length (for tests and reporting).
func (g *RootGroup) LogLen() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.log)
}

// Close severs every live connection and stops accepting new ones.
func (g *RootGroup) Close() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.closed = true
	for c := range g.conns {
		_ = c.Close()
	}
	g.conns = make(map[Conn]bool)
	return nil
}
