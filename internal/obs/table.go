package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
	"unicode/utf8"
)

// Col describes one column of a FormatTable rendering: its header, its
// alignment (numeric columns read best right-aligned), a minimum width,
// and the gap (spaces) separating it from the previous column. A zero Gap
// means the default single space; the first column's gap is ignored.
type Col struct {
	Head  string
	Right bool
	Min   int
	Gap   int
}

// FormatTable renders header + rows as an aligned monospace table: each
// column is as wide as its widest cell (but at least Col.Min), left- or
// right-aligned per Col.Right. It is the shared renderer behind the
// per-stage profile table and cmd/perfvc's verdict table, so every
// terminal-facing table in the pipeline lines up the same way.
func FormatTable(cols []Col, rows [][]string) string {
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = utf8.RuneCountInString(c.Head)
		if c.Min > widths[i] {
			widths[i] = c.Min
		}
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && utf8.RuneCountInString(cell) > widths[i] {
				widths[i] = utf8.RuneCountInString(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cols {
			if i > 0 {
				gap := c.Gap
				if gap == 0 {
					gap = 1
				}
				b.WriteString(strings.Repeat(" ", gap))
			}
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			pad := widths[i] - utf8.RuneCountInString(cell)
			if pad < 0 {
				pad = 0
			}
			// The last column never carries trailing padding.
			switch {
			case c.Right:
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(cell)
			case i == len(cols)-1:
				b.WriteString(cell)
			default:
				b.WriteString(cell)
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	heads := make([]string, len(cols))
	for i, c := range cols {
		heads[i] = c.Head
	}
	writeRow(heads)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// FormatStageTable renders a snapshot's stages as the per-stage
// wall/on-CPU/blocked table `cmd/soak -profile` prints, sorted by blocked
// time descending (the convoy you should look at first is the first row),
// with wall time as the tiebreak. Durations are rounded for reading; the
// JSON snapshot carries the exact nanoseconds.
func FormatStageTable(snap *Snapshot) string {
	stages := make([]StageSnap, len(snap.Stages))
	copy(stages, snap.Stages)
	sort.SliceStable(stages, func(i, j int) bool {
		if stages[i].BlockedNs != stages[j].BlockedNs {
			return stages[i].BlockedNs > stages[j].BlockedNs
		}
		if stages[i].WallNs != stages[j].WallNs {
			return stages[i].WallNs > stages[j].WallNs
		}
		return stages[i].Name < stages[j].Name
	})
	rows := make([][]string, 0, len(stages))
	for i := range stages {
		st := &stages[i]
		topWait := "-"
		if top := st.TopPoint(); top != nil && st.BlockedNs > 0 {
			topWait = fmt.Sprintf("%s (%.0f%%)", top.Point,
				100*float64(top.BlockedNs)/float64(st.BlockedNs))
		}
		rows = append(rows, []string{
			st.Name, fmt.Sprintf("%d", st.Spans),
			fmtDur(st.WallNs), fmtDur(st.OnCPUNs), fmtDur(st.BlockedNs),
			fmt.Sprintf("%.1f%%", 100*st.BlockedShare()), topWait,
		})
	}
	return FormatTable([]Col{
		{Head: "stage", Min: 16},
		{Head: "spans", Right: true, Min: 8},
		{Head: "wall", Right: true, Min: 10},
		{Head: "on-cpu", Right: true, Min: 10},
		{Head: "blocked", Right: true, Min: 10},
		{Head: "blk%", Right: true, Min: 6},
		{Head: "top wait (share of blocked)", Gap: 2},
	}, rows)
}

// TopBlockedStage returns the stage with the most blocked time, or nil
// when nothing blocked at all.
func TopBlockedStage(snap *Snapshot) *StageSnap {
	var top *StageSnap
	for i := range snap.Stages {
		st := &snap.Stages[i]
		if st.BlockedNs > 0 && (top == nil || st.BlockedNs > top.BlockedNs) {
			top = st
		}
	}
	return top
}

// fmtDur renders nanoseconds at three significant-ish digits, never wider
// than the table column.
func fmtDur(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d == 0:
		return "0"
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", ns)
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%.1fs", float64(ns)/1e9)
	}
}
