package redteam

import "testing"

// TestTable3Structure pins the structural content of the Table 3
// reproduction: phase counts, invariant-kind vectors, and the unsuccessful
// repair runs for the exploits the paper calls out.
func TestTable3Structure(t *testing.T) {
	rows, err := RunTable3()
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]Table3Row{}
	for _, r := range rows {
		byID[r.Bugzilla] = r
	}

	// Fifteen rows: ten paper exploits with 311710 split into a/b/c, plus
	// the three extended failure classes.
	if len(rows) != 15 {
		t.Fatalf("rows = %d, want 15", len(rows))
	}
	for _, id := range []string{"311710a", "311710b", "311710c"} {
		if _, ok := byID[id]; !ok {
			t.Fatalf("missing row %s", id)
		}
	}

	for id, r := range byID {
		// Every campaign: exactly one detection run and two checking runs
		// (the §4.3.1 minimum-four-presentations arithmetic).
		if r.DetectRuns != 1 {
			t.Errorf("%s: detect runs = %d", id, r.DetectRuns)
		}
		if r.CheckRuns != 2 {
			t.Errorf("%s: check runs = %d", id, r.CheckRuns)
		}
		if r.ChecksBuilt == [5]int{} {
			t.Errorf("%s: no invariant checks built", id)
		}
		if r.CheckExecs == 0 || r.CheckViol == 0 {
			t.Errorf("%s: checks %d, violations %d", id, r.CheckExecs, r.CheckViol)
		}
	}

	// The unsuccessful-repair pattern of §4.3.1/Table 3: two failed
	// repairs before success for the uninitialized-reallocation pair, one
	// for 295854, none for the first-patch-works exploits.
	wantUnsucc := map[string]int{
		"269095": 2, "320182": 2, "295854": 1,
		"290162": 0, "296134": 0, "312278": 0,
		"311710a": 0, "311710b": 0, "311710c": 0,
		"285595": 0, "325403": 0,
		"div-zero": 0, "unaligned": 0, "hang-loop": 0,
	}
	for id, want := range wantUnsucc {
		if got := byID[id].Unsuccessful; got != want {
			t.Errorf("%s: unsuccessful = %d, want %d", id, got, want)
		}
	}

	// 307259: never patched, some repairs tried and discarded.
	r307 := byID["307259"]
	if r307.Patched {
		t.Error("307259 patched")
	}
	if r307.Unsuccessful == 0 {
		t.Error("307259: no unsuccessful repairs recorded")
	}
	// It is also the checks-executed outlier among the paper's rows (the
	// copy-loop checks run per byte), echoing the paper's (7444/29428)
	// row. hang-loop is excluded: its checking runs spin a loop until the
	// HangGuard budget, so its check count dwarfs every per-byte loop by
	// construction.
	for id, r := range byID {
		if id != "307259" && id != "hang-loop" && r.CheckExecs >= r307.CheckExecs {
			t.Errorf("%s executed %d checks, >= the 307259 outlier's %d", id, r.CheckExecs, r307.CheckExecs)
		}
	}
	if byID["hang-loop"].CheckExecs <= r307.CheckExecs {
		t.Error("hang-loop checking should out-execute every finite campaign (its loop spins to the budget)")
	}

	// The memory-management exploits repair through a one-of invariant;
	// the bounds exploits through lower-bound/less-than (§4.4.4's [x,y,z]
	// vectors).
	for _, id := range []string{"269095", "290162", "295854", "312278", "320182"} {
		if byID[id].RepairsBuilt[0] == 0 {
			t.Errorf("%s: no one-of repairs", id)
		}
	}
	for _, id := range []string{"296134", "285595"} {
		if byID[id].RepairsBuilt[1] == 0 {
			t.Errorf("%s: no lower-bound repairs", id)
		}
	}
	if byID["325403"].RepairsBuilt[1] == 0 && byID["325403"].RepairsBuilt[2] == 0 {
		t.Error("325403: no bound repairs")
	}

	// The extended classes repair through the new invariant families:
	// nonzero for the zero divisor and the zero loop stride, modulus for
	// the misaligned walk ([x,y,z,nz,mod] vector slots 3 and 4).
	for _, id := range []string{"div-zero", "hang-loop"} {
		if byID[id].RepairsBuilt[3] == 0 {
			t.Errorf("%s: no nonzero repairs", id)
		}
	}
	if byID["unaligned"].RepairsBuilt[4] == 0 {
		t.Error("unaligned: no modulus repairs")
	}

	// The three 311710 clones are genuine copy-paste: identical
	// per-clone breakdowns.
	a, bb, c := byID["311710a"], byID["311710b"], byID["311710c"]
	if a.ChecksBuilt != bb.ChecksBuilt || bb.ChecksBuilt != c.ChecksBuilt {
		t.Errorf("311710 clones differ in checks: %v %v %v", a.ChecksBuilt, bb.ChecksBuilt, c.ChecksBuilt)
	}
	if a.RepairsBuilt != bb.RepairsBuilt || bb.RepairsBuilt != c.RepairsBuilt {
		t.Errorf("311710 clones differ in repairs: %v %v %v", a.RepairsBuilt, bb.RepairsBuilt, c.RepairsBuilt)
	}
}

// TestTable1Report checks the report generator against the expectations
// the test suite pins elsewhere.
func TestTable1Report(t *testing.T) {
	rows, err := RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 13 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.Blocked {
			t.Errorf("%s: not blocked", r.Bugzilla)
		}
		want, listed := expectedPresentations[r.Bugzilla]
		if !listed {
			if r.Patched {
				t.Errorf("%s: unexpectedly patched", r.Bugzilla)
			}
			continue
		}
		if !r.Patched || r.Presentations != want {
			t.Errorf("%s: %d presentations (patched=%v), want %d", r.Bugzilla, r.Presentations, r.Patched, want)
		}
	}
	s := Summarize(rows)
	if s.Blocked != 13 || s.Patched != 12 || s.NeverRepairable != 1 {
		t.Errorf("summary = %+v", s)
	}
	if s.MeanPresent < 4 || s.MeanPresent > 7 {
		t.Errorf("mean presentations = %.1f, outside the paper's ballpark (5.4)", s.MeanPresent)
	}
}
