package correlate

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/daikon"
	"repro/internal/image"
	"repro/internal/isa"
	"repro/internal/vm"
)

func v(pc uint32, slot uint8) daikon.VarID { return daikon.VarID{PC: pc, Slot: slot} }

func obs(id string, sat bool) Observation {
	return Observation{InvID: id, FailureID: "f", Satisfied: sat}
}

func TestClassifyHighly(t *testing.T) {
	runs := []RunLog{
		{Detected: true, Obs: []Observation{obs("i", true), obs("i", true), obs("i", false)}},
		{Detected: true, Obs: []Observation{obs("i", true), obs("i", false)}},
	}
	if got := Classify(runs)["i"]; got != HighlyCorrelated {
		t.Errorf("got %v, want highly", got)
	}
}

func TestClassifyModerately(t *testing.T) {
	runs := []RunLog{
		{Detected: true, Obs: []Observation{obs("i", false), obs("i", false)}},
		{Detected: true, Obs: []Observation{obs("i", true), obs("i", false)}},
	}
	if got := Classify(runs)["i"]; got != ModeratelyCorrelated {
		t.Errorf("got %v, want moderately", got)
	}
}

func TestClassifySlightly(t *testing.T) {
	// Violated mid-run once, but satisfied at the last check of one
	// failing run: only slightly correlated.
	runs := []RunLog{
		{Detected: true, Obs: []Observation{obs("i", false), obs("i", true)}},
		{Detected: true, Obs: []Observation{obs("i", true), obs("i", false)}},
	}
	if got := Classify(runs)["i"]; got != SlightlyCorrelated {
		t.Errorf("got %v, want slightly", got)
	}
}

func TestClassifyNot(t *testing.T) {
	runs := []RunLog{
		{Detected: true, Obs: []Observation{obs("i", true), obs("i", true)}},
		{Detected: true, Obs: []Observation{obs("i", true)}},
	}
	if got := Classify(runs)["i"]; got != NotCorrelated {
		t.Errorf("got %v, want not", got)
	}
}

func TestClassifyUncheckedInOneFailingRun(t *testing.T) {
	// Checked and violated-last in run 1, never executed in failing run 2:
	// cannot be highly or moderately correlated.
	runs := []RunLog{
		{Detected: true, Obs: []Observation{obs("i", false)}},
		{Detected: true, Obs: nil},
	}
	if got := Classify(runs)["i"]; got != SlightlyCorrelated {
		t.Errorf("got %v, want slightly", got)
	}
}

func TestClassifyIgnoresNormalRuns(t *testing.T) {
	// Violations in non-detecting runs do not affect the classification.
	runs := []RunLog{
		{Detected: false, Obs: []Observation{obs("i", false)}},
		{Detected: true, Obs: []Observation{obs("i", true), obs("i", false)}},
	}
	if got := Classify(runs)["i"]; got != HighlyCorrelated {
		t.Errorf("got %v, want highly", got)
	}
}

func TestSelectForRepairGating(t *testing.T) {
	mk := func(pc uint32) Candidate {
		return Candidate{Inv: &daikon.Invariant{Kind: daikon.KindLowerBound, Var: v(pc, 0)}}
	}
	c1, c2, c3 := mk(0x100), mk(0x108), mk(0x110)
	cands := []Candidate{c1, c2, c3}
	corr := map[string]Correlation{
		c1.Inv.ID(): HighlyCorrelated,
		c2.Inv.ID(): ModeratelyCorrelated,
		c3.Inv.ID(): SlightlyCorrelated,
	}
	got := SelectForRepair(cands, corr)
	if len(got) != 1 || got[0].Inv != c1.Inv {
		t.Fatalf("with a highly correlated invariant, only it is selected; got %v", got)
	}
	// Without any highly correlated invariant, moderately wins.
	corr[c1.Inv.ID()] = NotCorrelated
	got = SelectForRepair(cands, corr)
	if len(got) != 1 || got[0].Inv != c2.Inv {
		t.Fatalf("moderately gating wrong: %v", got)
	}
	// Slightly correlated invariants never produce repairs.
	corr[c2.Inv.ID()] = NotCorrelated
	if got = SelectForRepair(cands, corr); len(got) != 0 {
		t.Fatalf("slightly correlated produced repairs: %v", got)
	}
}

// buildProgram assembles a caller/callee pair for candidate selection.
func buildProgram(t *testing.T) (*image.Image, map[string]uint32, *cfg.DB) {
	t.Helper()
	a := asm.New(0x1000)
	a.Label("main")
	a.MovRI(isa.EDX, 7)
	a.Label("callsite")
	a.Call("leaf")
	a.MovRI(isa.EAX, 0)
	a.Sys(isa.SysExit)
	a.Label("leaf")
	a.MovRR(isa.ECX, isa.EDX)
	a.Label("failhere")
	a.Ret()
	code, labels, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	img := &image.Image{Base: 0x1000, Entry: labels["main"], Code: code}
	db := cfg.NewDB(img)
	db.NoteBlockExec(labels["main"])
	db.NoteBlockExec(labels["leaf"])
	return img, labels, db
}

func TestSelectCandidatesScopesToLowestProc(t *testing.T) {
	_, labels, cfgdb := buildProgram(t)
	inv := daikon.NewDB()
	leafInv := &daikon.Invariant{Kind: daikon.KindLowerBound, Var: v(labels["leaf"], 0), Bound: 1}
	mainInv := &daikon.Invariant{Kind: daikon.KindLowerBound, Var: v(labels["main"], 0), Bound: 1}
	inv.Add(leafInv)
	inv.Add(mainInv)

	stack := []uint32{labels["callsite"] + isa.InstSize}
	got := SelectCandidates(inv, cfgdb, labels["failhere"], stack, Config{StackScope: 1})
	if len(got) != 1 || got[0].Inv != leafInv || got[0].Depth != 0 {
		t.Fatalf("scope 1 candidates = %+v", got)
	}

	got = SelectCandidates(inv, cfgdb, labels["failhere"], stack, Config{StackScope: 2})
	if len(got) != 2 {
		t.Fatalf("scope 2 candidates = %+v", got)
	}
	if got[1].Inv != mainInv || got[1].Depth != 1 {
		t.Errorf("caller candidate = %+v", got[1])
	}
}

func TestSelectCandidatesSkipsEmptyProcs(t *testing.T) {
	// "The lowest procedure on the stack WITH invariants": a leaf with no
	// invariants does not consume the scope budget.
	_, labels, cfgdb := buildProgram(t)
	inv := daikon.NewDB()
	mainInv := &daikon.Invariant{Kind: daikon.KindLowerBound, Var: v(labels["main"], 0), Bound: 1}
	inv.Add(mainInv)

	stack := []uint32{labels["callsite"] + isa.InstSize}
	got := SelectCandidates(inv, cfgdb, labels["failhere"], stack, Config{StackScope: 1})
	if len(got) != 1 || got[0].Inv != mainInv {
		t.Fatalf("candidates = %+v", got)
	}
}

func TestSelectCandidatesTwoVarSameBlockOnly(t *testing.T) {
	// A two-variable invariant checked outside the failure instruction's
	// basic block must be excluded (§2.4.1's optimization).
	a := asm.New(0x1000)
	a.Label("f")
	a.MovRI(isa.EDX, 1) // block 1 (ends at branch)
	a.MovRI(isa.ECX, 2)
	a.CmpRI(isa.EDX, 0)
	a.Je("end")
	a.Label("block2")
	a.MovRR(isa.EBX, isa.ECX)
	a.Label("fail2")
	a.MovRR(isa.ESI, isa.EBX)
	a.Label("end")
	a.Ret()
	code, labels, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	img := &image.Image{Base: 0x1000, Entry: labels["f"], Code: code}
	cfgdb := cfg.NewDB(img)
	cfgdb.NoteBlockExec(labels["f"])

	inv := daikon.NewDB()
	// Two-var invariant inside block 1 (checked at its second instr).
	crossBlock := &daikon.Invariant{
		Kind: daikon.KindLessThan,
		Var:  v(labels["f"], 0), Var2: v(labels["f"]+8, 0),
	}
	// Two-var invariant inside block 2, same block as the failure.
	sameBlock := &daikon.Invariant{
		Kind: daikon.KindLessThan,
		Var:  v(labels["block2"], 0), Var2: v(labels["fail2"], 0),
	}
	// One-var invariant in block 1: always a candidate (predominator).
	oneVar := &daikon.Invariant{Kind: daikon.KindLowerBound, Var: v(labels["f"], 0)}
	inv.Add(crossBlock)
	inv.Add(sameBlock)
	inv.Add(oneVar)

	got := SelectCandidates(inv, cfgdb, labels["fail2"], nil, Config{StackScope: 1})
	found := map[string]bool{}
	for _, c := range got {
		found[c.Inv.ID()] = true
	}
	if found[crossBlock.ID()] {
		t.Error("cross-block two-var invariant selected")
	}
	if !found[sameBlock.ID()] {
		t.Error("same-block two-var invariant not selected")
	}
	if !found[oneVar.ID()] {
		t.Error("one-var predominator invariant not selected")
	}
}

func TestCheckSetObservesAndCounts(t *testing.T) {
	// Run a tiny program with a checking patch installed and verify the
	// observation stream and violation accounting.
	a := asm.New(0x1000)
	a.Label("main")
	a.MovRI(isa.EDX, 3)
	a.Label("site")
	a.MovRR(isa.ECX, isa.EDX)
	a.MovRI(isa.EAX, 0)
	a.Sys(isa.SysExit)
	code, labels, _ := a.Assemble()
	img := &image.Image{Base: 0x1000, Entry: labels["main"], Code: code}

	inv := &daikon.Invariant{Kind: daikon.KindLowerBound, Var: v(labels["site"], 0), Bound: 5}
	cs := BuildCheckSet("fail@x", []Candidate{{Inv: inv}})
	if len(cs.Patches) != 1 {
		t.Fatalf("patches = %d", len(cs.Patches))
	}
	cs.StartRun()
	machine, err := vm.New(vm.Config{Image: img, Patches: cs.Patches})
	if err != nil {
		t.Fatal(err)
	}
	if res := machine.Run(); res.Outcome != vm.OutcomeExit {
		t.Fatal(res.Outcome)
	}
	cs.EndRun(true)
	if cs.TotalChecks != 1 || cs.TotalViolations != 1 {
		t.Errorf("checks/violations = %d/%d", cs.TotalChecks, cs.TotalViolations)
	}
	if got := Classify(cs.Runs())[inv.ID()]; got != HighlyCorrelated {
		t.Errorf("classification = %v", got)
	}
}

func TestCheckSetTwoVarAcrossInstructions(t *testing.T) {
	// v1 at "first" (EDX), v2 at "second" (ECX): the staging patch carries
	// v1 to the check site.
	a := asm.New(0x1000)
	a.Label("main")
	a.MovRI(isa.EDX, 9)
	a.MovRI(isa.ECX, 4)
	a.Label("first")
	a.MovRR(isa.EBX, isa.EDX) // observes EDX=9
	a.Label("second")
	a.MovRR(isa.ESI, isa.ECX) // observes ECX=4
	a.MovRI(isa.EAX, 0)
	a.Sys(isa.SysExit)
	code, labels, _ := a.Assemble()
	img := &image.Image{Base: 0x1000, Entry: labels["main"], Code: code}

	inv := &daikon.Invariant{
		Kind: daikon.KindLessThan,
		Var:  v(labels["first"], 0), Var2: v(labels["second"], 0),
	}
	cs := BuildCheckSet("fail@x", []Candidate{{Inv: inv}})
	if len(cs.Patches) != 2 {
		t.Fatalf("patches = %d, want stage+check", len(cs.Patches))
	}
	cs.StartRun()
	machine, _ := vm.New(vm.Config{Image: img, Patches: cs.Patches})
	machine.Run()
	cs.EndRun(true)
	// 9 <= 4 is violated.
	if cs.TotalChecks != 1 || cs.TotalViolations != 1 {
		t.Errorf("checks/violations = %d/%d", cs.TotalChecks, cs.TotalViolations)
	}
}
