package vm

import (
	"repro/internal/mem"
)

// Snapshot is a resumable capture of a machine's architectural and
// environmental state: registers, flags, the address space (captured
// copy-on-write, so taking one costs O(pages dirtied afterwards), not
// O(address space)), the allocator bookkeeping, the exception-handler
// registration, the input cursor, the display, and the step accounting.
//
// A snapshot is taken *before* the instruction at CPU.PC executes, so a
// restored machine re-executes that instruction first and the continuation
// is bit-identical to the original run.
//
// What a snapshot deliberately does NOT capture is plugin state: plugins
// (monitors, tracers) live outside the machine. Restoring a snapshot taken
// at step 0 onto a machine with freshly constructed plugins is always
// consistent; restoring a mid-run snapshot is consistent for stateless
// plugins (Memory Firewall) and allocator-backed ones (Heap Guard reads
// the restored heap), but a mid-run Shadow Stack would start empty — the
// replay farm therefore replays full runs and uses mid-run snapshots only
// for monitor-free fast-forwarding.
//
// All fields are exported and gob-serializable; snapshots travel inside
// replay.Recordings between community nodes and the manager.
type Snapshot struct {
	CPU          CPU
	Mem          *mem.Memory
	Heap         mem.HeapState
	EHSlot       uint32
	EHDispatched bool
	InPos        int
	Output       []byte
	Steps        uint64
	HookRuns     uint64
	Blocks       int
}

// Snapshot captures the machine's current state. The machine remains
// runnable; subsequent writes privatize pages lazily.
func (v *VM) Snapshot() *Snapshot {
	return &Snapshot{
		CPU:          v.CPU,
		Mem:          v.Mem.Clone(),
		Heap:         v.Heap.State(),
		EHSlot:       v.ehSlot,
		EHDispatched: v.ehDispatched,
		InPos:        v.inPos,
		Output:       append([]byte(nil), v.output...),
		Steps:        v.steps,
		HookRuns:     v.hookRuns,
		Blocks:       v.blocks,
	}
}

// Restore rewinds the machine to a snapshot. The snapshot itself is not
// consumed: its memory is cloned copy-on-write, so one snapshot can seed
// any number of machines (including concurrently — Clone is the only
// operation performed on the shared snapshot).
//
// The machine must have been built over the same image and input stream as
// the machine the snapshot was taken from; patches and plugins may differ
// (that is the point: the replay farm restores one recorded state under
// many candidate patch sets). The code cache is flushed so blocks are
// re-instrumented against the restored machine's patch set.
func (v *VM) Restore(s *Snapshot) {
	v.CPU = s.CPU
	v.Mem = s.Mem.Clone()
	v.Heap = mem.NewHeapFromState(v.Mem, s.Heap)
	v.ehSlot = s.EHSlot
	v.ehDispatched = s.EHDispatched
	v.inPos = s.InPos
	v.output = append([]byte(nil), s.Output...)
	v.steps = s.Steps
	v.hookRuns = s.HookRuns
	v.blocks = s.Blocks
	v.cache = make(map[uint32]*Block)
	v.addrIndex = nil    // rebuilt lazily if another patch lands
	v.cacheGen++         // orphan successor links and superblocks held by pre-restore blocks
	v.lastBlock = 0      // coverage resumes with a fresh entry edge
	v.rec.active = false // no trace recording spans a restore
	v.intr = intrNone
}

// maybeSnapshot emits a periodic snapshot to the configured sink. Called
// from the interpreter loop with CPU.PC already set to the instruction
// about to execute and before the step counter advances, so restored
// machines resume exactly at this instruction.
func (v *VM) maybeSnapshot() {
	if v.snapSink == nil || v.steps < v.nextSnap {
		return
	}
	v.nextSnap = v.steps + v.snapInterval
	v.snapSink(v.Snapshot())
}
