// Package daikon implements the dynamic invariant inference engine — the
// learning component of ClearView (§2.2). It observes the values of
// binary-level variables (registers an instruction reads, addresses it
// computes, values it loads) during normal executions and infers the three
// invariant forms ClearView repairs (§2.5): one-of, lower-bound, and
// less-than, plus the auxiliary stack-pointer-offset invariants used by the
// return-from-procedure repair (§2.2.4).
//
// The engine reproduces the paper's optimizations: the pointer heuristic
// (a value that is ever negative or between 1 and 100,000 marks its
// variable as a non-pointer; lower-bound and less-than inference is skipped
// for pointer variables), duplicate-variable elimination (of always-equal
// variables in a block, only the earliest keeps its invariants), and
// two-variable invariants restricted to pairs within one basic block.
package daikon

import (
	"fmt"
	"sort"
)

// VarID identifies a binary-level variable: slot Slot of the instruction at
// PC (see isa.Slots for the slot model).
type VarID struct {
	PC   uint32
	Slot uint8
}

func (v VarID) String() string { return fmt.Sprintf("%#x.%d", v.PC, v.Slot) }

// Less orders VarIDs by (PC, Slot); within straight-line code this is
// execution order, which the repair tie-break rules rely on.
func (v VarID) Less(w VarID) bool {
	if v.PC != w.PC {
		return v.PC < w.PC
	}
	return v.Slot < w.Slot
}

// Kind enumerates the invariant forms.
type Kind uint8

const (
	// KindOneOf is v ∈ {c1..cn} (§2.5.1).
	KindOneOf Kind = iota
	// KindLowerBound is c ≤ v, signed (§2.5.2).
	KindLowerBound
	// KindLessThan is v1 ≤ v2, signed (§2.5.3).
	KindLessThan
	// KindSPOffset is spEntry = spHere + c (§2.2.4); it is auxiliary:
	// never enforced itself, but consumed by the return-from-procedure
	// repair to restore the stack pointer.
	KindSPOffset
	// KindNonzero is v ≠ 0 — the divisor/stride family behind the
	// arithmetic-fault and runaway-loop repairs. Bound holds a witness:
	// the observed value of smallest magnitude, which the nonzero-guard
	// repair enforces when the invariant is violated.
	KindNonzero
	// KindModulus is v ≡ r (mod m) with m ≥ 2 — the classic Daikon
	// congruence family, here the alignment invariant behind the
	// unaligned-access repairs. Values holds [m, r].
	KindModulus
)

func (k Kind) String() string {
	switch k {
	case KindOneOf:
		return "one-of"
	case KindLowerBound:
		return "lower-bound"
	case KindLessThan:
		return "less-than"
	case KindSPOffset:
		return "sp-offset"
	case KindNonzero:
		return "nonzero"
	case KindModulus:
		return "modulus"
	}
	return fmt.Sprintf("kind%d", uint8(k))
}

// Invariant is one learned property. All fields are exported for gob
// serialization (community invariant upload, §3.1).
type Invariant struct {
	Kind Kind
	Var  VarID
	Var2 VarID // KindLessThan only: Var ≤ Var2
	// Values is the one-of value set (sorted ascending) for KindOneOf and
	// the [modulus, residue] pair for KindModulus.
	Values []uint32
	// Bound is the lower bound for KindLowerBound, the stack-pointer
	// offset for KindSPOffset, and the enforcement witness (the observed
	// value of smallest magnitude) for KindNonzero.
	Bound   int32
	Samples uint64 // observations supporting the invariant
}

// Modulus returns the (m, r) pair of a KindModulus invariant.
func (inv *Invariant) Modulus() (m, r uint32) {
	if inv.Kind != KindModulus || len(inv.Values) != 2 {
		return 0, 0
	}
	return inv.Values[0], inv.Values[1]
}

// ID returns a stable identifier used for patch naming and community
// bookkeeping.
func (inv *Invariant) ID() string {
	switch inv.Kind {
	case KindLessThan:
		return fmt.Sprintf("lt@%s<=%s", inv.Var, inv.Var2)
	case KindSPOffset:
		return fmt.Sprintf("sp@%#x", inv.Var.PC)
	case KindLowerBound:
		return fmt.Sprintf("lb@%s", inv.Var)
	case KindNonzero:
		return fmt.Sprintf("nz@%s", inv.Var)
	case KindModulus:
		return fmt.Sprintf("mod@%s", inv.Var)
	default:
		return fmt.Sprintf("oneof@%s", inv.Var)
	}
}

// PC returns the instruction where the invariant is checked and enforced:
// for two-variable invariants this is the later of the two instructions
// (§2.4.2, §2.5).
func (inv *Invariant) PC() uint32 {
	if inv.Kind == KindLessThan && inv.Var2.PC > inv.Var.PC {
		return inv.Var2.PC
	}
	return inv.Var.PC
}

// Holds evaluates the invariant against observed values: v1 is the value of
// Var; v2 is the value of Var2 (ignored except for less-than).
func (inv *Invariant) Holds(v1, v2 uint32) bool {
	switch inv.Kind {
	case KindOneOf:
		i := sort.Search(len(inv.Values), func(i int) bool { return inv.Values[i] >= v1 })
		return i < len(inv.Values) && inv.Values[i] == v1
	case KindLowerBound:
		return int32(v1) >= inv.Bound
	case KindLessThan:
		return int32(v1) <= int32(v2)
	case KindSPOffset:
		return true // auxiliary, never violated by definition
	case KindNonzero:
		return v1 != 0
	case KindModulus:
		m, r := inv.Modulus()
		if m < 2 {
			return true
		}
		// Wraparound-safe congruence: plain (v1-r)%m is wrong for v1 < r
		// unless m divides 2^32.
		return (v1%m+m-r%m)%m == 0
	}
	return false
}

// NumVars returns how many runtime values the invariant relates.
func (inv *Invariant) NumVars() int {
	if inv.Kind == KindLessThan {
		return 2
	}
	return 1
}

func (inv *Invariant) String() string {
	switch inv.Kind {
	case KindOneOf:
		return fmt.Sprintf("%s ∈ %v", inv.Var, inv.Values)
	case KindLowerBound:
		return fmt.Sprintf("%d ≤ %s", inv.Bound, inv.Var)
	case KindLessThan:
		return fmt.Sprintf("%s ≤ %s", inv.Var, inv.Var2)
	case KindSPOffset:
		return fmt.Sprintf("spEntry = sp@%#x + %d", inv.Var.PC, inv.Bound)
	case KindNonzero:
		return fmt.Sprintf("%s ≠ 0", inv.Var)
	case KindModulus:
		m, r := inv.Modulus()
		return fmt.Sprintf("%s ≡ %d (mod %d)", inv.Var, r, m)
	}
	return "invariant?"
}
