package webapp_test

import (
	"bytes"
	"testing"

	"repro/internal/monitor"
	"repro/internal/replay"
	"repro/internal/vm"
	"repro/internal/webapp"
)

// fuzzApp is built once per fuzz process; the image is immutable.
var fuzzApp = webapp.MustBuild()

// page frames a body with its little-endian length prefix.
func page(body ...byte) []byte {
	out := []byte{byte(len(body)), byte(len(body) >> 8)}
	return append(out, body...)
}

// runOnce executes one input under the full detector set with a tight
// step budget (mutated inputs may loop; the hang watchdog keeps every
// execution bounded far below the hard step limit).
func runOnce(t *testing.T, input []byte) vm.RunResult {
	t.Helper()
	mons := replay.AllMonitors()
	mons.HangBudget = 50_000
	plugins, shadow, hang := mons.Plugins()
	machine, err := vm.New(vm.Config{
		Image:    fuzzApp.Image,
		Input:    input,
		Plugins:  plugins,
		MaxSteps: 400_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	shadow.Install(machine)
	hang.Install(machine)
	return machine.Run()
}

// FuzzRenderPage feeds arbitrary byte streams to the page renderer under
// the full detector set and checks the taxonomy contract the whole
// pipeline rests on: every run terminates inside the step budget with a
// classified outcome, every monitor-detected failure names a deployed
// detector at an in-image location, and the machine is deterministic —
// the same input reproduces the same outcome, step count, and display.
func FuzzRenderPage(f *testing.F) {
	f.Add([]byte{})
	f.Add(page(0x01, 3, 'a', 'b', 'c'))                         // text
	f.Add(page(0x02, 3, 3, 0xFF, 65, 66, 67, 68))               // gif, negative ext offset
	f.Add(page(0x06, 6, 9, 1, 2, 3, 4, 5, 6, 7, 8, 9))          // str, trailer > total
	f.Add(page(0x0A, 64, 9))                                    // scale, benign divisor
	f.Add(page(0x0A, 64, 8))                                    // scale, zero divisor (div-zero)
	f.Add(page(0x0B, 2, 8))                                     // walk, aligned stride
	f.Add(page(0x0B, 2, 6))                                     // walk, misaligned stride (unaligned)
	f.Add(page(0x0C, 9, 7))                                     // loop, terminating
	f.Add(page(0x0C, 41, 16))                                   // loop, zero stride (hang-loop)
	f.Add(page(0x0A, 64, 8, 0x0B, 2, 6, 0x0C, 41, 16))          // all three defects on one page
	f.Add(append(page(0x01, 2, 'h', 'i'), page(0x0C, 5, 4)...)) // two framed pages
	f.Fuzz(func(t *testing.T, input []byte) {
		if len(input) > 2048 {
			input = input[:2048]
		}
		res := runOnce(t, input)
		switch res.Outcome {
		case vm.OutcomeExit, vm.OutcomeCrash:
		case vm.OutcomeFailure:
			f := res.Failure
			if f == nil {
				t.Fatal("failure outcome without a failure record")
			}
			known := false
			for _, name := range monitor.DetectorNames {
				known = known || f.Monitor == name
			}
			if !known {
				t.Fatalf("failure names unknown monitor %q", f.Monitor)
			}
			if !fuzzApp.Image.Contains(f.PC) {
				t.Fatalf("failure location %#x outside the image", f.PC)
			}
		default:
			t.Fatalf("unclassified outcome %v", res.Outcome)
		}
		again := runOnce(t, input)
		if again.Outcome != res.Outcome || again.Steps != res.Steps || !bytes.Equal(again.Output, res.Output) {
			t.Fatalf("nondeterministic run: (%v, %d steps) vs (%v, %d steps)",
				res.Outcome, res.Steps, again.Outcome, again.Steps)
		}
	})
}

// TestFuzzSeedsCoverNewFailureClasses pins the seed corpus itself: the
// three attack-shaped seeds must reach their detectors (so the fuzz
// corpus genuinely exercises the new failure classes, not just parse
// paths).
func TestFuzzSeedsCoverNewFailureClasses(t *testing.T) {
	cases := []struct {
		input   []byte
		monitor string
		kind    string
	}{
		{page(0x0A, 64, 8), "FaultGuard", "divide by zero"},
		{page(0x0B, 2, 6), "FaultGuard", "unaligned access"},
		{page(0x0C, 41, 16), "HangGuard", "runaway loop"},
	}
	for _, tc := range cases {
		res := runOnce(t, tc.input)
		if res.Outcome != vm.OutcomeFailure || res.Failure.Monitor != tc.monitor || res.Failure.Kind != tc.kind {
			t.Errorf("seed for %s/%s produced %+v", tc.monitor, tc.kind, res)
		}
	}
	_ = monitor.DefaultHangBudget // the 50k fuzz budget must stay below it
	if uint64(50_000) >= monitor.DefaultHangBudget {
		t.Error("fuzz hang budget should undercut the production default")
	}
}
