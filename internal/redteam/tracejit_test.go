package redteam

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/replay"
	"repro/internal/vm"
	"repro/internal/webapp"
)

// oracleInputs is the differential corpus: every Red Team exploit (all
// variants), the benign learning and evaluation suites, and the fuzz seed
// pages from the webapp fuzzer — crashes, hangs, monitor detections, and
// clean exits all represented.
func oracleInputs(app *webapp.App) map[string][]byte {
	inputs := map[string][]byte{
		"benign/learning": LearningCorpus(),
		"benign/expanded": ExpandedCorpus(),
	}
	for i, p := range EvaluationPages() {
		inputs[fmt.Sprintf("benign/eval%d", i)] = Input(p)
	}
	for _, ex := range AllExploits() {
		for variant := 0; variant < ex.Variants; variant++ {
			inputs[fmt.Sprintf("exploit/%s/v%d", ex.Bugzilla, variant)] = AttackInput(app, ex, variant)
		}
	}
	seedPage := func(body ...byte) []byte {
		out := []byte{byte(len(body)), byte(len(body) >> 8)}
		return append(out, body...)
	}
	seeds := [][]byte{
		{},
		seedPage(0x01, 3, 'a', 'b', 'c'),
		seedPage(0x02, 3, 3, 0xFF, 65, 66, 67, 68),
		seedPage(0x06, 6, 9, 1, 2, 3, 4, 5, 6, 7, 8, 9),
		seedPage(0x0A, 64, 9),
		seedPage(0x0A, 64, 8),
		seedPage(0x0B, 2, 8),
		seedPage(0x0B, 2, 6),
		seedPage(0x0C, 9, 7),
		seedPage(0x0C, 41, 16),
	}
	for i, s := range seeds {
		inputs[fmt.Sprintf("fuzzseed/%d", i)] = s
	}
	return inputs
}

type oracleObs struct {
	res     vm.RunResult
	covHash uint64
	edges   int
}

func runOracle(t *testing.T, app *webapp.App, input []byte, threshold int, monitored bool) oracleObs {
	t.Helper()
	cov := vm.NewCoverage()
	cfg := vm.Config{
		Image:          app.Image,
		Input:          input,
		Coverage:       cov,
		MaxSteps:       2_000_000,
		TraceThreshold: threshold,
	}
	var install func(*vm.VM)
	if monitored {
		mons := replay.AllMonitors()
		mons.HangBudget = 200_000
		plugins, shadow, hang := mons.Plugins()
		cfg.Plugins = plugins
		install = func(machine *vm.VM) {
			shadow.Install(machine)
			hang.Install(machine)
		}
	}
	machine, err := vm.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if install != nil {
		install(machine)
	}
	return oracleObs{res: machine.Run(), covHash: cov.Hash(), edges: cov.EdgeCount()}
}

func diffOracle(t *testing.T, name string, on, off oracleObs) {
	t.Helper()
	a, b := on.res, off.res
	if a.Outcome != b.Outcome || a.ExitCode != b.ExitCode || a.Steps != b.Steps ||
		a.Blocks != b.Blocks || a.HookRuns != b.HookRuns {
		t.Fatalf("%s: RunResult diverges under trace JIT\n jit: %+v\n int: %+v", name, a, b)
	}
	if !bytes.Equal(a.Output, b.Output) {
		t.Fatalf("%s: display output diverges under trace JIT (%d vs %d bytes)", name, len(a.Output), len(b.Output))
	}
	if (a.Crash == nil) != (b.Crash == nil) ||
		(a.Crash != nil && (a.Crash.PC != b.Crash.PC || a.Crash.Reason != b.Crash.Reason)) {
		t.Fatalf("%s: crash detail diverges: %+v vs %+v", name, a.Crash, b.Crash)
	}
	if (a.Failure == nil) != (b.Failure == nil) ||
		(a.Failure != nil && (a.Failure.PC != b.Failure.PC || a.Failure.Monitor != b.Failure.Monitor ||
			a.Failure.Kind != b.Failure.Kind || a.Failure.Target != b.Failure.Target)) {
		t.Fatalf("%s: failure detail diverges: %+v vs %+v", name, a.Failure, b.Failure)
	}
	if on.covHash != off.covHash || on.edges != off.edges {
		t.Fatalf("%s: coverage fingerprint diverges: %#x/%d edges vs %#x/%d edges",
			name, on.covHash, on.edges, off.covHash, off.edges)
	}
}

// TestTraceJITDifferentialOracle runs the full exploit + benign + fuzz-seed
// corpus over the real application twice — trace JIT at the default
// threshold versus disabled — and demands byte-identical observable
// behavior: outcome, exit code, step count, blocks decoded, display output,
// crash/failure details, and the edge-coverage fingerprint the fuzzer keys
// its corpus on. An aggressive threshold-1 arm maximizes time spent inside
// superblocks.
func TestTraceJITDifferentialOracle(t *testing.T) {
	app, err := webapp.Build()
	if err != nil {
		t.Fatal(err)
	}
	for name, input := range oracleInputs(app) {
		off := runOracle(t, app, input, vm.TraceDisabled, false)
		diffOracle(t, name+"/default", runOracle(t, app, input, 0, false), off)
		diffOracle(t, name+"/th1", runOracle(t, app, input, 1, false), off)
	}
}

// TestTraceJITDifferentialOracleMonitored repeats the oracle under the full
// detector set (Memory Firewall, Heap Guard, Shadow Stack, fault and hang
// guards): superblocks must dispatch hooked blocks through the instrumented
// executors with identical hook-run counts and detections.
func TestTraceJITDifferentialOracleMonitored(t *testing.T) {
	app, err := webapp.Build()
	if err != nil {
		t.Fatal(err)
	}
	for name, input := range oracleInputs(app) {
		off := runOracle(t, app, input, vm.TraceDisabled, true)
		diffOracle(t, name+"/mon-default", runOracle(t, app, input, 0, true), off)
		diffOracle(t, name+"/mon-th1", runOracle(t, app, input, 1, true), off)
	}
}
