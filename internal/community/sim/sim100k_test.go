package sim

import (
	"testing"
	"time"

	"repro/internal/webapp"
)

// TestSimSoak100kNodes is the headline scale test: a simulated campaign
// at the paper's deployment scale — 100,000 modeled nodes behind 256
// aggregators with a 2% adversarial population — must converge on every
// defect, quarantine every adversary, credit quarantined nodes zero
// adoptions, and do it in well under a minute of wall clock. It also
// pins the hierarchy's envelope economics: the manager must see at
// least 5x fewer envelopes than the flat floor of one per node-round,
// because aggregators batch the population's traffic upstream.
func TestSimSoak100kNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-node simulation skipped in -short")
	}
	if raceDetectorEnabled {
		t.Skip("100k-node simulation skipped under -race; the equivalence soaks cover the simulator there")
	}
	app := webapp.MustBuild()
	conf := simSoakConfig(t, app, 100_000, true)
	conf.Rounds = 8
	conf.Aggregators = 256
	conf.Adversaries = 2000
	start := time.Now()
	rep, err := Run(conf)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if !rep.Converged {
		t.Fatalf("100k-node campaign did not converge: %+v", rep.Defects)
	}
	if len(rep.Quarantined) != conf.Adversaries {
		t.Fatalf("quarantined %d of %d adversaries", len(rep.Quarantined), conf.Adversaries)
	}
	for _, id := range rep.Quarantined {
		if len(id) < 3 || id[:3] != "adv" {
			t.Fatalf("quarantined an honest node: %s", id)
		}
	}
	if rep.QuarantinedAdoptions != 0 {
		t.Fatalf("%d adoptions credited to quarantined nodes", rep.QuarantinedAdoptions)
	}
	// Envelope reduction: the flat topology's floor is one envelope per
	// node per round straight to the manager.
	flatFloor := rep.Nodes * rep.RoundsRun
	if rep.Messages*5 > flatFloor {
		t.Fatalf("manager saw %d envelopes; the hierarchy should cut the flat floor of %d by at least 5x",
			rep.Messages, flatFloor)
	}
	if elapsed > 60*time.Second {
		t.Fatalf("100k-node simulation took %v, budget is 60s", elapsed)
	}
	t.Logf("100k nodes: %d events, %v wall clock, %d envelopes at the manager (flat floor %d), %d memo hits / %d genuine runs",
		rep.Events, elapsed.Round(time.Millisecond), rep.Messages, flatFloor, rep.MemoHits, rep.GenuineRuns)
}
