package fuzz_test

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fuzz"
	"repro/internal/redteam"
	"repro/internal/replay"
)

// Shared expensive fixture: the built webapp + learned invariants, plus
// the ground-truth failure location of every seeded defect.
var (
	fixOnce   sync.Once
	fixSetup  *redteam.Setup
	fixTruth  map[uint32]string // failure PC -> Bugzilla id
	fixSeeds  [][]byte          // the thirteen attack inputs + benign pages
	fixErr    error
	fixErrMsg string
)

func campaignFixture(t *testing.T) (*redteam.Setup, [][]byte, map[uint32]string) {
	t.Helper()
	fixOnce.Do(func() {
		fixSetup, fixErr = redteam.NewSetup(false)
		if fixErr != nil {
			fixErrMsg = "setup: " + fixErr.Error()
			return
		}
		fixTruth = make(map[uint32]string)
		for _, ex := range redteam.AllExploits() {
			_, res, err := redteam.RecordAttack(fixSetup, ex, 0)
			if err != nil {
				fixErr, fixErrMsg = err, "record "+ex.Bugzilla+": "+err.Error()
				return
			}
			if res.Failure == nil {
				fixErrMsg = "exploit " + ex.Bugzilla + " was not monitor-detected"
				return
			}
			fixTruth[res.Failure.PC] = ex.Bugzilla
			fixSeeds = append(fixSeeds, redteam.AttackInput(fixSetup.App, ex, 0))
		}
		fixSeeds = append(fixSeeds, redteam.EvaluationPages()[:4]...)
	})
	if fixErrMsg != "" {
		t.Fatal(fixErrMsg)
	}
	return fixSetup, fixSeeds, fixTruth
}

func newCampaign(t *testing.T, setup *redteam.Setup, seeds [][]byte, seed int64) *fuzz.Fuzzer {
	t.Helper()
	f, err := fuzz.New(fuzz.Config{Image: setup.App.Image, Seeds: seeds, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestCampaignRediscoversSeededDefects is the acceptance gate: with a
// fixed seed and a bounded iteration budget, the fuzzer must rediscover
// failing inputs for at least 11 of the 13 seeded webapp defects —
// including the extended failure classes (divide-by-zero, unaligned
// access, runaway loop) — and, beyond the bar, produce byte-distinct
// failing variants of them.
func TestCampaignRediscoversSeededDefects(t *testing.T) {
	setup, seeds, truth := campaignFixture(t)
	if len(truth) != 13 {
		t.Fatalf("ground truth has %d distinct defect locations, want 13", len(truth))
	}
	f := newCampaign(t, setup, seeds, 1)
	if err := f.Run(300); err != nil {
		t.Fatal(err)
	}

	rediscovered := 0
	variants := 0
	for _, fd := range f.Findings() {
		if _, ok := truth[fd.PC]; ok {
			rediscovered++
			variants += fd.Variants
		}
	}
	if rediscovered < 11 {
		t.Fatalf("rediscovered %d/13 seeded defects within budget, want >= 11", rediscovered)
	}
	if variants == 0 {
		t.Fatal("no byte-distinct failing variants generated for any seeded defect")
	}
	if f.CorpusLen() <= len(seeds) {
		t.Fatalf("corpus never grew past the seeds: %d entries", f.CorpusLen())
	}
	if f.Coverage().EdgeCount() == 0 {
		t.Fatal("no edge coverage accumulated")
	}
	t.Logf("rediscovered %d/13 defects, %d findings total, %d variants, corpus %d, edges %d",
		rediscovered, len(f.Findings()), variants, f.CorpusLen(), f.Coverage().EdgeCount())
}

// TestCampaignReproducible: same config + same seed ⇒ same corpus
// (bit-for-bit), same coverage counters, same findings. This is the
// property that makes fuzz corpora shippable artifacts.
func TestCampaignReproducible(t *testing.T) {
	setup, seeds, _ := campaignFixture(t)
	run := func() *fuzz.Fuzzer {
		f := newCampaign(t, setup, seeds, 99)
		if err := f.Run(250); err != nil {
			t.Fatal(err)
		}
		return f
	}
	a, b := run(), run()

	if af, bf := a.Fingerprint(), b.Fingerprint(); af != bf {
		t.Fatalf("fingerprints differ: %#x vs %#x", af, bf)
	}
	if a.CorpusLen() != b.CorpusLen() {
		t.Fatalf("corpus sizes differ: %d vs %d", a.CorpusLen(), b.CorpusLen())
	}
	for i, in := range a.Corpus() {
		if !bytes.Equal(in, b.Corpus()[i]) {
			t.Fatalf("corpus entry %d differs between identically seeded campaigns", i)
		}
	}
	if ah, bh := a.Coverage().Hash(), b.Coverage().Hash(); ah != bh {
		t.Fatalf("coverage differs: %#x vs %#x", ah, bh)
	}
	if len(a.Findings()) != len(b.Findings()) {
		t.Fatalf("finding counts differ: %d vs %d", len(a.Findings()), len(b.Findings()))
	}
	for i, fa := range a.Findings() {
		fb := b.Findings()[i]
		if fa.PC != fb.PC || fa.Iter != fb.Iter || fa.Variants != fb.Variants {
			t.Fatalf("finding %d differs: %+v vs %+v", i, fa, fb)
		}
	}
}

// TestBenignSeedsDiscoverDefects is the fuzzer earning its keep: seeded
// only with legitimate pages (no attack bytes at all), coverage guidance
// must mutate its way into a majority of the seeded defects — and into
// failure locations the Red Team corpus never reached.
func TestBenignSeedsDiscoverDefects(t *testing.T) {
	setup, _, truth := campaignFixture(t)
	seeds := redteam.LearningPages()[:4]
	seeds = append(seeds, redteam.EvaluationPages()[:4]...)
	f := newCampaign(t, setup, seeds, 1)
	if err := f.Run(1500); err != nil {
		t.Fatal(err)
	}
	defects, novel := 0, 0
	for _, fd := range f.Findings() {
		if _, ok := truth[fd.PC]; ok {
			defects++
		} else {
			novel++
		}
	}
	if defects < 8 {
		t.Fatalf("benign-seed campaign found %d/13 seeded defects, want >= 8", defects)
	}
	if novel < 1 {
		t.Fatal("benign-seed campaign found no failure locations beyond the seeded defects")
	}
	t.Logf("benign seeds: %d seeded defects + %d novel failure locations in %d iters",
		defects, novel, f.Iters())
}

// TestNewFailureClassFingerprintDeterminism: a campaign seeded only with
// the extended-class attacks (divide-by-zero, unaligned access, runaway
// loop) must capture all three as findings under their new monitors, and
// the whole campaign — including the hang executions, whose step budget
// is part of the machine configuration — must fingerprint identically on
// a re-run.
func TestNewFailureClassFingerprintDeterminism(t *testing.T) {
	setup, _, _ := campaignFixture(t)
	var seeds [][]byte
	for _, ex := range redteam.NewClassExploits() {
		seeds = append(seeds, redteam.AttackInput(setup.App, ex, 0))
	}
	run := func() *fuzz.Fuzzer {
		f := newCampaign(t, setup, seeds, 7)
		if err := f.Run(60); err != nil {
			t.Fatal(err)
		}
		return f
	}
	a, b := run(), run()
	if af, bf := a.Fingerprint(), b.Fingerprint(); af != bf {
		t.Fatalf("fingerprints differ across identical new-class campaigns: %#x vs %#x", af, bf)
	}
	monitors := map[string]int{}
	for _, fd := range a.Findings() {
		monitors[fd.Monitor]++
		if fd.Recording == nil {
			t.Fatalf("finding %#x (%s) has no recording", fd.PC, fd.Monitor)
		}
		res, err := fd.Recording.Replay(nil, "")
		if err != nil {
			t.Fatal(err)
		}
		if res.Failure == nil || res.Failure.PC != fd.PC || res.Failure.Monitor != fd.Monitor {
			t.Fatalf("recording for %s@%#x replayed to %+v", fd.Monitor, fd.PC, res)
		}
	}
	if monitors["FaultGuard"] < 2 || monitors["HangGuard"] < 1 {
		t.Fatalf("new-class campaign findings missing detectors: %v", monitors)
	}
}

// TestFindingRecordingReplays: the captured recording is the shippable
// artifact — replaying it must reproduce the same failure at the same
// location, deterministically.
func TestFindingRecordingReplays(t *testing.T) {
	setup, seeds, _ := campaignFixture(t)
	f := newCampaign(t, setup, seeds, 1)
	if err := f.Run(len(seeds)); err != nil {
		t.Fatal(err)
	}
	if len(f.Findings()) == 0 {
		t.Fatal("no findings after running all seeds")
	}
	for _, fd := range f.Findings()[:3] {
		if fd.Recording == nil {
			t.Fatalf("finding %#x has no recording", fd.PC)
		}
		res, err := fd.Recording.Replay(nil, "")
		if err != nil {
			t.Fatal(err)
		}
		if res.Failure == nil || res.Failure.PC != fd.PC {
			t.Fatalf("recording for %#x replayed to %+v", fd.PC, res)
		}
	}
}

// TestDrivePipelineRepairs: fuzzer output is pipeline input. A finding
// fed through a replay-enabled ClearView must converge to an adopted
// repair in two presentations (record + farm on the first, survive on
// the second).
func TestDrivePipelineRepairs(t *testing.T) {
	setup, seeds, truth := campaignFixture(t)
	f := newCampaign(t, setup, seeds, 1)
	if err := f.Run(len(seeds)); err != nil {
		t.Fatal(err)
	}
	var target *fuzz.Finding
	for _, fd := range f.Findings() {
		if truth[fd.PC] == "290162" {
			target = fd
			break
		}
	}
	if target == nil {
		t.Fatal("no finding for defect 290162 among the seeds")
	}
	cv, err := setup.ReplayClearView(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	states := fuzz.DrivePipeline(cv, []*fuzz.Finding{target}, 2)
	if states[target.PC] != core.StatePatched {
		t.Fatalf("pipeline state for %#x is %v, want patched", target.PC, states[target.PC])
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := fuzz.New(fuzz.Config{}); err == nil {
		t.Fatal("nil image accepted")
	}
	setup, _, _ := campaignFixture(t)
	if _, err := fuzz.New(fuzz.Config{Image: setup.App.Image}); err == nil {
		t.Fatal("empty seed corpus accepted")
	}
}

// TestCrashesAreCountedNotCaptured: mutated garbage often crashes without
// a monitor detection; those runs must be accounted for but produce no
// findings (the paper's taxonomy: a finding is a monitor-detected
// failure).
func TestCrashesAreCountedNotCaptured(t *testing.T) {
	setup, _, _ := campaignFixture(t)
	// A monitor-free configuration turns every exploit into a crash.
	mons := replay.Monitors{}
	f, err := fuzz.New(fuzz.Config{
		Image:    setup.App.Image,
		Seeds:    [][]byte{redteam.AttackInput(setup.App, redteam.Exploits()[0], 0)},
		Seed:     5,
		Monitors: &mons,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Run(20); err != nil {
		t.Fatal(err)
	}
	if len(f.Findings()) != 0 {
		t.Fatalf("monitor-free campaign produced %d findings", len(f.Findings()))
	}
	if f.Crashes() == 0 {
		t.Fatal("monitor-free campaign counted no crashes")
	}
}
