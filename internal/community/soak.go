package community

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/daikon"
	"repro/internal/image"
	"repro/internal/obs"
	"repro/internal/repair"
	"repro/internal/replay"
	"repro/internal/vm"
)

// SoakAttack is one recurring failure scenario a soak presents to every
// node each round.
type SoakAttack struct {
	Label string // human label, e.g. the Bugzilla id
	Input []byte // the attack page presented to every node
}

// ChurnConfig schedules membership churn and infrastructure failure into a
// soak. All churn is deterministic for a fixed config: the same nodes
// crash, rejoin, and fail over in the same order every run.
type ChurnConfig struct {
	// CrashPerRound crashes that many honest nodes at the start of every
	// round from round 2 on (rotating through the population, recorders
	// excepted); each crashed node misses the round, then re-attaches at
	// the start of the next one — to a different aggregator than the one
	// it crashed under, when there is more than one.
	CrashPerRound int
	// JoinPerRound adds that many brand-new nodes at the start of every
	// round from round 2 on — the §3 "protection without exposure"
	// population: they must end up holding the adopted repairs without
	// ever having been attacked unprotected.
	JoinPerRound int
	// AggregatorCrashRound fails the first aggregator at the start of
	// that round (0 = never; requires at least two aggregators). Its
	// members fail over to the surviving siblings and its unflushed
	// buffers are lost — nothing durable is, because all community state
	// lives at the manager keyed by node ID.
	AggregatorCrashRound int
	// RootCrashRound fails the root leader at the start of that round
	// (0 = never; requires RootReplicas >= 1): every root connection is
	// severed, the senior follower is promoted, and clients re-dial into
	// the new leader through their retry path.
	RootCrashRound int
}

// SoakConfig drives a large-N community soak: Nodes node managers share
// one manager — flat, or through a tier of Aggregators — every node
// presents every attack once per round, and the soak reports when the
// whole community has converged on one adopted repair per defect.
type SoakConfig struct {
	// Image is the protected binary every member runs.
	Image *image.Image
	// Seed is the pre-learned invariant database (the Blue Team run).
	Seed *daikon.DB
	// BootstrapInputs populate the manager's CFG database.
	BootstrapInputs [][]byte

	// Nodes is the community size; default 100.
	Nodes int
	// Rounds bounds the soak; default 8. The soak stops early once every
	// defect has converged.
	Rounds int
	// Attacks are the failure scenarios; at least one is required.
	Attacks []SoakAttack
	// Benign inputs are interleaved one per round (rotating) so adopted
	// repairs keep being exercised on legitimate traffic; may be empty.
	Benign [][]byte

	// Aggregators inserts a tier of that many aggregators between the
	// nodes and the manager (0 = the flat star). Nodes attach
	// round-robin; aggregators flush once per round (or earlier, per
	// FlushEvery), so central-manager envelope load scales with the
	// aggregator count instead of the node count.
	Aggregators int
	// FlushEvery is the aggregators' auto-flush threshold in buffered run
	// reports; 0 flushes once per round only.
	FlushEvery int

	// Adversaries turns that many of the Nodes into adversarial members
	// exercising the §5 attack surface: even-indexed adversaries spoof
	// (failure reports and learning uploads with PCs outside the code
	// range — caught by the edge sanity checks), odd-indexed ones forge
	// (recordings of healthy runs relabelled as failures — caught by the
	// manager's farm vetting). Each keeps sending well-formed traffic
	// after its first tamper; the community must quarantine every
	// adversary, keep their later traffic ignored, and still converge.
	// Setting this forces VetReports on.
	Adversaries int
	// VetReports arms the sanity checks and quarantine machinery at both
	// tiers even without adversaries.
	VetReports bool

	// Churn schedules node crashes, rejoins, fresh joins, and an
	// aggregator failover; nil runs an immortal population.
	Churn *ChurnConfig

	// Chaos wraps every transport in a seeded FaultConn injecting drops,
	// delays, duplicates, mid-flush disconnects, and partition windows,
	// and arms the resilient client path (Retry) on every member and
	// aggregator. Nil runs the fault-free soak, byte-identical to the
	// pre-chaos behavior.
	Chaos *ChaosConfig
	// Retry overrides the retry policy the chaos path arms (nil =
	// DefaultRetry seeded from Chaos.Seed). Resilience is also armed —
	// chaos or not — when the churn schedule crashes the root, since the
	// clients must survive their severed connections.
	Retry *RetryPolicy
	// RootReplicas replicates the root: a leader plus this many hot
	// followers applying the same envelope stream (see RootGroup). 0 runs
	// the single unreplicated manager.
	RootReplicas int

	// Batched selects MsgBatch shipping (one round trip per node per
	// round) instead of per-run RunOnce messaging.
	Batched bool
	// Recorders is how many nodes capture failing runs as recordings
	// (default 1: the manager's replay fast path needs only one copy of
	// a deterministic failure; more recorders only add upload weight).
	Recorders int
	// ReplayWorkers bounds the manager's replay farm; 0 (the default)
	// and negative values select GOMAXPROCS. The fast path is always on
	// in a soak: converging a large community on live recurrences alone
	// is the cost model the soak exists to avoid.
	ReplayWorkers int
	// StackScope is the candidate-selection scope (default 1).
	StackScope int
	// CheckRuns and Bonus plumb through to the manager's pipeline
	// configuration (0 = the defaults, 2 and 1).
	CheckRuns int
	Bonus     int // see CheckRuns

	// Obs, when set, is the telemetry registry the whole rig records
	// into — the manager, every aggregator, and every member node share
	// it, so one snapshot holds the full per-stage pipeline table. The
	// final snapshot is attached to the SoakReport. Nil disables
	// telemetry (the soak behaves identically either way).
	Obs *obs.Registry
	// PprofLabels additionally tags traced goroutines with a pprof
	// "stage" label for the lifetime of each span, so CPU profiles taken
	// during the soak can be cut per pipeline stage. Requires Obs.
	PprofLabels bool

	// ParallelMembers runs each round's member turns concurrently, one
	// goroutine per alive member, instead of sequentially. This is the
	// contended deployment shape — many nodes hammering the tier at
	// once — and it surrenders run-to-run determinism: arrival order at
	// the aggregators and the manager varies, so adopted repair IDs and
	// message counts may differ between identical runs. Default off; the
	// library's determinism guarantees only hold with it off.
	ParallelMembers bool
	// ParallelFlush flushes the aggregator tier concurrently at the end
	// of each round instead of serially. Same determinism caveat as
	// ParallelMembers.
	ParallelFlush bool
}

// SoakDefect is one row of the convergence table.
type SoakDefect struct {
	Label     string `json:"label"`      // the attack's human label
	FailurePC uint32 `json:"failure_pc"` // ground-truth failure location (probed)
	Monitor   string `json:"monitor"`    // monitor that detects the attack
	// Adopted is the repair the community converged on ("" if it never
	// converged).
	Adopted string `json:"adopted"`
	// Rounds is the presentations-per-node needed before every node held
	// the same adopted repair (0 if never).
	Rounds int `json:"rounds"`
	// Agree is how many eligible nodes (alive, not quarantined) held the
	// adopted repair at the round the defect converged (or at the final
	// round, if it never did).
	Agree     int  `json:"agree"`
	Converged bool `json:"converged"` // the defect held full agreement at the last check
}

// SoakReport is the machine-readable outcome of one soak.
type SoakReport struct {
	Nodes       int  `json:"nodes"`       // initial community size
	Aggregators int  `json:"aggregators"` // aggregator tier size (0 = flat)
	RoundsRun   int  `json:"rounds_run"`  // rounds actually executed
	Batched     bool `json:"batched"`     // MsgBatch shipping vs per-run messaging
	// Messages is how many envelopes the central manager handled —
	// everything that reached it upstream. The flat/hierarchical and
	// batched/per-message comparisons of this number are the point of
	// the batching protocol and the aggregator tier.
	Messages   int `json:"messages"`
	Batches    int `json:"batches"`     // MsgBatch envelopes among Messages
	ReplayRuns int `json:"replay_runs"` // offline replays (vetting + checking + farm)
	// Quarantined is the sorted list of nodes the community quarantined;
	// QuarantinedAdoptions counts adopted repairs whose deciding report
	// came from a quarantined node (the tamper-resistance invariant:
	// always zero).
	Quarantined          []string `json:"quarantined,omitempty"`
	QuarantinedAdoptions int      `json:"quarantined_adoptions"` // see Quarantined
	// Churn accounting.
	Crashes             int `json:"crashes,omitempty"`              // node crashes executed
	Rejoins             int `json:"rejoins,omitempty"`              // crashed nodes that re-attached
	Joins               int `json:"joins,omitempty"`                // fresh nodes joined mid-campaign
	AggregatorFailovers int `json:"aggregator_failovers,omitempty"` // aggregator crashes executed
	// Fault-tolerance accounting (chaos / replicated-root soaks): proof
	// the injected faults actually fired and were absorbed.
	Retries          int `json:"retries,omitempty"`            // round trips retried (nodes + aggregators)
	Reconnects       int `json:"reconnects,omitempty"`         // fresh connections dialed past faults
	DroppedEnvelopes int `json:"dropped_envelopes,omitempty"`  // envelopes the chaos schedule silently lost
	RootFailovers    int `json:"root_failovers,omitempty"`     // root leader crashes survived
	ReplayLogEntries int `json:"replay_log_entries,omitempty"` // envelopes in the root replication log
	// LearnInvariants is the invariant count in the manager's merged
	// learn DB at campaign end — the learn-DB outcome the sim-vs-live
	// differential oracle compares.
	LearnInvariants int          `json:"learn_invariants"`
	Defects         []SoakDefect `json:"defects"`   // per-defect convergence rows
	Converged       bool         `json:"converged"` // every defect converged
	// Obs is the final telemetry snapshot (nil unless SoakConfig.Obs was
	// set): every counter and per-stage wall/on-CPU/blocked row the rig
	// recorded.
	Obs *obs.Snapshot `json:"obs,omitempty"`
}

// probeFailurePC runs one input on a bare monitored machine (the same
// full detector set the nodes run) to learn the failure location an
// attack produces — the key the soak uses to match manager cases to
// attack labels.
func probeFailurePC(img *image.Image, input []byte) (uint32, string, error) {
	plugins, shadow, hang := replay.AllMonitors().Plugins()
	machine, err := vm.New(vm.Config{
		Image:   img,
		Input:   input,
		Plugins: plugins,
	})
	if err != nil {
		return 0, "", err
	}
	shadow.Install(machine)
	hang.Install(machine)
	res := machine.Run()
	if res.Failure == nil {
		return 0, "", fmt.Errorf("input did not fail under the monitors (outcome %v)", res.Outcome)
	}
	return res.Failure.PC, res.Failure.Monitor, nil
}

// repairSpecID reconstructs the stable repair identifier a RepairSpec
// denotes, so node directives can be compared for agreement.
func repairSpecID(spec *RepairSpec) string {
	inv := spec.Invariant
	r := repair.Repair{
		Inv:      &inv,
		Strategy: spec.Strategy,
		Value:    spec.Value,
		SPDelta:  spec.SPDelta,
		PC:       spec.PC,
		Depth:    spec.Depth,
	}
	return r.ID()
}

// soakMember is one simulated community member and its soak-side role.
type soakMember struct {
	n   *Node
	agg int // attached aggregator index; -1 = direct to the manager
	// adversary marks a tampering member; forger selects the
	// forged-recording flavor (vs the spoofed-report flavor); advIndex
	// varies the tamper so concurrent adversaries don't mask each other.
	adversary bool
	forger    bool
	advIndex  int
	tampered  bool // the first-tamper message has been sent
	crashed   bool
}

// soakRig is the assembled community: one root (a single manager, or a
// replicated RootGroup), an optional aggregator tier, and the member
// population.
type soakRig struct {
	conf    SoakConfig
	mgr     *Manager   // the unreplicated root (nil when root is set)
	root    *RootGroup // the replicated root (nil when mgr is set)
	aggs    []*Aggregator
	aggDead []bool
	members []*soakMember
	report  *SoakReport
	tr      *obs.Tracer   // shared tracer (nil when telemetry is off)
	reg     *obs.Registry // chaos/retry counter registry (may be nil)
	retry   *RetryPolicy  // non-nil arms member/aggregator resilience

	crashCursor int
	joinSeq     int
	connSeq     int64 // FaultConn stream numbers (atomic)
}

// rootMgr is the manager the soak's accounting and convergence checks
// read: the group's current leader, or the single manager.
func (r *soakRig) rootMgr() *Manager {
	if r.root != nil {
		return r.root.Leader()
	}
	return r.mgr
}

// serveRoot spawns a serving goroutine for one root-side connection.
func (r *soakRig) serveRoot(conn Conn) {
	if r.root != nil {
		go func() { _ = r.root.Serve(conn) }()
	} else {
		go func() { _ = r.mgr.Serve(conn) }()
	}
}

// wrap injects the chaos schedule into one client-side connection (a
// no-op without Chaos). Each connection gets its own stream number, so
// reconnects draw fresh — but still seed-determined — fault schedules.
func (r *soakRig) wrap(c Conn) Conn {
	if r.conf.Chaos == nil {
		return c
	}
	fc, err := NewFaultConn(c, r.conf.Chaos, atomic.AddInt64(&r.connSeq, 1), r.reg)
	if err != nil {
		return c // config was validated up front; unreachable
	}
	return fc
}

// dialRoot opens a fresh client connection to the root — the soak's
// "dial the manager" — through the chaos wrapper when armed. It is both
// the initial upstream dial and the aggregators' Redial path, which is
// how a re-dial lands on the promoted leader after a root failover.
func (r *soakRig) dialRoot() (Conn, error) {
	upSide, rootSide := Pipe()
	r.serveRoot(rootSide)
	return r.wrap(upSide), nil
}

// attach connects (or re-connects) a member to serving infrastructure:
// aggregator agg, or the root when agg < 0.
func (r *soakRig) attach(m *soakMember, agg int) error {
	nodeSide, serveSide := Pipe()
	if agg >= 0 {
		go func() { _ = r.aggs[agg].Serve(serveSide) }()
	} else {
		r.serveRoot(serveSide)
	}
	m.agg = agg
	return m.n.Attach(r.wrap(nodeSide))
}

// redialMember is a member's retry-path redial: a fresh connection to its
// current home — or, when that home aggregator has died, to the next
// alive sibling (the retry-path mirror of churn's explicit failover).
func (r *soakRig) redialMember(m *soakMember) (Conn, error) {
	agg := m.agg
	if agg >= 0 && (agg >= len(r.aggs) || r.aggDead[agg]) {
		agg = r.nextAliveAgg(agg)
		m.agg = agg
	}
	nodeSide, serveSide := Pipe()
	if agg >= 0 {
		go func() { _ = r.aggs[agg].Serve(serveSide) }()
	} else {
		r.serveRoot(serveSide)
	}
	return r.wrap(nodeSide), nil
}

// enlist arms a member's resilience when the soak runs one of the
// fault-tolerant shapes.
func (r *soakRig) enlist(m *soakMember) {
	if r.retry == nil {
		return
	}
	m.n.EnableResilience(r.retry, func() (Conn, error) { return r.redialMember(m) }, r.reg)
}

// nextAliveAgg picks the aggregator a re-attaching member fails over to:
// the next alive sibling after the one it crashed under (or the same one,
// when it is the only survivor). Returns -1 in flat topology.
func (r *soakRig) nextAliveAgg(after int) int {
	if len(r.aggs) == 0 {
		return -1
	}
	for i := 1; i <= len(r.aggs); i++ {
		cand := (after + i) % len(r.aggs)
		if !r.aggDead[cand] {
			return cand
		}
	}
	return -1
}

// RunSoak simulates a community of Nodes node managers sharing one
// manager over in-process transports — flat, or through an aggregator
// tier. Each round, every alive node presents every attack (plus a
// rotating benign input) and reports — batched or per message; the
// aggregators then flush their compacted batches upstream. After each
// round the soak syncs every eligible node and checks convergence: the
// manager holds an adopted repair for every defect and every eligible
// node's directives carry the same repair. Nodes run sequentially in a
// fixed order and churn follows a fixed schedule, so a soak is
// deterministic for a fixed config.
func RunSoak(conf SoakConfig) (*SoakReport, error) {
	if conf.Image == nil {
		return nil, fmt.Errorf("community: soak needs an image")
	}
	if len(conf.Attacks) == 0 {
		return nil, fmt.Errorf("community: soak needs at least one attack")
	}
	if conf.Nodes <= 0 {
		conf.Nodes = 100
	}
	if conf.Rounds <= 0 {
		conf.Rounds = 8
	}
	if conf.Recorders <= 0 {
		conf.Recorders = 1
	}
	if conf.Adversaries < 0 || conf.Adversaries >= conf.Nodes {
		return nil, fmt.Errorf("community: %d adversaries need a larger community than %d", conf.Adversaries, conf.Nodes)
	}
	if conf.Adversaries > 0 {
		conf.VetReports = true
	}
	honest := conf.Nodes - conf.Adversaries
	if conf.Recorders > honest {
		conf.Recorders = honest
	}
	if conf.Aggregators < 0 || conf.Aggregators > conf.Nodes {
		return nil, fmt.Errorf("community: aggregator count %d out of range", conf.Aggregators)
	}
	if conf.Churn != nil && conf.Churn.AggregatorCrashRound > 0 && conf.Aggregators < 2 {
		return nil, fmt.Errorf("community: aggregator failover needs at least 2 aggregators")
	}
	if conf.Churn != nil && conf.Churn.RootCrashRound > 0 && conf.RootReplicas < 1 {
		return nil, fmt.Errorf("community: root failover needs at least 1 root replica")
	}
	if conf.Chaos != nil {
		if err := conf.Chaos.validate(); err != nil {
			return nil, err
		}
		if conf.Obs == nil {
			// The chaos counters are the run's proof its faults fired; they
			// need a live registry even when the caller asked for no
			// telemetry.
			conf.Obs = obs.New()
		}
	}
	workers := conf.ReplayWorkers
	if workers == 0 {
		workers = -1
	}

	// Ground truth: which failure location each attack produces.
	defects := make([]SoakDefect, len(conf.Attacks))
	byPC := make(map[uint32]int, len(conf.Attacks))
	for i, atk := range conf.Attacks {
		pc, mon, err := probeFailurePC(conf.Image, atk.Input)
		if err != nil {
			return nil, fmt.Errorf("attack %s: %w", atk.Label, err)
		}
		if j, dup := byPC[pc]; dup {
			return nil, fmt.Errorf("attacks %s and %s share failure location %#x",
				conf.Attacks[j].Label, atk.Label, pc)
		}
		defects[i] = SoakDefect{Label: atk.Label, FailurePC: pc, Monitor: mon}
		byPC[pc] = i
	}

	// Name the aggregator tier up front: under VetReports the manager
	// only accepts aggregated batches from this provisioned list, so an
	// adversarial member cannot impersonate an aggregator.
	aggIDs := make([]string, conf.Aggregators)
	for i := range aggIDs {
		aggIDs[i] = fmt.Sprintf("agg%02d", i)
	}
	tr := obs.NewTracer(conf.Obs)
	if conf.PprofLabels {
		tr = tr.WithPprofLabels()
	}
	mgrConf := ManagerConfig{
		Image:              conf.Image,
		Seed:               conf.Seed,
		BootstrapInputs:    conf.BootstrapInputs,
		StackScope:         conf.StackScope,
		CheckRuns:          conf.CheckRuns,
		Bonus:              conf.Bonus,
		ReplayWorkers:      workers,
		VetReports:         conf.VetReports,
		TrustedAggregators: aggIDs,
		Obs:                tr,
	}

	// Resilience is armed by chaos, and also by a root-crash schedule on
	// its own: the crash severs every root connection, and only the retry
	// path's re-dial reaches the promoted leader.
	retry := conf.Retry
	if retry == nil && (conf.Chaos != nil ||
		(conf.Churn != nil && conf.Churn.RootCrashRound > 0)) {
		var seed int64
		if conf.Chaos != nil {
			seed = conf.Chaos.Seed
		}
		retry = DefaultRetry(seed)
	}

	rig := &soakRig{
		conf:  conf,
		tr:    tr,
		reg:   conf.Obs,
		retry: retry,
		report: &SoakReport{
			Nodes:       conf.Nodes,
			Aggregators: conf.Aggregators,
			Batched:     conf.Batched,
		},
	}
	if conf.RootReplicas > 0 {
		root, err := NewRootGroup(mgrConf, conf.RootReplicas, conf.Obs)
		if err != nil {
			return nil, err
		}
		rig.root = root
	} else {
		mgr, err := NewManager(mgrConf)
		if err != nil {
			return nil, err
		}
		rig.mgr = mgr
	}
	defer func() {
		for _, m := range rig.members {
			_ = m.n.Close()
		}
		for i, a := range rig.aggs {
			if !rig.aggDead[i] {
				_ = a.Close()
			}
		}
		if rig.root != nil {
			_ = rig.root.Close()
		}
	}()

	// The aggregator tier.
	for i := 0; i < conf.Aggregators; i++ {
		upstream, err := rig.dialRoot()
		if err != nil {
			return nil, err
		}
		agg, err := NewAggregator(AggregatorConfig{
			ID:         aggIDs[i],
			Image:      conf.Image,
			Upstream:   upstream,
			FlushEvery: conf.FlushEvery,
			VetReports: conf.VetReports,
			Obs:        tr,
			Retry:      retry,
			Redial:     rig.dialRoot,
		})
		if err != nil {
			return nil, err
		}
		rig.aggs = append(rig.aggs, agg)
		rig.aggDead = append(rig.aggDead, false)
	}

	// The population: honest members first (the leading Recorders of them
	// capture failing runs), adversaries last.
	for i := 0; i < conf.Nodes; i++ {
		m := &soakMember{agg: -1}
		if i < honest {
			m.n = NewNode(fmt.Sprintf("node%04d", i), conf.Image, nil)
			m.n.RecordFailures = i < conf.Recorders
		} else {
			adv := i - honest
			m.adversary = true
			m.forger = adv%2 == 1
			m.advIndex = adv
			m.n = NewNode(fmt.Sprintf("adv%03d", adv), conf.Image, nil)
		}
		m.n.Obs = tr
		rig.enlist(m)
		rig.members = append(rig.members, m)
		agg := -1
		if conf.Aggregators > 0 {
			agg = i % conf.Aggregators
		}
		if err := rig.attach(m, agg); err != nil {
			return nil, err
		}
	}

	report := rig.report
	for round := 1; round <= conf.Rounds; round++ {
		if err := rig.churnStep(round); err != nil {
			return nil, err
		}

		inputs := make([][]byte, 0, len(conf.Attacks)+1)
		for _, atk := range conf.Attacks {
			inputs = append(inputs, atk.Input)
		}
		if len(conf.Benign) > 0 {
			inputs = append(inputs, conf.Benign[(round-1)%len(conf.Benign)])
		}
		if conf.ParallelMembers {
			// The contended shape: every alive member plays its turn at
			// once, so the aggregators and manager see the arrival
			// concurrency a real deployment produces.
			var wg sync.WaitGroup
			errs := make([]error, len(rig.members))
			for i, m := range rig.members {
				if m.crashed {
					continue
				}
				wg.Add(1)
				go func(i int, m *soakMember) {
					defer wg.Done()
					errs[i] = rig.memberTurn(m, inputs)
				}(i, m)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return nil, err
				}
			}
		} else {
			for _, m := range rig.members {
				if m.crashed {
					continue
				}
				if err := rig.memberTurn(m, inputs); err != nil {
					return nil, err
				}
			}
		}
		if conf.ParallelFlush {
			var wg sync.WaitGroup
			errs := make([]error, len(rig.aggs))
			for i, a := range rig.aggs {
				if !rig.aggDead[i] {
					wg.Add(1)
					go func(i int, a *Aggregator) {
						defer wg.Done()
						errs[i] = a.Flush()
					}(i, a)
				}
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return nil, err
				}
			}
		} else {
			for i, a := range rig.aggs {
				if !rig.aggDead[i] {
					if err := a.Flush(); err != nil {
						return nil, err
					}
				}
			}
		}
		report.RoundsRun = round

		// A churn soak runs its whole schedule: convergence must not just
		// be reached, it must hold while nodes crash, rejoin, and join
		// and aggregators fail over. Without churn the population is
		// static and the first full agreement is final.
		if rig.converged(defects, round) && conf.Churn == nil {
			break
		}
	}

	root := rig.rootMgr()
	report.Messages = root.Messages()
	report.Batches = root.Batches()
	report.ReplayRuns = root.ReplayRuns()
	quarantined := root.Quarantined()
	for id := range quarantined {
		report.Quarantined = append(report.Quarantined, id)
	}
	sort.Strings(report.Quarantined)
	for _, by := range root.Adoptions() {
		if _, q := quarantined[by]; q {
			report.QuarantinedAdoptions++
		}
	}
	if conf.Obs != nil {
		report.Retries = int(conf.Obs.Counter("node.retries").Value() + conf.Obs.Counter("agg.retries").Value())
		report.Reconnects = int(conf.Obs.Counter("node.reconnects").Value() + conf.Obs.Counter("agg.redials").Value())
		report.DroppedEnvelopes = int(conf.Obs.Counter("chaos.dropped").Value())
	}
	if rig.root != nil {
		report.ReplayLogEntries = rig.root.LogLen()
	}
	report.LearnInvariants = root.InvariantCount()
	report.Converged = true
	for i := range defects {
		if !defects[i].Converged {
			report.Converged = false
		}
	}
	report.Defects = defects
	if conf.Obs != nil {
		snap := conf.Obs.Snapshot()
		report.Obs = &snap
	}
	return report, nil
}

// memberTurn plays one member's round: the adversarial script for an
// adversary, the round's inputs (batched or per message) for an honest
// node.
func (r *soakRig) memberTurn(m *soakMember, inputs [][]byte) error {
	if m.adversary {
		return r.adversaryTurn(m)
	}
	if r.conf.Batched {
		_, err := m.n.RunBatch(inputs)
		return err
	}
	for _, input := range inputs {
		if _, err := m.n.RunOnce(input); err != nil {
			return err
		}
	}
	return nil
}

// churnStep applies the round's churn schedule: fail over a crashed
// aggregator's members, revive last round's crashed nodes on a different
// aggregator, crash this round's victims, and join fresh members.
func (r *soakRig) churnStep(round int) error {
	churn := r.conf.Churn
	if churn == nil || round < 2 {
		return nil
	}

	if churn.RootCrashRound == round && r.root != nil {
		// The root leader dies mid-campaign. FailLeader severs every live
		// connection, so the resilient clients' next round trips time out,
		// re-dial, and land on the promoted follower.
		if err := r.root.FailLeader(); err != nil {
			return err
		}
		r.report.RootFailovers++
	}

	if churn.AggregatorCrashRound == round && len(r.aggs) >= 2 && !r.aggDead[0] {
		_ = r.aggs[0].Close()
		r.aggDead[0] = true
		r.report.AggregatorFailovers++
		for _, m := range r.members {
			if m.agg == 0 && !m.crashed {
				if err := r.attach(m, r.nextAliveAgg(0)); err != nil {
					return err
				}
			}
		}
	}

	for _, m := range r.members {
		if m.crashed {
			if err := r.attach(m, r.nextAliveAgg(m.agg)); err != nil {
				return err
			}
			m.crashed = false
			r.report.Rejoins++
		}
	}

	// Crash honest, non-recording members, rotating through whoever is
	// still alive; the pool shrinks as members are picked, so no member
	// is crashed twice in a round and at least one pool member survives.
	honestPool := make([]*soakMember, 0, len(r.members))
	for _, m := range r.members {
		if !m.adversary && !m.n.RecordFailures && !m.crashed {
			honestPool = append(honestPool, m)
		}
	}
	for i := 0; i < churn.CrashPerRound && len(honestPool) > 1; i++ {
		idx := r.crashCursor % len(honestPool)
		m := honestPool[idx]
		honestPool = append(honestPool[:idx], honestPool[idx+1:]...)
		r.crashCursor++
		_ = m.n.Close()
		m.crashed = true
		r.report.Crashes++
	}

	for i := 0; i < churn.JoinPerRound; i++ {
		m := &soakMember{n: NewNode(fmt.Sprintf("join%03d", r.joinSeq), r.conf.Image, nil)}
		m.n.Obs = r.tr
		r.enlist(m)
		r.joinSeq++
		agg := -1
		if len(r.aggs) > 0 {
			agg = r.nextAliveAgg(r.joinSeq % len(r.aggs))
		}
		if err := r.attach(m, agg); err != nil {
			return err
		}
		r.members = append(r.members, m)
		r.report.Joins++
	}
	return nil
}

// adversaryTurn plays one adversarial member's round: the first active
// round ships its tamper (a spoofed report and a poisoned upload, or a
// forged recording), every later round ships a well-formed benign report —
// which the community must keep ignoring once the node is quarantined.
// Adversaries never run the round's inputs: their contribution is
// tampered traffic, not executions.
func (r *soakRig) adversaryTurn(m *soakMember) error {
	n := m.n
	// A resilient soak re-offends every round: at-most-once delivery may
	// surrender a tamper to an injected fault, and the quarantine
	// guarantee must hold against an attacker who simply keeps attacking.
	if !m.tampered || r.retry != nil {
		m.tampered = true
		if m.forger {
			return r.sendForgedRecording(n, m.advIndex)
		}
		return r.sendSpoofedTraffic(n)
	}
	// Later rounds: a plausible, well-formed report. For a quarantined
	// node it must change nothing at the manager.
	rep := RunReport{NodeID: n.ID, Seq: n.dir.Seq, Outcome: uint8(vm.OutcomeExit)}
	env, err := NewEnvelope(MsgRunReport, rep)
	if err != nil {
		return err
	}
	return n.roundTrip(env)
}

// sendSpoofedTraffic ships the edge-checkable tampers: a failure report
// and a learning upload whose PCs sit outside the image's code range.
func (r *soakRig) sendSpoofedTraffic(n *Node) error {
	img := r.conf.Image
	badPC := img.End() + 0x1000
	rep := RunReport{
		NodeID:  n.ID,
		Seq:     n.dir.Seq,
		Outcome: uint8(vm.OutcomeFailure),
		Failure: &FailureInfo{PC: badPC, Monitor: "MemoryFirewall", Kind: "spoofed"},
	}
	env, err := NewEnvelope(MsgRunReport, rep)
	if err != nil {
		return err
	}
	if err := n.roundTrip(env); err != nil {
		return err
	}

	poisoned := daikon.NewDB()
	poisoned.Add(&daikon.Invariant{
		Kind:    daikon.KindLowerBound,
		Var:     daikon.VarID{PC: badPC},
		Bound:   -1,
		Samples: 1 << 20,
	})
	raw, err := poisoned.Marshal()
	if err != nil {
		return err
	}
	env, err = NewEnvelope(MsgLearnUpload, LearnUpload{NodeID: n.ID, DB: raw})
	if err != nil {
		return err
	}
	return n.roundTrip(env)
}

// sendForgedRecording ships the farm-checkable tamper: a recording of a
// healthy run relabelled as a monitor-detected failure at a plausible
// in-range location. It passes every static check; only replaying it
// (replay.Farm.Vet) reveals that the claimed failure does not reproduce.
// Each forger claims a different location, so one forgery never shadows
// another in the aggregators' per-location deduplication.
func (r *soakRig) sendForgedRecording(n *Node, advIndex int) error {
	img := r.conf.Image
	input := []byte("forged")
	if len(r.conf.Benign) > 0 {
		input = r.conf.Benign[0]
	}
	rec, _, err := replay.Record(n.ID+"/forged", img, input, nil, replay.Options{})
	if err != nil {
		return err
	}
	claimPC := img.Base + uint32((int(img.Entry-img.Base)+4*advIndex)%len(img.Code))
	rec.Outcome = vm.OutcomeFailure
	rec.ExitCode = 0
	rec.Failure = &vm.Failure{PC: claimPC, Monitor: "MemoryFirewall", Kind: "forged"}
	raw, err := rec.Marshal()
	if err != nil {
		return err
	}
	env, err := NewEnvelope(MsgRecording, RecordingUpload{NodeID: n.ID, Recording: raw})
	if err != nil {
		return err
	}
	return n.roundTrip(env)
}

// converged syncs every eligible member and updates the convergence
// table; it reports whether every defect has converged. A defect
// converges in the first round after which the manager has adopted a
// repair for it and every eligible node's directives carry that same
// repair. Eligible means alive, honest, and not quarantined: crashed
// nodes re-attach and catch up next round, and quarantined nodes are
// outside the trust boundary by definition.
func (r *soakRig) converged(defects []SoakDefect, round int) bool {
	root := r.rootMgr()
	states := root.CaseStates()
	quarantined := root.Quarantined()

	type held struct {
		ids   map[string]string // failureID -> repair ID
		valid bool
	}
	var eligible []*soakMember
	for _, m := range r.members {
		if m.crashed || m.adversary {
			continue
		}
		if _, q := quarantined[m.n.ID]; q {
			continue
		}
		eligible = append(eligible, m)
	}
	collect := func(m *soakMember) held {
		if err := m.n.Sync(); err != nil {
			return held{}
		}
		h := held{ids: make(map[string]string), valid: true}
		dir := m.n.Directives()
		for j := range dir.Repairs {
			spec := &dir.Repairs[j]
			h.ids[spec.FailureID] = repairSpecID(spec)
		}
		return h
	}
	holdings := make([]held, len(eligible))
	if r.conf.ParallelMembers {
		// Under chaos a sync may eat several recv timeouts before its
		// retry lands; collected serially that latency multiplies by the
		// population.
		var wg sync.WaitGroup
		for i, m := range eligible {
			wg.Add(1)
			go func(i int, m *soakMember) {
				defer wg.Done()
				holdings[i] = collect(m)
			}(i, m)
		}
		wg.Wait()
	} else {
		for i, m := range eligible {
			holdings[i] = collect(m)
		}
	}

	all := true
	for i := range defects {
		d := &defects[i]
		if states[d.FailurePC] != core.StatePatched {
			d.Converged = false
			all = false
			continue
		}
		failureID := fmt.Sprintf("fail@%#x", d.FailurePC)
		agree := 0
		var adopted string
		uniform := true
		for _, h := range holdings {
			if !h.valid {
				uniform = false
				continue
			}
			id, ok := h.ids[failureID]
			if !ok {
				uniform = false
				continue
			}
			if adopted == "" {
				adopted = id
			}
			if id == adopted {
				agree++
			} else {
				uniform = false
			}
		}
		d.Agree = agree
		// Convergence is re-evaluated every round (a churn soak must HOLD
		// agreement, not just reach it); Rounds keeps the first round full
		// agreement was observed.
		d.Converged = uniform && adopted != "" && agree == len(holdings)
		if d.Converged {
			d.Adopted = adopted
			if d.Rounds == 0 {
				d.Rounds = round
			}
		} else {
			all = false
		}
	}
	return all
}
