// Package asm is a two-pass assembler for the simulated ISA. It is used to
// hand-assemble the protected application (internal/webapp) and the small
// programs exercised by tests and examples.
//
// The assembler produces a raw code image plus a label map. The label map
// exists only for the convenience of test harnesses and exploit builders;
// it is never given to ClearView, which sees only the stripped bytes.
package asm

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// Mem describes a memory operand base+index<<scale+disp.
type Mem struct {
	Base  isa.Reg
	Index isa.Reg // isa.NoReg if absent
	Scale uint8
	Disp  int32
}

// M is shorthand for a base+displacement memory operand.
func M(base isa.Reg, disp int32) Mem {
	return Mem{Base: base, Index: isa.NoReg, Disp: disp}
}

// MX is shorthand for a base+index<<scale+displacement memory operand.
func MX(base, index isa.Reg, scale uint8, disp int32) Mem {
	return Mem{Base: base, Index: index, Scale: scale, Disp: disp}
}

type fixupKind uint8

const (
	fixNone     fixupKind = iota
	fixRelative           // imm = label - (addr + InstSize)
	fixAbsolute           // imm = label (absolute address)
)

type item struct {
	inst  isa.Inst
	data  []byte // raw data bytes; if non-nil this is a data item
	fixup fixupKind
	label string
}

// Assembler accumulates instructions and data, resolving label references
// in a second pass.
type Assembler struct {
	base   uint32
	items  []item
	labels map[string]uint32
	sizes  []uint32 // running offset of each item
	off    uint32
	errs   []error
}

// New returns an assembler whose first emitted byte lands at base.
func New(base uint32) *Assembler {
	return &Assembler{base: base, labels: make(map[string]uint32)}
}

// PC returns the address of the next emitted item.
func (a *Assembler) PC() uint32 { return a.base + a.off }

// Label defines a label at the current position. Defining the same label
// twice is an error reported by Assemble.
func (a *Assembler) Label(name string) {
	if _, dup := a.labels[name]; dup {
		a.errs = append(a.errs, fmt.Errorf("asm: duplicate label %q", name))
		return
	}
	a.labels[name] = a.PC()
}

func (a *Assembler) emit(it item) {
	a.sizes = append(a.sizes, a.off)
	a.items = append(a.items, it)
	if it.data != nil {
		a.off += uint32(len(it.data))
	} else {
		a.off += isa.InstSize
	}
}

func (a *Assembler) inst(in isa.Inst) { a.emit(item{inst: in}) }

// Nop emits a no-op.
func (a *Assembler) Nop() { a.inst(isa.Inst{Op: isa.NOP, X: isa.NoReg}) }

// Halt emits a machine halt.
func (a *Assembler) Halt() { a.inst(isa.Inst{Op: isa.HALT, X: isa.NoReg}) }

// MovRI emits A = imm.
func (a *Assembler) MovRI(dst isa.Reg, imm int32) {
	a.inst(isa.Inst{Op: isa.MOVRI, A: dst, X: isa.NoReg, Imm: imm})
}

// MovLabel emits A = address-of(label).
func (a *Assembler) MovLabel(dst isa.Reg, label string) {
	a.emit(item{inst: isa.Inst{Op: isa.MOVRI, A: dst, X: isa.NoReg}, fixup: fixAbsolute, label: label})
}

// MovRR emits A = B.
func (a *Assembler) MovRR(dst, src isa.Reg) {
	a.inst(isa.Inst{Op: isa.MOVRR, A: dst, B: src, X: isa.NoReg})
}

func memInst(op isa.Op, reg isa.Reg, m Mem) isa.Inst {
	return isa.Inst{Op: op, A: reg, B: m.Base, X: m.Index, Scale: m.Scale, Imm: m.Disp}
}

// Load emits A = mem32[m].
func (a *Assembler) Load(dst isa.Reg, m Mem) { a.inst(memInst(isa.LOAD, dst, m)) }

// Store emits mem32[m] = A.
func (a *Assembler) Store(m Mem, src isa.Reg) { a.inst(memInst(isa.STORE, src, m)) }

// LoadB emits A = zero-extended mem8[m].
func (a *Assembler) LoadB(dst isa.Reg, m Mem) { a.inst(memInst(isa.LOADB, dst, m)) }

// LoadA emits A = mem32[m] with an alignment check: the computed address
// must be 4-aligned or the machine raises an alignment fault.
func (a *Assembler) LoadA(dst isa.Reg, m Mem) { a.inst(memInst(isa.LOADA, dst, m)) }

// StoreB emits mem8[m] = low byte of A.
func (a *Assembler) StoreB(m Mem, src isa.Reg) { a.inst(memInst(isa.STOREB, src, m)) }

// Lea emits A = address-of(m).
func (a *Assembler) Lea(dst isa.Reg, m Mem) { a.inst(memInst(isa.LEA, dst, m)) }

func (a *Assembler) aluRR(op isa.Op, dst, src isa.Reg) {
	a.inst(isa.Inst{Op: op, A: dst, B: src, X: isa.NoReg})
}

func (a *Assembler) aluRI(op isa.Op, dst isa.Reg, imm int32) {
	a.inst(isa.Inst{Op: op, A: dst, X: isa.NoReg, Imm: imm})
}

// Arithmetic and logic emitters.
func (a *Assembler) AddRR(dst, src isa.Reg)       { a.aluRR(isa.ADDRR, dst, src) }
func (a *Assembler) AddRI(dst isa.Reg, imm int32) { a.aluRI(isa.ADDRI, dst, imm) }
func (a *Assembler) SubRR(dst, src isa.Reg)       { a.aluRR(isa.SUBRR, dst, src) }
func (a *Assembler) SubRI(dst isa.Reg, imm int32) { a.aluRI(isa.SUBRI, dst, imm) }
func (a *Assembler) MulRR(dst, src isa.Reg)       { a.aluRR(isa.MULRR, dst, src) }
func (a *Assembler) MulRI(dst isa.Reg, imm int32) { a.aluRI(isa.MULRI, dst, imm) }
func (a *Assembler) DivRR(dst, src isa.Reg)       { a.aluRR(isa.DIVRR, dst, src) }
func (a *Assembler) ModRR(dst, src isa.Reg)       { a.aluRR(isa.MODRR, dst, src) }
func (a *Assembler) AndRR(dst, src isa.Reg)       { a.aluRR(isa.ANDRR, dst, src) }
func (a *Assembler) AndRI(dst isa.Reg, imm int32) { a.aluRI(isa.ANDRI, dst, imm) }
func (a *Assembler) OrRR(dst, src isa.Reg)        { a.aluRR(isa.ORRR, dst, src) }
func (a *Assembler) OrRI(dst isa.Reg, imm int32)  { a.aluRI(isa.ORRI, dst, imm) }
func (a *Assembler) XorRR(dst, src isa.Reg)       { a.aluRR(isa.XORRR, dst, src) }
func (a *Assembler) XorRI(dst isa.Reg, imm int32) { a.aluRI(isa.XORRI, dst, imm) }
func (a *Assembler) ShlRI(dst isa.Reg, imm int32) { a.aluRI(isa.SHLRI, dst, imm) }
func (a *Assembler) ShrRI(dst isa.Reg, imm int32) { a.aluRI(isa.SHRRI, dst, imm) }
func (a *Assembler) SarRI(dst isa.Reg, imm int32) { a.aluRI(isa.SARRI, dst, imm) }

// SextB emits A = sign-extend(low byte of A).
func (a *Assembler) SextB(dst isa.Reg) { a.aluRI(isa.SEXTB, dst, 0) }

// CmpRR emits flags = compare(A, B).
func (a *Assembler) CmpRR(x, y isa.Reg) { a.aluRR(isa.CMPRR, x, y) }

// CmpRI emits flags = compare(A, imm).
func (a *Assembler) CmpRI(x isa.Reg, imm int32) { a.aluRI(isa.CMPRI, x, imm) }

func (a *Assembler) branch(op isa.Op, label string) {
	a.emit(item{inst: isa.Inst{Op: op, X: isa.NoReg}, fixup: fixRelative, label: label})
}

// Branch emitters targeting labels.
func (a *Assembler) Jmp(label string)  { a.branch(isa.JMP, label) }
func (a *Assembler) Je(label string)   { a.branch(isa.JE, label) }
func (a *Assembler) Jne(label string)  { a.branch(isa.JNE, label) }
func (a *Assembler) Jl(label string)   { a.branch(isa.JL, label) }
func (a *Assembler) Jle(label string)  { a.branch(isa.JLE, label) }
func (a *Assembler) Jg(label string)   { a.branch(isa.JG, label) }
func (a *Assembler) Jge(label string)  { a.branch(isa.JGE, label) }
func (a *Assembler) Jb(label string)   { a.branch(isa.JB, label) }
func (a *Assembler) Jbe(label string)  { a.branch(isa.JBE, label) }
func (a *Assembler) Ja(label string)   { a.branch(isa.JA, label) }
func (a *Assembler) Jae(label string)  { a.branch(isa.JAE, label) }
func (a *Assembler) Call(label string) { a.branch(isa.CALL, label) }

// JmpR emits an indirect jump through a register.
func (a *Assembler) JmpR(r isa.Reg) { a.inst(isa.Inst{Op: isa.JMPR, A: r, X: isa.NoReg}) }

// CallR emits an indirect call through a register.
func (a *Assembler) CallR(r isa.Reg) { a.inst(isa.Inst{Op: isa.CALLR, A: r, X: isa.NoReg}) }

// CallM emits an indirect call through memory (vtable dispatch).
func (a *Assembler) CallM(m Mem) { a.inst(memInst(isa.CALLM, 0, m)) }

// Ret emits a return.
func (a *Assembler) Ret() { a.inst(isa.Inst{Op: isa.RET, X: isa.NoReg}) }

// Push emits push A.
func (a *Assembler) Push(r isa.Reg) { a.inst(isa.Inst{Op: isa.PUSH, A: r, X: isa.NoReg}) }

// PushI emits push imm.
func (a *Assembler) PushI(imm int32) { a.inst(isa.Inst{Op: isa.PUSHI, X: isa.NoReg, Imm: imm}) }

// Pop emits A = pop().
func (a *Assembler) Pop(r isa.Reg) { a.inst(isa.Inst{Op: isa.POP, A: r, X: isa.NoReg}) }

// Sys emits a system call.
func (a *Assembler) Sys(num int32) { a.inst(isa.Inst{Op: isa.SYS, X: isa.NoReg, Imm: num}) }

// CopyB emits a block byte copy of ECX bytes from [ESI] to [EDI]
// (the rep-movsb idiom).
func (a *Assembler) CopyB() { a.inst(isa.Inst{Op: isa.COPYB, X: isa.NoReg}) }

// Word emits a 32-bit little-endian data word.
func (a *Assembler) Word(v uint32) {
	a.emit(item{data: []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}})
}

// WordLabel emits a 32-bit data word holding the address of label
// (used to build static dispatch tables).
func (a *Assembler) WordLabel(label string) {
	a.emit(item{data: []byte{0, 0, 0, 0}, fixup: fixAbsolute, label: label})
}

// Bytes emits raw data bytes.
func (a *Assembler) Bytes(b []byte) {
	cp := make([]byte, len(b))
	copy(cp, b)
	a.emit(item{data: cp})
}

// Space emits n zero bytes.
func (a *Assembler) Space(n int) { a.emit(item{data: make([]byte, n)}) }

// Assemble resolves all label references and returns the code image and the
// label map. The label map is diagnostic; the code bytes alone are what the
// protected machine loads.
func (a *Assembler) Assemble() ([]byte, map[string]uint32, error) {
	if len(a.errs) > 0 {
		return nil, nil, a.errs[0]
	}
	out := make([]byte, 0, a.off)
	for i, it := range a.items {
		addr := a.base + a.sizes[i]
		if it.fixup != fixNone {
			target, ok := a.labels[it.label]
			if !ok {
				return nil, nil, fmt.Errorf("asm: undefined label %q at %#x", it.label, addr)
			}
			switch {
			case it.fixup == fixRelative:
				it.inst.Imm = int32(target - (addr + isa.InstSize))
			case it.data != nil: // absolute fixup into a data word
				it.data = []byte{byte(target), byte(target >> 8), byte(target >> 16), byte(target >> 24)}
			default: // absolute fixup into an instruction immediate
				it.inst.Imm = int32(target)
			}
		}
		if it.data != nil {
			out = append(out, it.data...)
			continue
		}
		enc := it.inst.Encode()
		out = append(out, enc[:]...)
	}
	labels := make(map[string]uint32, len(a.labels))
	for k, v := range a.labels {
		labels[k] = v
	}
	return out, labels, nil
}

// MustAssemble is Assemble that panics on error; for use in tests and in
// the statically known webapp build.
func (a *Assembler) MustAssemble() ([]byte, map[string]uint32) {
	code, labels, err := a.Assemble()
	if err != nil {
		panic(err)
	}
	return code, labels
}

// Disassemble renders code bytes starting at base as one instruction per
// line, stopping at the first undecodable position. It is a debugging aid.
func Disassemble(code []byte, base uint32) []string {
	var lines []string
	for off := 0; off+isa.InstSize <= len(code); off += isa.InstSize {
		in, err := isa.Decode(code[off : off+isa.InstSize])
		if err != nil {
			lines = append(lines, fmt.Sprintf("%08x  <data>", base+uint32(off)))
			continue
		}
		lines = append(lines, fmt.Sprintf("%08x  %s", base+uint32(off), in))
	}
	return lines
}

// SortedLabels returns label names ordered by address, for readable dumps.
func SortedLabels(labels map[string]uint32) []string {
	names := make([]string, 0, len(labels))
	for n := range labels {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if labels[names[i]] != labels[names[j]] {
			return labels[names[i]] < labels[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}
