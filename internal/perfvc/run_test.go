package perfvc

import (
	"fmt"
	"strings"
	"testing"
)

// runSuite declares two groups: a root pair sharing a benchtime and a
// separate vm entry.
func runSuite() *Suite {
	return &Suite{Entries: []Entry{
		{Name: "BenchmarkAlpha", Package: ".", Benchtime: "100x", CIBenchtime: "10x", Class: ClassSteady},
		{Name: "BenchmarkBeta", Package: ".", Benchtime: "100x", CIBenchtime: "10x", Class: ClassSteady},
		{Name: "BenchmarkGamma", Package: "./internal/x", Benchtime: "50x", CIBenchtime: "5x", Class: ClassNoisy},
	}}
}

// TestRunnerAggregatesGroups feeds canned bench output through an
// injected Exec and checks the full pipeline: one invocation per group,
// correct flags, CPU capture, and folded multi-sample statistics.
func TestRunnerAggregatesGroups(t *testing.T) {
	var commands []string
	r := &Runner{
		Dir:   "/nonexistent",
		Count: 2,
		Exec: func(dir string, args []string) ([]byte, error) {
			if dir != "/nonexistent" {
				t.Errorf("dir = %q", dir)
			}
			cmd := strings.Join(args, " ")
			commands = append(commands, cmd)
			if strings.Contains(cmd, "internal/x") {
				return []byte("goos: linux\ncpu: Test CPU @ 1.00GHz\n" +
					"BenchmarkGamma 50 2000 ns/op\n" +
					"BenchmarkGamma 50 2200 ns/op\n" +
					"PASS\n"), nil
			}
			return []byte("cpu: Test CPU @ 1.00GHz\n" +
				"BenchmarkAlpha 100 100.0 ns/op 0 B/op 0 allocs/op\n" +
				"BenchmarkBeta/arm 100 500.0 ns/op\n" +
				"BenchmarkAlpha 100 110.0 ns/op 0 B/op 0 allocs/op\n" +
				"BenchmarkBeta/arm 100 510.0 ns/op\n" +
				"PASS\n"), nil
		},
	}
	p, cmds, err := r.Run(runSuite())
	if err != nil {
		t.Fatal(err)
	}
	if len(commands) != 2 {
		t.Fatalf("executed %d commands, want 2 groups: %v", len(commands), commands)
	}
	want0 := "test -run ^$ -bench ^(BenchmarkAlpha|BenchmarkBeta)$ -benchtime 100x -count 2 -benchmem ."
	if commands[0] != want0 {
		t.Errorf("group 0 command:\n got %q\nwant %q", commands[0], want0)
	}
	if len(cmds) != 2 || !strings.HasPrefix(cmds[0], "go test ") {
		t.Errorf("regenerate commands = %v", cmds)
	}
	if p.Meta.CPU != "Test CPU @ 1.00GHz" {
		t.Errorf("cpu = %q", p.Meta.CPU)
	}
	alpha := p.Benchmarks["BenchmarkAlpha"].Metrics["ns/op"]
	if alpha.Samples != 2 || alpha.Min != 100 || alpha.Max != 110 || alpha.Median != 105 {
		t.Errorf("Alpha ns/op = %+v", alpha)
	}
	// Sub-benchmark results key by full name but resolve to their entry.
	beta, ok := p.Benchmarks["BenchmarkBeta/arm"]
	if !ok || beta.Entry != "BenchmarkBeta" {
		t.Errorf("Beta sub-bench = %+v (present=%v)", beta, ok)
	}
	gamma := p.Benchmarks["BenchmarkGamma"].Metrics["ns/op"]
	if gamma.Median != 2100 {
		t.Errorf("Gamma ns/op = %+v", gamma)
	}
}

// TestRunnerCIBenchtimes checks the CI flag swaps in the short
// benchtimes.
func TestRunnerCIBenchtimes(t *testing.T) {
	var commands []string
	r := &Runner{
		Count: 1,
		CI:    true,
		Exec: func(dir string, args []string) ([]byte, error) {
			commands = append(commands, strings.Join(args, " "))
			if len(commands) == 1 {
				return []byte("BenchmarkAlpha 10 1 ns/op\nBenchmarkBeta 10 1 ns/op\nPASS\n"), nil
			}
			return []byte("BenchmarkGamma 5 1 ns/op\nPASS\n"), nil
		},
	}
	if _, _, err := r.Run(runSuite()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(commands[0], "-benchtime 10x") || !strings.Contains(commands[1], "-benchtime 5x") {
		t.Errorf("ci commands = %v", commands)
	}
}

// TestRunnerFailurePropagation checks each failure class surfaces as an
// error instead of a silently thin profile: failed benchmarks, package
// failure, nonzero exit, and registered entries producing no results.
func TestRunnerFailurePropagation(t *testing.T) {
	run := func(out string, execErr error) error {
		r := &Runner{Count: 1, Exec: func(dir string, args []string) ([]byte, error) {
			return []byte(out), execErr
		}}
		_, _, err := r.Run(&Suite{Entries: []Entry{
			{Name: "BenchmarkAlpha", Package: ".", Benchtime: "10x"},
		}})
		return err
	}

	if err := run("--- FAIL: BenchmarkAlpha\nFAIL\n", nil); err == nil || !strings.Contains(err.Error(), "BenchmarkAlpha") {
		t.Errorf("failed benchmark: err = %v", err)
	}
	if err := run("# repro [build failed]\nFAIL\trepro [build failed]\n", fmt.Errorf("exit status 1")); err == nil {
		t.Error("package failure not propagated")
	}
	if err := run("BenchmarkAlpha 10 1 ns/op\nPASS\n", fmt.Errorf("exit status 1")); err == nil {
		t.Error("nonzero exit with parseable output not propagated")
	}
	if err := run("PASS\nok\trepro\t0.01s\n", nil); err == nil || !strings.Contains(err.Error(), "no results") {
		t.Errorf("empty run: err = %v", err)
	}
	if _, _, err := (&Runner{Count: 0}).Run(&Suite{}); err == nil {
		t.Error("count 0 accepted")
	}
}

// TestSuiteScope checks Scope lists exactly the registered entry names.
func TestSuiteScope(t *testing.T) {
	scope := runSuite().Scope()
	if len(scope) != 3 || !scope["BenchmarkAlpha"] || !scope["BenchmarkGamma"] {
		t.Errorf("scope = %v", scope)
	}
}
