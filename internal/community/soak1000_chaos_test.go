package community

import (
	"strings"
	"testing"
	"time"

	"repro/internal/webapp"
)

// TestChaosSoak1000NodesFailover is the robustness headline: the full
// 1,000-node hierarchical community — 32 aggregators, 50 adversaries,
// continuous churn — with every connection wrapped in the seeded fault
// schedule (drops, delays, duplicates, mid-flush disconnects, partition
// windows), a replicated root, an aggregator crash at round 3, AND the
// root leader crashing at round 4. The campaign must converge on one
// adopted repair per defect, quarantine every adversary, and the report's
// fault counters must prove the chaos actually fired.
//
// Members play their rounds concurrently (a serial schedule would stack
// every injected timeout end to end); flushes stay serial so the root's
// replication lock sees one large batch at a time. Like the fault-free
// headline, it is skipped in -short mode and under the race detector —
// TestChaosSoakConverges covers the same machinery at race-friendly
// scale.
func TestChaosSoak1000NodesFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("1,000-node chaos soak skipped in -short mode")
	}
	if raceDetectorEnabled {
		t.Skip("1,000-node chaos soak skipped under the race detector")
	}
	app := webapp.MustBuild()
	conf := soakConfig(t, app, 1000, true)
	conf.Aggregators = 32
	conf.Adversaries = 50
	conf.Rounds = 5
	conf.Churn = &ChurnConfig{
		CrashPerRound: 10, JoinPerRound: 5,
		AggregatorCrashRound: 3, RootCrashRound: 4,
	}
	conf.Chaos = DefaultChaos(1)
	conf.RootReplicas = 1
	conf.Retry = &RetryPolicy{Seed: 1, RecvTimeout: 100 * time.Millisecond}
	conf.ParallelMembers = true

	rep, err := RunSoak(conf)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("chaos soak did not converge: %+v", rep)
	}
	for _, d := range rep.Defects {
		if !d.Converged || d.Adopted == "" {
			t.Fatalf("defect %s did not converge: %+v", d.Label, d)
		}
	}

	if len(rep.Quarantined) != conf.Adversaries {
		t.Fatalf("quarantined %d nodes, want all %d adversaries", len(rep.Quarantined), conf.Adversaries)
	}
	for _, id := range rep.Quarantined {
		if !strings.HasPrefix(id, "adv") {
			t.Fatalf("honest node %q quarantined", id)
		}
	}
	if rep.QuarantinedAdoptions != 0 {
		t.Fatalf("%d adoptions driven by quarantined nodes", rep.QuarantinedAdoptions)
	}

	// The schedule must have executed in full: churn, the aggregator
	// crash, and the root failover.
	if rep.Crashes == 0 || rep.Rejoins == 0 || rep.Joins == 0 || rep.AggregatorFailovers != 1 {
		t.Fatalf("churn schedule did not execute: %+v", rep)
	}
	if rep.RootFailovers != 1 {
		t.Fatalf("root failovers %d, want 1", rep.RootFailovers)
	}
	if rep.ReplayLogEntries == 0 {
		t.Fatal("replicated root recorded no log entries")
	}

	// And the faults must provably have fired and been absorbed.
	if rep.DroppedEnvelopes == 0 {
		t.Fatal("chaos dropped no envelopes; the schedule never fired")
	}
	if rep.Retries == 0 || rep.Reconnects == 0 {
		t.Fatalf("faults fired but clients never retried/reconnected: %+v", rep)
	}
	t.Logf("1,000 nodes under chaos: %d dropped, %d retries, %d reconnects, %d root failover(s), %d log entries, %d manager envelopes over %d rounds",
		rep.DroppedEnvelopes, rep.Retries, rep.Reconnects, rep.RootFailovers,
		rep.ReplayLogEntries, rep.Messages, rep.RoundsRun)
}
