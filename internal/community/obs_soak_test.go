package community

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/webapp"
)

// soakStages is every pipeline stage a full-featured hierarchical soak —
// aggregators, adversaries, churn, a recorder node — must light up. The
// paper-stage mapping lives in ARCHITECTURE.md's observability section.
var soakStages = []string{
	"detect",       // monitor detection → failure notification (node)
	"record",       // manager ingesting shipped recordings
	"record.seal",  // recorder node sealing a failing run's tape
	"vet",          // manager vetting recordings before trusting them
	"farm",         // replay farm candidate evaluation
	"correlate",    // correlation classification
	"learn",        // invariant-database merge (fires via the spoofer)
	"evaluate",     // repair-evaluation bookkeeping
	"adopt",        // directive assembly / adoption
	"mgr.handle",   // manager envelope handling
	"agg.handle",   // aggregator envelope handling
	"flush",        // aggregator flush round trips
	"node.execute", // node VM runs
	"node.sync",    // node upstream round trips
}

// TestSoakTelemetryStagesAndCounters runs a small hierarchical soak with
// telemetry armed and asserts (a) every pipeline stage recorded at least
// one span, and (b) the registry's counters agree exactly with the
// report's accessor-backed totals — the counters and the accessors are
// one set of atomics, not two ledgers that can drift.
func TestSoakTelemetryStagesAndCounters(t *testing.T) {
	app := webapp.MustBuild()
	conf := soakConfig(t, app, 12, true)
	conf.Aggregators = 2
	conf.Adversaries = 2 // one spoofer (lights "learn") + one forger
	conf.Recorders = 1
	conf.Rounds = 4
	conf.Churn = &ChurnConfig{CrashPerRound: 1, JoinPerRound: 1}
	reg := obs.New()
	conf.Obs = reg

	rep, err := RunSoak(conf)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("soak did not converge: %+v", rep)
	}
	if rep.Obs == nil {
		t.Fatal("report carries no telemetry snapshot despite SoakConfig.Obs")
	}
	for _, name := range soakStages {
		st := rep.Obs.Stage(name)
		if st == nil || st.Spans == 0 {
			t.Errorf("stage %q recorded no spans", name)
			continue
		}
		if st.WallNs < 0 || st.BlockedNs < 0 || st.OnCPUNs < 0 {
			t.Errorf("stage %q has negative time: %+v", name, st)
		}
		if st.OnCPUNs+st.BlockedNs < st.WallNs {
			t.Errorf("stage %q ledger leaks: on-cpu %d + blocked %d < wall %d",
				name, st.OnCPUNs, st.BlockedNs, st.WallNs)
		}
	}

	for counter, want := range map[string]int{
		"mgr.messages":    rep.Messages,
		"mgr.batches":     rep.Batches,
		"mgr.replay_runs": rep.ReplayRuns,
	} {
		if got := rep.Obs.Counter(counter); got != int64(want) {
			t.Errorf("counter %s = %d, report says %d", counter, got, want)
		}
	}
}

// TestSoakTelemetryParallelChurnStorm is the counter-unification test the
// race detector cares about: parallel member turns and parallel flushes
// hammer one shared registry from every goroutine in the rig while churn
// crashes and joins nodes mid-round. Under -race this pins the lock-free
// counter/span paths; under the normal build it checks that the parallel
// soak still converges and reports coherent telemetry.
func TestSoakTelemetryParallelChurnStorm(t *testing.T) {
	app := webapp.MustBuild()
	conf := soakConfig(t, app, 10, true)
	conf.Aggregators = 2
	conf.Adversaries = 2
	conf.Recorders = 1
	conf.Rounds = 4
	conf.Churn = &ChurnConfig{CrashPerRound: 1, JoinPerRound: 1}
	conf.ParallelMembers = true
	conf.ParallelFlush = true
	reg := obs.New()
	conf.Obs = reg

	rep, err := RunSoak(conf)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("parallel soak did not converge: %+v", rep)
	}
	if rep.Obs == nil {
		t.Fatal("report carries no telemetry snapshot")
	}
	// Counters written from parallel goroutines still match the
	// accessor-backed report exactly.
	if got := rep.Obs.Counter("mgr.messages"); got != int64(rep.Messages) {
		t.Errorf("mgr.messages = %d, report says %d", got, rep.Messages)
	}
	if st := rep.Obs.Stage("node.execute"); st == nil || st.Spans == 0 {
		t.Error("node.execute recorded no spans under the parallel rig")
	}
	if st := rep.Obs.Stage("agg.handle"); st == nil || st.Spans == 0 {
		t.Error("agg.handle recorded no spans under the parallel rig")
	}
}
