package vm

import (
	"bytes"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

func TestCopyBCopiesBytes(t *testing.T) {
	im, _ := buildImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.MovRI(isa.EAX, 16)
		a.Sys(isa.SysAlloc)
		a.MovRR(isa.ESI, isa.EAX)
		a.MovRI(isa.ECX, 8)
		a.Sys(isa.SysRead) // 8 input bytes -> [ESI]
		a.MovRI(isa.EAX, 16)
		a.Sys(isa.SysAlloc)
		a.MovRR(isa.EDI, isa.EAX)
		a.MovRI(isa.ECX, 8)
		a.CopyB()
		a.SubRI(isa.EDI, 8) // rewind to copy start
		a.MovRR(isa.EAX, isa.EDI)
		a.MovRI(isa.ECX, 8)
		a.Sys(isa.SysWrite)
		a.MovRR(isa.EAX, isa.ECX)
		a.Sys(isa.SysExit)
	})
	res := run(t, im, Config{Input: []byte("abcdefgh")})
	if res.Outcome != OutcomeExit || !bytes.Equal(res.Output, []byte("abcdefgh")) {
		t.Fatalf("res = %+v output %q", res, res.Output)
	}
}

func TestCopyBRegistersAdvance(t *testing.T) {
	im, _ := buildImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.MovRI(isa.EAX, 16)
		a.Sys(isa.SysAlloc)
		a.MovRR(isa.ESI, isa.EAX)
		a.MovRI(isa.EAX, 16)
		a.Sys(isa.SysAlloc)
		a.MovRR(isa.EDI, isa.EAX)
		a.MovRI(isa.ECX, 4)
		a.CopyB()
		a.MovRR(isa.EAX, isa.ECX) // ECX must be 0 after the copy
		a.Sys(isa.SysExit)
	})
	if res := run(t, im, Config{}); res.ExitCode != 0 {
		t.Fatalf("ECX after copyb = %d", res.ExitCode)
	}
}

func TestCopyBFaultsOnHugeCount(t *testing.T) {
	// A 0xFFFFFFFE-byte copy up the stack faults at the stack top; with
	// no exception handler registered this is a plain crash.
	im, _ := buildImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.MovRI(isa.EAX, 64)
		a.Sys(isa.SysAlloc)
		a.MovRR(isa.ESI, isa.EAX)
		a.MovRR(isa.EDI, isa.ESP)
		a.MovRI(isa.ECX, -2) // 0xFFFFFFFE
		a.CopyB()
		a.Sys(isa.SysExit)
	})
	res := run(t, im, Config{})
	if res.Outcome != OutcomeCrash {
		t.Fatalf("res = %+v", res)
	}
}

// ehProgram overwrites its own exception-handler record via a huge upward
// copy, then faults at the stack top, triggering handler dispatch.
func ehProgram(t testing.TB, handlerValue string) (*Config, map[string]uint32) {
	im, labels := buildImage(t, func(a *asm.Assembler) {
		a.Label("main")
		// Install the EH record at the top of the stack.
		a.SubRI(isa.ESP, 4)
		a.MovLabel(isa.ECX, "default_eh")
		a.Store(asm.M(isa.ESP, 0), isa.ECX)
		a.MovRR(isa.EAX, isa.ESP)
		a.Sys(isa.SysSetEH)
		// Fill a source buffer with the attacker's handler address.
		a.MovRI(isa.EAX, 64)
		a.Sys(isa.SysAlloc)
		a.MovRR(isa.ESI, isa.EAX)
		a.MovLabel(isa.EBX, handlerValue)
		for off := int32(0); off < 32; off += 4 {
			a.Store(asm.M(isa.ESI, off), isa.EBX)
		}
		// Copy "forever" upward from just below the EH record: the copy
		// overwrites the record then faults past the stack top. The
		// source pattern repeats the handler address (4-byte aligned).
		a.SubRI(isa.ESP, 16)
		a.MovRR(isa.EDI, isa.ESP)
		a.MovRI(isa.ECX, 8) // 16 locals + 4 EH slot... copy 24 bytes then fault
		a.MovRI(isa.ECX, -2)
		a.Label("copysite")
		a.CopyB()
		a.Sys(isa.SysExit)
		a.Label("default_eh")
		a.MovRI(isa.EAX, 7)
		a.Sys(isa.SysExit)
		a.Label("benign")
		a.MovRI(isa.EAX, 9)
		a.Sys(isa.SysExit)
	})
	return &Config{Image: im}, labels
}

func TestExceptionDispatchToCodeHandler(t *testing.T) {
	// The copy overwrites the EH record with the address of "benign"
	// (still application code): without a firewall the dispatch succeeds
	// and the handler runs.
	cfg, _ := ehProgram(t, "benign")
	v, err := New(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := v.Run()
	if res.Outcome != OutcomeExit || res.ExitCode != 9 {
		t.Fatalf("res = %+v", res)
	}
}

func TestExceptionDispatchValidated(t *testing.T) {
	// With a transfer validator registered (the firewall), the same
	// dispatch to a non-code target becomes a monitored failure. The
	// source pattern here is a heap address, so the overwritten record
	// points outside code.
	cfg, labels := ehProgram(t, "benign")
	v, err := New(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	v.SetTransferValidator(func(pc, target uint32) *Failure {
		if v.InCode(target) {
			return nil
		}
		return &Failure{PC: pc, Monitor: "MemoryFirewall", Kind: "illegal control flow transfer", Target: target}
	})
	// Overwrite source pattern with a heap address instead: rebuild with
	// the pattern being the allocated buffer's own address. Simulate by
	// writing the pattern before running.
	_ = labels
	res := v.Run()
	// The pattern is "benign" (code address): validator accepts -> exit 9.
	if res.Outcome != OutcomeExit || res.ExitCode != 9 {
		t.Fatalf("code-target dispatch rejected: %+v", res)
	}
}

func TestExceptionDispatchBlockedOnInjectedTarget(t *testing.T) {
	// Handler record overwritten with a heap pointer: the validator must
	// convert the dispatch into a failure at the faulting instruction.
	im, labels := buildImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.SubRI(isa.ESP, 4)
		a.MovLabel(isa.ECX, "default_eh")
		a.Store(asm.M(isa.ESP, 0), isa.ECX)
		a.MovRR(isa.EAX, isa.ESP)
		a.Sys(isa.SysSetEH)
		a.MovRI(isa.EAX, 64)
		a.Sys(isa.SysAlloc)
		a.MovRR(isa.ESI, isa.EAX)
		// Fill source with the heap buffer's own address (injected code).
		for off := int32(0); off < 32; off += 4 {
			a.Store(asm.M(isa.ESI, off), isa.ESI)
		}
		a.SubRI(isa.ESP, 16)
		a.MovRR(isa.EDI, isa.ESP)
		a.MovRI(isa.ECX, -2)
		a.Label("copysite")
		a.CopyB()
		a.Sys(isa.SysExit)
		a.Label("default_eh")
		a.MovRI(isa.EAX, 7)
		a.Sys(isa.SysExit)
	})
	v, err := New(Config{Image: im})
	if err != nil {
		t.Fatal(err)
	}
	v.SetTransferValidator(func(pc, target uint32) *Failure {
		if v.InCode(target) {
			return nil
		}
		return &Failure{PC: pc, Monitor: "MemoryFirewall", Kind: "illegal control flow transfer", Target: target}
	})
	res := v.Run()
	if res.Outcome != OutcomeFailure {
		t.Fatalf("res = %+v", res)
	}
	if res.Failure.PC != labels["copysite"] {
		t.Errorf("failure PC = %#x, want copy site %#x", res.Failure.PC, labels["copysite"])
	}
	if res.Failure.Target < 0x2000_0000 {
		t.Errorf("target = %#x, want heap", res.Failure.Target)
	}
}

func TestExceptionDispatchOnlyOnce(t *testing.T) {
	// A handler that itself faults must not loop: the second fault is a
	// plain crash.
	im, _ := buildImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.SubRI(isa.ESP, 4)
		a.MovLabel(isa.ECX, "bad_eh")
		a.Store(asm.M(isa.ESP, 0), isa.ECX)
		a.MovRR(isa.EAX, isa.ESP)
		a.Sys(isa.SysSetEH)
		a.MovRI(isa.EBX, 0x0BAD0000)
		a.Load(isa.EAX, asm.M(isa.EBX, 0)) // fault #1 -> dispatch
		a.Sys(isa.SysExit)
		a.Label("bad_eh")
		a.MovRI(isa.EBX, 0x0BAD0000)
		a.Load(isa.EAX, asm.M(isa.EBX, 0)) // fault #2 -> crash
		a.Sys(isa.SysExit)
	})
	v, _ := New(Config{Image: im})
	res := v.Run()
	if res.Outcome != OutcomeCrash {
		t.Fatalf("res = %+v", res)
	}
}
