package obs

import (
	"context"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// Stage accumulates the spans of one pipeline phase: how many ran, their
// total and maximum wall time, their total blocked time, and the blocked
// time attributed to each named blocking point. All methods are safe for
// concurrent use and no-ops on a nil receiver.
type Stage struct {
	name    string
	spans   atomic.Int64
	wallNs  atomic.Int64
	blocked atomic.Int64
	maxNs   atomic.Int64

	mu     sync.Mutex
	points map[string]*point
}

type point struct {
	waits   atomic.Int64
	blocked atomic.Int64
}

// addBlocked attributes a wait at a named point to the stage.
func (st *Stage) addBlocked(pt string, d time.Duration) {
	if st == nil || d < 0 {
		return
	}
	st.blocked.Add(int64(d))
	st.mu.Lock()
	if st.points == nil {
		st.points = make(map[string]*point)
	}
	p, ok := st.points[pt]
	if !ok {
		p = &point{}
		st.points[pt] = p
	}
	st.mu.Unlock()
	p.waits.Add(1)
	p.blocked.Add(int64(d))
}

// snapshot copies the stage's accumulated state.
func (st *Stage) snapshot() StageSnap {
	snap := StageSnap{
		Name:      st.name,
		Spans:     st.spans.Load(),
		WallNs:    st.wallNs.Load(),
		BlockedNs: st.blocked.Load(),
		MaxNs:     st.maxNs.Load(),
	}
	snap.OnCPUNs = snap.WallNs - snap.BlockedNs
	if snap.OnCPUNs < 0 {
		snap.OnCPUNs = 0
	}
	st.mu.Lock()
	for name, p := range st.points {
		snap.Points = append(snap.Points, PointSnap{
			Point:     name,
			Waits:     p.waits.Load(),
			BlockedNs: p.blocked.Load(),
		})
	}
	st.mu.Unlock()
	for i := 1; i < len(snap.Points); i++ {
		for j := i; j > 0 && snap.Points[j].Point < snap.Points[j-1].Point; j-- {
			snap.Points[j], snap.Points[j-1] = snap.Points[j-1], snap.Points[j]
		}
	}
	return snap
}

// Tracer hands out stage spans against one registry. A nil tracer is the
// disabled state: Start returns a nil span and every span method is a
// no-op, so instrumentation sites need no conditionals.
type Tracer struct {
	reg *Registry
	// labels, when set, tags each span's goroutine with a pprof
	// "stage=<name>" label for the duration of the span, so CPU profile
	// samples taken while telemetry runs can be attributed per stage with
	// standard pprof tooling. Spans do not nest labels: a span restores
	// the empty label set on Finish.
	labels bool
}

// NewTracer builds a tracer recording into reg. A nil registry yields a
// nil (disabled) tracer.
func NewTracer(reg *Registry) *Tracer {
	if reg == nil {
		return nil
	}
	return &Tracer{reg: reg}
}

// WithPprofLabels returns a tracer that additionally tags span goroutines
// with pprof stage labels (see Tracer.labels). Nil-safe.
func (t *Tracer) WithPprofLabels() *Tracer {
	if t == nil {
		return nil
	}
	return &Tracer{reg: t.reg, labels: true}
}

// Registry returns the registry this tracer records into (nil for a
// disabled tracer).
func (t *Tracer) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Counter is shorthand for Registry().Counter; nil-safe.
func (t *Tracer) Counter(name string) *Counter {
	if t == nil {
		return nil
	}
	return t.reg.Counter(name)
}

// Start opens a span for the named stage. Finish it exactly once; extra
// Finish calls and never-finished (orphaned) spans are both harmless —
// an orphan simply contributes nothing.
func (t *Tracer) Start(stage string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{stage: t.reg.Stage(stage), start: time.Now()}
	if t.labels {
		s.labeled = true
		pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(), pprof.Labels("stage", stage)))
	}
	return s
}

// Span is one execution of a pipeline stage. Methods are safe on a nil
// receiver; Block/AddBlocked may be called from any goroutine, but Start
// and Finish are expected on the same one (pprof labels are per
// goroutine).
type Span struct {
	stage    *Stage
	start    time.Time
	blocked  atomic.Int64
	finished atomic.Bool
	labeled  bool
}

// noop is the shared no-op closure Block returns on a nil span, so
// disabled telemetry does not allocate.
var noop = func() {}

// Block starts timing a wait at a named blocking point and returns the
// function that ends it:
//
//	done := span.Block("mgr.mu")
//	m.mu.Lock()
//	done()
//
// The measured time counts toward the span's blocked total and the
// point's attribution.
func (s *Span) Block(pt string) func() {
	if s == nil {
		return noop
	}
	start := time.Now()
	return func() { s.AddBlocked(pt, time.Since(start)) }
}

// BlockFor runs f, attributing its whole duration as blocked time at the
// named point. On a nil span, f still runs.
func (s *Span) BlockFor(pt string, f func()) {
	if s == nil {
		f()
		return
	}
	done := s.Block(pt)
	f()
	done()
}

// AddBlocked attributes an externally measured wait to the span.
func (s *Span) AddBlocked(pt string, d time.Duration) {
	if s == nil || d <= 0 {
		return
	}
	s.blocked.Add(int64(d))
	s.stage.addBlocked(pt, d)
}

// Finish closes the span, recording its wall time (and its blocked total
// accumulated via Block/AddBlocked) into the stage. Double finishes are
// ignored.
func (s *Span) Finish() {
	if s == nil || !s.finished.CompareAndSwap(false, true) {
		return
	}
	wall := time.Since(s.start)
	if wall < 0 {
		wall = 0
	}
	st := s.stage
	st.spans.Add(1)
	st.wallNs.Add(int64(wall))
	for {
		cur := st.maxNs.Load()
		if int64(wall) <= cur || st.maxNs.CompareAndSwap(cur, int64(wall)) {
			break
		}
	}
	if s.labeled {
		pprof.SetGoroutineLabels(context.Background())
	}
}

// Observe records a complete stage execution in one call — a span with a
// known wall time and blocked portion, for callers that already timed the
// work. Nil-safe.
func (t *Tracer) Observe(stage string, wall, blockedAt time.Duration, pt string) {
	if t == nil {
		return
	}
	st := t.reg.Stage(stage)
	if wall < 0 {
		wall = 0
	}
	st.spans.Add(1)
	st.wallNs.Add(int64(wall))
	for {
		cur := st.maxNs.Load()
		if int64(wall) <= cur || st.maxNs.CompareAndSwap(cur, int64(wall)) {
			break
		}
	}
	if blockedAt > 0 && pt != "" {
		st.blocked.Add(int64(blockedAt))
		st.addBlockedOnly(pt, blockedAt)
	}
}

// addBlockedOnly attributes point blocked time without touching the stage
// total (Observe already added it).
func (st *Stage) addBlockedOnly(pt string, d time.Duration) {
	st.mu.Lock()
	if st.points == nil {
		st.points = make(map[string]*point)
	}
	p, ok := st.points[pt]
	if !ok {
		p = &point{}
		st.points[pt] = p
	}
	st.mu.Unlock()
	p.waits.Add(1)
	p.blocked.Add(int64(d))
}
