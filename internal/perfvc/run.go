package perfvc

import (
	"bytes"
	"fmt"
	"io"
	"os/exec"
	"strconv"
	"strings"
)

// Runner executes the suite with `go test -bench` and folds the parsed
// output into a Profile. Exec is injectable so the aggregation pipeline
// is testable against captured output without a toolchain.
type Runner struct {
	// Dir is the repo root the go commands run in.
	Dir string
	// Count is the -count per benchmark (samples per statistic).
	Count int
	// CI selects the short CI benchtimes instead of the full ones.
	CI bool
	// Exec runs one command and returns its combined output; nil uses
	// os/exec with the go toolchain. The error is only consulted after
	// parsing, so bench output from a failing run is still attributed.
	Exec func(dir string, args []string) ([]byte, error)
	// Log receives progress lines; nil discards them.
	Log io.Writer
}

// Run executes every suite group and returns the aggregated profile
// (meta left for the caller to fill, except CPU, which is taken from the
// bench output header) plus the exact commands executed — the material
// for the profile's regenerate block. Skipped benchmarks are reported in
// the error when the suite expected them; failed benchmarks always are.
func (r *Runner) Run(s *Suite) (*Profile, []string, error) {
	if r.Count < 1 {
		return nil, nil, fmt.Errorf("count must be >= 1, got %d", r.Count)
	}
	execFn := r.Exec
	if execFn == nil {
		execFn = func(dir string, args []string) ([]byte, error) {
			cmd := exec.Command("go", args...)
			cmd.Dir = dir
			var buf bytes.Buffer
			cmd.Stdout = &buf
			cmd.Stderr = &buf
			err := cmd.Run()
			return buf.Bytes(), err
		}
	}
	p := &Profile{Benchmarks: map[string]Bench{}}
	var commands []string
	var scope []string
	for _, g := range s.groups(r.CI) {
		args := []string{
			"test", "-run", "^$",
			"-bench", "^(" + strings.Join(g.names, "|") + ")$",
			"-benchtime", g.benchtime,
			"-count", strconv.Itoa(r.Count),
			"-benchmem",
			g.pkg,
		}
		cmd := "go " + strings.Join(args, " ")
		commands = append(commands, cmd)
		scope = append(scope, g.names...)
		if r.Log != nil {
			fmt.Fprintf(r.Log, "perfvc: %s\n", cmd)
		}
		raw, runErr := execFn(r.Dir, args)
		out, parseErr := ParseBench(bytes.NewReader(raw))
		if parseErr != nil {
			return nil, commands, fmt.Errorf("%s: %w", cmd, parseErr)
		}
		if len(out.Failed) > 0 {
			return nil, commands, fmt.Errorf("%s: benchmarks failed: %s", cmd, strings.Join(out.Failed, ", "))
		}
		if out.PackageFailed || runErr != nil {
			return nil, commands, fmt.Errorf("%s: run failed: %v\n%s", cmd, runErr, tail(raw, 2048))
		}
		if out.CPU != "" && p.Meta.CPU == "" {
			p.Meta.CPU = out.CPU
		}
		for name, metrics := range fold(out.Samples) {
			entry := name
			if e := s.EntryFor(name); e != nil {
				entry = e.Name
			}
			p.Benchmarks[name] = Bench{Package: g.pkg, Entry: entry, Metrics: metrics}
		}
		if len(out.Skipped) > 0 && r.Log != nil {
			fmt.Fprintf(r.Log, "perfvc: skipped: %s\n", strings.Join(out.Skipped, ", "))
		}
	}
	// Every registered entry must have produced at least one result —
	// a suite run that silently measured nothing is not a baseline.
	produced := map[string]bool{}
	for _, b := range p.Benchmarks {
		produced[b.Entry] = true
	}
	var missing []string
	for _, name := range scope {
		if !produced[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		return nil, commands, fmt.Errorf("registered benchmarks produced no results: %s", strings.Join(missing, ", "))
	}
	return p, commands, nil
}

// Scope returns the set of entry names a run over this suite covers —
// what Compare needs to distinguish "not attempted" from "removed".
func (s *Suite) Scope() map[string]bool {
	scope := make(map[string]bool, len(s.Entries))
	for _, e := range s.Entries {
		scope[e.Name] = true
	}
	return scope
}

// tail returns the last n bytes of raw output for error context.
func tail(raw []byte, n int) []byte {
	if len(raw) <= n {
		return raw
	}
	return raw[len(raw)-n:]
}
