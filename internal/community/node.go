package community

import (
	"fmt"

	"repro/internal/correlate"
	"repro/internal/daikon"
	"repro/internal/image"
	"repro/internal/obs"
	"repro/internal/repair"
	"repro/internal/replay"
	"repro/internal/trace"
	"repro/internal/vm"
)

// Node is one community member's node manager (the Determina Node Manager
// analog): it applies the manager's directives to its application
// instances, runs its own workload, streams observations and failure
// notifications back, and contributes its share of the distributed
// learning.
type Node struct {
	ID    string       // stable identity; all community state is keyed by it
	Image *image.Image // the protected binary this node runs

	// RecordFailures makes the node capture every execution as a
	// copy-on-write recording and ship failing ones to the manager
	// (MsgRecording), enabling the manager's replay fast path.
	RecordFailures bool
	// SnapshotInterval tunes the recording snapshot cadence;
	// 0 selects replay.DefaultSnapshotInterval.
	SnapshotInterval uint64

	// Obs, when set, traces this node's pipeline stages: node.execute
	// (the VM run), detect (failure detection to report assembly),
	// record.seal (tape sealing), and node.sync (the upstream round
	// trip). Nil disables tracing.
	Obs *obs.Tracer

	conn Conn
	dir  Directives

	engine   *daikon.Engine
	maxSteps uint64
}

// NewNode creates a node manager speaking to the central manager over
// conn.
func NewNode(id string, img *image.Image, conn Conn) *Node {
	return &Node{ID: id, Image: img, conn: conn, engine: daikon.NewEngine()}
}

// Connect registers with the manager and fetches initial directives.
func (n *Node) Connect() error {
	env, err := NewEnvelope(MsgHello, Hello{NodeID: n.ID})
	if err != nil {
		return err
	}
	return n.roundTrip(env)
}

// Attach re-homes the node onto a replacement transport — a sibling
// aggregator after its own crashed, or the same manager after a network
// drop — and re-registers. The node keeps its identity, its locally
// inferred learning state, and its last directives; everything durable on
// the community side (learning shard, repair assignment, quarantine
// status) is keyed by node ID at the manager, so a re-attached node
// resumes exactly where it left off no matter which tier it lands on.
func (n *Node) Attach(conn Conn) error {
	if n.conn != nil {
		_ = n.conn.Close()
	}
	n.conn = conn
	return n.Connect()
}

// roundTrip sends a message and applies the directives that come back.
func (n *Node) roundTrip(env Envelope) error {
	sp := n.Obs.Start("node.sync")
	defer sp.Finish()
	var sendErr error
	sp.BlockFor("upstream", func() { sendErr = n.conn.Send(env) })
	if sendErr != nil {
		return sendErr
	}
	var reply Envelope
	var recvErr error
	sp.BlockFor("upstream", func() { reply, recvErr = n.conn.Recv() })
	if recvErr != nil {
		return recvErr
	}
	switch reply.Kind {
	case MsgDirectives:
		// Decode into a fresh value: gob merges into existing structures
		// (zero fields are omitted on the wire and keep their old bytes on
		// decode), so reusing n.dir would let directives from a previous
		// phase bleed into this one.
		var dir Directives
		if err := decodePayload(reply.Payload, &dir); err != nil {
			return err
		}
		n.dir = dir
		return nil
	case MsgAck:
		return nil
	}
	return fmt.Errorf("community: unexpected reply %v", reply.Kind)
}

// Directives returns the node's current instruction set (for tests).
func (n *Node) Directives() Directives { return n.dir }

// Sync pulls the manager's current directives.
func (n *Node) Sync() error {
	env, err := NewEnvelope(MsgHello, Hello{NodeID: n.ID})
	if err != nil {
		return err
	}
	return n.roundTrip(env)
}

// compile turns the manager's declarative patch specs into local
// execution-environment patches — the node-side analog of compiling the
// generated C snippets (§3.2).
func (n *Node) compile() ([]*vm.Patch, []*correlate.CheckSet) {
	var patches []*vm.Patch

	byFailure := map[string][]correlate.Candidate{}
	for i := range n.dir.Checks {
		spec := &n.dir.Checks[i]
		inv := spec.Invariant
		byFailure[spec.FailureID] = append(byFailure[spec.FailureID],
			correlate.Candidate{Inv: &inv})
	}
	var sets []*correlate.CheckSet
	for fid, cands := range byFailure {
		cs := correlate.BuildCheckSet(fid, cands)
		cs.StartRun()
		sets = append(sets, cs)
		patches = append(patches, cs.Patches...)
	}

	for i := range n.dir.Repairs {
		spec := &n.dir.Repairs[i]
		inv := spec.Invariant
		r := &repair.Repair{
			Inv:      &inv,
			Strategy: spec.Strategy,
			Value:    spec.Value,
			SPDelta:  spec.SPDelta,
			PC:       spec.PC,
			Depth:    spec.Depth,
		}
		patches = append(patches, r.BuildPatches(spec.FailureID)...)
	}
	return patches, sets
}

// runLocal executes the application on one input under the current
// directives and assembles the run report; if the node records failures
// and the run failed, the sealed recording's wire form is returned too.
func (n *Node) runLocal(input []byte) (vm.RunResult, RunReport, []byte, error) {
	patches, sets := n.compile()

	// The node runs the full detector set — the same configuration
	// sealRecording claims (replay.AllMonitors), so the manager's replays
	// and vets reproduce the node's detections bit for bit.
	plugins, shadow, hang := replay.AllMonitors().Plugins()

	var rec *trace.Recorder
	if n.dir.LearnHi > n.dir.LearnLo {
		lo, hi := n.dir.LearnLo, n.dir.LearnHi
		rec = trace.NewRecorder(n.engine)
		rec.Filter = func(pc uint32) bool { return pc >= lo && pc < hi }
		plugins = append(plugins, rec)
	}

	cfg := vm.Config{
		Image:    n.Image,
		Plugins:  plugins,
		Patches:  patches,
		Input:    input,
		MaxSteps: n.maxSteps,
	}
	var tape *replay.Tape
	if n.RecordFailures {
		tape = replay.NewTape(n.SnapshotInterval)
		cfg.SnapshotInterval = tape.Interval()
		cfg.SnapshotSink = tape.Sink
	}
	machine, err := vm.New(cfg)
	if err != nil {
		return vm.RunResult{}, RunReport{}, nil, err
	}
	shadow.Install(machine)
	hang.Install(machine)
	esp := n.Obs.Start("node.execute")
	res := machine.Run()
	esp.Finish()

	if rec != nil {
		if res.Outcome == vm.OutcomeExit && res.ExitCode == 0 {
			rec.CommitRun()
		} else {
			rec.DiscardRun()
		}
	}

	rep := RunReport{
		NodeID:   n.ID,
		Seq:      n.dir.Seq,
		Outcome:  uint8(res.Outcome),
		ExitCode: res.ExitCode,
	}
	if res.Failure != nil {
		// The monitor fired during the run; the detect span covers turning
		// that detection into the wire-form failure notification.
		dsp := n.Obs.Start("detect")
		rep.Failure = &FailureInfo{
			PC:      res.Failure.PC,
			Monitor: res.Failure.Monitor,
			Kind:    res.Failure.Kind,
			Target:  res.Failure.Target,
			Stack:   res.Failure.Stack,
		}
		dsp.Finish()
	}
	for _, cs := range sets {
		rep.Observations = append(rep.Observations, cs.DrainRun()...)
	}

	var raw []byte
	if tape != nil && res.Failure != nil {
		rsp := n.Obs.Start("record.seal")
		raw, err = n.sealRecording(tape, input, res)
		rsp.Finish()
		if err != nil {
			return res, rep, nil, err
		}
	}
	return res, rep, raw, nil
}

// RunOnce executes the application on one input under the current
// directives and reports the result to the manager. The updated
// directives in the reply take effect for the next run.
func (n *Node) RunOnce(input []byte) (vm.RunResult, error) {
	// Refresh directives first: a presentation happens only after the
	// manager's actions from the previous one have been applied (the Red
	// Team exercise protocol, §4.3.1).
	if err := n.Sync(); err != nil {
		return vm.RunResult{}, err
	}
	res, rep, rawRec, err := n.runLocal(input)
	if err != nil {
		return res, err
	}
	env, err := NewEnvelope(MsgRunReport, rep)
	if err != nil {
		return res, err
	}
	if err := n.roundTrip(env); err != nil {
		return res, err
	}
	if rawRec != nil {
		env, err := NewEnvelope(MsgRecording, RecordingUpload{NodeID: n.ID, Recording: rawRec})
		if err != nil {
			return res, err
		}
		if err := n.roundTrip(env); err != nil {
			return res, err
		}
	}
	return res, nil
}

// RunBatch executes the application on every input under one directive
// snapshot and ships the accumulated reports and failing-run recordings
// as a single MsgBatch — one round trip for the whole batch instead of
// two per run. The manager's reply (its post-batch directives) takes
// effect for the next batch. This is how a large community keeps manager
// load O(batches) rather than O(executions).
func (n *Node) RunBatch(inputs [][]byte) ([]vm.RunResult, error) {
	if err := n.Sync(); err != nil {
		return nil, err
	}
	batch := Batch{NodeID: n.ID}
	results := make([]vm.RunResult, 0, len(inputs))
	for _, input := range inputs {
		res, rep, rawRec, err := n.runLocal(input)
		if err != nil {
			return results, err
		}
		results = append(results, res)
		batch.Reports = append(batch.Reports, rep)
		if rawRec != nil {
			batch.Recordings = append(batch.Recordings, rawRec)
		}
	}
	env, err := NewEnvelope(MsgBatch, batch)
	if err != nil {
		return results, err
	}
	return results, n.roundTrip(env)
}

// sealRecording seals the tape of a failing run — including the repair
// patches the node was running under, so the manager replays the same
// machine — and returns its wire form for a MsgRecording or MsgBatch
// upload.
func (n *Node) sealRecording(tape *replay.Tape, input []byte, res vm.RunResult) ([]byte, error) {
	deployed := make([]replay.PatchSpec, 0, len(n.dir.Repairs))
	for i := range n.dir.Repairs {
		spec := &n.dir.Repairs[i]
		deployed = append(deployed, replay.PatchSpec{
			FailureID: spec.FailureID,
			Invariant: spec.Invariant,
			Strategy:  spec.Strategy,
			Value:     spec.Value,
			SPDelta:   spec.SPDelta,
			PC:        spec.PC,
			Depth:     spec.Depth,
		})
	}
	rec := tape.Seal(
		fmt.Sprintf("%s/seq%d", n.ID, n.dir.Seq),
		n.Image, input, deployed, replay.AllMonitors(), n.maxSteps, res,
	)
	return rec.Marshal()
}

// UploadLearning finalizes the node's locally inferred invariants and
// uploads them to the manager (§3.1: invariants only, never trace data).
func (n *Node) UploadLearning() error {
	db := n.engine.Finalize(daikon.Options{})
	raw, err := db.Marshal()
	if err != nil {
		return err
	}
	env, err := NewEnvelope(MsgLearnUpload, LearnUpload{NodeID: n.ID, DB: raw})
	if err != nil {
		return err
	}
	return n.roundTrip(env)
}

// Close releases the node's connection.
func (n *Node) Close() error { return n.conn.Close() }
