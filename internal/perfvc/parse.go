package perfvc

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// Sample is one benchmark result line from `go test -bench` output: the
// benchmark's name (GOMAXPROCS suffix stripped), its iteration count, and
// every reported metric keyed by its unit string — the standard ns/op,
// B/op, allocs/op, MB/s plus any custom b.ReportMetric units (MIPS,
// presentations, msgs, ...).
type Sample struct {
	// Name is the full benchmark path, e.g. "BenchmarkTable1/290162".
	Name string
	// Iters is b.N for the run.
	Iters int64
	// Metrics maps unit → value for every (value, unit) pair on the line.
	Metrics map[string]float64
}

// RunOutput is everything ParseBench extracted from one `go test -bench`
// invocation's combined output.
type RunOutput struct {
	// CPU is the host CPU model from the header ("cpu: ..." line), if any.
	CPU string
	// Samples holds one entry per result line, in output order; with
	// `-count N` the same name appears N times.
	Samples []Sample
	// Skipped lists benchmarks that called b.Skip (from "--- SKIP" lines).
	Skipped []string
	// Failed lists benchmarks that failed (from "--- FAIL" lines).
	Failed []string
	// PackageFailed is true when the package-level FAIL marker appeared —
	// set even when no individual benchmark is attributed (build errors,
	// panics outside a benchmark).
	PackageFailed bool
}

// gomaxprocsSuffix is the "-8" testing appends to a benchmark name when
// GOMAXPROCS > 1. Only a pure trailing integer is stripped, so
// sub-benchmark names like "Sequential-30candidates" survive intact.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// normalizeName strips the GOMAXPROCS suffix from a result-line name.
func normalizeName(name string) string {
	return gomaxprocsSuffix.ReplaceAllString(name, "")
}

// ParseBench parses the combined output of `go test -bench` into
// structured samples. It tolerates interleaved log lines, captures
// skip/fail markers, and never guesses at malformed result lines — a
// line that starts like a result but does not parse is an error, since
// silently dropping it would fake a "removed" benchmark downstream.
func ParseBench(r io.Reader) (*RunOutput, error) {
	out := &RunOutput{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "cpu: "):
			out.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu: "))
		case strings.HasPrefix(strings.TrimSpace(line), "--- SKIP: "):
			out.Skipped = append(out.Skipped, markerName(line, "--- SKIP: "))
		case strings.HasPrefix(strings.TrimSpace(line), "--- FAIL: "):
			out.Failed = append(out.Failed, markerName(line, "--- FAIL: "))
		case line == "FAIL" || strings.HasPrefix(line, "FAIL\t"):
			out.PackageFailed = true
		case strings.HasPrefix(line, "Benchmark"):
			s, ok, err := parseResultLine(line)
			if err != nil {
				return nil, err
			}
			if ok {
				out.Samples = append(out.Samples, s)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// markerName extracts the benchmark name from a "--- SKIP: Name (0.00s)"
// style marker line.
func markerName(line, marker string) string {
	rest := strings.TrimSpace(line)
	rest = strings.TrimPrefix(rest, marker)
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

// parseResultLine parses one benchmark result line:
//
//	BenchmarkName-8   1000   77.65 ns/op   115.9 MIPS   0 B/op   0 allocs/op
//
// ok=false (with nil error) means the line only looked like a result —
// a benchmark's own log output starting with "Benchmark", with no
// iteration count — and should be ignored.
func parseResultLine(line string) (Sample, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Sample{}, false, nil
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Sample{}, false, nil
	}
	s := Sample{
		Name:    normalizeName(fields[0]),
		Iters:   iters,
		Metrics: map[string]float64{},
	}
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Sample{}, false, fmt.Errorf("malformed benchmark result line (odd metric fields): %q", line)
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Sample{}, false, fmt.Errorf("malformed metric value %q in %q", rest[i], line)
		}
		s.Metrics[rest[i+1]] = v
	}
	return s, true, nil
}

// fold groups samples by benchmark name and aggregates each metric
// across samples into a Stat. Metrics missing from some samples are
// aggregated over the samples that did report them.
func fold(samples []Sample) map[string]map[string]Stat {
	values := map[string]map[string][]float64{}
	for _, s := range samples {
		m, ok := values[s.Name]
		if !ok {
			m = map[string][]float64{}
			values[s.Name] = m
		}
		for unit, v := range s.Metrics {
			m[unit] = append(m[unit], v)
		}
	}
	out := make(map[string]map[string]Stat, len(values))
	for name, units := range values {
		stats := make(map[string]Stat, len(units))
		for unit, vals := range units {
			stats[unit] = aggregate(vals)
		}
		out[name] = stats
	}
	return out
}
