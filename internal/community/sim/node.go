package sim

import (
	"repro/internal/community"
)

// NodeState is one phase of a modeled node's per-round state machine.
// An honest member's turn walks sync → (execute → detect?)* → report →
// adopt; adversaries walk tamper or decoy; crashed members sit out the
// round. Each state is one scheduler event, so the obs snapshot meters
// every phase of every modeled turn ("sim.execute", "sim.report", ...).
type NodeState uint8

const (
	// StateIdle parks the machine between rounds.
	StateIdle NodeState = iota
	// StateSync refreshes directives from upstream (MsgHello).
	StateSync
	// StateExecute runs the current input under the directives.
	StateExecute
	// StateDetect accounts a failure detection. The run report already
	// carries the monitor's FailureInfo; this state is where the
	// simulator meters detections as their own event type.
	StateDetect
	// StateReport ships the turn's accumulated traffic upstream: the
	// MsgBatch in batched mode, the MsgRunReport (and MsgRecording, for
	// a recorder with a failing run) per input otherwise.
	StateReport
	// StateAdopt folds the reply directives into the member's
	// bookkeeping; the wire-level adoption already happened inside the
	// round trip, exactly as it does for a live node.
	StateAdopt
	// StateTamper is an adversary's active turn: a spoofed report plus a
	// poisoned learning upload, or a forged recording.
	StateTamper
	// StateDecoy is a tampered (usually quarantined-by-now) adversary's
	// later turn: a well-formed benign report the community must keep
	// ignoring.
	StateDecoy
	// StateCrashed marks a member sitting out the round entirely.
	StateCrashed
)

// kind names the state's scheduler event type; the obs stage is
// "sim."+kind.
func (s NodeState) kind() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateSync:
		return "sync"
	case StateExecute:
		return "execute"
	case StateDetect:
		return "detect"
	case StateReport:
		return "report"
	case StateAdopt:
		return "adopt"
	case StateTamper:
		return "tamper"
	case StateDecoy:
		return "decoy"
	case StateCrashed:
		return "crashed"
	}
	return "unknown"
}

// String names the state for test failures.
func (s NodeState) String() string { return s.kind() }

// simMember is one modeled community member: the real Node it fronts
// (directives cache, token framing, resilience — the wire behavior must
// be the live soak's exactly) plus the state machine that walks it
// through each round one scheduler event at a time.
type simMember struct {
	n   *community.Node
	agg int // attached aggregator index; -1 = direct to the root
	// adversary / forger / advIndex mirror soakMember's adversary
	// flavors; resilient adversaries re-offend every round.
	adversary bool
	forger    bool
	advIndex  int
	tampered  bool
	crashed   bool
	resilient bool

	// Per-turn machine state.
	state    NodeState
	inputs   [][]byte
	idx      int  // current input
	detected bool // the last execute detected a failure
	batched  bool
	batch    community.Batch     // batched mode: the accumulating MsgBatch
	rep      community.RunReport // per-message mode: last run's report
	raw      []byte              // per-message mode: last run's recording
	trace    []NodeState         // visited states this turn (nil = not tracing)
}

// beginState is the state a member's turn opens in. A tampered
// adversary goes decoy unless resilience is armed — an at-most-once
// retry may have surrendered the tamper to an injected fault, and the
// quarantine guarantee must hold against an attacker who keeps
// attacking (the live adversaryTurn's exact rule).
func (m *simMember) beginState() NodeState {
	switch {
	case m.crashed:
		return StateCrashed
	case m.adversary && (!m.tampered || m.resilient):
		return StateTamper
	case m.adversary:
		return StateDecoy
	default:
		return StateSync
	}
}

// next advances the machine past the current state, updating the input
// cursor when the walk moves to the next input. It is pure protocol
// shape — no I/O — so the table tests can walk every role's turn
// without a community behind it.
func (m *simMember) next() NodeState {
	last := m.idx >= len(m.inputs)-1
	switch m.state {
	case StateSync:
		return StateExecute
	case StateExecute:
		if m.detected {
			return StateDetect
		}
		return m.afterInput(last)
	case StateDetect:
		return m.afterInput(last)
	case StateReport:
		return StateAdopt
	case StateAdopt:
		if !m.batched && !last {
			// Per-message mode re-syncs before each input, mirroring
			// RunOnce-per-input turns.
			m.idx++
			return StateSync
		}
		return StateIdle
	default: // Tamper, Decoy, Crashed: single-event turns
		return StateIdle
	}
}

// afterInput routes the walk once an input's execute (and detect) is
// done: batched mode works through every input before one report,
// per-message mode reports each input as it lands.
func (m *simMember) afterInput(last bool) NodeState {
	if m.batched && !last {
		m.idx++
		return StateExecute
	}
	return StateReport
}
