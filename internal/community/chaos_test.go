package community

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/daikon"
	"repro/internal/obs"
	"repro/internal/redteam"
	"repro/internal/vm"
	"repro/internal/webapp"
)

// sinkConn swallows sends and never fails; it isolates a FaultConn's own
// schedule from substrate behavior.
type sinkConn struct{}

func (sinkConn) Send(Envelope) error     { return nil }
func (sinkConn) Recv() (Envelope, error) { select {} }
func (sinkConn) Close() error            { return nil }

var chaosCounterNames = []string{
	"chaos.dropped", "chaos.delayed", "chaos.duplicated",
	"chaos.disconnects", "chaos.partitioned",
}

// faultSchedule drives sends envelopes through a fresh FaultConn and
// returns the per-send fate sequence (which fault counter moved, and
// whether the send errored).
func faultSchedule(t *testing.T, conf *ChaosConfig, stream int64, sends int) []string {
	t.Helper()
	reg := obs.New()
	fc, err := NewFaultConn(sinkConn{}, conf, stream, reg)
	if err != nil {
		t.Fatal(err)
	}
	prev := make(map[string]int64, len(chaosCounterNames))
	fates := make([]string, 0, sends)
	for i := 0; i < sends; i++ {
		sendErr := fc.Send(Envelope{Kind: MsgAck})
		fate := "none"
		for _, name := range chaosCounterNames {
			if v := reg.Counter(name).Value(); v != prev[name] {
				prev[name] = v
				fate = name
			}
		}
		if sendErr != nil {
			fate += "+err"
		}
		fates = append(fates, fate)
	}
	return fates
}

// TestFaultConnDeterministicSchedule: the whole point of seeded chaos is
// reproducibility — the same (seed, stream) pair must inject the same
// fault sequence every run, and a different stream must not share it.
func TestFaultConnDeterministicSchedule(t *testing.T) {
	conf := &ChaosConfig{
		Seed: 7, Drop: 0.1, Duplicate: 0.1, Disconnect: 0.05,
		PartitionEvery: 50, PartitionLen: 5,
	}
	a := faultSchedule(t, conf, 3, 200)
	b := faultSchedule(t, conf, 3, 200)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (seed, stream) produced different fault schedules")
	}
	faulted := 0
	for _, f := range a {
		if f != "none" {
			faulted++
		}
	}
	if faulted == 0 {
		t.Fatal("schedule injected no faults in 200 sends")
	}
	if c := faultSchedule(t, conf, 4, 200); reflect.DeepEqual(a, c) {
		t.Fatal("distinct streams share a fault schedule")
	}
}

// TestFaultConnPartitionWindow: partition windows close the tail of each
// cycle, so a fresh connection's first sends always get through — a
// reconnecting client is never partitioned before it can re-register.
func TestFaultConnPartitionWindow(t *testing.T) {
	conf := &ChaosConfig{Seed: 1, PartitionEvery: 5, PartitionLen: 2}
	fates := faultSchedule(t, conf, 1, 10)
	for i, fate := range fates {
		inWindow := i%5 >= 3
		if inWindow && fate != "chaos.partitioned+err" {
			t.Fatalf("send %d should be partitioned, got %q", i, fate)
		}
		if !inWindow && fate != "none" {
			t.Fatalf("send %d should pass, got %q", i, fate)
		}
	}
}

// TestFaultConnRecvDropTimesOut: a receive-direction drop discards the
// delivered envelope and keeps waiting; the caller's receive timeout, not
// the wrapper, surfaces the loss.
func TestFaultConnRecvDropTimesOut(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	reg := obs.New()
	fc, err := NewFaultConn(b, &ChaosConfig{Seed: 1, Drop: 1}, 1, reg)
	if err != nil {
		t.Fatal(err)
	}
	fc.SetRecvTimeout(30 * time.Millisecond)
	if err := a.Send(Envelope{Kind: MsgAck}); err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Recv(); !IsTimeout(err) {
		t.Fatalf("recv under total loss returned %v, want timeout", err)
	}
	if reg.Counter("chaos.dropped").Value() == 0 {
		t.Fatal("dropped envelope not counted")
	}
}

// TestPipeRecvDrainsAfterClose: envelopes buffered before the close must
// still be delivered — a real TCP stack hands over bytes that were in
// flight before the FIN, and the manager's last directive snapshot may be
// in that buffer.
func TestPipeRecvDrainsAfterClose(t *testing.T) {
	a, b := Pipe()
	for i := uint64(1); i <= 2; i++ {
		if err := a.Send(Envelope{Kind: MsgAck, Token: i}); err != nil {
			t.Fatal(err)
		}
	}
	_ = a.Close()
	for i := uint64(1); i <= 2; i++ {
		e, err := b.Recv()
		if err != nil {
			t.Fatalf("buffered envelope %d lost to the close: %v", i, err)
		}
		if e.Token != i {
			t.Fatalf("buffered envelopes reordered: got %d, want %d", e.Token, i)
		}
	}
	if _, err := b.Recv(); err == nil {
		t.Fatal("recv past the buffered envelopes should fail on a closed pipe")
	}
}

// TestTCPRecvTimeoutExpires: the TCP substrate honors per-receive
// deadlines, so a resilient client waiting on a lost reply gets a timeout
// it can retry on instead of hanging forever.
func TestTCPRecvTimeoutExpires(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		_, _ = c.Recv() // hold the conn open, never reply
	}()
	conn, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.(RecvTimeouter).SetRecvTimeout(50 * time.Millisecond)
	start := time.Now()
	if _, err := conn.Recv(); !IsTimeout(err) {
		t.Fatalf("recv returned %v, want timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v, deadline not applied", elapsed)
	}
}

// TestTCPResilientNodeSurvivesChaos is the transport satellite end to
// end: a node over real loopback TCP, its connection wrapped in an
// aggressive fault schedule, still drives the full
// protection-without-exposure flow — retrying, reconnecting (fresh TCP
// dials), and resyncing as the chaos tears its connections down.
func TestTCPResilientNodeSurvivesChaos(t *testing.T) {
	app := webapp.MustBuild()
	m, err := NewManager(redTeamManagerConfig(t, app))
	if err != nil {
		t.Fatal(err)
	}
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() { _ = m.Serve(c) }()
		}
	}()

	chaos := &ChaosConfig{
		Seed: 11, Drop: 0.1, Delay: 0.05, MaxDelay: time.Millisecond,
		Duplicate: 0.05, Disconnect: 0.05, PartitionEvery: 12, PartitionLen: 2,
	}
	reg := obs.New()
	var stream int64
	dial := func() (Conn, error) {
		c, err := Dial(l.Addr())
		if err != nil {
			return nil, err
		}
		stream++
		return NewFaultConn(c, chaos, stream, reg)
	}

	n := NewNode("tcp-victim", app.Image, nil)
	n.EnableResilience(&RetryPolicy{Seed: 11, RecvTimeout: 100 * time.Millisecond}, dial, reg)
	first, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Attach(first); err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	ex := exploitByID(t, "290162")
	attack := redteam.AttackInput(app, ex, 0)
	patched := false
	for i := 0; i < 20 && !patched; i++ {
		res, err := n.RunOnce(attack)
		if err != nil {
			t.Fatal(err)
		}
		patched = res.Outcome == vm.OutcomeExit && res.ExitCode == 0
	}
	if !patched {
		t.Fatal("node never protected over chaotic TCP")
	}
	// Keep syncing past the patch so the schedule provably fired.
	for i := 0; i < 30; i++ {
		if err := n.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	faults := int64(0)
	for _, name := range chaosCounterNames {
		faults += reg.Counter(name).Value()
	}
	if faults == 0 {
		t.Fatal("chaos schedule injected nothing; the test proved nothing")
	}
	if reg.Counter("node.retries").Value() == 0 {
		t.Fatal("no retries despite injected faults")
	}
}

// deliverThenFailConn delivers each of the next failSends envelopes to the
// peer and then reports a send error anyway — the ambiguous mid-flush
// disconnect where the receiver applied a payload the sender believes
// lost.
type deliverThenFailConn struct {
	Conn
	failSends int
}

func (c *deliverThenFailConn) Send(e Envelope) error {
	if c.failSends > 0 {
		c.failSends--
		_ = c.Conn.Send(e)
		return fmt.Errorf("injected disconnect after delivery")
	}
	return c.Conn.Send(e)
}

// TestFlushExactlyOnceAcrossRetry: an aggregator whose flush delivers but
// then sees a dead wire re-sends the same snapshot on a fresh connection;
// the manager's FlushSeq dedupe applies it exactly once, so retried
// flushes never double-count the community's evidence.
func TestFlushExactlyOnceAcrossRetry(t *testing.T) {
	app := webapp.MustBuild()
	m, err := NewManager(ManagerConfig{Image: app.Image})
	if err != nil {
		t.Fatal(err)
	}
	dialMgr := func() (Conn, error) {
		upSide, mgrSide := Pipe()
		go func() { _ = m.Serve(mgrSide) }()
		return upSide, nil
	}
	firstUp, _ := dialMgr()
	agg, err := NewAggregator(AggregatorConfig{
		ID:       "agg00",
		Image:    app.Image,
		Upstream: &deliverThenFailConn{Conn: firstUp, failSends: 1},
		Retry:    &RetryPolicy{Seed: 1, BaseDelay: time.Microsecond},
		Redial:   dialMgr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()

	n := NewNode("n0", app.Image, nil)
	attachNode(t, agg, n)
	db := daikon.NewDB()
	db.Add(&daikon.Invariant{
		Kind:    daikon.KindLowerBound,
		Var:     daikon.VarID{PC: app.Image.Entry},
		Bound:   0,
		Samples: 64,
	})
	raw, err := db.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnvelope(MsgLearnUpload, LearnUpload{NodeID: "n0", DB: raw})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.roundTrip(env); err != nil {
		t.Fatal(err)
	}

	// First flush: delivered, "failed", re-sent, deduped — and the retry
	// still recovers the manager's reply.
	if err := agg.Flush(); err != nil {
		t.Fatalf("retried flush failed: %v", err)
	}
	if got := m.Uploads(); got != 1 {
		t.Fatalf("manager merged %d uploads from one flush, want exactly 1", got)
	}

	// A later flush (fresh FlushSeq) still applies normally.
	if err := n.roundTrip(env); err != nil {
		t.Fatal(err)
	}
	if err := agg.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := m.Uploads(); got != 2 {
		t.Fatalf("manager merged %d uploads after second flush, want 2", got)
	}
}

// TestRootGroupFailoverContinuity: state accumulated before a root crash
// — registration, an open failure case, the replay log — survives the
// promotion, the resilient client re-dials onto the new leader, and the
// group rebuilds a replacement follower so it can take another crash.
func TestRootGroupFailoverContinuity(t *testing.T) {
	app := webapp.MustBuild()
	reg := obs.New()
	g, err := NewRootGroup(ManagerConfig{Image: app.Image}, 1, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	dial := func() (Conn, error) {
		nodeSide, rootSide := Pipe()
		go func() { _ = g.Serve(rootSide) }()
		return nodeSide, nil
	}

	n := NewNode("n0", app.Image, nil)
	n.EnableResilience(&RetryPolicy{Seed: 1, RecvTimeout: 100 * time.Millisecond}, dial, reg)
	first, _ := dial()
	if err := n.Attach(first); err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	site := app.Labels["site_290162"]
	env, err := NewEnvelope(MsgRunReport, RunReport{
		NodeID:  "n0",
		Outcome: uint8(vm.OutcomeFailure),
		Failure: &FailureInfo{PC: site, Monitor: "MemoryFirewall"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.roundTrip(env); err != nil {
		t.Fatal(err)
	}
	logAtCrash := g.LogLen()
	if logAtCrash == 0 {
		t.Fatal("accepted envelopes did not reach the replay log")
	}

	old := g.Leader()
	if err := g.FailLeader(); err != nil {
		t.Fatal(err)
	}
	promoted := g.Leader()
	if promoted == old {
		t.Fatal("failover kept the crashed leader")
	}
	if _, open := promoted.CaseStates()[site]; !open {
		t.Fatal("failure case opened before the crash lost on failover")
	}
	if got := promoted.Messages(); got != old.Messages() {
		t.Fatalf("promoted leader saw %d messages, crashed leader %d: streams diverged", got, old.Messages())
	}
	if g.Followers() != 1 {
		t.Fatalf("replication factor %d after failover, want 1 (replacement rebuilt)", g.Followers())
	}
	if got := reg.Counter("root.log_replayed").Value(); got != int64(logAtCrash) {
		t.Fatalf("replacement replayed %d entries, want %d", got, logAtCrash)
	}

	// The severed client retries, re-dials onto the promoted leader, and
	// resumes — its identity and directive state intact.
	if err := n.Sync(); err != nil {
		t.Fatalf("sync across the failover failed: %v", err)
	}
	if reg.Counter("node.reconnects").Value() == 0 {
		t.Fatal("client never reconnected; the crash severed nothing")
	}
	if reg.Counter("root.failovers").Value() != 1 {
		t.Fatal("failover not counted")
	}
}

// TestChaosSoakConverges is the robustness headline at test scale: a
// hierarchical community under the full fault schedule — drops, delays,
// duplicates, mid-flush disconnects, partitions — plus node churn AND a
// root-manager crash mid-campaign, converging with every adversary
// quarantined, and the report's fault counters proving the faults fired.
func TestChaosSoakConverges(t *testing.T) {
	app := webapp.MustBuild()
	conf := soakConfig(t, app, 24, true)
	conf.Aggregators = 3
	conf.Adversaries = 2
	conf.Rounds = 6
	conf.Chaos = DefaultChaos(1)
	conf.RootReplicas = 1
	conf.Churn = &ChurnConfig{CrashPerRound: 1, JoinPerRound: 1, RootCrashRound: 3}
	conf.Retry = &RetryPolicy{Seed: 1, RecvTimeout: 100 * time.Millisecond}

	rep, err := RunSoak(conf)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("chaos soak did not converge: %+v", rep)
	}
	if len(rep.Quarantined) != conf.Adversaries {
		t.Fatalf("quarantined %v, want all %d adversaries", rep.Quarantined, conf.Adversaries)
	}
	if rep.RootFailovers != 1 {
		t.Fatalf("root failovers %d, want 1", rep.RootFailovers)
	}
	if rep.ReplayLogEntries == 0 {
		t.Fatal("replicated root recorded no log entries")
	}
	if rep.DroppedEnvelopes == 0 {
		t.Fatal("chaos dropped nothing; the schedule never fired")
	}
	if rep.Retries == 0 || rep.Reconnects == 0 {
		t.Fatalf("faults fired but clients never retried/reconnected: %+v", rep)
	}
}
