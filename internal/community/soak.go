package community

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/daikon"
	"repro/internal/image"
	"repro/internal/monitor"
	"repro/internal/repair"
	"repro/internal/vm"
)

// SoakAttack is one recurring failure scenario a soak presents to every
// node each round.
type SoakAttack struct {
	Label string // human label, e.g. the Bugzilla id
	Input []byte
}

// SoakConfig drives a large-N community soak: Nodes node managers share
// one manager, every node presents every attack once per round, and the
// soak reports when the whole community has converged on one adopted
// repair per defect.
type SoakConfig struct {
	Image *image.Image
	// Seed is the pre-learned invariant database (the Blue Team run).
	Seed *daikon.DB
	// BootstrapInputs populate the manager's CFG database.
	BootstrapInputs [][]byte

	// Nodes is the community size; default 100.
	Nodes int
	// Rounds bounds the soak; default 8. The soak stops early once every
	// defect has converged.
	Rounds int
	// Attacks are the failure scenarios; at least one is required.
	Attacks []SoakAttack
	// Benign inputs are interleaved one per round (rotating) so adopted
	// repairs keep being exercised on legitimate traffic; may be empty.
	Benign [][]byte

	// Batched selects MsgBatch shipping (one round trip per node per
	// round) instead of per-run RunOnce messaging.
	Batched bool
	// Recorders is how many nodes capture failing runs as recordings
	// (default 1: the manager's replay fast path needs only one copy of
	// a deterministic failure; more recorders only add upload weight).
	Recorders int
	// ReplayWorkers bounds the manager's replay farm; 0 (the default)
	// and negative values select GOMAXPROCS. The fast path is always on
	// in a soak: converging a large community on live recurrences alone
	// is the cost model the soak exists to avoid.
	ReplayWorkers int
	// StackScope is the candidate-selection scope (default 1).
	StackScope int
}

// SoakDefect is one row of the convergence table.
type SoakDefect struct {
	Label     string `json:"label"`
	FailurePC uint32 `json:"failure_pc"`
	Monitor   string `json:"monitor"`
	// Adopted is the repair the community converged on ("" if it never
	// converged).
	Adopted string `json:"adopted"`
	// Rounds is the presentations-per-node needed before every node held
	// the same adopted repair (0 if never).
	Rounds int `json:"rounds"`
	// Agree is how many nodes held the adopted repair at the round the
	// defect converged (or at the final round, if it never did).
	Agree     int  `json:"agree"`
	Converged bool `json:"converged"`
}

// SoakReport is the machine-readable outcome of one soak.
type SoakReport struct {
	Nodes     int  `json:"nodes"`
	RoundsRun int  `json:"rounds_run"`
	Batched   bool `json:"batched"`
	// Messages is how many envelopes the manager handled; Batches how
	// many were MsgBatch. The batched/per-message comparison of these
	// two is the point of the batching protocol.
	Messages   int          `json:"messages"`
	Batches    int          `json:"batches"`
	ReplayRuns int          `json:"replay_runs"`
	Defects    []SoakDefect `json:"defects"`
	Converged  bool         `json:"converged"`
}

// probeFailurePC runs one input on a bare monitored machine to learn the
// failure location an attack produces — the key the soak uses to match
// manager cases to attack labels.
func probeFailurePC(img *image.Image, input []byte) (uint32, string, error) {
	shadow := monitor.NewShadowStack()
	machine, err := vm.New(vm.Config{
		Image: img,
		Input: input,
		Plugins: []vm.Plugin{
			shadow, monitor.NewMemoryFirewall(), monitor.NewHeapGuard(),
		},
	})
	if err != nil {
		return 0, "", err
	}
	shadow.Install(machine)
	res := machine.Run()
	if res.Failure == nil {
		return 0, "", fmt.Errorf("input did not fail under the monitors (outcome %v)", res.Outcome)
	}
	return res.Failure.PC, res.Failure.Monitor, nil
}

// repairSpecID reconstructs the stable repair identifier a RepairSpec
// denotes, so node directives can be compared for agreement.
func repairSpecID(spec *RepairSpec) string {
	inv := spec.Invariant
	r := repair.Repair{
		Inv:      &inv,
		Strategy: spec.Strategy,
		Value:    spec.Value,
		SPDelta:  spec.SPDelta,
		PC:       spec.PC,
		Depth:    spec.Depth,
	}
	return r.ID()
}

// RunSoak simulates a community of Nodes node managers sharing one
// manager over in-process transports. Each round, every node presents
// every attack (plus a rotating benign input) and reports — batched or
// per message. After each round the soak syncs every node and checks
// convergence: the manager holds an adopted repair for every defect and
// every node's directives carry the same repair. Nodes run sequentially
// in a fixed order, so a soak is deterministic for a fixed config.
func RunSoak(conf SoakConfig) (*SoakReport, error) {
	if conf.Image == nil {
		return nil, fmt.Errorf("community: soak needs an image")
	}
	if len(conf.Attacks) == 0 {
		return nil, fmt.Errorf("community: soak needs at least one attack")
	}
	if conf.Nodes <= 0 {
		conf.Nodes = 100
	}
	if conf.Rounds <= 0 {
		conf.Rounds = 8
	}
	if conf.Recorders <= 0 {
		conf.Recorders = 1
	}
	if conf.Recorders > conf.Nodes {
		conf.Recorders = conf.Nodes
	}
	workers := conf.ReplayWorkers
	if workers == 0 {
		workers = -1
	}

	// Ground truth: which failure location each attack produces.
	defects := make([]SoakDefect, len(conf.Attacks))
	byPC := make(map[uint32]int, len(conf.Attacks))
	for i, atk := range conf.Attacks {
		pc, mon, err := probeFailurePC(conf.Image, atk.Input)
		if err != nil {
			return nil, fmt.Errorf("attack %s: %w", atk.Label, err)
		}
		if j, dup := byPC[pc]; dup {
			return nil, fmt.Errorf("attacks %s and %s share failure location %#x",
				conf.Attacks[j].Label, atk.Label, pc)
		}
		defects[i] = SoakDefect{Label: atk.Label, FailurePC: pc, Monitor: mon}
		byPC[pc] = i
	}

	mgr, err := NewManager(ManagerConfig{
		Image:           conf.Image,
		Seed:            conf.Seed,
		BootstrapInputs: conf.BootstrapInputs,
		StackScope:      conf.StackScope,
		ReplayWorkers:   workers,
	})
	if err != nil {
		return nil, err
	}

	nodes := make([]*Node, 0, conf.Nodes)
	defer func() {
		// Registered before the first Connect so a mid-loop failure still
		// closes every node already serving (each Close unblocks its
		// manager goroutine).
		for _, n := range nodes {
			_ = n.Close()
		}
	}()
	for i := 0; i < conf.Nodes; i++ {
		nodeSide, mgrSide := Pipe()
		go func() { _ = mgr.Serve(mgrSide) }()
		n := NewNode(fmt.Sprintf("node%03d", i), conf.Image, nodeSide)
		n.RecordFailures = i < conf.Recorders
		nodes = append(nodes, n)
		if err := n.Connect(); err != nil {
			return nil, err
		}
	}

	report := &SoakReport{Nodes: conf.Nodes, Batched: conf.Batched}
	for round := 1; round <= conf.Rounds; round++ {
		inputs := make([][]byte, 0, len(conf.Attacks)+1)
		for _, atk := range conf.Attacks {
			inputs = append(inputs, atk.Input)
		}
		if len(conf.Benign) > 0 {
			inputs = append(inputs, conf.Benign[(round-1)%len(conf.Benign)])
		}
		for _, n := range nodes {
			if conf.Batched {
				if _, err := n.RunBatch(inputs); err != nil {
					return nil, err
				}
			} else {
				for _, input := range inputs {
					if _, err := n.RunOnce(input); err != nil {
						return nil, err
					}
				}
			}
		}
		report.RoundsRun = round

		if soakConverged(mgr, nodes, defects, round) {
			break
		}
	}

	report.Messages = mgr.Messages()
	report.Batches = mgr.Batches()
	report.ReplayRuns = mgr.ReplayRuns()
	report.Converged = true
	for i := range defects {
		if !defects[i].Converged {
			report.Converged = false
		}
	}
	report.Defects = defects
	return report, nil
}

// soakConverged syncs every node and updates the convergence table;
// it reports whether every defect has converged. A defect converges in
// the first round after which the manager has adopted a repair for it
// and every node's directives carry that same repair.
func soakConverged(mgr *Manager, nodes []*Node, defects []SoakDefect, round int) bool {
	states := mgr.CaseStates()

	// One sync per node, then read each node's repair per failure case.
	type held struct {
		ids   map[string]string // failureID -> repair ID
		valid bool
	}
	holdings := make([]held, len(nodes))
	for i, n := range nodes {
		if err := n.Sync(); err != nil {
			continue
		}
		h := held{ids: make(map[string]string), valid: true}
		dir := n.Directives()
		for j := range dir.Repairs {
			spec := &dir.Repairs[j]
			h.ids[spec.FailureID] = repairSpecID(spec)
		}
		holdings[i] = h
	}

	all := true
	for i := range defects {
		d := &defects[i]
		if d.Converged {
			continue
		}
		if states[d.FailurePC] != core.StatePatched {
			all = false
			continue
		}
		failureID := fmt.Sprintf("fail@%#x", d.FailurePC)
		agree := 0
		var adopted string
		uniform := true
		for _, h := range holdings {
			if !h.valid {
				uniform = false
				continue
			}
			id, ok := h.ids[failureID]
			if !ok {
				uniform = false
				continue
			}
			if adopted == "" {
				adopted = id
			}
			if id == adopted {
				agree++
			} else {
				uniform = false
			}
		}
		d.Agree = agree
		if uniform && adopted != "" && agree == len(nodes) {
			d.Converged = true
			d.Adopted = adopted
			d.Rounds = round
		} else {
			all = false
		}
	}
	return all
}
