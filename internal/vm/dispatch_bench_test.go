package vm

import (
	"encoding/binary"
	"testing"

	"repro/internal/asm"
	"repro/internal/image"
	"repro/internal/isa"
)

// buildHotImage assembles the dispatch microbenchmark workload: a counted
// loop whose trip count arrives via the input stream, so one Run can be
// scaled to exactly b.N loop iterations. The 9-instruction body is
// straight-line arithmetic plus a store/load pair, ending in a conditional
// backward branch — the shape the block-linked fast path is built for.
func buildHotImage(t testing.TB) *image.Image {
	im, _ := buildImage(t, func(a *asm.Assembler) {
		a.Label("main")
		// Read the 4-byte trip count into a stack slot.
		a.MovRR(isa.EDX, isa.ESP)
		a.SubRI(isa.EDX, 64)
		a.MovRR(isa.EAX, isa.EDX)
		a.MovRI(isa.ECX, 4)
		a.Sys(isa.SysRead)
		a.Load(isa.EBX, asm.M(isa.EDX, 0))
		a.CmpRI(isa.EBX, 0)
		a.Je("done")
		a.Label("loop")
		a.AddRI(isa.EAX, 3)
		a.XorRI(isa.EAX, 0x5A)
		a.MulRI(isa.EAX, 7)
		a.Store(asm.M(isa.EDX, 8), isa.EAX)
		a.Load(isa.ESI, asm.M(isa.EDX, 8))
		a.AddRR(isa.EAX, isa.ESI)
		a.SubRI(isa.EBX, 1)
		a.CmpRI(isa.EBX, 0)
		a.Jne("loop")
		a.Label("done")
		a.MovRI(isa.EAX, 0)
		a.Sys(isa.SysExit)
	})
	return im
}

// tripInput encodes a loop trip count for buildHotImage programs.
func tripInput(n uint64) []byte {
	input := make([]byte, 4)
	binary.LittleEndian.PutUint32(input, uint32(n))
	return input
}

// runHotLoop executes one machine for exactly b.N trips of the hot loop,
// so ns/op and allocs/op are per loop iteration (~9 instructions). The
// per-run constants (machine construction, block decode, termination)
// are excluded via ResetTimer or amortize to 0 allocs/op over b.N.
func runHotLoop(b *testing.B, cfg Config) {
	cfg.Image = buildHotImage(b)
	cfg.Input = tripInput(uint64(b.N))
	cfg.MaxSteps = 1 << 62
	v, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	res := v.Run()
	b.StopTimer()
	if res.Outcome != OutcomeExit || res.ExitCode != 0 {
		b.Fatalf("res = %+v", res)
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(res.Steps)/secs/1e6, "MIPS")
	}
	b.ReportMetric(float64(res.Steps)/float64(b.N), "instrs/op")
}

// BenchmarkDispatchHot is the unhooked straight-line hot path: no plugins,
// no snapshot sink, no coverage. The acceptance bar is 0 allocs/op.
func BenchmarkDispatchHot(b *testing.B) {
	runHotLoop(b, Config{})
}

// BenchmarkDispatchCoverage measures the same loop with an edge-coverage
// accumulator attached — the fuzzing configuration's dispatch cost.
func BenchmarkDispatchCoverage(b *testing.B) {
	runHotLoop(b, Config{Coverage: NewCoverage()})
}

// BenchmarkDispatchHooked attaches a minimal tracing hook to every
// instruction — the fully instrumented worst case the per-block fast flag
// distinguishes from the hot path.
func BenchmarkDispatchHooked(b *testing.B) {
	var hooks uint64
	pl := pluginFunc{name: "bench-trace", f: func(v *VM, blk *Block) {
		for i := range blk.Insts {
			blk.AddHook(i, PrioTrace, func(ctx *Ctx) error {
				hooks++
				return nil
			})
		}
	}}
	runHotLoop(b, Config{Plugins: []Plugin{pl}})
}

// BenchmarkDispatchTraced runs the hot loop with the trace threshold at 1,
// so the superblock is recorded on the second loop entry and essentially the
// whole benchmark runs in the fused trace tier (no warmup at the default
// threshold). This is the pure trace-tier number; BenchmarkDispatchHot
// measures the default configuration (threshold 64), which converges to the
// same tier after warmup.
func BenchmarkDispatchTraced(b *testing.B) {
	runHotLoop(b, Config{TraceThreshold: 1})
}

// BenchmarkDispatchHookedTraced is the instrumented loop under the trace
// tier: superblocks still dispatch hooked blocks through the reusable hook
// context, so this measures trace-entry overhead plus the hooked block
// executor — and must stay allocation-free.
func BenchmarkDispatchHookedTraced(b *testing.B) {
	var hooks uint64
	pl := pluginFunc{name: "bench-trace", f: func(v *VM, blk *Block) {
		for i := range blk.Insts {
			blk.AddHook(i, PrioTrace, func(ctx *Ctx) error {
				hooks++
				return nil
			})
		}
	}}
	runHotLoop(b, Config{Plugins: []Plugin{pl}, TraceThreshold: 1})
}

// BenchmarkCopyB measures the block-copy instruction's throughput: one op
// copies 4 KiB between two heap buffers (SetBytes reports MB/s).
func BenchmarkCopyB(b *testing.B) {
	im, _ := buildImage(b, func(a *asm.Assembler) {
		a.Label("main")
		a.MovRR(isa.EDX, isa.ESP)
		a.SubRI(isa.EDX, 64)
		a.MovRR(isa.EAX, isa.EDX)
		a.MovRI(isa.ECX, 4)
		a.Sys(isa.SysRead)
		a.Load(isa.EBX, asm.M(isa.EDX, 0))
		// Two 4 KiB heap buffers.
		a.MovRI(isa.EAX, 4096)
		a.Sys(isa.SysAlloc)
		a.MovRR(isa.EBP, isa.EAX) // src
		a.MovRI(isa.EAX, 4096)
		a.Sys(isa.SysAlloc)
		a.MovRR(isa.EDX, isa.EAX) // dst
		a.CmpRI(isa.EBX, 0)
		a.Je("done")
		a.Label("loop")
		a.MovRR(isa.ESI, isa.EBP)
		a.MovRR(isa.EDI, isa.EDX)
		a.MovRI(isa.ECX, 4096)
		a.CopyB()
		a.SubRI(isa.EBX, 1)
		a.CmpRI(isa.EBX, 0)
		a.Jne("loop")
		a.Label("done")
		a.MovRI(isa.EAX, 0)
		a.Sys(isa.SysExit)
	})
	v, err := New(Config{Image: im, Input: tripInput(uint64(b.N)), MaxSteps: 1 << 62})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(4096)
	b.ReportAllocs()
	b.ResetTimer()
	res := v.Run()
	b.StopTimer()
	if res.Outcome != OutcomeExit || res.ExitCode != 0 {
		b.Fatalf("res = %+v", res)
	}
}

// pluginFunc adapts a function to the Plugin interface for benchmarks.
type pluginFunc struct {
	name string
	f    func(*VM, *Block)
}

func (p pluginFunc) Name() string               { return p.name }
func (p pluginFunc) Instrument(v *VM, b *Block) { p.f(v, b) }
