package core

import (
	"repro/internal/cfg"
	"repro/internal/daikon"
	"repro/internal/image"
)

// StagedLearn implements the staged learning strategy of §3.1: instead of
// maintaining a large always-on invariant database, the system records its
// inputs during the first phase and, when a failure occurs, instruments
// only the region close to the failure location and replays the recorded
// inputs through it. The produced database covers exactly the procedures
// on the failure's call stack, which is precisely the candidate scope the
// correlation phase will search.
//
// The trade-off is the paper's: the response to a new failure is slower
// (a replay pass per failure) but the learning overhead during normal
// operation and the invariant-database footprint shrink to near zero.
func StagedLearn(img *image.Image, cfgdb *cfg.DB, recorded [][]byte, failPC uint32, stack []uint32, opt daikon.Options) (*daikon.DB, LearnStats, error) {
	region := map[uint32]bool{}
	addProc := func(pc uint32) {
		if p := cfgdb.ProcAt(pc); p != nil {
			for _, instr := range p.Instrs() {
				region[instr] = true
			}
		}
	}
	addProc(failPC)
	for _, ret := range stack {
		addProc(ret - 8)
	}
	return Learn(img, LearnConfig{
		Inputs:  recorded,
		Filter:  func(pc uint32) bool { return region[pc] },
		Options: opt,
		CFG:     cfgdb,
	})
}
