// Package perfvc is the repo's performance version system, modeled on
// Perun: per-version performance profiles plus automated, noise-aware
// regression detection. It runs the canonical benchmark suite (declared
// once, in Registry), records a machine-readable BENCH_prN.json profile
// carrying the established meta block and per-benchmark sample
// statistics, and compares two profiles with verdicts that respect both
// a configured relative tolerance and the baseline's own observed sample
// spread — repeated samples and honest error bars, never single-shot
// deltas. cmd/perfvc is the CLI; `perfvc ci` is the CI gate.
package perfvc

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

// Meta is the profile header every committed BENCH_pr*.json carries: the
// PR it snapshots, when and on what hardware it was measured, and the
// exact commands that regenerate it. The shape matches the hand-written
// BENCH_pr3.json/BENCH_pr6.json lineage.
type Meta struct {
	// PR is the pull-request number this profile is the baseline for.
	PR int `json:"pr"`
	// Title is a one-line description of the PR the profile snapshots.
	Title string `json:"title,omitempty"`
	// Date is the measurement date, YYYY-MM-DD.
	Date string `json:"date"`
	// CPU is the host CPU model as `go test -bench` reported it.
	CPU string `json:"cpu"`
	// Go is the toolchain version that ran the suite.
	Go string `json:"go"`
	// Note carries methodology caveats a reader needs to compare fairly.
	Note string `json:"note,omitempty"`
	// Regenerate is the exact command sequence that reproduces the
	// profile. Never empty in a committed profile.
	Regenerate []string `json:"regenerate"`
}

// Stat summarizes one metric across a benchmark's repeated samples. Min
// and Max are the honest error bar: a comparison may not call a change a
// regression while the candidate median sits inside [Min, Max] plus
// tolerance.
type Stat struct {
	// Median is the per-sample median (mean of the middle two for even
	// sample counts).
	Median float64 `json:"median"`
	// Min is the smallest sample.
	Min float64 `json:"min"`
	// Max is the largest sample.
	Max float64 `json:"max"`
	// Samples is how many `-count` repetitions produced the statistic.
	Samples int `json:"samples"`
}

// Spread is the observed min–max width — the baseline's own noise floor.
func (s Stat) Spread() float64 { return s.Max - s.Min }

// Bench is one benchmark's profile entry: which package and registry
// entry it came from, and a Stat per reported metric (keyed by the unit
// string `go test -bench` printed: "ns/op", "allocs/op", "MB/s", custom
// ReportMetric units like "MIPS" or "presentations").
type Bench struct {
	// Package is the go package path the benchmark ran in ("." = root).
	Package string `json:"package"`
	// Entry is the registry entry (top-level Benchmark function) that
	// produced this result; sub-benchmarks share their parent's entry.
	Entry string `json:"entry"`
	// Metrics maps a reported unit to its cross-sample statistics.
	Metrics map[string]Stat `json:"metrics"`
}

// Profile is a complete performance snapshot: the meta block plus one
// Bench per benchmark (sub-benchmarks keyed by their full slash path).
type Profile struct {
	// Meta is the provenance header.
	Meta Meta `json:"meta"`
	// Benchmarks maps full benchmark names to their entries.
	Benchmarks map[string]Bench `json:"benchmarks"`
}

// Names returns the profile's benchmark names, sorted.
func (p *Profile) Names() []string {
	names := make([]string, 0, len(p.Benchmarks))
	for n := range p.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Validate checks the committed-profile contract: a meta block with PR,
// date, and non-empty regenerate commands; at least one benchmark; every
// benchmark carrying at least one metric with at least minSamples
// samples and min <= median <= max.
func (p *Profile) Validate(minSamples int) error {
	if p.Meta.PR <= 0 {
		return fmt.Errorf("meta.pr missing")
	}
	if p.Meta.Date == "" {
		return fmt.Errorf("meta.date missing")
	}
	if len(p.Meta.Regenerate) == 0 {
		return fmt.Errorf("meta.regenerate is empty — a profile that cannot be reproduced is not a baseline")
	}
	for _, cmd := range p.Meta.Regenerate {
		if cmd == "" {
			return fmt.Errorf("meta.regenerate contains an empty command")
		}
	}
	if len(p.Benchmarks) == 0 {
		return fmt.Errorf("profile has no benchmarks")
	}
	for _, name := range p.Names() {
		b := p.Benchmarks[name]
		if len(b.Metrics) == 0 {
			return fmt.Errorf("%s has no metrics", name)
		}
		for unit, st := range b.Metrics {
			if st.Samples < minSamples {
				return fmt.Errorf("%s %s has %d samples, want >= %d", name, unit, st.Samples, minSamples)
			}
			if st.Min > st.Median || st.Median > st.Max {
				return fmt.Errorf("%s %s has inconsistent stats min=%v median=%v max=%v",
					name, unit, st.Min, st.Median, st.Max)
			}
		}
	}
	return nil
}

// Load reads and decodes a profile file. It rejects files without a
// "benchmarks" section (the legacy hand-written BENCH shapes) so callers
// get a clear error instead of an empty profile.
func Load(path string) (*Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if p.Benchmarks == nil {
		return nil, fmt.Errorf("%s: no benchmarks section (a legacy hand-written BENCH file? use ConvertLegacy)", path)
	}
	return &p, nil
}

// Save writes the profile as indented JSON (trailing newline, 0644).
func Save(path string, p *Profile) error {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// benchFile matches committed baseline file names and captures the PR
// number.
var benchFile = regexp.MustCompile(`^BENCH_pr(\d+)\.json$`)

// LatestBaseline finds the highest-numbered BENCH_pr*.json in dir that
// parses as a full profile (legacy hand-written files are skipped) and
// returns it with its path. This is the baseline `perfvc ci` gates
// against.
func LatestBaseline(dir string) (*Profile, string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, "", err
	}
	best, bestPR := "", -1
	for _, e := range entries {
		m := benchFile.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		pr, _ := strconv.Atoi(m[1])
		if pr <= bestPR {
			continue
		}
		path := filepath.Join(dir, e.Name())
		if _, err := Load(path); err != nil {
			continue // legacy shape — not a machine baseline
		}
		best, bestPR = path, pr
	}
	if best == "" {
		return nil, "", fmt.Errorf("no BENCH_pr*.json in %s parses as a perfvc profile — record one with `perfvc record`", dir)
	}
	p, err := Load(best)
	return p, best, err
}

// aggregate folds per-sample metric values into a Stat.
func aggregate(values []float64) Stat {
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	n := len(sorted)
	med := sorted[n/2]
	if n%2 == 0 {
		med = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	return Stat{Median: med, Min: sorted[0], Max: sorted[n-1], Samples: n}
}
