// Package repro is a from-scratch Go reproduction of "Automatically
// Patching Errors in Deployed Software" (Perkins et al., SOSP 2009) — the
// ClearView system: learning invariants from normal executions of a
// stripped binary, detecting failures with monitors, identifying
// invariants whose violation correlates with a failure, generating
// candidate repair patches that enforce them, and evaluating the patches
// on continued executions, coordinated across an application community.
//
// The root package carries the module documentation and the benchmark
// harness (bench_test.go) that regenerates every table and figure of the
// paper's evaluation; the implementation lives under internal/:
//
//	internal/isa        the simulated x86-flavoured instruction set
//	internal/asm        two-pass assembler
//	internal/image      stripped binary image format
//	internal/mem        paged memory + canary-guarded heap allocator
//	internal/vm         managed execution environment (code cache, patches)
//	internal/cfg        dynamic procedure discovery + predominators
//	internal/trace      Daikon front end (per-instruction operand tracing)
//	internal/daikon     invariant inference engine + community DB merge
//	internal/monitor    Memory Firewall, Heap Guard, Shadow Stack
//	internal/correlate  candidate selection, checking patches, classification
//	internal/repair     candidate repair generation
//	internal/evaluate   repair scoring and ranking
//	internal/replay     deterministic record/replay + parallel patch farm
//	internal/fuzz       coverage-guided exploit-variant fuzzer
//	internal/core       the ClearView pipeline orchestrator
//	internal/community  central manager + node managers (pipe & TCP),
//	                    batched messaging, large-N soak driver
//	internal/webapp     the protected application (ten seeded defects)
//	internal/redteam    exploit builders, corpora, drivers, reports
//
// See README.md for the package tour, the replay-farm architecture, and
// how to run the benchmarks.
package repro
