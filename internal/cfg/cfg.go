// Package cfg builds control flow graphs for dynamically discovered
// procedures using the paper's combined static and dynamic analysis
// (§2.2.3): there is no static symbol information, so a basic block that
// executes for the first time and is not part of any known procedure is
// assumed to be the entry point of a new procedure, which is then traced
// out symbolically (following direct branches, ending at returns and at
// indirect jumps whose target cannot be computed).
//
// The CFG supplies the predominator relation: instruction i predominates
// instruction j if every control flow path to j first passes through i.
// ClearView uses predominators both to scope the variables available to
// invariant inference (§2.2.2) and to select candidate correlated
// invariants near a failure (§2.4.1).
package cfg

import (
	"sort"

	"repro/internal/image"
	"repro/internal/isa"
)

// BasicBlock is a maximal straight-line code sequence in a procedure.
type BasicBlock struct {
	Start uint32
	End   uint32   // one past the last instruction
	Succs []uint32 // block starts of static successors
}

// NumInstrs returns the number of instructions in the block.
func (b *BasicBlock) NumInstrs() int { return int((b.End - b.Start) / isa.InstSize) }

// Contains reports whether pc is an instruction address in the block.
func (b *BasicBlock) Contains(pc uint32) bool {
	return pc >= b.Start && pc < b.End && (pc-b.Start)%isa.InstSize == 0
}

// Proc is one dynamically discovered procedure.
type Proc struct {
	Entry  uint32
	Blocks map[uint32]*BasicBlock

	// dominators of each block (set of block starts, including itself),
	// computed lazily.
	doms map[uint32]map[uint32]bool
}

// DB is the database of known control flow graphs, shared across runs.
type DB struct {
	img        *image.Image
	procs      map[uint32]*Proc // by entry
	instrOwner map[uint32]*Proc // instruction address -> first discovering proc
}

// NewDB creates an empty CFG database for one binary image.
func NewDB(img *image.Image) *DB {
	return &DB{
		img:        img,
		procs:      make(map[uint32]*Proc),
		instrOwner: make(map[uint32]*Proc),
	}
}

// Procs returns all discovered procedures, sorted by entry address.
func (db *DB) Procs() []*Proc {
	out := make([]*Proc, 0, len(db.procs))
	for _, p := range db.procs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Entry < out[j].Entry })
	return out
}

// ProcAt returns the procedure containing the instruction at pc, or nil.
func (db *DB) ProcAt(pc uint32) *Proc { return db.instrOwner[pc] }

// NoteBlockExec records that a basic block starting at pc has entered the
// code cache (i.e. is executing for the first time). If the block is not
// part of any known procedure it is taken as the entry point of a new
// procedure, whose CFG is traced out immediately. The owning procedure is
// returned.
func (db *DB) NoteBlockExec(pc uint32) *Proc {
	if p, ok := db.instrOwner[pc]; ok {
		return p
	}
	p := db.trace(pc)
	db.procs[p.Entry] = p
	for _, b := range p.Blocks {
		for a := b.Start; a < b.End; a += isa.InstSize {
			if _, taken := db.instrOwner[a]; !taken {
				db.instrOwner[a] = p
			}
		}
	}
	return p
}

// decode reads one instruction from the image, returning ok=false outside
// the code region or at undecodable bytes (where symbolic tracing stops).
func (db *DB) decode(pc uint32) (isa.Inst, bool) {
	if !db.img.Contains(pc) || !db.img.Contains(pc+isa.InstSize-1) {
		return isa.Inst{}, false
	}
	off := pc - db.img.Base
	in, err := isa.Decode(db.img.Code[off : off+isa.InstSize])
	if err != nil {
		return isa.Inst{}, false
	}
	return in, true
}

// instrSuccs returns the static successor instruction addresses of the
// instruction at pc within the same procedure. Calls fall through to the
// return point (the callee is a different procedure); returns, halts, and
// indirect jumps with uncomputable targets end the path.
func instrSuccs(in isa.Inst, pc uint32) []uint32 {
	next := pc + isa.InstSize
	switch {
	case in.Op == isa.RET || in.Op == isa.HALT || in.Op == isa.JMPR:
		return nil
	case in.Op == isa.SYS && in.Imm == isa.SysExit:
		// Statically identifiable process exit: execution never falls
		// through, so tracing past it would leak into unrelated code.
		return nil
	case in.Op == isa.JMP:
		return []uint32{next + uint32(in.Imm)}
	case in.Op.IsCondBranch():
		return []uint32{next + uint32(in.Imm), next}
	default:
		// Includes CALL/CALLR/CALLM (fall-through) and all straight-line
		// instructions.
		return []uint32{next}
	}
}

// trace symbolically executes from entry, discovering the instruction set
// and partitioning it into basic blocks at leaders.
func (db *DB) trace(entry uint32) *Proc {
	seen := map[uint32]isa.Inst{}
	leaders := map[uint32]bool{entry: true}

	work := []uint32{entry}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		if _, done := seen[pc]; done {
			continue
		}
		in, ok := db.decode(pc)
		if !ok {
			continue
		}
		seen[pc] = in
		succs := instrSuccs(in, pc)
		if in.Op.EndsBlock() {
			for _, s := range succs {
				leaders[s] = true
				work = append(work, s)
			}
		} else {
			work = append(work, succs[0])
		}
	}

	// Any instruction directly after a block terminator, and any branch
	// target, is a leader; also any seen instruction whose predecessor was
	// not seen (unreachable joins are impossible here since we trace from
	// entry, but a branch target mid-straight-line splits a block).
	p := &Proc{Entry: entry, Blocks: make(map[uint32]*BasicBlock)}
	if len(seen) == 0 {
		// Entry undecodable: degenerate single empty procedure.
		p.Blocks[entry] = &BasicBlock{Start: entry, End: entry}
		return p
	}

	addrs := make([]uint32, 0, len(seen))
	for a := range seen {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })

	// Build blocks: walk addresses in order, starting a new block at each
	// leader or after each terminator, and ending a block when the next
	// sequential instruction was never seen (path ended).
	var cur *BasicBlock
	flush := func() {
		if cur != nil {
			p.Blocks[cur.Start] = cur
			cur = nil
		}
	}
	for i, a := range addrs {
		if cur != nil && (leaders[a] || cur.End != a) {
			flush()
		}
		if cur == nil {
			cur = &BasicBlock{Start: a}
		}
		cur.End = a + isa.InstSize
		in := seen[a]
		if in.Op.EndsBlock() {
			flush()
		} else if i+1 < len(addrs) && addrs[i+1] != a+isa.InstSize {
			// Sequential successor never decoded (shouldn't happen for
			// non-terminators, but be safe).
			flush()
		}
	}
	flush()
	// Fix up: blocks ended early by mid-block leaders fall through.
	for _, b := range p.Blocks {
		lastPC := b.End - isa.InstSize
		in := b.lastInst(seen)
		if in.Op.EndsBlock() {
			for _, s := range instrSuccs(in, lastPC) {
				if blockAt(p, s) != nil {
					b.Succs = append(b.Succs, blockStartOf(p, s))
				}
			}
		} else if nb := blockAt(p, b.End); nb != nil {
			b.Succs = append(b.Succs, blockStartOf(p, b.End))
		}
		sort.Slice(b.Succs, func(i, j int) bool { return b.Succs[i] < b.Succs[j] })
	}
	return p
}

func (b *BasicBlock) lastInst(seen map[uint32]isa.Inst) isa.Inst {
	return seen[b.End-isa.InstSize]
}

func blockAt(p *Proc, pc uint32) *BasicBlock {
	for _, b := range p.Blocks {
		if b.Contains(pc) {
			return b
		}
	}
	return nil
}

func blockStartOf(p *Proc, pc uint32) uint32 {
	if b := blockAt(p, pc); b != nil {
		return b.Start
	}
	return pc
}

// BlockOf returns the basic block containing the instruction at pc.
func (p *Proc) BlockOf(pc uint32) *BasicBlock {
	for _, b := range p.Blocks {
		if b.Contains(pc) {
			return b
		}
	}
	return nil
}

// ContainsInstr reports whether pc is an instruction of this procedure.
func (p *Proc) ContainsInstr(pc uint32) bool { return p.BlockOf(pc) != nil }

// Instrs returns all instruction addresses, sorted.
func (p *Proc) Instrs() []uint32 {
	var out []uint32
	for _, b := range p.Blocks {
		for a := b.Start; a < b.End; a += isa.InstSize {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// computeDoms runs the classic iterative dominator dataflow over blocks.
func (p *Proc) computeDoms() {
	if p.doms != nil {
		return
	}
	starts := make([]uint32, 0, len(p.Blocks))
	for s := range p.Blocks {
		starts = append(starts, s)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })

	entryBlock := p.BlockOf(p.Entry)
	preds := map[uint32][]uint32{}
	for s, b := range p.Blocks {
		for _, succ := range b.Succs {
			preds[succ] = append(preds[succ], s)
		}
	}

	all := map[uint32]bool{}
	for _, s := range starts {
		all[s] = true
	}
	doms := map[uint32]map[uint32]bool{}
	for _, s := range starts {
		if entryBlock != nil && s == entryBlock.Start {
			doms[s] = map[uint32]bool{s: true}
		} else {
			cp := make(map[uint32]bool, len(all))
			for a := range all {
				cp[a] = true
			}
			doms[s] = cp
		}
	}
	changed := true
	for changed {
		changed = false
		for _, s := range starts {
			if entryBlock != nil && s == entryBlock.Start {
				continue
			}
			var inter map[uint32]bool
			for _, pd := range preds[s] {
				if inter == nil {
					inter = make(map[uint32]bool, len(doms[pd]))
					for a := range doms[pd] {
						inter[a] = true
					}
					continue
				}
				for a := range inter {
					if !doms[pd][a] {
						delete(inter, a)
					}
				}
			}
			if inter == nil {
				inter = map[uint32]bool{}
			}
			inter[s] = true
			if len(inter) != len(doms[s]) {
				doms[s] = inter
				changed = true
				continue
			}
			for a := range inter {
				if !doms[s][a] {
					doms[s] = inter
					changed = true
					break
				}
			}
		}
	}
	p.doms = doms
}

// Predominates reports whether the instruction at i predominates the
// instruction at j (reflexively: every instruction predominates itself).
func (p *Proc) Predominates(i, j uint32) bool {
	bi, bj := p.BlockOf(i), p.BlockOf(j)
	if bi == nil || bj == nil {
		return false
	}
	if bi.Start == bj.Start {
		return i <= j
	}
	p.computeDoms()
	return p.doms[bj.Start][bi.Start]
}

// Predominators returns the instruction addresses that predominate pc,
// ordered earliest-executing first (dominator-chain order, then address
// within a block). The failure instruction itself is last.
func (p *Proc) Predominators(pc uint32) []uint32 {
	bj := p.BlockOf(pc)
	if bj == nil {
		return nil
	}
	p.computeDoms()
	var blocks []uint32
	for s := range p.doms[bj.Start] {
		blocks = append(blocks, s)
	}
	// Dominators of a block form a chain; order by chain depth.
	sort.Slice(blocks, func(i, j int) bool {
		return len(p.doms[blocks[i]]) < len(p.doms[blocks[j]])
	})
	var out []uint32
	for _, s := range blocks {
		b := p.Blocks[s]
		end := b.End
		if s == bj.Start {
			end = pc + isa.InstSize
		}
		for a := b.Start; a < end; a += isa.InstSize {
			out = append(out, a)
		}
	}
	return out
}
