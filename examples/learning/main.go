// Amortized distributed learning (§3.1): four community members each trace
// only a quarter of the application; the central manager merges their
// uploads into a community-wide invariant database that is both larger
// than any member's contribution and sound (an invariant survives the
// merge only if it held everywhere it was observed).
//
// Run:  go run ./examples/learning
package main

import (
	"fmt"
	"log"

	"repro/internal/community"
	"repro/internal/core"
	"repro/internal/daikon"
	"repro/internal/redteam"
	"repro/internal/webapp"
)

func main() {
	app, err := webapp.Build()
	if err != nil {
		log.Fatal(err)
	}

	manager, err := community.NewManager(community.ManagerConfig{
		Image:           app.Image,
		BootstrapInputs: [][]byte{redteam.LearningCorpus()},
		LearnShards:     4,
	})
	if err != nil {
		log.Fatal(err)
	}

	corpus := redteam.LearningCorpus()
	nodes := make([]*community.Node, 4)
	for i := range nodes {
		nodeSide, mgrSide := community.Pipe()
		go func() { _ = manager.Serve(mgrSide) }()
		nodes[i] = community.NewNode(fmt.Sprintf("member-%d", i), app.Image, nodeSide)
		if err := nodes[i].Connect(); err != nil {
			log.Fatal(err)
		}
	}

	for _, n := range nodes {
		d := n.Directives()
		fmt.Printf("%s traces [%#x, %#x) — %.0f%% of the code\n",
			n.ID, d.LearnLo, d.LearnHi,
			100*float64(d.LearnHi-d.LearnLo)/float64(len(app.Image.Code)))
		if _, err := n.RunOnce(corpus); err != nil {
			log.Fatal(err)
		}
		if err := n.UploadLearning(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nmanager merged %d uploads into %d community invariants\n",
		manager.Uploads(), manager.InvariantCount())

	// Compare against a single member tracing everything.
	full, stats, err := core.Learn(app.Image, core.LearnConfig{Inputs: [][]byte{corpus}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single full-trace member: %d invariants from %d trace entries\n",
		full.Len(), stats.Observations)

	// And against what one shard alone could contribute.
	quarter, qstats, err := core.Learn(app.Image, core.LearnConfig{
		Inputs: [][]byte{corpus},
		Filter: func(pc uint32) bool {
			span := uint32(len(app.Image.Code)) / 4
			return pc < app.Image.Base+span
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one quarter-shard member:  %d invariants from %d trace entries\n",
		quarter.Len(), qstats.Observations)

	counts := manager.InvariantCount()
	_ = daikon.DefaultMaxOneOf
	if counts <= quarter.Len() {
		log.Fatal("merged community database no larger than one shard")
	}
	fmt.Println("\nthe community database covers the whole application while each")
	fmt.Println("member paid only a quarter of the tracing overhead")
}
