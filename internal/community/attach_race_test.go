package community

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/redteam"
	"repro/internal/vm"
	"repro/internal/webapp"
)

// TestConcurrentAttachDuringFlushRace pins the PR-4 aggregator lock split
// (flush snapshot/restore and upstream round trips outside a.mu; sender
// binding per connection) against regression: a region of nodes re-homes
// onto a sibling aggregator *while* both aggregators are flushing
// concurrently and the re-homed nodes immediately resume presentations.
// Under -race this exercises Serve/buffer vs. takeLocked/restore vs.
// Attach-driven registration flushes on live goroutines; under the normal
// build it doubles as a churn-storm convergence test — after the storm the
// community still converges, every re-homed node ends up protected, and no
// honest node was quarantined at either tier.
func TestConcurrentAttachDuringFlushRace(t *testing.T) {
	app := webapp.MustBuild()
	m, aggs := twoAggRig(t, redTeamManagerConfig(t, app))
	ex := exploitByID(t, "290162")
	attack := redteam.AttackInput(app, ex, 0)

	const nNodes = 8
	nodes := make([]*Node, nNodes)
	for i := range nodes {
		nodes[i] = NewNode("node"+string(rune('a'+i)), app.Image, nil)
		nodes[i].RecordFailures = i == 0
		attachNode(t, aggs[0], nodes[i])
	}
	// Seed the campaign: one detected presentation per node, buffered on
	// aggregator 0 but not yet flushed — the storm below flushes it.
	for _, n := range nodes {
		if _, err := n.RunOnce(attack); err != nil {
			t.Fatal(err)
		}
	}

	// The storm: both aggregators flush repeatedly while every node
	// re-homes to aggregator 1 and immediately presents again.
	var wg sync.WaitGroup
	for _, agg := range aggs {
		agg := agg
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				if err := agg.Flush(); err != nil {
					t.Errorf("flush: %v", err)
					return
				}
			}
		}()
	}
	for _, n := range nodes {
		n := n
		wg.Add(1)
		go func() {
			defer wg.Done()
			nodeSide, aggSide := Pipe()
			go func() { _ = aggs[1].Serve(aggSide) }()
			if err := n.Attach(nodeSide); err != nil {
				t.Errorf("attach: %v", err)
				return
			}
			if _, err := n.RunOnce(attack); err != nil {
				t.Errorf("post-attach run: %v", err)
			}
		}()
	}
	wg.Wait()

	// After the storm the ordinary lock-step protocol must still converge.
	patched := false
	for round := 0; round < 8 && !patched; round++ {
		for _, n := range nodes {
			res, err := n.RunOnce(attack)
			if err != nil {
				t.Fatal(err)
			}
			if res.Outcome == vm.OutcomeExit && res.ExitCode == 0 {
				patched = true
			}
		}
		if err := aggs[1].Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if !patched {
		t.Fatal("community never converged after the attach/flush storm")
	}
	if st := m.CaseStates()[app.Labels["site_290162"]]; st != core.StatePatched {
		t.Fatalf("manager case state = %v", st)
	}
	// Every re-homed node holds the repair on its next sync.
	for _, n := range nodes {
		if err := n.Sync(); err != nil {
			t.Fatal(err)
		}
		res, err := n.RunOnce(attack)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != vm.OutcomeExit || res.ExitCode != 0 {
			t.Fatalf("node %s unprotected after the storm: %+v", n.ID, res)
		}
	}
	// Honest traffic only: nothing was quarantined at either tier.
	for _, agg := range aggs {
		if q := agg.QuarantinedNodes(); len(q) != 0 {
			t.Fatalf("aggregator quarantined honest nodes: %v", q)
		}
	}
}
