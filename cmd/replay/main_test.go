package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/daikon"
	"repro/internal/evaluate"
	"repro/internal/repair"
)

var update = flag.Bool("update", false, "rewrite golden files")

// tableEvaluator builds a deterministic evaluator state: three candidate
// repairs with distinct strategies and a mixed verdict history, as a
// farm pass would leave them.
func tableEvaluator() *evaluate.Evaluator {
	inv := &daikon.Invariant{
		Kind: daikon.KindOneOf, Var: daikon.VarID{PC: 0x400ba8, Slot: 2},
		Values: []uint32{0x400e40},
	}
	lower := &daikon.Invariant{
		Kind: daikon.KindLowerBound, Var: daikon.VarID{PC: 0x400b80, Slot: 2}, Bound: 0,
	}
	rs := []*repair.Repair{
		{Inv: inv, Strategy: repair.StratSetValue, Value: 0x400e40, PC: 0x400ba8},
		{Inv: inv, Strategy: repair.StratSkipCall, PC: 0x400ba8},
		{Inv: lower, Strategy: repair.StratClampLower, PC: 0x400b80},
	}
	ev := evaluate.New(rs, 1)
	// The farm judged: set-value survived twice, clamp-lower survived
	// once, skip-call failed once.
	ev.RecordSuccess(rs[0].ID())
	ev.RecordSuccess(rs[0].ID())
	ev.RecordFailure(rs[1].ID())
	ev.RecordSuccess(rs[2].ID())
	return ev
}

// TestRankedTableGolden locks the structure of the ranked-patch table:
// column layout, ordering, scores, and the deployed-candidate marker.
// The table contains no timings, so the golden is byte-exact.
func TestRankedTableGolden(t *testing.T) {
	ev := tableEvaluator()
	var buf bytes.Buffer
	writeRankedTable(&buf, ev, ev.Best())
	got := buf.String()

	path := filepath.Join("testdata", "ranked.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("table differs from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestRankedTableStarsCurrent: the star must follow the deployed entry,
// not the top rank.
func TestRankedTableStarsCurrent(t *testing.T) {
	ev := tableEvaluator()
	entries := ev.Ranked()
	var buf bytes.Buffer
	writeRankedTable(&buf, ev, entries[len(entries)-1])
	lines := bytes.Split(buf.Bytes(), []byte("\n"))
	// Header + rows; the last row (before the legend) carries the star.
	starRow := lines[len(entries)]
	if !bytes.HasPrefix(starRow, []byte("  *")) {
		t.Fatalf("deployed row not starred: %q", starRow)
	}
	if bytes.Contains(lines[1], []byte("*")) {
		t.Fatalf("top rank starred despite not being deployed: %q", lines[1])
	}
}
