package fuzz

import (
	"encoding/binary"

	"repro/internal/vm"
)

// interestingBytes are boundary and semantically loaded byte values: sign
// boundaries, the soft-hyphen byte 0xAD (exploit 307259's trigger), and
// the heap canary byte 0xFD the learning corpus deliberately avoids.
var interestingBytes = []byte{0x00, 0x01, 0x7F, 0x80, 0xFF, 0xAD, 0xFD, 0x41}

// interestingWords are 32-bit boundary values plus addresses with meaning
// to the protected application: the heap base (where planted pointers
// land) and the unmapped "downloaded data" region the exploits use.
var interestingWords = []uint32{
	0, 1, 0x7F, 0xFF, 0xFFFF,
	0x7FFF_FFFF, 0x8000_0000, 0xFFFF_FFF0, 0xFFFF_FFFF,
	vm.DefaultHeapBase, 0x0BAD_0000,
}

// mutate derives a new input from base by stacking 1–4 random mutation
// operators. Every random draw comes from the campaign RNG, so the
// derivation is a pure function of the RNG state.
func (f *Fuzzer) mutate(base []byte) []byte {
	out := append([]byte(nil), base...)
	for n := 1 + f.rng.Intn(4); n > 0; n-- {
		switch f.rng.Intn(10) {
		case 0:
			out = f.flipBit(out)
		case 1:
			out = f.setByte(out)
		case 2:
			out = f.addByte(out)
		case 3:
			out = f.setWord(out)
		case 4:
			out = f.insertBytes(out)
		case 5:
			out = f.deleteSpan(out)
		case 6:
			out = f.dupSpan(out)
		case 7:
			out = f.splice(out)
		case 8:
			out = f.mutatePage(out)
		case 9:
			out = f.shufflePages(out)
		}
	}
	if len(out) > f.conf.MaxInput {
		out = out[:f.conf.MaxInput]
	}
	if len(out) == 0 {
		out = []byte{0}
	}
	return out
}

func (f *Fuzzer) flipBit(in []byte) []byte {
	if len(in) == 0 {
		return in
	}
	i := f.rng.Intn(len(in))
	in[i] ^= 1 << uint(f.rng.Intn(8))
	return in
}

func (f *Fuzzer) setByte(in []byte) []byte {
	if len(in) == 0 {
		return in
	}
	in[f.rng.Intn(len(in))] = interestingBytes[f.rng.Intn(len(interestingBytes))]
	return in
}

func (f *Fuzzer) addByte(in []byte) []byte {
	if len(in) == 0 {
		return in
	}
	in[f.rng.Intn(len(in))] += byte(f.rng.Intn(17) - 8)
	return in
}

func (f *Fuzzer) setWord(in []byte) []byte {
	if len(in) < 4 {
		return in
	}
	off := f.rng.Intn(len(in) - 3)
	binary.LittleEndian.PutUint32(in[off:], interestingWords[f.rng.Intn(len(interestingWords))])
	return in
}

func (f *Fuzzer) insertBytes(in []byte) []byte {
	n := 1 + f.rng.Intn(8)
	ins := make([]byte, n)
	for i := range ins {
		ins[i] = byte(f.rng.Intn(256))
	}
	pos := f.rng.Intn(len(in) + 1)
	out := make([]byte, 0, len(in)+n)
	out = append(out, in[:pos]...)
	out = append(out, ins...)
	return append(out, in[pos:]...)
}

func (f *Fuzzer) deleteSpan(in []byte) []byte {
	if len(in) < 2 {
		return in
	}
	n := 1 + f.rng.Intn(len(in)/2)
	pos := f.rng.Intn(len(in) - n + 1)
	return append(in[:pos], in[pos+n:]...)
}

func (f *Fuzzer) dupSpan(in []byte) []byte {
	if len(in) == 0 {
		return in
	}
	n := 1 + f.rng.Intn(min(len(in), 32))
	pos := f.rng.Intn(len(in) - n + 1)
	span := append([]byte(nil), in[pos:pos+n]...)
	out := make([]byte, 0, len(in)+n)
	out = append(out, in[:pos+n]...)
	out = append(out, span...)
	return append(out, in[pos+n:]...)
}

// splice joins a head of the input with a tail of another corpus entry —
// the crossover operator that recombines scenarios from different seeds.
func (f *Fuzzer) splice(in []byte) []byte {
	if len(f.corpus) == 0 {
		return in
	}
	other := f.corpus[f.rng.Intn(len(f.corpus))]
	if len(in) == 0 || len(other) == 0 {
		return in
	}
	cutA := f.rng.Intn(len(in))
	cutB := f.rng.Intn(len(other))
	out := make([]byte, 0, cutA+len(other)-cutB)
	out = append(out, in[:cutA]...)
	return append(out, other[cutB:]...)
}

// pageSpan is one [length-prefix][body] frame in the input stream.
type pageSpan struct {
	start int // offset of the 2-byte length prefix
	end   int // offset past the body
}

// parsePages splits the input at its page frames. A malformed tail (bad
// prefix, truncated body) is returned as one final span so mutation never
// loses bytes.
func parsePages(in []byte) []pageSpan {
	var spans []pageSpan
	off := 0
	for off+2 <= len(in) {
		n := int(binary.LittleEndian.Uint16(in[off:]))
		end := off + 2 + n
		if end > len(in) {
			break
		}
		spans = append(spans, pageSpan{start: off, end: end})
		off = end
	}
	if off < len(in) {
		spans = append(spans, pageSpan{start: off, end: len(in)})
	}
	return spans
}

// mutatePage is the structure-aware operator: it picks one page and
// mutates bytes inside its body only, leaving every length prefix alone —
// so the page stream stays well-framed while the element bytes inside it
// drift. This is what lets the fuzzer explore element-handler behaviour
// (negative offsets, inverted length fields, hostile counts) without
// immediately destroying the framing the parser needs to reach the
// handler at all.
func (f *Fuzzer) mutatePage(in []byte) []byte {
	spans := parsePages(in)
	if len(spans) == 0 {
		return in
	}
	sp := spans[f.rng.Intn(len(spans))]
	if sp.end-sp.start <= 2 {
		return in
	}
	body := in[sp.start+2 : sp.end]
	for n := 1 + f.rng.Intn(3); n > 0; n-- {
		i := f.rng.Intn(len(body))
		if f.rng.Intn(2) == 0 {
			body[i] = interestingBytes[f.rng.Intn(len(interestingBytes))]
		} else {
			body[i] += byte(f.rng.Intn(17) - 8)
		}
	}
	return in
}

// shufflePages swaps two whole pages, reordering scenarios (heap layout
// shifts with element order, which is exactly what the exploit variants
// of §4.3.4 exercise).
func (f *Fuzzer) shufflePages(in []byte) []byte {
	spans := parsePages(in)
	if len(spans) < 2 {
		return in
	}
	i := f.rng.Intn(len(spans))
	j := f.rng.Intn(len(spans))
	if i == j {
		return in
	}
	if j < i {
		i, j = j, i
	}
	a, b := spans[i], spans[j]
	out := make([]byte, 0, len(in))
	out = append(out, in[:a.start]...)
	out = append(out, in[b.start:b.end]...)
	out = append(out, in[a.end:b.start]...)
	out = append(out, in[a.start:a.end]...)
	return append(out, in[b.end:]...)
}
