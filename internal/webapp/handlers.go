package webapp

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/isa"
)

// emitGifHandlers assembles the GIF element (defect 285595): the extension
// block offset byte is sign-extended but never checked, so a negative
// offset aims the extension copy below the canvas. The copy itself runs in
// a separate procedure (gif_ext_copy) that receives a precomputed pointer:
// the failure (Heap Guard canary hit) lands there, while the correcting
// lower-bound invariant on the offset lives one procedure up in
// gif_render — exactly the §4.3.2 stack-scope configuration story.
func emitGifHandlers(a *asm.Assembler) {
	a.Label("gif_render")
	a.LoadB(isa.ECX, asm.M(isa.EBX, 1)) // width (decorative)
	a.LoadB(isa.EDX, asm.M(isa.EBX, 2)) // height (decorative)
	a.MovRI(isa.EAX, 64)
	a.Sys(isa.SysAlloc) // the canvas
	a.MovRR(isa.EDI, isa.EAX)
	a.LoadB(isa.EDX, asm.M(isa.EBX, 3)) // extension offset byte
	signExtendByte(a, isa.EDX)          // the unchecked signed value
	a.Label("site_285595_lea")
	a.Lea(isa.ECX, asm.MX(isa.EDI, isa.EDX, 2, 0)) // dst = canvas + off*4
	a.Lea(isa.ESI, asm.M(isa.EBX, 4))              // ext data
	a.Push(isa.EDI)
	a.Call("gif_ext_copy")
	a.Pop(isa.EDI)
	// Display the first canvas row.
	a.MovRR(isa.EAX, isa.EDI)
	a.MovRI(isa.ECX, 4)
	a.Sys(isa.SysWrite)
	a.MovRI(isa.EAX, 8)
	a.Ret()

	// gif_ext_copy(ECX=dst pointer, ESI=src): copy the 4 extension bytes.
	// Its own observable values are pointers (excluded from bound
	// inference) or loop state that stays in range during the attack, so
	// this lowest procedure has invariants but none correlated with the
	// failure.
	a.Label("gif_ext_copy")
	a.MovRI(isa.EDX, 0) // j
	a.Label("gifcopy_loop")
	a.LoadB(isa.EDI, asm.MX(isa.ESI, isa.EDX, 0, 0))
	a.Label("site_285595_store")
	a.StoreB(asm.MX(isa.ECX, isa.EDX, 0, 0), isa.EDI)
	a.AddRI(isa.EDX, 1)
	a.CmpRI(isa.EDX, 4)
	a.Jl("gifcopy_loop")
	a.Ret()
}

// emitHostHandler assembles the HOST element (defect 307259): the buffer
// is sized by the count of non-soft-hyphen bytes, but the copy writes
// every byte. The emergent invariant ("total copied fits the buffer") is a
// sum relation outside Daikon's grammar, so none of the learned invariants
// corrects the error: the correlated-but-unhelpful repairs (the priority
// lower bound and the padding less-thans) all fail, and the failure stays
// blocked-but-unrepaired, matching §4.3.2.
func emitHostHandler(a *asm.Assembler) {
	const hyphen = 0xAD // the soft hyphen byte

	a.Label("host_render")
	a.LoadB(isa.EDX, asm.M(isa.EBX, 1)) // len
	a.LoadB(isa.ECX, asm.M(isa.EBX, 2)) // priority (signed, validated nowhere)
	signExtendByte(a, isa.ECX)
	a.MovRR(isa.ESI, isa.ECX) // priority observed as a non-pointer value
	// Padding pair reads: layout metadata the renderer observes but never
	// acts on (p1<=p2, q1<=q2, r1<=r2 in every normal page).
	a.LoadB(isa.ECX, asm.M(isa.EBX, 3))
	a.LoadB(isa.EDI, asm.M(isa.EBX, 4))
	a.CmpRR(isa.ECX, isa.EDI)
	a.LoadB(isa.ECX, asm.M(isa.EBX, 5))
	a.LoadB(isa.EDI, asm.M(isa.EBX, 6))
	a.CmpRR(isa.ECX, isa.EDI)
	a.LoadB(isa.ECX, asm.M(isa.EBX, 7))
	a.LoadB(isa.EDI, asm.M(isa.EBX, 8))
	a.CmpRR(isa.ECX, isa.EDI)

	// Pass 1: size the buffer by the non-hyphen count.
	a.MovRI(isa.ECX, 0) // i
	a.MovRI(isa.EDI, 0) // n1 = non-hyphen count
	a.Label("host_count")
	a.CmpRR(isa.ECX, isa.EDX)
	a.Jae("host_counted")
	a.Lea(isa.ESI, asm.M(isa.EBX, 9))
	a.LoadB(isa.EAX, asm.MX(isa.ESI, isa.ECX, 0, 0))
	a.CmpRI(isa.EAX, hyphen)
	a.Je("host_skip")
	a.AddRI(isa.EDI, 1)
	a.Label("host_skip")
	a.AddRI(isa.ECX, 1)
	a.Jmp("host_count")
	a.Label("host_counted")

	a.Push(isa.EDX) // len
	a.Push(isa.EDI) // n1
	a.MovRR(isa.EAX, isa.EDI)
	a.Sys(isa.SysAlloc) // buffer sized n1 — the incorrect size
	a.MovRR(isa.EDI, isa.EAX)
	a.Pop(isa.EAX)  // n1
	a.Pop(isa.EDX)  // len
	a.Push(isa.EAX) // n1 (for the display write)
	a.Push(isa.EDI) // buffer

	// Pass 2 — the defect: copy ALL len bytes (hyphens included) into the
	// n1-sized buffer.
	a.MovRI(isa.ECX, 0) // i (source index)
	a.MovRI(isa.ESI, 0) // j (destination index)
	a.Label("host_copy")
	a.CmpRR(isa.ECX, isa.EDX)
	a.Jae("host_copied")
	a.Lea(isa.EAX, asm.M(isa.EBX, 9))
	a.LoadB(isa.EAX, asm.MX(isa.EAX, isa.ECX, 0, 0))
	a.Label("site_307259_store")
	a.StoreB(asm.MX(isa.EDI, isa.ESI, 0, 0), isa.EAX)
	a.AddRI(isa.ESI, 1)
	a.AddRI(isa.ECX, 1)
	a.Jmp("host_copy")
	a.Label("host_copied")
	a.Pop(isa.EAX) // buffer
	a.Pop(isa.ECX) // n1
	a.Sys(isa.SysWrite)

	// consumed = 9 + len
	a.MovRR(isa.EAX, isa.EDX)
	a.AddRI(isa.EAX, 9)
	a.Ret()
}

// emitUniHandler assembles the UNI element (defect 325403): when the
// two-byte-character payload outgrows the static 64-byte buffer, a new
// buffer of capacity (64 + growSize) is allocated. The addition wraps for
// a growth size near 2^32, yielding a buffer far too small for the copy.
// The growth size is parsed lazily — only on the growth path — so the
// default learning corpus (which never grows) observes nothing here, and
// ClearView cannot repair the error until the corpus is expanded (§4.3.2).
func emitUniHandler(a *asm.Assembler) {
	a.Label("uni_render")
	a.LoadB(isa.EDX, asm.M(isa.EBX, 1)) // count
	a.MovRR(isa.ECX, isa.EDX)
	a.AddRR(isa.EDX, isa.ECX) // needed = count * 2
	a.CmpRI(isa.EDX, 64)
	a.Ja("uni_grow")

	// Fast path: copy into the static buffer (in bounds by the compare).
	a.Load(isa.EDI, asm.M(isa.EBP, GlobUniBuf))
	a.AddRI(isa.EDI, 4) // skip the capacity header
	a.Push(isa.EDI)
	a.Lea(isa.ESI, asm.M(isa.EBX, 6))
	a.MovRR(isa.ECX, isa.EDX)
	a.CopyB()
	a.Pop(isa.EAX)
	a.MovRI(isa.ECX, 8)
	a.Sys(isa.SysWrite)
	a.Jmp("uni_done")

	// Growth path.
	a.Label("uni_grow")
	a.Label("site_325403_grow")
	a.Load(isa.ESI, asm.M(isa.EBX, 2)) // growSize — lazy parse
	a.MovRI(isa.EAX, 68)
	a.AddRR(isa.EAX, isa.ESI) // alloc size = newCap + 4 header (wraps!)
	a.Sys(isa.SysAlloc)
	a.MovRR(isa.EDI, isa.EAX)
	a.Lea(isa.ECX, asm.M(isa.ESI, 64)) // newCap recomputed for the header
	a.Store(asm.M(isa.EDI, 0), isa.ECX)
	a.AddRI(isa.EDI, 4)
	a.Push(isa.EDI)
	a.Lea(isa.ESI, asm.M(isa.EBX, 6))
	a.MovRR(isa.ECX, isa.EDX) // copy length := needed
	a.Label("site_325403")
	a.CopyB()
	a.Pop(isa.EAX)
	a.MovRI(isa.ECX, 8)
	a.Sys(isa.SysWrite)

	a.Label("uni_done")
	// consumed = 6 + needed (EDX survived: syscalls clobber EAX only)
	a.MovRR(isa.EAX, isa.EDX)
	a.AddRI(isa.EAX, 6)
	a.Ret()
}

// emitStrHandler assembles the STR element (defect 296134): the string
// length is computed as total - trailer with no sign check; a page with
// trailer > total yields a negative length that the block copy treats as
// huge and unsigned. The copy runs up the stack, over the return addresses
// and the exception-handler record, and the fault at the stack top
// dispatches through the overwritten handler — where Memory Firewall
// intercepts the injected target. The correcting invariant is the lower
// bound (length >= 1) on the computed length; the repair sets it to one.
func emitStrHandler(a *asm.Assembler) {
	a.Label("str_render")
	a.LoadB(isa.EDX, asm.M(isa.EBX, 1)) // total
	// Empty-string guard: never taken in practice, but it ends the basic
	// block, so `total` and `trailer` are never co-observed in one block
	// pass (no two-variable invariant forms between them).
	a.CmpRI(isa.EDX, 0)
	a.Je("str_empty")
	a.LoadB(isa.ECX, asm.M(isa.EBX, 2)) // trailer
	a.SubRR(isa.EDX, isa.ECX)           // len = total - trailer (defect)
	a.Label("site_296134_len")
	a.MovRR(isa.ECX, isa.EDX) // copy length — the lower-bound patch point
	a.SubRI(isa.ESP, 48)      // stack buffer
	a.MovRR(isa.EDI, isa.ESP)
	a.Lea(isa.ESI, asm.M(isa.EBX, 3))
	a.Label("site_296134")
	a.CopyB()
	a.MovRR(isa.EAX, isa.ESP)
	a.MovRI(isa.ECX, 8)
	a.Sys(isa.SysWrite)
	a.AddRI(isa.ESP, 48)
	a.Label("str_empty")
	a.MovRI(isa.EAX, 12)
	a.Ret()
}

// emitArrHandlers assembles the three ARR elements (defect 311710): a
// signed widget index used without a lower-bound check. A negative index
// reads an "object pointer" from attacker-reachable memory below the
// widget table, and the ensuing virtual call dispatches to injected data.
// The same defect appears in three copy-paste clones (§4.3.1), each its
// own failure location, repaired one after another under the same attack.
func emitArrHandlers(a *asm.Assembler) {
	clones := []struct {
		name string
		slot int32
	}{
		{"a", GlobTableA},
		{"b", GlobTableB},
		{"c", GlobTableC},
	}
	for _, c := range clones {
		a.Label("arr_" + c.name)
		a.LoadB(isa.EDX, asm.M(isa.EBX, 1)) // widget index byte
		signExtendByte(a, isa.EDX)          // signed, unchecked
		a.Load(isa.ESI, asm.M(isa.EBP, c.slot))
		a.Label(fmt.Sprintf("site_311710%s_load", c.name))
		a.Load(isa.EDX, asm.MX(isa.ESI, isa.EDX, 2, 0)) // obj = table[idx]
		a.MovRR(isa.EDI, isa.EDX)
		a.Label(fmt.Sprintf("site_311710%s_call", c.name))
		a.CallM(asm.M(isa.EDX, 0))
		a.MovRI(isa.EAX, 2)
		a.Ret()
	}
}
