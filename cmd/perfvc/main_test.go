package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/perfvc"
)

// writeProfile builds a small but contract-complete baseline and saves
// it under the given name, returning the path and the profile.
func writeProfile(t *testing.T, dir, name string, mutate func(*perfvc.Profile)) (string, *perfvc.Profile) {
	t.Helper()
	p := &perfvc.Profile{
		Meta: perfvc.Meta{
			PR: 7, Title: "self-test baseline", Date: "2026-08-08",
			CPU: "test", Go: "go1.24.0",
			Regenerate: []string{"go run ./cmd/perfvc record -pr 7"},
		},
		Benchmarks: map[string]perfvc.Bench{
			"BenchmarkDispatchHot": {Package: "./internal/vm", Entry: "BenchmarkDispatchHot",
				Metrics: map[string]perfvc.Stat{
					"ns/op":     {Median: 90, Min: 78, Max: 95, Samples: 3},
					"allocs/op": {Median: 0, Min: 0, Max: 0, Samples: 3},
					"MIPS":      {Median: 100, Min: 95, Max: 115, Samples: 3},
				}},
			"BenchmarkRead32": {Package: "./internal/mem", Entry: "BenchmarkRead32",
				Metrics: map[string]perfvc.Stat{
					"ns/op": {Median: 50, Min: 48, Max: 52, Samples: 3},
				}},
		},
	}
	if mutate != nil {
		mutate(p)
	}
	path := filepath.Join(dir, name)
	if err := perfvc.Save(path, p); err != nil {
		t.Fatal(err)
	}
	return path, p
}

// TestCISelfTestIdenticalProfilePasses is the acceptance self-test's
// green half: gating a profile against itself must pass and print a
// verdict table with no regression rows.
func TestCISelfTestIdenticalProfilePasses(t *testing.T) {
	dir := t.TempDir()
	base, _ := writeProfile(t, dir, "BENCH_pr7.json", nil)
	var out bytes.Buffer
	err := runCI(ciFlags{dir: dir, candidate: base, floor: 0.75}, &out)
	if err != nil {
		t.Fatalf("identical profile failed the gate: %v\n%s", err, out.String())
	}
	for _, want := range []string{"BENCH_pr7.json", "within-noise", "0 regression(s)"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("ci output missing %q:\n%s", want, out.String())
		}
	}
}

// TestCISelfTestSeededRegressionFails is the red half: a candidate with
// a seeded 3x ns/op regression must fail with a nonzero verdict naming
// the offending benchmark, and the -candidate-out profile must land on
// disk for the CI artifact upload.
func TestCISelfTestSeededRegressionFails(t *testing.T) {
	dir := t.TempDir()
	writeProfile(t, dir, "BENCH_pr7.json", nil)
	candPath, _ := writeProfile(t, dir, "candidate.json", func(p *perfvc.Profile) {
		b := p.Benchmarks["BenchmarkDispatchHot"]
		b.Metrics["ns/op"] = perfvc.Stat{Median: 270, Min: 260, Max: 285, Samples: 3}
		p.Benchmarks["BenchmarkDispatchHot"] = b
	})
	candOut := filepath.Join(dir, "artifact.json")
	var out bytes.Buffer
	err := runCI(ciFlags{dir: dir, candidate: candPath, candidateOut: candOut, floor: 0.75}, &out)
	if err == nil {
		t.Fatalf("seeded 3x regression passed the gate:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "BenchmarkDispatchHot") {
		t.Errorf("gate error does not name the offender: %v", err)
	}
	if !strings.Contains(out.String(), "regression") {
		t.Errorf("verdict table missing the regression row:\n%s", out.String())
	}
	if _, statErr := os.Stat(candOut); statErr != nil {
		t.Errorf("candidate-out artifact not written: %v", statErr)
	}
	saved, loadErr := perfvc.Load(candOut)
	if loadErr != nil {
		t.Fatalf("candidate-out not a loadable profile: %v", loadErr)
	}
	if saved.Benchmarks["BenchmarkDispatchHot"].Metrics["ns/op"].Median != 270 {
		t.Error("candidate-out does not carry the gated candidate's numbers")
	}
}

// TestCIPicksLatestCommittedBaseline checks the default baseline is the
// highest-numbered BENCH_pr*.json in -dir, skipping the legacy
// telemetry-shaped files.
func TestCIPicksLatestCommittedBaseline(t *testing.T) {
	dir := t.TempDir()
	writeProfile(t, dir, "BENCH_pr5.json", func(p *perfvc.Profile) { p.Meta.PR = 5 })
	cand, _ := writeProfile(t, dir, "BENCH_pr7.json", nil)
	os.WriteFile(filepath.Join(dir, "BENCH_pr9.json"), []byte(`{"meta":{"pr":9},"stages":{}}`), 0o644)
	var out bytes.Buffer
	if err := runCI(ciFlags{dir: dir, candidate: cand, floor: 0.75}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "BENCH_pr7.json (pr 7)") {
		t.Errorf("did not gate against the latest loadable baseline:\n%s", out.String())
	}
}

// TestCompareInProcess smoke-tests the compare subcommand path: exit
// error on regression, none on identical profiles.
func TestCompareInProcess(t *testing.T) {
	dir := t.TempDir()
	base, _ := writeProfile(t, dir, "BENCH_pr7.json", nil)
	var out bytes.Buffer
	if err := runCompare(compareFlags{baseline: base, candidate: base}, &out); err != nil {
		t.Fatalf("self-compare failed: %v", err)
	}
	slow, _ := writeProfile(t, dir, "slow.json", func(p *perfvc.Profile) {
		b := p.Benchmarks["BenchmarkRead32"]
		b.Metrics["ns/op"] = perfvc.Stat{Median: 500, Min: 490, Max: 510, Samples: 3}
		p.Benchmarks["BenchmarkRead32"] = b
	})
	err := runCompare(compareFlags{baseline: base, candidate: slow}, &out)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkRead32") {
		t.Fatalf("compare missed the regression: %v", err)
	}
	if err := runCompare(compareFlags{}, &out); err == nil {
		t.Error("missing required flags accepted")
	}
}

// TestRecordRequiresPR pins the record flag contract without running
// the (minutes-long) real suite.
func TestRecordRequiresPR(t *testing.T) {
	if err := runRecord(recordFlags{count: 5}); err == nil || !strings.Contains(err.Error(), "-pr") {
		t.Errorf("record without -pr: %v", err)
	}
}
