package isa

import "fmt"

// SlotKind classifies one observable value at an instruction. Slots are the
// ClearView/Daikon notion of a "variable": a value that is meaningful at the
// level of the compiled binary — a register an instruction reads, an address
// it computes, or a value it loads through that address (§2.2.1).
type SlotKind uint8

const (
	// SlotRegA is the value of register A read before execution.
	SlotRegA SlotKind = iota
	// SlotRegB is the value of register B (second operand or memory base).
	SlotRegB
	// SlotRegX is the value of the memory index register.
	SlotRegX
	// SlotAddr is the memory address the instruction computes
	// (B + X<<Scale + Imm, or ESP for stack operations).
	SlotAddr
	// SlotMemVal is the value read through the computed address — for
	// CALLM this is the function pointer fetched from memory, which is
	// the variable ClearView's one-of call-site invariants range over.
	SlotMemVal
)

var slotKindNames = [...]string{"regA", "regB", "regX", "addr", "memval"}

func (k SlotKind) String() string {
	if int(k) < len(slotKindNames) {
		return slotKindNames[k]
	}
	return fmt.Sprintf("slot%d", uint8(k))
}

// SlotSpec describes one slot of an instruction.
type SlotSpec struct {
	Kind SlotKind
	Reg  Reg // the register read, for SlotRegA/SlotRegB/SlotRegX
}

func (s SlotSpec) String() string {
	switch s.Kind {
	case SlotRegA, SlotRegB, SlotRegX:
		return s.Kind.String() + ":" + s.Reg.String()
	}
	return s.Kind.String()
}

// Settable reports whether a repair patch can enforce an invariant on this
// slot by mutating machine state before the instruction executes. Register
// slots are set by writing the register; SlotMemVal is set by writing the
// computed address (so the instruction then reads the enforced value).
// Computed addresses themselves are derived quantities and cannot be
// assigned directly.
func (s SlotSpec) Settable() bool { return s.Kind != SlotAddr }

// Slots returns the observable slots of an instruction, in a fixed order
// that defines each slot's index. A variable in the invariant system is
// identified by (instruction address, slot index), so this order is part of
// the serialized-invariant format and must not change.
func Slots(in Inst) []SlotSpec {
	var out []SlotSpec
	regA := func() { out = append(out, SlotSpec{Kind: SlotRegA, Reg: in.A}) }
	regB := func() { out = append(out, SlotSpec{Kind: SlotRegB, Reg: in.B}) }
	memOperand := func() {
		regB()
		if in.X.Valid() {
			out = append(out, SlotSpec{Kind: SlotRegX, Reg: in.X})
		}
		out = append(out, SlotSpec{Kind: SlotAddr})
	}
	switch in.Op {
	case MOVRR:
		regB()
	case LOAD, LOADB, LOADA:
		memOperand()
		out = append(out, SlotSpec{Kind: SlotMemVal})
	case STORE, STOREB:
		regA()
		memOperand()
	case LEA:
		memOperand()
	case ADDRR, SUBRR, MULRR, ANDRR, ORRR, XORRR, CMPRR, DIVRR, MODRR:
		regA()
		regB()
	case ADDRI, SUBRI, MULRI, ANDRI, ORRI, XORRI, SHLRI, SHRRI, SARRI, CMPRI, SEXTB:
		regA()
	case JMPR, CALLR, PUSH:
		regA()
	case CALLM:
		memOperand()
		out = append(out, SlotSpec{Kind: SlotMemVal})
	case RET, POP:
		out = append(out, SlotSpec{Kind: SlotAddr}, SlotSpec{Kind: SlotMemVal})
	case COPYB:
		// Implicit operands of the block copy: count, source pointer,
		// destination pointer. The count slot is the variable ClearView's
		// copy-length invariants (lower-bound and less-than) range over.
		out = append(out,
			SlotSpec{Kind: SlotRegA, Reg: ECX},
			SlotSpec{Kind: SlotRegB, Reg: ESI},
			SlotSpec{Kind: SlotRegX, Reg: EDI},
		)
	}
	return out
}

// TargetSlot returns the slot index holding the control-transfer target of
// an indirect transfer, or -1 if the instruction is not an indirect
// transfer. Enforcing a one-of invariant on this slot redirects the
// transfer (the "call a previously observed function" repair of §2.5.1).
func TargetSlot(in Inst) int {
	switch in.Op {
	case JMPR, CALLR:
		return 0 // SlotRegA
	case CALLM:
		for i, s := range Slots(in) {
			if s.Kind == SlotMemVal {
				return i
			}
		}
	case RET:
		return 1 // SlotMemVal after SlotAddr
	}
	return -1
}
