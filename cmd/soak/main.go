// Command soak runs a large-N community soak: it simulates a community
// of node managers (default 1000) sharing one central manager — flat, or
// through a tier of aggregators — presents every node with recurring Red
// Team attacks round after round, optionally under node churn and
// adversarial members, and reports convergence — how many presentations
// each defect needed before every eligible node in the community held the
// same adopted repair — as a machine-readable table.
//
//	soak                            1000 nodes, 32 aggregators, churn + adversaries
//	soak -nodes 100 -aggregators 0  the flat star at smaller N
//	soak -adversaries 0 -churn=false  an immortal, honest population
//	soak -exploits 290162,312278    choose the attack set
//	soak -json                      emit the full report as JSON
//	soak -profile                   per-stage wall/on-CPU/blocked table
//	soak -metrics soak.json         full telemetry snapshot as JSON
//	soak -chaos -seed 7             inject seeded transport faults + a root failover
//	soak -sim -nodes 100000         discrete-event simulation at deployment scale
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/community"
	"repro/internal/community/sim"
	"repro/internal/obs"
	"repro/internal/redteam"
)

// defaultExploits are repairable at the default stack scope with the
// default learning corpus — every one must converge in a soak. The last
// three are the extended failure classes (arithmetic faults and the
// runaway loop) detected by FaultGuard/HangGuard.
const defaultExploits = "269095,290162,295854,312278,320182,div-zero,unaligned,hang-loop"

func main() {
	nodes := flag.Int("nodes", 1000, "community size")
	aggregators := flag.Int("aggregators", 32, "aggregator tier size (0 = flat star)")
	rounds := flag.Int("rounds", 8, "max rounds (a churn-free soak stops early on convergence)")
	exploits := flag.String("exploits", defaultExploits, "comma-separated Bugzilla ids to present")
	batch := flag.Bool("batch", true, "ship node activity as MsgBatch (false = one message per run)")
	recorders := flag.Int("recorders", 1, "how many nodes record failing runs")
	workers := flag.Int("workers", 0, "manager replay-farm workers (0 = all CPUs)")
	scope := flag.Int("scope", 1, "candidate stack scope")
	adversaries := flag.Int("adversaries", 50, "adversarial members (spoofed + forged reports; forces vetting on)")
	churn := flag.Bool("churn", true, "crash/rejoin nodes, join fresh ones, and fail an aggregator mid-campaign")
	crashPerRound := flag.Int("crash-per-round", 10, "nodes crashed per round under -churn")
	joinPerRound := flag.Int("join-per-round", 5, "fresh nodes joined per round under -churn")
	expanded := flag.Bool("expanded", false, "learn from the expanded corpus (§4.3.2)")
	asJSON := flag.Bool("json", false, "emit the report as JSON instead of a table")
	profile := flag.Bool("profile", false, "trace pipeline stages and print the per-stage wall/on-CPU/blocked table")
	metrics := flag.String("metrics", "", "write the telemetry snapshot as JSON to this file (\"-\" = stdout)")
	parallel := flag.Bool("parallel", true, "run member turns and aggregator flushes concurrently (false = deterministic serial rounds)")
	chaos := flag.Bool("chaos", false, "inject seeded transport faults (drops, delays, duplicates, disconnects, partitions), replicate the root, and crash its leader mid-campaign under -churn")
	seed := flag.Int64("seed", 1, "chaos fault-schedule seed (with -chaos)")
	simulate := flag.Bool("sim", false, "run the campaign as a discrete-event simulation (internal/community/sim): no goroutine per node, virtual time — the shape for -nodes 100000 and beyond; forces serial rounds")
	flag.Parse()

	conf := soakFlags{
		nodes: *nodes, aggregators: *aggregators, rounds: *rounds,
		exploits: *exploits, batch: *batch, recorders: *recorders,
		workers: *workers, scope: *scope, adversaries: *adversaries,
		churn: *churn, crashPerRound: *crashPerRound, joinPerRound: *joinPerRound,
		expanded: *expanded, asJSON: *asJSON,
		profile: *profile, metricsPath: *metrics, parallel: *parallel,
		chaos: *chaos, seed: *seed, sim: *simulate,
	}
	if err := run(conf); err != nil {
		fmt.Fprintln(os.Stderr, "soak:", err)
		os.Exit(1)
	}
}

// soakFlags carries the parsed command line.
type soakFlags struct {
	nodes, aggregators, rounds  int
	exploits                    string
	batch                       bool
	recorders, workers, scope   int
	adversaries                 int
	churn                       bool
	crashPerRound, joinPerRound int
	expanded, asJSON            bool
	profile                     bool
	metricsPath                 string
	parallel                    bool
	chaos                       bool
	seed                        int64
	sim                         bool
}

func run(f soakFlags) error {
	fmt.Fprintf(os.Stderr, "building webapp and learning invariants (expanded corpus: %v)...\n", f.expanded)
	setup, err := redteam.NewSetup(f.expanded)
	if err != nil {
		return err
	}

	byID := map[string]redteam.Exploit{}
	for _, ex := range redteam.AllExploits() {
		byID[ex.Bugzilla] = ex
	}
	var attacks []community.SoakAttack
	for _, id := range strings.Split(f.exploits, ",") {
		id = strings.TrimSpace(id)
		ex, ok := byID[id]
		if !ok {
			return fmt.Errorf("unknown exploit %q", id)
		}
		attacks = append(attacks, community.SoakAttack{
			Label: ex.Bugzilla,
			Input: redteam.AttackInput(setup.App, ex, 0),
		})
	}

	conf := community.SoakConfig{
		Image:           setup.App.Image,
		Seed:            setup.DB,
		BootstrapInputs: [][]byte{redteam.LearningCorpus()},
		Nodes:           f.nodes,
		Rounds:          f.rounds,
		Attacks:         attacks,
		Benign:          redteam.EvaluationPages()[:5],
		Aggregators:     f.aggregators,
		Adversaries:     f.adversaries,
		Batched:         f.batch,
		Recorders:       f.recorders,
		ReplayWorkers:   f.workers,
		StackScope:      f.scope,
	}
	if f.churn {
		conf.Churn = &community.ChurnConfig{
			CrashPerRound: f.crashPerRound,
			JoinPerRound:  f.joinPerRound,
		}
		if f.aggregators >= 2 {
			conf.Churn.AggregatorCrashRound = 3
		}
	}
	if f.chaos {
		conf.Chaos = community.DefaultChaos(f.seed)
		conf.RootReplicas = 1
		if conf.Churn != nil {
			// Crash the root leader mid-campaign; the community must fail
			// over to the promoted follower and still converge.
			conf.Churn.RootCrashRound = f.rounds/2 + 1
		}
	}

	var reg *obs.Registry
	if f.profile || f.metricsPath != "" {
		reg = obs.New()
		conf.Obs = reg
		conf.PprofLabels = f.profile
	}
	// Parallel member turns and flushes create the real contended shape a
	// deployed community has; they surrender run-to-run determinism, which
	// only the convergence verdict (not any golden output) depends on here.
	// Under chaos the flushes stay serial: every flush applies twice (leader
	// + follower) behind the replication lock, and a 32-way flush convoy
	// there would outlast the retry policy's patience. The simulator IS the
	// serial schedule, so -sim forces both off.
	conf.ParallelMembers = f.parallel && !f.sim
	conf.ParallelFlush = f.parallel && !f.chaos && !f.sim

	mode := "goroutine-per-node"
	if f.sim {
		mode = "discrete-event sim"
	}
	fmt.Fprintf(os.Stderr, "soaking %d nodes (%d aggregators, %d adversaries, churn: %v) x %d attacks (batched: %v, %s)...\n",
		f.nodes, f.aggregators, f.adversaries, f.churn, len(attacks), f.batch, mode)
	start := time.Now()
	var rep *community.SoakReport
	if f.sim {
		var simRep *sim.Report
		simRep, err = sim.Run(conf)
		if simRep != nil {
			rep = &simRep.SoakReport
			fmt.Fprintf(os.Stderr, "sim: %d events, virtual time %d, %d memo hits / %d misses / %d genuine runs\n",
				simRep.Events, simRep.VirtualTime, simRep.MemoHits, simRep.MemoMisses, simRep.GenuineRuns)
		}
	} else {
		rep, err = community.RunSoak(conf)
	}
	elapsed := time.Since(start)
	if err != nil {
		// The soak died mid-campaign. Emit whatever telemetry accumulated
		// anyway — a partial per-stage table is exactly what diagnoses a
		// hang or a convergence stall.
		emitTelemetry(f, reg, elapsed)
		return err
	}

	if f.asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
		emitTelemetry(f, reg, elapsed)
		return soakVerdict(rep, f.rounds)
	}

	// The machine-readable table: one TSV row per defect plus a summary.
	fmt.Printf("defect\tfailure_pc\tmonitor\tadopted_repair\trounds\tagree\tconverged\n")
	for _, d := range rep.Defects {
		fmt.Printf("%s\t%#x\t%s\t%s\t%d\t%d\t%v\n",
			d.Label, d.FailurePC, d.Monitor, d.Adopted, d.Rounds, d.Agree, d.Converged)
	}
	fmt.Printf("\nnodes=%d aggregators=%d rounds=%d batched=%v messages=%d batches=%d replay_runs=%d\n",
		rep.Nodes, rep.Aggregators, rep.RoundsRun, rep.Batched, rep.Messages, rep.Batches, rep.ReplayRuns)
	fmt.Printf("churn: crashes=%d rejoins=%d joins=%d aggregator_failovers=%d\n",
		rep.Crashes, rep.Rejoins, rep.Joins, rep.AggregatorFailovers)
	fmt.Printf("quarantined=%d (%v) quarantined_adoptions=%d\n",
		len(rep.Quarantined), rep.Quarantined, rep.QuarantinedAdoptions)
	if f.chaos {
		fmt.Printf("chaos: dropped=%d retries=%d reconnects=%d root_failovers=%d replay_log=%d\n",
			rep.DroppedEnvelopes, rep.Retries, rep.Reconnects, rep.RootFailovers, rep.ReplayLogEntries)
	}
	fmt.Printf("converged=%v elapsed=%v\n", rep.Converged, elapsed.Round(time.Millisecond))
	emitTelemetry(f, reg, elapsed)
	return soakVerdict(rep, f.rounds)
}

// emitTelemetry prints the per-stage profile table (-profile) and writes
// the JSON snapshot (-metrics). It runs on every exit path — success,
// convergence failure, and mid-campaign error — so the telemetry is never
// lost with the verdict.
func emitTelemetry(f soakFlags, reg *obs.Registry, elapsed time.Duration) {
	if reg == nil {
		return
	}
	snap := reg.Snapshot()
	if f.profile {
		fmt.Println()
		fmt.Print(obs.FormatStageTable(&snap))
		if user, sys, ok := obs.ProcessCPU(); ok {
			fmt.Printf("process: wall=%v cpu_user=%v cpu_sys=%v\n",
				elapsed.Round(time.Millisecond), user.Round(time.Millisecond), sys.Round(time.Millisecond))
		}
		if top := obs.TopBlockedStage(&snap); top != nil && top.BlockedNs > 0 {
			line := fmt.Sprintf("top blocked stage: %s (%.0f%% blocked", top.Name, 100*top.BlockedShare())
			if pt := top.TopPoint(); pt != nil {
				line += fmt.Sprintf(", mostly on %s", pt.Point)
			}
			fmt.Println(line + ")")
		}
	}
	if f.metricsPath != "" {
		data, err := json.MarshalIndent(&snap, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "soak: encoding metrics:", err)
			return
		}
		data = append(data, '\n')
		if f.metricsPath == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(f.metricsPath, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "soak: writing metrics:", err)
		}
	}
}

// soakVerdict turns the report into the process exit status: the soak
// fails if the community did not converge, or if a quarantined node
// contributed an adopted patch.
func soakVerdict(rep *community.SoakReport, rounds int) error {
	if rep.QuarantinedAdoptions != 0 {
		return fmt.Errorf("%d adopted repairs were driven by quarantined nodes", rep.QuarantinedAdoptions)
	}
	if !rep.Converged {
		return fmt.Errorf("community did not converge within %d rounds", rounds)
	}
	return nil
}
