// Command clearview runs the full Red Team exercise against the protected
// application and regenerates the paper's evaluation artifacts:
//
//	clearview -table 1          Table 1 (presentations per exploit)
//	clearview -table 3          Table 3 (attack processing breakdown)
//	clearview -table reconfig   §4.3.2 reconfiguration results
//	clearview -table autoimmune §4.3.6 repair-quality evaluation
//	clearview -table falsepos   §4.3.7 false-positive evaluation
//	clearview -table summary    §4.4.3 aggregate statistics
//	clearview -table all        everything above
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/redteam"
)

func main() {
	table := flag.String("table", "all", "which artifact to regenerate: 1, 3, reconfig, autoimmune, falsepos, summary, reports, all")
	flag.Parse()

	run := func(name string, f func() error) {
		switch *table {
		case name, "all":
			if err := f(); err != nil {
				fmt.Fprintf(os.Stderr, "clearview: %s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Println()
		}
	}

	run("1", table1)
	run("3", table3)
	run("reconfig", reconfig)
	run("autoimmune", autoimmune)
	run("falsepos", falsePositives)
	run("summary", summary)
	run("reports", maintainerReports)
}

func table1() error {
	rows, err := redteam.RunTable1()
	if err != nil {
		return err
	}
	fmt.Println("Table 1: exploit presentations before a protective patch")
	redteam.PrintTable1(os.Stdout, rows)
	return nil
}

func table3() error {
	rows, err := redteam.RunTable3()
	if err != nil {
		return err
	}
	fmt.Println("Table 3: attack processing breakdown per failure case")
	redteam.PrintTable3(os.Stdout, rows)
	return nil
}

func summary() error {
	rows, err := redteam.RunTable1()
	if err != nil {
		return err
	}
	s := redteam.Summarize(rows)
	fmt.Println("Aggregate (§4.4.3 analog):")
	fmt.Printf("  exploits: %d  blocked: %d  patched: %d  unrepairable: %d\n",
		s.Exploits, s.Blocked, s.Patched, s.NeverRepairable)
	fmt.Printf("  mean presentations to patch: %.1f\n", s.MeanPresent)
	return nil
}

func reconfig() error {
	fmt.Println("§4.3.2 reconfiguration results:")
	base, err := redteam.NewSetup(false)
	if err != nil {
		return err
	}
	expanded, err := redteam.NewSetup(true)
	if err != nil {
		return err
	}
	find := func(id string) redteam.Exploit {
		for _, ex := range redteam.AllExploits() {
			if ex.Bugzilla == id {
				return ex
			}
		}
		panic("unknown exploit " + id)
	}
	show := func(label string, setup *redteam.Setup, scope int, id string) error {
		cv, err := setup.ClearView(scope)
		if err != nil {
			return err
		}
		res := redteam.RunSingleVariant(cv, setup.App, find(id), 20)
		state := "not patched (attacks remain blocked)"
		if res.Patched {
			state = fmt.Sprintf("patched after %d presentations", res.Presentations)
		}
		fmt.Printf("  %-42s %s\n", label, state)
		return nil
	}
	if err := show("285595 @ stack scope 1 (exercise config):", base, 1, "285595"); err != nil {
		return err
	}
	if err := show("285595 @ stack scope 2 (reconfigured):", base, 2, "285595"); err != nil {
		return err
	}
	if err := show("325403 @ default learning corpus:", base, 1, "325403"); err != nil {
		return err
	}
	if err := show("325403 @ expanded learning corpus:", expanded, 1, "325403"); err != nil {
		return err
	}
	if err := show("307259 (invariant outside the grammar):", base, 1, "307259"); err != nil {
		return err
	}
	return nil
}

func autoimmune() error {
	setup, err := redteam.NewSetup(false)
	if err != nil {
		return err
	}
	cv, err := setup.ClearView(2)
	if err != nil {
		return err
	}
	for _, ex := range redteam.AllExploits() {
		if !ex.Repairable || ex.NeedsExpandedCorpus {
			continue
		}
		res := redteam.RunSingleVariant(cv, setup.App, ex, 24)
		if !res.Patched {
			return fmt.Errorf("%s not patched during setup", ex.Bugzilla)
		}
	}
	diffs, err := redteam.Autoimmune(cv, setup.App)
	if err != nil {
		return err
	}
	patched := 0
	for _, fc := range cv.Cases() {
		if fc.State == core.StatePatched {
			patched++
		}
	}
	fmt.Printf("§4.3.6 repair evaluation: %d adopted patches applied;\n", patched)
	if len(diffs) == 0 {
		fmt.Println("  all 57 evaluation pages display bit-identically to the unpatched application")
	} else {
		fmt.Printf("  AUTOIMMUNE EFFECT on pages %v\n", diffs)
	}
	return nil
}

func falsePositives() error {
	setup, err := redteam.NewSetup(false)
	if err != nil {
		return err
	}
	cv, err := setup.ClearView(1)
	if err != nil {
		return err
	}
	patches, cases := redteam.FalsePositives(cv)
	fmt.Printf("§4.3.7 false positives: %d patches generated, %d failure cases opened across 57 legitimate pages\n",
		patches, cases)
	if patches != 0 || cases != 0 {
		return fmt.Errorf("false positives detected")
	}
	return nil
}

// maintainerReports prints the §1 defect reports ClearView hands to the
// application's maintainers for each failure it processed.
func maintainerReports() error {
	setup, err := redteam.NewSetup(false)
	if err != nil {
		return err
	}
	fmt.Println("Maintainer defect reports (§1):")
	for _, id := range []string{"290162", "269095", "307259"} {
		var ex redteam.Exploit
		for _, e := range redteam.AllExploits() {
			if e.Bugzilla == id {
				ex = e
			}
		}
		cv, err := setup.ClearView(1)
		if err != nil {
			return err
		}
		redteam.RunSingleVariant(cv, setup.App, ex, 24)
		for _, fc := range cv.Cases() {
			fmt.Println(fc.Report())
		}
	}
	return nil
}
