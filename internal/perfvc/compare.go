package perfvc

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/obs"
)

// Verdict classifies one benchmark (or one metric) between two profiles.
type Verdict string

const (
	// VerdictRegression: the candidate is worse beyond both the class
	// tolerance and the baseline's own sample spread.
	VerdictRegression Verdict = "regression"
	// VerdictImprovement: the candidate is better beyond the same bars.
	VerdictImprovement Verdict = "improvement"
	// VerdictWithinNoise: the change sits inside the error bars.
	VerdictWithinNoise Verdict = "within-noise"
	// VerdictNew: the benchmark exists only in the candidate.
	VerdictNew Verdict = "new"
	// VerdictRemoved: the benchmark exists only in the baseline.
	VerdictRemoved Verdict = "removed"
)

// higherBetter marks the metric units where larger is faster; everything
// else (ns/op, allocs/op, B/op, …) regresses upward.
var higherBetter = map[string]bool{"MB/s": true, "B/s": true, "MIPS": true}

// MetricDelta is one gating metric's comparison.
type MetricDelta struct {
	// Metric is the unit string ("ns/op", "MIPS", ...).
	Metric string
	// Verdict is the per-metric classification.
	Verdict Verdict
	// Base and Cand are the two profiles' statistics.
	Base, Cand Stat
	// Ratio is normalized so > 1 is always worse (cand/base for
	// lower-is-better units, base/cand for higher-is-better). Infinite
	// when the baseline was exactly zero and the candidate is not.
	Ratio float64
	// Slack is the absolute excess allowed beyond the baseline extreme:
	// max(tolerance × base median, base min–max spread).
	Slack float64
}

// BenchDelta is one benchmark's comparison across its gating metrics.
type BenchDelta struct {
	// Name is the full benchmark name.
	Name string
	// Class is the tolerance class applied.
	Class Class
	// Verdict is the worst per-metric verdict (regression dominates,
	// then improvement, then within-noise).
	Verdict Verdict
	// Worst is the metric that decided the verdict.
	Worst MetricDelta
	// Metrics holds every gated metric's delta.
	Metrics []MetricDelta
}

// Report is a full profile comparison, ranked most-severe first.
type Report struct {
	// Deltas is every compared benchmark: regressions first (worst
	// ratio first), then improvements, new, removed, within-noise.
	Deltas []BenchDelta
	// Regressions .. Removed count the verdicts.
	Regressions, Improvements, WithinNoise, New, Removed int
}

// Options tunes a comparison.
type Options struct {
	// Suite resolves tolerance classes and gating metrics; nil uses
	// Registry().
	Suite *Suite
	// ToleranceFloor raises every class tolerance to at least this —
	// `perfvc ci` sets it for the noisy shared single-core runner.
	ToleranceFloor float64
	// Scope restricts which registry entries the candidate run
	// covered: baseline benchmarks outside the scope are not reported
	// as removed (a short CI run is not a deletion). Nil means full
	// scope.
	Scope map[string]bool
}

// Compare classifies every benchmark of the two profiles with
// noise-aware verdicts: a candidate median must leave the baseline's
// [min, max] band by more than max(tolerance × baseline median, baseline
// spread) before the change counts as a regression or an improvement.
func Compare(base, cand *Profile, opts Options) *Report {
	suite := opts.Suite
	if suite == nil {
		suite = Registry()
	}
	rep := &Report{}
	seen := map[string]bool{}
	for _, name := range cand.Names() {
		cb := cand.Benchmarks[name]
		seen[name] = true
		bb, ok := base.Benchmarks[name]
		if !ok {
			rep.Deltas = append(rep.Deltas, BenchDelta{Name: name, Verdict: VerdictNew, Class: classFor(suite, name)})
			rep.New++
			continue
		}
		d := compareBench(suite, name, bb, cb, opts.ToleranceFloor)
		rep.Deltas = append(rep.Deltas, d)
		switch d.Verdict {
		case VerdictRegression:
			rep.Regressions++
		case VerdictImprovement:
			rep.Improvements++
		default:
			rep.WithinNoise++
		}
	}
	for _, name := range base.Names() {
		if seen[name] {
			continue
		}
		if opts.Scope != nil {
			e := suite.EntryFor(name)
			if e == nil || !opts.Scope[e.Name] {
				continue // the candidate run never attempted this entry
			}
		}
		rep.Deltas = append(rep.Deltas, BenchDelta{Name: name, Verdict: VerdictRemoved, Class: classFor(suite, name)})
		rep.Removed++
	}
	rank(rep.Deltas)
	return rep
}

// classFor resolves a benchmark's tolerance class, defaulting to noisy
// for names outside the registry (legacy baselines).
func classFor(suite *Suite, name string) Class {
	if e := suite.EntryFor(name); e != nil {
		return e.Class
	}
	return ClassNoisy
}

// compareBench classifies one benchmark across its gating metrics.
func compareBench(suite *Suite, name string, base, cand Bench, floor float64) BenchDelta {
	class := classFor(suite, name)
	tol := class.Tolerance()
	if floor > tol {
		tol = floor
	}
	gates := []string{"ns/op"}
	if e := suite.EntryFor(name); e != nil {
		gates = e.GateMetrics()
	}
	d := BenchDelta{Name: name, Class: class, Verdict: VerdictWithinNoise}
	for _, unit := range gates {
		bs, bok := base.Metrics[unit]
		cs, cok := cand.Metrics[unit]
		if !bok || !cok {
			continue // a metric only one side reported cannot gate
		}
		md := compareMetric(unit, bs, cs, tol)
		d.Metrics = append(d.Metrics, md)
		if worse(md.Verdict, d.Verdict) || (md.Verdict == d.Verdict && md.Ratio > d.Worst.Ratio) {
			d.Verdict = md.Verdict
			d.Worst = md
		}
	}
	return d
}

// compareMetric applies the noise-aware rule to one metric: the
// candidate median must exceed the baseline max (or undercut the min,
// for higher-is-better units) by more than max(tol × baseline median,
// baseline spread) to leave the noise band.
func compareMetric(unit string, base, cand Stat, tol float64) MetricDelta {
	slack := tol * math.Abs(base.Median)
	if sp := base.Spread(); sp > slack {
		slack = sp
	}
	md := MetricDelta{Metric: unit, Base: base, Cand: cand, Slack: slack, Verdict: VerdictWithinNoise}
	worseDir, betterDir := cand.Median > base.Max+slack, cand.Median < base.Min-slack
	if higherBetter[unit] {
		worseDir, betterDir = cand.Median < base.Min-slack, cand.Median > base.Max+slack
	}
	switch {
	case worseDir:
		md.Verdict = VerdictRegression
	case betterDir:
		md.Verdict = VerdictImprovement
	}
	md.Ratio = ratio(unit, base.Median, cand.Median)
	return md
}

// ratio normalizes so > 1 is always worse.
func ratio(unit string, base, cand float64) float64 {
	a, b := cand, base // lower is better: worse when cand grows
	if higherBetter[unit] {
		a, b = base, cand
	}
	switch {
	case b != 0:
		return a / b
	case a == 0:
		return 1
	default:
		return math.Inf(1)
	}
}

// worse reports whether verdict a outranks b in severity.
func worse(a, b Verdict) bool { return severity(a) > severity(b) }

// severity orders verdicts for ranking: regressions first, then
// improvements (worth a look), then new/removed (coverage changes),
// then within-noise.
func severity(v Verdict) int {
	switch v {
	case VerdictRegression:
		return 4
	case VerdictImprovement:
		return 3
	case VerdictNew:
		return 2
	case VerdictRemoved:
		return 1
	default:
		return 0
	}
}

// rank sorts deltas most-severe first; within a verdict, worst ratio
// first, name as the deterministic tiebreak.
func rank(deltas []BenchDelta) {
	sort.SliceStable(deltas, func(i, j int) bool {
		si, sj := severity(deltas[i].Verdict), severity(deltas[j].Verdict)
		if si != sj {
			return si > sj
		}
		if deltas[i].Worst.Ratio != deltas[j].Worst.Ratio {
			return deltas[i].Worst.Ratio > deltas[j].Worst.Ratio
		}
		return deltas[i].Name < deltas[j].Name
	})
}

// Err returns a gate error naming every regressed benchmark, or nil.
func (r *Report) Err() error {
	if r.Regressions == 0 {
		return nil
	}
	var names []string
	for _, d := range r.Deltas {
		if d.Verdict == VerdictRegression {
			names = append(names, fmt.Sprintf("%s (%s %s)", d.Name, d.Worst.Metric, fmtRatio(d.Worst.Ratio)))
		}
	}
	return fmt.Errorf("%d benchmark(s) regressed beyond noise: %s", r.Regressions, strings.Join(names, ", "))
}

// Table renders the ranked verdict table through the shared obs
// renderer.
func (r *Report) Table() string {
	rows := make([][]string, 0, len(r.Deltas))
	for _, d := range r.Deltas {
		switch d.Verdict {
		case VerdictNew, VerdictRemoved:
			rows = append(rows, []string{d.Name, string(d.Verdict), "-", "-", "-", "-", d.Class.String()})
			continue
		}
		w := d.Worst
		if w.Metric == "" {
			rows = append(rows, []string{d.Name, string(d.Verdict), "-", "-", "-", "-", d.Class.String()})
			continue
		}
		rows = append(rows, []string{
			d.Name, string(d.Verdict), w.Metric,
			fmtStat(w.Base), fmtStat(w.Cand), fmtRatio(w.Ratio), d.Class.String(),
		})
	}
	var b strings.Builder
	b.WriteString(obs.FormatTable([]obs.Col{
		{Head: "benchmark", Min: 28},
		{Head: "verdict", Min: 12},
		{Head: "metric", Min: 9},
		{Head: "baseline (median [min..max])", Right: true, Min: 24},
		{Head: "candidate", Right: true, Min: 16},
		{Head: "worse×", Right: true, Min: 7},
		{Head: "class", Gap: 2},
	}, rows))
	fmt.Fprintf(&b, "\n%d regression(s), %d improvement(s), %d within noise, %d new, %d removed\n",
		r.Regressions, r.Improvements, r.WithinNoise, r.New, r.Removed)
	return b.String()
}

// fmtStat renders "median [min..max]" with adaptive precision.
func fmtStat(s Stat) string {
	return fmt.Sprintf("%s [%s..%s]", fmtNum(s.Median), fmtNum(s.Min), fmtNum(s.Max))
}

// fmtNum renders a metric value compactly.
func fmtNum(v float64) string {
	av := math.Abs(v)
	switch {
	case v == math.Trunc(v) && av < 1e15:
		return fmt.Sprintf("%.0f", v)
	case av >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// fmtRatio renders the normalized worse-ness ratio.
func fmtRatio(r float64) string {
	if math.IsInf(r, 1) {
		return "∞"
	}
	return fmt.Sprintf("%.2f", r)
}
