// Package repair implements candidate repair generation (§2.5): for each
// correlated invariant it produces the set of patches that enforce the
// invariant by changing register/memory state or the flow of control.
//
// The repair forms follow §2.5.1–§2.5.3:
//
//	one-of      v ∈ {c1..cn} → set v := ci (one repair per observed value);
//	            if v is a call target, also skip the call; and return
//	            immediately from the enclosing procedure (using a learned
//	            stack-pointer-offset invariant to restore ESP).
//	lower-bound c ≤ v        → if v < c then v := c
//	less-than   v1 ≤ v2      → if v1 > v2 then v1 := v2 (or raise v2 := v1
//	            when only v2 is available at the check instruction)
package repair

import (
	"fmt"
	"sort"

	"repro/internal/correlate"
	"repro/internal/daikon"
	"repro/internal/isa"
	"repro/internal/vm"
)

// Strategy is the enforcement mechanism of one candidate repair.
type Strategy uint8

const (
	// StratSetValue sets the variable to one observed one-of constant.
	StratSetValue Strategy = iota
	// StratClampLower raises the variable to the lower bound.
	StratClampLower
	// StratClampLess lowers v1 to v2.
	StratClampLess
	// StratRaiseLess raises v2 to v1 (the alternative less-than repair).
	StratRaiseLess
	// StratSkipCall suppresses the call when the invariant is violated.
	StratSkipCall
	// StratReturnProc returns immediately from the enclosing procedure.
	StratReturnProc
	// StratNonzeroClamp sets a zero-valued variable to the learned nonzero
	// witness (the observed value of smallest magnitude) — the clamp form
	// of the nonzero-guard repair for divide-by-zero and stride-zero
	// failures. As a stride repair it doubles as the loop-bound clamp: a
	// re-nonzeroed stride restores the loop's learned progress.
	StratNonzeroClamp
	// StratSkipInst suppresses the faulting instruction when the nonzero
	// invariant is violated — the skip form of the nonzero-guard (the
	// generalization of skip-call to non-call instructions).
	StratSkipInst
	// StratClampMod rounds the variable down to the nearest value
	// congruent with the learned modulus invariant (e.g. re-aligns a
	// misaligned offset to the learned 4-byte stride).
	StratClampMod
)

func (s Strategy) String() string {
	switch s {
	case StratSetValue:
		return "set-value"
	case StratClampLower:
		return "clamp-lower"
	case StratClampLess:
		return "clamp-less"
	case StratRaiseLess:
		return "raise-less"
	case StratSkipCall:
		return "skip-call"
	case StratReturnProc:
		return "return-proc"
	case StratNonzeroClamp:
		return "nonzero-clamp"
	case StratSkipInst:
		return "skip-inst"
	case StratClampMod:
		return "clamp-mod"
	}
	return fmt.Sprintf("strategy%d", uint8(s))
}

// ControlFlowRank orders strategies for the §2.6 tie-break: repairs that
// only change state come before control-flow changes, and among the
// control-flow repairs skipping one call is tried before abandoning the
// whole procedure (the order observed for exploit 269095 in §4.3.1).
func (s Strategy) ControlFlowRank() int {
	switch s {
	case StratSkipCall, StratSkipInst:
		return 1
	case StratReturnProc:
		return 2
	default:
		return 0
	}
}

// Repair is one candidate repair.
type Repair struct {
	Inv      *daikon.Invariant
	Strategy Strategy
	Value    uint32 // StratSetValue: the constant to enforce
	SPDelta  uint32 // StratReturnProc: learned ESP offset at the patch point
	PC       uint32 // enforcement instruction
	Depth    int    // call-stack depth of the enclosing procedure (0 = failure proc)
}

// ID returns a stable identifier.
func (r *Repair) ID() string {
	if r.Strategy == StratSetValue {
		return fmt.Sprintf("%s/%s=%#x", r.Inv.ID(), r.Strategy, r.Value)
	}
	return fmt.Sprintf("%s/%s", r.Inv.ID(), r.Strategy)
}

func (r *Repair) String() string {
	return fmt.Sprintf("%s at %#x (depth %d)", r.ID(), r.PC, r.Depth)
}

// Less orders repairs by the paper's tie-break rules (§2.6): repairs in
// procedures lower on the call stack first, earlier instructions first,
// state changes before control-flow changes, then deterministic order.
func Less(a, b *Repair) bool {
	if a.Depth != b.Depth {
		return a.Depth < b.Depth
	}
	if a.PC != b.PC {
		return a.PC < b.PC
	}
	if a.Strategy.ControlFlowRank() != b.Strategy.ControlFlowRank() {
		return a.Strategy.ControlFlowRank() < b.Strategy.ControlFlowRank()
	}
	if a.Value != b.Value {
		return a.Value < b.Value
	}
	return a.ID() < b.ID()
}

// InstAt resolves the decoded instruction at a PC; the generator needs it
// to identify call-target slots. It is satisfied by a closure over the
// binary image.
type InstAt func(pc uint32) (isa.Inst, bool)

// Generate produces the candidate repairs for one correlated invariant
// (§2.5). spOffset supplies learned stack-pointer offsets for the
// return-from-procedure repair; if none was learned at the patch point,
// that repair is not generated.
func Generate(c correlate.Candidate, instAt InstAt, spOffset func(pc uint32) (uint32, bool)) []*Repair {
	inv := c.Inv
	pc := inv.PC()
	in, ok := instAt(pc)
	if !ok {
		return nil
	}
	var out []*Repair
	add := func(r *Repair) {
		r.Inv = inv
		r.PC = pc
		r.Depth = c.Depth
		out = append(out, r)
	}
	switch inv.Kind {
	case daikon.KindOneOf:
		for _, val := range inv.Values {
			add(&Repair{Strategy: StratSetValue, Value: val})
		}
		if in.Op.IsCall() && int(inv.Var.Slot) == isa.TargetSlot(in) {
			add(&Repair{Strategy: StratSkipCall})
		}
		if delta, ok := spOffset(pc); ok {
			add(&Repair{Strategy: StratReturnProc, SPDelta: delta})
		}
	case daikon.KindLowerBound:
		add(&Repair{Strategy: StratClampLower})
	case daikon.KindNonzero:
		// Clamp before skip: the state change is tried first (§2.6
		// ordering), and the skip generalizes skip-call to any faulting
		// instruction.
		add(&Repair{Strategy: StratNonzeroClamp, Value: uint32(inv.Bound)})
		add(&Repair{Strategy: StratSkipInst})
	case daikon.KindModulus:
		add(&Repair{Strategy: StratClampMod})
	case daikon.KindLessThan:
		// Enforcement can only mutate slots of the instruction at the
		// check point.
		if inv.Var.PC == pc {
			add(&Repair{Strategy: StratClampLess})
		}
		if inv.Var2.PC == pc && inv.Var2.PC != inv.Var.PC {
			add(&Repair{Strategy: StratRaiseLess})
		}
		if inv.Var.PC == pc && inv.Var2.PC == pc {
			add(&Repair{Strategy: StratRaiseLess})
		}
	}
	sort.Slice(out, func(i, j int) bool { return Less(out[i], out[j]) })
	return out
}

// GenerateAll produces repairs for every candidate, in tie-break order.
func GenerateAll(cands []correlate.Candidate, instAt InstAt, spOffset func(pc uint32) (uint32, bool)) []*Repair {
	var out []*Repair
	for _, c := range cands {
		out = append(out, Generate(c, instAt, spOffset)...)
	}
	sort.Slice(out, func(i, j int) bool { return Less(out[i], out[j]) })
	return out
}

// KindSlot maps an enforceable invariant kind to its index in the Table 3
// "[x,y,z,n,m]" vectors: one-of, lower-bound, less-than, nonzero, modulus.
// Auxiliary kinds return -1.
func KindSlot(k daikon.Kind) int {
	switch k {
	case daikon.KindOneOf:
		return 0
	case daikon.KindLowerBound:
		return 1
	case daikon.KindLessThan:
		return 2
	case daikon.KindNonzero:
		return 3
	case daikon.KindModulus:
		return 4
	}
	return -1
}

// NumKinds is the length of the KindSlot-indexed reporting vectors.
const NumKinds = 5

// CountByKind tallies repairs per invariant kind for the Table 3
// "[x,y,z,n,m]" reporting (see KindSlot for the index order).
func CountByKind(rs []*Repair) [NumKinds]int {
	var out [NumKinds]int
	seen := map[string]bool{}
	for _, r := range rs {
		id := r.Inv.ID()
		if seen[id] {
			continue
		}
		seen[id] = true
		if s := KindSlot(r.Inv.Kind); s >= 0 {
			out[s]++
		}
	}
	return out
}

// BuildPatches compiles the repair into execution-environment patches. The
// first returned patch is the enforcement patch; a second staging patch is
// added for two-variable invariants whose variables live at different
// instructions. Patch IDs are prefixed so concurrent campaigns and adopted
// patches never collide.
func (r *Repair) BuildPatches(prefix string) []*vm.Patch {
	inv := r.Inv
	var staged stagedVal
	var patches []*vm.Patch

	if inv.Kind == daikon.KindLessThan && inv.Var.PC != inv.Var2.PC {
		early, earlySlot := inv.Var, inv.Var.Slot
		if inv.Var2.PC < early.PC {
			early, earlySlot = inv.Var2, inv.Var2.Slot
		}
		patches = append(patches, &vm.Patch{
			ID:   fmt.Sprintf("%s/stage/%s", prefix, r.ID()),
			Addr: early.PC,
			Prio: vm.PrioRepair,
			Hook: func(ctx *vm.Ctx) error {
				val, err := ctx.EvalSlot(int(earlySlot))
				if err != nil {
					staged = stagedVal{}
					return nil
				}
				staged = stagedVal{val: val, valid: true}
				return nil
			},
		})
	}

	patches = append(patches, &vm.Patch{
		ID:   fmt.Sprintf("%s/repair/%s", prefix, r.ID()),
		Addr: r.PC,
		Prio: vm.PrioRepair,
		Hook: func(ctx *vm.Ctx) error { return r.enforce(ctx, &staged) },
	})
	return patches
}

type stagedVal struct {
	val   uint32
	valid bool
}

// violated evaluates the invariant at the patch point. An unreadable
// variable (the observed address is unmapped) is treated as a violation:
// the machine state is already outside the learned envelope, and the
// control-flow repairs can still rescue the execution.
func (r *Repair) violated(ctx *vm.Ctx, staged *stagedVal) (v1, v2 uint32, violated bool) {
	inv := r.Inv
	switch inv.Kind {
	case daikon.KindLessThan:
		if inv.Var.PC == inv.Var2.PC {
			a, err1 := ctx.EvalSlot(int(inv.Var.Slot))
			b, err2 := ctx.EvalSlot(int(inv.Var2.Slot))
			if err1 != nil || err2 != nil {
				return 0, 0, true
			}
			return a, b, !inv.Holds(a, b)
		}
		if !staged.valid {
			return 0, 0, false // first variable never reached: cannot check
		}
		lateVar := inv.Var2
		if inv.Var.PC == r.PC {
			lateVar = inv.Var
		}
		lv, err := ctx.EvalSlot(int(lateVar.Slot))
		if err != nil {
			return 0, 0, true
		}
		if lateVar == inv.Var {
			return lv, staged.val, !inv.Holds(lv, staged.val)
		}
		return staged.val, lv, !inv.Holds(staged.val, lv)
	default:
		val, err := ctx.EvalSlot(int(inv.Var.Slot))
		if err != nil {
			return 0, 0, true
		}
		return val, 0, !inv.Holds(val, 0)
	}
}

func (r *Repair) enforce(ctx *vm.Ctx, staged *stagedVal) error {
	v1, v2, bad := r.violated(ctx, staged)
	if !bad {
		return nil
	}
	inv := r.Inv
	switch r.Strategy {
	case StratSetValue:
		return ctx.SetSlot(int(inv.Var.Slot), r.Value)
	case StratClampLower:
		return ctx.SetSlot(int(inv.Var.Slot), uint32(inv.Bound))
	case StratClampLess:
		// v1 := v2. For cross-instruction invariants v2 was staged.
		return ctx.SetSlot(int(inv.Var.Slot), v2)
	case StratRaiseLess:
		return ctx.SetSlot(int(inv.Var2.Slot), v1)
	case StratNonzeroClamp:
		return ctx.SetSlot(int(inv.Var.Slot), r.Value)
	case StratClampMod:
		m, rr := inv.Modulus()
		if m < 2 {
			return nil
		}
		// Round v1 to the nearest congruent value below it — or above it
		// when rounding down would wrap past zero (an offset of 1 under
		// v ≡ 2 (mod 4) must become 2, not 0xFFFFFFFE).
		deficit := (v1%m + m - rr%m) % m
		enforced := v1 - deficit
		if deficit > v1 {
			enforced = v1 + (m - deficit)
		}
		return ctx.SetSlot(int(inv.Var.Slot), enforced)
	case StratSkipCall, StratSkipInst:
		ctx.Skip()
		return nil
	case StratReturnProc:
		// Restore ESP to its procedure-entry value using the learned
		// offset, then perform the return: pop the return address and
		// transfer there. EAX is zeroed as the synthesized return value.
		esp := ctx.Reg(isa.ESP) + r.SPDelta
		ret, err := ctx.VM.Mem.Read32(esp)
		if err != nil {
			return err // stack gone: crash, repair evaluation will discard
		}
		ctx.SetReg(isa.ESP, esp+4)
		ctx.SetReg(isa.EAX, 0)
		ctx.Jump(ret)
		return nil
	}
	return fmt.Errorf("repair: unknown strategy %v", r.Strategy)
}
