package webapp_test

import (
	"bytes"
	"testing"

	"repro/internal/redteam"
	"repro/internal/vm"
	"repro/internal/webapp"
)

// TestLayoutMatchesRuntime verifies that the statically computed Layout —
// the exploit builders' "attacker reconnaissance" — matches the addresses
// the allocator actually hands out at startup. The 311710 exploit encodes
// table-relative negative indices from these values, so a drift here would
// silently break the attack rather than the defense.
func TestLayoutMatchesRuntime(t *testing.T) {
	app := webapp.MustBuild()
	machine, err := vm.New(vm.Config{Image: app.Image, Input: nil})
	if err != nil {
		t.Fatal(err)
	}
	if res := machine.Run(); res.Outcome != vm.OutcomeExit {
		t.Fatalf("startup run: %+v", res)
	}
	blocks := machine.Heap.LiveBlocks()
	if len(blocks) < 6 {
		t.Fatalf("startup allocated %d blocks", len(blocks))
	}
	// Startup allocation order: globals, pagebuf, objtable, unibuf,
	// tableA, 4 widgets, tableB, 4 widgets, tableC, 4 widgets.
	want := []struct {
		name string
		addr uint32
		idx  int
	}{
		{"Globals", app.Layout.Globals, 0},
		{"PageBuf", app.Layout.PageBuf, 1},
		{"ObjTable", app.Layout.ObjTable, 2},
		{"UniBuf", app.Layout.UniBuf, 3},
		{"TableA", app.Layout.TableA, 4},
		{"TableB", app.Layout.TableB, 9},
		{"TableC", app.Layout.TableC, 14},
	}
	for _, w := range want {
		if got := blocks[w.idx].Addr; got != w.addr {
			t.Errorf("%s: layout says %#x, allocator gave %#x", w.name, w.addr, got)
		}
	}
}

// TestGlobalsHoldLayoutPointers cross-checks the globals block contents
// against the layout (the handlers read table bases from these slots).
func TestGlobalsHoldLayoutPointers(t *testing.T) {
	app := webapp.MustBuild()
	machine, err := vm.New(vm.Config{Image: app.Image, Input: nil})
	if err != nil {
		t.Fatal(err)
	}
	machine.Run()
	read := func(off int32) uint32 {
		v, err := machine.Mem.Read32(app.Layout.Globals + uint32(off))
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if read(webapp.GlobPageBuf) != app.Layout.PageBuf {
		t.Error("pagebuf slot mismatch")
	}
	if read(webapp.GlobObjTable) != app.Layout.ObjTable {
		t.Error("objtable slot mismatch")
	}
	if read(webapp.GlobTableA) != app.Layout.TableA ||
		read(webapp.GlobTableB) != app.Layout.TableB ||
		read(webapp.GlobTableC) != app.Layout.TableC {
		t.Error("widget table slots mismatch")
	}
}

// TestDisplayDeterminism: rendering the same pages twice produces
// bit-identical displays — the property the autoimmune comparison of
// §4.3.6 rests on.
func TestDisplayDeterminism(t *testing.T) {
	app := webapp.MustBuild()
	input := redteam.LearningCorpus()
	var first []byte
	for i := 0; i < 2; i++ {
		machine, err := vm.New(vm.Config{Image: app.Image, Input: input})
		if err != nil {
			t.Fatal(err)
		}
		res := machine.Run()
		if res.Outcome != vm.OutcomeExit {
			t.Fatalf("run %d: %+v", i, res)
		}
		if i == 0 {
			first = res.Output
		} else if !bytes.Equal(first, res.Output) {
			t.Fatal("display differs across identical runs")
		}
	}
}

// TestElementOutputs pins the display bytes of individual benign elements.
func TestElementOutputs(t *testing.T) {
	app := webapp.MustBuild()
	run := func(page []byte) []byte {
		machine, err := vm.New(vm.Config{Image: app.Image, Input: page})
		if err != nil {
			t.Fatal(err)
		}
		res := machine.Run()
		if res.Outcome != vm.OutcomeExit {
			t.Fatalf("render: %+v", res)
		}
		return res.Output
	}

	text := redteam.NewPage().Text("hi").Build()
	if got := run(text); string(got) != "hi" {
		t.Errorf("text display = %q", got)
	}

	// A widget dispatch writes the widget datum byte ('0'+w+4*table).
	arr := redteam.NewPage().Arr(0, 2).Build()
	if got := run(arr); string(got) != "2" {
		t.Errorf("widget display = %q", got)
	}
	arrC := redteam.NewPage().Arr(2, 1).Build()
	if got := run(arrC); string(got) != "9" { // '0' + 1 + 2*4
		t.Errorf("widget C display = %q", got)
	}

	// A DOC object shows 'A'.
	doc := redteam.NewPage().Create(0, redteam.TypeDoc).Invoke290(0).Build()
	if got := run(doc); string(got) != "A" {
		t.Errorf("doc display = %q", got)
	}

	// A NODE object shows 'N' (its data points at its own aux word).
	node := redteam.NewPage().Create(1, redteam.TypeNode).Invoke295(1).Build()
	if got := run(node); string(got) != "N" {
		t.Errorf("node display = %q", got)
	}
}

// TestUnknownTagsConsumed: unknown element tags advance by one byte and
// render nothing, so malformed tails cannot wedge the parser.
func TestUnknownTagsConsumed(t *testing.T) {
	app := webapp.MustBuild()
	p := redteam.NewPage()
	p.Raw([]byte{0xEE, 0xEF, 0xF0})
	p.Text("ok")
	machine, err := vm.New(vm.Config{Image: app.Image, Input: p.Build()})
	if err != nil {
		t.Fatal(err)
	}
	res := machine.Run()
	if res.Outcome != vm.OutcomeExit || string(res.Output) != "ok" {
		t.Fatalf("res = %+v output %q", res, res.Output)
	}
}

// TestOversizedPageTruncated: the reader caps page length at the buffer
// size instead of overflowing it.
func TestOversizedPageTruncated(t *testing.T) {
	app := webapp.MustBuild()
	// A page claiming 0x4000 bytes with only a short body present.
	input := []byte{0x00, 0x40}
	input = append(input, bytes.Repeat([]byte{0xEE}, 64)...)
	machine, err := vm.New(vm.Config{Image: app.Image, Input: input})
	if err != nil {
		t.Fatal(err)
	}
	if res := machine.Run(); res.Outcome != vm.OutcomeExit {
		t.Fatalf("res = %+v", res)
	}
}
