package community

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/correlate"
	"repro/internal/daikon"
	"repro/internal/evaluate"
	"repro/internal/image"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/repair"
	"repro/internal/replay"
	"repro/internal/vm"
)

// ManagerConfig assembles the central ClearView manager.
type ManagerConfig struct {
	// Image is the protected binary — the manager holds the same image
	// the community runs, for candidate selection and replay.
	Image *image.Image
	// Seed is an optional initial invariant database (e.g. a Blue-Team
	// pre-exercise learning run); node uploads merge into it.
	Seed *daikon.DB
	// BootstrapInputs populate the manager's CFG database: the manager
	// executes them locally once so it can resolve failure locations to
	// procedures when computing candidate invariants (the server holds
	// the same binary the community runs).
	BootstrapInputs [][]byte

	StackScope int // candidate-selection call-stack scope (§4.3.2); default 1
	CheckRuns  int // failing runs with checks in place before classification; default 2
	Bonus      int // never-failed score bonus b (§2.6); default 1
	// LearnShards splits the code range into this many tracing
	// assignments handed to nodes round-robin (§3.1 amortized learning);
	// 0 disables learning assignments.
	LearnShards int

	// ReplayWorkers enables the manager-side replay fast path: when a
	// node ships a failing-run recording (MsgRecording), the manager
	// replays it under the checking patches to complete the checking
	// phase immediately, then judges every candidate repair on a farm of
	// that many workers (<0 means GOMAXPROCS) before handing nodes
	// anything to evaluate live. 0 disables the fast path; recordings are
	// still retained.
	ReplayWorkers int

	// VetReports arms the manager against tampered community input — the
	// §5 discussion's central worry, "an attacker may attempt to subvert
	// the system by submitting fraudulent reports". When set, every
	// report, learning upload, and recording is sanity-checked before it
	// can touch shared state: failure and stack PCs must fall inside the
	// protected image's code range, observations must reference checks
	// the manager actually issued, uploaded invariants must sit inside
	// the code range, and recordings must carry the protected binary's
	// exact image and reproduce their claimed failure when replayed on
	// the farm (replay.Farm.Vet, bounded by a deadline and run outside
	// the manager lock, so a stalling recording delays only its own
	// sender's connection). The first failed check
	// quarantines the sending node: all of its traffic — including
	// later, well-formed reports — is ignored from then on, so a
	// compromised member can be noisy but never poisons the community
	// database or steers repair adoption.
	VetReports bool

	// TrustedAggregators names the provisioned aggregator tier — the
	// deployment analog of the management console's secure channel. When
	// non-empty, only these senders may speak FOR other nodes: an
	// aggregated batch (one carrying NodeIDs, edge Quarantined verdicts,
	// or RecordingFrom attribution) from any other sender is rejected
	// and its connection dropped, so a compromised member cannot
	// impersonate an aggregator to mass-quarantine honest nodes or frame
	// them for forged recordings. Empty trusts any aggregated sender
	// (single-operator deployments and tests).
	//
	// The allowlist keys on the sender ID the batch claims; connections
	// are pinned to their first claimed identity (bindSender), but
	// authenticating that first claim is the transport's job — the
	// deployment must provision the aggregator tier's channels the way
	// the paper's management console provisions its secure channel (see
	// ARCHITECTURE.md's divergences).
	TrustedAggregators []string

	// Obs, when set, records pipeline telemetry into the tracer's
	// registry: a stage span per envelope and per pipeline phase (vet,
	// farm, correlate, learn, evaluate, adopt), with lock and semaphore
	// waits attributed to named blocking points. Nil disables tracing;
	// the manager still keeps its counters (Messages, Batches, Rejects,
	// Uploads, ReplayRuns) in a private registry so the accessors and
	// ObsSnapshot work either way.
	Obs *obs.Tracer
}

// caseState is the manager-side failure-location state machine, mirroring
// the single-machine pipeline in internal/core but driven by node reports.
type caseState struct {
	id    string
	pc    uint32
	state core.CaseState

	// phaseSeq is the directive sequence at which the case entered its
	// current phase; reports from runs under older directives did not
	// carry this phase's patches and are ignored for this case.
	phaseSeq uint64

	cands []correlate.Candidate
	// candIDs indexes the candidate invariant IDs, for vetting inbound
	// observations against the checks the manager actually issued.
	candIDs   map[string]bool
	runs      []correlate.RunLog
	detected  int
	repairs   []*repair.Repair
	evaluator *evaluate.Evaluator
	current   *evaluate.Entry
	// adoptedBy is the node whose surviving report promoted the current
	// repair to StatePatched ("" before adoption, or for farm-only
	// adoption paths); the soak uses it to prove quarantined nodes never
	// contribute an adopted patch.
	adoptedBy string

	// assigned maps node IDs to the candidate repair each is evaluating
	// in the current phase — the §3 parallel repair evaluation ("the
	// community can evaluate candidate repairs in parallel, reducing the
	// time required to find a successful repair"). Once a repair is
	// adopted (StatePatched) every node runs the adopted one.
	assigned map[string]*evaluate.Entry
	// taken counts how many nodes hold each assigned candidate — the
	// multiset view of assigned, kept in step so assignFor's spread
	// check is a lookup rather than a rebuild (rebuilding per first
	// contact is quadratic in community size).
	taken map[*evaluate.Entry]int
}

// assign records nodeID's candidate, keeping the taken multiset in step.
func (c *caseState) assign(nodeID string, e *evaluate.Entry) {
	if c.assigned == nil {
		c.assigned = make(map[string]*evaluate.Entry)
		c.taken = make(map[*evaluate.Entry]int)
	}
	c.assigned[nodeID] = e
	c.taken[e]++
}

// unassign releases nodeID's candidate, if any, for reassignment.
func (c *caseState) unassign(nodeID string) {
	e, ok := c.assigned[nodeID]
	if !ok {
		return
	}
	delete(c.assigned, nodeID)
	if c.taken[e]--; c.taken[e] == 0 {
		delete(c.taken, e)
	}
}

// clearAssignments opens a new phase: every node is reassigned on its
// next contact.
func (c *caseState) clearAssignments() {
	c.assigned = nil
	c.taken = nil
}

// assignFor picks the repair a node should evaluate: the node keeps its
// assignment within a phase; new nodes take the best not-yet-assigned
// candidate, wrapping around when there are more nodes than candidates.
func (c *caseState) assignFor(nodeID string) *evaluate.Entry {
	if c.state == core.StatePatched || c.evaluator == nil {
		return c.current
	}
	if e, ok := c.assigned[nodeID]; ok {
		return e
	}
	ranked := c.evaluator.Ranked()
	if len(ranked) == 0 {
		return nil
	}
	var pick *evaluate.Entry
	for _, e := range ranked {
		if c.taken[e] == 0 && e.Failures == 0 {
			pick = e
			break
		}
	}
	if pick == nil {
		pick = ranked[0] // all assigned or all failed: share the best
	}
	c.assign(nodeID, pick)
	return pick
}

// Manager is the central server: it owns the community invariant database,
// reacts to failure notifications, pushes checking and repair patches, and
// evaluates repairs from the community's reports (§3.2).
type Manager struct {
	conf  ManagerConfig
	mu    sync.Mutex
	inv   *daikon.DB
	cfgdb *cfg.DB
	cases map[uint32]*caseState
	order []uint32
	seq   uint64

	nodes     map[string]int // node id -> learning shard
	nextShard int

	recordings map[uint32]*replay.Recording // latest failing recording per location
	// vetSem bounds concurrent vet replays across ALL connections (vetting
	// runs outside m.mu, so without it N senders could each spin up a full
	// farm's worth of replay goroutines at once).
	vetSem chan struct{}

	// quarantined maps offending node IDs to the reason their first
	// failed sanity check gave; once present, every message the node
	// sends is ignored (VetReports).
	quarantined map[string]string
	// lastFlush tracks the highest FlushSeq applied per aggregator, so a
	// re-sent flush snapshot (retry across a lost reply, or a duplicated
	// envelope) is answered but never applied twice. See Batch.FlushSeq.
	lastFlush   map[string]uint64
	trustedAggs map[string]bool // nil = any sender may aggregate
	imgWire     []byte          // the protected image's wire form, for recording identity checks

	// Telemetry. tr is nil when tracing is disabled; reg always exists so
	// the counters below are live atomics either way, readable without
	// m.mu (the counter accessors and ObsSnapshot are race-safe by
	// construction).
	tr          *obs.Tracer
	reg         *obs.Registry
	cMessages   *obs.Counter // envelopes handled
	cBatches    *obs.Counter // MsgBatch envelopes among them
	cRejects    *obs.Counter // inputs rejected without node attribution
	cUploads    *obs.Counter // learning uploads merged
	cReplayRuns *obs.Counter // offline replays run by the fast path
	cAdoptions  *obs.Counter // case transitions into StatePatched
}

// NewManager builds and bootstraps a manager.
func NewManager(conf ManagerConfig) (*Manager, error) {
	if conf.Image == nil {
		return nil, fmt.Errorf("community: nil image")
	}
	if conf.StackScope <= 0 {
		conf.StackScope = 1
	}
	if conf.CheckRuns <= 0 {
		conf.CheckRuns = 2
	}
	vetWorkers := conf.ReplayWorkers
	if vetWorkers <= 0 {
		vetWorkers = runtime.GOMAXPROCS(0)
	}
	reg := conf.Obs.Registry()
	if reg == nil {
		reg = obs.New()
	}
	m := &Manager{
		conf:        conf,
		inv:         conf.Seed,
		cfgdb:       cfg.NewDB(conf.Image),
		cases:       make(map[uint32]*caseState),
		nodes:       make(map[string]int),
		recordings:  make(map[uint32]*replay.Recording),
		quarantined: make(map[string]string),
		lastFlush:   make(map[string]uint64),
		imgWire:     conf.Image.Marshal(),
		vetSem:      make(chan struct{}, vetWorkers),
		tr:          conf.Obs,
		reg:         reg,
		cMessages:   reg.Counter("mgr.messages"),
		cBatches:    reg.Counter("mgr.batches"),
		cRejects:    reg.Counter("mgr.rejects"),
		cUploads:    reg.Counter("mgr.uploads"),
		cReplayRuns: reg.Counter("mgr.replay_runs"),
		cAdoptions:  reg.Counter("mgr.adoptions"),
	}
	if len(conf.TrustedAggregators) > 0 {
		m.trustedAggs = make(map[string]bool, len(conf.TrustedAggregators))
		for _, id := range conf.TrustedAggregators {
			m.trustedAggs[id] = true
		}
	}
	if m.inv == nil {
		m.inv = daikon.NewDB()
	}
	for _, input := range conf.BootstrapInputs {
		machine, err := vm.New(vm.Config{
			Image:   conf.Image,
			Plugins: []vm.Plugin{cfg.NewPlugin(m.cfgdb)},
			Input:   input,
		})
		if err != nil {
			return nil, err
		}
		machine.Run()
	}
	return m, nil
}

// InvariantCount returns the size of the community database.
func (m *Manager) InvariantCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inv.Len()
}

// Uploads returns how many learning uploads have been merged.
func (m *Manager) Uploads() int {
	return int(m.cUploads.Value())
}

// ObsSnapshot captures the manager's telemetry — counters and, when a
// tracer was configured, per-stage wall/blocked accounting — without
// taking m.mu, so it is safe to call from any goroutine at any time.
func (m *Manager) ObsSnapshot() obs.Snapshot {
	return m.reg.Snapshot()
}

// CaseStates returns the state of every failure case by location.
func (m *Manager) CaseStates() map[uint32]core.CaseState {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[uint32]core.CaseState, len(m.cases))
	for pc, c := range m.cases {
		out[pc] = c.state
	}
	return out
}

// Serve handles one node connection until it closes. Run it in a
// goroutine per connection (both transports support concurrent serving).
// The connection is bound to the first sender identity it claims (see
// bindSender), so one peer cannot speak as a member and later as another
// member or an aggregator over the same channel.
func (m *Manager) Serve(conn Conn) error {
	defer conn.Close()
	var sender string
	for {
		env, err := conn.Recv()
		if err != nil {
			return err
		}
		reply, err := m.handle(env, &sender)
		if err != nil {
			return err
		}
		reply.Token = env.Token // correlate; see Envelope.Token
		if err := conn.Send(reply); err != nil {
			return err
		}
	}
}

func (m *Manager) handle(env Envelope, bound *string) (Envelope, error) {
	m.cMessages.Inc()
	sp := m.tr.Start("mgr.handle")
	defer sp.Finish()
	switch env.Kind {
	case MsgHello:
		nodeID, err := decodeHello(env.Payload)
		if err != nil {
			return Envelope{}, err
		}
		if err := bindSender(bound, nodeID); err != nil {
			return Envelope{}, err
		}
		done := sp.Block("mgr.mu")
		m.mu.Lock()
		done()
		m.registerLocked(nodeID)
		m.mu.Unlock()
		return m.directivesFor(nodeID)
	case MsgLearnUpload:
		var up LearnUpload
		if err := decodePayload(env.Payload, &up); err != nil {
			return Envelope{}, err
		}
		if err := bindSender(bound, up.NodeID); err != nil {
			return Envelope{}, err
		}
		if err := m.mergeLearnDB(up.NodeID, up.DB); err != nil {
			return Envelope{}, err
		}
		return m.directivesFor(up.NodeID)
	case MsgRunReport:
		var rep RunReport
		if err := decodePayload(env.Payload, &rep); err != nil {
			return Envelope{}, err
		}
		if err := bindSender(bound, rep.NodeID); err != nil {
			return Envelope{}, err
		}
		m.processReport(&rep)
		return m.directivesFor(rep.NodeID)
	case MsgRecording:
		var up RecordingUpload
		if err := decodePayload(env.Payload, &up); err != nil {
			return Envelope{}, err
		}
		if err := bindSender(bound, up.NodeID); err != nil {
			return Envelope{}, err
		}
		if err := m.ingestRecordings(up.NodeID, [][]byte{up.Recording}); err != nil {
			return Envelope{}, err
		}
		return m.directivesFor(up.NodeID)
	case MsgBatch:
		var b Batch
		if err := decodePayload(env.Payload, &b); err != nil {
			return Envelope{}, err
		}
		if err := bindSender(bound, b.NodeID); err != nil {
			return Envelope{}, err
		}
		if err := m.handleBatch(&b, sp); err != nil {
			return Envelope{}, err
		}
		if batchAggregated(&b) {
			return m.directivesSetFor(b.NodeIDs)
		}
		return m.directivesFor(b.NodeID)
	default:
		return Envelope{}, fmt.Errorf("community: unexpected message %v", env.Kind)
	}
}

// registerLocked hands a first-seen node its learning shard. Called with
// m.mu held. Registration is keyed by node ID, never by connection, so a
// node that crashes and re-attaches — to the manager or to any aggregator —
// keeps its shard.
func (m *Manager) registerLocked(nodeID string) {
	if _, ok := m.nodes[nodeID]; ok {
		return
	}
	shard := -1
	if m.conf.LearnShards > 0 {
		shard = m.nextShard % m.conf.LearnShards
		m.nextShard++
	}
	m.nodes[nodeID] = shard
}

// isQuarantined reports whether a node is quarantined. It exists so
// ingest paths can drop a quarantined sender's payload BEFORE decoding
// it: quarantined traffic must cost a map lookup, not unmarshal work.
func (m *Manager) isQuarantined(nodeID string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.quarantined[nodeID] != ""
}

// mergeLearnDB folds one serialized node database into the community
// database, attributing it to nodeID for quarantine purposes.
func (m *Manager) mergeLearnDB(nodeID string, raw []byte) error {
	sp := m.tr.Start("learn")
	defer sp.Finish()
	if m.isQuarantined(nodeID) {
		return nil
	}
	db, err := daikon.UnmarshalDB(raw)
	if err != nil {
		return err
	}
	done := sp.Block("mgr.mu")
	m.mu.Lock()
	done()
	m.mergeDBFrom(nodeID, db)
	m.mu.Unlock()
	return nil
}

// mergeDBFrom sanity-checks and folds a decoded database in, quarantining
// the sender on a poisoned upload ("" attributes nothing: a bad pre-merged
// aggregate is rejected and counted, since the offender was the
// aggregator's to catch). Called with m.mu held.
func (m *Manager) mergeDBFrom(nodeID string, db *daikon.DB) {
	if m.quarantined[nodeID] != "" {
		return
	}
	if m.conf.VetReports {
		if reason := m.checkLearnDB(db); reason != "" {
			if nodeID == "" {
				m.cRejects.Inc()
			} else {
				m.quarantineLocked(nodeID, reason)
			}
			return
		}
	}
	m.mergeDB(db)
}

// mergeDB folds a decoded node database in. Called with m.mu held.
func (m *Manager) mergeDB(db *daikon.DB) {
	if m.inv.Len() == 0 && len(m.inv.VarsSeen) == 0 {
		m.inv = db
	} else {
		m.inv.Merge(db, daikon.DefaultMaxOneOf)
	}
	m.cUploads.Inc()
}

// ingestRecordings stores failing-run recordings (latest wins per failure
// location) and runs the replay fast path once per distinct location —
// not once per recording, which is the batching win: a hundred nodes
// shipping the same deterministic failure cost one farm pass.
func (m *Manager) ingestRecordings(nodeID string, raws [][]byte) error {
	if m.isQuarantined(nodeID) {
		return nil // dropped before any decode; see isQuarantined
	}
	recs := make([]*replay.Recording, 0, len(raws))
	senders := make([]string, 0, len(raws))
	for _, raw := range raws {
		rec, err := replay.Unmarshal(raw)
		if err != nil {
			return err
		}
		recs = append(recs, rec)
		senders = append(senders, nodeID)
	}
	m.ingestDecoded(recs, senders)
	return nil
}

// ingestDecoded vets and stores decoded recordings (senders is parallel to
// recs) and fast-paths each distinct failure location once. Called WITHOUT
// m.mu held: the static checks and the final stores run under the lock,
// but the farm-backed vetting — the only step bounded by wall clock rather
// than work — runs outside it, so an adversarial recording crafted to
// stall the vetter delays only the connection that shipped it, never every
// other connection the manager is serving.
func (m *Manager) ingestDecoded(recs []*replay.Recording, senders []string) {
	if len(recs) == 0 {
		return
	}
	type vetJob struct {
		rec    *replay.Recording
		sender string
		pc     uint32
	}
	sp := m.tr.Start("record")
	defer sp.Finish()
	done := sp.Block("mgr.mu")
	m.mu.Lock()
	done()
	pend := make([]vetJob, 0, len(recs))
	for i, rec := range recs {
		sender := ""
		if i < len(senders) {
			sender = senders[i]
		}
		if m.quarantined[sender] != "" {
			continue
		}
		pc, ok := rec.FailurePC()
		if !ok {
			continue
		}
		if m.conf.VetReports {
			if reason := checkRecordingStatic(m.conf.Image, m.imgWire, rec, pc); reason != "" {
				m.quarantineLocked(sender, reason)
				continue
			}
			m.cReplayRuns.Inc()
		}
		pend = append(pend, vetJob{rec, sender, pc})
	}
	vet := m.conf.VetReports
	m.mu.Unlock()

	// Farm-backed vetting, off the lock: the claimed failure must
	// reproduce when the recording is replayed as sealed. The machine is
	// deterministic, so honest recordings cannot fail this; a mismatch
	// means the claim was fabricated. vetSem bounds replay concurrency
	// across every connection currently ingesting recordings — not just
	// this call — so a flood of recording batches cannot oversubscribe
	// the host with one farm's worth of replays per sender.
	var verdicts []error
	if vet && len(pend) > 0 {
		verdicts = make([]error, len(pend))
		farm := m.vetFarm()
		var wg sync.WaitGroup
		for i := range pend {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				vsp := m.tr.Start("vet")
				defer vsp.Finish()
				wait := vsp.Block("vetsem")
				m.vetSem <- struct{}{}
				wait()
				defer func() { <-m.vetSem }()
				verdicts[i] = farm.Vet(pend[i].rec)
			}(i)
		}
		// The span owner parks here while the vet goroutines drain: that
		// wait is this stage's fan-out cost, not CPU work.
		sp.BlockFor("vet.fanout", wg.Wait)
	}

	done = sp.Block("mgr.mu")
	m.mu.Lock()
	done()
	var pcs []uint32
	seen := make(map[uint32]bool)
	for i := range pend {
		if m.quarantined[pend[i].sender] != "" {
			continue // quarantined while this batch was off vetting
		}
		if verdicts != nil && verdicts[i] != nil {
			m.quarantineLocked(pend[i].sender, verdicts[i].Error())
			continue
		}
		m.recordings[pend[i].pc] = pend[i].rec
		if !seen[pend[i].pc] {
			seen[pend[i].pc] = true
			pcs = append(pcs, pend[i].pc)
		}
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	for _, pc := range pcs {
		m.replayFastPath(pc)
	}
	m.mu.Unlock()
}

// vetDeadline bounds each recording vet in wall clock. A recording crafted
// to stall (a huge claimed step budget over a spin loop) must be rejected,
// not waited on — an honest webapp recording replays in milliseconds, so
// the margin is enormous. Vetting runs outside m.mu (see ingestDecoded),
// so even a deadline miss stalls only the sender's own ingestion.
const vetDeadline = 5 * time.Second

// vetFarm returns the deadline-bounded farm used for recording vetting.
// Concurrency is bounded by m.vetSem at the call sites (per-Vet tokens,
// shared across connections), not by Farm.Workers.
func (m *Manager) vetFarm() *replay.Farm {
	return &replay.Farm{Deadline: vetDeadline, Obs: m.tr}
}

// aggregatorTrusted reports whether a sender may speak for other nodes.
func (m *Manager) aggregatorTrusted(id string) bool {
	return m.trustedAggs == nil || m.trustedAggs[id]
}

// batchAggregated reports whether a batch exercises aggregator powers —
// explicitly flagged, or carrying any field that speaks for other nodes.
func batchAggregated(b *Batch) bool {
	return b.Aggregated || len(b.NodeIDs) > 0 || len(b.Quarantined) > 0 || len(b.RecordingFrom) > 0
}

// handleBatch applies batched activity: learning uploads first, then the
// run reports in execution order, then the recordings — the same
// sequencing RunOnce produces message by message, collapsed into one
// envelope. Every serialized payload is decoded up front, so a malformed
// batch is rejected whole rather than half-applied.
//
// An aggregated batch (NodeIDs non-empty) additionally registers the
// member nodes, merges the sending aggregator's edge quarantine verdicts,
// and attributes each recording to the member that captured it. A batch
// that speaks for other nodes — NodeIDs, Quarantined verdicts, or
// RecordingFrom attribution — is only honored from a trusted aggregator;
// from anyone else it is a protocol violation and the connection is
// dropped (an ordinary member must not be able to frame or
// mass-quarantine its peers). The same rule governs report attribution:
// only a trusted aggregated batch may relay reports carrying foreign
// NodeIDs; in a plain member batch, a report claiming any identity but the
// sender's own is a framing attempt (under VetReports it could quarantine
// the named peer, or credit it with an adoption) and is dropped, counted
// in Rejects.
func (m *Manager) handleBatch(b *Batch, sp *obs.Span) error {
	aggregated := batchAggregated(b)
	if aggregated && !m.aggregatorTrusted(b.NodeID) {
		return fmt.Errorf("community: %q is not a trusted aggregator", b.NodeID)
	}
	if aggregated && b.FlushSeq != 0 {
		// At-most-once application per flush snapshot: a duplicate (the
		// sender retrying across a lost reply, or a faulty wire delivering
		// the envelope twice) is acknowledged — handle still answers with
		// the members' current directives — but applied zero more times.
		m.mu.Lock()
		dup := m.lastFlush[b.NodeID] >= b.FlushSeq
		if !dup {
			m.lastFlush[b.NodeID] = b.FlushSeq
		}
		m.mu.Unlock()
		if dup {
			m.cBatches.Inc()
			return nil
		}
	}
	if !aggregated && m.isQuarantined(b.NodeID) {
		// The whole batch is from a quarantined member: ignored at
		// map-lookup cost, before any payload is unmarshalled. (The
		// locked section below re-checks, in case quarantine lands
		// between here and there.)
		m.cBatches.Inc()
		return nil
	}

	dbs := make([]*daikon.DB, 0, len(b.LearnDBs))
	for _, raw := range b.LearnDBs {
		db, err := daikon.UnmarshalDB(raw)
		if err != nil {
			return err
		}
		dbs = append(dbs, db)
	}
	recs := make([]*replay.Recording, 0, len(b.Recordings))
	senders := make([]string, 0, len(b.Recordings))
	unattributed := 0
	for i, raw := range b.Recordings {
		rec, err := replay.Unmarshal(raw)
		if err != nil {
			return err
		}
		sender := b.NodeID
		if aggregated {
			// Aggregated recordings must name their capturing member: an
			// unattributed one is dropped rather than blamed on the
			// aggregator (a failed vet must never quarantine the trusted
			// tier itself).
			sender = ""
			if i < len(b.RecordingFrom) {
				sender = b.RecordingFrom[i]
			}
			if sender == "" {
				unattributed++
				continue
			}
		}
		recs = append(recs, rec)
		senders = append(senders, sender)
	}
	reports := b.Reports
	misattributed := 0
	if !aggregated {
		reports = make([]RunReport, 0, len(b.Reports))
		for i := range b.Reports {
			if b.Reports[i].NodeID != b.NodeID {
				misattributed++
				continue
			}
			reports = append(reports, b.Reports[i])
		}
	}

	done := sp.Block("mgr.mu")
	m.mu.Lock()
	done()
	m.cBatches.Inc()
	m.cRejects.Add(int64(unattributed + misattributed))
	if !aggregated && m.quarantined[b.NodeID] != "" {
		m.mu.Unlock()
		return nil // the whole batch is from a quarantined node
	}
	for _, id := range b.NodeIDs {
		m.registerLocked(id)
	}
	for _, id := range b.Quarantined {
		m.quarantineLocked(id, "edge sanity check at aggregator "+b.NodeID)
	}
	dbSender := b.NodeID
	if aggregated {
		// An aggregated learn DB is pre-merged across members; a bad one
		// is rejected without attribution (the offender was the
		// aggregator's edge checks' to catch).
		dbSender = ""
	}
	if len(dbs) > 0 {
		lsp := m.tr.Start("learn")
		for _, db := range dbs {
			m.mergeDBFrom(dbSender, db)
		}
		lsp.Finish()
	}
	esp := m.tr.Start("evaluate")
	for i := range reports {
		m.processReportLocked(&reports[i])
	}
	esp.Finish()
	m.mu.Unlock()
	m.ingestDecoded(recs, senders)
	return nil
}

// processReport advances every failure case with one node run, following
// the same rules as the single-machine pipeline.
func (m *Manager) processReport(rep *RunReport) {
	sp := m.tr.Start("evaluate")
	defer sp.Finish()
	done := sp.Block("mgr.mu")
	m.mu.Lock()
	done()
	defer m.mu.Unlock()
	m.processReportLocked(rep)
}

// processReportLocked is processReport's body. Called with m.mu held.
func (m *Manager) processReportLocked(rep *RunReport) {
	if rep.NodeID == "" {
		m.cRejects.Inc() // anonymous reports have no accountable sender
		return
	}
	if m.quarantined[rep.NodeID] != "" {
		return
	}
	if m.conf.VetReports {
		if reason := m.checkReport(rep); reason != "" {
			m.quarantineLocked(rep.NodeID, reason)
			return
		}
	}
	var failPC uint32
	if rep.Failure != nil {
		failPC = rep.Failure.PC
	}

	obsByFailure := map[string][]correlate.Observation{}
	for _, o := range rep.Observations {
		obsByFailure[o.FailureID] = append(obsByFailure[o.FailureID], o)
	}

	for _, pc := range m.order {
		c := m.cases[pc]
		if rep.Seq < c.phaseSeq {
			// The node ran without this phase's patches installed.
			continue
		}
		switch c.state {
		case core.StateChecking:
			detected := rep.Failure != nil && failPC == c.pc
			c.runs = append(c.runs, correlate.RunLog{
				Detected: detected,
				Obs:      obsByFailure[c.id],
			})
			if detected {
				c.detected++
			}
			if c.detected >= m.conf.CheckRuns {
				m.finishChecking(c)
			}
		case core.StateEvaluating, core.StatePatched:
			entry := c.assignFor(rep.NodeID)
			if entry == nil {
				break
			}
			id := entry.Repair.ID()
			failed := (rep.Failure != nil && failPC == c.pc) ||
				rep.Outcome == uint8(vm.OutcomeCrash) ||
				(rep.Outcome == uint8(vm.OutcomeExit) && rep.ExitCode != 0)
			switch {
			case failed && c.state == core.StatePatched:
				// The adopted, community-wide patch stopped working:
				// demote it and reopen the evaluation phase.
				c.evaluator.RecordFailure(id)
				m.redeploy(c)
			case failed:
				// One node's candidate failed. Only that node is
				// reassigned; peers evaluating other candidates in the
				// same round keep reporting (the §3 parallelism).
				c.evaluator.RecordFailure(id)
				c.unassign(rep.NodeID)
				if c.evaluator.Exhausted() {
					c.state = core.StateUnrepaired
					c.current = nil
					c.clearAssignments()
				} else {
					c.current = c.evaluator.Best()
				}
			default:
				c.evaluator.RecordSuccess(id)
				if c.state == core.StateEvaluating {
					// Adopt the repair that survived — possibly one a
					// peer node was evaluating, not the global best.
					c.state = core.StatePatched
					c.current = entry
					c.clearAssignments()
					c.adoptedBy = rep.NodeID
					m.cAdoptions.Inc()
				}
			}
		}
	}

	if rep.Failure != nil {
		if _, known := m.cases[failPC]; !known {
			m.openCase(rep.Failure)
		}
	}
}

func (m *Manager) openCase(f *FailureInfo) {
	m.seq++
	c := &caseState{
		id:       fmt.Sprintf("fail@%#x", f.PC),
		pc:       f.PC,
		state:    core.StateChecking,
		phaseSeq: m.seq,
	}
	c.cands = correlate.SelectCandidates(
		m.inv, m.cfgdb, f.PC, f.Stack,
		correlate.Config{StackScope: m.conf.StackScope},
	)
	c.candIDs = make(map[string]bool, len(c.cands))
	for _, cand := range c.cands {
		c.candIDs[cand.Inv.ID()] = true
	}
	if len(c.cands) == 0 {
		c.state = core.StateUnrepaired
	}
	m.cases[f.PC] = c
	m.order = append(m.order, f.PC)
}

func (m *Manager) finishChecking(c *caseState) {
	sp := m.tr.Start("correlate")
	defer sp.Finish()
	m.seq++
	c.phaseSeq = m.seq
	corr := correlate.Classify(c.runs)
	selected := correlate.SelectForRepair(c.cands, corr)
	c.repairs = repair.GenerateAll(selected, m.instAt, m.inv.SPOffsetAt)
	c.evaluator = evaluate.New(c.repairs, m.conf.Bonus)
	if c.evaluator.Len() == 0 {
		c.state = core.StateUnrepaired
		return
	}
	c.state = core.StateEvaluating
	c.current = c.evaluator.Best()
}

func (m *Manager) redeploy(c *caseState) {
	m.seq++
	c.phaseSeq = m.seq
	c.clearAssignments() // new phase: reassign candidates to nodes
	c.adoptedBy = ""
	if c.evaluator.Exhausted() {
		c.state = core.StateUnrepaired
		c.current = nil
		return
	}
	c.state = core.StateEvaluating
	c.current = c.evaluator.Best()
}

// replayFastPath advances the failure case at pc using its recording —
// the community mirror of internal/core's fast path. Called with m.mu
// held, after a recording arrives. While the case is checking, the
// manager replays the recording under the checking patches itself (it
// holds the same binary the community runs), filling the run log the
// nodes would otherwise take live executions to produce; once candidates
// exist, the farm judges all of them before any node is asked to
// evaluate one in production.
//
// These replays run under the lock, but only for vetted recordings and
// with bounded work: checkRecordingStatic caps the claimed step budget at
// one honest run's (maxVetSteps), the checking loop runs at most CheckRuns
// replays, and farmSeed's per-candidate replays carry vetDeadline — so the
// fast path costs at most a short, fixed burst per distinct failure
// location, not an attacker-controlled stall.
func (m *Manager) replayFastPath(pc uint32) {
	if m.conf.ReplayWorkers == 0 {
		return
	}
	c := m.cases[pc]
	rec := m.recordings[pc]
	if c == nil || rec == nil {
		return
	}
	sp := m.tr.Start("farm")
	defer sp.Finish()
	if c.state == core.StateChecking {
		cs := correlate.BuildCheckSet(c.id, c.cands)
		for c.detected < m.conf.CheckRuns {
			cs.StartRun()
			res, err := rec.Replay(cs.Patches, c.id)
			if err != nil {
				return
			}
			runObs := cs.DrainRun()
			if res.Failure == nil || res.Failure.PC != c.pc {
				return // replay does not reproduce: leave it to live runs
			}
			c.detected++
			c.runs = append(c.runs, correlate.RunLog{Detected: true, Obs: runObs})
			m.cReplayRuns.Inc()
		}
		m.finishChecking(c)
	}
	if c.state != core.StateEvaluating || c.evaluator == nil || len(c.repairs) == 0 {
		return
	}
	m.farmSeed(c, rec, sp)
}

// farmSeed judges every candidate repair against the recording and folds
// the verdicts into the evaluator, so nodes are only ever assigned
// repairs that survived the recorded failure. Opens a new phase: the
// candidate ranking changed, so in-flight reports must not be credited
// against the new assignments. The farm carries vetDeadline because this
// runs under m.mu: a candidate whose replay overruns it yields an Err
// verdict, which replay.Apply skips — no evidence either way, live
// evaluation decides.
func (m *Manager) farmSeed(c *caseState, rec *replay.Recording, sp *obs.Span) {
	workers := m.conf.ReplayWorkers
	if workers < 0 {
		workers = 0 // Farm interprets 0 as GOMAXPROCS
	}
	farm := &replay.Farm{Workers: workers, Deadline: vetDeadline, Obs: m.tr}
	// The calling goroutine parks on the farm's result channel while the
	// workers replay; under m.mu that park is the convoy the stage table
	// exists to expose, so it is attributed explicitly.
	wait := sp.Block("farm.fanout")
	verdicts := farm.Evaluate(rec, c.id, c.repairs)
	wait()
	replay.Apply(verdicts, c.evaluator)
	m.cReplayRuns.Add(int64(len(verdicts)))
	m.seq++
	c.phaseSeq = m.seq
	c.clearAssignments()
	if c.evaluator.Exhausted() {
		c.state = core.StateUnrepaired
		c.current = nil
		return
	}
	c.current = c.evaluator.Best()
}

// RecordingCount returns how many failure locations have a recording.
func (m *Manager) RecordingCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.recordings)
}

// ReplayRuns returns how many offline replays the fast path has executed.
func (m *Manager) ReplayRuns() int {
	return int(m.cReplayRuns.Value())
}

// Messages returns how many envelopes the manager has handled — the cost
// the batching protocol amortizes.
func (m *Manager) Messages() int {
	return int(m.cMessages.Value())
}

// Batches returns how many MsgBatch envelopes were among the messages.
func (m *Manager) Batches() int {
	return int(m.cBatches.Value())
}

// quarantineLocked marks a node as untrusted; its traffic is ignored from
// now on, including later well-formed reports. Called with m.mu held.
func (m *Manager) quarantineLocked(nodeID, reason string) {
	if nodeID == "" || m.quarantined[nodeID] != "" {
		return
	}
	m.quarantined[nodeID] = reason
	// A node already holding a candidate assignment must not keep it: its
	// future reports are ignored, so the assignment would starve.
	for _, c := range m.cases {
		c.unassign(nodeID)
	}
}

// checkReport returns the reason a run report is implausible, or "" if it
// passes: the static image checks (checkReportStatic), plus the checks
// only the manager's campaign state can answer — observations must
// reference checks the manager actually issued (a known failure case and
// one of its candidate invariants). Called with m.mu held.
func (m *Manager) checkReport(rep *RunReport) string {
	if reason := checkReportStatic(m.conf.Image, rep); reason != "" {
		return reason
	}
	for i := range rep.Observations {
		o := &rep.Observations[i]
		c := m.caseByID(o.FailureID)
		if c == nil {
			return fmt.Sprintf("observation for unknown failure case %q", o.FailureID)
		}
		if !c.candIDs[o.InvID] {
			return fmt.Sprintf("observation for invariant %q never issued for case %q", o.InvID, o.FailureID)
		}
	}
	return ""
}

// checkLearnDB applies the static database checks; see checkLearnDBStatic.
func (m *Manager) checkLearnDB(db *daikon.DB) string {
	return checkLearnDBStatic(m.conf.Image, db)
}

// caseByID finds a failure case by its wire identifier. Called with m.mu
// held.
func (m *Manager) caseByID(id string) *caseState {
	for _, pc := range m.order {
		if c := m.cases[pc]; c.id == id {
			return c
		}
	}
	return nil
}

// Quarantined returns the quarantined node IDs and the reason each
// tripped, as a copy.
func (m *Manager) Quarantined() map[string]string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]string, len(m.quarantined))
	for id, reason := range m.quarantined {
		out[id] = reason
	}
	return out
}

// Rejects returns how many inputs were dropped without advancing any
// state: pre-merged aggregate databases that failed sanity checks,
// aggregated recordings with no capturing member named, and member-batch
// reports claiming a NodeID other than the batch sender's.
func (m *Manager) Rejects() int {
	return int(m.cRejects.Value())
}

// Adoptions returns, for every currently patched failure location, the
// node whose surviving report drove the adoption ("" when the adoption
// came from a path with no attributable report).
func (m *Manager) Adoptions() map[uint32]string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[uint32]string)
	for pc, c := range m.cases {
		if c.state == core.StatePatched {
			out[pc] = c.adoptedBy
		}
	}
	return out
}

func (m *Manager) instAt(pc uint32) (isa.Inst, bool) {
	img := m.conf.Image
	if !img.Contains(pc) || pc+isa.InstSize > img.End() {
		return isa.Inst{}, false
	}
	in, err := isa.Decode(img.Code[pc-img.Base:])
	return in, err == nil
}

// directivesFor snapshots the current patch set for one node.
func (m *Manager) directivesFor(nodeID string) (Envelope, error) {
	sp := m.tr.Start("adopt")
	done := sp.Block("mgr.mu")
	m.mu.Lock()
	done()
	d := m.directivesLocked(nodeID)
	m.mu.Unlock()
	sp.Finish()
	return directivesEnvelope(d)
}

// directivesSetFor snapshots the current patch set for every listed node
// under one lock — the reply to an aggregated batch. Nodes are visited in
// the given order, so candidate assignment (which mutates per-case state)
// is deterministic for a sorted NodeIDs list.
func (m *Manager) directivesSetFor(nodeIDs []string) (Envelope, error) {
	sp := m.tr.Start("adopt")
	done := sp.Block("mgr.mu")
	m.mu.Lock()
	done()
	set := DirectivesSet{Seq: m.seq, ByNode: make(map[string]Directives, len(nodeIDs))}
	for _, id := range nodeIDs {
		set.ByNode[id] = m.directivesLocked(id)
	}
	m.mu.Unlock()
	sp.Finish()
	return NewEnvelope(MsgDirectivesSet, set)
}

// directivesLocked assembles one node's directives. Called with m.mu held.
//
// A quarantined node still receives plausible directives — the reply
// reveals nothing about its status — but is never handed a per-node
// candidate assignment: its reports are ignored, so an assignment would
// park that candidate unevaluated forever (the quarantined node gets the
// case's current best, read-only).
func (m *Manager) directivesLocked(nodeID string) Directives {
	quarantined := m.quarantined[nodeID] != ""
	d := Directives{Seq: m.seq}
	for _, pc := range m.order {
		c := m.cases[pc]
		switch c.state {
		case core.StateChecking:
			for _, cand := range c.cands {
				d.Checks = append(d.Checks, CheckSpec{
					FailureID: c.id,
					Invariant: *cand.Inv,
				})
			}
		case core.StateEvaluating, core.StatePatched:
			entry := c.current
			if !quarantined {
				entry = c.assignFor(nodeID)
			}
			if entry != nil {
				r := entry.Repair
				d.Repairs = append(d.Repairs, RepairSpec{
					FailureID: c.id,
					Invariant: *r.Inv,
					Strategy:  r.Strategy,
					Value:     r.Value,
					SPDelta:   r.SPDelta,
					PC:        r.PC,
					Depth:     r.Depth,
				})
			}
		}
	}
	if shard, ok := m.nodes[nodeID]; ok && shard >= 0 && m.conf.LearnShards > 0 {
		span := (uint32(len(m.conf.Image.Code)) + uint32(m.conf.LearnShards) - 1) / uint32(m.conf.LearnShards)
		d.LearnLo = m.conf.Image.Base + span*uint32(shard)
		d.LearnHi = d.LearnLo + span
	}
	return d
}
