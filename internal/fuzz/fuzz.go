// Package fuzz implements a coverage-guided exploit-variant fuzzer over
// the deterministic machine. ClearView's §4 evaluation is gated on a fixed
// Red Team corpus of ten known exploits; the fuzzer turns that corpus into
// a generator of scenario diversity: it mutates the Red Team inputs (and
// any benign seeds) against the protected application, steered by the
// per-basic-block edge coverage the code cache records (vm.Coverage), and
// captures every novel monitor-detected failure as a replay.Recording —
// exactly the artifact the replay farm and the community manager already
// consume (internal/replay, MsgRecording). The simulated machine is fully
// deterministic, so the machine itself is the oracle: "does this input
// fail?" costs one run and always answers the same way.
//
// Determinism is a design requirement, not an accident: the fuzzer draws
// every decision from one seeded RNG, iterates coverage only in sorted
// order, and keeps its corpus and findings in discovery order, so a
// campaign with a fixed seed reproduces bit-for-bit — same corpus, same
// coverage counters, same findings (see Fingerprint).
package fuzz

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"

	"repro/internal/core"
	"repro/internal/image"
	"repro/internal/replay"
	"repro/internal/vm"
)

// DefaultMaxSteps bounds each fuzz execution. Mutated inputs can loop; a
// tight budget keeps throughput high (the Red Team attacks run well under
// a million steps).
const DefaultMaxSteps = 2_000_000

// DefaultMaxInput caps mutated input size so splices and duplications
// cannot snowball.
const DefaultMaxInput = 4096

// Config assembles a fuzzing campaign.
type Config struct {
	Image *image.Image
	// Seeds are the initial corpus — typically the Red Team attack inputs
	// plus a few benign pages for path diversity. Seeds are executed
	// unmutated first (establishing baseline coverage and findings),
	// then mutated.
	Seeds [][]byte
	// Seed seeds the campaign RNG; campaigns with equal seeds and equal
	// configs reproduce bit-for-bit.
	Seed int64
	// Monitors during fuzz executions; nil means replay.AllMonitors.
	Monitors *replay.Monitors
	// MaxSteps bounds each execution; 0 selects DefaultMaxSteps.
	MaxSteps uint64
	// MaxInput caps mutated input length; 0 selects DefaultMaxInput.
	MaxInput int
	// SnapshotInterval is the recording cadence for captured findings;
	// 0 selects replay.DefaultSnapshotInterval.
	SnapshotInterval uint64
}

func (c Config) monitors() replay.Monitors {
	if c.Monitors == nil {
		return replay.AllMonitors()
	}
	return *c.Monitors
}

// Finding is one discovered failure location with the first input that
// reached it, captured as a deterministic recording ready for the replay
// farm or a community MsgRecording upload.
type Finding struct {
	PC      uint32
	Monitor string
	Kind    string
	Input   []byte
	// Recording replays the finding bit-identically (same monitors, same
	// step budget as the fuzz execution that discovered it).
	Recording *replay.Recording
	// Iter is the campaign iteration (0-based) that discovered the PC.
	Iter int
	// Variants counts additional, byte-distinct failing inputs observed
	// at the same location later in the campaign.
	Variants int
}

// bucketKey is one (edge, hit-count bucket) coverage coordinate — the
// AFL-style signal that distinguishes "loop ran twice" from "loop ran
// 100 times" without treating every count as novel.
type bucketKey struct {
	edge   vm.Edge
	bucket uint8
}

// bucketize maps a hit count to its coarse bucket (1, 2, 3, 4-7, 8-15,
// 16-31, 32-127, 128+).
func bucketize(n uint64) uint8 {
	switch {
	case n <= 3:
		return uint8(n)
	case n <= 7:
		return 4
	case n <= 15:
		return 5
	case n <= 31:
		return 6
	case n <= 127:
		return 7
	default:
		return 8
	}
}

// Fuzzer runs one deterministic campaign.
type Fuzzer struct {
	conf Config
	rng  *rand.Rand

	global  *vm.Coverage
	buckets map[bucketKey]struct{}

	corpus   [][]byte
	seedIdx  int
	findings []*Finding
	byPC     map[uint32]*Finding

	iters    int
	failures int // total failing executions (including rediscoveries)
	crashes  int // non-monitor terminations observed
}

// New builds a fuzzer. The seed corpus must be non-empty.
func New(conf Config) (*Fuzzer, error) {
	if conf.Image == nil {
		return nil, fmt.Errorf("fuzz: nil image")
	}
	if len(conf.Seeds) == 0 {
		return nil, fmt.Errorf("fuzz: empty seed corpus")
	}
	if conf.MaxSteps == 0 {
		conf.MaxSteps = DefaultMaxSteps
	}
	if conf.MaxInput <= 0 {
		conf.MaxInput = DefaultMaxInput
	}
	return &Fuzzer{
		conf:    conf,
		rng:     rand.New(rand.NewSource(conf.Seed)),
		global:  vm.NewCoverage(),
		buckets: make(map[bucketKey]struct{}),
		byPC:    make(map[uint32]*Finding),
	}, nil
}

// newMachine assembles a monitored machine with coverage attached — the
// same monitor stack a community node runs (§4.2.2 plus the extended
// detectors).
func (f *Fuzzer) newMachine(input []byte, cov *vm.Coverage) (*vm.VM, error) {
	plugins, shadow, hang := f.conf.monitors().Plugins()
	machine, err := vm.New(vm.Config{
		Image:    f.conf.Image,
		Input:    input,
		Plugins:  plugins,
		MaxSteps: f.conf.MaxSteps,
		Coverage: cov,
	})
	if err != nil {
		return nil, err
	}
	if shadow != nil {
		shadow.Install(machine)
	}
	if hang != nil {
		hang.Install(machine)
	}
	return machine, nil
}

// Step executes one campaign iteration: pick or mutate an input, run it,
// fold its coverage into the campaign signal, and capture any novel
// failure as a recording.
func (f *Fuzzer) Step() error {
	var input []byte
	if f.seedIdx < len(f.conf.Seeds) {
		input = append([]byte(nil), f.conf.Seeds[f.seedIdx]...)
		f.seedIdx++
	} else {
		base := f.corpus[f.rng.Intn(len(f.corpus))]
		input = f.mutate(base)
	}

	cov := vm.NewCoverage()
	machine, err := f.newMachine(input, cov)
	if err != nil {
		return err
	}
	res := machine.Run()
	f.iters++

	// Coverage signal: any (edge, bucket) coordinate not seen before
	// earns the input a place in the corpus. Iteration over cov.Edges()
	// is sorted, so the decision sequence is deterministic.
	novel := false
	for _, e := range cov.Edges() {
		k := bucketKey{edge: e, bucket: bucketize(cov.Hits(e))}
		if _, ok := f.buckets[k]; !ok {
			f.buckets[k] = struct{}{}
			novel = true
		}
	}
	f.global.Merge(cov)
	if novel {
		f.corpus = append(f.corpus, input)
	}

	switch res.Outcome {
	case vm.OutcomeFailure:
		f.failures++
		f.recordFailure(input, res)
	case vm.OutcomeCrash:
		f.crashes++
	case vm.OutcomeExit:
		if res.ExitCode != 0 {
			f.crashes++
		}
	}
	return nil
}

// recordFailure captures a monitor-detected failure: the first input per
// failure location becomes a Finding with a deterministic recording;
// later byte-distinct inputs at the same location count as variants.
func (f *Fuzzer) recordFailure(input []byte, res vm.RunResult) {
	pc := res.Failure.PC
	if prev, ok := f.byPC[pc]; ok {
		if !bytes.Equal(prev.Input, input) {
			prev.Variants++
		}
		return
	}
	mons := f.conf.monitors()
	rec, _, err := replay.Record(
		fmt.Sprintf("fuzz/%#x/iter%d", pc, f.iters-1),
		f.conf.Image, input, nil,
		replay.Options{
			Monitors:         &mons,
			MaxSteps:         f.conf.MaxSteps,
			SnapshotInterval: f.conf.SnapshotInterval,
		},
	)
	if err != nil {
		rec = nil // the finding stands; only the recording is missing
	}
	fd := &Finding{
		PC:        pc,
		Monitor:   res.Failure.Monitor,
		Kind:      res.Failure.Kind,
		Input:     input,
		Recording: rec,
		Iter:      f.iters - 1,
	}
	f.byPC[pc] = fd
	f.findings = append(f.findings, fd)
}

// Run executes iters campaign iterations.
func (f *Fuzzer) Run(iters int) error {
	for i := 0; i < iters; i++ {
		if err := f.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Findings returns every discovered failure location in discovery order.
func (f *Fuzzer) Findings() []*Finding { return f.findings }

// Finding returns the finding at a failure location, or nil.
func (f *Fuzzer) Finding(pc uint32) *Finding { return f.byPC[pc] }

// Coverage returns the campaign's cumulative edge coverage.
func (f *Fuzzer) Coverage() *vm.Coverage { return f.global }

// CorpusLen returns the number of coverage-earning inputs retained.
func (f *Fuzzer) CorpusLen() int { return len(f.corpus) }

// Corpus returns the retained inputs in discovery order.
func (f *Fuzzer) Corpus() [][]byte { return f.corpus }

// Iters returns the number of executed iterations.
func (f *Fuzzer) Iters() int { return f.iters }

// Failures returns the total count of failing executions (every
// presentation of every finding, not just novel locations).
func (f *Fuzzer) Failures() int { return f.failures }

// Crashes returns the count of non-monitor terminations (crashes and
// abnormal exits) — inputs the monitors did not classify.
func (f *Fuzzer) Crashes() int { return f.crashes }

// Fingerprint digests the campaign's observable state — corpus bytes in
// order, cumulative coverage, findings (PC, iteration, variants), and
// counters — into one value. Two campaigns with the same config and seed
// must fingerprint identically; the tests assert exactly that.
func (f *Fuzzer) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	for _, in := range f.corpus {
		word(uint64(len(in)))
		h.Write(in)
	}
	word(f.global.Hash())
	for _, fd := range f.findings {
		word(uint64(fd.PC))
		word(uint64(fd.Iter))
		word(uint64(fd.Variants))
	}
	word(uint64(f.iters))
	word(uint64(f.failures))
	word(uint64(f.crashes))
	return h.Sum64()
}

// DrivePipeline feeds each finding into a ClearView pipeline by executing
// its input presentations times — with the replay fast path enabled, the
// first presentation records, farm-judges every candidate repair, and
// deploys the winner, so two presentations suffice for a repairable
// defect. Returns the final case state per failure location. This is how
// fuzzer output becomes evaluation input: the fuzzer generates the
// scenarios, the pipeline consumes them.
func DrivePipeline(cv *core.ClearView, findings []*Finding, presentations int) map[uint32]core.CaseState {
	for _, fd := range findings {
		for i := 0; i < presentations; i++ {
			cv.Execute(fd.Input)
		}
	}
	out := make(map[uint32]core.CaseState, len(findings))
	for _, fd := range findings {
		if fc := cv.Case(fd.PC); fc != nil {
			out[fd.PC] = fc.State
		}
	}
	return out
}
