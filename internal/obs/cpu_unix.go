//go:build unix

package obs

import (
	"syscall"
	"time"
)

// ProcessCPU returns the process's cumulative user and system CPU time —
// the OS's ground truth for the on-CPU side of the ledger. The soak's
// summary prints it beside the wall clock so the table's instrumented
// on-CPU/blocked split can be sanity-checked against the kernel's.
func ProcessCPU() (user, system time.Duration, ok bool) {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0, 0, false
	}
	toDur := func(tv syscall.Timeval) time.Duration {
		return time.Duration(tv.Sec)*time.Second + time.Duration(tv.Usec)*time.Microsecond
	}
	return toDur(ru.Utime), toDur(ru.Stime), true
}
