package webapp

import (
	"repro/internal/asm"
	"repro/internal/isa"
)

// Script element layout: [0x03][op][idx][arg3][arg4..7...]
//
//	op 0  CREATE   [idx][type]        make an object in table[idx]
//	op 1  SETPROP  [idx][field][val]  obj.word[field] = val — the defect of
//	                                  290162/295854: no type/bounds check,
//	                                  so field 0 overwrites the vtable
//	op 2  INVOKE290 [idx]             virtual dispatch (site_290162)
//	op 3  INVOKE295 [idx]             virtual dispatch (site_295854)
//	op 4  GCFREE   [idx]              frees the object but leaves the table
//	                                  slot dangling — the 312278 defect
//	op 5  MAKESTR  [idx][pad][16 bytes] allocate a 16-byte string filled
//	                                  with page bytes (the attacker's
//	                                  reallocation vehicle)
//	op 6  INVOKE312 [idx]             virtual dispatch (site_312278)
//	op 7  FREECLR  [idx]              correct free: releases and clears
//	op 8  FRESH    [idx]              allocates an object WITHOUT
//	                                  initializing it — the 269095/320182
//	                                  defect (relies on recycled contents)
//	op 9  INVOKE269 [idx]             dispatch + result use (site_269095)
//	op 10 INVOKE320 [idx]             copy-paste clone (site_320182)
//
// Object layout (16 bytes): [0]=vtable, [4]=type, [8]=data, [12]=aux.
// Types: 0 DOC (vt: doc_show), 1 NODE (vt: node_show), 2 LIST (vt:
// list_sum), 3 WIDGET (vt: widget_show, used by the arr_* tables).

// scriptOps is the dispatch table of the script element.
var scriptOps = []struct {
	op      int32
	handler string
}{
	{0, "scr_create"},
	{1, "scr_setprop"},
	{2, "scr_invoke290"},
	{3, "scr_invoke295"},
	{4, "scr_gcfree"},
	{5, "scr_makestr"},
	{6, "scr_invoke312"},
	{7, "scr_freeclr"},
	{8, "scr_fresh"},
	{9, "scr_invoke269"},
	{10, "scr_invoke320"},
}

func emitScriptHandlers(a *asm.Assembler) {
	// Dispatcher: routes on the op byte; consumed size comes back from
	// the sub-handler (in EAX).
	a.Label("script_render")
	a.LoadB(isa.EAX, asm.M(isa.EBX, 1))
	for _, d := range scriptOps {
		a.CmpRI(isa.EAX, d.op)
		a.Jne("scrnot_" + d.handler)
		a.Call(d.handler)
		a.Ret()
		a.Label("scrnot_" + d.handler)
	}
	a.MovRI(isa.EAX, 4) // unknown op: consume the fixed header
	a.Ret()

	// loadObj is shared glue: EDX := objtable[idx&7]; idx from [EBX+2].
	// Emitted inline by each handler (copy-paste, as the original's
	// expanded templates would be).
	loadObj := func() {
		a.LoadB(isa.ECX, asm.M(isa.EBX, 2))
		a.AndRI(isa.ECX, 7)
		a.Load(isa.ESI, asm.M(isa.EBP, GlobObjTable))
		a.Load(isa.EDX, asm.MX(isa.ESI, isa.ECX, 2, 0))
	}
	storeObj := func(src isa.Reg) {
		a.LoadB(isa.ECX, asm.M(isa.EBX, 2))
		a.AndRI(isa.ECX, 7)
		a.Load(isa.ESI, asm.M(isa.EBP, GlobObjTable))
		a.Store(asm.MX(isa.ESI, isa.ECX, 2, 0), src)
	}

	// CREATE: allocate and initialize an object of the requested type.
	a.Label("scr_create")
	a.MovRI(isa.EAX, 16)
	a.Sys(isa.SysAlloc)
	a.MovRR(isa.EDI, isa.EAX)
	a.LoadB(isa.EDX, asm.M(isa.EBX, 3)) // type
	a.Store(asm.M(isa.EDI, 4), isa.EDX)
	a.CmpRI(isa.EDX, 1)
	a.Je("create_node")
	a.CmpRI(isa.EDX, 2)
	a.Je("create_list")
	// DOC: vtable doc_show, data = 'A'.
	a.MovLabel(isa.ECX, "doc_show")
	a.Store(asm.M(isa.EDI, 0), isa.ECX)
	a.MovRI(isa.ECX, 'A')
	a.Store(asm.M(isa.EDI, 8), isa.ECX)
	a.Jmp("create_done")
	a.Label("create_node")
	// NODE: vtable node_show, data = pointer to own aux word.
	a.MovLabel(isa.ECX, "node_show")
	a.Store(asm.M(isa.EDI, 0), isa.ECX)
	a.Lea(isa.ECX, asm.M(isa.EDI, 12))
	a.Store(asm.M(isa.EDI, 8), isa.ECX)
	a.MovRI(isa.ECX, 'N')
	a.Store(asm.M(isa.EDI, 12), isa.ECX)
	a.Jmp("create_done")
	a.Label("create_list")
	// LIST: vtable list_sum, data = pointer to [count=1]['L'] aux block.
	a.MovLabel(isa.ECX, "list_sum")
	a.Store(asm.M(isa.EDI, 0), isa.ECX)
	a.MovRI(isa.EAX, 8)
	a.Sys(isa.SysAlloc)
	a.Store(asm.M(isa.EDI, 8), isa.EAX)
	a.MovRI(isa.ECX, 1)
	a.Store(asm.M(isa.EAX, 0), isa.ECX)
	a.MovRI(isa.ECX, 'L')
	a.Store(asm.M(isa.EAX, 4), isa.ECX)
	a.Label("create_done")
	storeObj(isa.EDI)
	a.MovRI(isa.EAX, 4)
	a.Ret()

	// SETPROP: the unchecked property write (defects 290162/295854):
	// obj.word[field] = val with no check that field skips the vtable.
	a.Label("scr_setprop")
	loadObj()
	a.LoadB(isa.ECX, asm.M(isa.EBX, 3)) // field index, unchecked
	a.Load(isa.EDI, asm.M(isa.EBX, 4))  // value (page bytes, LE)
	a.Store(asm.MX(isa.EDX, isa.ECX, 2, 0), isa.EDI)
	a.MovRI(isa.EAX, 8)
	a.Ret()

	// INVOKE290 (site_290162): plain virtual dispatch; result unused.
	a.Label("scr_invoke290")
	loadObj()
	a.MovRR(isa.EDI, isa.EDX)
	a.Label("site_290162")
	a.CallM(asm.M(isa.EDX, 0))
	a.MovRI(isa.EAX, 4)
	a.Ret()

	// INVOKE295 (site_295854): clone of the above at its own site.
	a.Label("scr_invoke295")
	loadObj()
	a.MovRR(isa.EDI, isa.EDX)
	a.Label("site_295854")
	a.CallM(asm.M(isa.EDX, 0))
	a.MovRI(isa.EAX, 4)
	a.Ret()

	// GCFREE (defect 312278): frees the object's memory but leaves the
	// table slot pointing at it — the erroneous garbage collection.
	a.Label("scr_gcfree")
	loadObj()
	a.MovRR(isa.EAX, isa.EDX)
	a.Sys(isa.SysFree)
	a.MovRI(isa.EAX, 4)
	a.Ret()

	// MAKESTR: allocate a 16-byte string object filled from the page —
	// the reallocation vehicle the 312278/269095/320182 attacks use to
	// plant payloads in recycled blocks.
	a.Label("scr_makestr")
	a.MovRI(isa.EAX, 16)
	a.Sys(isa.SysAlloc)
	a.MovRR(isa.EDI, isa.EAX)
	a.Push(isa.EDI)
	a.Lea(isa.ESI, asm.M(isa.EBX, 4))
	a.MovRI(isa.ECX, 16)
	a.CopyB()
	a.Pop(isa.EDI)
	storeObj(isa.EDI)
	a.MovRI(isa.EAX, 20)
	a.Ret()

	// INVOKE312 (site_312278): dispatch through a possibly stale slot.
	a.Label("scr_invoke312")
	loadObj()
	a.MovRR(isa.EDI, isa.EDX)
	a.Label("site_312278")
	a.CallM(asm.M(isa.EDX, 0))
	a.MovRI(isa.EAX, 4)
	a.Ret()

	// FREECLR: the correct release path — free and clear the slot.
	a.Label("scr_freeclr")
	loadObj()
	a.MovRR(isa.EAX, isa.EDX)
	a.Sys(isa.SysFree)
	a.MovRI(isa.EDI, 0)
	storeObj(isa.EDI)
	a.MovRI(isa.EAX, 4)
	a.Ret()

	// FRESH (defects 269095/320182): allocates an object and stores it
	// WITHOUT initializing — correct only when the recycled block still
	// holds a previously valid object.
	a.Label("scr_fresh")
	a.MovRI(isa.EAX, 16)
	a.Sys(isa.SysAlloc)
	a.MovRR(isa.EDI, isa.EAX)
	storeObj(isa.EDI)
	a.MovRI(isa.EAX, 4)
	a.Ret()

	// INVOKE269 (site_269095): dispatch whose result (a data pointer) is
	// dereferenced afterwards — the reason the skip-call repair fails and
	// only return-from-procedure survives (§4.3.1, memory management
	// exploits).
	a.Label("scr_invoke269")
	loadObj()
	a.MovRR(isa.EDI, isa.EDX)
	a.Load(isa.EAX, asm.M(isa.EDX, 8)) // scratch: the object's data word
	a.Label("site_269095")
	a.CallM(asm.M(isa.EDX, 0))
	a.Load(isa.EBX, asm.M(isa.EAX, 0)) // use the returned pointer
	a.MovRI(isa.EAX, 4)
	a.Ret()

	// INVOKE320 (site_320182): copy-paste clone of INVOKE269.
	a.Label("scr_invoke320")
	loadObj()
	a.MovRR(isa.EDI, isa.EDX)
	a.Load(isa.EAX, asm.M(isa.EDX, 8))
	a.Label("site_320182")
	a.CallM(asm.M(isa.EDX, 0))
	a.Load(isa.EBX, asm.M(isa.EAX, 0))
	a.MovRI(isa.EAX, 4)
	a.Ret()

	// ---- virtual methods ----

	// doc_show(EDI=obj): write the data byte; touches only the object.
	a.Label("doc_show")
	a.Load(isa.ECX, asm.M(isa.EDI, 8))
	a.Push(isa.ECX)
	a.MovRR(isa.EAX, isa.ESP)
	a.MovRI(isa.ECX, 1)
	a.Sys(isa.SysWrite)
	a.Pop(isa.ECX)
	a.MovRR(isa.EAX, isa.EDI)
	a.Ret()

	// node_show(EDI=obj): dereference the data pointer (crashes when a
	// corrupted object carries a wild pointer — why set-value fails for
	// 295854).
	a.Label("node_show")
	a.Load(isa.ECX, asm.M(isa.EDI, 8))
	a.Load(isa.EDX, asm.M(isa.ECX, 0)) // the dereference
	a.Push(isa.EDX)
	a.MovRR(isa.EAX, isa.ESP)
	a.MovRI(isa.ECX, 1)
	a.Sys(isa.SysWrite)
	a.Pop(isa.EDX)
	a.MovRR(isa.EAX, isa.EDI)
	a.Ret()

	// list_sum(EDI=obj): walk the data block and return its pointer
	// (crashes on corrupted data — why set-value fails for 269095).
	a.Label("list_sum")
	a.Load(isa.ECX, asm.M(isa.EDI, 8))
	a.Load(isa.EDX, asm.M(isa.ECX, 0)) // count
	a.Load(isa.EDX, asm.M(isa.ECX, 4)) // first element
	a.Push(isa.ECX)
	a.Push(isa.EDX)
	a.MovRR(isa.EAX, isa.ESP)
	a.MovRI(isa.ECX, 1)
	a.Sys(isa.SysWrite)
	a.Pop(isa.EDX)
	a.Pop(isa.ECX)
	a.MovRR(isa.EAX, isa.ECX) // return the data pointer
	a.Ret()

	// widget_show(EDI=obj): write the widget datum byte.
	a.Label("widget_show")
	a.Load(isa.ECX, asm.M(isa.EDI, 8))
	a.Push(isa.ECX)
	a.MovRR(isa.EAX, isa.ESP)
	a.MovRI(isa.ECX, 1)
	a.Sys(isa.SysWrite)
	a.Pop(isa.ECX)
	a.MovRR(isa.EAX, isa.EDI)
	a.Ret()
}
