package sim

import (
	"fmt"
	"sort"

	"repro/internal/community"
	"repro/internal/obs"
)

// Report is a simulated campaign's outcome: the live soak's SoakReport
// — same fields, same meanings, so the differential oracle compares the
// two wholesale — plus simulator-side accounting.
type Report struct {
	community.SoakReport

	// Events is how many scheduler events fired.
	Events int `json:"sim_events"`
	// VirtualTime is the final virtual-clock reading, in abstract ticks.
	VirtualTime int64 `json:"sim_virtual_time"`
	// MemoHits counts executions answered from the execution memo;
	// MemoMisses counts memo-eligible executions that ran genuinely and
	// seeded an entry; GenuineRuns counts executions that were never
	// memo-eligible (failure recorders, learning assignments).
	MemoHits    int `json:"sim_memo_hits"`
	MemoMisses  int `json:"sim_memo_misses"`
	GenuineRuns int `json:"sim_genuine_runs"`
}

// Run simulates the soak campaign conf describes — the same validation,
// defaults, topology, round structure, churn schedule, adversary
// scripts, and stopping rule as community.RunSoak, producing an
// identical SoakReport — as a discrete-event simulation: no goroutine
// per node, no wall-clock sleeps, one scheduler walking modeled-node
// state machines that feed real Manager/Aggregator/RootGroup instances
// over loopback connections. The parallel soak shapes have no simulated
// analog (the simulator IS the serial schedule) and are rejected.
func Run(conf community.SoakConfig) (*Report, error) {
	if conf.ParallelMembers || conf.ParallelFlush {
		return nil, fmt.Errorf("sim: the simulator is serial-equivalent by construction; Parallel* soak shapes have no simulated analog")
	}
	if conf.Image == nil {
		return nil, fmt.Errorf("sim: soak needs an image")
	}
	if len(conf.Attacks) == 0 {
		return nil, fmt.Errorf("sim: soak needs at least one attack")
	}
	if conf.Nodes <= 0 {
		conf.Nodes = 100
	}
	if conf.Rounds <= 0 {
		conf.Rounds = 8
	}
	if conf.Recorders <= 0 {
		conf.Recorders = 1
	}
	if conf.Adversaries < 0 || conf.Adversaries >= conf.Nodes {
		return nil, fmt.Errorf("sim: %d adversaries need a larger community than %d", conf.Adversaries, conf.Nodes)
	}
	if conf.Adversaries > 0 {
		conf.VetReports = true
	}
	honest := conf.Nodes - conf.Adversaries
	if conf.Recorders > honest {
		conf.Recorders = honest
	}
	if conf.Aggregators < 0 || conf.Aggregators > conf.Nodes {
		return nil, fmt.Errorf("sim: aggregator count %d out of range", conf.Aggregators)
	}
	if conf.Churn != nil && conf.Churn.AggregatorCrashRound > 0 && conf.Aggregators < 2 {
		return nil, fmt.Errorf("sim: aggregator failover needs at least 2 aggregators")
	}
	if conf.Chaos != nil {
		if conf.Chaos.PartitionEvery > 0 && conf.Chaos.PartitionLen >= conf.Chaos.PartitionEvery {
			return nil, fmt.Errorf("sim: partition window %d must be shorter than its period %d",
				conf.Chaos.PartitionLen, conf.Chaos.PartitionEvery)
		}
		if conf.Obs == nil {
			conf.Obs = obs.New()
		}
	}
	if conf.Churn != nil && conf.Churn.RootCrashRound > 0 && conf.RootReplicas < 1 {
		return nil, fmt.Errorf("sim: root failover needs at least 1 root replica")
	}
	workers := conf.ReplayWorkers
	if workers == 0 {
		workers = -1
	}

	// Ground truth: which failure location each attack produces.
	defects := make([]community.SoakDefect, len(conf.Attacks))
	byPC := make(map[uint32]int, len(conf.Attacks))
	for i, atk := range conf.Attacks {
		pc, mon, err := community.ProbeFailurePC(conf.Image, atk.Input)
		if err != nil {
			return nil, fmt.Errorf("attack %s: %w", atk.Label, err)
		}
		if j, dup := byPC[pc]; dup {
			return nil, fmt.Errorf("attacks %s and %s share failure location %#x",
				conf.Attacks[j].Label, atk.Label, pc)
		}
		defects[i] = community.SoakDefect{Label: atk.Label, FailurePC: pc, Monitor: mon}
		byPC[pc] = i
	}

	aggIDs := make([]string, conf.Aggregators)
	for i := range aggIDs {
		aggIDs[i] = fmt.Sprintf("agg%02d", i)
	}
	tr := obs.NewTracer(conf.Obs)
	if conf.PprofLabels {
		tr = tr.WithPprofLabels()
	}
	mgrConf := community.ManagerConfig{
		Image:              conf.Image,
		Seed:               conf.Seed,
		BootstrapInputs:    conf.BootstrapInputs,
		StackScope:         conf.StackScope,
		CheckRuns:          conf.CheckRuns,
		Bonus:              conf.Bonus,
		ReplayWorkers:      workers,
		VetReports:         conf.VetReports,
		TrustedAggregators: aggIDs,
		Obs:                tr,
	}

	retry := conf.Retry
	if retry == nil && (conf.Chaos != nil ||
		(conf.Churn != nil && conf.Churn.RootCrashRound > 0)) {
		var seed int64
		if conf.Chaos != nil {
			seed = conf.Chaos.Seed
		}
		retry = community.DefaultRetry(seed)
	}

	rig := &simRig{
		conf:    conf,
		sched:   newScheduler(tr, conf.Obs),
		defects: defects,
		tr:      tr,
		reg:     conf.Obs,
		retry:   retry,
		memo:    newExecMemo(conf.Obs),
		report: &Report{SoakReport: community.SoakReport{
			Nodes:       conf.Nodes,
			Aggregators: conf.Aggregators,
			Batched:     conf.Batched,
		}},
		cTurns:      conf.Obs.Counter("sim.turns"),
		cDetections: conf.Obs.Counter("sim.detections"),
	}
	if conf.RootReplicas > 0 {
		root, err := community.NewRootGroup(mgrConf, conf.RootReplicas, conf.Obs)
		if err != nil {
			return nil, err
		}
		rig.root = root
	} else {
		mgr, err := community.NewManager(mgrConf)
		if err != nil {
			return nil, err
		}
		rig.mgr = mgr
	}
	defer func() {
		for _, m := range rig.members {
			_ = m.n.Close()
		}
		for i, a := range rig.aggs {
			if !rig.aggDead[i] {
				_ = a.Close()
			}
		}
		if rig.root != nil {
			_ = rig.root.Close()
		}
	}()

	// The aggregator tier.
	for i := 0; i < conf.Aggregators; i++ {
		upstream, err := rig.dialRoot()
		if err != nil {
			return nil, err
		}
		agg, err := community.NewAggregator(community.AggregatorConfig{
			ID:         aggIDs[i],
			Image:      conf.Image,
			Upstream:   upstream,
			FlushEvery: conf.FlushEvery,
			VetReports: conf.VetReports,
			Obs:        tr,
			Retry:      retry,
			Redial:     rig.dialRoot,
		})
		if err != nil {
			return nil, err
		}
		rig.aggs = append(rig.aggs, agg)
		rig.aggDead = append(rig.aggDead, false)
	}

	// The population: honest members first (the leading Recorders of
	// them capture failing runs), adversaries last — names, roles, and
	// attachment order exactly as RunSoak builds them.
	for i := 0; i < conf.Nodes; i++ {
		m := &simMember{agg: -1}
		if i < honest {
			m.n = community.NewNode(fmt.Sprintf("node%04d", i), conf.Image, nil)
			m.n.RecordFailures = i < conf.Recorders
		} else {
			adv := i - honest
			m.adversary = true
			m.forger = adv%2 == 1
			m.advIndex = adv
			m.n = community.NewNode(fmt.Sprintf("adv%03d", adv), conf.Image, nil)
		}
		m.n.Obs = tr
		rig.enlist(m)
		rig.members = append(rig.members, m)
		agg := -1
		if conf.Aggregators > 0 {
			agg = i % conf.Aggregators
		}
		if err := rig.attach(m, agg); err != nil {
			return nil, err
		}
	}

	rig.scheduleRound(1)
	if err := rig.sched.run(); err != nil {
		return nil, err
	}

	report := rig.report
	root := rig.rootMgr()
	report.Messages = root.Messages()
	report.Batches = root.Batches()
	report.ReplayRuns = root.ReplayRuns()
	quarantined := root.Quarantined()
	for id := range quarantined {
		report.Quarantined = append(report.Quarantined, id)
	}
	sort.Strings(report.Quarantined)
	for _, by := range root.Adoptions() {
		if _, q := quarantined[by]; q {
			report.QuarantinedAdoptions++
		}
	}
	if conf.Obs != nil {
		report.Retries = int(conf.Obs.Counter("node.retries").Value() + conf.Obs.Counter("agg.retries").Value())
		report.Reconnects = int(conf.Obs.Counter("node.reconnects").Value() + conf.Obs.Counter("agg.redials").Value())
		report.DroppedEnvelopes = int(conf.Obs.Counter("chaos.dropped").Value())
	}
	if rig.root != nil {
		report.ReplayLogEntries = rig.root.LogLen()
	}
	report.LearnInvariants = root.InvariantCount()
	report.Converged = true
	for i := range rig.defects {
		if !rig.defects[i].Converged {
			report.Converged = false
		}
	}
	report.Defects = rig.defects
	if conf.Obs != nil {
		snap := conf.Obs.Snapshot()
		report.Obs = &snap
	}
	report.Events = rig.sched.fired
	report.VirtualTime = rig.sched.now
	report.MemoHits = rig.memo.hits
	report.MemoMisses = rig.memo.misses
	report.GenuineRuns = rig.memo.genuine
	return report, nil
}
