// Command soak runs a large-N community soak: it simulates a community
// of node managers (default 100) sharing one central manager, presents
// every node with recurring Red Team attacks round after round, and
// reports convergence — how many presentations each defect needed before
// every node in the community held the same adopted repair — as a
// machine-readable table.
//
//	soak                          100 nodes, batched, default exploit set
//	soak -nodes 250 -batch=false  per-message messaging at larger N
//	soak -exploits 290162,312278  choose the attack set
//	soak -json                    emit the full report as JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/community"
	"repro/internal/redteam"
)

// defaultExploits are repairable at the default stack scope with the
// default learning corpus — every one must converge in a soak.
const defaultExploits = "269095,290162,295854,312278,320182"

func main() {
	nodes := flag.Int("nodes", 100, "community size")
	rounds := flag.Int("rounds", 8, "max rounds (the soak stops early on convergence)")
	exploits := flag.String("exploits", defaultExploits, "comma-separated Bugzilla ids to present")
	batch := flag.Bool("batch", true, "ship node activity as MsgBatch (false = one message per run)")
	recorders := flag.Int("recorders", 1, "how many nodes record failing runs")
	workers := flag.Int("workers", 0, "manager replay-farm workers (0 = all CPUs)")
	scope := flag.Int("scope", 1, "candidate stack scope")
	expanded := flag.Bool("expanded", false, "learn from the expanded corpus (§4.3.2)")
	asJSON := flag.Bool("json", false, "emit the report as JSON instead of a table")
	flag.Parse()

	if err := run(*nodes, *rounds, *exploits, *batch, *recorders, *workers, *scope, *expanded, *asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "soak:", err)
		os.Exit(1)
	}
}

func run(nodes, rounds int, exploits string, batch bool, recorders, workers, scope int, expanded, asJSON bool) error {
	fmt.Fprintf(os.Stderr, "building webapp and learning invariants (expanded corpus: %v)...\n", expanded)
	setup, err := redteam.NewSetup(expanded)
	if err != nil {
		return err
	}

	byID := map[string]redteam.Exploit{}
	for _, ex := range redteam.Exploits() {
		byID[ex.Bugzilla] = ex
	}
	var attacks []community.SoakAttack
	for _, id := range strings.Split(exploits, ",") {
		id = strings.TrimSpace(id)
		ex, ok := byID[id]
		if !ok {
			return fmt.Errorf("unknown exploit %q", id)
		}
		attacks = append(attacks, community.SoakAttack{
			Label: ex.Bugzilla,
			Input: redteam.AttackInput(setup.App, ex, 0),
		})
	}

	conf := community.SoakConfig{
		Image:           setup.App.Image,
		Seed:            setup.DB,
		BootstrapInputs: [][]byte{redteam.LearningCorpus()},
		Nodes:           nodes,
		Rounds:          rounds,
		Attacks:         attacks,
		Benign:          redteam.EvaluationPages()[:5],
		Batched:         batch,
		Recorders:       recorders,
		ReplayWorkers:   workers,
		StackScope:      scope,
	}

	fmt.Fprintf(os.Stderr, "soaking %d nodes x %d attacks (batched: %v)...\n", nodes, len(attacks), batch)
	start := time.Now()
	rep, err := community.RunSoak(conf)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
		if !rep.Converged {
			return fmt.Errorf("community did not converge within %d rounds", rounds)
		}
		return nil
	}

	// The machine-readable table: one TSV row per defect plus a summary.
	fmt.Printf("defect\tfailure_pc\tmonitor\tadopted_repair\trounds\tagree\tconverged\n")
	for _, d := range rep.Defects {
		fmt.Printf("%s\t%#x\t%s\t%s\t%d\t%d/%d\t%v\n",
			d.Label, d.FailurePC, d.Monitor, d.Adopted, d.Rounds, d.Agree, rep.Nodes, d.Converged)
	}
	fmt.Printf("\nnodes=%d rounds=%d batched=%v messages=%d batches=%d replay_runs=%d converged=%v elapsed=%v\n",
		rep.Nodes, rep.RoundsRun, rep.Batched, rep.Messages, rep.Batches, rep.ReplayRuns,
		rep.Converged, elapsed.Round(time.Millisecond))
	if !rep.Converged {
		return fmt.Errorf("community did not converge within %d rounds", rounds)
	}
	return nil
}
