package community

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/redteam"
	"repro/internal/vm"
	"repro/internal/webapp"
)

// startManager spins up a manager with in-process connections for n nodes.
func startManager(t *testing.T, conf ManagerConfig, nodeIDs []string) (*Manager, []*Node) {
	t.Helper()
	m, err := NewManager(conf)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*Node, len(nodeIDs))
	for i, id := range nodeIDs {
		nodeSide, mgrSide := Pipe()
		go func() { _ = m.Serve(mgrSide) }()
		nodes[i] = NewNode(id, conf.Image, nodeSide)
		if err := nodes[i].Connect(); err != nil {
			t.Fatal(err)
		}
	}
	return m, nodes
}

// redTeamManagerConfig is the exercise setup: pre-learned seed DB and the
// CFG bootstrap from the learning corpus.
func redTeamManagerConfig(t *testing.T, app *webapp.App) ManagerConfig {
	t.Helper()
	db, _, err := core.Learn(app.Image, core.LearnConfig{
		Inputs: [][]byte{redteam.LearningCorpus()},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ManagerConfig{
		Image:           app.Image,
		Seed:            db,
		BootstrapInputs: [][]byte{redteam.LearningCorpus()},
		StackScope:      1,
	}
}

func exploitByID(t *testing.T, id string) redteam.Exploit {
	t.Helper()
	for _, ex := range redteam.AllExploits() {
		if ex.Bugzilla == id {
			return ex
		}
	}
	t.Fatalf("unknown exploit %s", id)
	return redteam.Exploit{}
}

func TestProtectionWithoutExposure(t *testing.T) {
	// §3: after some members are attacked and a patch is found, the patch
	// is distributed to the whole community; members never exposed to the
	// attack are immune on first contact.
	app := webapp.MustBuild()
	m, nodes := startManager(t, redTeamManagerConfig(t, app), []string{"victim", "fresh"})
	victim, fresh := nodes[0], nodes[1]
	ex := exploitByID(t, "290162")
	attack := redteam.AttackInput(app, ex, 0)

	// The victim absorbs the attack until the community has a patch.
	patched := false
	for i := 0; i < 10 && !patched; i++ {
		res, err := victim.RunOnce(attack)
		if err != nil {
			t.Fatal(err)
		}
		patched = res.Outcome == vm.OutcomeExit && res.ExitCode == 0
	}
	if !patched {
		t.Fatal("victim never protected")
	}
	if st := m.CaseStates()[app.Labels["site_290162"]]; st != core.StatePatched {
		t.Fatalf("manager case state = %v", st)
	}

	// The fresh node must sync directives (it reports a benign run) and
	// then survive its FIRST exposure to the attack.
	if _, err := fresh.RunOnce(redteam.EvaluationPages()[0]); err != nil {
		t.Fatal(err)
	}
	if len(fresh.Directives().Repairs) == 0 {
		t.Fatal("patch not distributed to the unexposed node")
	}
	res, err := fresh.RunOnce(attack)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != vm.OutcomeExit || res.ExitCode != 0 {
		t.Fatalf("unexposed node not immune: %+v", res)
	}
}

func TestCommunityFindsPatchAcrossMembers(t *testing.T) {
	// The attack presentations land on DIFFERENT members; the manager
	// still assembles the detection, checking, and evaluation phases from
	// the distributed reports.
	app := webapp.MustBuild()
	_, nodes := startManager(t, redTeamManagerConfig(t, app), []string{"n1", "n2", "n3"})
	ex := exploitByID(t, "296134")
	attack := redteam.AttackInput(app, ex, 0)

	var last vm.RunResult
	for i := 0; i < 8; i++ {
		res, err := nodes[i%len(nodes)].RunOnce(attack)
		if err != nil {
			t.Fatal(err)
		}
		last = res
		if res.Outcome == vm.OutcomeExit && res.ExitCode == 0 {
			if i+1 != 4 {
				t.Errorf("community patched after %d presentations, want 4", i+1)
			}
			return
		}
	}
	t.Fatalf("community never patched: %+v", last)
}

func TestAmortizedDistributedLearning(t *testing.T) {
	// §3.1: each member traces a slice of the application; the merged
	// community database contains invariants a single member's slice
	// could not produce, and the merge is sound (no member's data
	// contradicts it).
	app := webapp.MustBuild()
	conf := ManagerConfig{
		Image:           app.Image,
		BootstrapInputs: [][]byte{redteam.LearningCorpus()},
		LearnShards:     4,
	}
	m, nodes := startManager(t, conf, []string{"a", "b", "c", "d"})
	corpus := redteam.LearningCorpus()
	for _, n := range nodes {
		if n.Directives().LearnHi == n.Directives().LearnLo {
			t.Fatal("node has no learning assignment")
		}
		if _, err := n.RunOnce(corpus); err != nil {
			t.Fatal(err)
		}
		if err := n.UploadLearning(); err != nil {
			t.Fatal(err)
		}
	}
	if m.Uploads() != 4 {
		t.Fatalf("uploads = %d", m.Uploads())
	}
	merged := m.InvariantCount()
	if merged == 0 {
		t.Fatal("no invariants learned")
	}
	// Distinct shards: different nodes contributed different regions.
	lo0 := nodes[0].Directives().LearnLo
	lo1 := nodes[1].Directives().LearnLo
	if lo0 == lo1 {
		t.Error("two nodes got the same learning shard")
	}
}

func TestDistributedLearningProtects(t *testing.T) {
	// End to end: a community that learned its database in shards can
	// still patch an exploit (the shard covering the vulnerable code
	// supplies the correlated invariant).
	app := webapp.MustBuild()
	conf := ManagerConfig{
		Image:           app.Image,
		BootstrapInputs: [][]byte{redteam.LearningCorpus()},
		LearnShards:     3,
	}
	_, nodes := startManager(t, conf, []string{"a", "b", "c"})
	corpus := redteam.LearningCorpus()
	// Several learning rounds per node to cover the corpus in each shard.
	for round := 0; round < 2; round++ {
		for _, n := range nodes {
			if _, err := n.RunOnce(corpus); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, n := range nodes {
		if err := n.UploadLearning(); err != nil {
			t.Fatal(err)
		}
	}
	ex := exploitByID(t, "296134")
	attack := redteam.AttackInput(app, ex, 0)
	for i := 0; i < 10; i++ {
		res, err := nodes[0].RunOnce(attack)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome == vm.OutcomeExit && res.ExitCode == 0 {
			return
		}
	}
	t.Fatal("sharded-learning community never patched")
}

func TestConcurrentFailuresKeptSeparate(t *testing.T) {
	// §3.2 "Multiple Concurrent Failures": different members hit
	// different failures at the same time; all bookkeeping is keyed by
	// failure location, so both campaigns succeed.
	app := webapp.MustBuild()
	_, nodes := startManager(t, redTeamManagerConfig(t, app), []string{"x", "y"})
	exA := exploitByID(t, "290162")
	exB := exploitByID(t, "296134")
	attackA := redteam.AttackInput(app, exA, 0)
	attackB := redteam.AttackInput(app, exB, 0)

	patchedA, patchedB := false, false
	for i := 0; i < 10 && !(patchedA && patchedB); i++ {
		resA, err := nodes[0].RunOnce(attackA)
		if err != nil {
			t.Fatal(err)
		}
		resB, err := nodes[1].RunOnce(attackB)
		if err != nil {
			t.Fatal(err)
		}
		patchedA = patchedA || (resA.Outcome == vm.OutcomeExit && resA.ExitCode == 0)
		patchedB = patchedB || (resB.Outcome == vm.OutcomeExit && resB.ExitCode == 0)
	}
	if !patchedA || !patchedB {
		t.Fatalf("concurrent campaigns: A=%v B=%v", patchedA, patchedB)
	}
}

func TestTCPTransport(t *testing.T) {
	// The same protocol over real TCP: protection without exposure with
	// the manager behind a listener.
	app := webapp.MustBuild()
	m, err := NewManager(redTeamManagerConfig(t, app))
	if err != nil {
		t.Fatal(err)
	}
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var wg sync.WaitGroup
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() { defer wg.Done(); _ = m.Serve(c) }()
		}
	}()

	dial := func(id string) *Node {
		conn, err := Dial(l.Addr())
		if err != nil {
			t.Fatal(err)
		}
		n := NewNode(id, app.Image, conn)
		if err := n.Connect(); err != nil {
			t.Fatal(err)
		}
		return n
	}
	victim := dial("victim")
	fresh := dial("fresh")
	defer victim.Close()
	defer fresh.Close()

	ex := exploitByID(t, "312278")
	attack := redteam.AttackInput(app, ex, 0)
	patched := false
	for i := 0; i < 10 && !patched; i++ {
		res, err := victim.RunOnce(attack)
		if err != nil {
			t.Fatal(err)
		}
		patched = res.Outcome == vm.OutcomeExit && res.ExitCode == 0
	}
	if !patched {
		t.Fatal("victim never protected over TCP")
	}
	if _, err := fresh.RunOnce(redteam.EvaluationPages()[3]); err != nil {
		t.Fatal(err)
	}
	res, err := fresh.RunOnce(attack)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != vm.OutcomeExit || res.ExitCode != 0 {
		t.Fatalf("unexposed TCP node not immune: %+v", res)
	}
}

func TestPipeCloseUnblocks(t *testing.T) {
	a, b := Pipe()
	done := make(chan error, 1)
	go func() {
		_, err := b.Recv()
		done <- err
	}()
	_ = a.Close()
	if err := <-done; err == nil {
		t.Fatal("recv on closed pipe returned nil error")
	}
}
