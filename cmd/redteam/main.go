// Command redteam drives individual attack campaigns against the
// protected application:
//
//	redteam -exploit 290162                    single-variant attack (§4.3.1)
//	redteam -exploit 290162 -mode variants     interleaved variants (§4.3.4)
//	redteam -mode simultaneous                 interleaved exploits (§4.3.5)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/obs"
	"repro/internal/redteam"
)

func main() {
	exploitID := flag.String("exploit", "", "Bugzilla id of the exploit to run (empty = all)")
	mode := flag.String("mode", "single", "single | variants | simultaneous")
	max := flag.Int("max", 24, "maximum presentations")
	profile := flag.Bool("profile", false, "trace pipeline stages and print the per-stage wall/on-CPU/blocked table")
	flag.Parse()

	if err := run(*exploitID, *mode, *max, *profile); err != nil {
		fmt.Fprintln(os.Stderr, "redteam:", err)
		os.Exit(1)
	}
}

func run(exploitID, mode string, max int, profile bool) error {
	var reg *obs.Registry
	var tr *obs.Tracer
	if profile {
		reg = obs.New()
		tr = obs.NewTracer(reg).WithPprofLabels()
		defer func() {
			snap := reg.Snapshot()
			fmt.Printf("\n%s", obs.FormatStageTable(&snap))
		}()
	}
	exploits := redteam.AllExploits()
	selected := exploits
	if exploitID != "" {
		selected = nil
		for _, ex := range exploits {
			if ex.Bugzilla == exploitID {
				selected = []redteam.Exploit{ex}
			}
		}
		if selected == nil {
			return fmt.Errorf("unknown exploit %q", exploitID)
		}
	}

	if mode == "simultaneous" {
		setup, err := redteam.NewSetup(false)
		if err != nil {
			return err
		}
		setup.Obs = tr
		cv, err := setup.ClearView(1)
		if err != nil {
			return err
		}
		var sim []redteam.Exploit
		for _, ex := range selected {
			if ex.Repairable && !ex.NeedsExpandedCorpus && ex.NeedsStackScope <= 1 {
				sim = append(sim, ex)
			}
		}
		results := redteam.RunSimultaneous(cv, setup.App, sim, max)
		ids := make([]string, 0, len(results))
		for id := range results {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Println("Simultaneous multiple-exploit attack (§4.3.5):")
		for _, id := range ids {
			r := results[id]
			fmt.Printf("  %s: patched=%v after %d of its own presentations\n",
				id, r.Patched, r.Presentations)
		}
		return nil
	}

	for _, ex := range selected {
		setup, err := redteam.NewSetup(ex.NeedsExpandedCorpus)
		if err != nil {
			return err
		}
		setup.Obs = tr
		cv, err := setup.ClearView(ex.NeedsStackScope)
		if err != nil {
			return err
		}
		var res redteam.AttackResult
		switch mode {
		case "single":
			res = redteam.RunSingleVariant(cv, setup.App, ex, max)
		case "variants":
			res = redteam.RunMultiVariant(cv, setup.App, ex, max)
		default:
			return fmt.Errorf("unknown mode %q", mode)
		}
		status := "blocked but not patched"
		if res.Patched {
			status = fmt.Sprintf("patched after %d presentations", res.Presentations)
		}
		fmt.Printf("%s (%s): %s (unsuccessful repair runs: %d)\n",
			ex.Bugzilla, ex.ErrorType, status, res.Unsuccessful)
	}
	return nil
}
