package vm

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
)

// loopProgram builds a two-block loop: "loop" body block and a counter
// decrement block, so the loop→body edge is dispatched through a
// successor link after the first iteration.
func loopProgram(t testing.TB, iters int32) (*VM, map[string]uint32) {
	im, labels := buildImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.MovRI(isa.EBX, iters)
		a.Label("loop")
		a.AddRI(isa.EAX, 1)
		a.Jmp("dec") // separate block so loop→dec→loop uses links
		a.Label("dec")
		a.SubRI(isa.EBX, 1)
		a.CmpRI(isa.EBX, 0)
		a.Jne("loop")
		a.MovRI(isa.EAX, 0)
		a.Sys(isa.SysExit)
	})
	v, err := New(Config{Image: im})
	if err != nil {
		t.Fatal(err)
	}
	return v, labels
}

// TestApplyPatchInvalidatesLinks: a patch applied mid-run (from a hook in
// another block) must take effect on the very next execution of the
// patched block, even though the dispatcher reached that block through a
// cached successor link on every prior iteration.
func TestApplyPatchInvalidatesLinks(t *testing.T) {
	v, labels := loopProgram(t, 10)
	decHits := 0
	var applied bool
	if err := v.ApplyPatch(&Patch{
		ID:   "arm",
		Addr: labels["loop"],
		Prio: PrioTrace,
		Hook: func(ctx *Ctx) error {
			if ctx.Reg(isa.EAX) == 4 && !applied {
				applied = true
				return ctx.VM.ApplyPatch(&Patch{
					ID:   "probe",
					Addr: labels["dec"],
					Prio: PrioTrace,
					Hook: func(*Ctx) error { decHits++; return nil },
				})
			}
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	res := v.Run()
	if res.Outcome != OutcomeExit || res.ExitCode != 0 {
		t.Fatalf("res = %+v", res)
	}
	// The loop hook observes EAX before the increment, so EAX==4 on
	// iteration 5; the dec block has already run 4 times unpatched and
	// been linked. Iterations 5..10 must see the probe: 6 hits. A stale
	// link would keep running the old uninstrumented block.
	if decHits != 6 {
		t.Fatalf("probe hook ran %d times, want 6 (stale successor link?)", decHits)
	}
}

// TestRemovePatchInvalidatesLinks: removing a patch mid-run must stop its
// hook from firing even though the patched block is reached via links.
func TestRemovePatchInvalidatesLinks(t *testing.T) {
	v, labels := loopProgram(t, 10)
	decHits := 0
	if err := v.ApplyPatch(&Patch{
		ID: "probe", Addr: labels["dec"], Prio: PrioTrace,
		Hook: func(*Ctx) error { decHits++; return nil },
	}); err != nil {
		t.Fatal(err)
	}
	removed := false
	if err := v.ApplyPatch(&Patch{
		ID: "disarm", Addr: labels["loop"], Prio: PrioTrace,
		Hook: func(ctx *Ctx) error {
			if ctx.Reg(isa.EAX) == 4 && !removed {
				removed = true
				ctx.VM.RemovePatch("probe")
			}
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	res := v.Run()
	if res.Outcome != OutcomeExit || res.ExitCode != 0 {
		t.Fatalf("res = %+v", res)
	}
	// The probe fires on iterations 1..4; the removal happens on
	// iteration 5's loop hook (EAX==4 pre-increment), before that
	// iteration's dec block: 4 hits.
	if decHits != 4 {
		t.Fatalf("probe hook ran %d times, want 4 (stale successor link kept old block?)", decHits)
	}
}

// TestLinkRefreshAfterGenBump: after a cache-generation bump, re-dispatching
// a successor whose pc already occupies a link slot (with a stale gen) must
// refresh that slot in place. Claiming the round-robin slot instead would
// duplicate one successor across both slots and evict the other live target,
// thrashing the link cache on every two-successor block after each patch.
func TestLinkRefreshAfterGenBump(t *testing.T) {
	im, labels := buildImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.CmpRI(isa.EAX, 0)
		a.Je("even")
		a.Label("odd")
		a.AddRI(isa.ESI, 1)
		a.Jmp("join")
		a.Label("even")
		a.AddRI(isa.EDI, 1)
		a.Jmp("join")
		a.Label("join")
		a.MovRI(isa.EAX, 0)
		a.Sys(isa.SysExit)
	})
	v, err := New(Config{Image: im, TraceThreshold: TraceDisabled})
	if err != nil {
		t.Fatal(err)
	}
	head, err := v.fetchBlock(labels["main"])
	if err != nil {
		t.Fatal(err)
	}
	// Warm both slots: head→odd and head→even.
	if _, err := v.dispatch(head, labels["odd"]); err != nil {
		t.Fatal(err)
	}
	if _, err := v.dispatch(head, labels["even"]); err != nil {
		t.Fatal(err)
	}
	slots := func() map[uint32]bool {
		m := map[uint32]bool{}
		for _, l := range head.links {
			if l.b != nil {
				m[l.pc] = true
			}
		}
		return m
	}
	if s := slots(); !s[labels["odd"]] || !s[labels["even"]] {
		t.Fatalf("warmup did not fill both slots: %v", s)
	}
	// A patch on an unrelated cached block bumps the generation, orphaning
	// both links without changing their pcs.
	if err := v.ApplyPatch(&Patch{ID: "bump", Addr: labels["join"], Prio: PrioTrace,
		Hook: func(*Ctx) error { return nil }}); err != nil {
		t.Fatal(err)
	}
	// Re-dispatch each successor several times, alternating. With in-place
	// refresh the two slots settle immediately; with blind round-robin
	// claiming, each dispatch evicts the other successor and at least one
	// later dispatch misses the link cache again.
	for pass := 0; pass < 3; pass++ {
		if _, err := v.dispatch(head, labels["odd"]); err != nil {
			t.Fatal(err)
		}
		if _, err := v.dispatch(head, labels["even"]); err != nil {
			t.Fatal(err)
		}
		s := slots()
		if !s[labels["odd"]] || !s[labels["even"]] {
			t.Fatalf("pass %d: link slots thrashed after gen bump: %v", pass, s)
		}
	}
	for i, l := range head.links {
		if l.b != nil && l.gen != v.cacheGen {
			t.Fatalf("slot %d still stale after re-dispatch: gen %d, want %d", i, l.gen, v.cacheGen)
		}
	}
}

// TestCoverageCountsLinkedDispatch: edge coverage is recorded at the
// dispatch point, so hit counts must reflect every block entry — linked
// fast dispatches included — or fuzz fingerprints would change with the
// optimization.
func TestCoverageCountsLinkedDispatch(t *testing.T) {
	const iters = 25
	cov := NewCoverage()
	im, labels := buildImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.MovRI(isa.EBX, iters)
		a.Label("loop")
		a.AddRI(isa.EAX, 1)
		a.Jmp("dec")
		a.Label("dec")
		a.SubRI(isa.EBX, 1)
		a.CmpRI(isa.EBX, 0)
		a.Jne("loop")
		a.MovRI(isa.EAX, 0)
		a.Sys(isa.SysExit)
	})
	v, err := New(Config{Image: im, Coverage: cov})
	if err != nil {
		t.Fatal(err)
	}
	if res := v.Run(); res.Outcome != OutcomeExit {
		t.Fatalf("res = %+v", res)
	}
	// Iteration 1 enters dec from the entry block (whose start is main,
	// not loop — labels do not end blocks); iterations 2..25 re-enter it
	// from the block starting at loop, through the successor link.
	if got := cov.Hits(Edge{From: labels["main"], To: labels["dec"]}); got != 1 {
		t.Fatalf("main→dec edge hits = %d, want 1", got)
	}
	if got := cov.Hits(Edge{From: labels["loop"], To: labels["dec"]}); got != iters-1 {
		t.Fatalf("loop→dec edge hits = %d, want %d (linked dispatch skipped coverage?)", got, iters-1)
	}
	if got := cov.Hits(Edge{From: labels["dec"], To: labels["loop"]}); got != iters-1 {
		t.Fatalf("dec→loop edge hits = %d, want %d", got, iters-1)
	}
}

// TestCoverageHashStableAcrossRuns: the fingerprint the fuzzer depends on
// must be bit-for-bit reproducible under the linked dispatcher.
func TestCoverageHashStableAcrossRuns(t *testing.T) {
	run := func() uint64 {
		cov := NewCoverage()
		v, _ := loopProgramWithCoverage(t, 50, cov)
		if res := v.Run(); res.Outcome != OutcomeExit {
			t.Fatalf("res = %+v", res)
		}
		return cov.Hash()
	}
	h1, h2 := run(), run()
	if h1 != h2 {
		t.Fatalf("coverage hash not reproducible: %#x vs %#x", h1, h2)
	}
}

func loopProgramWithCoverage(t testing.TB, iters int32, cov *Coverage) (*VM, map[string]uint32) {
	im, labels := buildImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.MovRI(isa.EBX, iters)
		a.Label("loop")
		a.AddRI(isa.EAX, 1)
		a.SubRI(isa.EBX, 1)
		a.CmpRI(isa.EBX, 0)
		a.Jne("loop")
		a.MovRI(isa.EAX, 0)
		a.Sys(isa.SysExit)
	})
	v, err := New(Config{Image: im, Coverage: cov})
	if err != nil {
		t.Fatal(err)
	}
	return v, labels
}

// TestHotLoopZeroAllocs proves the unhooked fast path allocates nothing
// per instruction: two identical machines differing only in trip count
// (1k vs 101k loop iterations) must allocate the same, modulo a small
// constant slack for runtime noise.
func TestHotLoopZeroAllocs(t *testing.T) {
	measure := func(trips uint64) uint64 {
		im := buildHotImage(t)
		v, err := New(Config{Image: im, Input: tripInput(trips), MaxSteps: 1 << 62})
		if err != nil {
			t.Fatal(err)
		}
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		res := v.Run()
		runtime.ReadMemStats(&after)
		if res.Outcome != OutcomeExit || res.ExitCode != 0 {
			t.Fatalf("res = %+v", res)
		}
		return after.Mallocs - before.Mallocs
	}
	small := measure(1_000)
	big := measure(101_000)
	if big > small+16 {
		t.Fatalf("100k extra loop iterations allocated %d extra objects; hot path is not allocation-free", big-small)
	}
}

// TestCopyBMatchesByteOracle drives copyBlock over randomized cases —
// overlapping copies in both directions, page-boundary straddles,
// COW-shared pages, unmapped holes, and step-limit interruptions — and
// compares the complete machine-visible outcome (memory, registers, step
// counter, error) against a byte-at-a-time reference.
func TestCopyBMatchesByteOracle(t *testing.T) {
	const base, span = 0x10000, 6 * mem.PageSize
	rng := rand.New(rand.NewSource(7))

	type outcome struct {
		errStr        string
		esi, edi, ecx uint32
		steps         uint64
		mem           []byte
	}

	runCase := func(bytewise bool, seedMem *mem.Memory, src, dst, cnt uint32, maxSteps uint64) outcome {
		v := &VM{Mem: seedMem.Clone(), maxSteps: maxSteps}
		v.CPU.Regs[isa.ESI] = src
		v.CPU.Regs[isa.EDI] = dst
		v.CPU.Regs[isa.ECX] = cnt
		var err error
		if bytewise {
			err = v.copyBlockByteOracle()
		} else {
			err = v.copyBlock()
		}
		o := outcome{
			esi: v.CPU.Regs[isa.ESI], edi: v.CPU.Regs[isa.EDI], ecx: v.CPU.Regs[isa.ECX],
			steps: v.steps,
		}
		if err != nil {
			o.errStr = err.Error()
		}
		o.mem, _ = v.Mem.ReadBytes(base, span)
		return o
	}

	for trial := 0; trial < 300; trial++ {
		seed := mem.New()
		seed.Map(base, 2*mem.PageSize)
		seed.Map(base+3*mem.PageSize, 3*mem.PageSize) // hole at pages 2
		buf := make([]byte, span)
		rng.Read(buf)
		_ = seed.WriteBytes(base, buf[:2*mem.PageSize])
		_ = seed.WriteBytes(base+3*mem.PageSize, buf[3*mem.PageSize:])
		if trial%3 == 0 {
			// Exercise COW interactions: share every page with a clone.
			_ = seed.Clone()
		}

		src := base + uint32(rng.Intn(span))
		var dst uint32
		switch rng.Intn(4) {
		case 0:
			dst = src + uint32(rng.Intn(32)) // tight upward overlap → replication
		case 1:
			dst = src - uint32(rng.Intn(32)) // downward overlap
		default:
			dst = base + uint32(rng.Intn(span))
		}
		cnt := uint32(rng.Intn(3 * mem.PageSize))
		maxSteps := uint64(1 << 40)
		if rng.Intn(3) == 0 {
			maxSteps = uint64(rng.Intn(int(cnt) + 2)) // interrupt mid-copy
		}

		got := runCase(false, seed, src, dst, cnt, maxSteps)
		want := runCase(true, seed, src, dst, cnt, maxSteps)
		if got.errStr != want.errStr || got.esi != want.esi || got.edi != want.edi ||
			got.ecx != want.ecx || got.steps != want.steps {
			t.Fatalf("trial %d (src=%#x dst=%#x cnt=%d max=%d):\n got %+v\nwant %+v",
				trial, src, dst, cnt, maxSteps,
				fmt.Sprintf("err=%q esi=%#x edi=%#x ecx=%d steps=%d", got.errStr, got.esi, got.edi, got.ecx, got.steps),
				fmt.Sprintf("err=%q esi=%#x edi=%#x ecx=%d steps=%d", want.errStr, want.esi, want.edi, want.ecx, want.steps))
		}
		for i := range got.mem {
			if got.mem[i] != want.mem[i] {
				t.Fatalf("trial %d: memory diverged at %#x: got %#x want %#x",
					trial, base+uint32(i), got.mem[i], want.mem[i])
			}
		}
	}
}

// copyBlockByteOracle is the original byte-at-a-time COPYB loop, kept as
// the semantic reference for the page-run implementation.
func (v *VM) copyBlockByteOracle() error {
	regs := &v.CPU.Regs
	for regs[isa.ECX] != 0 {
		if v.steps >= v.maxSteps {
			return fmt.Errorf("step limit exceeded during block copy")
		}
		v.steps++
		b, err := v.Mem.Read8(regs[isa.ESI])
		if err != nil {
			return err
		}
		if err := v.Mem.Write8(regs[isa.EDI], b); err != nil {
			return err
		}
		regs[isa.ESI]++
		regs[isa.EDI]++
		regs[isa.ECX]--
	}
	return nil
}

// TestCopyBReplicationPattern pins the rep-movsb pattern-fill behavior:
// copying with dst = src+1 replicates the first byte.
func TestCopyBReplicationPattern(t *testing.T) {
	m := mem.New()
	m.Map(0x1000, mem.PageSize)
	if err := m.WriteBytes(0x1000, []byte("Xabcdefghij")); err != nil {
		t.Fatal(err)
	}
	v := &VM{Mem: m, maxSteps: 1 << 30}
	v.CPU.Regs[isa.ESI] = 0x1000
	v.CPU.Regs[isa.EDI] = 0x1001
	v.CPU.Regs[isa.ECX] = 10
	if err := v.copyBlock(); err != nil {
		t.Fatal(err)
	}
	got, _ := m.ReadBytes(0x1000, 11)
	if string(got) != "XXXXXXXXXXX" {
		t.Fatalf("overlap copy = %q, want pattern fill", got)
	}
	if v.steps != 10 {
		t.Fatalf("steps = %d, want 10", v.steps)
	}
}
