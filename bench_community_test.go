package repro_test

import (
	"testing"

	"repro/internal/community"
	"repro/internal/redteam"
)

// benchManager bundles a community manager with a node factory over the
// in-process transport for BenchmarkCommunityProtection.
type benchManager struct {
	m   *community.Manager
	app *redteam.Setup
}

func newBenchManager(setup *redteam.Setup) (*benchManager, error) {
	m, err := community.NewManager(community.ManagerConfig{
		Image:           setup.App.Image,
		Seed:            setup.DB,
		BootstrapInputs: [][]byte{redteam.LearningCorpus()},
	})
	if err != nil {
		return nil, err
	}
	return &benchManager{m: m, app: setup}, nil
}

func (bm *benchManager) node(id string) *community.Node {
	nodeSide, mgrSide := community.Pipe()
	go func() { _ = bm.m.Serve(mgrSide) }()
	n := community.NewNode(id, bm.app.App.Image, nodeSide)
	if err := n.Connect(); err != nil {
		panic(err)
	}
	return n
}

// BenchmarkCommunitySoak compares the community shipping topologies on an
// identical soak at equal node count: per-message (a sync and a report
// per run, plus recording uploads), batched flat (one MsgBatch per node
// per round straight to the manager), and hierarchical (nodes behind an
// aggregator tier; one compacted MsgBatch per aggregator per round
// upstream). The msgs metric is the central-manager envelope count the
// batching protocol and the aggregator tier exist to amortize; every mode
// must converge on every defect, and hierarchical must come in at least
// 5x under flat batched.
func BenchmarkCommunitySoak(b *testing.B) {
	setup, _ := sharedSetups(b)
	attacks := func() []community.SoakAttack {
		var out []community.SoakAttack
		for _, id := range []string{"290162", "312278"} {
			out = append(out, community.SoakAttack{
				Label: id, Input: redteam.AttackInput(setup.App, exploit(b, id), 0),
			})
		}
		return out
	}()
	msgsByMode := map[string]float64{}
	for _, mode := range []struct {
		name        string
		batched     bool
		aggregators int
	}{{"per-message", false, 0}, {"batched", true, 0}, {"hierarchical", true, 3}} {
		b.Run(mode.name, func(b *testing.B) {
			var msgs, replays float64
			for i := 0; i < b.N; i++ {
				rep, err := community.RunSoak(community.SoakConfig{
					Image:           setup.App.Image,
					Seed:            setup.DB,
					BootstrapInputs: [][]byte{redteam.LearningCorpus()},
					Nodes:           12,
					Rounds:          6,
					Attacks:         attacks,
					Benign:          redteam.EvaluationPages()[:2],
					Batched:         mode.batched,
					Aggregators:     mode.aggregators,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Converged {
					b.Fatalf("soak did not converge: %+v", rep)
				}
				msgs = float64(rep.Messages)
				replays = float64(rep.ReplayRuns)
			}
			msgsByMode[mode.name] = msgs
			b.ReportMetric(msgs, "msgs")
			b.ReportMetric(replays, "replays")
		})
	}
	// Both entries are zero when -bench filters to a single sub-benchmark;
	// only compare when both modes actually ran.
	if flat, hier := msgsByMode["batched"], msgsByMode["hierarchical"]; flat > 0 && hier > 0 && flat/hier < 5 {
		b.Fatalf("hierarchy reduced manager envelopes only %.1fx (%v flat vs %v hierarchical), want >=5x",
			flat/hier, flat, hier)
	}
}
