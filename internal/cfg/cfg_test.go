package cfg

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/image"
	"repro/internal/isa"
)

func buildDB(t *testing.T, build func(a *asm.Assembler)) (*DB, map[string]uint32) {
	t.Helper()
	a := asm.New(0x1000)
	build(a)
	code, labels, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	img := &image.Image{Base: 0x1000, Entry: 0x1000, Code: code}
	return NewDB(img), labels
}

func TestStraightLineProc(t *testing.T) {
	db, labels := buildDB(t, func(a *asm.Assembler) {
		a.Label("f")
		a.MovRI(isa.EAX, 1)
		a.AddRI(isa.EAX, 2)
		a.Ret()
	})
	p := db.NoteBlockExec(labels["f"])
	if p.Entry != labels["f"] {
		t.Fatalf("entry = %#x", p.Entry)
	}
	if len(p.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(p.Blocks))
	}
	b := p.BlockOf(labels["f"])
	if b.NumInstrs() != 3 || len(b.Succs) != 0 {
		t.Errorf("block = %+v", b)
	}
}

func TestDiamondCFGAndPredominators(t *testing.T) {
	// entry -> (then | else) -> join -> ret
	db, labels := buildDB(t, func(a *asm.Assembler) {
		a.Label("f")
		a.CmpRI(isa.EAX, 0) // f+0
		a.Je("else")        // f+8
		a.Label("then")
		a.MovRI(isa.EBX, 1) // then
		a.Jmp("join")
		a.Label("else")
		a.MovRI(isa.EBX, 2) // else
		a.Label("join")
		a.MovRR(isa.ECX, isa.EBX) // join
		a.Ret()
	})
	p := db.NoteBlockExec(labels["f"])
	if len(p.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4 (entry/then/else/join)", len(p.Blocks))
	}
	f, then, els, join := labels["f"], labels["then"], labels["else"], labels["join"]

	if !p.Predominates(f, join) {
		t.Error("entry must predominate join")
	}
	if p.Predominates(then, join) || p.Predominates(els, join) {
		t.Error("neither branch arm predominates the join")
	}
	if !p.Predominates(join, join) {
		t.Error("predomination must be reflexive")
	}
	if !p.Predominates(f, f+8) {
		t.Error("earlier instruction in a block predominates later")
	}
	if p.Predominates(f+8, f) {
		t.Error("later instruction must not predominate earlier")
	}

	// Predominators of the join instruction: both entry-block
	// instructions, then the join instruction itself — never the arms.
	pre := p.Predominators(join)
	want := []uint32{f, f + 8, join}
	if len(pre) != len(want) {
		t.Fatalf("predominators = %#v, want %#v", pre, want)
	}
	for i := range want {
		if pre[i] != want[i] {
			t.Fatalf("predominators = %#v, want %#v", pre, want)
		}
	}
}

func TestLoopCFG(t *testing.T) {
	db, labels := buildDB(t, func(a *asm.Assembler) {
		a.Label("f")
		a.MovRI(isa.ECX, 10)
		a.Label("loop")
		a.SubRI(isa.ECX, 1)
		a.CmpRI(isa.ECX, 0)
		a.Jne("loop")
		a.Ret()
	})
	p := db.NoteBlockExec(labels["f"])
	loop := p.BlockOf(labels["loop"])
	if loop == nil {
		t.Fatal("loop block missing")
	}
	// Loop block has two successors: itself and the exit block.
	if len(loop.Succs) != 2 {
		t.Fatalf("loop succs = %v", loop.Succs)
	}
	if !p.Predominates(labels["f"], labels["loop"]) {
		t.Error("preheader must predominate loop")
	}
}

func TestCallFallsThrough(t *testing.T) {
	// A call ends the block but the CFG continues at the return point;
	// the callee is traced only when it executes (separate procedure).
	db, labels := buildDB(t, func(a *asm.Assembler) {
		a.Label("f")
		a.Call("g")
		a.MovRI(isa.EAX, 1)
		a.Ret()
		a.Label("g")
		a.MovRI(isa.EBX, 2)
		a.Ret()
	})
	p := db.NoteBlockExec(labels["f"])
	if p.ContainsInstr(labels["g"]) {
		t.Error("callee traced into caller's CFG")
	}
	after := labels["f"] + isa.InstSize
	if !p.ContainsInstr(after) {
		t.Error("return point not in caller's CFG")
	}
	if !p.Predominates(labels["f"], after) {
		t.Error("call predominates its return point")
	}
	// Discovering g separately yields a second procedure.
	q := db.NoteBlockExec(labels["g"])
	if q == p || q.Entry != labels["g"] {
		t.Errorf("callee proc = %+v", q)
	}
	if db.ProcAt(labels["g"]) != q || db.ProcAt(labels["f"]) != p {
		t.Error("instruction ownership wrong")
	}
}

func TestIndirectJumpEndsTrace(t *testing.T) {
	db, labels := buildDB(t, func(a *asm.Assembler) {
		a.Label("f")
		a.MovRI(isa.EAX, 0x9999)
		a.JmpR(isa.EAX)
		a.Label("unreached")
		a.MovRI(isa.EBX, 1) // statically unreachable from f via jmpr
		a.Ret()
	})
	p := db.NoteBlockExec(labels["f"])
	if p.ContainsInstr(labels["unreached"]) {
		t.Error("trace continued past an unresolvable indirect jump")
	}
}

func TestProcedureFission(t *testing.T) {
	// If a block executes before its "real" containing procedure is known,
	// it becomes its own procedure (the fission behaviour of §2.2.3).
	db, labels := buildDB(t, func(a *asm.Assembler) {
		a.Label("f")
		a.MovRI(isa.EAX, 1)
		a.Label("mid")
		a.MovRI(isa.EBX, 2)
		a.Ret()
	})
	mid := db.NoteBlockExec(labels["mid"])
	if mid.Entry != labels["mid"] {
		t.Fatalf("mid entry = %#x", mid.Entry)
	}
	f := db.NoteBlockExec(labels["f"])
	if f != mid {
		// f traces through mid's instructions but mid keeps ownership of
		// the instructions it claimed first.
		if db.ProcAt(labels["mid"]) != mid {
			t.Error("fissioned proc lost ownership")
		}
	}
}

func TestNoteBlockExecIdempotent(t *testing.T) {
	db, labels := buildDB(t, func(a *asm.Assembler) {
		a.Label("f")
		a.MovRI(isa.EAX, 1)
		a.Ret()
	})
	p1 := db.NoteBlockExec(labels["f"])
	p2 := db.NoteBlockExec(labels["f"])
	if p1 != p2 {
		t.Error("re-noting a known block created a new procedure")
	}
	if len(db.Procs()) != 1 {
		t.Errorf("procs = %d", len(db.Procs()))
	}
}

func TestInstrsSorted(t *testing.T) {
	db, labels := buildDB(t, func(a *asm.Assembler) {
		a.Label("f")
		a.CmpRI(isa.EAX, 0)
		a.Je("skip")
		a.MovRI(isa.EBX, 1)
		a.Label("skip")
		a.Ret()
	})
	p := db.NoteBlockExec(labels["f"])
	is := p.Instrs()
	if len(is) != 4 {
		t.Fatalf("instrs = %d, want 4", len(is))
	}
	for i := 1; i < len(is); i++ {
		if is[i] <= is[i-1] {
			t.Fatal("instrs not sorted")
		}
	}
}
