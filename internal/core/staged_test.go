package core

import (
	"strings"
	"testing"

	"repro/internal/cfg"
	"repro/internal/daikon"
	"repro/internal/vm"
)

func TestStagedLearningRepairsAfterFailure(t *testing.T) {
	// The §3.1 staged strategy: no invariants exist before the first
	// failure; the failure's location and stack select the region, a
	// replay pass learns only there, and the ensuing pipeline repairs the
	// error as usual.
	im, _ := underflowProgram(t)
	recorded := [][]byte{{5}, {6}, {7}, {8}} // the phase-1 input log

	// Phase 1: run without learning, populating only the CFG database.
	cfgdb := cfg.NewDB(im)
	empty := daikon.NewDB()
	cv0, err := New(Config{
		Image: im, Invariants: empty, CFG: cfgdb,
		MemoryFirewall: true, HeapGuard: true, ShadowStack: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range recorded {
		if res := cv0.Execute(in); res.Outcome != vm.OutcomeExit {
			t.Fatalf("phase-1 input failed: %+v", res)
		}
	}

	// The failure arrives.
	attack := []byte{4}
	res := cv0.Execute(attack)
	if res.Outcome != vm.OutcomeFailure {
		t.Fatalf("attack not detected: %+v", res)
	}

	// Phase 2: learn only around the failure by replaying the log. The
	// region here is the failure procedure alone (the tightest §3.1
	// configuration); passing the call stack would widen it to the
	// callers as well.
	db, stats, err := StagedLearn(im, cfgdb, recorded, res.Failure.PC, nil, daikon.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() == 0 {
		t.Fatal("staged learning produced no invariants")
	}

	// The staged database is focused: a full trace sees strictly more.
	fullDB, fullStats, err := Learn(im, LearnConfig{Inputs: recorded})
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() >= fullDB.Len() {
		t.Errorf("staged DB (%d) not smaller than full DB (%d)", db.Len(), fullDB.Len())
	}
	if stats.Observations >= fullStats.Observations {
		t.Errorf("staged tracing (%d obs) not cheaper than full (%d)", stats.Observations, fullStats.Observations)
	}

	// A fresh instance armed with the staged database repairs the error
	// in the usual four presentations.
	cv, err := New(Config{
		Image: im, Invariants: db, CFG: cfgdb,
		MemoryFirewall: true, HeapGuard: true, ShadowStack: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		cv.Execute(attack)
	}
	if final := cv.Execute(attack); final.Outcome != vm.OutcomeExit {
		t.Fatalf("staged-learning repair failed: %+v", final)
	}
}

func TestFailureCaseReport(t *testing.T) {
	cv, labels := underflowClearView(t, 1)
	attack := []byte{4}
	for i := 0; i < 4; i++ {
		cv.Execute(attack)
	}
	fc := cv.Case(labels["store"])
	if fc == nil {
		t.Fatal("no case")
	}
	rep := fc.Report()
	for _, want := range []string{
		"Failure fail@", "location:", "status:   patched",
		"correlated invariants:", "candidate repairs", "checks executed:",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	// The deployed repair is marked.
	if !strings.Contains(rep, "*") {
		t.Error("deployed repair not marked in report")
	}
}
