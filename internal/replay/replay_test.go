package replay_test

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/evaluate"
	"repro/internal/redteam"
	"repro/internal/replay"
	"repro/internal/vm"
)

var (
	setupOnce sync.Once
	setupBase *redteam.Setup
	setupErr  error
)

func baseSetup(t *testing.T) *redteam.Setup {
	t.Helper()
	setupOnce.Do(func() { setupBase, setupErr = redteam.NewSetup(false) })
	if setupErr != nil {
		t.Fatal(setupErr)
	}
	return setupBase
}

func exploit(t *testing.T, id string) redteam.Exploit {
	t.Helper()
	for _, ex := range redteam.Exploits() {
		if ex.Bugzilla == id {
			return ex
		}
	}
	t.Fatalf("unknown exploit %s", id)
	return redteam.Exploit{}
}

// liveAdopted runs the paper's sequential live campaign and returns the
// adopted repair plus the presentations it took.
func liveAdopted(t *testing.T, setup *redteam.Setup, ex redteam.Exploit) (string, int) {
	t.Helper()
	cv, err := setup.ClearView(ex.NeedsStackScope)
	if err != nil {
		t.Fatal(err)
	}
	res := redteam.RunSingleVariant(cv, setup.App, ex, 24)
	if !res.Patched {
		t.Fatalf("%s: live campaign never patched", ex.Bugzilla)
	}
	return cv.Cases()[0].CurrentRepairID(), res.Presentations
}

// candidateRepairs drives a plain pipeline through detection and checking
// so the candidate repair set exists, and returns the failure case.
func candidateRepairs(t *testing.T, setup *redteam.Setup, ex redteam.Exploit) *core.FailureCase {
	t.Helper()
	cv, err := setup.ClearView(ex.NeedsStackScope)
	if err != nil {
		t.Fatal(err)
	}
	attack := redteam.AttackInput(setup.App, ex, 0)
	for i := 0; i < 3; i++ { // run 1 detects, runs 2-3 check
		cv.Execute(attack)
	}
	fc := cv.Cases()[0]
	if fc.State != core.StateEvaluating {
		t.Fatalf("%s: case state %v after checking, want evaluating", ex.Bugzilla, fc.State)
	}
	if len(fc.Repairs) == 0 {
		t.Fatalf("%s: no candidate repairs generated", ex.Bugzilla)
	}
	return fc
}

// TestRecordingRoundTrip records a failing presentation, ships it through
// the wire format, and checks the deserialized recording replays to the
// identical failure.
func TestRecordingRoundTrip(t *testing.T) {
	setup := baseSetup(t)
	ex := exploit(t, "290162")
	rec, res, err := redteam.RecordAttack(setup, ex, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failure == nil || rec.Failure == nil {
		t.Fatalf("recorded run did not fail: %+v", res)
	}
	if len(rec.Snapshots) == 0 || rec.Snapshots[0].Steps != 0 {
		t.Fatalf("recording lacks a step-0 snapshot (%d snapshots)", len(rec.Snapshots))
	}

	raw, err := rec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := replay.Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.Replay(nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if got.Failure == nil {
		t.Fatalf("replay of deserialized recording did not fail: %+v", got)
	}
	if got.Failure.PC != rec.Failure.PC || got.Failure.Monitor != rec.Failure.Monitor {
		t.Fatalf("replayed failure %s@%#x != recorded %s@%#x",
			got.Failure.Monitor, got.Failure.PC, rec.Failure.Monitor, rec.Failure.PC)
	}
	if got.Steps != rec.Steps {
		t.Fatalf("replayed steps %d != recorded %d", got.Steps, rec.Steps)
	}

	// Fast-forwarding from the latest snapshot must still misbehave in the
	// tail (under MF+HG; the shadow stack cannot resume mid-run).
	ff, err := back.FastForward()
	if err != nil {
		t.Fatal(err)
	}
	if ff.Outcome == vm.OutcomeExit && ff.ExitCode == 0 {
		t.Fatalf("fast-forwarded failing run exited cleanly: %+v", ff)
	}
}

// TestFarmMatchesLiveEvaluation is the acceptance property: for seeded
// webapp defects, judging every candidate against the recorded failing run
// ranks the same repair best that the sequential live campaign adopts.
func TestFarmMatchesLiveEvaluation(t *testing.T) {
	setup := baseSetup(t)
	for _, id := range []string{"269095", "290162", "296134", "311710"} {
		id := id
		t.Run(id, func(t *testing.T) {
			ex := exploit(t, id)
			adopted, _ := liveAdopted(t, setup, ex)
			fc := candidateRepairs(t, setup, ex)

			rec, _, err := redteam.RecordAttack(setup, ex, 0)
			if err != nil {
				t.Fatal(err)
			}
			farm := &replay.Farm{Workers: 8}
			verdicts := farm.Evaluate(rec, fc.ID, fc.Repairs)
			if len(verdicts) != len(fc.Repairs) {
				t.Fatalf("%d verdicts for %d candidates", len(verdicts), len(fc.Repairs))
			}
			for _, v := range verdicts {
				if v.Err != "" {
					t.Fatalf("verdict error for %s: %s", v.RepairID, v.Err)
				}
			}
			ev := evaluate.New(fc.Repairs, 0)
			survivors := replay.Apply(verdicts, ev)
			if survivors == 0 {
				t.Fatal("no candidate survived the recorded run")
			}
			best := ev.Best()
			if best == nil || best.Repair.ID() != adopted {
				t.Fatalf("farm ranks %q best, live adopted %q", best.Repair.ID(), adopted)
			}

			// Determinism: a second farm pass yields identical verdicts.
			again := farm.Evaluate(rec, fc.ID, fc.Repairs)
			for i := range verdicts {
				if verdicts[i].Survived != again[i].Survived || verdicts[i].Steps != again[i].Steps {
					t.Fatalf("verdict %d not deterministic: %+v vs %+v", i, verdicts[i], again[i])
				}
			}
		})
	}
}

// TestCoreReplayFastPath verifies the pipeline integration: with the fast
// path enabled, a deterministic exploit is repaired in two presentations —
// detection plus one surviving run under the farm-picked repair — and the
// adopted repair matches the live campaign's.
func TestCoreReplayFastPath(t *testing.T) {
	setup := baseSetup(t)
	for _, id := range []string{"269095", "290162"} {
		id := id
		t.Run(id, func(t *testing.T) {
			ex := exploit(t, id)
			adopted, livePresentations := liveAdopted(t, setup, ex)

			cv, err := setup.ReplayClearView(ex.NeedsStackScope, 0)
			if err != nil {
				t.Fatal(err)
			}
			attack := redteam.AttackInput(setup.App, ex, 0)

			// Presentation 1: detection; the fast path must complete
			// checking AND ranking offline, leaving a deployed candidate.
			first := cv.Execute(attack)
			if first.Outcome != vm.OutcomeFailure {
				t.Fatalf("presentation 1: %+v", first)
			}
			fc := cv.Cases()[0]
			if fc.State != core.StateEvaluating || fc.Current == nil {
				t.Fatalf("after presentation 1: state %v, current %v", fc.State, fc.CurrentRepairID())
			}
			if fc.Metrics.ReplayRuns < len(fc.Repairs) {
				t.Fatalf("fast path ran %d replays for %d candidates", fc.Metrics.ReplayRuns, len(fc.Repairs))
			}
			if cv.LastRecording == nil {
				t.Fatal("no recording retained")
			}

			// Presentation 2: the farm-picked repair survives live.
			second := cv.Execute(attack)
			if second.Outcome != vm.OutcomeExit || second.ExitCode != 0 {
				t.Fatalf("presentation 2: %+v", second)
			}
			if fc.State != core.StatePatched {
				t.Fatalf("after presentation 2: state %v", fc.State)
			}
			if got := fc.CurrentRepairID(); got != adopted {
				t.Fatalf("fast path adopted %q, live adopted %q", got, adopted)
			}
			if livePresentations <= 2 {
				t.Fatalf("live campaign took %d presentations; exploit too easy to demonstrate compression", livePresentations)
			}
			// No unsuccessful repair ever reached a live execution.
			if fc.Metrics.Unsuccessful != 0 {
				t.Fatalf("%d unsuccessful live repair runs despite the farm", fc.Metrics.Unsuccessful)
			}
		})
	}
}

// TestFastPathCascadingFailures covers the §2.6 "repair exposes another
// failure" case: 311710's first repair uncovers a second failure location,
// so convergence takes one detection presentation per exposed location
// plus one surviving run — still well under the live campaign, and with
// zero unsuccessful live repair deployments.
func TestFastPathCascadingFailures(t *testing.T) {
	setup := baseSetup(t)
	ex := exploit(t, "311710")
	_, livePresentations := liveAdopted(t, setup, ex)

	cv, err := setup.ReplayClearView(ex.NeedsStackScope, 0)
	if err != nil {
		t.Fatal(err)
	}
	res := redteam.RunSingleVariant(cv, setup.App, ex, 24)
	if !res.Patched {
		t.Fatal("replay-enabled campaign never patched")
	}
	if res.Presentations >= livePresentations {
		t.Fatalf("replay campaign took %d presentations, live took %d", res.Presentations, livePresentations)
	}
	for _, fc := range cv.Cases() {
		if fc.Metrics.Unsuccessful != 0 {
			t.Fatalf("case %s: %d unsuccessful live repair runs despite the farm", fc.ID, fc.Metrics.Unsuccessful)
		}
	}
}

// TestFastPathFalsePositiveNeutral confirms the recording machinery never
// opens cases or generates patches on legitimate inputs (§4.3.7 must hold
// with replay enabled too).
func TestFastPathFalsePositiveNeutral(t *testing.T) {
	setup := baseSetup(t)
	cv, err := setup.ReplayClearView(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	patches, cases := redteam.FalsePositives(cv)
	if patches != 0 || cases != 0 {
		t.Fatalf("legitimate load generated %d patches, %d cases", patches, cases)
	}
	if cv.LastRecording != nil {
		t.Fatal("clean runs must not retain recordings")
	}
}
