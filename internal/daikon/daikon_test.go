package daikon

import (
	"testing"
	"testing/quick"
)

func v(pc uint32, slot uint8) VarID { return VarID{PC: pc, Slot: slot} }

func feed(e *Engine, varID VarID, vals ...uint32) {
	for _, val := range vals {
		e.ObserveBlockPass([]Obs{{Var: varID, Val: val}})
	}
}

func find(db *DB, kind Kind, id VarID) *Invariant {
	for _, inv := range db.All() {
		if inv.Kind == kind && inv.Var == id {
			return inv
		}
	}
	return nil
}

// TestNonzeroInference: a variable never observed zero gets a nonzero
// invariant whose witness is the observed value of smallest magnitude;
// one zero observation kills it.
func TestNonzeroInference(t *testing.T) {
	e := NewEngine()
	feed(e, v(0x100, 0), 0xFFFF_FFF4, 7, 0xFFFF_FFFE) // -12, 7, -2
	db := e.Finalize(Options{})
	inv := find(db, KindNonzero, v(0x100, 0))
	if inv == nil {
		t.Fatal("no nonzero invariant inferred")
	}
	if inv.Bound != -2 {
		t.Errorf("witness = %d, want the smallest-magnitude observation -2", inv.Bound)
	}
	if !inv.Holds(5, 0) || inv.Holds(0, 0) {
		t.Error("nonzero Holds wrong")
	}

	e2 := NewEngine()
	feed(e2, v(0x100, 0), 7, 0, 9)
	if inv := find(e2.Finalize(Options{}), KindNonzero, v(0x100, 0)); inv != nil {
		t.Errorf("nonzero survived a zero observation: %v", inv)
	}
}

// TestModulusInference: values sharing a stride get a congruence
// invariant; the modulus always divides 2^32, so the unsigned mod-2^32
// check in Holds is exact — in particular, every invariant must hold on
// its own training data even when observations straddle the signed
// boundary (5 and -1 are six apart signed but not in Z/2^32).
func TestModulusInference(t *testing.T) {
	e := NewEngine()
	feed(e, v(0x100, 0), 4, 12, 28)
	db := e.Finalize(Options{})
	inv := find(db, KindModulus, v(0x100, 0))
	if inv == nil {
		t.Fatal("no modulus invariant inferred")
	}
	if m, r := inv.Modulus(); m != 8 || r != 4 {
		t.Errorf("learned v ≡ %d (mod %d), want 4 (mod 8)", r, m)
	}
	if !inv.Holds(20, 0) || inv.Holds(22, 0) {
		t.Error("modulus Holds wrong")
	}

	// Signed-boundary soundness: whatever modulus comes out of {5, -1}
	// must hold on both observations (a signed-distance gcd would emit
	// mod 6, which 0xFFFFFFFF violates).
	e2 := NewEngine()
	vals := []uint32{5, 0xFFFF_FFFF}
	feed(e2, v(0x200, 0), vals...)
	if inv := find(e2.Finalize(Options{}), KindModulus, v(0x200, 0)); inv != nil {
		for _, val := range vals {
			if !inv.Holds(val, 0) {
				t.Errorf("inferred %v is violated by its own training value %#x", inv, val)
			}
		}
		if m, _ := inv.Modulus(); (1<<32)%uint64(m) != 0 {
			t.Errorf("modulus %d does not divide 2^32 — unsigned congruence is unsound", m)
		}
	}

	// A constant variable gets no modulus (one-of covers it).
	e3 := NewEngine()
	feed(e3, v(0x300, 0), 8, 8, 8)
	if inv := find(e3.Finalize(Options{}), KindModulus, v(0x300, 0)); inv != nil {
		t.Errorf("modulus inferred for a constant: %v", inv)
	}
}

// TestModulusMergeSound: the merged congruence must hold on every value
// either member observed, including residue distances that cross the
// signed boundary.
func TestModulusMergeSound(t *testing.T) {
	valsA := []uint32{1, 5, 9}        // v ≡ 1 (mod 4)
	valsB := []uint32{0xFFFF_FFFF, 3} // v ≡ 3 (mod 4)
	e1, e2 := NewEngine(), NewEngine()
	feed(e1, v(0x100, 0), valsA...)
	feed(e2, v(0x100, 0), valsB...)
	db1, db2 := e1.Finalize(Options{}), e2.Finalize(Options{})
	db1.Merge(db2, 0)
	if inv := find(db1, KindModulus, v(0x100, 0)); inv != nil {
		for _, val := range append(append([]uint32{}, valsA...), valsB...) {
			if !inv.Holds(val, 0) {
				t.Errorf("merged %v violated by member observation %#x", inv, val)
			}
		}
	}
}

func TestOneOfInference(t *testing.T) {
	e := NewEngine()
	feed(e, v(0x100, 0), 0x2000, 0x3000, 0x2000)
	db := e.Finalize(Options{})
	inv := find(db, KindOneOf, v(0x100, 0))
	if inv == nil {
		t.Fatal("no one-of inferred")
	}
	if len(inv.Values) != 2 || inv.Values[0] != 0x2000 || inv.Values[1] != 0x3000 {
		t.Errorf("values = %v", inv.Values)
	}
	if !inv.Holds(0x2000, 0) || inv.Holds(0x4000, 0) {
		t.Error("Holds wrong")
	}
}

func TestOneOfOverflowDropped(t *testing.T) {
	e := NewEngine()
	e.MaxOneOf = 4
	for i := uint32(0); i < 10; i++ {
		feed(e, v(0x100, 0), 0x200000+i*4)
	}
	db := e.Finalize(Options{})
	if inv := find(db, KindOneOf, v(0x100, 0)); inv != nil {
		t.Errorf("one-of with %d values survived K=4", len(inv.Values))
	}
}

func TestLowerBoundAndPointerHeuristic(t *testing.T) {
	e := NewEngine()
	feed(e, v(0x100, 0), 5, 3, 9)              // small ints -> non-pointer
	feed(e, v(0x108, 0), 0x20000000, 0x200000) // large values -> pointer
	db := e.Finalize(Options{})

	lb := find(db, KindLowerBound, v(0x100, 0))
	if lb == nil || lb.Bound != 3 {
		t.Fatalf("lower bound = %+v", lb)
	}
	neg := int32(-1)
	if !lb.Holds(3, 0) || lb.Holds(uint32(neg), 0) || lb.Holds(2, 0) {
		t.Error("lower-bound Holds wrong")
	}
	if find(db, KindLowerBound, v(0x108, 0)) != nil {
		t.Error("lower bound inferred for a pointer variable")
	}
	// Ablation: with the heuristic disabled the pointer gets a bound too.
	db2 := e.Finalize(Options{DisablePointerHeuristic: true})
	if find(db2, KindLowerBound, v(0x108, 0)) == nil {
		t.Error("ablation did not emit pointer lower bound")
	}
}

func TestNegativeValueMarksNonPointer(t *testing.T) {
	e := NewEngine()
	feed(e, v(0x100, 0), 0x80000000) // negative as int32
	db := e.Finalize(Options{})
	if find(db, KindLowerBound, v(0x100, 0)) == nil {
		t.Error("negative-valued variable treated as pointer")
	}
}

func TestZeroStaysPointerCandidate(t *testing.T) {
	// The paper's rule: negative or in [1, 100000] proves non-pointer.
	// Zero alone proves nothing, so the variable remains a pointer.
	e := NewEngine()
	feed(e, v(0x100, 0), 0, 0x20000000)
	db := e.Finalize(Options{})
	if find(db, KindLowerBound, v(0x100, 0)) != nil {
		t.Error("zero-valued variable lost pointer status")
	}
}

func TestLessThanInference(t *testing.T) {
	e := NewEngine()
	a, b := v(0x100, 0), v(0x108, 0)
	e.ObserveBlockPass([]Obs{{a, 3}, {b, 10}})
	e.ObserveBlockPass([]Obs{{a, 5}, {b, 5}})
	e.ObserveBlockPass([]Obs{{a, 1}, {b, 8}})
	db := e.Finalize(Options{})
	var lt *Invariant
	for _, inv := range db.All() {
		if inv.Kind == KindLessThan {
			lt = inv
		}
	}
	if lt == nil || lt.Var != a || lt.Var2 != b {
		t.Fatalf("less-than = %+v", lt)
	}
	if !lt.Holds(4, 9) || lt.Holds(9, 4) {
		t.Error("less-than Holds wrong")
	}
	if lt.PC() != 0x108 {
		t.Errorf("check PC = %#x, want the later instruction", lt.PC())
	}
}

func TestLessThanViolatedNotInferred(t *testing.T) {
	e := NewEngine()
	a, b := v(0x100, 0), v(0x108, 0)
	e.ObserveBlockPass([]Obs{{a, 3}, {b, 10}})
	e.ObserveBlockPass([]Obs{{a, 20}, {b, 10}})
	db := e.Finalize(Options{})
	for _, inv := range db.All() {
		if inv.Kind == KindLessThan {
			t.Fatalf("contradicted less-than inferred: %v", inv)
		}
	}
}

func TestLessThanOnlyWithinBlockPass(t *testing.T) {
	e := NewEngine()
	a, b := v(0x100, 0), v(0x200, 0)
	// Observed in different passes: no pair relation may form.
	e.ObserveBlockPass([]Obs{{a, 1}})
	e.ObserveBlockPass([]Obs{{b, 5}})
	db := e.Finalize(Options{})
	for _, inv := range db.All() {
		if inv.Kind == KindLessThan {
			t.Fatalf("cross-pass less-than inferred: %v", inv)
		}
	}
}

func TestAlwaysEqualPairYieldsOneDirection(t *testing.T) {
	// Duplicate elimination is the trace front end's static job; if two
	// always-equal variables do reach the engine (e.g. reloads from one
	// address, which the conservative static analysis keeps apart), the
	// engine emits a single less-than direction, not two.
	e := NewEngine()
	a, b := v(0x100, 0), v(0x108, 0)
	e.ObserveBlockPass([]Obs{{a, 7}, {b, 7}})
	e.ObserveBlockPass([]Obs{{a, 9}, {b, 9}})
	db := e.Finalize(Options{})
	n := 0
	for _, inv := range db.All() {
		if inv.Kind == KindLessThan {
			n++
		}
	}
	if n != 1 {
		t.Errorf("less-than invariants for an equal pair = %d, want 1", n)
	}
}

func TestSPOffsetInvariant(t *testing.T) {
	e := NewEngine()
	e.ObserveSP(0x100, 12)
	e.ObserveSP(0x100, 12)
	e.ObserveSP(0x200, 4)
	e.ObserveSP(0x200, 8) // inconsistent
	db := e.Finalize(Options{})
	if d, ok := db.SPOffsetAt(0x100); !ok || d != 12 {
		t.Errorf("sp offset at 0x100 = %d, %v", d, ok)
	}
	if _, ok := db.SPOffsetAt(0x200); ok {
		t.Error("inconsistent sp offset inferred")
	}
	// SP-offset invariants are auxiliary: not returned by At.
	if len(db.At(0x100)) != 0 {
		t.Error("sp-offset leaked into checkable invariants")
	}
}

func TestHoldsProperties(t *testing.T) {
	// Property: a lower-bound invariant inferred from a sample set holds
	// for every sample in the set.
	f := func(vals []int32) bool {
		if len(vals) == 0 {
			return true
		}
		e := NewEngine()
		id := v(0x100, 0)
		for _, val := range vals {
			feed(e, id, uint32(val))
		}
		db := e.Finalize(Options{})
		lb := find(db, KindLowerBound, id)
		if lb == nil {
			return true // all values looked like pointers
		}
		for _, val := range vals {
			if !lb.Holds(uint32(val), 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOneOfHoldsAllSamples(t *testing.T) {
	f := func(vals []uint32) bool {
		if len(vals) == 0 || len(vals) > 64 {
			return true
		}
		e := NewEngine()
		id := v(0x100, 0)
		for _, val := range vals {
			feed(e, id, val)
		}
		db := e.Finalize(Options{})
		oo := find(db, KindOneOf, id)
		if oo == nil {
			return true // overflowed K
		}
		for _, val := range vals {
			if !oo.Holds(val, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDBMarshalRoundTrip(t *testing.T) {
	e := NewEngine()
	feed(e, v(0x100, 0), 5, 7)
	feed(e, v(0x108, 1), 0x2000)
	e.ObserveSP(0x100, 8)
	db := e.Finalize(Options{})
	raw, err := db.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalDB(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != db.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), db.Len())
	}
	for _, inv := range db.All() {
		o, ok := got.ByID[inv.ID()]
		if !ok || o.Kind != inv.Kind || o.Bound != inv.Bound {
			t.Errorf("invariant %s lost or changed", inv.ID())
		}
	}
}

func TestMergeUnionsOneOf(t *testing.T) {
	e1 := NewEngine()
	feed(e1, v(0x100, 0), 0x111111)
	db1 := e1.Finalize(Options{})
	e2 := NewEngine()
	feed(e2, v(0x100, 0), 0x222222)
	db2 := e2.Finalize(Options{})

	db1.Merge(db2, 8)
	oo := find(db1, KindOneOf, v(0x100, 0))
	if oo == nil || len(oo.Values) != 2 {
		t.Fatalf("merged one-of = %+v", oo)
	}
}

func TestMergeDropsContradicted(t *testing.T) {
	// Member 1 saw var X always 5; member 2 saw X vary wildly so it has a
	// lower bound but an overflowed one-of. After merge the community DB
	// must not claim one-of for X.
	e1 := NewEngine()
	feed(e1, v(0x100, 0), 5)
	db1 := e1.Finalize(Options{})

	e2 := NewEngine()
	e2.MaxOneOf = 2
	feed(e2, v(0x100, 0), 1, 2, 3, 4, 5)
	db2 := e2.Finalize(Options{})

	db1.Merge(db2, 8)
	if find(db1, KindOneOf, v(0x100, 0)) != nil {
		t.Error("contradicted one-of survived merge")
	}
	lb := find(db1, KindLowerBound, v(0x100, 0))
	if lb == nil || lb.Bound != 1 {
		t.Errorf("merged lower bound = %+v", lb)
	}
}

func TestMergeKeepsUnobserved(t *testing.T) {
	// Invariants about regions the other member never traced survive —
	// this is what makes amortized distributed learning sound.
	e1 := NewEngine()
	feed(e1, v(0x100, 0), 5)
	db1 := e1.Finalize(Options{})
	e2 := NewEngine()
	feed(e2, v(0x900, 0), 9)
	db2 := e2.Finalize(Options{})

	db1.Merge(db2, 8)
	if find(db1, KindOneOf, v(0x100, 0)) == nil {
		t.Error("own unshared invariant dropped")
	}
	if find(db1, KindOneOf, v(0x900, 0)) == nil {
		t.Error("other member's unshared invariant not adopted")
	}
}

func TestMergeOneOfOverflowDropped(t *testing.T) {
	e1 := NewEngine()
	feed(e1, v(0x100, 0), 1000001, 2000001, 3000001)
	db1 := e1.Finalize(Options{})
	e2 := NewEngine()
	feed(e2, v(0x100, 0), 4000001, 5000001, 6000001)
	db2 := e2.Finalize(Options{})
	db1.Merge(db2, 4) // union has 6 values > 4
	if find(db1, KindOneOf, v(0x100, 0)) != nil {
		t.Error("overflowing one-of union survived merge")
	}
}

func TestDBAtIndex(t *testing.T) {
	e := NewEngine()
	feed(e, v(0x100, 0), 5)
	feed(e, v(0x100, 1), 6)
	feed(e, v(0x200, 0), 7)
	db := e.Finalize(Options{})
	if n := len(db.At(0x100)); n != 6 { // 2 vars x (one-of + lower-bound + nonzero)
		t.Errorf("At(0x100) = %d invariants, want 6", n)
	}
	if n := len(db.At(0x999)); n != 0 {
		t.Errorf("At(unknown) = %d", n)
	}
}

func TestInvariantIDStable(t *testing.T) {
	i1 := &Invariant{Kind: KindOneOf, Var: v(0x1010, 2)}
	i2 := &Invariant{Kind: KindOneOf, Var: v(0x1010, 2), Values: []uint32{1}}
	if i1.ID() != i2.ID() {
		t.Error("ID depends on values")
	}
	lt := &Invariant{Kind: KindLessThan, Var: v(0x100, 0), Var2: v(0x108, 1)}
	if lt.ID() == i1.ID() {
		t.Error("kinds collide")
	}
}
