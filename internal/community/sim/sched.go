package sim

import (
	"repro/internal/obs"
)

// scheduler owns the virtual clock and the event heap. Events fire in
// (time, seq) order and the clock jumps to each event's timestamp —
// there is no wall-clock sleeping anywhere in a simulated campaign.
// Every dispatch runs under an obs stage span named for the event kind
// ("sim.sync", "sim.execute", ...), so per-event-type accounting comes
// free through the same telemetry pipeline the live soak uses.
type scheduler struct {
	heap    eventHeap
	now     int64  // virtual clock; advances to each fired event's time
	seq     uint64 // schedule-order stamp for deterministic ties
	tr      *obs.Tracer
	cEvents *obs.Counter
	fired   int
}

func newScheduler(tr *obs.Tracer, reg *obs.Registry) *scheduler {
	return &scheduler{tr: tr, cEvents: reg.Counter("sim.events")}
}

// schedule enqueues fn at virtual time at (clamped to now — the
// simulator never schedules into the past) under event kind.
func (s *scheduler) schedule(at int64, kind string, fn func() error) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	s.heap.Push(&event{at: at, seq: s.seq, kind: kind, fn: fn})
}

// run drains the heap: advance the clock to each event, fire it under
// its stage span, stop at the first error or an empty heap.
func (s *scheduler) run() error {
	for {
		e := s.heap.Pop()
		if e == nil {
			return nil
		}
		s.now = e.at
		sp := s.tr.Start("sim." + e.kind)
		err := e.fn()
		sp.Finish()
		s.fired++
		s.cEvents.Inc()
		if err != nil {
			return err
		}
	}
}
