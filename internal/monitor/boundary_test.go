package monitor

import (
	"fmt"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/vm"
)

// TestHeapGuardAllocationEdges is the table-driven boundary sweep of the
// out-of-bounds write detector: writes at the very first and very last
// byte of a block are legitimate; one byte past either edge lands on a
// canary word and must be detected. Zero-length allocations (rounded to
// the 4-byte minimum) and freed-then-reused blocks get the same treatment
// — the recycled block's canaries are re-planted, so its edges are
// exactly as sharp as a fresh block's.
func TestHeapGuardAllocationEdges(t *testing.T) {
	cases := []struct {
		name     string
		size     int32 // allocation size requested
		off      int32 // byte-store offset relative to the block start
		reuse    bool  // free the block and allocate again before storing
		wantFail bool
	}{
		{name: "first byte", size: 8, off: 0},
		{name: "last byte", size: 8, off: 7},
		{name: "one past the end", size: 8, off: 8, wantFail: true},
		{name: "one before the start", size: 8, off: -1, wantFail: true},
		{name: "last byte of the rear canary word", size: 8, off: 11, wantFail: true},
		{name: "zero-length alloc, minimum slot", size: 0, off: 3},
		{name: "zero-length alloc, past the slot", size: 0, off: 4, wantFail: true},
		{name: "reused block, last byte", size: 8, off: 7, reuse: true},
		{name: "reused block, one past the end", size: 8, off: 8, reuse: true, wantFail: true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			im, labels := buildImage(t, func(a *asm.Assembler) {
				a.Label("main")
				a.MovRI(isa.EAX, tc.size)
				a.Sys(isa.SysAlloc)
				a.MovRR(isa.EBX, isa.EAX)
				if tc.reuse {
					a.Sys(isa.SysFree) // EAX still holds the block
					a.MovRI(isa.EAX, tc.size)
					a.Sys(isa.SysAlloc) // LIFO freelist: same address back
					a.MovRR(isa.EBX, isa.EAX)
				}
				a.MovRI(isa.ECX, 0x31)
				a.Label("store")
				a.StoreB(asm.M(isa.EBX, tc.off), isa.ECX)
				a.MovRI(isa.EAX, 0)
				a.Sys(isa.SysExit)
			})
			v, err := vm.New(vm.Config{Image: im, Plugins: []vm.Plugin{NewHeapGuard()}})
			if err != nil {
				t.Fatal(err)
			}
			res := v.Run()
			if tc.wantFail {
				if res.Outcome != vm.OutcomeFailure || res.Failure.Monitor != "HeapGuard" {
					t.Fatalf("edge write not detected: %+v", res)
				}
				if res.Failure.PC != labels["store"] {
					t.Errorf("failure at %#x, want the store site %#x", res.Failure.PC, labels["store"])
				}
			} else if res.Outcome != vm.OutcomeExit || res.ExitCode != 0 {
				t.Fatalf("legitimate edge write flagged: %+v", res)
			}
		})
	}
}

// TestHeapGuardInBoundsCanaryValue pins the allocation-map disambiguation:
// an application may legitimately write the canary VALUE inside its own
// block; a second write over it must not be misread as a boundary hit.
func TestHeapGuardInBoundsCanaryValue(t *testing.T) {
	im, _ := buildImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.MovRI(isa.EAX, 8)
		a.Sys(isa.SysAlloc)
		a.MovRR(isa.EBX, isa.EAX)
		a.MovRI(isa.ECX, int32(-0x02020203)) // 0xFDFDFDFD, the canary value
		a.Store(asm.M(isa.EBX, 0), isa.ECX)
		a.Store(asm.M(isa.EBX, 0), isa.ECX) // second write sees the canary value in-bounds
		a.MovRI(isa.EAX, 0)
		a.Sys(isa.SysExit)
	})
	v, err := vm.New(vm.Config{Image: im, Plugins: []vm.Plugin{NewHeapGuard()}})
	if err != nil {
		t.Fatal(err)
	}
	if res := v.Run(); res.Outcome != vm.OutcomeExit || res.ExitCode != 0 {
		t.Fatalf("in-bounds canary-value write flagged: %+v", res)
	}
}

// TestFirewallCodeRangeBoundaries sweeps indirect transfers landing
// exactly on the code-range boundaries: the first code byte and the last
// instruction are legal targets; one instruction before the base and the
// first byte past the end are not.
func TestFirewallCodeRangeBoundaries(t *testing.T) {
	build := func(target func(labels map[string]uint32) uint32) (*vm.VM, map[string]uint32) {
		im, labels := buildImage(t, func(a *asm.Assembler) {
			// The first code byte (0x1000) is a clean exit pad, so landing
			// there is observably legal.
			a.MovRI(isa.EAX, 0)
			a.Sys(isa.SysExit)
			a.Label("main") // entry; EBX is preset before Run
			a.Label("jump")
			a.JmpR(isa.EBX)
			a.Label("last")
			a.Sys(isa.SysExit)
			a.Label("end") // one past the last instruction
		})
		v, err := vm.New(vm.Config{Image: im, Plugins: []vm.Plugin{NewMemoryFirewall()}})
		if err != nil {
			t.Fatal(err)
		}
		v.CPU.Regs[isa.EBX] = target(labels)
		return v, labels
	}
	cases := []struct {
		name     string
		target   func(labels map[string]uint32) uint32
		wantFail bool
	}{
		{name: "last instruction", target: func(l map[string]uint32) uint32 { return l["last"] }},
		{name: "one past the end", target: func(l map[string]uint32) uint32 { return l["end"] }, wantFail: true},
		{name: "one instruction before the base", target: func(map[string]uint32) uint32 { return 0x1000 - isa.InstSize }, wantFail: true},
		{name: "first code byte", target: func(map[string]uint32) uint32 { return 0x1000 }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			v, labels := build(tc.target)
			res := v.Run()
			if tc.wantFail {
				if res.Outcome != vm.OutcomeFailure || res.Failure.Monitor != "MemoryFirewall" {
					t.Fatalf("boundary transfer not detected: %+v", res)
				}
				if res.Failure.PC != labels["jump"] {
					t.Errorf("failure at %#x, want the jump site %#x", res.Failure.PC, labels["jump"])
				}
				if res.Failure.Target != tc.target(labels) {
					t.Errorf("failure target %#x, want %#x", res.Failure.Target, tc.target(labels))
				}
			} else if res.Outcome == vm.OutcomeFailure {
				t.Fatalf("legal boundary transfer flagged: %+v", res.Failure)
			}
		})
	}
}

// TestFaultGuardBoundaries sweeps the arithmetic-fault detector's edges:
// divisors of ±1 and the most-negative-dividend wrap are legal, only the
// exact zero divisor fires; aligned word loads are legal at every word of
// a block, each of the three misaligned phases fires.
func TestFaultGuardBoundaries(t *testing.T) {
	for _, tc := range []struct {
		div      int32
		wantFail bool
	}{{1, false}, {-1, false}, {0, true}} {
		t.Run(fmt.Sprintf("div by %d", tc.div), func(t *testing.T) {
			im, labels := buildImage(t, func(a *asm.Assembler) {
				a.Label("main")
				a.MovRI(isa.EAX, int32(-0x80000000)) // most negative dividend
				a.MovRI(isa.ECX, tc.div)
				a.Label("div")
				a.DivRR(isa.EAX, isa.ECX)
				a.MovRI(isa.EAX, 0)
				a.Sys(isa.SysExit)
			})
			v, err := vm.New(vm.Config{Image: im, Plugins: []vm.Plugin{NewFaultGuard()}})
			if err != nil {
				t.Fatal(err)
			}
			res := v.Run()
			if tc.wantFail {
				if res.Outcome != vm.OutcomeFailure || res.Failure.Monitor != "FaultGuard" ||
					res.Failure.PC != labels["div"] {
					t.Fatalf("zero divisor not detected: %+v", res)
				}
			} else if res.Outcome != vm.OutcomeExit {
				t.Fatalf("legal division flagged: %+v", res)
			}
		})
	}
	for off := int32(0); off < 8; off++ {
		off := off
		t.Run(fmt.Sprintf("load at +%d", off), func(t *testing.T) {
			im, labels := buildImage(t, func(a *asm.Assembler) {
				a.Label("main")
				a.MovRI(isa.EAX, 16)
				a.Sys(isa.SysAlloc)
				a.MovRR(isa.EBX, isa.EAX)
				a.Label("load")
				a.LoadA(isa.ECX, asm.M(isa.EBX, off))
				a.MovRI(isa.EAX, 0)
				a.Sys(isa.SysExit)
			})
			v, err := vm.New(vm.Config{Image: im, Plugins: []vm.Plugin{NewFaultGuard()}})
			if err != nil {
				t.Fatal(err)
			}
			res := v.Run()
			if off%4 == 0 {
				if res.Outcome != vm.OutcomeExit {
					t.Fatalf("aligned load flagged: %+v", res)
				}
			} else if res.Outcome != vm.OutcomeFailure || res.Failure.Monitor != "FaultGuard" ||
				res.Failure.PC != labels["load"] {
				t.Fatalf("misaligned load not detected: %+v", res)
			}
		})
	}
}

// TestHangGuardBudgetBoundary pins the watchdog's edge: a run whose step
// count stays at or under the budget exits normally; the same loop one
// lap longer crosses the budget and is flagged at a block head, with the
// unguarded machine left to crash at the hard step limit instead.
func TestHangGuardBudgetBoundary(t *testing.T) {
	loopProgram := func(laps int32) (*vm.VM, map[string]uint32, *HangGuard) {
		im, labels := buildImage(t, func(a *asm.Assembler) {
			a.Label("main")
			a.MovRI(isa.ECX, laps)
			a.Label("loop")
			a.SubRI(isa.ECX, 1)
			a.CmpRI(isa.ECX, 0)
			a.Jg("loop")
			a.MovRI(isa.EAX, 0)
			a.Sys(isa.SysExit)
		})
		hang := &HangGuard{Budget: 100}
		v, err := vm.New(vm.Config{Image: im, Plugins: []vm.Plugin{hang}})
		if err != nil {
			t.Fatal(err)
		}
		hang.Install(v)
		return v, labels, hang
	}

	// 30 laps: 1 + 3*30 + 2 = 93 steps ≤ 100 — must exit.
	v, _, _ := loopProgram(30)
	if res := v.Run(); res.Outcome != vm.OutcomeExit {
		t.Fatalf("under-budget loop flagged: %+v", res)
	}
	// 40 laps: 121 steps — crosses the budget mid-loop; the failure pins
	// the looping block's head.
	v, labels, _ := loopProgram(40)
	res := v.Run()
	if res.Outcome != vm.OutcomeFailure || res.Failure.Monitor != "HangGuard" {
		t.Fatalf("over-budget loop not flagged: %+v", res)
	}
	if res.Failure.PC != labels["loop"] {
		t.Errorf("hang flagged at %#x, want the loop head %#x", res.Failure.PC, labels["loop"])
	}
	if res.Steps < 100 {
		t.Errorf("flagged after only %d steps, before the %d budget", res.Steps, 100)
	}
}
