package vm

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/asm"
	"repro/internal/image"
	"repro/internal/isa"
)

// imageFor wraps hand-assembled code in an image at the test base address.
func imageFor(code []byte, labels map[string]uint32) *image.Image {
	return &image.Image{Base: 0x1000, Entry: labels["main"], Code: code}
}

// TestHookedLoopZeroAllocs is the instrumented twin of TestHotLoopZeroAllocs:
// with a tracing hook on every instruction, the monitored dispatch loop must
// still allocate nothing per instruction. Before the reusable hook context,
// the instrumented loop allocated a fresh Ctx per instruction, so 100k extra
// iterations allocated ~900k extra objects.
func TestHookedLoopZeroAllocs(t *testing.T) {
	measure := func(trips uint64) uint64 {
		var hooks uint64
		pl := pluginFunc{name: "alloc-trace", f: func(v *VM, blk *Block) {
			for i := range blk.Insts {
				blk.AddHook(i, PrioTrace, func(ctx *Ctx) error {
					hooks++
					return nil
				})
			}
		}}
		im := buildHotImage(t)
		v, err := New(Config{Image: im, Input: tripInput(trips), MaxSteps: 1 << 62, Plugins: []Plugin{pl}})
		if err != nil {
			t.Fatal(err)
		}
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		res := v.Run()
		runtime.ReadMemStats(&after)
		if res.Outcome != OutcomeExit || res.ExitCode != 0 {
			t.Fatalf("res = %+v", res)
		}
		if hooks == 0 {
			t.Fatal("hooks never ran")
		}
		return after.Mallocs - before.Mallocs
	}
	small := measure(1_000)
	big := measure(101_000)
	if big > small+16 {
		t.Fatalf("100k extra hooked iterations allocated %d extra objects; hooked path is not allocation-free", big-small)
	}
}

// TestRunResetsEntryEdge: every Run must record its first edge with
// From == 0 (the synthetic entry source). A reused VM whose previous run
// ended in some block B must not record the next run's entry as B→entry —
// that would make coverage fingerprints depend on run order within one
// machine, which the fuzzer's corpus dedup cannot tolerate.
func TestRunResetsEntryEdge(t *testing.T) {
	cov := NewCoverage()
	im, labels := buildImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.AddRI(isa.EAX, 1)
		a.Jmp("tail")
		a.Label("tail")
		a.MovRI(isa.EAX, 0)
		a.Sys(isa.SysExit)
	})
	v, err := New(Config{Image: im, Coverage: cov})
	if err != nil {
		t.Fatal(err)
	}
	if res := v.Run(); res.Outcome != OutcomeExit {
		t.Fatalf("first run: %+v", res)
	}
	// Rewind the PC and run again on the same machine.
	v.CPU.PC = labels["main"]
	if res := v.Run(); res.Outcome != OutcomeExit {
		t.Fatalf("second run: %+v", res)
	}
	if got := cov.Hits(Edge{From: 0, To: labels["main"]}); got != 2 {
		t.Fatalf("entry edge hits = %d, want 2 (Run did not reset lastBlock)", got)
	}
	if got := cov.Hits(Edge{From: labels["tail"], To: labels["main"]}); got != 0 {
		t.Fatalf("phantom tail→main edge recorded %d times; entry edge leaked the previous run's last block", got)
	}
}

// TestHookOrderUnderHeavyInstrumentation drives AddHook's positional insert
// through an adversarial mix of priorities (descending, interleaved,
// duplicated) and verifies execution order equals (priority, insertion
// sequence) order — the contract the sort-based implementation provided.
func TestHookOrderUnderHeavyInstrumentation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	prios := []int{PrioRepair, PrioCheck, PrioMonitor, PrioTrace}
	for trial := 0; trial < 50; trial++ {
		im, _ := buildImage(t, func(a *asm.Assembler) {
			a.Label("main")
			a.AddRI(isa.EAX, 1)
			a.MovRI(isa.EAX, 0)
			a.Sys(isa.SysExit)
		})
		var got []int
		type tagged struct {
			prio, id int
		}
		var inserted []tagged
		n := 5 + rng.Intn(40)
		plugin := pluginFunc{name: "order", f: func(v *VM, blk *Block) {
			for id := 0; id < n; id++ {
				id := id
				p := prios[rng.Intn(len(prios))]
				inserted = append(inserted, tagged{prio: p, id: id})
				blk.AddHook(0, p, func(*Ctx) error {
					got = append(got, id)
					return nil
				})
			}
		}}
		v, err := New(Config{Image: im, Plugins: []Plugin{plugin}})
		if err != nil {
			t.Fatal(err)
		}
		if res := v.Run(); res.Outcome != OutcomeExit {
			t.Fatalf("res = %+v", res)
		}
		// Reference order: stable sort by priority == insertion order within
		// equal priorities (insertion ids are already ascending).
		var want []int
		for _, p := range prios {
			for _, in := range inserted {
				if in.prio == p {
					want = append(want, in.id)
				}
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d hooks ran, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: hook order %v, want %v", trial, got, want)
			}
		}
	}
}

// TestTracePatchSideExit: with the loop running inside a superblock, a patch
// applied mid-trace must take effect on the very next logical block — the
// superblock's generation check side-exits back to dispatch, which re-decodes
// and re-instruments the patched block.
func TestTracePatchSideExit(t *testing.T) {
	im, labels := buildImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.MovRI(isa.EBX, 10)
		a.Label("loop")
		a.AddRI(isa.EAX, 1)
		a.Jmp("dec")
		a.Label("dec")
		a.SubRI(isa.EBX, 1)
		a.CmpRI(isa.EBX, 0)
		a.Jne("loop")
		a.MovRI(isa.EAX, 0)
		a.Sys(isa.SysExit)
	})
	v, err := New(Config{Image: im, TraceThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	decHits := 0
	applied := false
	if err := v.ApplyPatch(&Patch{
		ID: "arm", Addr: labels["loop"], Prio: PrioTrace,
		Hook: func(ctx *Ctx) error {
			if ctx.Reg(isa.EAX) == 4 && !applied {
				applied = true
				return ctx.VM.ApplyPatch(&Patch{
					ID: "probe", Addr: labels["dec"], Prio: PrioTrace,
					Hook: func(*Ctx) error { decHits++; return nil },
				})
			}
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	res := v.Run()
	if res.Outcome != OutcomeExit || res.ExitCode != 0 {
		t.Fatalf("res = %+v", res)
	}
	// Same arithmetic as TestApplyPatchInvalidatesLinks: the patch lands on
	// iteration 5 before that iteration's dec block, so iterations 5..10
	// must observe it — 6 hits. A superblock that kept running its stale
	// trace past the patch would miss at least one.
	if decHits != 6 {
		t.Fatalf("probe ran %d times, want 6 (superblock ignored mid-trace patch)", decHits)
	}
}

// TestTracePatchRemovalSideExit is the removal direction: a patch removed
// mid-trace must stop firing on the very next logical block.
func TestTracePatchRemovalSideExit(t *testing.T) {
	im, labels := buildImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.MovRI(isa.EBX, 10)
		a.Label("loop")
		a.AddRI(isa.EAX, 1)
		a.Jmp("dec")
		a.Label("dec")
		a.SubRI(isa.EBX, 1)
		a.CmpRI(isa.EBX, 0)
		a.Jne("loop")
		a.MovRI(isa.EAX, 0)
		a.Sys(isa.SysExit)
	})
	v, err := New(Config{Image: im, TraceThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	decHits := 0
	if err := v.ApplyPatch(&Patch{
		ID: "probe", Addr: labels["dec"], Prio: PrioTrace,
		Hook: func(*Ctx) error { decHits++; return nil },
	}); err != nil {
		t.Fatal(err)
	}
	removed := false
	if err := v.ApplyPatch(&Patch{
		ID: "disarm", Addr: labels["loop"], Prio: PrioTrace,
		Hook: func(ctx *Ctx) error {
			if ctx.Reg(isa.EAX) == 4 && !removed {
				removed = true
				ctx.VM.RemovePatch("probe")
			}
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	res := v.Run()
	if res.Outcome != OutcomeExit || res.ExitCode != 0 {
		t.Fatalf("res = %+v", res)
	}
	if decHits != 4 {
		t.Fatalf("probe ran %d times, want 4 (superblock kept running removed patch)", decHits)
	}
}

// buildRandomProgram assembles a randomized multi-block program: a chain of
// blocks with random ALU work, scratch-memory stores/loads, and random
// conditional branches between blocks. Termination is guaranteed by a
// counted fuel register checked at every block, so every program exits; the
// differential harness also runs some with tiny step budgets to compare the
// out-of-fuel path.
func buildRandomProgram(t testing.TB, rng *rand.Rand) (*asm.Assembler, int) {
	nBlocks := 3 + rng.Intn(6)
	fuel := int32(50 + rng.Intn(400))
	a := asm.New(0x1000)
	a.Label("main")
	// Scratch buffer pointer in EDX (below the stack pointer).
	a.MovRR(isa.EDX, isa.ESP)
	a.SubRI(isa.EDX, 128)
	a.MovRI(isa.EBX, fuel)
	a.MovRI(isa.EAX, int32(rng.Intn(1<<16)))
	a.MovRI(isa.ESI, int32(rng.Intn(1<<16)))
	a.Jmp("b0")
	conds := []func(string){a.Je, a.Jne, a.Jl, a.Jle, a.Jg, a.Jge, a.Jb, a.Jbe, a.Ja, a.Jae}
	for bi := 0; bi < nBlocks; bi++ {
		a.Label(fmt.Sprintf("b%d", bi))
		// Fuel check first: every block entry burns one fuel unit.
		a.SubRI(isa.EBX, 1)
		a.CmpRI(isa.EBX, 0)
		a.Jle("done")
		nIns := 1 + rng.Intn(6)
		for k := 0; k < nIns; k++ {
			switch rng.Intn(8) {
			case 0:
				a.AddRI(isa.EAX, int32(rng.Intn(255)+1))
			case 1:
				a.XorRI(isa.EAX, int32(rng.Intn(1<<12)))
			case 2:
				a.MulRI(isa.EAX, int32(rng.Intn(13)+1))
			case 3:
				a.AddRR(isa.EAX, isa.ESI)
			case 4:
				a.SubRR(isa.ESI, isa.EAX)
			case 5:
				a.Store(asm.M(isa.EDX, int32(4*rng.Intn(8))), isa.EAX)
			case 6:
				a.Load(isa.ESI, asm.M(isa.EDX, int32(4*rng.Intn(8))))
			case 7:
				a.ShrRI(isa.EAX, int32(rng.Intn(5)))
			}
		}
		// Random conditional branch to a random block, then fall through to
		// the next block (or wrap to b0 from the last).
		a.CmpRI(isa.EAX, int32(rng.Intn(1<<10)))
		conds[rng.Intn(len(conds))](fmt.Sprintf("b%d", rng.Intn(nBlocks)))
		if bi == nBlocks-1 {
			a.Jmp("b0")
		} else {
			a.Jmp(fmt.Sprintf("b%d", bi+1))
		}
	}
	a.Label("done")
	// Publish the final state through the display so output is compared too.
	a.Store(asm.M(isa.EDX, 0), isa.EAX)
	a.Store(asm.M(isa.EDX, 4), isa.ESI)
	a.MovRR(isa.EAX, isa.EDX)
	a.MovRI(isa.ECX, 8)
	a.Sys(isa.SysWrite)
	a.MovRI(isa.EAX, 0)
	a.Sys(isa.SysExit)
	return a, nBlocks
}

// TestTraceDifferentialRandom is the fuzz/coverage contract enforcer: for
// randomized programs, the trace tier must be observationally identical to
// the per-step interpreter — same RunResult, same display output, same
// edge-coverage fingerprint (edges recorded per logical block entry, so
// superblocks change nothing). Runs each program under a generous budget and
// a tiny one (exercising the out-of-fuel path through fused sweeps).
func TestTraceDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1009))
	for trial := 0; trial < 120; trial++ {
		a, _ := buildRandomProgram(t, rng)
		code, labels, err := a.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		im := imageFor(code, labels)
		budgets := []uint64{1 << 40, uint64(20 + rng.Intn(300))}
		for _, maxSteps := range budgets {
			type obs struct {
				res     RunResult
				covHash uint64
				edges   int
			}
			runOne := func(threshold int) obs {
				cov := NewCoverage()
				v, err := New(Config{Image: im, Coverage: cov, MaxSteps: maxSteps, TraceThreshold: threshold})
				if err != nil {
					t.Fatal(err)
				}
				return obs{res: v.Run(), covHash: cov.Hash(), edges: cov.EdgeCount()}
			}
			off := runOne(TraceDisabled)
			for _, th := range []int{1, 2, 5} {
				on := runOne(th)
				if on.res.Outcome != off.res.Outcome || on.res.ExitCode != off.res.ExitCode ||
					on.res.Steps != off.res.Steps || on.res.Blocks != off.res.Blocks ||
					on.res.HookRuns != off.res.HookRuns ||
					!bytes.Equal(on.res.Output, off.res.Output) {
					t.Fatalf("trial %d budget %d threshold %d: results diverge\n jit: %+v\n int: %+v",
						trial, maxSteps, th, on.res, off.res)
				}
				if (on.res.Crash == nil) != (off.res.Crash == nil) {
					t.Fatalf("trial %d budget %d threshold %d: crash divergence: %v vs %v",
						trial, maxSteps, th, on.res.Crash, off.res.Crash)
				}
				if on.res.Crash != nil && (on.res.Crash.PC != off.res.Crash.PC || on.res.Crash.Reason != off.res.Crash.Reason) {
					t.Fatalf("trial %d budget %d threshold %d: crash detail divergence: %+v vs %+v",
						trial, maxSteps, th, on.res.Crash, off.res.Crash)
				}
				if on.covHash != off.covHash || on.edges != off.edges {
					t.Fatalf("trial %d budget %d threshold %d: coverage fingerprint diverges: %#x/%d vs %#x/%d",
						trial, maxSteps, th, on.covHash, on.edges, off.covHash, off.edges)
				}
			}
		}
	}
}

// TestTraceDifferentialHooked repeats the differential over hooked machines:
// with every instruction instrumented, superblocks route through the hooked
// block executors and hook run counts must match exactly.
func TestTraceDifferentialHooked(t *testing.T) {
	rng := rand.New(rand.NewSource(4099))
	for trial := 0; trial < 40; trial++ {
		a, _ := buildRandomProgram(t, rng)
		code, labels, err := a.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		im := imageFor(code, labels)
		runOne := func(threshold int) (RunResult, uint64, uint64) {
			var hooks uint64
			pl := pluginFunc{name: "difftrace", f: func(v *VM, blk *Block) {
				for i := range blk.Insts {
					blk.AddHook(i, PrioTrace, func(*Ctx) error {
						hooks++
						return nil
					})
				}
			}}
			cov := NewCoverage()
			v, err := New(Config{Image: im, Coverage: cov, MaxSteps: 1 << 40,
				TraceThreshold: threshold, Plugins: []Plugin{pl}})
			if err != nil {
				t.Fatal(err)
			}
			res := v.Run()
			return res, hooks, cov.Hash()
		}
		offRes, offHooks, offHash := runOne(TraceDisabled)
		onRes, onHooks, onHash := runOne(1)
		if onRes.Outcome != offRes.Outcome || onRes.Steps != offRes.Steps ||
			onRes.HookRuns != offRes.HookRuns || onHooks != offHooks ||
			!bytes.Equal(onRes.Output, offRes.Output) || onHash != offHash {
			t.Fatalf("trial %d: hooked differential diverges\n jit: %+v hooks=%d hash=%#x\n int: %+v hooks=%d hash=%#x",
				trial, onRes, onHooks, onHash, offRes, offHooks, offHash)
		}
	}
}
