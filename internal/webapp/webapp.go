// Package webapp builds the protected application: a page-rendering
// program (the analog of Firefox 1.0.0 in the Red Team exercise, §4.2)
// hand-assembled for the simulated ISA and shipped as a stripped binary.
//
// The application reads a stream of "web pages" from its input, renders
// each one to the display (its output stream), and exits when the input is
// exhausted. A page is a length-prefixed body of elements:
//
//	page    := [len u16le] [body len bytes]
//	element := [tag u8] payload...
//
//	0x01 TEXT   [len u8] [bytes...]                                (benign)
//	0x02 GIF    [w] [h] [extOff s8] [ext 4 bytes]                  (285595)
//	0x03 SCRIPT [op u8] args...                     (290162 295854 312278
//	                                                 269095 320182)
//	0x04 HOST   [len] [prio s8] [p1 p2 q1 q2 r1 r2] [bytes...]     (307259)
//	0x05 UNI    [count] [grow u32le] [data 2*count]                (325403)
//	0x06 STR    [total u8] [trailer u8] [9 data bytes]             (296134)
//	0x07 ARRA   [idx s8]                                           (311710a)
//	0x08 ARRB   [idx s8]                                           (311710b)
//	0x09 ARRC   [idx s8]                                           (311710c)
//	0x0A SCALE  [val] [bias]                                   (div-zero)
//	0x0B WALK   [cnt] [stride]                                (unaligned)
//	0x0C LOOP   [count] [step]                                (hang-loop)
//
// Each parenthesized number is the Firefox Bugzilla defect from the paper
// that the element's handler reproduces structurally (same error class,
// same propagation distance, same invariant that corrects it). See
// DESIGN.md for the defect-by-defect mapping. The last three elements are
// the extended failure classes beyond the paper's exercise — arithmetic
// faults and runaway loops, detected by FaultGuard and HangGuard (see
// internal/webapp/newelements.go).
//
// Register conventions: render_page passes EBX = element pointer and
// EBP = globals block to every handler; handlers return the number of
// consumed bytes in EAX and may clobber everything except EBP.
package webapp

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/image"
	"repro/internal/isa"
)

// Base is the load address of the application image.
const Base = 0x0040_0000

// PageBufSize is the fixed page buffer capacity; longer pages are
// truncated by the reader.
const PageBufSize = 256

// Globals block slot offsets (the block EBP points at).
const (
	GlobPageBuf  = 0  // page buffer (PageBufSize bytes)
	GlobObjTable = 4  // script object table (8 slots)
	GlobUniBuf   = 8  // static unicode buffer (64 bytes + header)
	GlobTableA   = 12 // widget table A (4 object pointers)
	GlobTableB   = 16 // widget table B
	GlobTableC   = 20 // widget table C
	GlobWordTab  = 24 // constant word table the WALK element scans (64 bytes)
)

// App is the built application plus the metadata test harnesses and the
// exploit builders use. Labels exist only for harness convenience —
// ClearView itself sees nothing but the stripped image.
type App struct {
	Image  *image.Image
	Labels map[string]uint32
	Layout Layout
}

// Layout records the deterministic startup heap layout. A real attacker
// derives the same addresses by heap grooming against the deterministic
// allocator; the exploit builders read them from here (documented attacker
// reconnaissance, not something ClearView consumes).
type Layout struct {
	Globals  uint32 // globals block
	PageBuf  uint32 // page buffer
	ObjTable uint32 // script object table
	UniBuf   uint32 // static unicode buffer
	TableA   uint32 // widget table A (the 311710a target)
	TableB   uint32
	TableC   uint32
	WordTab  uint32 // constant word table (the WALK element's scan target)
}

// heap layout constants mirroring internal/mem: a block of size s consumes
// 4 (front canary) + roundUp4(s) + 4 (rear canary) bytes of arena.
func nextAlloc(brk *uint32, size uint32) uint32 {
	size = (size + 3) &^ 3
	addr := *brk + 4
	*brk += size + 8
	return addr
}

// computeLayout replays the startup allocation sequence of the program
// below against the allocator's arithmetic.
func computeLayout(heapBase uint32) Layout {
	brk := heapBase
	var l Layout
	l.Globals = nextAlloc(&brk, 32)
	l.PageBuf = nextAlloc(&brk, PageBufSize)
	l.ObjTable = nextAlloc(&brk, 32)
	l.UniBuf = nextAlloc(&brk, 68)
	l.TableA = nextAlloc(&brk, 16)
	for i := 0; i < 4; i++ {
		nextAlloc(&brk, 16) // widget objects for table A
	}
	l.TableB = nextAlloc(&brk, 16)
	for i := 0; i < 4; i++ {
		nextAlloc(&brk, 16)
	}
	l.TableC = nextAlloc(&brk, 16)
	for i := 0; i < 4; i++ {
		nextAlloc(&brk, 16)
	}
	l.WordTab = nextAlloc(&brk, 64)
	return l
}

// Build assembles the application.
func Build() (*App, error) {
	a := asm.New(Base)
	emitMain(a)
	emitRenderPage(a)
	emitTextHandler(a)
	emitGifHandlers(a)
	emitScriptHandlers(a)
	emitHostHandler(a)
	emitUniHandler(a)
	emitStrHandler(a)
	emitArrHandlers(a)
	emitScaleHandler(a)
	emitWalkHandler(a)
	emitLoopHandler(a)
	code, labels, err := a.Assemble()
	if err != nil {
		return nil, fmt.Errorf("webapp: %w", err)
	}
	img := &image.Image{Base: Base, Entry: labels["main"], Code: code}
	if err := img.Validate(); err != nil {
		return nil, err
	}
	return &App{Image: img, Labels: labels, Layout: computeLayout(0x2000_0000)}, nil
}

// MustBuild is Build for tests and examples.
func MustBuild() *App {
	app, err := Build()
	if err != nil {
		panic(err)
	}
	return app
}

// signExtendByte widens the low byte of reg to a signed 32-bit value.
func signExtendByte(a *asm.Assembler, reg isa.Reg) {
	a.SextB(reg)
}

// emitMain assembles process startup and the page loop.
func emitMain(a *asm.Assembler) {
	a.Label("main")
	// Install the exception-handler record at the top of the stack
	// (Windows SEH analog; the record is application data and therefore
	// overwritable by a stack overflow — defect 296134's vector).
	a.SubRI(isa.ESP, 4)
	a.MovLabel(isa.ECX, "default_eh")
	a.Store(asm.M(isa.ESP, 0), isa.ECX)
	a.MovRR(isa.EAX, isa.ESP)
	a.Sys(isa.SysSetEH)

	// Allocate the globals block; EBP holds it for the process lifetime.
	a.MovRI(isa.EAX, 32)
	a.Sys(isa.SysAlloc)
	a.MovRR(isa.EBP, isa.EAX)

	// Page buffer.
	a.MovRI(isa.EAX, PageBufSize)
	a.Sys(isa.SysAlloc)
	a.Store(asm.M(isa.EBP, GlobPageBuf), isa.EAX)

	// Script object table (8 slots).
	a.MovRI(isa.EAX, 32)
	a.Sys(isa.SysAlloc)
	a.Store(asm.M(isa.EBP, GlobObjTable), isa.EAX)

	// Static unicode buffer: 4-byte capacity header + 64 data bytes.
	a.MovRI(isa.EAX, 68)
	a.Sys(isa.SysAlloc)
	a.Store(asm.M(isa.EBP, GlobUniBuf), isa.EAX)
	a.MovRI(isa.ECX, 64)
	a.Store(asm.M(isa.EAX, 0), isa.ECX)

	// Widget tables A/B/C, four widgets each (emitted below), then the
	// constant word table the WALK element scans: 16 words, every byte
	// 0x51, so aligned and misaligned reads alike observe one constant
	// value and the table contributes no data-dependent invariants.
	for i, slot := range []int32{GlobTableA, GlobTableB, GlobTableC} {
		a.MovRI(isa.EAX, 16)
		a.Sys(isa.SysAlloc)
		a.Store(asm.M(isa.EBP, slot), isa.EAX)
		a.MovRR(isa.ESI, isa.EAX) // table base
		for w := int32(0); w < 4; w++ {
			a.MovRI(isa.EAX, 16)
			a.Sys(isa.SysAlloc)
			a.MovRR(isa.EDI, isa.EAX)
			a.MovLabel(isa.ECX, "widget_show")
			a.Store(asm.M(isa.EDI, 0), isa.ECX) // vtable
			a.MovRI(isa.ECX, 3)
			a.Store(asm.M(isa.EDI, 4), isa.ECX) // type tag
			a.MovRI(isa.ECX, int32('0')+w+int32(i)*4)
			a.Store(asm.M(isa.EDI, 8), isa.ECX) // display datum
			a.Store(asm.M(isa.ESI, w*4), isa.EDI)
		}
	}

	a.MovRI(isa.EAX, 64)
	a.Sys(isa.SysAlloc)
	a.Store(asm.M(isa.EBP, GlobWordTab), isa.EAX)
	a.MovRR(isa.ESI, isa.EAX)
	a.MovRI(isa.ECX, 0x51515151)
	a.MovRI(isa.EDX, 0)
	a.Label("wordtab_fill")
	a.Store(asm.MX(isa.ESI, isa.EDX, 0, 0), isa.ECX)
	a.AddRI(isa.EDX, 4)
	a.CmpRI(isa.EDX, 64)
	a.Jl("wordtab_fill")

	a.Label("mainloop")
	a.Sys(isa.SysInAvail)
	a.CmpRI(isa.EAX, 0)
	a.Je("exit")
	// Read the 2-byte page length into the page buffer, then the body.
	a.Load(isa.EAX, asm.M(isa.EBP, GlobPageBuf))
	a.MovRR(isa.ESI, isa.EAX)
	a.MovRI(isa.ECX, 2)
	a.Sys(isa.SysRead)
	a.LoadB(isa.EDX, asm.M(isa.ESI, 0))
	a.LoadB(isa.ECX, asm.M(isa.ESI, 1))
	a.ShlRI(isa.ECX, 8)
	a.OrRR(isa.EDX, isa.ECX) // EDX = page length
	a.CmpRI(isa.EDX, PageBufSize)
	a.Jbe("lenok")
	a.MovRI(isa.EDX, PageBufSize)
	a.Label("lenok")
	a.MovRR(isa.EAX, isa.ESI)
	a.MovRR(isa.ECX, isa.EDX)
	a.Push(isa.EDX)
	a.Sys(isa.SysRead)
	a.Pop(isa.EDX)
	a.Call("render_page")
	a.Jmp("mainloop")

	a.Label("exit")
	a.MovRI(isa.EAX, 0)
	a.Sys(isa.SysExit)

	// The installed exception handler: report and exit abnormally.
	a.Label("default_eh")
	a.MovRI(isa.EAX, 1)
	a.Sys(isa.SysExit)
}

// emitRenderPage assembles the element loop. Locals: [ESP+0] = page
// length, [ESP+4] = cursor.
func emitRenderPage(a *asm.Assembler) {
	a.Label("render_page")
	a.SubRI(isa.ESP, 8)
	a.Store(asm.M(isa.ESP, 0), isa.EDX)
	a.MovRI(isa.ECX, 0)
	a.Store(asm.M(isa.ESP, 4), isa.ECX)

	a.Label("elloop")
	a.Load(isa.EDX, asm.M(isa.ESP, 0))
	a.Load(isa.ECX, asm.M(isa.ESP, 4))
	a.CmpRR(isa.ECX, isa.EDX)
	a.Jae("eldone")
	a.Load(isa.ESI, asm.M(isa.EBP, GlobPageBuf))
	a.Lea(isa.EBX, asm.MX(isa.ESI, isa.ECX, 0, 0)) // element pointer
	a.LoadB(isa.EAX, asm.M(isa.EBX, 0))            // tag

	type dispatch struct {
		tag     int32
		handler string
	}
	table := []dispatch{
		{0x01, "text_render"},
		{0x02, "gif_render"},
		{0x03, "script_render"},
		{0x04, "host_render"},
		{0x05, "uni_render"},
		{0x06, "str_render"},
		{0x07, "arr_a"},
		{0x08, "arr_b"},
		{0x09, "arr_c"},
		{0x0A, "scale_render"},
		{0x0B, "walk_render"},
		{0x0C, "loop_render"},
	}
	for _, d := range table {
		a.CmpRI(isa.EAX, d.tag)
		a.Jne(fmt.Sprintf("not_%02x", d.tag))
		a.Call(d.handler)
		a.Jmp("advance")
		a.Label(fmt.Sprintf("not_%02x", d.tag))
	}
	// Unknown tag: consume one byte.
	a.MovRI(isa.EAX, 1)

	a.Label("advance")
	// A handler that made no progress (returned 0) signals a malformed
	// element; the renderer abandons the rest of the page rather than
	// misparse attacker-controlled bytes. (This is also the graceful
	// caller behaviour that lets the return-from-procedure repair
	// succeed, as for the paper's exploit 269095.)
	a.CmpRI(isa.EAX, 0)
	a.Je("eldone")
	a.Load(isa.ECX, asm.M(isa.ESP, 4))
	a.AddRR(isa.ECX, isa.EAX)
	a.Store(asm.M(isa.ESP, 4), isa.ECX)
	a.Jmp("elloop")

	a.Label("eldone")
	a.AddRI(isa.ESP, 8)
	a.Ret()
}

// emitTextHandler assembles the benign TEXT element: copy up to 63 bytes
// into a scratch buffer and write it to the display.
func emitTextHandler(a *asm.Assembler) {
	a.Label("text_render")
	a.LoadB(isa.EDX, asm.M(isa.EBX, 1)) // len
	a.Push(isa.EDX)
	a.MovRI(isa.EAX, 64)
	a.Sys(isa.SysAlloc)
	a.MovRR(isa.EDI, isa.EAX)
	a.Pop(isa.EDX)
	a.MovRR(isa.ECX, isa.EDX)
	a.AndRI(isa.ECX, 63) // benign handlers clamp
	a.Lea(isa.ESI, asm.M(isa.EBX, 2))
	a.Push(isa.EDX)
	a.Push(isa.EDI)
	a.Push(isa.ECX)
	a.CopyB()
	a.Pop(isa.ECX)
	a.Pop(isa.EAX) // buffer
	a.Sys(isa.SysWrite)
	a.Pop(isa.EDX)
	// consumed = 2 + len
	a.MovRR(isa.EAX, isa.EDX)
	a.AddRI(isa.EAX, 2)
	a.Ret()
}
