// Command learn runs the invariant-learning phase over a page corpus and
// reports (or saves) the resulting database — the standalone analog of the
// Blue Team's pre-exercise learning run (§4.2.2).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/daikon"
	"repro/internal/redteam"
	"repro/internal/webapp"
)

func main() {
	expanded := flag.Bool("expanded", false, "use the §4.3.2 expanded corpus")
	out := flag.String("o", "", "write the serialized invariant database to this file")
	verbose := flag.Bool("v", false, "list every invariant")
	flag.Parse()

	if err := run(os.Stdout, *expanded, *verbose, *out); err != nil {
		fmt.Fprintln(os.Stderr, "learn:", err)
		os.Exit(1)
	}
}

// run performs the learning phase and writes the report to w; it is the
// whole command behind the flag parsing, so the golden tests drive it
// directly.
func run(w io.Writer, expanded, verbose bool, outFile string) error {
	app, err := webapp.Build()
	if err != nil {
		return err
	}
	corpus := redteam.LearningCorpus()
	name := "default (12 pages)"
	if expanded {
		corpus = redteam.ExpandedCorpus()
		name = "expanded"
	}
	db, stats, err := core.Learn(app.Image, core.LearnConfig{Inputs: [][]byte{corpus}})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "corpus: %s\n", name)
	fmt.Fprintf(w, "runs: %d (%d normal, %d discarded)\n", stats.Runs, stats.NormalRuns, stats.Discarded)
	fmt.Fprintf(w, "trace entries: %d\n", stats.Observations)
	counts := db.CountByKind()
	fmt.Fprintf(w, "invariants: %d total (one-of %d, lower-bound %d, less-than %d, nonzero %d, modulus %d, sp-offset %d)\n",
		db.Len(), counts[daikon.KindOneOf], counts[daikon.KindLowerBound],
		counts[daikon.KindLessThan], counts[daikon.KindNonzero],
		counts[daikon.KindModulus], counts[daikon.KindSPOffset])

	if verbose {
		for _, inv := range db.All() {
			fmt.Fprintf(w, "  %s\n", inv)
		}
	}
	if outFile != "" {
		raw, err := db.Marshal()
		if err != nil {
			return err
		}
		if err := os.WriteFile(outFile, raw, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "database written to %s (%d bytes)\n", outFile, len(raw))
	}
	return nil
}
