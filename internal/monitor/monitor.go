// Package monitor implements ClearView's failure detectors (§2.3):
//
//   - MemoryFirewall validates every indirect control flow transfer
//     (indirect calls and jumps, returns) and terminates the application
//     with a failure when the target lies outside the original code — the
//     program-shepherding defence against binary code injection.
//   - HeapGuard detects out-of-bounds heap writes using the allocator's
//     boundary canaries and allocation map.
//   - ShadowStack maintains an auxiliary call stack that survives
//     corruption of the native stack and gives ClearView the caller
//     procedures to search for correlated invariants.
//
// Monitors are deliberately conservative: they have no false positives.
// They are vm.Plugins; ShadowStack and the stateful guards carry per-run
// state and must be constructed fresh for each VM instance.
package monitor

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/vm"
)

// MemoryFirewall is the illegal-control-flow-transfer detector.
type MemoryFirewall struct{}

// NewMemoryFirewall returns a firewall monitor.
func NewMemoryFirewall() *MemoryFirewall { return &MemoryFirewall{} }

// Name implements vm.Plugin.
func (m *MemoryFirewall) Name() string { return "MemoryFirewall" }

// Instrument implements vm.Plugin: every indirect transfer is validated
// just before it executes. Because repair patches run at a lower priority,
// an enforced invariant that redirects the transfer is validated on the
// redirected target. The firewall also registers itself as the machine's
// transfer validator so that exception-handler dispatch (a control
// transfer that does not correspond to a decoded instruction) is subjected
// to the same program-shepherding policy.
func (m *MemoryFirewall) Instrument(v *vm.VM, b *vm.Block) {
	v.SetTransferValidator(func(pc, target uint32) *vm.Failure {
		if v.InCode(target) {
			return nil
		}
		return &vm.Failure{
			PC:      pc,
			Monitor: "MemoryFirewall",
			Kind:    "illegal control flow transfer",
			Detail:  fmt.Sprintf("exception dispatch to %#x", target),
			Target:  target,
		}
	})
	for i, in := range b.Insts {
		if !in.Op.IsIndirect() {
			continue
		}
		b.AddHook(i, vm.PrioMonitor, func(ctx *vm.Ctx) error {
			target, err := ctx.TransferTarget()
			if err != nil {
				// The transfer itself will fault; let the interpreter
				// turn it into a crash.
				return nil
			}
			if !ctx.VM.InCode(target) {
				return &vm.Failure{
					PC:      ctx.PC,
					Monitor: "MemoryFirewall",
					Kind:    "illegal control flow transfer",
					Detail:  fmt.Sprintf("%s to %#x", ctx.Inst.Op, target),
					Target:  target,
				}
			}
			return nil
		})
	}
}

// HeapGuard is the out-of-bounds heap write detector. It can be enabled
// and disabled while the application runs without perturbing execution
// (§2.3); when disabled its hooks are inert.
type HeapGuard struct {
	Enabled bool
}

// NewHeapGuard returns an enabled Heap Guard monitor.
func NewHeapGuard() *HeapGuard { return &HeapGuard{Enabled: true} }

// Name implements vm.Plugin.
func (h *HeapGuard) Name() string { return "HeapGuard" }

// Instrument implements vm.Plugin: every write into the heap arena is
// checked. If the written location currently holds the canary value, the
// allocation map disambiguates a legitimate in-bounds write of the canary
// value from an out-of-bounds write onto a block boundary.
func (h *HeapGuard) Instrument(_ *vm.VM, b *vm.Block) {
	for i, in := range b.Insts {
		switch {
		case in.Op.IsStore():
			b.AddHook(i, vm.PrioMonitor, func(ctx *vm.Ctx) error {
				if !h.Enabled {
					return nil
				}
				return h.checkWrite(ctx, ctx.EffAddr(), ctx.Inst.Op.String())
			})
		case in.Op == isa.COPYB:
			// A block copy is a sequence of byte writes; the guard scans
			// the destination range for the first boundary violation,
			// just as per-write instrumentation of rep movsb would.
			b.AddHook(i, vm.PrioMonitor, func(ctx *vm.Ctx) error {
				if !h.Enabled {
					return nil
				}
				dst := ctx.Reg(isa.EDI)
				count := ctx.Reg(isa.ECX)
				const scanCap = 1 << 20 // bound work on absurd counts
				if count > scanCap {
					count = scanCap
				}
				for off := uint32(0); off < count; off++ {
					if err := h.checkWrite(ctx, dst+off, "copyb"); err != nil {
						return err
					}
					if !ctx.VM.Heap.Contains(dst + off) {
						break // left the heap arena; faults handle the rest
					}
				}
				return nil
			})
		}
	}
}

// checkWrite applies the canary test to one written address.
func (h *HeapGuard) checkWrite(ctx *vm.Ctx, addr uint32, what string) error {
	heap := ctx.VM.Heap
	if !heap.Contains(addr) {
		return nil
	}
	word, err := ctx.VM.Mem.Read32(addr &^ 3)
	if err != nil || word != mem.Canary {
		return nil
	}
	if _, inBounds := heap.FindBlock(addr); inBounds {
		// A legitimate previous in-bounds write planted the canary
		// value; not an error.
		return nil
	}
	return &vm.Failure{
		PC:      ctx.PC,
		Monitor: "HeapGuard",
		Kind:    "out of bounds write",
		Detail:  fmt.Sprintf("%s hits canary", what),
		Target:  addr,
	}
}

// ShadowStack maintains the auxiliary procedure call stack (§2.3). It is
// both a vm.Plugin and a vm.StackProvider; Install wires it into a machine.
type ShadowStack struct {
	rets []uint32 // return addresses, outermost first
}

// NewShadowStack returns an empty shadow stack monitor.
func NewShadowStack() *ShadowStack { return &ShadowStack{} }

// Name implements vm.Plugin.
func (s *ShadowStack) Name() string { return "ShadowStack" }

// Install registers the shadow stack as the machine's stack provider.
func (s *ShadowStack) Install(v *vm.VM) { v.SetStackProvider(s) }

// Instrument implements vm.Plugin: calls push their return site, returns
// pop it. The instrumentation is inline with execution and imposes cost
// only on call/return instructions. The bookkeeping runs at a priority
// after the failure detectors so that a transfer Memory Firewall rejects is
// never accounted as having happened (the failing call is not yet on the
// stack; the failing return has not yet popped its frame).
func (s *ShadowStack) Instrument(_ *vm.VM, b *vm.Block) {
	const prioBookkeeping = vm.PrioMonitor + 5
	for i, in := range b.Insts {
		switch {
		case in.Op.IsCall():
			b.AddHook(i, prioBookkeeping, func(ctx *vm.Ctx) error {
				s.rets = append(s.rets, ctx.PC+isa.InstSize)
				return nil
			})
		case in.Op == isa.RET:
			b.AddHook(i, prioBookkeeping, func(ctx *vm.Ctx) error {
				if len(s.rets) > 0 {
					s.rets = s.rets[:len(s.rets)-1]
				}
				return nil
			})
		}
	}
}

// StackSnapshot implements vm.StackProvider: the return sites of the
// procedures on the stack, innermost caller first. Unlike the native
// stack, this survives stack-smashing corruption.
func (s *ShadowStack) StackSnapshot() []uint32 {
	out := make([]uint32, 0, len(s.rets))
	for i := len(s.rets) - 1; i >= 0; i-- {
		out = append(out, s.rets[i])
	}
	return out
}

// Depth returns the current call depth.
func (s *ShadowStack) Depth() int { return len(s.rets) }
