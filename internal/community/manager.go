package community

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/correlate"
	"repro/internal/daikon"
	"repro/internal/evaluate"
	"repro/internal/image"
	"repro/internal/isa"
	"repro/internal/repair"
	"repro/internal/replay"
	"repro/internal/vm"
)

// ManagerConfig assembles the central ClearView manager.
type ManagerConfig struct {
	Image *image.Image
	// Seed is an optional initial invariant database (e.g. a Blue-Team
	// pre-exercise learning run); node uploads merge into it.
	Seed *daikon.DB
	// BootstrapInputs populate the manager's CFG database: the manager
	// executes them locally once so it can resolve failure locations to
	// procedures when computing candidate invariants (the server holds
	// the same binary the community runs).
	BootstrapInputs [][]byte

	StackScope int
	CheckRuns  int
	Bonus      int
	// LearnShards splits the code range into this many tracing
	// assignments handed to nodes round-robin (§3.1 amortized learning);
	// 0 disables learning assignments.
	LearnShards int

	// ReplayWorkers enables the manager-side replay fast path: when a
	// node ships a failing-run recording (MsgRecording), the manager
	// replays it under the checking patches to complete the checking
	// phase immediately, then judges every candidate repair on a farm of
	// that many workers (<0 means GOMAXPROCS) before handing nodes
	// anything to evaluate live. 0 disables the fast path; recordings are
	// still retained.
	ReplayWorkers int
}

// caseState is the manager-side failure-location state machine, mirroring
// the single-machine pipeline in internal/core but driven by node reports.
type caseState struct {
	id    string
	pc    uint32
	state core.CaseState

	// phaseSeq is the directive sequence at which the case entered its
	// current phase; reports from runs under older directives did not
	// carry this phase's patches and are ignored for this case.
	phaseSeq uint64

	cands     []correlate.Candidate
	runs      []correlate.RunLog
	detected  int
	repairs   []*repair.Repair
	evaluator *evaluate.Evaluator
	current   *evaluate.Entry

	// assigned maps node IDs to the candidate repair each is evaluating
	// in the current phase — the §3 parallel repair evaluation ("the
	// community can evaluate candidate repairs in parallel, reducing the
	// time required to find a successful repair"). Once a repair is
	// adopted (StatePatched) every node runs the adopted one.
	assigned map[string]*evaluate.Entry
}

// assignFor picks the repair a node should evaluate: the node keeps its
// assignment within a phase; new nodes take the best not-yet-assigned
// candidate, wrapping around when there are more nodes than candidates.
func (c *caseState) assignFor(nodeID string) *evaluate.Entry {
	if c.state == core.StatePatched || c.evaluator == nil {
		return c.current
	}
	if e, ok := c.assigned[nodeID]; ok {
		return e
	}
	if c.assigned == nil {
		c.assigned = make(map[string]*evaluate.Entry)
	}
	ranked := c.evaluator.Ranked()
	if len(ranked) == 0 {
		return nil
	}
	taken := map[*evaluate.Entry]bool{}
	for _, e := range c.assigned {
		taken[e] = true
	}
	var pick *evaluate.Entry
	for _, e := range ranked {
		if !taken[e] && e.Failures == 0 {
			pick = e
			break
		}
	}
	if pick == nil {
		pick = ranked[0] // all assigned or all failed: share the best
	}
	c.assigned[nodeID] = pick
	return pick
}

// Manager is the central server: it owns the community invariant database,
// reacts to failure notifications, pushes checking and repair patches, and
// evaluates repairs from the community's reports (§3.2).
type Manager struct {
	conf  ManagerConfig
	mu    sync.Mutex
	inv   *daikon.DB
	cfgdb *cfg.DB
	cases map[uint32]*caseState
	order []uint32
	seq   uint64

	nodes     map[string]int // node id -> learning shard
	nextShard int
	uploads   int

	recordings map[uint32]*replay.Recording // latest failing recording per location
	replayRuns int

	messages int // envelopes handled
	batches  int // MsgBatch envelopes among them
}

// NewManager builds and bootstraps a manager.
func NewManager(conf ManagerConfig) (*Manager, error) {
	if conf.Image == nil {
		return nil, fmt.Errorf("community: nil image")
	}
	if conf.StackScope <= 0 {
		conf.StackScope = 1
	}
	if conf.CheckRuns <= 0 {
		conf.CheckRuns = 2
	}
	m := &Manager{
		conf:       conf,
		inv:        conf.Seed,
		cfgdb:      cfg.NewDB(conf.Image),
		cases:      make(map[uint32]*caseState),
		nodes:      make(map[string]int),
		recordings: make(map[uint32]*replay.Recording),
	}
	if m.inv == nil {
		m.inv = daikon.NewDB()
	}
	for _, input := range conf.BootstrapInputs {
		machine, err := vm.New(vm.Config{
			Image:   conf.Image,
			Plugins: []vm.Plugin{cfg.NewPlugin(m.cfgdb)},
			Input:   input,
		})
		if err != nil {
			return nil, err
		}
		machine.Run()
	}
	return m, nil
}

// InvariantCount returns the size of the community database.
func (m *Manager) InvariantCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inv.Len()
}

// Uploads returns how many learning uploads have been merged.
func (m *Manager) Uploads() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.uploads
}

// CaseStates returns the state of every failure case by location.
func (m *Manager) CaseStates() map[uint32]core.CaseState {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[uint32]core.CaseState, len(m.cases))
	for pc, c := range m.cases {
		out[pc] = c.state
	}
	return out
}

// Serve handles one node connection until it closes. Run it in a
// goroutine per connection (both transports support concurrent serving).
func (m *Manager) Serve(conn Conn) error {
	defer conn.Close()
	for {
		env, err := conn.Recv()
		if err != nil {
			return err
		}
		reply, err := m.handle(env)
		if err != nil {
			return err
		}
		if err := conn.Send(reply); err != nil {
			return err
		}
	}
}

func (m *Manager) handle(env Envelope) (Envelope, error) {
	m.mu.Lock()
	m.messages++
	m.mu.Unlock()
	switch env.Kind {
	case MsgHello:
		var h Hello
		if err := decodePayload(env.Payload, &h); err != nil {
			return Envelope{}, err
		}
		m.mu.Lock()
		if _, ok := m.nodes[h.NodeID]; !ok {
			shard := -1
			if m.conf.LearnShards > 0 {
				shard = m.nextShard % m.conf.LearnShards
				m.nextShard++
			}
			m.nodes[h.NodeID] = shard
		}
		m.mu.Unlock()
		return m.directivesFor(h.NodeID)
	case MsgLearnUpload:
		var up LearnUpload
		if err := decodePayload(env.Payload, &up); err != nil {
			return Envelope{}, err
		}
		if err := m.mergeLearnDB(up.DB); err != nil {
			return Envelope{}, err
		}
		return m.directivesFor(up.NodeID)
	case MsgRunReport:
		var rep RunReport
		if err := decodePayload(env.Payload, &rep); err != nil {
			return Envelope{}, err
		}
		m.processReport(&rep)
		return m.directivesFor(rep.NodeID)
	case MsgRecording:
		var up RecordingUpload
		if err := decodePayload(env.Payload, &up); err != nil {
			return Envelope{}, err
		}
		if err := m.ingestRecordings([][]byte{up.Recording}); err != nil {
			return Envelope{}, err
		}
		return m.directivesFor(up.NodeID)
	case MsgBatch:
		var b Batch
		if err := decodePayload(env.Payload, &b); err != nil {
			return Envelope{}, err
		}
		if err := m.handleBatch(&b); err != nil {
			return Envelope{}, err
		}
		return m.directivesFor(b.NodeID)
	default:
		return Envelope{}, fmt.Errorf("community: unexpected message %v", env.Kind)
	}
}

// mergeLearnDB folds one serialized node database into the community
// database.
func (m *Manager) mergeLearnDB(raw []byte) error {
	db, err := daikon.UnmarshalDB(raw)
	if err != nil {
		return err
	}
	m.mu.Lock()
	m.mergeDB(db)
	m.mu.Unlock()
	return nil
}

// mergeDB folds a decoded node database in. Called with m.mu held.
func (m *Manager) mergeDB(db *daikon.DB) {
	if m.inv.Len() == 0 && len(m.inv.VarsSeen) == 0 {
		m.inv = db
	} else {
		m.inv.Merge(db, daikon.DefaultMaxOneOf)
	}
	m.uploads++
}

// ingestRecordings stores failing-run recordings (latest wins per failure
// location) and runs the replay fast path once per distinct location —
// not once per recording, which is the batching win: a hundred nodes
// shipping the same deterministic failure cost one farm pass.
func (m *Manager) ingestRecordings(raws [][]byte) error {
	recs := make([]*replay.Recording, 0, len(raws))
	for _, raw := range raws {
		rec, err := replay.Unmarshal(raw)
		if err != nil {
			return err
		}
		recs = append(recs, rec)
	}
	m.mu.Lock()
	m.ingestDecoded(recs)
	m.mu.Unlock()
	return nil
}

// ingestDecoded stores decoded recordings and fast-paths each distinct
// failure location once. Called with m.mu held.
func (m *Manager) ingestDecoded(recs []*replay.Recording) {
	var pcs []uint32
	seen := make(map[uint32]bool)
	for _, rec := range recs {
		pc, ok := rec.FailurePC()
		if !ok {
			continue
		}
		m.recordings[pc] = rec
		if !seen[pc] {
			seen[pc] = true
			pcs = append(pcs, pc)
		}
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	for _, pc := range pcs {
		m.replayFastPath(pc)
	}
}

// handleBatch applies one node's batched activity: learning uploads
// first, then the run reports in execution order, then the recordings —
// the same sequencing RunOnce produces message by message, collapsed
// into one envelope. Every serialized payload is decoded up front, so a
// malformed batch is rejected whole rather than half-applied.
func (m *Manager) handleBatch(b *Batch) error {
	dbs := make([]*daikon.DB, 0, len(b.LearnDBs))
	for _, raw := range b.LearnDBs {
		db, err := daikon.UnmarshalDB(raw)
		if err != nil {
			return err
		}
		dbs = append(dbs, db)
	}
	recs := make([]*replay.Recording, 0, len(b.Recordings))
	for _, raw := range b.Recordings {
		rec, err := replay.Unmarshal(raw)
		if err != nil {
			return err
		}
		recs = append(recs, rec)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	m.batches++
	for _, db := range dbs {
		m.mergeDB(db)
	}
	for i := range b.Reports {
		m.processReportLocked(&b.Reports[i])
	}
	m.ingestDecoded(recs)
	return nil
}

// processReport advances every failure case with one node run, following
// the same rules as the single-machine pipeline.
func (m *Manager) processReport(rep *RunReport) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.processReportLocked(rep)
}

// processReportLocked is processReport's body. Called with m.mu held.
func (m *Manager) processReportLocked(rep *RunReport) {
	var failPC uint32
	if rep.Failure != nil {
		failPC = rep.Failure.PC
	}

	obsByFailure := map[string][]correlate.Observation{}
	for _, o := range rep.Observations {
		obsByFailure[o.FailureID] = append(obsByFailure[o.FailureID], o)
	}

	for _, pc := range m.order {
		c := m.cases[pc]
		if rep.Seq < c.phaseSeq {
			// The node ran without this phase's patches installed.
			continue
		}
		switch c.state {
		case core.StateChecking:
			detected := rep.Failure != nil && failPC == c.pc
			c.runs = append(c.runs, correlate.RunLog{
				Detected: detected,
				Obs:      obsByFailure[c.id],
			})
			if detected {
				c.detected++
			}
			if c.detected >= m.conf.CheckRuns {
				m.finishChecking(c)
			}
		case core.StateEvaluating, core.StatePatched:
			entry := c.assignFor(rep.NodeID)
			if entry == nil {
				break
			}
			id := entry.Repair.ID()
			failed := (rep.Failure != nil && failPC == c.pc) ||
				rep.Outcome == uint8(vm.OutcomeCrash) ||
				(rep.Outcome == uint8(vm.OutcomeExit) && rep.ExitCode != 0)
			switch {
			case failed && c.state == core.StatePatched:
				// The adopted, community-wide patch stopped working:
				// demote it and reopen the evaluation phase.
				c.evaluator.RecordFailure(id)
				m.redeploy(c)
			case failed:
				// One node's candidate failed. Only that node is
				// reassigned; peers evaluating other candidates in the
				// same round keep reporting (the §3 parallelism).
				c.evaluator.RecordFailure(id)
				delete(c.assigned, rep.NodeID)
				if c.evaluator.Exhausted() {
					c.state = core.StateUnrepaired
					c.current = nil
					c.assigned = nil
				} else {
					c.current = c.evaluator.Best()
				}
			default:
				c.evaluator.RecordSuccess(id)
				if c.state == core.StateEvaluating {
					// Adopt the repair that survived — possibly one a
					// peer node was evaluating, not the global best.
					c.state = core.StatePatched
					c.current = entry
					c.assigned = nil
				}
			}
		}
	}

	if rep.Failure != nil {
		if _, known := m.cases[failPC]; !known {
			m.openCase(rep.Failure)
		}
	}
}

func (m *Manager) openCase(f *FailureInfo) {
	m.seq++
	c := &caseState{
		id:       fmt.Sprintf("fail@%#x", f.PC),
		pc:       f.PC,
		state:    core.StateChecking,
		phaseSeq: m.seq,
	}
	c.cands = correlate.SelectCandidates(
		m.inv, m.cfgdb, f.PC, f.Stack,
		correlate.Config{StackScope: m.conf.StackScope},
	)
	if len(c.cands) == 0 {
		c.state = core.StateUnrepaired
	}
	m.cases[f.PC] = c
	m.order = append(m.order, f.PC)
}

func (m *Manager) finishChecking(c *caseState) {
	m.seq++
	c.phaseSeq = m.seq
	corr := correlate.Classify(c.runs)
	selected := correlate.SelectForRepair(c.cands, corr)
	c.repairs = repair.GenerateAll(selected, m.instAt, m.inv.SPOffsetAt)
	c.evaluator = evaluate.New(c.repairs, m.conf.Bonus)
	if c.evaluator.Len() == 0 {
		c.state = core.StateUnrepaired
		return
	}
	c.state = core.StateEvaluating
	c.current = c.evaluator.Best()
}

func (m *Manager) redeploy(c *caseState) {
	m.seq++
	c.phaseSeq = m.seq
	c.assigned = nil // new phase: reassign candidates to nodes
	if c.evaluator.Exhausted() {
		c.state = core.StateUnrepaired
		c.current = nil
		return
	}
	c.state = core.StateEvaluating
	c.current = c.evaluator.Best()
}

// replayFastPath advances the failure case at pc using its recording —
// the community mirror of internal/core's fast path. Called with m.mu
// held, after a recording arrives. While the case is checking, the
// manager replays the recording under the checking patches itself (it
// holds the same binary the community runs), filling the run log the
// nodes would otherwise take live executions to produce; once candidates
// exist, the farm judges all of them before any node is asked to
// evaluate one in production.
func (m *Manager) replayFastPath(pc uint32) {
	if m.conf.ReplayWorkers == 0 {
		return
	}
	c := m.cases[pc]
	rec := m.recordings[pc]
	if c == nil || rec == nil {
		return
	}
	if c.state == core.StateChecking {
		cs := correlate.BuildCheckSet(c.id, c.cands)
		for c.detected < m.conf.CheckRuns {
			cs.StartRun()
			res, err := rec.Replay(cs.Patches, c.id)
			if err != nil {
				return
			}
			obs := cs.DrainRun()
			if res.Failure == nil || res.Failure.PC != c.pc {
				return // replay does not reproduce: leave it to live runs
			}
			c.detected++
			c.runs = append(c.runs, correlate.RunLog{Detected: true, Obs: obs})
			m.replayRuns++
		}
		m.finishChecking(c)
	}
	if c.state != core.StateEvaluating || c.evaluator == nil || len(c.repairs) == 0 {
		return
	}
	m.farmSeed(c, rec)
}

// farmSeed judges every candidate repair against the recording and folds
// the verdicts into the evaluator, so nodes are only ever assigned
// repairs that survived the recorded failure. Opens a new phase: the
// candidate ranking changed, so in-flight reports must not be credited
// against the new assignments.
func (m *Manager) farmSeed(c *caseState, rec *replay.Recording) {
	workers := m.conf.ReplayWorkers
	if workers < 0 {
		workers = 0 // Farm interprets 0 as GOMAXPROCS
	}
	farm := &replay.Farm{Workers: workers}
	verdicts := farm.Evaluate(rec, c.id, c.repairs)
	replay.Apply(verdicts, c.evaluator)
	m.replayRuns += len(verdicts)
	m.seq++
	c.phaseSeq = m.seq
	c.assigned = nil
	if c.evaluator.Exhausted() {
		c.state = core.StateUnrepaired
		c.current = nil
		return
	}
	c.current = c.evaluator.Best()
}

// RecordingCount returns how many failure locations have a recording.
func (m *Manager) RecordingCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.recordings)
}

// ReplayRuns returns how many offline replays the fast path has executed.
func (m *Manager) ReplayRuns() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.replayRuns
}

// Messages returns how many envelopes the manager has handled — the cost
// the batching protocol amortizes.
func (m *Manager) Messages() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.messages
}

// Batches returns how many MsgBatch envelopes were among the messages.
func (m *Manager) Batches() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.batches
}

func (m *Manager) instAt(pc uint32) (isa.Inst, bool) {
	img := m.conf.Image
	if !img.Contains(pc) || pc+isa.InstSize > img.End() {
		return isa.Inst{}, false
	}
	in, err := isa.Decode(img.Code[pc-img.Base:])
	return in, err == nil
}

// directivesFor snapshots the current patch set for one node.
func (m *Manager) directivesFor(nodeID string) (Envelope, error) {
	m.mu.Lock()
	d := Directives{Seq: m.seq}
	for _, pc := range m.order {
		c := m.cases[pc]
		switch c.state {
		case core.StateChecking:
			for _, cand := range c.cands {
				d.Checks = append(d.Checks, CheckSpec{
					FailureID: c.id,
					Invariant: *cand.Inv,
				})
			}
		case core.StateEvaluating, core.StatePatched:
			if entry := c.assignFor(nodeID); entry != nil {
				r := entry.Repair
				d.Repairs = append(d.Repairs, RepairSpec{
					FailureID: c.id,
					Invariant: *r.Inv,
					Strategy:  r.Strategy,
					Value:     r.Value,
					SPDelta:   r.SPDelta,
					PC:        r.PC,
					Depth:     r.Depth,
				})
			}
		}
	}
	if shard, ok := m.nodes[nodeID]; ok && shard >= 0 && m.conf.LearnShards > 0 {
		span := (uint32(len(m.conf.Image.Code)) + uint32(m.conf.LearnShards) - 1) / uint32(m.conf.LearnShards)
		d.LearnLo = m.conf.Image.Base + span*uint32(shard)
		d.LearnHi = d.LearnLo + span
	}
	m.mu.Unlock()
	return NewEnvelope(MsgDirectives, d)
}
