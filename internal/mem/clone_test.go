package mem

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"sync"
	"testing"
)

// TestCloneIsolation is the core COW property: after a clone, writes on
// either side are invisible to the other, for randomized write sequences.
func TestCloneIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		m := New()
		m.Map(0x1000, 4*PageSize)
		for i := 0; i < 64; i++ {
			if err := m.Write32(0x1000+uint32(rng.Intn(4*PageSize-4)), rng.Uint32()); err != nil {
				t.Fatal(err)
			}
		}
		c := m.Clone()

		ref := func(src *Memory) []byte {
			b, err := src.ReadBytes(0x1000, 4*PageSize)
			if err != nil {
				t.Fatal(err)
			}
			return b
		}
		origBefore, cloneBefore := ref(m), ref(c)
		if !bytes.Equal(origBefore, cloneBefore) {
			t.Fatal("clone differs from original before any write")
		}

		// Mutate the clone: the original must not change.
		for i := 0; i < 32; i++ {
			if err := c.Write8(0x1000+uint32(rng.Intn(4*PageSize)), byte(rng.Intn(256))); err != nil {
				t.Fatal(err)
			}
		}
		if !bytes.Equal(ref(m), origBefore) {
			t.Fatal("mutating the clone leaked into the original")
		}

		// Mutate the original: the clone keeps its own view.
		cloneView := ref(c)
		for i := 0; i < 32; i++ {
			if err := m.Write8(0x1000+uint32(rng.Intn(4*PageSize)), byte(rng.Intn(256))); err != nil {
				t.Fatal(err)
			}
		}
		if !bytes.Equal(ref(c), cloneView) {
			t.Fatal("mutating the original leaked into the clone")
		}
	}
}

// TestCloneOfCloneChains verifies that chained clones stay independent.
func TestCloneOfCloneChains(t *testing.T) {
	m := New()
	m.Map(0, PageSize)
	if err := m.Write32(0, 0x11111111); err != nil {
		t.Fatal(err)
	}
	c1 := m.Clone()
	c2 := c1.Clone()
	if err := c1.Write32(0, 0x22222222); err != nil {
		t.Fatal(err)
	}
	if err := m.Write32(0, 0x33333333); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		m    *Memory
		want uint32
	}{{"orig", m, 0x33333333}, {"c1", c1, 0x22222222}, {"c2", c2, 0x11111111}} {
		got, err := tc.m.Read32(0)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("%s: got %#x want %#x", tc.name, got, tc.want)
		}
	}
}

// TestCloneDirtyPageCost verifies the O(dirty pages) property: only pages
// actually written after the clone are privatized.
func TestCloneDirtyPageCost(t *testing.T) {
	m := New()
	m.Map(0, 64*PageSize)
	c := m.Clone()
	for i := 0; i < 3; i++ {
		if err := c.Write8(uint32(i)*PageSize, 1); err != nil {
			t.Fatal(err)
		}
		// Second write to the same page must not copy again.
		if err := c.Write8(uint32(i)*PageSize+8, 2); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.CowBreaks(); got != 3 {
		t.Fatalf("clone privatized %d pages, want 3", got)
	}
	if got := m.CowBreaks(); got != 0 {
		t.Fatalf("original privatized %d pages, want 0", got)
	}
}

// TestConcurrentClones exercises the snapshot-fan-out pattern: many
// goroutines clone the same frozen Memory at once and write their clones.
// Run with -race to validate the synchronization contract.
func TestConcurrentClones(t *testing.T) {
	m := New()
	m.Map(0, 8*PageSize)
	if err := m.Write32(16, 0xABCD); err != nil {
		t.Fatal(err)
	}
	snap := m.Clone() // frozen source; only cloned below, never written
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := snap.Clone()
			for i := 0; i < 200; i++ {
				if err := c.Write32(uint32(i%8)*PageSize, uint32(w)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	got, err := snap.Read32(16)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0xABCD {
		t.Fatalf("snapshot corrupted by concurrent clone writers: %#x", got)
	}
}

// TestMemoryMarshalRoundTrip checks the wire format, including zero-page
// compression and mapped-but-zero pages surviving the trip.
func TestMemoryMarshalRoundTrip(t *testing.T) {
	m := New()
	m.Map(0x1000, 2*PageSize)
	m.Map(0x4000_0000, PageSize) // stays all-zero but must stay mapped
	if err := m.WriteBytes(0x1100, []byte("recording")); err != nil {
		t.Fatal(err)
	}
	raw, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Memory
	if err := back.UnmarshalBinary(raw); err != nil {
		t.Fatal(err)
	}
	if !back.Mapped(0x4000_0000) {
		t.Fatal("zero page lost its mapping")
	}
	got, err := back.ReadBytes(0x1100, 9)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "recording" {
		t.Fatalf("round trip corrupted data: %q", got)
	}
	if back.PageCount() != m.PageCount() {
		t.Fatalf("page count %d != %d", back.PageCount(), m.PageCount())
	}

	// A corrupt header claiming a huge page count must fail cleanly, not
	// attempt the allocation (recordings arrive over the network).
	hostile := make([]byte, 8)
	binary.LittleEndian.PutUint32(hostile, 0xFFFF_FFFF)
	if err := new(Memory).UnmarshalBinary(hostile); err == nil {
		t.Fatal("hostile page count accepted")
	}
}

// TestHeapStateRoundTrip verifies that a rebuilt heap continues allocating
// exactly where the captured one would have.
func TestHeapStateRoundTrip(t *testing.T) {
	m := New()
	h := NewHeap(m, 0x2000_0000, 0x10000)
	a, err := h.Alloc(32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	st := h.State()

	m2 := m.Clone()
	h2 := NewHeapFromState(m2, st)

	// LIFO recycling must resume identically on both heaps.
	r1, err := h.Alloc(32)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := h2.Alloc(32)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != a || r2 != a {
		t.Fatalf("recycle divergence: orig %#x rebuilt %#x want %#x", r1, r2, a)
	}
	n1, err := h.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := h2.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	if n1 != n2 {
		t.Fatalf("brk divergence: orig %#x rebuilt %#x", n1, n2)
	}
	if _, ok := h2.FindBlock(b); !ok {
		t.Fatal("live block lost across state round trip")
	}
	a1, f1 := h.Stats()
	a2, f2 := h2.Stats()
	if a1 != a2 || f1 != f2 {
		t.Fatalf("stats divergence: (%d,%d) vs (%d,%d)", a1, f1, a2, f2)
	}

	// The rebuilt heap writes through its own memory, not the original.
	if err := m2.Write32(b, 0xDEAD); err != nil {
		t.Fatal(err)
	}
	v, err := m.Read32(b)
	if err != nil {
		t.Fatal(err)
	}
	if v == 0xDEAD {
		t.Fatal("rebuilt heap's memory aliases the original")
	}
}
