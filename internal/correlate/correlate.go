// Package correlate implements correlated invariant identification (§2.4):
// given a failure location (and, when the Shadow Stack is enabled, the call
// stack), it selects candidate invariants from the learned database, builds
// patches that check them, and classifies each invariant's correlation with
// the failure from the observation sequences those patches produce.
package correlate

import (
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/daikon"
	"repro/internal/isa"
	"repro/internal/vm"
)

// Candidate is one invariant selected for checking against a failure.
type Candidate struct {
	Inv   *daikon.Invariant
	Proc  *cfg.Proc
	Frame uint32 // the frame instruction: failure PC (depth 0) or call site
	Depth int    // 0 = procedure containing the failure; 1 = its caller; ...
}

// Config controls candidate selection.
type Config struct {
	// StackScope is how many procedures on the call stack *that have
	// candidate invariants* to include, walking outward from the failure
	// procedure. The Red Team exercise ran with 1 ("only the lowest
	// procedure on the stack with invariants" — §4.3.2); widening it to 2
	// is the reconfiguration that fixed exploit 285595.
	StackScope int
	// DisableSameBlockRestriction lifts the §2.4.1 optimization that
	// admits two-variable invariants only from the frame instruction's
	// basic block (ablation knob: the restriction "substantially reduces
	// both the invariant checking overhead and the number of candidate
	// repairs").
	DisableSameBlockRestriction bool
}

// DefaultStackScope is the paper's Red Team configuration.
const DefaultStackScope = 1

// SelectCandidates returns the candidate correlated invariants for a
// failure at failPC with the given shadow-stack snapshot (return sites,
// innermost first; may be nil when the Shadow Stack is disabled).
//
// Per §2.4.1: at each frame, any invariant at a predominator of the frame
// instruction in the frame's procedure is a candidate, except that an
// invariant relating two variables must be checked inside the frame
// instruction's own basic block (the optimization that bounds checking
// overhead and repair count).
func SelectCandidates(db *daikon.DB, cfgdb *cfg.DB, failPC uint32, stack []uint32, conf Config) []Candidate {
	scope := conf.StackScope
	if scope <= 0 {
		scope = DefaultStackScope
	}
	frames := []uint32{failPC}
	for _, ret := range stack {
		frames = append(frames, ret-isa.InstSize) // the call site
	}

	var out []Candidate
	procsWithCandidates := 0
	for depth, frame := range frames {
		if procsWithCandidates >= scope {
			break
		}
		proc := cfgdb.ProcAt(frame)
		if proc == nil {
			continue
		}
		frameBlock := proc.BlockOf(frame)
		var frameCands []Candidate
		seen := map[string]bool{}
		for _, pred := range proc.Predominators(frame) {
			for _, inv := range db.At(pred) {
				if seen[inv.ID()] {
					continue
				}
				if inv.NumVars() == 2 && !conf.DisableSameBlockRestriction {
					// Two-variable invariants only from the frame
					// instruction's basic block.
					if frameBlock == nil || !frameBlock.Contains(inv.PC()) || inv.PC() > frame {
						continue
					}
				}
				seen[inv.ID()] = true
				frameCands = append(frameCands, Candidate{
					Inv: inv, Proc: proc, Frame: frame, Depth: depth,
				})
			}
		}
		if len(frameCands) > 0 {
			procsWithCandidates++
			out = append(out, frameCands...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Depth != out[j].Depth {
			return out[i].Depth < out[j].Depth
		}
		return out[i].Inv.ID() < out[j].Inv.ID()
	})
	return out
}

// Observation is one invariant-check result (§2.4.2): which invariant, for
// which failure campaign, and whether it was satisfied.
type Observation struct {
	InvID     string
	FailureID string
	Satisfied bool
}

// CheckSet is a deployed set of invariant-checking patches for one failure.
// The observations stream is split into runs by the driver: StartRun begins
// a fresh observation sequence, EndRun finalizes it with whether the
// monitored failure recurred in that run.
type CheckSet struct {
	FailureID string
	Cands     []Candidate
	Patches   []*vm.Patch

	// pending two-variable first-operand values, keyed by invariant ID.
	staged map[string]stagedVal

	curObs []Observation
	runs   []RunLog

	// Totals for the Table 3 "(violated/total checks)" accounting.
	TotalChecks     uint64
	TotalViolations uint64
}

type stagedVal struct {
	val   uint32
	valid bool
}

// RunLog is the per-run observation record used for classification.
type RunLog struct {
	Detected bool // the campaign's failure was detected in this run
	Obs      []Observation
}

// BuildCheckSet compiles checking patches for the candidates (§2.4.2).
// Patch IDs are prefixed with the failure ID so that concurrent campaigns
// for different failures never collide.
func BuildCheckSet(failureID string, cands []Candidate) *CheckSet {
	cs := &CheckSet{FailureID: failureID, Cands: cands, staged: make(map[string]stagedVal)}
	for _, c := range cands {
		inv := c.Inv
		switch inv.NumVars() {
		case 1:
			cs.Patches = append(cs.Patches, cs.oneVarPatch(inv))
		case 2:
			cs.Patches = append(cs.Patches, cs.twoVarPatches(inv)...)
		}
	}
	return cs
}

func (cs *CheckSet) record(inv *daikon.Invariant, satisfied bool) {
	cs.TotalChecks++
	if !satisfied {
		cs.TotalViolations++
	}
	cs.curObs = append(cs.curObs, Observation{
		InvID: inv.ID(), FailureID: cs.FailureID, Satisfied: satisfied,
	})
}

func (cs *CheckSet) oneVarPatch(inv *daikon.Invariant) *vm.Patch {
	return &vm.Patch{
		ID:   fmt.Sprintf("%s/check/%s", cs.FailureID, inv.ID()),
		Addr: inv.Var.PC,
		Prio: vm.PrioCheck,
		Hook: func(ctx *vm.Ctx) error {
			val, err := ctx.EvalSlot(int(inv.Var.Slot))
			if err != nil {
				return nil // the instruction is about to fault; no observation
			}
			cs.record(inv, inv.Holds(val, 0))
			return nil
		},
	}
}

// twoVarPatches builds the auxiliary patch that stages the first variable's
// value and the checking patch at the second instruction (§2.4.2). When
// both variables belong to one instruction a single patch suffices.
func (cs *CheckSet) twoVarPatches(inv *daikon.Invariant) []*vm.Patch {
	checkPC := inv.PC()
	if inv.Var.PC == inv.Var2.PC {
		return []*vm.Patch{{
			ID:   fmt.Sprintf("%s/check/%s", cs.FailureID, inv.ID()),
			Addr: checkPC,
			Prio: vm.PrioCheck,
			Hook: func(ctx *vm.Ctx) error {
				v1, err1 := ctx.EvalSlot(int(inv.Var.Slot))
				v2, err2 := ctx.EvalSlot(int(inv.Var2.Slot))
				if err1 != nil || err2 != nil {
					return nil
				}
				cs.record(inv, inv.Holds(v1, v2))
				return nil
			},
		}}
	}
	early, earlySlot := inv.Var, inv.Var.Slot
	late, lateSlot := inv.Var2, inv.Var2.Slot
	if late.PC < early.PC {
		early, late = late, early
		earlySlot, lateSlot = lateSlot, earlySlot
	}
	id := inv.ID()
	stage := &vm.Patch{
		ID:   fmt.Sprintf("%s/stage/%s", cs.FailureID, id),
		Addr: early.PC,
		Prio: vm.PrioCheck,
		Hook: func(ctx *vm.Ctx) error {
			val, err := ctx.EvalSlot(int(earlySlot))
			if err != nil {
				cs.staged[id] = stagedVal{}
				return nil
			}
			cs.staged[id] = stagedVal{val: val, valid: true}
			return nil
		},
	}
	check := &vm.Patch{
		ID:   fmt.Sprintf("%s/check/%s", cs.FailureID, id),
		Addr: late.PC,
		Prio: vm.PrioCheck,
		Hook: func(ctx *vm.Ctx) error {
			st := cs.staged[id]
			if !st.valid {
				return nil
			}
			lateVal, err := ctx.EvalSlot(int(lateSlot))
			if err != nil {
				return nil
			}
			v1, v2 := st.val, lateVal
			if early != inv.Var {
				v1, v2 = v2, v1
			}
			cs.record(inv, inv.Holds(v1, v2))
			return nil
		},
	}
	return []*vm.Patch{stage, check}
}

// StartRun begins a fresh observation sequence for one execution.
func (cs *CheckSet) StartRun() {
	cs.curObs = nil
	cs.staged = make(map[string]stagedVal)
}

// DrainRun returns and clears the current run's observations without
// classifying them locally. Community nodes use this to stream the
// observations to the central manager, which performs the classification
// (§3.2: the patches "generate a stream of invariant check observations
// that are sent back to the centralized ClearView manager").
func (cs *CheckSet) DrainRun() []Observation {
	obs := cs.curObs
	cs.curObs = nil
	return obs
}

// EndRun finalizes the current run's observations, recording whether the
// campaign's failure was detected during the run.
func (cs *CheckSet) EndRun(detected bool) {
	cs.runs = append(cs.runs, RunLog{Detected: detected, Obs: cs.curObs})
	cs.curObs = nil
}

// DetectedRuns returns how many recorded runs ended in the campaign's
// failure.
func (cs *CheckSet) DetectedRuns() int {
	n := 0
	for _, r := range cs.runs {
		if r.Detected {
			n++
		}
	}
	return n
}

// Runs returns the recorded run logs.
func (cs *CheckSet) Runs() []RunLog { return cs.runs }

// Correlation is the classification of §2.4.3.
type Correlation uint8

const (
	// NotCorrelated: always satisfied.
	NotCorrelated Correlation = iota
	// SlightlyCorrelated: violated at least once in at least one
	// failure-detecting run.
	SlightlyCorrelated
	// ModeratelyCorrelated: violated at the last check in every
	// failure-detecting run, with at least one additional violation in
	// some failure-detecting run.
	ModeratelyCorrelated
	// HighlyCorrelated: in every failure-detecting run, violated at the
	// last check and satisfied at every other check.
	HighlyCorrelated
)

func (c Correlation) String() string {
	switch c {
	case HighlyCorrelated:
		return "highly"
	case ModeratelyCorrelated:
		return "moderately"
	case SlightlyCorrelated:
		return "slightly"
	}
	return "not"
}

// Classify computes each invariant's correlation with the failure from the
// recorded run logs (§2.4.3). Only runs in which the failure was detected
// participate; an invariant that was never checked in some failing run
// cannot be highly or moderately correlated.
func Classify(runs []RunLog) map[string]Correlation {
	type perInv struct {
		// Per failing run: the satisfaction sequence.
		seqs [][]bool
	}
	invs := map[string]*perInv{}
	failingRuns := 0
	for _, r := range runs {
		if !r.Detected {
			continue
		}
		failingRuns++
		byInv := map[string][]bool{}
		for _, o := range r.Obs {
			byInv[o.InvID] = append(byInv[o.InvID], o.Satisfied)
		}
		for id, seq := range byInv {
			pi := invs[id]
			if pi == nil {
				pi = &perInv{}
				invs[id] = pi
			}
			for len(pi.seqs) < failingRuns-1 {
				pi.seqs = append(pi.seqs, nil) // runs where it was unchecked
			}
			pi.seqs = append(pi.seqs, seq)
		}
	}
	out := map[string]Correlation{}
	for id, pi := range invs {
		for len(pi.seqs) < failingRuns {
			pi.seqs = append(pi.seqs, nil)
		}
		violatedLastEveryRun := true
		extraViolation := false
		anyViolation := false
		for _, seq := range pi.seqs {
			if len(seq) == 0 || seq[len(seq)-1] {
				violatedLastEveryRun = false
			}
			for i, sat := range seq {
				if !sat {
					anyViolation = true
					if i != len(seq)-1 {
						extraViolation = true
					}
				}
			}
		}
		switch {
		case violatedLastEveryRun && !extraViolation:
			out[id] = HighlyCorrelated
		case violatedLastEveryRun:
			out[id] = ModeratelyCorrelated
		case anyViolation:
			out[id] = SlightlyCorrelated
		default:
			out[id] = NotCorrelated
		}
	}
	return out
}

// SelectForRepair applies §2.5's gating: if any invariant is highly
// correlated, repairs are generated only for highly correlated invariants;
// otherwise only for moderately correlated ones. The returned candidates
// preserve selection order.
func SelectForRepair(cands []Candidate, corr map[string]Correlation) []Candidate {
	pick := func(level Correlation) []Candidate {
		var out []Candidate
		for _, c := range cands {
			if corr[c.Inv.ID()] == level {
				out = append(out, c)
			}
		}
		return out
	}
	if high := pick(HighlyCorrelated); len(high) > 0 {
		return high
	}
	return pick(ModeratelyCorrelated)
}

// SelectAllCorrelated returns candidates for every correlated invariant
// (highly, moderately, and slightly) with no tier gating — the ablation
// baseline for the §2.5 gating policy.
func SelectAllCorrelated(cands []Candidate, corr map[string]Correlation) []Candidate {
	var out []Candidate
	for _, c := range cands {
		if corr[c.Inv.ID()] >= SlightlyCorrelated {
			out = append(out, c)
		}
	}
	return out
}
