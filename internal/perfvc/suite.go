package perfvc

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Class is a tolerance class: how much run-to-run noise a benchmark is
// expected to carry on top of its own observed sample spread. The class
// sets the relative tolerance the comparator applies to the baseline
// median; the baseline's min–max spread widens it further when the
// samples themselves were noisier than the class assumes.
type Class int

const (
	// ClassSteady is for tight microbenchmarks (fixed-iteration hot
	// loops): 25% relative tolerance.
	ClassSteady Class = iota
	// ClassMixed is for mid-size benchmarks with some setup in the
	// timed region: 40% relative tolerance.
	ClassMixed
	// ClassNoisy is for end-to-end pipeline benchmarks at few-iteration
	// benchtimes: 75% relative tolerance.
	ClassNoisy
)

// Tolerance is the class's relative tolerance on the baseline median.
func (c Class) Tolerance() float64 {
	switch c {
	case ClassSteady:
		return 0.25
	case ClassMixed:
		return 0.40
	default:
		return 0.75
	}
}

// String names the class for tables and docs.
func (c Class) String() string {
	switch c {
	case ClassSteady:
		return "steady"
	case ClassMixed:
		return "mixed"
	default:
		return "noisy"
	}
}

// Entry declares one canonical benchmark: the top-level Benchmark
// function name, the package it lives in, how long to sample it (full
// recording vs the short CI gate), its tolerance class, and which
// reported metrics gate the verdict vs ride along as context. This
// registry is the single source of truth the runner, the comparator,
// the docs, and the suite-drift test all read.
type Entry struct {
	// Name is the Benchmark function, e.g. "BenchmarkDispatchHot".
	Name string
	// Package is the go package path ("." = repo root).
	Package string
	// Benchtime is the -benchtime for `perfvc record` (full baselines).
	Benchtime string
	// CIBenchtime is the shorter -benchtime `perfvc ci` uses.
	CIBenchtime string
	// Class is the tolerance class.
	Class Class
	// Gate lists the metric units whose drift produces a verdict.
	// Defaults to ns/op when empty.
	Gate []string
	// Info lists metrics recorded for context but never gating
	// (deterministic counts like presentations or msgs, asserted
	// exactly by the test suite instead).
	Info []string
}

// GateMetrics is Entry.Gate with the ns/op default applied.
func (e *Entry) GateMetrics() []string {
	if len(e.Gate) == 0 {
		return []string{"ns/op"}
	}
	return e.Gate
}

// Exclusion names a Benchmark function deliberately outside the suite,
// with the reason the drift test shows when someone asks.
type Exclusion struct {
	// Name is the excluded Benchmark function.
	Name string
	// Package is the go package path it lives in.
	Package string
	// Reason explains why exclusion is correct. Never empty.
	Reason string
}

// Suite is a benchmark registry: the tracked entries plus the explicit
// exclusions. Registry() returns the repo's canonical one.
type Suite struct {
	// Entries are the tracked benchmarks.
	Entries []Entry
	// Excluded are the deliberately untracked benchmarks.
	Excluded []Exclusion
}

// Registry returns the repo's canonical benchmark suite. Every
// `func Benchmark*` in the repo must appear here — as an entry or an
// exclusion — or the suite-drift test fails the build.
func Registry() *Suite {
	return &Suite{
		Entries: []Entry{
			// internal/vm — the interpreter dispatch hot path (PR 3's
			// 17.8→115.9 MIPS is the number this suite exists to keep).
			{Name: "BenchmarkDispatchHot", Package: "./internal/vm", Benchtime: "200000x", CIBenchtime: "30000x",
				Class: ClassSteady, Gate: []string{"ns/op", "allocs/op", "MIPS"}, Info: []string{"instrs/op"}},
			{Name: "BenchmarkDispatchCoverage", Package: "./internal/vm", Benchtime: "200000x", CIBenchtime: "30000x",
				Class: ClassSteady, Gate: []string{"ns/op", "allocs/op", "MIPS"}, Info: []string{"instrs/op"}},
			{Name: "BenchmarkDispatchHooked", Package: "./internal/vm", Benchtime: "200000x", CIBenchtime: "30000x",
				Class: ClassSteady, Gate: []string{"ns/op", "allocs/op", "MIPS"}, Info: []string{"instrs/op"}},
			// The trace tier (PR 10): the same workloads pinned to the
			// superblock path with a threshold-1 warmup, so a regression in
			// trace recording or the fused sweep cannot hide behind the
			// default threshold's warmup fraction.
			{Name: "BenchmarkDispatchTraced", Package: "./internal/vm", Benchtime: "200000x", CIBenchtime: "30000x",
				Class: ClassSteady, Gate: []string{"ns/op", "allocs/op", "MIPS"}, Info: []string{"instrs/op"}},
			{Name: "BenchmarkDispatchHookedTraced", Package: "./internal/vm", Benchtime: "200000x", CIBenchtime: "30000x",
				Class: ClassSteady, Gate: []string{"ns/op", "allocs/op", "MIPS"}, Info: []string{"instrs/op"}},
			{Name: "BenchmarkCopyB", Package: "./internal/vm", Benchtime: "20000x", CIBenchtime: "5000x",
				Class: ClassSteady, Gate: []string{"ns/op", "allocs/op", "MB/s"}},

			// internal/mem — the page-table/TLB/COW memory hierarchy.
			{Name: "BenchmarkRead32", Package: "./internal/mem", Benchtime: "1000000x", CIBenchtime: "200000x",
				Class: ClassSteady, Gate: []string{"ns/op", "allocs/op"}},
			{Name: "BenchmarkWrite32", Package: "./internal/mem", Benchtime: "1000000x", CIBenchtime: "200000x",
				Class: ClassSteady, Gate: []string{"ns/op", "allocs/op"}},
			{Name: "BenchmarkWrite32AfterClone", Package: "./internal/mem", Benchtime: "1000000x", CIBenchtime: "200000x",
				Class: ClassSteady, Gate: []string{"ns/op", "allocs/op"}},
			{Name: "BenchmarkReadBytes4K", Package: "./internal/mem", Benchtime: "100000x", CIBenchtime: "20000x",
				Class: ClassSteady, Gate: []string{"ns/op", "MB/s"}},
			{Name: "BenchmarkWriteBytes4K", Package: "./internal/mem", Benchtime: "100000x", CIBenchtime: "20000x",
				Class: ClassSteady, Gate: []string{"ns/op", "MB/s"}},
			{Name: "BenchmarkMarshalRoundTrip", Package: "./internal/mem", Benchtime: "2000x", CIBenchtime: "300x",
				Class: ClassMixed, Gate: []string{"ns/op", "allocs/op", "MB/s"}},

			// Root package — the end-to-end paper tables and pipeline
			// primitives (timing gates; their deterministic count metrics
			// — presentations, survivors, msgs — are asserted exactly by
			// the test suite and ride along as Info).
			{Name: "BenchmarkTable1", Package: ".", Benchtime: "2x", CIBenchtime: "1x",
				Class: ClassNoisy, Info: []string{"presentations"}},
			{Name: "BenchmarkTable2", Package: ".", Benchtime: "2x", CIBenchtime: "1x",
				Class: ClassNoisy, Info: []string{"hook-runs"}},
			{Name: "BenchmarkLearningOff", Package: ".", Benchtime: "2x", CIBenchtime: "1x", Class: ClassNoisy},
			{Name: "BenchmarkLearningOn", Package: ".", Benchtime: "2x", CIBenchtime: "1x",
				Class: ClassNoisy, Info: []string{"trace-entries"}},
			// CI keeps the full 500x here: a 100x run is warmup-dominated
			// (~1.7x the amortized per-op cost) and the sample is cheap.
			{Name: "BenchmarkSnapshotClone", Package: ".", Benchtime: "500x", CIBenchtime: "500x",
				Class: ClassMixed, Gate: []string{"ns/op", "allocs/op"}, Info: []string{"pages"}},
			{Name: "BenchmarkReplayFarm", Package: ".", Benchtime: "2x", CIBenchtime: "1x",
				Class: ClassNoisy, Info: []string{"survivors"}},
			// The community soak arm: convergence topology cost at 12
			// nodes across per-message / batched / hierarchical modes.
			{Name: "BenchmarkCommunitySoak", Package: ".", Benchtime: "2x", CIBenchtime: "1x",
				Class: ClassNoisy, Info: []string{"msgs", "replays"}},
			// The discrete-event simulator arm: scheduler + wire-cache
			// cost for a 2k-node hierarchical campaign with churn and
			// adversaries (the counts are deterministic; timing is the
			// tracked surface).
			{Name: "BenchmarkSimSoak", Package: ".", Benchtime: "2x", CIBenchtime: "1x",
				Class: ClassNoisy, Info: []string{"events", "msgs", "memo-hits"}},
		},
		Excluded: []Exclusion{
			{Name: "BenchmarkTable3", Package: ".",
				Reason: "reports the deterministic Table 3 count columns (checks built/run, violations, repairs); the counts are asserted exactly by internal/redteam's table3 tests and its timing duplicates BenchmarkTable1's per-exploit runs"},
			{Name: "BenchmarkPatchGenerationTime", Package: ".",
				Reason: "an aggregate re-run of BenchmarkTable1's exploits whose metric (mean-presentations) is deterministic and asserted by the redteam tests; tracking it would double-count Table1's timing"},
			{Name: "BenchmarkAblationSameBlock", Package: ".",
				Reason: "design ablation reporting a deterministic candidate count, not a timing surface"},
			{Name: "BenchmarkAblationDupElim", Package: ".",
				Reason: "design ablation reporting deterministic invariant/trace-entry counts, not a timing surface"},
			{Name: "BenchmarkAblationPointerHeuristic", Package: ".",
				Reason: "design ablation reporting a deterministic invariant count, not a timing surface"},
			{Name: "BenchmarkAblationCorrelationGate", Package: ".",
				Reason: "design ablation reporting a deterministic invariants-to-repair count, not a timing surface"},
			{Name: "BenchmarkAblationRepairOrder", Package: ".",
				Reason: "design ablation reporting deterministic unsuccessful-run/presentation counts, not a timing surface"},
			{Name: "BenchmarkCommunityProtection", Package: ".",
				Reason: "single-victim community round trip subsumed by BenchmarkCommunitySoak's per-message arm, which times the same protocol at community scale"},
		},
	}
}

// EntryFor resolves a benchmark result name (possibly a sub-benchmark
// like "BenchmarkTable1/290162") to its registry entry, or nil.
func (s *Suite) EntryFor(name string) *Entry {
	top := name
	if i := strings.IndexByte(top, '/'); i >= 0 {
		top = top[:i]
	}
	for i := range s.Entries {
		if s.Entries[i].Name == top {
			return &s.Entries[i]
		}
	}
	return nil
}

// group is one `go test -bench` invocation: every entry of a package
// that shares a benchtime.
type group struct {
	pkg       string
	benchtime string
	names     []string
}

// groups partitions the suite into invocations, preserving declaration
// order, using CI benchtimes when ci is set.
func (s *Suite) groups(ci bool) []group {
	var out []group
	idx := map[string]int{}
	for _, e := range s.Entries {
		bt := e.Benchtime
		if ci && e.CIBenchtime != "" {
			bt = e.CIBenchtime
		}
		key := e.Package + "\x00" + bt
		i, ok := idx[key]
		if !ok {
			i = len(out)
			idx[key] = i
			out = append(out, group{pkg: e.Package, benchtime: bt})
		}
		out[i].names = append(out[i].names, e.Name)
	}
	return out
}

// benchRegexFunc is the `func Benchmark*` declaration the drift scan
// looks for — the same shape `go test` itself discovers.
var benchRegexFunc = regexp.MustCompile(`(?m)^func (Benchmark\w+)\(\w+ \*testing\.B\)`)

// RepoBenchmarks scans every *_test.go under root (skipping .git and
// testdata) for top-level Benchmark functions and returns each mapped to
// the go package path it lives in ("." or "./<dir>"). The suite-drift
// test compares this against the registry so a new benchmark cannot
// silently escape regression tracking.
func RepoBenchmarks(root string) (map[string]string, error) {
	found := map[string]string{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		pkg := "."
		if rel != "." {
			pkg = "./" + filepath.ToSlash(rel)
		}
		for _, m := range benchRegexFunc.FindAllStringSubmatch(string(raw), -1) {
			if prev, dup := found[m[1]]; dup && prev != pkg {
				return fmt.Errorf("benchmark %s declared in both %s and %s", m[1], prev, pkg)
			}
			found[m[1]] = pkg
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return found, nil
}

// Check validates the registry against the repo's actual benchmarks:
// every discovered Benchmark function must be registered or excluded
// (with a reason), every registered/excluded name must still exist in
// the declared package, and nothing may be both. It returns every
// violation, not just the first.
func (s *Suite) Check(repo map[string]string) []error {
	var errs []error
	registered := map[string]*Entry{}
	for i := range s.Entries {
		e := &s.Entries[i]
		if _, dup := registered[e.Name]; dup {
			errs = append(errs, fmt.Errorf("%s registered twice", e.Name))
		}
		registered[e.Name] = e
	}
	excluded := map[string]*Exclusion{}
	for i := range s.Excluded {
		x := &s.Excluded[i]
		if x.Reason == "" {
			errs = append(errs, fmt.Errorf("exclusion %s has no reason", x.Name))
		}
		if _, dup := excluded[x.Name]; dup {
			errs = append(errs, fmt.Errorf("%s excluded twice", x.Name))
		}
		if _, both := registered[x.Name]; both {
			errs = append(errs, fmt.Errorf("%s is both registered and excluded", x.Name))
		}
		excluded[x.Name] = x
	}
	var names []string
	for name := range repo {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pkg := repo[name]
		switch {
		case registered[name] != nil:
			if registered[name].Package != pkg {
				errs = append(errs, fmt.Errorf("%s is registered in package %s but declared in %s",
					name, registered[name].Package, pkg))
			}
		case excluded[name] != nil:
			if excluded[name].Package != pkg {
				errs = append(errs, fmt.Errorf("%s is excluded for package %s but declared in %s",
					name, excluded[name].Package, pkg))
			}
		default:
			errs = append(errs, fmt.Errorf(
				"%s (in %s) is neither in the perfvc suite registry nor explicitly excluded — register it in internal/perfvc/suite.go or exclude it with a reason",
				name, pkg))
		}
	}
	for name, e := range registered {
		if repo[name] == "" {
			errs = append(errs, fmt.Errorf("registered benchmark %s (package %s) no longer exists", name, e.Package))
		}
	}
	for name, x := range excluded {
		if repo[name] == "" {
			errs = append(errs, fmt.Errorf("excluded benchmark %s (package %s) no longer exists — drop the stale exclusion", name, x.Package))
		}
	}
	return errs
}
