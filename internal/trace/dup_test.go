package trace

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/daikon"
	"repro/internal/isa"
	"repro/internal/vm"
)

// observedVars runs one program under the recorder and returns the set of
// variables that produced observations.
func observedVars(t *testing.T, build func(a *asm.Assembler)) map[daikon.VarID]bool {
	t.Helper()
	im, _ := buildImage(t, build)
	eng := daikon.NewEngine()
	rec := NewRecorder(eng)
	machine, err := vm.New(vm.Config{Image: im, Plugins: []vm.Plugin{rec}})
	if err != nil {
		t.Fatal(err)
	}
	if res := machine.Run(); res.Outcome != vm.OutcomeExit {
		t.Fatalf("run: %+v", res)
	}
	rec.CommitRun()
	db := eng.Finalize(daikon.Options{})
	out := map[daikon.VarID]bool{}
	for v := range db.VarsSeen {
		out[v] = true
	}
	return out
}

func TestDupElimSkipsRegisterCopies(t *testing.T) {
	// After MOVRR ECX, EDX, a later read of ECX in the same block is a
	// known copy: only the MOVRR's regB observation survives.
	var use, use2 uint32
	vars := observedVars(t, func(a *asm.Assembler) {
		a.Label("main")
		a.MovRI(isa.EDX, 7)
		a.MovRR(isa.ECX, isa.EDX) // first observation of EDX's value
		use = a.PC()
		a.MovRR(isa.EBX, isa.ECX) // ECX is a known copy: skipped
		use2 = a.PC()
		a.MovRR(isa.ESI, isa.EDX) // EDX unchanged: also a known copy
		a.MovRI(isa.EAX, 0)
		a.Sys(isa.SysExit)
	})
	if vars[daikon.VarID{PC: use, Slot: 0}] {
		t.Error("copy of a copied register observed")
	}
	if vars[daikon.VarID{PC: use2, Slot: 0}] {
		t.Error("unmodified register re-observed")
	}
}

func TestDupElimInvalidatedByArithmetic(t *testing.T) {
	// An arithmetic write breaks the copy chain: the next read is a fresh
	// variable (this is what preserves the sign-extended/offset values the
	// repairs need).
	var use uint32
	vars := observedVars(t, func(a *asm.Assembler) {
		a.Label("main")
		a.MovRI(isa.EDX, 7)
		a.MovRR(isa.ECX, isa.EDX)
		a.AddRI(isa.EDX, 1) // invalidates EDX
		use = a.PC()
		a.MovRR(isa.EBX, isa.EDX) // fresh value: observed
		a.MovRI(isa.EAX, 0)
		a.Sys(isa.SysExit)
	})
	if !vars[daikon.VarID{PC: use, Slot: 0}] {
		t.Error("post-arithmetic value not observed")
	}
}

func TestDupElimInvalidatedBySextB(t *testing.T) {
	// The movsx idiom: the raw byte and its sign extension are distinct
	// variables. (The dynamic always-equal heuristic would wrongly merge
	// them, since they agree on every non-negative sample.)
	var use uint32
	vars := observedVars(t, func(a *asm.Assembler) {
		a.Label("main")
		a.MovRI(isa.EAX, 8)
		a.Sys(isa.SysAlloc)
		a.MovRR(isa.ESI, isa.EAX)
		a.LoadB(isa.EDX, asm.M(isa.ESI, 0)) // raw byte observed (memval)
		a.SextB(isa.EDX)                    // reads EDX: known copy, skipped
		use = a.PC()
		a.MovRR(isa.ECX, isa.EDX) // sign-extended value: fresh, observed
		a.MovRI(isa.EAX, 0)
		a.Sys(isa.SysExit)
	})
	if !vars[daikon.VarID{PC: use, Slot: 0}] {
		t.Error("sign-extended value eliminated as a duplicate")
	}
}

func TestDupElimResetsAcrossBlocks(t *testing.T) {
	// The analysis is per-block (conservative): the same register value
	// re-read in a different basic block is a fresh variable.
	var use uint32
	vars := observedVars(t, func(a *asm.Assembler) {
		a.Label("main")
		a.MovRI(isa.EDX, 7)
		a.MovRR(isa.ECX, isa.EDX)
		a.CmpRI(isa.EDX, 0) // known copy: the compare's read is skipped
		a.Je("next")        // ends the block
		a.Label("next")
		use = a.PC()
		a.MovRR(isa.EBX, isa.EDX) // new block: observed again
		a.MovRI(isa.EAX, 0)
		a.Sys(isa.SysExit)
	})
	if !vars[daikon.VarID{PC: use, Slot: 0}] {
		t.Error("cross-block value wrongly treated as duplicate")
	}
}

func TestDupElimDisabledKeepsEverything(t *testing.T) {
	im, labels := buildImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.MovRI(isa.EDX, 7)
		a.MovRR(isa.ECX, isa.EDX)
		a.Label("use")
		a.MovRR(isa.EBX, isa.ECX)
		a.MovRI(isa.EAX, 0)
		a.Sys(isa.SysExit)
	})
	eng := daikon.NewEngine()
	rec := NewRecorder(eng)
	rec.DisableDupElim = true
	machine, err := vm.New(vm.Config{Image: im, Plugins: []vm.Plugin{rec}})
	if err != nil {
		t.Fatal(err)
	}
	machine.Run()
	rec.CommitRun()
	db := eng.Finalize(daikon.Options{})
	if _, ok := db.VarsSeen[daikon.VarID{PC: labels["use"], Slot: 0}]; !ok {
		t.Error("ablation knob did not keep the duplicate observation")
	}
}

func TestDupElimLoadEstablishesCopy(t *testing.T) {
	// A register read immediately after its LOAD duplicates the load's
	// memval slot.
	var use uint32
	vars := observedVars(t, func(a *asm.Assembler) {
		a.Label("main")
		a.MovRI(isa.EAX, 8)
		a.Sys(isa.SysAlloc)
		a.MovRR(isa.ESI, isa.EAX)
		a.MovRI(isa.ECX, 5)
		a.Store(asm.M(isa.ESI, 0), isa.ECX)
		a.Load(isa.EDX, asm.M(isa.ESI, 0))
		use = a.PC()
		a.MovRR(isa.EBX, isa.EDX) // copy of the loaded value: skipped
		a.MovRI(isa.EAX, 0)
		a.Sys(isa.SysExit)
	})
	if vars[daikon.VarID{PC: use, Slot: 0}] {
		t.Error("loaded-value copy observed")
	}
}
