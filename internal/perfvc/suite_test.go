package perfvc

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// checkSuite is a small registry for drift-guard mechanism tests.
func checkSuite() *Suite {
	return &Suite{
		Entries: []Entry{
			{Name: "BenchmarkA", Package: ".", Benchtime: "2x", CIBenchtime: "1x"},
			{Name: "BenchmarkB", Package: "./internal/x", Benchtime: "100x", CIBenchtime: "10x"},
		},
		Excluded: []Exclusion{
			{Name: "BenchmarkC", Package: ".", Reason: "deterministic count, not a timing surface"},
		},
	}
}

// errsContaining reports whether any error message contains every want.
func errsContaining(errs []error, wants ...string) bool {
	for _, err := range errs {
		ok := true
		for _, w := range wants {
			if !strings.Contains(err.Error(), w) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// TestSuiteCheckMechanism drives Check over synthetic repo scans: the
// happy path, an unregistered benchmark, stale entries and exclusions,
// package mismatches, and registry self-consistency violations.
func TestSuiteCheckMechanism(t *testing.T) {
	clean := map[string]string{
		"BenchmarkA": ".", "BenchmarkB": "./internal/x", "BenchmarkC": ".",
	}
	if errs := checkSuite().Check(clean); len(errs) != 0 {
		t.Fatalf("clean repo produced violations: %v", errs)
	}

	t.Run("unregistered benchmark", func(t *testing.T) {
		repo := map[string]string{
			"BenchmarkA": ".", "BenchmarkB": "./internal/x", "BenchmarkC": ".",
			"BenchmarkSneaky": "./internal/x",
		}
		errs := checkSuite().Check(repo)
		if len(errs) != 1 || !errsContaining(errs, "BenchmarkSneaky", "neither", "suite.go") {
			t.Fatalf("errs = %v", errs)
		}
	})

	t.Run("stale registration and exclusion", func(t *testing.T) {
		errs := checkSuite().Check(map[string]string{"BenchmarkA": "."})
		if !errsContaining(errs, "BenchmarkB", "no longer exists") {
			t.Errorf("missing stale-entry violation: %v", errs)
		}
		if !errsContaining(errs, "BenchmarkC", "stale exclusion") {
			t.Errorf("missing stale-exclusion violation: %v", errs)
		}
		if len(errs) != 2 {
			t.Errorf("want exactly 2 violations, got %v", errs)
		}
	})

	t.Run("package moved", func(t *testing.T) {
		repo := map[string]string{
			"BenchmarkA": "./moved", "BenchmarkB": "./internal/x", "BenchmarkC": "./moved",
		}
		errs := checkSuite().Check(repo)
		if !errsContaining(errs, "BenchmarkA", "registered in package .", "./moved") {
			t.Errorf("missing moved-entry violation: %v", errs)
		}
		if !errsContaining(errs, "BenchmarkC", "excluded for package .", "./moved") {
			t.Errorf("missing moved-exclusion violation: %v", errs)
		}
	})

	t.Run("registry self-consistency", func(t *testing.T) {
		bad := checkSuite()
		bad.Entries = append(bad.Entries, bad.Entries[0])                                             // duplicate
		bad.Excluded = append(bad.Excluded, Exclusion{Name: "BenchmarkA"})                            // both + no reason
		bad.Excluded = append(bad.Excluded, Exclusion{Name: "BenchmarkD", Package: ".", Reason: "x"}) // stale
		errs := bad.Check(clean)
		for _, want := range []string{"registered twice", "no reason", "both registered and excluded", "BenchmarkD"} {
			if !errsContaining(errs, want) {
				t.Errorf("missing %q violation: %v", want, errs)
			}
		}
	})
}

// TestRepoBenchmarksScan exercises the filesystem scan on a synthetic
// tree: package mapping, testdata/.git skipping, non-test files ignored,
// and helper functions that merely mention *testing.B not matched.
func TestRepoBenchmarksScan(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// The fixture sources are single-line escaped strings so this test
	// file itself carries no column-0 `func Benchmark` lines for the real
	// repo-wide drift scan to trip over.
	write("root_test.go", "package main\n\nimport \"testing\"\n\n"+
		"func BenchmarkRoot(b *testing.B) {}\n\n"+
		"func helperBench(b *testing.B) {} // not top-level Benchmark*\n")
	write("internal/x/x_test.go", "package x\n\nimport \"testing\"\n\n"+
		"func BenchmarkInner(b *testing.B) {}\nfunc TestSomething(t *testing.T) {}\n")
	write("internal/x/x.go", "package x\n\n"+
		"// func BenchmarkFake(b *testing.B) {} — in a non-test file, ignored\n")
	write("testdata/captured_test.go", "package ignored\n\n"+
		"func BenchmarkCaptured(b *testing.B) {}\n")
	write(".git/objects/junk_test.go", "func BenchmarkGitJunk(b *testing.B) {}\n")

	found, err := RepoBenchmarks(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"BenchmarkRoot": ".", "BenchmarkInner": "./internal/x"}
	if len(found) != len(want) {
		t.Fatalf("found = %v, want %v", found, want)
	}
	for name, pkg := range want {
		if found[name] != pkg {
			t.Errorf("%s = %q, want %q", name, found[name], pkg)
		}
	}
}

// TestSuiteGroups pins the invocation batching: entries sharing a
// package and benchtime run in one `go test -bench` call, and the CI
// flag swaps in the short benchtimes.
func TestSuiteGroups(t *testing.T) {
	s := &Suite{Entries: []Entry{
		{Name: "BenchmarkA", Package: ".", Benchtime: "2x", CIBenchtime: "1x"},
		{Name: "BenchmarkB", Package: ".", Benchtime: "2x", CIBenchtime: "1x"},
		{Name: "BenchmarkC", Package: ".", Benchtime: "500x", CIBenchtime: "100x"},
		{Name: "BenchmarkD", Package: "./internal/x", Benchtime: "2x"},
	}}
	full := s.groups(false)
	if len(full) != 3 {
		t.Fatalf("full groups = %d, want 3", len(full))
	}
	if full[0].pkg != "." || full[0].benchtime != "2x" || len(full[0].names) != 2 {
		t.Errorf("group 0 = %+v", full[0])
	}
	ci := s.groups(true)
	if ci[0].benchtime != "1x" || ci[1].benchtime != "100x" {
		t.Errorf("ci benchtimes = %s, %s", ci[0].benchtime, ci[1].benchtime)
	}
	// No CIBenchtime declared: the full benchtime carries over.
	if ci[2].benchtime != "2x" {
		t.Errorf("ci fallback benchtime = %s, want 2x", ci[2].benchtime)
	}
}

// TestEntryForSubBench pins sub-benchmark resolution and the ns/op
// default gate.
func TestEntryForSubBench(t *testing.T) {
	s := Registry()
	e := s.EntryFor("BenchmarkReplayFarm/Sequential-30candidates")
	if e == nil || e.Name != "BenchmarkReplayFarm" {
		t.Fatalf("EntryFor sub-bench = %+v", e)
	}
	if got := e.GateMetrics(); len(got) != 1 || got[0] != "ns/op" {
		t.Errorf("default gate = %v, want [ns/op]", got)
	}
	if s.EntryFor("BenchmarkNotAThing") != nil {
		t.Error("unknown benchmark resolved to an entry")
	}
}

// TestRegistrySelfConsistent guards the canonical registry itself: no
// duplicate names, every exclusion has a reason, benchtimes parse as
// fixed iteration counts (Nx) so samples are comparable across runs.
func TestRegistrySelfConsistent(t *testing.T) {
	s := Registry()
	seen := map[string]bool{}
	for _, e := range s.Entries {
		if seen[e.Name] {
			t.Errorf("%s registered twice", e.Name)
		}
		seen[e.Name] = true
		if e.Package == "" || e.Benchtime == "" || e.CIBenchtime == "" {
			t.Errorf("%s missing package or benchtime: %+v", e.Name, e)
		}
		for _, bt := range []string{e.Benchtime, e.CIBenchtime} {
			if !strings.HasSuffix(bt, "x") {
				t.Errorf("%s benchtime %q is not a fixed iteration count", e.Name, bt)
			}
		}
	}
	for _, x := range s.Excluded {
		if x.Reason == "" {
			t.Errorf("exclusion %s has no reason", x.Name)
		}
		if seen[x.Name] {
			t.Errorf("%s both registered and excluded", x.Name)
		}
	}
}
