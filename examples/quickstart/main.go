// Quickstart: protect a small program with ClearView end to end.
//
// The program reads one byte per "request" and stores into a heap table at
// an attacker-controllable offset — a classic unchecked-index defect.
// The example walks the five ClearView components of Figure 1 explicitly:
//
//  1. Learning        observe normal requests, infer invariants
//  2. Monitoring      Heap Guard detects the out-of-bounds write
//  3. Correlation     checking patches classify the violated invariant
//  4. Repair          candidate patches enforce the invariant
//  5. Evaluation      the surviving patch is adopted
//
// Run:  go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/image"
	"repro/internal/isa"
	"repro/internal/vm"
)

// buildVulnerable assembles the protected program: per input byte b it
// computes idx = b - '0' and stores a marker at table[idx] without a
// bounds check.
func buildVulnerable() (*image.Image, map[string]uint32) {
	a := asm.New(0x1000)
	a.Label("main")
	a.MovRI(isa.EAX, 16) // table of 4 cells
	a.Sys(isa.SysAlloc)
	a.MovRR(isa.EDI, isa.EAX)
	a.MovRI(isa.EAX, 8) // request buffer
	a.Sys(isa.SysAlloc)
	a.MovRR(isa.ESI, isa.EAX)

	a.Label("loop")
	a.Sys(isa.SysInAvail)
	a.CmpRI(isa.EAX, 0)
	a.Je("done")
	a.MovRR(isa.EAX, isa.ESI)
	a.MovRI(isa.ECX, 1)
	a.Sys(isa.SysRead)
	a.LoadB(isa.EDX, asm.M(isa.ESI, 0))
	a.SubRI(isa.EDX, '0') // idx = byte - '0'; negative for bytes < '0'!
	a.MovRI(isa.EBX, 0x2A)
	a.Label("store")
	a.Store(asm.MX(isa.EDI, isa.EDX, 2, 0), isa.EBX) // table[idx] = 42
	a.Lea(isa.EAX, asm.MX(isa.EDI, isa.EDX, 2, 0))
	a.MovRI(isa.ECX, 1)
	a.Sys(isa.SysWrite) // display the written cell
	a.Jmp("loop")

	a.Label("done")
	a.MovRI(isa.EAX, 0)
	a.Sys(isa.SysExit)
	code, labels := a.MustAssemble()
	return &image.Image{Base: 0x1000, Entry: labels["main"], Code: code}, labels
}

func main() {
	img, labels := buildVulnerable()

	// 1. Learning: observe normal requests ('0'..'3').
	db, stats, err := core.Learn(img, core.LearnConfig{
		Inputs: [][]byte{[]byte("0123"), []byte("31"), []byte("22")},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[learning]    %d trace entries -> %d invariants\n", stats.Observations, db.Len())

	cv, err := core.New(core.Config{
		Image: img, Invariants: db,
		MemoryFirewall: true, HeapGuard: true, ShadowStack: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The attack: '/' is 0x2F, so idx = '/'-'0' = -1 — an out-of-bounds
	// write one cell below the table, straight onto its heap canary.
	attack := []byte("/0")

	// 2. Monitoring: presentation 1 is detected and blocked.
	res := cv.Execute(attack)
	fmt.Printf("[monitoring]  presentation 1: %v by %s at %#x\n",
		res.Outcome, res.Failure.Monitor, res.Failure.PC)
	fc := cv.Case(labels["store"])
	fmt.Printf("[correlation] %d candidate invariants selected, checks deployed\n",
		fc.Metrics.CandidateCount)

	// 3. Correlation: presentations 2-3 classify the violations.
	cv.Execute(attack)
	cv.Execute(attack)
	fmt.Printf("[repair]      %d candidate repairs generated; deploying %q\n",
		fc.Metrics.RepairCount, fc.CurrentRepairID())

	// 4+5. Evaluation: presentation 4 survives and the patch is adopted.
	res = cv.Execute(attack)
	if res.Outcome != vm.OutcomeExit {
		log.Fatalf("repair did not survive: %+v", res)
	}
	fmt.Printf("[evaluation]  presentation 4: application survived the attack (state: %v)\n", fc.State)

	// The patched application still serves normal requests identically.
	legit := cv.Execute([]byte("0123"))
	fmt.Printf("[after]       legitimate requests render %d cells, exit %d\n",
		len(legit.Output), legit.ExitCode)
}
