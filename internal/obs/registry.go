// Package obs is the pipeline's self-observability layer: a
// concurrency-safe metrics registry (counters, gauges, duration
// histograms) and a structured stage tracer that accounts each pipeline
// phase's wall time split into on-CPU and blocked portions.
//
// The design follows the OSDI'24 blocked-samples lesson — on-CPU and
// off-CPU time must be profiled together, or a lock convoy hides behind a
// healthy CPU profile. Every known blocking point on the pipeline (lock
// acquisitions, semaphore waits, upstream round trips) is instrumented
// explicitly: a stage's blocked time is the sum of its measured waits,
// its on-CPU time is the remainder of its wall time, and each wait is
// attributed to a named point so the top convoy is named, not guessed.
//
// Everything is nil-safe and zero-cost when disabled: a nil *Registry
// hands out nil *Counter/*Gauge/*Histogram, a nil *Tracer hands out nil
// *Span, and every method on a nil receiver is a no-op — so production
// code threads the handles unconditionally and pays a pointer test when
// telemetry is off. Nothing in this package is on a per-instruction hot
// path; instrumentation sits at pipeline patch points (per message, per
// flush, per replay), never inside the interpreter loop.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry owns a namespace of metrics. All methods are safe for
// concurrent use; metric handles are interned, so repeated lookups of the
// same name return the same instance and callers may cache them.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	stages   map[string]*Stage
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		stages:   make(map[string]*Stage),
	}
}

// Counter interns the named counter. Nil-safe: a nil registry returns a
// nil counter, whose methods are no-ops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge interns the named gauge. Nil-safe like Counter.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram interns the named duration histogram. Nil-safe like Counter.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Stage interns the named pipeline stage. Nil-safe like Counter.
func (r *Registry) Stage(name string) *Stage {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.stages[name]
	if !ok {
		s = &Stage{name: name}
		r.stages[name] = s
	}
	return s
}

// Counter is a monotonically increasing count. The zero value is ready;
// all methods are no-ops on a nil receiver and safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. The zero value is ready; all
// methods are no-ops on a nil receiver and safe for concurrent use.
type Gauge struct{ v atomic.Int64 }

// Set records the gauge's current value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Value returns the last value set (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// bucketEdges are the duration histogram's upper bounds. Decade buckets
// from 1µs to 10s cover everything the pipeline does, from a directive
// cache hit to a deadline-bounded farm replay; the final implicit bucket
// is +Inf.
var bucketEdges = [...]time.Duration{
	time.Microsecond,
	10 * time.Microsecond,
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
	10 * time.Second,
}

// NumBuckets is the number of histogram buckets, including the +Inf
// overflow bucket.
const NumBuckets = len(bucketEdges) + 1

// BucketEdges returns the histogram bucket upper bounds (the overflow
// bucket has no edge and is not listed).
func BucketEdges() []time.Duration {
	out := make([]time.Duration, len(bucketEdges))
	copy(out, bucketEdges[:])
	return out
}

// bucketFor returns the index of the bucket a duration falls in: the
// first bucket whose upper bound is >= d, or the overflow bucket.
func bucketFor(d time.Duration) int {
	for i, edge := range bucketEdges {
		if d <= edge {
			return i
		}
	}
	return len(bucketEdges)
}

// Histogram is a fixed-bucket duration histogram. The zero value is
// ready; all methods are no-ops on a nil receiver and safe for concurrent
// use. Negative observations are clamped to zero (a clock step backwards
// must not corrupt the totals).
type Histogram struct {
	buckets [NumBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64 // nanoseconds
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.buckets[bucketFor(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observations (0 on a nil receiver).
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// CounterSnap is one counter in a snapshot.
type CounterSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnap is one gauge in a snapshot.
type GaugeSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramSnap is one histogram in a snapshot. Buckets holds the count
// per bucket in BucketEdges order, with the final entry counting
// observations above the last edge.
type HistogramSnap struct {
	Name    string            `json:"name"`
	Count   int64             `json:"count"`
	SumNs   int64             `json:"sum_ns"`
	MaxNs   int64             `json:"max_ns"`
	Buckets [NumBuckets]int64 `json:"buckets"`
}

// PointSnap is one named blocking point within a stage.
type PointSnap struct {
	Point     string `json:"point"`
	Waits     int64  `json:"waits"`
	BlockedNs int64  `json:"blocked_ns"`
}

// StageSnap is one pipeline stage in a snapshot. OnCPUNs is WallNs minus
// BlockedNs (clamped at zero): the wall time not spent at any
// instrumented blocking point. See the package comment for what that
// approximation is and is not.
type StageSnap struct {
	Name      string      `json:"name"`
	Spans     int64       `json:"spans"`
	WallNs    int64       `json:"wall_ns"`
	BlockedNs int64       `json:"blocked_ns"`
	OnCPUNs   int64       `json:"on_cpu_ns"`
	MaxNs     int64       `json:"max_ns"`
	Points    []PointSnap `json:"points,omitempty"`
}

// BlockedShare returns blocked time as a fraction of wall time (0 for an
// idle stage).
func (s *StageSnap) BlockedShare() float64 {
	if s.WallNs <= 0 {
		return 0
	}
	return float64(s.BlockedNs) / float64(s.WallNs)
}

// TopPoint returns the blocking point with the most blocked time, or nil.
func (s *StageSnap) TopPoint() *PointSnap {
	var top *PointSnap
	for i := range s.Points {
		if top == nil || s.Points[i].BlockedNs > top.BlockedNs {
			top = &s.Points[i]
		}
	}
	return top
}

// Snapshot is a consistent-enough copy of a registry: each metric is read
// atomically, and all slices are sorted by name so the snapshot is
// deterministic for deterministic inputs (concurrent writers may land
// between two metric reads; each individual value is still exact).
type Snapshot struct {
	Counters   []CounterSnap   `json:"counters,omitempty"`
	Gauges     []GaugeSnap     `json:"gauges,omitempty"`
	Histograms []HistogramSnap `json:"histograms,omitempty"`
	Stages     []StageSnap     `json:"stages,omitempty"`
}

// Stage returns the named stage row, or nil.
func (s *Snapshot) Stage(name string) *StageSnap {
	for i := range s.Stages {
		if s.Stages[i].Name == name {
			return &s.Stages[i]
		}
	}
	return nil
}

// Counter returns the named counter's value (0 when absent).
func (s *Snapshot) Counter(name string) int64 {
	for i := range s.Counters {
		if s.Counters[i].Name == name {
			return s.Counters[i].Value
		}
	}
	return 0
}

// Snapshot captures every metric in deterministic (name-sorted) order.
// Nil-safe: a nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	if r == nil {
		return snap
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	stages := make(map[string]*Stage, len(r.stages))
	for k, v := range r.stages {
		stages[k] = v
	}
	r.mu.Unlock()

	for name, c := range counters {
		snap.Counters = append(snap.Counters, CounterSnap{Name: name, Value: c.Value()})
	}
	for name, g := range gauges {
		snap.Gauges = append(snap.Gauges, GaugeSnap{Name: name, Value: g.Value()})
	}
	for name, h := range hists {
		hs := HistogramSnap{
			Name:  name,
			Count: h.count.Load(),
			SumNs: h.sum.Load(),
			MaxNs: h.max.Load(),
		}
		for i := range h.buckets {
			hs.Buckets[i] = h.buckets[i].Load()
		}
		snap.Histograms = append(snap.Histograms, hs)
	}
	for _, st := range stages {
		snap.Stages = append(snap.Stages, st.snapshot())
	}
	sort.Slice(snap.Counters, func(i, j int) bool { return snap.Counters[i].Name < snap.Counters[j].Name })
	sort.Slice(snap.Gauges, func(i, j int) bool { return snap.Gauges[i].Name < snap.Gauges[j].Name })
	sort.Slice(snap.Histograms, func(i, j int) bool { return snap.Histograms[i].Name < snap.Histograms[j].Name })
	sort.Slice(snap.Stages, func(i, j int) bool { return snap.Stages[i].Name < snap.Stages[j].Name })
	return snap
}
