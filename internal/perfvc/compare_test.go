package perfvc

import (
	"strings"
	"testing"
)

// testSuite is a minimal registry for comparator tests: a steady
// microbenchmark gated on time + allocs, a throughput benchmark gated on
// a higher-is-better rate, and a noisy end-to-end benchmark.
func testSuite() *Suite {
	return &Suite{Entries: []Entry{
		{Name: "BenchmarkSteady", Package: ".", Class: ClassSteady, Gate: []string{"ns/op", "allocs/op"}},
		{Name: "BenchmarkRate", Package: ".", Class: ClassSteady, Gate: []string{"MIPS"}},
		{Name: "BenchmarkNoisy", Package: ".", Class: ClassNoisy},
	}}
}

// stat builds a Stat from explicit median/min/max.
func stat(median, min, max float64, samples int) Stat {
	return Stat{Median: median, Min: min, Max: max, Samples: samples}
}

// profileOf builds a profile from name → unit → Stat.
func profileOf(benches map[string]map[string]Stat) *Profile {
	p := &Profile{Benchmarks: map[string]Bench{}}
	for name, metrics := range benches {
		p.Benchmarks[name] = Bench{Package: ".", Entry: name, Metrics: metrics}
	}
	return p
}

// TestComparatorVerdicts is the table-driven sweep over every verdict
// the comparator can produce, including the spread-aware and zero-spread
// noise rules and integer allocs/op gating.
func TestComparatorVerdicts(t *testing.T) {
	cases := []struct {
		name    string
		bench   string
		base    map[string]Stat
		cand    map[string]Stat
		floor   float64
		verdict Verdict
		metric  string // worst metric expected, "" = don't care
	}{
		{
			name:  "clear regression outside tolerance and spread",
			bench: "BenchmarkSteady",
			base:  map[string]Stat{"ns/op": stat(100, 98, 102, 5)},
			cand:  map[string]Stat{"ns/op": stat(300, 290, 310, 5)},
			// slack = max(0.25*100, 4) = 25; 300 > 102+25.
			verdict: VerdictRegression, metric: "ns/op",
		},
		{
			name:    "clear improvement",
			bench:   "BenchmarkSteady",
			base:    map[string]Stat{"ns/op": stat(100, 98, 102, 5)},
			cand:    map[string]Stat{"ns/op": stat(40, 39, 41, 5)},
			verdict: VerdictImprovement, metric: "ns/op",
		},
		{
			name:  "inside baseline spread stays within noise",
			bench: "BenchmarkSteady",
			// A wildly noisy baseline (spread 60 > 25% tolerance): a
			// candidate median above max but inside max+spread is noise.
			base:    map[string]Stat{"ns/op": stat(100, 70, 130, 5)},
			cand:    map[string]Stat{"ns/op": stat(170, 165, 175, 5)},
			verdict: VerdictWithinNoise,
		},
		{
			name:  "beyond even the observed spread regresses",
			bench: "BenchmarkSteady",
			base:  map[string]Stat{"ns/op": stat(100, 70, 130, 5)},
			// slack = max(25, 60) = 60; 195 > 130+60.
			cand:    map[string]Stat{"ns/op": stat(195, 190, 200, 5)},
			verdict: VerdictRegression, metric: "ns/op",
		},
		{
			name:  "zero-spread baseline uses pure relative tolerance",
			bench: "BenchmarkSteady",
			base:  map[string]Stat{"ns/op": stat(100, 100, 100, 3)},
			// slack = max(25, 0) = 25; 120 <= 125 stays in noise.
			cand:    map[string]Stat{"ns/op": stat(120, 120, 120, 3)},
			verdict: VerdictWithinNoise,
		},
		{
			name:    "zero-spread baseline still catches a real slip",
			bench:   "BenchmarkSteady",
			base:    map[string]Stat{"ns/op": stat(100, 100, 100, 3)},
			cand:    map[string]Stat{"ns/op": stat(130, 130, 130, 3)},
			verdict: VerdictRegression, metric: "ns/op",
		},
		{
			name:  "integer allocs from zero regress on any increase",
			bench: "BenchmarkSteady",
			base: map[string]Stat{
				"ns/op":     stat(100, 98, 102, 5),
				"allocs/op": stat(0, 0, 0, 5),
			},
			cand: map[string]Stat{
				"ns/op":     stat(101, 100, 103, 5),
				"allocs/op": stat(1, 1, 1, 5),
			},
			// tolerance*0 = 0 and spread = 0: the PR 3 zero-alloc hot
			// loop may not grow a single allocation.
			verdict: VerdictRegression, metric: "allocs/op",
		},
		{
			name:  "integer allocs within tolerance stay noise",
			bench: "BenchmarkSteady",
			base: map[string]Stat{
				"ns/op":     stat(100, 98, 102, 5),
				"allocs/op": stat(9, 9, 9, 5),
			},
			cand: map[string]Stat{
				"ns/op":     stat(101, 100, 103, 5),
				"allocs/op": stat(10, 10, 10, 5),
			},
			// slack = 0.25*9 = 2.25; 10 <= 11.25.
			verdict: VerdictWithinNoise,
		},
		{
			name:    "higher-is-better rate regresses downward",
			bench:   "BenchmarkRate",
			base:    map[string]Stat{"MIPS": stat(110, 105, 116, 5)},
			cand:    map[string]Stat{"MIPS": stat(40, 38, 42, 5)},
			verdict: VerdictRegression, metric: "MIPS",
		},
		{
			name:    "higher-is-better rate improves upward",
			bench:   "BenchmarkRate",
			base:    map[string]Stat{"MIPS": stat(110, 105, 116, 5)},
			cand:    map[string]Stat{"MIPS": stat(500, 490, 510, 5)},
			verdict: VerdictImprovement, metric: "MIPS",
		},
		{
			name:  "noisy class tolerates what steady would not",
			bench: "BenchmarkNoisy",
			base:  map[string]Stat{"ns/op": stat(100, 98, 102, 3)},
			// slack = 0.75*100 = 75; 160 <= 102+75.
			cand:    map[string]Stat{"ns/op": stat(160, 150, 170, 3)},
			verdict: VerdictWithinNoise,
		},
		{
			name:    "tolerance floor loosens a steady gate for CI",
			bench:   "BenchmarkSteady",
			base:    map[string]Stat{"ns/op": stat(100, 98, 102, 3)},
			cand:    map[string]Stat{"ns/op": stat(160, 150, 170, 3)},
			floor:   0.75,
			verdict: VerdictWithinNoise,
		},
		{
			name:    "unregistered benchmark defaults to noisy ns/op gate",
			bench:   "BenchmarkUnknown",
			base:    map[string]Stat{"ns/op": stat(100, 99, 101, 3)},
			cand:    map[string]Stat{"ns/op": stat(400, 390, 410, 3)},
			verdict: VerdictRegression, metric: "ns/op",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := profileOf(map[string]map[string]Stat{tc.bench: tc.base})
			cand := profileOf(map[string]map[string]Stat{tc.bench: tc.cand})
			rep := Compare(base, cand, Options{Suite: testSuite(), ToleranceFloor: tc.floor})
			if len(rep.Deltas) != 1 {
				t.Fatalf("got %d deltas, want 1", len(rep.Deltas))
			}
			d := rep.Deltas[0]
			if d.Verdict != tc.verdict {
				t.Fatalf("verdict = %s (worst %+v), want %s", d.Verdict, d.Worst, tc.verdict)
			}
			if tc.metric != "" && d.Worst.Metric != tc.metric {
				t.Errorf("worst metric = %s, want %s", d.Worst.Metric, tc.metric)
			}
		})
	}
}

// TestCompareNewRemovedAndScope covers the coverage-change verdicts: a
// benchmark only in the candidate is new, only in the baseline is
// removed — unless the candidate run's scope never attempted its entry
// (a short CI suite is not a deletion).
func TestCompareNewRemovedAndScope(t *testing.T) {
	base := profileOf(map[string]map[string]Stat{
		"BenchmarkSteady":       {"ns/op": stat(100, 99, 101, 3)},
		"BenchmarkNoisy":        {"ns/op": stat(500, 490, 510, 3)},
		"BenchmarkNoisy/subarm": {"ns/op": stat(100, 95, 105, 3)},
	})
	cand := profileOf(map[string]map[string]Stat{
		"BenchmarkSteady": {"ns/op": stat(100, 99, 101, 3)},
		"BenchmarkRate":   {"MIPS": stat(100, 99, 101, 3)},
	})

	rep := Compare(base, cand, Options{Suite: testSuite()})
	if rep.New != 1 || rep.Removed != 2 {
		t.Fatalf("full scope: new=%d removed=%d, want 1/2", rep.New, rep.Removed)
	}

	// Scoped to only the entries the candidate actually ran: the absent
	// BenchmarkNoisy (and its sub-benchmark) is not "removed".
	rep = Compare(base, cand, Options{
		Suite: testSuite(),
		Scope: map[string]bool{"BenchmarkSteady": true, "BenchmarkRate": true},
	})
	if rep.New != 1 || rep.Removed != 0 {
		t.Fatalf("scoped: new=%d removed=%d, want 1/0", rep.New, rep.Removed)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("coverage changes alone must not gate: %v", err)
	}
}

// TestCompareRankingAndErr pins the ranked table order (regressions
// first, worst ratio first) and the gate error naming every offender.
func TestCompareRankingAndErr(t *testing.T) {
	base := profileOf(map[string]map[string]Stat{
		"BenchmarkSteady":  {"ns/op": stat(100, 99, 101, 3)},
		"BenchmarkRate":    {"MIPS": stat(100, 99, 101, 3)},
		"BenchmarkNoisy":   {"ns/op": stat(100, 99, 101, 3)},
		"BenchmarkUnknown": {"ns/op": stat(100, 99, 101, 3)},
	})
	cand := profileOf(map[string]map[string]Stat{
		"BenchmarkSteady":  {"ns/op": stat(200, 199, 201, 3)}, // 2.00x worse
		"BenchmarkRate":    {"MIPS": stat(20, 19, 21, 3)},     // 5.00x worse
		"BenchmarkNoisy":   {"ns/op": stat(101, 100, 102, 3)}, // noise
		"BenchmarkUnknown": {"ns/op": stat(10, 9, 11, 3)},     // improvement
	})
	rep := Compare(base, cand, Options{Suite: testSuite()})
	if rep.Regressions != 2 || rep.Improvements != 1 || rep.WithinNoise != 1 {
		t.Fatalf("counts = %d/%d/%d", rep.Regressions, rep.Improvements, rep.WithinNoise)
	}
	if rep.Deltas[0].Name != "BenchmarkRate" || rep.Deltas[1].Name != "BenchmarkSteady" {
		t.Errorf("ranking = %s, %s; want worst regression first",
			rep.Deltas[0].Name, rep.Deltas[1].Name)
	}
	err := rep.Err()
	if err == nil {
		t.Fatal("regressions must gate")
	}
	for _, name := range []string{"BenchmarkRate", "BenchmarkSteady"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("gate error does not name %s: %v", name, err)
		}
	}
	table := rep.Table()
	for _, want := range []string{"regression", "improvement", "within-noise", "BenchmarkRate", "2 regression(s)"} {
		if !strings.Contains(table, want) {
			t.Errorf("verdict table missing %q:\n%s", want, table)
		}
	}
}

// TestCompareIdenticalProfiles pins the reflexive case the CI self-test
// relies on: a profile against itself has no verdict but within-noise.
func TestCompareIdenticalProfiles(t *testing.T) {
	p := profileOf(map[string]map[string]Stat{
		"BenchmarkSteady": {"ns/op": stat(100, 99, 101, 3), "allocs/op": stat(0, 0, 0, 3)},
		"BenchmarkRate":   {"MIPS": stat(100, 99, 101, 3)},
		"BenchmarkNoisy":  {"ns/op": stat(500, 400, 600, 3)},
	})
	rep := Compare(p, p, Options{Suite: testSuite()})
	if rep.Regressions != 0 || rep.Improvements != 0 || rep.New != 0 || rep.Removed != 0 {
		t.Fatalf("self-comparison produced verdicts: %+v", rep)
	}
	if rep.WithinNoise != 3 {
		t.Fatalf("within-noise = %d, want 3", rep.WithinNoise)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
}
