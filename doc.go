// Package repro is a from-scratch Go reproduction of "Automatically
// Patching Errors in Deployed Software" (Perkins et al., SOSP 2009) — the
// ClearView system: learning invariants from normal executions of a
// stripped binary, detecting failures with monitors, identifying
// invariants whose violation correlates with a failure, generating
// candidate repair patches that enforce them, and evaluating the patches
// on continued executions, coordinated across an application community.
//
// The root package carries the module documentation and the benchmark
// harness (bench_test.go) that regenerates every table and figure of the
// paper's evaluation; the implementation lives under internal/:
//
//	internal/isa        the simulated x86-flavoured instruction set
//	internal/asm        two-pass assembler
//	internal/image      stripped binary image format
//	internal/mem        paged memory + canary-guarded heap allocator
//	internal/vm         managed execution environment (code cache, patches)
//
// The two packages on the interpreter's critical path are engineered for
// deployment-grade throughput, since ClearView's whole premise is
// detection and repair *in production*:
//
// internal/mem's hierarchy is page table → TLB → COW. Addresses resolve
// through a flat two-level page table (a fixed top-level array of
// page-group pointers — two array indexings, no map operations), fronted
// by a small direct-mapped software TLB of recent (page → frame,
// writable) translations that the 8/32-bit accessors hit inline.
// Copy-on-write state is per-page metadata beside the frame pointers; a
// write to a shared page privatizes just that page. Every event that
// could make a cached translation lie — Clone resharing pages, a COW
// break swapping a frame, UnmarshalBinary replacing the table — flushes
// or rewrites the TLB (property-tested against the original map-backed
// implementation, kept as a test oracle). Bulk paths (ReadBytes,
// WriteBytes, the COPYB instruction) translate once per page run and
// memmove, preserving interrupted-copy partial progress, per-byte step
// accounting, and rep-movsb overlap replication bit-for-bit.
//
// internal/vm's dispatch is two-tier and block-linked. Each code-cache
// block caches its resolved successor *Block pointers, so straight-line
// and direct-branch dispatch skips the cache map; links carry a cache
// generation and every patch apply/remove bumps it, invalidating all
// links at once. Blocks with no hooks on a machine with no snapshot sink
// run a tight loop with no per-instruction Ctx allocation, snapshot, or
// hook checks — zero allocations per instruction (enforced by test) —
// while hooked blocks run the fully instrumented loop unchanged. Edge
// coverage is recorded at the dispatch point on every entry, linked or
// not, so fuzzing fingerprints are independent of the optimization.
//
//	internal/cfg        dynamic procedure discovery + predominators
//	internal/trace      Daikon front end (per-instruction operand tracing)
//	internal/daikon     invariant inference engine + community DB merge
//	internal/monitor    Memory Firewall, Heap Guard, Shadow Stack,
//	                    Fault Guard (divide-by-zero, unaligned access),
//	                    Hang Guard (runaway-loop step budget)
//	internal/correlate  candidate selection, checking patches, classification
//	internal/repair     candidate repair generation
//	internal/evaluate   repair scoring and ranking
//	internal/replay     deterministic record/replay + parallel patch farm
//	                    + farm-backed report vetting (Farm.Vet)
//	internal/obs        pipeline telemetry: metrics registry + stage spans
//	                    with on-CPU/blocked accounting (nil-safe, zero-cost
//	                    when disabled)
//	internal/perfvc     performance version system: benchmark suite
//	                    registry, noise-aware profile comparison, CI gate
//	                    (cmd/perfvc; BENCH_pr*.json lineage)
//	internal/fuzz       coverage-guided exploit-variant fuzzer
//	internal/core       the ClearView pipeline orchestrator
//	internal/community  the two-tier community (pipe & TCP transports)
//	internal/webapp     the protected application (thirteen seeded defects)
//	internal/redteam    exploit builders, corpora, drivers, reports
//
// internal/community arranges the §3 application community as two tiers:
// node managers attach to Aggregators, which serve their region with the
// same protocol the central Manager speaks (caching per-node directives,
// merging learning uploads, deduplicating recordings per failure
// location) and forward one compacted batch upstream per flush — so
// central-manager load scales with the aggregator count, not the node
// count. All durable state (learning shards, repair assignments,
// quarantine) is keyed by node ID at the manager, which makes churn a
// non-event: nodes crash and re-attach to any aggregator without losing
// anything, aggregators fail over, and mid-campaign joiners are
// protected before first exposure. Reports are sanity-checked at both
// tiers and recordings must reproduce their claimed failure on the
// manager's replay farm; a node that fails any check is quarantined —
// ignored permanently — so tampered input can never poison the shared
// invariant database or steer repair adoption (the §5 discussion's
// attack, defended).
//
// See README.md for the package tour, the replay-farm architecture, the
// community topology, and how to run the benchmarks; ARCHITECTURE.md
// maps each paper section and evaluation artifact to the code that
// reproduces it.
package repro
