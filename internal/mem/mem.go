// Package mem implements the simulated 32-bit address space: a sparse paged
// memory, and a heap allocator that places canary words at block boundaries
// and maintains the allocation map that the Heap Guard monitor consults.
//
// Two allocator behaviours are deliberate hosts for the paper's defect
// classes: freed blocks are recycled LIFO per size class *without being
// cleared* (use-after-free and uninitialized-reallocation defects, Bugzilla
// 269095/312278/320182), and out-of-bounds writes inside the mapped heap
// arena do not fault — they silently corrupt, exactly as on real hardware,
// unless Heap Guard notices a canary being overwritten.
package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// PageSize is the granularity of the sparse address space.
const PageSize = 4096

// Page-table geometry. A 32-bit address splits into a 20-bit page number
// and a 12-bit offset; the page number splits again into a 10-bit group
// index and a 10-bit slot, so the whole space is reachable through one
// fixed top-level array of group pointers — no map lookups on any access
// path. A group spans 4 MiB, and the layouts in use (code, heap, stack)
// each land in their own group, so a typical machine materializes 3-4.
const (
	pageShift  = 12
	pageMask   = PageSize - 1
	groupShift = 10
	groupPages = 1 << groupShift
	groupMask  = groupPages - 1
	numGroups  = 1 << (32 - pageShift - groupShift)
)

// Software TLB geometry: a small direct-mapped cache of recent
// (page number → frame, writable) translations in front of the page
// table. 64 entries cover the working set of the interpreter loops; the
// index is the low page-number bits, so code, heap, and stack pages
// (which differ in high bits) do not thrash each other.
const (
	tlbSize = 64
	tlbMask = tlbSize - 1
)

// Canary is the value Heap Guard plants at allocated-block boundaries.
const Canary uint32 = 0xFDFDFDFD

// Fault reports an access to unmapped memory. The execution environment
// converts faults into crashes (not monitor-detected failures).
type Fault struct {
	Addr  uint32
	Write bool
}

func (f *Fault) Error() string {
	kind := "read"
	if f.Write {
		kind = "write"
	}
	return fmt.Sprintf("memory fault: %s at %#x", kind, f.Addr)
}

// pageGroup is one second-level page-table node: storage and COW metadata
// for a 4 MiB-aligned run of 1024 pages. shared[i] marks a page whose
// storage is referenced by at least one clone; it must be copied before
// this Memory writes it.
type pageGroup struct {
	pages  [groupPages][]byte
	shared [groupPages]bool
}

// tlbEntry caches one translation. tag is the page number plus one so the
// zero value never matches; page is the backing frame; writable is false
// for COW-shared pages, forcing writes through the slow path that copies
// the page first.
type tlbEntry struct {
	tag      uint32
	writable bool
	page     []byte
}

// Memory is a sparse paged 32-bit address space.
//
// The access hierarchy is TLB → page table → COW: the inlined fast paths
// of Read8/Write8/Read32/Write32 hit the direct-mapped TLB; a miss walks
// the flat two-level page table (two array indexings, no maps) and refills
// the TLB; a write to a COW-shared page privatizes it first. The TLB is
// flushed whenever a translation could go stale: Clone marks every page
// shared (cached writable bits would bypass COW), UnmarshalBinary replaces
// the whole table, and a COW break rewrites the entry in place.
//
// Clone produces copy-on-write clones: the clone and the original share
// page storage until one of them writes a shared page, at which point the
// writer copies just that page. A clone therefore costs one page-table
// copy up front and one page copy per page actually dirtied — the
// property the snapshot/replay machinery depends on.
type Memory struct {
	groups [numGroups]*pageGroup
	tlb    [tlbSize]tlbEntry

	// mu serializes Clone calls so many goroutines may clone the same
	// frozen Memory (e.g. restoring workers from one snapshot)
	// concurrently. Reads and writes are NOT synchronized: a Memory is
	// owned by one machine at a time.
	mu sync.Mutex

	pageCount int
	cowBreaks uint64
}

// New returns an empty address space.
func New() *Memory {
	return &Memory{}
}

// flushTLB invalidates every cached translation.
func (m *Memory) flushTLB() {
	for i := range m.tlb {
		m.tlb[i] = tlbEntry{}
	}
}

// Clone returns a copy-on-write snapshot of the address space. Both the
// original and the clone remain writable; the first write to a shared page
// from either side copies that page. Clone is safe to call concurrently on
// the same receiver as long as no goroutine is concurrently writing it.
func (m *Memory) Clone() *Memory {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := &Memory{pageCount: m.pageCount}
	for gi, g := range m.groups {
		if g == nil {
			continue
		}
		// Mark every mapped page shared on the original first, then copy
		// the group wholesale so the clone inherits the shared bits.
		for si := range g.pages {
			if g.pages[si] != nil {
				g.shared[si] = true
			}
		}
		cg := new(pageGroup)
		*cg = *g
		c.groups[gi] = cg
	}
	// Cached writable translations would let the original write shared
	// storage without breaking COW.
	m.flushTLB()
	return c
}

// PageCount returns the number of mapped pages.
func (m *Memory) PageCount() int { return m.pageCount }

// CowBreaks returns how many shared pages this Memory has privatized —
// the dirty-page count a snapshot's cost is proportional to.
func (m *Memory) CowBreaks() uint64 { return m.cowBreaks }

// Map makes [addr, addr+size) accessible, zero filled.
func (m *Memory) Map(addr, size uint32) {
	if size == 0 {
		return
	}
	first := addr >> pageShift
	last := (addr + size - 1) >> pageShift
	for pn := first; ; pn++ {
		g := m.groups[pn>>groupShift]
		if g == nil {
			g = new(pageGroup)
			m.groups[pn>>groupShift] = g
		}
		if g.pages[pn&groupMask] == nil {
			g.pages[pn&groupMask] = make([]byte, PageSize)
			m.pageCount++
		}
		if pn == last {
			break
		}
	}
}

// Mapped reports whether addr is accessible.
func (m *Memory) Mapped(addr uint32) bool {
	pn := addr >> pageShift
	g := m.groups[pn>>groupShift]
	return g != nil && g.pages[pn&groupMask] != nil
}

// readPage walks the page table for the page containing addr, refilling
// the TLB on success. It is the shared miss path of every read.
func (m *Memory) readPage(addr uint32) ([]byte, error) {
	pn := addr >> pageShift
	g := m.groups[pn>>groupShift]
	if g == nil {
		return nil, &Fault{Addr: addr}
	}
	p := g.pages[pn&groupMask]
	if p == nil {
		return nil, &Fault{Addr: addr}
	}
	m.tlb[pn&tlbMask] = tlbEntry{tag: pn + 1, writable: !g.shared[pn&groupMask], page: p}
	return p, nil
}

// writePage walks the page table for a writable frame, breaking COW if
// the page is shared and refilling the TLB with a writable translation.
func (m *Memory) writePage(addr uint32) ([]byte, error) {
	pn := addr >> pageShift
	g := m.groups[pn>>groupShift]
	if g == nil {
		return nil, &Fault{Addr: addr, Write: true}
	}
	si := pn & groupMask
	p := g.pages[si]
	if p == nil {
		return nil, &Fault{Addr: addr, Write: true}
	}
	if g.shared[si] {
		dup := make([]byte, PageSize)
		copy(dup, p)
		g.pages[si] = dup
		g.shared[si] = false
		m.cowBreaks++
		p = dup
	}
	m.tlb[pn&tlbMask] = tlbEntry{tag: pn + 1, writable: true, page: p}
	return p, nil
}

// Read8 loads one byte.
func (m *Memory) Read8(addr uint32) (byte, error) {
	pn := addr >> pageShift
	if e := &m.tlb[pn&tlbMask]; e.tag == pn+1 {
		return e.page[addr&pageMask], nil
	}
	p, err := m.readPage(addr)
	if err != nil {
		return 0, err
	}
	return p[addr&pageMask], nil
}

// Write8 stores one byte.
func (m *Memory) Write8(addr uint32, v byte) error {
	pn := addr >> pageShift
	if e := &m.tlb[pn&tlbMask]; e.tag == pn+1 && e.writable {
		e.page[addr&pageMask] = v
		return nil
	}
	p, err := m.writePage(addr)
	if err != nil {
		return err
	}
	p[addr&pageMask] = v
	return nil
}

// Read32 loads a little-endian 32-bit word. The word may straddle pages.
func (m *Memory) Read32(addr uint32) (uint32, error) {
	if o := addr & pageMask; o <= PageSize-4 {
		pn := addr >> pageShift
		p := m.tlb[pn&tlbMask].page
		if m.tlb[pn&tlbMask].tag != pn+1 {
			var err error
			p, err = m.readPage(addr)
			if err != nil {
				return 0, err
			}
		}
		return uint32(p[o]) | uint32(p[o+1])<<8 | uint32(p[o+2])<<16 | uint32(p[o+3])<<24, nil
	}
	var v uint32
	for i := uint32(0); i < 4; i++ {
		b, err := m.Read8(addr + i)
		if err != nil {
			return 0, err
		}
		v |= uint32(b) << (8 * i)
	}
	return v, nil
}

// Write32 stores a little-endian 32-bit word.
func (m *Memory) Write32(addr uint32, v uint32) error {
	if o := addr & pageMask; o <= PageSize-4 {
		pn := addr >> pageShift
		e := &m.tlb[pn&tlbMask]
		p := e.page
		if e.tag != pn+1 || !e.writable {
			var err error
			p, err = m.writePage(addr)
			if err != nil {
				return err
			}
		}
		p[o] = byte(v)
		p[o+1] = byte(v >> 8)
		p[o+2] = byte(v >> 16)
		p[o+3] = byte(v >> 24)
		return nil
	}
	for i := uint32(0); i < 4; i++ {
		if err := m.Write8(addr+i, byte(v>>(8*i))); err != nil {
			return err
		}
	}
	return nil
}

// ReadBytes copies n bytes starting at addr, translating each page once
// and copying page-run-at-a-time.
func (m *Memory) ReadBytes(addr, n uint32) ([]byte, error) {
	out := make([]byte, n)
	var pos uint32
	for pos < n {
		cur := addr + pos
		off := cur & pageMask
		run := PageSize - off
		if rem := n - pos; run > rem {
			run = rem
		}
		p, err := m.readPage(cur)
		if err != nil {
			return nil, err
		}
		copy(out[pos:pos+run], p[off:off+run])
		pos += run
	}
	return out, nil
}

// WriteBytes copies b into memory starting at addr, translating (and
// COW-breaking) each page once and copying page-run-at-a-time. On a fault
// partway through, bytes before the unmapped page remain written, exactly
// as with the byte-at-a-time loop this replaces.
func (m *Memory) WriteBytes(addr uint32, b []byte) error {
	n := uint32(len(b))
	var pos uint32
	for pos < n {
		cur := addr + pos
		off := cur & pageMask
		run := PageSize - off
		if rem := n - pos; run > rem {
			run = rem
		}
		p, err := m.writePage(cur)
		if err != nil {
			return err
		}
		copy(p[off:off+run], b[pos:pos+run])
		pos += run
	}
	return nil
}

// ReadRun returns a read-only view of the n bytes at addr. The run must
// not cross a page boundary (n <= PageSize - addr%PageSize); the returned
// slice aliases the page storage and is valid only until the next Clone,
// COW break, or UnmarshalBinary. This is the zero-copy primitive the
// interpreter's block-copy loop builds on.
func (m *Memory) ReadRun(addr, n uint32) ([]byte, error) {
	pn := addr >> pageShift
	e := &m.tlb[pn&tlbMask]
	p := e.page
	if e.tag != pn+1 {
		var err error
		p, err = m.readPage(addr)
		if err != nil {
			return nil, err
		}
	}
	off := addr & pageMask
	return p[off : off+n], nil
}

// WriteRun returns a writable view of the n bytes at addr, breaking COW
// if the page is shared. The same contract as ReadRun applies.
func (m *Memory) WriteRun(addr, n uint32) ([]byte, error) {
	pn := addr >> pageShift
	e := &m.tlb[pn&tlbMask]
	p := e.page
	if e.tag != pn+1 || !e.writable {
		var err error
		p, err = m.writePage(addr)
		if err != nil {
			return nil, err
		}
	}
	off := addr & pageMask
	return p[off : off+n], nil
}

// forEachPage visits every mapped page in ascending page-number order —
// the iteration order the two-level table provides for free (no sort).
func (m *Memory) forEachPage(f func(pn uint32, p []byte)) {
	for gi, g := range m.groups {
		if g == nil {
			continue
		}
		for si := range g.pages {
			if p := g.pages[si]; p != nil {
				f(uint32(gi)<<groupShift|uint32(si), p)
			}
		}
	}
}

// MarshalBinary serializes the address space: a page count followed by
// (page index, flag, data) records in ascending page order. All-zero pages
// are encoded as a flag byte only, so sparse spaces stay small on the wire.
// gob uses this automatically, which is how snapshots inside a
// replay.Recording travel between community nodes and the manager.
func (m *Memory) MarshalBinary() ([]byte, error) {
	out := make([]byte, 4, 4+m.pageCount*5)
	binary.LittleEndian.PutUint32(out, uint32(m.pageCount))
	var pnb [4]byte
	m.forEachPage(func(pn uint32, p []byte) {
		binary.LittleEndian.PutUint32(pnb[:], pn)
		out = append(out, pnb[:]...)
		if allZero(p) {
			out = append(out, 0)
			return
		}
		out = append(out, 1)
		out = append(out, p...)
	})
	return out, nil
}

// UnmarshalBinary reconstructs an address space serialized by
// MarshalBinary. The result owns all its pages (no sharing).
func (m *Memory) UnmarshalBinary(b []byte) error {
	if len(b) < 4 {
		return fmt.Errorf("mem: truncated page table header: %d bytes", len(b))
	}
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	// Each page record is at least 5 bytes, so a count that cannot fit in
	// the remaining payload is corrupt. Checking before decoding keeps a
	// hostile page count (recordings arrive over the community transport)
	// from forcing giant allocations.
	if uint64(n)*5 > uint64(len(b)) {
		return fmt.Errorf("mem: page count %d exceeds payload (%d bytes)", n, len(b))
	}
	m.groups = [numGroups]*pageGroup{}
	m.flushTLB()
	m.pageCount = 0
	m.cowBreaks = 0
	for i := uint32(0); i < n; i++ {
		if len(b) < 5 {
			return fmt.Errorf("mem: truncated page record %d", i)
		}
		pn := binary.LittleEndian.Uint32(b)
		flag := b[4]
		b = b[5:]
		if pn >= 1<<(32-pageShift) {
			return fmt.Errorf("mem: page index %#x out of range", pn)
		}
		page := make([]byte, PageSize)
		if flag != 0 {
			if len(b) < PageSize {
				return fmt.Errorf("mem: truncated page data for page %#x", pn)
			}
			copy(page, b[:PageSize])
			b = b[PageSize:]
		}
		g := m.groups[pn>>groupShift]
		if g == nil {
			g = new(pageGroup)
			m.groups[pn>>groupShift] = g
		}
		if g.pages[pn&groupMask] == nil {
			m.pageCount++
		}
		g.pages[pn&groupMask] = page
		g.shared[pn&groupMask] = false
	}
	return nil
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// Block is one allocated heap block in the allocation map.
type Block struct {
	Addr uint32 // first usable byte
	Size uint32 // usable size (rounded up to 4)
}

// Heap is a canary-guarded bump allocator with LIFO per-size recycling.
type Heap struct {
	mem      *Memory
	base     uint32
	limit    uint32
	brk      uint32
	blocks   []Block             // sorted by Addr
	freelist map[uint32][]uint32 // size -> LIFO of recycled block addresses
	allocs   uint64
	frees    uint64
}

// NewHeap creates a heap managing [base, base+size).
func NewHeap(m *Memory, base, size uint32) *Heap {
	return &Heap{
		mem:      m,
		base:     base,
		limit:    base + size,
		brk:      base,
		freelist: make(map[uint32][]uint32),
	}
}

// Base returns the lowest heap address.
func (h *Heap) Base() uint32 { return h.base }

// Limit returns one past the highest heap address.
func (h *Heap) Limit() uint32 { return h.limit }

// Contains reports whether addr lies inside the heap arena.
func (h *Heap) Contains(addr uint32) bool { return addr >= h.base && addr < h.limit }

// Stats returns cumulative allocation and free counts.
func (h *Heap) Stats() (allocs, frees uint64) { return h.allocs, h.frees }

func roundUp4(n uint32) uint32 { return (n + 3) &^ 3 }

// Alloc returns a block of at least size bytes, with canary words planted
// immediately before and after it. Recycled blocks are returned with their
// previous contents intact (deliberately — see the package comment).
func (h *Heap) Alloc(size uint32) (uint32, error) {
	size = roundUp4(size)
	if size == 0 {
		size = 4
	}
	h.allocs++
	if fl := h.freelist[size]; len(fl) > 0 {
		addr := fl[len(fl)-1]
		h.freelist[size] = fl[:len(fl)-1]
		h.insertBlock(Block{Addr: addr, Size: size})
		// Canaries were planted when the block was first carved and are
		// re-planted here in case the application overwrote them while
		// the block was live (a legitimate in-bounds canary-value write).
		h.plantCanaries(addr, size)
		return addr, nil
	}
	need := size + 8 // front canary + block + rear canary
	if h.brk+need > h.limit || h.brk+need < h.brk {
		return 0, fmt.Errorf("heap: out of memory: %d bytes requested", size)
	}
	start := h.brk
	h.brk += need
	h.mem.Map(start, need)
	addr := start + 4
	h.plantCanaries(addr, size)
	h.insertBlock(Block{Addr: addr, Size: size})
	return addr, nil
}

func (h *Heap) plantCanaries(addr, size uint32) {
	// The canary pages are always mapped because they were carved from brk.
	_ = h.mem.Write32(addr-4, Canary)
	_ = h.mem.Write32(addr+size, Canary)
}

func (h *Heap) insertBlock(b Block) {
	i := sort.Search(len(h.blocks), func(i int) bool { return h.blocks[i].Addr >= b.Addr })
	h.blocks = append(h.blocks, Block{})
	copy(h.blocks[i+1:], h.blocks[i:])
	h.blocks[i] = b
}

// Free releases the block at addr. Contents are not cleared. Freeing an
// address that is not a live block start is an error (the simulated
// application's defects never double-free; they free too early).
func (h *Heap) Free(addr uint32) error {
	i := sort.Search(len(h.blocks), func(i int) bool { return h.blocks[i].Addr >= addr })
	if i >= len(h.blocks) || h.blocks[i].Addr != addr {
		return fmt.Errorf("heap: free of non-allocated address %#x", addr)
	}
	size := h.blocks[i].Size
	h.blocks = append(h.blocks[:i], h.blocks[i+1:]...)
	h.freelist[size] = append(h.freelist[size], addr)
	h.frees++
	return nil
}

// Realloc allocates a new block of the requested size, copies the smaller
// of the two sizes, and frees the old block.
func (h *Heap) Realloc(addr, size uint32) (uint32, error) {
	b, ok := h.FindBlock(addr)
	if !ok || b.Addr != addr {
		return 0, fmt.Errorf("heap: realloc of non-allocated address %#x", addr)
	}
	na, err := h.Alloc(size)
	if err != nil {
		return 0, err
	}
	n := b.Size
	if size < n {
		n = size
	}
	data, err := h.mem.ReadBytes(addr, n)
	if err != nil {
		return 0, err
	}
	if err := h.mem.WriteBytes(na, data); err != nil {
		return 0, err
	}
	if err := h.Free(addr); err != nil {
		return 0, err
	}
	return na, nil
}

// FindBlock returns the allocated block containing addr, if any. This is
// the allocation-map lookup Heap Guard performs when a write target holds
// the canary value (§2.3).
func (h *Heap) FindBlock(addr uint32) (Block, bool) {
	i := sort.Search(len(h.blocks), func(i int) bool { return h.blocks[i].Addr > addr })
	if i == 0 {
		return Block{}, false
	}
	b := h.blocks[i-1]
	if addr >= b.Addr && addr < b.Addr+b.Size {
		return b, true
	}
	return Block{}, false
}

// LiveBlocks returns a copy of the allocation map, sorted by address.
func (h *Heap) LiveBlocks() []Block {
	return append([]Block(nil), h.blocks...)
}

// HeapState is a self-contained deep copy of the allocator bookkeeping —
// everything a Heap holds besides the backing Memory. All fields are
// exported so the state gob-serializes inside machine snapshots.
type HeapState struct {
	Base     uint32
	Limit    uint32
	Brk      uint32
	Blocks   []Block
	Freelist map[uint32][]uint32
	Allocs   uint64
	Frees    uint64
}

// State captures the allocator bookkeeping. The copy is deep: mutating the
// heap afterwards never changes the returned state.
func (h *Heap) State() HeapState {
	fl := make(map[uint32][]uint32, len(h.freelist))
	for size, list := range h.freelist {
		if len(list) == 0 {
			continue
		}
		fl[size] = append([]uint32(nil), list...)
	}
	return HeapState{
		Base:     h.base,
		Limit:    h.limit,
		Brk:      h.brk,
		Blocks:   append([]Block(nil), h.blocks...),
		Freelist: fl,
		Allocs:   h.allocs,
		Frees:    h.frees,
	}
}

// NewHeapFromState rebuilds an allocator over m from captured bookkeeping.
// The state is copied in, so one HeapState may seed many heaps (the replay
// farm restores every worker from the same snapshot).
func NewHeapFromState(m *Memory, s HeapState) *Heap {
	fl := make(map[uint32][]uint32, len(s.Freelist))
	for size, list := range s.Freelist {
		fl[size] = append([]uint32(nil), list...)
	}
	return &Heap{
		mem:      m,
		base:     s.Base,
		limit:    s.Limit,
		brk:      s.Brk,
		blocks:   append([]Block(nil), s.Blocks...),
		freelist: fl,
		allocs:   s.Allocs,
		frees:    s.Frees,
	}
}
