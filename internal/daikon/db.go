package daikon

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
)

// DB is an invariant database: every invariant that held in all observed
// normal executions, indexed by the instruction where it is checked.
// Community members upload their local DBs to the central server, which
// merges them into the community-wide database (§3.1) — an invariant
// survives the merge only if it holds on every member that observed its
// variables.
type DB struct {
	ByID map[string]*Invariant
	// VarsSeen records how many times each variable was observed; the
	// merge rules need to distinguish "member never saw this variable"
	// (invariant survives) from "member saw it but the invariant did not
	// hold" (invariant dies).
	VarsSeen map[VarID]uint64

	byPC map[uint32][]*Invariant // derived index, rebuilt as needed
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{ByID: make(map[string]*Invariant), VarsSeen: make(map[VarID]uint64)}
}

// Add inserts or replaces an invariant.
func (db *DB) Add(inv *Invariant) {
	db.ByID[inv.ID()] = inv
	db.byPC = nil
}

// Remove deletes an invariant by ID.
func (db *DB) Remove(id string) {
	delete(db.ByID, id)
	db.byPC = nil
}

// Len returns the number of invariants.
func (db *DB) Len() int { return len(db.ByID) }

func (db *DB) index() {
	if db.byPC != nil {
		return
	}
	db.byPC = make(map[uint32][]*Invariant)
	for _, inv := range db.ByID {
		pc := inv.PC()
		db.byPC[pc] = append(db.byPC[pc], inv)
	}
	for _, list := range db.byPC {
		sort.Slice(list, func(i, j int) bool { return list[i].ID() < list[j].ID() })
	}
}

// At returns the invariants checked at the instruction at pc, in stable
// order. SP-offset invariants are excluded (they are auxiliary).
func (db *DB) At(pc uint32) []*Invariant {
	db.index()
	var out []*Invariant
	for _, inv := range db.byPC[pc] {
		if inv.Kind != KindSPOffset {
			out = append(out, inv)
		}
	}
	return out
}

// SPOffsetAt returns the stack-pointer offset invariant at pc, if one was
// learned: spEntry = spHere + delta.
func (db *DB) SPOffsetAt(pc uint32) (delta uint32, ok bool) {
	db.index()
	for _, inv := range db.byPC[pc] {
		if inv.Kind == KindSPOffset {
			return uint32(inv.Bound), true
		}
	}
	return 0, false
}

// All returns every invariant sorted by ID (stable iteration for tests and
// reports).
func (db *DB) All() []*Invariant {
	out := make([]*Invariant, 0, len(db.ByID))
	for _, inv := range db.ByID {
		out = append(out, inv)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// CountByKind returns how many invariants of each kind the DB holds.
func (db *DB) CountByKind() map[Kind]int {
	out := make(map[Kind]int)
	for _, inv := range db.ByID {
		out[inv.Kind]++
	}
	return out
}

// observedAllVars reports whether the DB's member observed every variable
// the invariant mentions.
func (db *DB) observedAllVars(inv *Invariant) bool {
	if _, ok := db.VarsSeen[inv.Var]; !ok {
		return false
	}
	if inv.Kind == KindLessThan {
		_, ok := db.VarsSeen[inv.Var2]
		return ok
	}
	return true
}

// Merge folds another member's database into this one, implementing the
// community-wide semantics: the result contains exactly the invariants
// that hold across all executions on all contributing members.
func (db *DB) Merge(other *DB, maxOneOf int) {
	if maxOneOf <= 0 {
		maxOneOf = DefaultMaxOneOf
	}
	// Invariants present here but contradicted by the other member.
	for id, inv := range db.ByID {
		o, ok := other.ByID[id]
		if ok {
			switch inv.Kind {
			case KindOneOf:
				merged := unionSorted(inv.Values, o.Values)
				if len(merged) > maxOneOf {
					delete(db.ByID, id)
					continue
				}
				inv.Values = merged
			case KindLowerBound:
				if o.Bound < inv.Bound {
					inv.Bound = o.Bound
				}
			case KindSPOffset:
				if o.Bound != inv.Bound {
					delete(db.ByID, id)
					continue
				}
			case KindNonzero:
				// Both members saw the variable only nonzero; keep the
				// witness of smaller magnitude so enforcement stays the
				// gentlest observed constant.
				if closerToZero(uint32(o.Bound), uint32(inv.Bound)) {
					inv.Bound = o.Bound
				}
			case KindModulus:
				// The community-wide congruence is the coarsest one both
				// members' observations satisfy: modulus gcd(m1, m2,
				// r1 - r2 in Z/2^32), dead if that collapses below 2. The
				// residue distance is the unsigned mod-2^32 difference,
				// matching Holds's arithmetic; both inputs divide 2^32
				// (the engine folds 2^32 into its gcd), so the result
				// does too.
				m1, r1 := inv.Modulus()
				m2, r2 := o.Modulus()
				m := gcd(gcd(uint64(m1), uint64(m2)), uint64(r1-r2))
				if m < 2 {
					delete(db.ByID, id)
					continue
				}
				inv.Values = []uint32{uint32(m), r1 % uint32(m)}
			}
			inv.Samples += o.Samples
			continue
		}
		if other.observedAllVars(inv) {
			// The other member saw the variables but did not infer the
			// invariant: it does not hold community-wide.
			delete(db.ByID, id)
		}
	}
	// Invariants only in the other member's DB survive if we never
	// observed their variables.
	for id, o := range other.ByID {
		if _, ok := db.ByID[id]; ok {
			continue
		}
		if !db.observedAllVars(o) {
			cp := *o
			db.ByID[id] = &cp
		}
	}
	for v, n := range other.VarsSeen {
		db.VarsSeen[v] += n
	}
	db.byPC = nil
}

func unionSorted(a, b []uint32) []uint32 {
	out := make([]uint32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// Marshal serializes the database (gob) for upload to the central server.
func (db *DB) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	payload := dbWire{ByID: db.ByID, VarsSeen: db.VarsSeen}
	if err := gob.NewEncoder(&buf).Encode(payload); err != nil {
		return nil, fmt.Errorf("daikon: marshal: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalDB parses a serialized database.
func UnmarshalDB(b []byte) (*DB, error) {
	var payload dbWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&payload); err != nil {
		return nil, fmt.Errorf("daikon: unmarshal: %w", err)
	}
	db := NewDB()
	if payload.ByID != nil {
		db.ByID = payload.ByID
	}
	if payload.VarsSeen != nil {
		db.VarsSeen = payload.VarsSeen
	}
	return db, nil
}

type dbWire struct {
	ByID     map[string]*Invariant
	VarsSeen map[VarID]uint64
}
