package core

import (
	"time"

	"repro/internal/replay"
)

// replayFastPath advances the failure case at failPC as far as the
// recorded failing run allows, without waiting for live recurrences.
//
// The live state machine needs one execution per transition: run 1
// detects, runs 2–3 observe the checking patches, and runs 4+ try one
// candidate repair each. Because the machine is deterministic, every one
// of those subsequent executions of the *same* input is already implied by
// the recording — so the fast path performs them now, offline:
//
//  1. While the case is checking, the recording is replayed under the
//     checking patches, feeding the same observation stream the live runs
//     would produce, until the configured number of failing check runs is
//     reached and correlations are classified.
//  2. Once candidate repairs exist, the farm replays the recording under
//     every candidate concurrently and feeds the verdicts into the
//     evaluator. Candidates under which the recorded failure recurs (or
//     the replay crashes) are discarded before ever being deployed live;
//     the best survivor is deployed for the next live execution.
//
// The next live presentation then runs with the winning repair in place —
// ClearView converges in two presentations of a deterministic exploit
// instead of 4+, and the unsuccessful candidates never reach production.
//
// If a replay fails to reproduce the recorded detection (a nondeterministic
// environment would do this; our machine only stops reproducing when the
// checking patches themselves perturb the failure), the fast path abandons
// the case and the live pipeline continues exactly as in the paper.
func (cv *ClearView) replayFastPath(rec *replay.Recording, failPC uint32) {
	fc := cv.cases[failPC]
	if fc == nil {
		return
	}
	rp := cv.conf.Replay
	start := time.Now()
	defer func() { fc.Metrics.ReplayTime += time.Since(start) }()

	if rp.VetRecordings {
		vsp := cv.tr.Start("vet")
		farm := &replay.Farm{Workers: rp.Workers, Deadline: rp.Deadline, Obs: cv.tr}
		err := farm.Vet(rec)
		vsp.Finish()
		if err != nil {
			fc.Metrics.VetRejects++
			cv.tr.Counter("core.vet_rejects").Inc()
			return
		}
		fc.Metrics.ReplayRuns++
	}

	// Phase 1: compress the runs-2/3 checking phase.
	for fc.State == StateChecking && fc.CheckSet.DetectedRuns() < cv.conf.CheckRuns {
		fc.CheckSet.StartRun()
		res, err := rec.Replay(fc.CheckSet.Patches, fc.ID)
		if err != nil {
			fc.CheckSet.EndRun(false)
			return
		}
		detected := res.Failure != nil && res.Failure.PC == fc.PC
		fc.CheckSet.EndRun(detected)
		fc.Metrics.ReplayRuns++
		if !detected {
			return // replay no longer reproduces: fall back to live runs
		}
		fc.Metrics.CheckRuns++
		if fc.CheckSet.DetectedRuns() >= cv.conf.CheckRuns {
			cv.finishChecking(fc)
		}
	}

	// Phase 2: compress the run-4+ candidate exploration.
	if fc.State != StateEvaluating || fc.Evaluator == nil || len(fc.Repairs) == 0 {
		return
	}
	fsp := cv.tr.Start("farm")
	farm := &replay.Farm{Workers: rp.Workers, Deadline: rp.Deadline, Obs: cv.tr}
	wait := fsp.Block("farm.fanout")
	verdicts := farm.Evaluate(rec, fc.ID, fc.Repairs)
	wait()
	fsp.Finish()
	survivors := replay.Apply(verdicts, fc.Evaluator)
	applied := 0
	for i := range verdicts {
		if verdicts[i].Err == "" {
			applied++
		}
	}
	fc.Metrics.ReplayRuns += len(verdicts)
	fc.Metrics.ReplayDiscards += applied - survivors
	if fc.Evaluator.Exhausted() {
		fc.State = StateUnrepaired
		fc.Current = nil
		return
	}
	fc.Current = fc.Evaluator.Best()
}
