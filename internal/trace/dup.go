package trace

import (
	"repro/internal/daikon"
	"repro/internal/isa"
	"repro/internal/vm"
)

// Duplicate-variable elimination (§2.2.4): ClearView statically analyzes
// each basic block to find distinct variables that always hold the same
// value — register copies, values just loaded, unmodified re-reads — and
// keeps only the earliest occurrence. The front end performs the analysis
// at instrumentation time, so duplicate slots are simply never observed
// (the paper reports the optimization halves the number of inferred
// invariants and the associated checking cost).
//
// The analysis is a per-block forward value-numbering over registers: a
// register becomes "known" when first observed or when written by a pure
// data movement (register copy, load, pop); any arithmetic write or
// implicit modification invalidates it. Memory is not tracked — two loads
// from one address stay distinct variables — which keeps the analysis
// conservative in the presence of aliasing.

// dupSlots returns, for each instruction of the block, which slot
// observations are statically known duplicates of an earlier variable.
func dupSlots(b *vm.Block) [][]bool {
	known := map[isa.Reg]bool{}
	out := make([][]bool, len(b.Insts))
	for i, in := range b.Insts {
		slots := isa.Slots(in)
		dup := make([]bool, len(slots))
		for si, sp := range slots {
			switch sp.Kind {
			case isa.SlotRegA, isa.SlotRegB, isa.SlotRegX:
				if known[sp.Reg] {
					dup[si] = true
				} else {
					// First observation of this register value becomes
					// the canonical variable.
					known[sp.Reg] = true
				}
			}
		}
		out[i] = dup
		applyWriteEffects(in, known)
	}
	return out
}

// applyWriteEffects updates register knowledge after one instruction.
func applyWriteEffects(in isa.Inst, known map[isa.Reg]bool) {
	invalidate := func(r isa.Reg) { delete(known, r) }
	switch in.Op {
	case isa.MOVRR:
		// Pure copy: A now holds B's (just-observed) value.
		known[in.A] = true
	case isa.LOAD, isa.LOADB, isa.LOADA, isa.POP:
		// A holds exactly the value observed at this instruction's
		// memval slot.
		known[in.A] = true
		if in.Op == isa.POP {
			invalidate(isa.ESP)
		}
	case isa.MOVRI, isa.LEA,
		isa.ADDRR, isa.ADDRI, isa.SUBRR, isa.SUBRI, isa.MULRR, isa.MULRI,
		isa.DIVRR, isa.MODRR,
		isa.ANDRR, isa.ANDRI, isa.ORRR, isa.ORRI, isa.XORRR, isa.XORRI,
		isa.SHLRI, isa.SHRRI, isa.SARRI, isa.SEXTB:
		invalidate(in.A)
	case isa.PUSH, isa.PUSHI:
		invalidate(isa.ESP)
	case isa.CALL, isa.CALLR, isa.CALLM, isa.RET:
		invalidate(isa.ESP)
		invalidate(isa.EAX)
	case isa.SYS:
		invalidate(isa.EAX)
	case isa.COPYB:
		invalidate(isa.ECX)
		invalidate(isa.ESI)
		invalidate(isa.EDI)
	}
}

// observedSlots returns the slot indices to record for instruction i of
// the block, honouring duplicate elimination unless disabled.
func (r *Recorder) observedSlots(dups [][]bool, i int, in isa.Inst) []int {
	slots := isa.Slots(in)
	out := make([]int, 0, len(slots))
	for si := range slots {
		if !r.DisableDupElim && dups[i][si] {
			continue
		}
		out = append(out, si)
	}
	return out
}

// Obs re-exported convenience for tests.
type Obs = daikon.Obs
