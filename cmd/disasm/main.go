// Command disasm inspects the protected application's stripped binary: it
// lists the label map (a build-time artifact — the binary itself carries
// no symbols) or disassembles the code around an address. It is the
// debugging companion to failure locations reported by the monitors.
//
//	disasm                  list all labels
//	disasm 0x4010b8         disassemble around an address
package main

import (
	"fmt"
	"os"
	"strconv"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/webapp"
)

func main() {
	app, err := webapp.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, "disasm:", err)
		os.Exit(1)
	}
	if len(os.Args) < 2 {
		for _, name := range asm.SortedLabels(app.Labels) {
			fmt.Printf("%08x  %s\n", app.Labels[name], name)
		}
		return
	}
	target64, err := strconv.ParseUint(os.Args[1], 0, 32)
	if err != nil {
		fmt.Fprintln(os.Stderr, "disasm: bad address:", err)
		os.Exit(1)
	}
	target := uint32(target64)
	if !app.Image.Contains(target) {
		fmt.Fprintf(os.Stderr, "disasm: %#x outside code [%#x,%#x)\n",
			target, app.Image.Base, app.Image.End())
		os.Exit(1)
	}

	var best string
	var bestAddr uint32
	for name, addr := range app.Labels {
		if addr <= target && addr > bestAddr {
			bestAddr, best = addr, name
		}
	}
	fmt.Printf("%#x is %s+%d\n\n", target, best, target-bestAddr)

	off := int(target - app.Image.Base)
	lo := off - 4*isa.InstSize
	if lo < 0 {
		lo = 0
	}
	hi := off + 6*isa.InstSize
	if hi > len(app.Image.Code) {
		hi = len(app.Image.Code)
	}
	for _, line := range asm.Disassemble(app.Image.Code[lo:hi], app.Image.Base+uint32(lo)) {
		fmt.Println(line)
	}
}
