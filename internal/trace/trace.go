// Package trace implements the Daikon x86-style front end (§2.2.1): it
// instruments instructions as their basic blocks enter the code cache and
// records, each time they execute, the values of the operands they read and
// the addresses they compute. The recorded data is buffered per run and
// committed to the inference engine only if the run ends normally, so that
// erroneous executions never contaminate the invariant database (§3.1).
//
// A Recorder can be restricted to a region of the application (a predicate
// over instruction addresses); this is the mechanism behind the community's
// amortized distributed learning (§3.1), where each member traces only a
// small randomly chosen part of every running application.
package trace

import (
	"repro/internal/daikon"
	"repro/internal/isa"
	"repro/internal/vm"
)

type spObs struct {
	pc    uint32
	delta uint32
}

// Recorder is the learning front end. It is a vm.Plugin and may be shared
// across sequential runs; per-run buffers are committed or discarded via
// CommitRun / DiscardRun.
type Recorder struct {
	Engine *daikon.Engine
	// Filter restricts instrumentation to instructions for which it
	// returns true; nil instruments everything.
	Filter func(pc uint32) bool
	// DisableDupElim turns off static duplicate-variable elimination
	// (ablation knob; see dup.go).
	DisableDupElim bool

	passes  [][]daikon.Obs
	curPass []daikon.Obs
	spBuf   []spObs

	entrySPs []uint32
	obsCount uint64
}

// NewRecorder returns a front end feeding the given engine.
func NewRecorder(engine *daikon.Engine) *Recorder {
	return &Recorder{Engine: engine}
}

// Name implements vm.Plugin.
func (r *Recorder) Name() string { return "daikon-frontend" }

// Observations returns the cumulative number of trace entries recorded
// (the learning-overhead benchmarks report this).
func (r *Recorder) Observations() uint64 { return r.obsCount }

func (r *Recorder) traced(pc uint32) bool {
	return r.Filter == nil || r.Filter(pc)
}

// Instrument implements vm.Plugin.
func (r *Recorder) Instrument(_ *vm.VM, b *vm.Block) {
	dups := dupSlots(b)
	for i := range b.Insts {
		in := b.Insts[i]
		pc := b.Addrs[i]

		if i == 0 {
			// Entering the block starts a new pass: pair relations are
			// tracked only within one pass (same-basic-block
			// restriction).
			b.AddHook(i, vm.PrioTrace, func(ctx *vm.Ctx) error {
				r.closePass()
				return nil
			})
		}

		// Call/return bookkeeping keeps the procedure-entry stack-pointer
		// stack consistent even through untraced regions. It runs at a
		// priority after the observation hook: the observation at a call
		// or return instruction belongs to the procedure containing it,
		// so the entry-SP stack must still reflect that procedure when
		// the stack-pointer offset is recorded.
		const prioBookkeeping = vm.PrioTrace + 1
		switch {
		case in.Op.IsCall():
			b.AddHook(i, prioBookkeeping, func(ctx *vm.Ctx) error {
				r.lazyInit(ctx)
				r.entrySPs = append(r.entrySPs, ctx.Reg(isa.ESP)-4)
				return nil
			})
		case in.Op == isa.RET:
			b.AddHook(i, prioBookkeeping, func(ctx *vm.Ctx) error {
				if len(r.entrySPs) > 1 {
					r.entrySPs = r.entrySPs[:len(r.entrySPs)-1]
				}
				return nil
			})
		}

		if !r.traced(pc) {
			continue
		}
		observe := r.observedSlots(dups, i, in)
		pcCopy := pc
		b.AddHook(i, vm.PrioTrace, func(ctx *vm.Ctx) error {
			r.lazyInit(ctx)
			for _, si := range observe {
				val, err := ctx.EvalSlot(si)
				if err != nil {
					// The observed address is unmapped; the instruction
					// is about to fault. Record nothing for this slot.
					continue
				}
				r.curPass = append(r.curPass, daikon.Obs{
					Var: daikon.VarID{PC: pcCopy, Slot: uint8(si)},
					Val: val,
				})
				r.obsCount++
			}
			entry := r.entrySPs[len(r.entrySPs)-1]
			r.spBuf = append(r.spBuf, spObs{pc: pcCopy, delta: entry - ctx.Reg(isa.ESP)})
			return nil
		})
	}
}

func (r *Recorder) lazyInit(ctx *vm.Ctx) {
	if len(r.entrySPs) == 0 {
		r.entrySPs = append(r.entrySPs, ctx.Reg(isa.ESP))
	}
}

func (r *Recorder) closePass() {
	if len(r.curPass) > 0 {
		r.passes = append(r.passes, r.curPass)
		r.curPass = nil
	}
}

// CommitRun feeds the buffered observations of a completed normal run into
// the inference engine and resets per-run state.
func (r *Recorder) CommitRun() {
	r.closePass()
	for _, p := range r.passes {
		r.Engine.ObserveBlockPass(p)
	}
	for _, s := range r.spBuf {
		r.Engine.ObserveSP(s.pc, s.delta)
	}
	r.reset()
}

// DiscardRun drops the buffered observations (the run was erroneous).
func (r *Recorder) DiscardRun() { r.reset() }

func (r *Recorder) reset() {
	r.passes = nil
	r.curPass = nil
	r.spBuf = nil
	r.entrySPs = nil
}
