package redteam

// This file builds the Blue Team's page corpora (§4.2.2):
//
//   - LearningCorpus: the twelve web pages used to seed the invariant
//     database before the exercise. Each page exercises every element
//     handler with varied parameters and varied preceding allocations, so
//     that invariants over incidental values (heap addresses, element
//     offsets, free-ranging counters) overflow the one-of limit and die,
//     while the stable properties (call targets, sign bounds, size
//     orderings) survive.
//   - ExpandedCorpus: the learning suite extension of §4.3.2 that adds
//     coverage of the unicode buffer-growth path, which the default
//     corpus never exercises — the reconfiguration that makes exploit
//     325403 repairable.
//   - EvaluationPages: the Red Team's 57 legitimate pages used for the
//     repair-quality (bit-identical display) and false-positive
//     evaluations.

// LearningPages returns the default twelve-page corpus as separate pages.
func LearningPages() [][]byte {
	pages := make([][]byte, 12)
	for k := 0; k < 12; k++ {
		pages[k] = learningPage(k)
	}
	return pages
}

// LearningCorpus returns the default corpus as one input (one browser
// session navigating the twelve pages, accumulating heap state so every
// handler sees shifted allocation addresses page over page).
func LearningCorpus() []byte {
	return Input(LearningPages()...)
}

// ExpandedCorpus returns the §4.3.2 expanded learning suite: the default
// corpus plus pages that exercise the unicode growth path.
func ExpandedCorpus() []byte {
	pages := LearningPages()
	pages = append(pages, growPages()...)
	return Input(pages...)
}

func learningPage(k int) []byte {
	p := NewPage()

	// Padding text: shifts element offsets and heap layout per page.
	p.Text(string(bytesOfLen(3+2*k, k)))

	// GIF with in-range extension offsets (0..11; twelve distinct values
	// so the offset's one-of overflows and only the lower bound survives)
	// and varied extension bytes.
	ext := [4]byte{}
	copy(ext[:], bytesOfLen(4, 13*k+5))
	p.Gif(byte(2+k), byte(3+k), int8(k%12), ext)

	// Script scenarios; fixed slot assignments (0..6).
	p.Create(0, TypeDoc)
	p.SetProp(0, 2, uint32(65+k)) // legitimate property write (field 2)
	p.Invoke290(0)

	p.Create(1, TypeNode)
	p.Invoke295(1)

	p.Create(2, TypeDoc)
	p.Invoke312(2)
	p.GCFree(2) // truly unreferenced afterwards: benign use of the defect op

	p.Create(3, TypeList)
	p.FreeClr(3)
	p.Fresh(4) // recycles the list block, still validly formed
	p.Invoke269(4)

	p.Create(5, TypeList)
	p.FreeClr(5)
	p.Fresh(6)
	p.Invoke320(6)

	// HOST: hyphen-free names of varied length, ordered padding pairs,
	// positive priorities.
	pads := [6]byte{
		byte(1 + k), byte(4 + k), // p1 <= p2
		byte(2 + k), byte(4 + k), // q1 <= q2
		byte(k), byte(k + 1), // r1 <= r2
	}
	name := bytesOfLen(10+k, 3*k+1)
	p.Host(int8(1+k%10), pads, name)

	// UNI on the fast path only: needed = 2*count <= 48 < 64.
	cnt := byte(2 + 2*k)
	p.Uni(cnt, uint32(100+k), bytesOfLen(int(cnt)*2, k+7))

	// STR: lengths 1..9 with both (trailer < len) and (trailer > len)
	// combinations so no accidental pair invariant forms.
	r := byte(1 + k%9)
	ln := byte(1 + (k+4)%9)
	var sdata [9]byte
	copy(sdata[:], bytesOfLen(9, k+11))
	p.Str(r+ln, r, sdata)

	// ARR clones with indices 0..3.
	p.Arr(0, int8(k%4))
	p.Arr(1, int8((k+1)%4))
	p.Arr(2, int8((k+2)%4))

	// SCALE: twelve distinct bias bytes whose divisors (bias - 8) span
	// both signs — the divisor's lower bound goes negative (so zero
	// satisfies it) and its one-of overflows; only the nonzero invariant
	// pins the defect. Scaled values: gcd-1 spacing so no accidental
	// modulus forms on the raw byte.
	p.Scale(byte(17+(k*13)%97), scaleBiases[k])

	// WALK: two reads at strides 4,8,...,48 — twelve distinct multiples
	// of four kill the one-of and leave the alignment modulus (≡0 mod 4)
	// as the only survivor on the stride and offset.
	p.Walk(2, byte(4*(k+1)))

	// LOOP: counts 5..16 and step bytes 4..15 (strides -12..-1). Every
	// raw byte stays inside the learned bounds under the step-16 attack;
	// only the computed stride's nonzero invariant corrects it.
	p.Loop(byte(5+k), byte(4+k))

	return p.Build()
}

// scaleBiases are the twelve learning bias bytes of the SCALE element:
// divisors bias-8 ∈ {-7..-1, 1, 2, 4, 8, 16}, never zero, mixed sign,
// pairwise differences with gcd 1.
var scaleBiases = [12]byte{1, 2, 3, 4, 5, 6, 7, 9, 10, 12, 16, 24}

// growPages exercises the unicode growth path with counts and growth
// sizes chosen so that needed <= newCap always holds, both orderings of
// (needed, growSize) occur, and every incidental one-of overflows.
func growPages() [][]byte {
	type combo struct {
		count byte
		grow  uint32
	}
	combos := []combo{
		{33, 80}, {60, 152}, {35, 88}, {40, 96}, {45, 104},
		{50, 112}, {55, 120}, {58, 128}, {36, 136}, {34, 144},
	}
	var pages [][]byte
	for i := 0; i < len(combos); i += 2 {
		p := NewPage()
		p.Text(string(bytesOfLen(3+2*i, i))) // shift layout per page
		for j := i; j < i+2 && j < len(combos); j++ {
			c := combos[j]
			p.Uni(c.count, c.grow, bytesOfLen(int(c.count)*2, j))
		}
		pages = append(pages, p.Build())
	}
	return pages
}

// EvaluationPages returns the Red Team's 57 legitimate evaluation pages,
// each a separate navigation input.
func EvaluationPages() [][]byte {
	pages := make([][]byte, 57)
	for j := 0; j < 57; j++ {
		p := NewPage()
		p.Text(string(bytesOfLen(1+j%40, j)))
		if j%2 == 0 {
			ext := [4]byte{}
			copy(ext[:], bytesOfLen(4, j+17))
			p.Gif(byte(1+j%7), byte(1+j%5), int8(j%6), ext)
		}
		switch j % 3 {
		case 0:
			p.Create(byte(j%8), TypeDoc)
			p.Invoke290(byte(j % 8))
		case 1:
			p.Create(byte(j%8), TypeNode)
			p.Invoke295(byte(j % 8))
		case 2:
			p.Create(byte(j%8), TypeList)
			p.FreeClr(byte(j % 8))
			p.Fresh(byte((j + 1) % 8))
			p.Invoke269(byte((j + 1) % 8))
		}
		pads := [6]byte{byte(1 + j%6), byte(7 + j%6), byte(2 + j%5), byte(8 + j%5), byte(j % 4), byte(1 + j%4)}
		p.Host(int8(1+j%9), pads, bytesOfLen(8+j%14, j+3))
		cnt := byte(2 + j%28)
		p.Uni(cnt, uint32(90+j), bytesOfLen(int(cnt)*2, j+29))
		r := byte(1 + j%9)
		ln := byte(1 + (j+5)%9)
		var sdata [9]byte
		copy(sdata[:], bytesOfLen(9, j+41))
		p.Str(r+ln, r, sdata)
		p.Arr(j%3, int8(j%4))
		// Extended elements, inside every learned envelope: nonzero
		// divisors, word-multiple strides, negative loop strides.
		p.Scale(byte(17+j%80), scaleBiases[j%12])
		p.Walk(2, byte(4*(1+j%12)))
		p.Loop(byte(5+j%12), byte(4+j%12))
		pages[j] = p.Build()
	}
	return pages
}
