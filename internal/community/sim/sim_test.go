package sim

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/community"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/redteam"
	"repro/internal/webapp"
)

// simSoakConfig assembles the same small red-team soak the live
// community tests run (soak_test.go's soakConfig, rebuilt over the
// exported API): four attacks spanning the paper defects and both
// extended failure classes, three benign pages, six rounds.
func simSoakConfig(t testing.TB, app *webapp.App, nodes int, batched bool) community.SoakConfig {
	t.Helper()
	db, _, err := core.Learn(app.Image, core.LearnConfig{
		Inputs: [][]byte{redteam.LearningCorpus()},
	})
	if err != nil {
		t.Fatal(err)
	}
	var attacks []community.SoakAttack
	for _, id := range []string{"290162", "312278", "div-zero", "hang-loop"} {
		var ex redteam.Exploit
		found := false
		for _, cand := range redteam.AllExploits() {
			if cand.Bugzilla == id {
				ex, found = cand, true
				break
			}
		}
		if !found {
			t.Fatalf("unknown exploit %s", id)
		}
		attacks = append(attacks, community.SoakAttack{
			Label: ex.Bugzilla, Input: redteam.AttackInput(app, ex, 0),
		})
	}
	return community.SoakConfig{
		Image:           app.Image,
		Seed:            db,
		BootstrapInputs: [][]byte{redteam.LearningCorpus()},
		StackScope:      1,
		Nodes:           nodes,
		Rounds:          6,
		Attacks:         attacks,
		Benign:          redteam.EvaluationPages()[:3],
		Batched:         batched,
	}
}

// strip removes the per-run telemetry snapshot (the one report section
// that legitimately differs: the simulator meters extra sim.* stages
// and its spans cover different wall time) so the rest of the report
// can be compared wholesale.
func strip(rep *community.SoakReport) community.SoakReport {
	out := *rep
	out.Obs = nil
	return out
}

// TestSimMatchesGoroutineSoak is the equivalence oracle: for the same
// configuration, the discrete-event simulation must produce the same
// SoakReport — adoption tables, quarantine sets, learn-DB outcome,
// message counts, convergence rounds — as the goroutine-per-node
// RunSoak, byte for byte. Three shapes: the hierarchical 24-node
// churn-and-adversaries soak, a flat per-message 24-node soak (the
// protocol's other shipping mode), and a 100-node hierarchical soak
// with early stopping.
func TestSimMatchesGoroutineSoak(t *testing.T) {
	app := webapp.MustBuild()
	cases := []struct {
		name  string
		conf  func() community.SoakConfig
		nodes int
	}{
		{"hier-churn-24", func() community.SoakConfig {
			conf := simSoakConfig(t, app, 24, true)
			conf.Aggregators = 3
			conf.Adversaries = 2
			conf.Churn = &community.ChurnConfig{CrashPerRound: 1, JoinPerRound: 1, AggregatorCrashRound: 3}
			return conf
		}, 24},
		{"flat-permsg-24", func() community.SoakConfig {
			return simSoakConfig(t, app, 24, false)
		}, 24},
		{"hier-100", func() community.SoakConfig {
			conf := simSoakConfig(t, app, 100, true)
			conf.Aggregators = 8
			conf.Adversaries = 4
			return conf
		}, 100},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			live, err := community.RunSoak(tc.conf())
			if err != nil {
				t.Fatal(err)
			}
			simRep, err := Run(tc.conf())
			if err != nil {
				t.Fatal(err)
			}
			if !live.Converged {
				t.Fatalf("live soak did not converge: %+v", live)
			}
			if got, want := strip(&simRep.SoakReport), strip(live); !reflect.DeepEqual(got, want) {
				t.Fatalf("sim diverged from live soak:\nsim:  %+v\nlive: %+v", got, want)
			}
			if simRep.MemoHits == 0 {
				t.Fatal("execution memo never hit; the cohort deduplication is not engaged")
			}
			t.Logf("%s: %d events, virtual time %d, %d memo hits / %d misses / %d genuine runs",
				tc.name, simRep.Events, simRep.VirtualTime, simRep.MemoHits, simRep.MemoMisses, simRep.GenuineRuns)
		})
	}
}

// stripChaosTiming additionally zeroes the counters wall-clock can
// legitimately inflate in a live chaos run: when a manager batch apply
// outlasts the receive window, the aggregator re-sends the same
// FlushSeq-numbered batch on the same connection (and a node re-sends a
// slow Hello in place). The manager applies each flush at most once, so
// those re-sends change no state — but their count depends on how slow
// the hardware is, which virtual time abstracts away. Everything else —
// adoption tables, quarantine sets, learn DB, churn, failovers,
// reconnects, dropped envelopes — must still match exactly.
func stripChaosTiming(rep community.SoakReport) community.SoakReport {
	rep.Messages = 0
	rep.Batches = 0
	rep.Retries = 0
	rep.ReplayLogEntries = 0
	return rep
}

// TestSimMatchesGoroutineSoakChaos is the oracle's hostile arm: the
// chaos schedule (drops, delays, duplicates, disconnects, partitions),
// a replicated root with a mid-campaign leader crash, and churn — the
// live chaos soak's exact configuration. Stream numbering inside the
// simulator replicates the live dial order, so the seeded fault
// schedule hits the same envelopes in both runs (the test proves it by
// comparing every chaos.* fault counter) and the state-level reports
// match; see stripChaosTiming for the one carve-out.
func TestSimMatchesGoroutineSoakChaos(t *testing.T) {
	app := webapp.MustBuild()
	conf := func() community.SoakConfig {
		conf := simSoakConfig(t, app, 24, true)
		conf.Aggregators = 3
		conf.Adversaries = 2
		conf.Chaos = community.DefaultChaos(1)
		conf.RootReplicas = 1
		conf.Churn = &community.ChurnConfig{CrashPerRound: 1, JoinPerRound: 1, RootCrashRound: 3}
		conf.Retry = &community.RetryPolicy{Seed: 1, RecvTimeout: 100 * time.Millisecond}
		conf.Obs = obs.New()
		return conf
	}
	live, err := community.RunSoak(conf())
	if err != nil {
		t.Fatal(err)
	}
	simRep, err := Run(conf())
	if err != nil {
		t.Fatal(err)
	}
	if !live.Converged {
		t.Fatalf("live chaos soak did not converge: %+v", live)
	}
	if live.DroppedEnvelopes == 0 || live.Retries == 0 {
		t.Fatalf("chaos never fired in the live run: %+v", live)
	}
	// The seeded fault schedules must have fired identically: every
	// injected-fault class, same count on both sides.
	for _, c := range []string{"chaos.dropped", "chaos.delayed", "chaos.duplicated", "chaos.disconnects", "chaos.partitioned"} {
		if l, s := live.Obs.Counter(c), simRep.Obs.Counter(c); l != s {
			t.Fatalf("fault schedules diverged: %s fired %d live vs %d simulated", c, l, s)
		}
	}
	got := stripChaosTiming(strip(&simRep.SoakReport))
	want := stripChaosTiming(strip(live))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("chaos sim diverged from live soak:\nsim:  %+v\nlive: %+v", got, want)
	}
	if simRep.Messages > live.Messages {
		t.Fatalf("sim manager saw more envelopes (%d) than live (%d); slow-reply re-sends only ever add",
			simRep.Messages, live.Messages)
	}
}

// TestSimRejectsParallelShapes: the parallel soak shapes have no
// simulated analog and must be refused, not silently serialized.
func TestSimRejectsParallelShapes(t *testing.T) {
	app := webapp.MustBuild()
	conf := simSoakConfig(t, app, 8, true)
	conf.ParallelMembers = true
	if _, err := Run(conf); err == nil {
		t.Fatal("ParallelMembers accepted")
	}
	conf.ParallelMembers = false
	conf.ParallelFlush = true
	if _, err := Run(conf); err == nil {
		t.Fatal("ParallelFlush accepted")
	}
}
