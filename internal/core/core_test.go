package core

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/daikon"
	"repro/internal/image"
	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/vm"
)

func buildImage(t testing.TB, build func(a *asm.Assembler)) (*image.Image, map[string]uint32) {
	t.Helper()
	a := asm.New(0x1000)
	build(a)
	code, labels, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	entry, ok := labels["main"]
	if !ok {
		entry = 0x1000
	}
	return &image.Image{Base: 0x1000, Entry: entry, Code: code}, labels
}

// learn runs the inputs under the Daikon front end and returns the
// invariant database (only normal runs contribute).
func learn(t testing.TB, im *image.Image, inputs [][]byte) *daikon.DB {
	t.Helper()
	eng := daikon.NewEngine()
	rec := trace.NewRecorder(eng)
	for _, in := range inputs {
		machine, err := vm.New(vm.Config{Image: im, Plugins: []vm.Plugin{rec}, Input: in})
		if err != nil {
			t.Fatal(err)
		}
		if res := machine.Run(); res.Outcome == vm.OutcomeExit {
			rec.CommitRun()
		} else {
			rec.DiscardRun()
		}
	}
	return eng.Finalize(daikon.Options{})
}

// underflowProgram reads one page byte "idx", computes off = idx - 5, and
// stores into a 16-byte heap block at [buf + off*4]. Learning inputs use
// idx 5..8 (off 0..3); the exploit uses idx 4 (off -1), which lands on the
// block's front canary — a Heap Guard failure whose correcting invariant is
// the lower bound off >= 0 at the store.
func underflowProgram(t testing.TB) (*image.Image, map[string]uint32) {
	return buildImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.Sys(isa.SysInAvail)
		a.CmpRI(isa.EAX, 0)
		a.Je("done")
		a.MovRI(isa.EAX, 8)
		a.Sys(isa.SysAlloc)
		a.MovRR(isa.ESI, isa.EAX) // page buffer
		a.MovRI(isa.ECX, 1)
		a.Sys(isa.SysRead)
		a.MovRI(isa.EAX, 16)
		a.Sys(isa.SysAlloc)
		a.MovRR(isa.EDI, isa.EAX) // target block
		a.Call("render")
		a.Jmp("main")
		a.Label("done")
		a.MovRI(isa.EAX, 0)
		a.Sys(isa.SysExit)

		a.Label("render")
		a.LoadB(isa.EDX, asm.M(isa.ESI, 0)) // idx
		a.SubRI(isa.EDX, 5)                 // off = idx - 5
		a.MovRI(isa.EBX, 0x7777)
		a.Label("store")
		a.Store(asm.MX(isa.EDI, isa.EDX, 2, 0), isa.EBX)
		// Report the rendered cell (the "display").
		a.Lea(isa.EAX, asm.MX(isa.EDI, isa.EDX, 2, 0))
		a.MovRI(isa.ECX, 4)
		a.Sys(isa.SysWrite)
		a.Ret()
	})
}

func underflowClearView(t testing.TB, stackScope int) (*ClearView, map[string]uint32) {
	t.Helper()
	im, labels := underflowProgram(t)
	db := learn(t, im, [][]byte{{5}, {6}, {7}, {8}})
	cv, err := New(Config{
		Image: im, Invariants: db, StackScope: stackScope,
		MemoryFirewall: true, HeapGuard: true, ShadowStack: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cv, labels
}

func TestPipelineRepairsHeapUnderflowInFourPresentations(t *testing.T) {
	cv, labels := underflowClearView(t, 1)
	attack := []byte{4}

	// Presentation 1: detection, candidate selection, checks built.
	res := cv.Execute(attack)
	if res.Outcome != vm.OutcomeFailure || res.Failure.Monitor != "HeapGuard" {
		t.Fatalf("presentation 1: %+v", res)
	}
	fc := cv.Case(labels["store"])
	if fc == nil {
		t.Fatalf("no case at store site; cases: %+v", cv.Cases())
	}
	if fc.State != StateChecking {
		t.Fatalf("state after detection = %v", fc.State)
	}
	if fc.Metrics.CandidateCount == 0 {
		t.Fatal("no candidate invariants selected")
	}

	// Presentations 2-3: invariant checking runs.
	for i := 0; i < 2; i++ {
		if res := cv.Execute(attack); res.Outcome != vm.OutcomeFailure {
			t.Fatalf("check run %d: %+v", i, res)
		}
	}
	if fc.State != StateEvaluating {
		t.Fatalf("state after check runs = %v", fc.State)
	}
	if fc.Metrics.RepairCount == 0 {
		t.Fatal("no repairs generated")
	}

	// Presentation 4: the deployed repair corrects the error — the run
	// survives the attack and continues.
	res = cv.Execute(attack)
	if res.Outcome != vm.OutcomeExit {
		t.Fatalf("presentation 4: %+v (repair %s)", res, fc.CurrentRepairID())
	}
	if fc.State != StatePatched {
		t.Fatalf("state = %v, want patched", fc.State)
	}
	if !cv.Protected() {
		t.Error("Protected() = false after adoption")
	}
}

func TestPatchedApplicationStillCorrectOnLegitimateInputs(t *testing.T) {
	cv, _ := underflowClearView(t, 1)
	attack := []byte{4}
	for i := 0; i < 4; i++ {
		cv.Execute(attack)
	}
	if !cv.Protected() {
		t.Fatal("not protected after 4 presentations")
	}
	// Autoimmune check: legitimate pages render identically with the
	// patch in place (the repair only acts when the invariant is
	// violated).
	legit := []byte{6}
	patched := cv.Execute(legit)
	if patched.Outcome != vm.OutcomeExit {
		t.Fatalf("legit input failed: %+v", patched)
	}
	im, _ := underflowProgram(t)
	bare, _ := vm.New(vm.Config{Image: im, Input: legit})
	want := bare.Run()
	if string(patched.Output) != string(want.Output) {
		t.Errorf("display differs: patched %x vs bare %x", patched.Output, want.Output)
	}
}

func TestNoFalsePositives(t *testing.T) {
	cv, _ := underflowClearView(t, 1)
	for _, b := range []byte{5, 6, 7, 8} {
		if res := cv.Execute([]byte{b}); res.Outcome != vm.OutcomeExit {
			t.Fatalf("legit input %d: %+v", b, res)
		}
	}
	if len(cv.Cases()) != 0 || cv.PatchesGenerated != 0 {
		t.Errorf("patch mechanism triggered by legitimate inputs: %d cases, %d patches",
			len(cv.Cases()), cv.PatchesGenerated)
	}
}

// typeConfusionProgram dispatches through a heap object's first word
// (vtable-style). Pages: [tag]. Legitimate tags 0..9 vary enough that
// learning infers no one-of on the raw input byte (K overflow), leaving
// the call-site one-of as the correcting invariant. Tag 0xEE overwrites
// the function pointer with a heap address (simulating the unchecked-type
// defects). The known handler dereferences the object's second word, which
// the exploit leaves pointing at unmapped memory, so the set-value repair
// crashes; skipping the call survives.
func typeConfusionProgram(t testing.TB) (*image.Image, map[string]uint32) {
	return buildImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.Sys(isa.SysInAvail)
		a.CmpRI(isa.EAX, 0)
		a.Je("done")
		a.MovRI(isa.EAX, 8)
		a.Sys(isa.SysAlloc)
		a.MovRR(isa.ESI, isa.EAX) // page buffer
		a.MovRI(isa.ECX, 1)
		a.Sys(isa.SysRead)
		// Build the object: 8 bytes [fnptr][dataptr].
		a.MovRI(isa.EAX, 8)
		a.Sys(isa.SysAlloc)
		a.MovRR(isa.EDI, isa.EAX)
		a.MovLabel(isa.EBX, "handler")
		a.Store(asm.M(isa.EDI, 0), isa.EBX)
		a.Lea(isa.EBX, asm.M(isa.EDI, 0)) // valid data pointer: the object itself
		a.Store(asm.M(isa.EDI, 4), isa.EBX)
		a.LoadB(isa.EDX, asm.M(isa.ESI, 0))
		a.CmpRI(isa.EDX, 0xEE)
		a.Jne("dispatch")
		// The defect: attacker-controlled corruption of the object.
		a.Store(asm.M(isa.EDI, 0), isa.EDI) // fnptr -> heap (injected code)
		a.MovRI(isa.EBX, 0x0BAD0000)        // dataptr -> unmapped
		a.Store(asm.M(isa.EDI, 4), isa.EBX)
		a.Label("dispatch")
		a.Label("site")
		a.CallM(asm.M(isa.EDI, 0))
		a.Jmp("main")
		a.Label("done")
		a.MovRI(isa.EAX, 0)
		a.Sys(isa.SysExit)

		a.Label("handler")
		a.Load(isa.ECX, asm.M(isa.EDI, 4)) // data pointer
		a.Load(isa.EBX, asm.M(isa.ECX, 0)) // crashes if dataptr unmapped
		a.MovRR(isa.EAX, isa.ESI)
		a.MovRI(isa.ECX, 1)
		a.Sys(isa.SysWrite)
		a.Ret()
	})
}

func TestPipelineTriesSecondRepairAfterCrash(t *testing.T) {
	im, labels := typeConfusionProgram(t)
	db := learn(t, im, [][]byte{{0}, {1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}, {9}})
	cv, err := New(Config{
		Image: im, Invariants: db, StackScope: 1,
		MemoryFirewall: true, HeapGuard: true, ShadowStack: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	attack := []byte{0xEE}

	// Presentation 1: Memory Firewall blocks the injected-code call.
	res := cv.Execute(attack)
	if res.Outcome != vm.OutcomeFailure || res.Failure.Monitor != "MemoryFirewall" {
		t.Fatalf("presentation 1: %+v", res)
	}
	fc := cv.Case(labels["site"])
	if fc == nil {
		t.Fatal("no case at call site")
	}

	// Presentations 2-3: checking runs.
	cv.Execute(attack)
	cv.Execute(attack)
	if fc.State != StateEvaluating {
		t.Fatalf("state = %v", fc.State)
	}

	// Presentation 4: first repair = set-value (call the known handler).
	// The corrupted object makes the handler crash; the evaluator must
	// demote it.
	first := fc.CurrentRepairID()
	res = cv.Execute(attack)
	if res.Outcome != vm.OutcomeCrash {
		t.Fatalf("presentation 4 should crash under set-value repair: %+v", res)
	}
	if fc.CurrentRepairID() == first {
		t.Fatal("crashing repair not demoted")
	}
	if fc.Metrics.Unsuccessful != 1 {
		t.Errorf("unsuccessful runs = %d", fc.Metrics.Unsuccessful)
	}

	// Presentation 5: skip-call survives.
	res = cv.Execute(attack)
	if res.Outcome != vm.OutcomeExit {
		t.Fatalf("presentation 5: %+v (repair %s)", res, fc.CurrentRepairID())
	}
	if fc.State != StatePatched {
		t.Fatalf("state = %v", fc.State)
	}

	// The adopted patch also protects immediately on replay.
	if res := cv.Execute(attack); res.Outcome != vm.OutcomeExit {
		t.Fatalf("replay under adopted patch: %+v", res)
	}
}

func TestAdoptedPatchDemotedIfItStopsWorking(t *testing.T) {
	// Once adopted, patches keep being evaluated; a later failure at the
	// same location demotes the repair and resumes the search.
	cv, labels := underflowClearView(t, 1)
	attack := []byte{4}
	for i := 0; i < 4; i++ {
		cv.Execute(attack)
	}
	fc := cv.Case(labels["store"])
	if fc == nil || fc.State != StatePatched {
		t.Fatal("setup: not patched")
	}
	cur := fc.Current
	cur.Successes = 0 // neutralize accumulated credit for the test
	fc.Evaluator.RecordFailure(cur.Repair.ID())
	cv.redeploy(fc)
	if fc.State == StatePatched && fc.Current == cur {
		t.Error("failed repair kept deployed")
	}
}

func TestCaseWithNoInvariantsIsUnrepaired(t *testing.T) {
	// An empty invariant database: detection works, repair is impossible,
	// and the monitors keep blocking (availability via DoS, not repair).
	im, labels := underflowProgram(t)
	cv, err := New(Config{
		Image: im, Invariants: daikon.NewDB(),
		MemoryFirewall: true, HeapGuard: true, ShadowStack: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	attack := []byte{4}
	for i := 0; i < 3; i++ {
		if res := cv.Execute(attack); res.Outcome != vm.OutcomeFailure {
			t.Fatalf("attack not blocked: %+v", res)
		}
	}
	fc := cv.Case(labels["store"])
	if fc == nil || fc.State != StateUnrepaired {
		t.Fatalf("case = %+v", fc)
	}
}

func TestSharedCFGDatabaseAcrossRuns(t *testing.T) {
	im, _ := underflowProgram(t)
	db := learn(t, im, [][]byte{{5}})
	shared := cfg.NewDB(im)
	cv, err := New(Config{
		Image: im, Invariants: db, CFG: shared,
		MemoryFirewall: true, HeapGuard: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cv.Execute([]byte{5})
	if len(shared.Procs()) == 0 {
		t.Error("shared CFG database not populated")
	}
}
