package community

import (
	"strings"
	"testing"

	"repro/internal/webapp"
)

// TestSoak1000NodesChurnAdversaries is the headline community soak: a
// thousand nodes behind 32 aggregators, 5% of them adversarial, under
// continuous node churn and an aggregator failover. The community must
// converge to one adopted repair per defect and hold that agreement
// across the whole schedule, quarantine every adversary, and never let a
// quarantined node drive an adoption — while the central manager handles
// at least 5x fewer envelopes than the flat topology's analytic floor of
// two per node per round.
//
// The soak is sequential and deterministic; it is skipped in -short mode
// and under the race detector (the smaller soaks in this package provide
// identical coverage there at a fraction of the cost).
func TestSoak1000NodesChurnAdversaries(t *testing.T) {
	if testing.Short() {
		t.Skip("1,000-node soak skipped in -short mode")
	}
	if raceDetectorEnabled {
		t.Skip("1,000-node soak skipped under the race detector")
	}
	app := webapp.MustBuild()
	conf := soakConfig(t, app, 1000, true)
	conf.Aggregators = 32
	conf.Adversaries = 50
	conf.Churn = &ChurnConfig{CrashPerRound: 10, JoinPerRound: 5, AggregatorCrashRound: 3}
	conf.Rounds = 5

	rep, err := RunSoak(conf)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("1,000-node soak did not converge: %+v", rep)
	}
	for _, d := range rep.Defects {
		if !d.Converged || d.Adopted == "" {
			t.Fatalf("defect %s did not converge: %+v", d.Label, d)
		}
		if d.Agree != rep.Defects[0].Agree {
			t.Fatalf("defects disagree on eligible population: %d vs %d", d.Agree, rep.Defects[0].Agree)
		}
	}
	// Eligible population at the final round: 1000 nodes − 50 adversaries
	// − CrashPerRound crashed that round + every join so far.
	if want := 1000 - 50 - conf.Churn.CrashPerRound + rep.Joins; rep.Defects[0].Agree != want {
		t.Fatalf("final agreement %d, want %d eligible nodes", rep.Defects[0].Agree, want)
	}

	if len(rep.Quarantined) != conf.Adversaries {
		t.Fatalf("quarantined %d nodes, want all %d adversaries", len(rep.Quarantined), conf.Adversaries)
	}
	for _, id := range rep.Quarantined {
		if !strings.HasPrefix(id, "adv") {
			t.Fatalf("honest node %q quarantined", id)
		}
	}
	if rep.QuarantinedAdoptions != 0 {
		t.Fatalf("%d adoptions driven by quarantined nodes", rep.QuarantinedAdoptions)
	}

	if rep.Crashes == 0 || rep.Rejoins == 0 || rep.Joins == 0 || rep.AggregatorFailovers != 1 {
		t.Fatalf("churn schedule did not execute: %+v", rep)
	}

	// The flat star costs at least two manager envelopes per node per
	// round (a sync and a batch); the hierarchy must beat that floor 5x.
	flatFloor := 2 * rep.Nodes * rep.RoundsRun
	if rep.Messages*5 > flatFloor {
		t.Fatalf("manager handled %d envelopes; flat floor is %d (< 5x reduction)", rep.Messages, flatFloor)
	}
	t.Logf("1,000 nodes: %d manager envelopes over %d rounds (flat floor %d, %.0fx), %d quarantined, agree=%d",
		rep.Messages, rep.RoundsRun, flatFloor, float64(flatFloor)/float64(rep.Messages),
		len(rep.Quarantined), rep.Defects[0].Agree)
}
