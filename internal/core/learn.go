package core

import (
	"repro/internal/cfg"
	"repro/internal/daikon"
	"repro/internal/image"
	"repro/internal/trace"
	"repro/internal/vm"
)

// LearnConfig controls a learning campaign (§2.2, §3.1).
type LearnConfig struct {
	// Inputs are the learning workloads; each is one execution.
	Inputs [][]byte
	// Repeat re-runs every input this many times (default 1).
	Repeat int
	// Filter restricts tracing to a region (amortized community
	// learning); nil traces everything.
	Filter func(pc uint32) bool
	// Options are the inference ablation knobs.
	Options daikon.Options
	// CFG, when non-nil, accumulates the discovered control flow graphs
	// (shared with the ClearView instance that will use the DB).
	CFG *cfg.DB
	// MaxSteps bounds each learning run.
	MaxSteps uint64
}

// LearnStats reports what a learning campaign did.
type LearnStats struct {
	Runs          int
	NormalRuns    int
	Discarded     int // erroneous executions excluded from the database
	Observations  uint64
	StepsTraced   uint64
	StepsBaseline uint64 // same workloads without instrumentation
}

// Learn runs the inputs under the Daikon front end and returns the learned
// invariant database. Erroneous executions (crashes, monitor failures) are
// discarded, matching §3.1.
func Learn(img *image.Image, conf LearnConfig) (*daikon.DB, LearnStats, error) {
	if conf.Repeat <= 0 {
		conf.Repeat = 1
	}
	eng := daikon.NewEngine()
	rec := trace.NewRecorder(eng)
	rec.Filter = conf.Filter

	var stats LearnStats
	for r := 0; r < conf.Repeat; r++ {
		for _, input := range conf.Inputs {
			plugins := []vm.Plugin{rec}
			if conf.CFG != nil {
				plugins = append([]vm.Plugin{cfg.NewPlugin(conf.CFG)}, plugins...)
			}
			machine, err := vm.New(vm.Config{
				Image: img, Plugins: plugins, Input: input, MaxSteps: conf.MaxSteps,
			})
			if err != nil {
				return nil, stats, err
			}
			res := machine.Run()
			stats.Runs++
			stats.StepsTraced += res.Steps
			if res.Outcome == vm.OutcomeExit && res.ExitCode == 0 {
				stats.NormalRuns++
				rec.CommitRun()
			} else {
				stats.Discarded++
				rec.DiscardRun()
			}
		}
	}
	stats.Observations = rec.Observations()
	return eng.Finalize(conf.Options), stats, nil
}
