package redteam

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/daikon"
	"repro/internal/replay"
	"repro/internal/vm"
	"repro/internal/webapp"
)

// OverheadRow is one configuration's cost in the Table 2 reproduction.
type OverheadRow struct {
	Config   string
	Wall     time.Duration
	Steps    uint64
	HookRuns uint64
	Ratio    float64 // wall time relative to the bare configuration

	// Interpreter-throughput view of the same measurement: simulated
	// instructions per wall-clock second and nanoseconds per simulated
	// instruction. These are the numbers the flat-page-table/TLB/linked-
	// dispatch work moves, so the overhead table doubles as the perf
	// trajectory's end-to-end readout.
	InstrPerSec float64
	NsPerInstr  float64
}

// finalize fills the derived columns of a measured row set: ratios are
// relative to the first (bare) row.
func finalizeRows(rows []OverheadRow) {
	base := rows[0].Wall
	for i := range rows {
		rows[i].Ratio = float64(rows[i].Wall) / float64(base)
		if rows[i].Wall > 0 && rows[i].Steps > 0 {
			rows[i].InstrPerSec = float64(rows[i].Steps) / rows[i].Wall.Seconds()
			rows[i].NsPerInstr = float64(rows[i].Wall.Nanoseconds()) / float64(rows[i].Steps)
		}
	}
}

// monitorConfig names one Table 2 row's monitor set.
type monitorConfig struct {
	name string
	mons replay.Monitors
	// trace is the vm.Config.TraceThreshold for this row (0 = the
	// default trace tier; vm.TraceDisabled pins the row to the per-step
	// interpreter so the table prices the superblock tier).
	trace int
}

// table2Configs are the rows of Table 2 (§4.4.2): the paper's five
// configurations plus the full extended detector set, so the table also
// prices the arithmetic-fault and hang detectors (whose cost is confined
// to faultable instructions and the dispatch loop respectively).
func table2Configs() []monitorConfig {
	return []monitorConfig{
		{name: "Bare application"},
		{name: "Bare application (trace JIT off)", trace: vm.TraceDisabled},
		{name: "Memory Firewall", mons: replay.Monitors{MemoryFirewall: true}},
		{name: "Memory Firewall + Shadow Stack", mons: replay.Monitors{MemoryFirewall: true, ShadowStack: true}},
		{name: "Memory Firewall + Heap Guard", mons: replay.Monitors{MemoryFirewall: true, HeapGuard: true}},
		{name: "Memory Firewall + Heap Guard + Shadow Stack",
			mons: replay.Monitors{MemoryFirewall: true, HeapGuard: true, ShadowStack: true}},
		{name: "All detectors (+ Fault Guard + Hang Guard)", mons: replay.AllMonitors()},
	}
}

func runUnderConfig(app *webapp.App, input []byte, mc monitorConfig, patches []*vm.Patch) (vm.RunResult, error) {
	plugins, shadow, hang := mc.mons.Plugins()
	machine, err := vm.New(vm.Config{Image: app.Image, Input: input, Plugins: plugins, Patches: patches,
		TraceThreshold: mc.trace})
	if err != nil {
		return vm.RunResult{}, err
	}
	if shadow != nil {
		shadow.Install(machine)
	}
	if hang != nil {
		hang.Install(machine)
	}
	return machine.Run(), nil
}

// measureConfig loads the evaluation pages repeats times under one
// monitor configuration (plus optional deployed patches) and returns the
// accumulated row (derived columns unset).
func measureConfig(app *webapp.App, pages [][]byte, mc monitorConfig, patches []*vm.Patch, repeats int) (OverheadRow, error) {
	row := OverheadRow{Config: mc.name}
	start := time.Now()
	for r := 0; r < repeats; r++ {
		for i, page := range pages {
			res, err := runUnderConfig(app, page, mc, patches)
			if err != nil {
				return row, err
			}
			if res.Outcome != vm.OutcomeExit {
				return row, fmt.Errorf("page %d failed under %q: %v", i, mc.name, res.Outcome)
			}
			row.Steps += res.Steps
			row.HookRuns += res.HookRuns
		}
	}
	row.Wall = time.Since(start)
	return row, nil
}

// MeasureTable2 loads the 57 evaluation pages under each monitor
// configuration (the page-load workload of §4.4.2) and reports the
// relative overheads. repeats > 1 smooths wall-clock noise.
func MeasureTable2(app *webapp.App, repeats int) ([]OverheadRow, error) {
	if repeats <= 0 {
		repeats = 1
	}
	pages := EvaluationPages()
	// One discarded sweep warms the process (allocator, code paths)
	// before the bare row is timed; without it the first-measured
	// configuration absorbs the warmup cost and the ratios invert.
	if _, err := measureConfig(app, pages, table2Configs()[0], nil, 1); err != nil {
		return nil, err
	}
	var rows []OverheadRow
	for _, mc := range table2Configs() {
		row, err := measureConfig(app, pages, mc, nil, repeats)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	finalizeRows(rows)
	return rows, nil
}

// MeasureOverheadWithPatch extends the Table 2 measurement with the
// paper's third deployment state: the fully monitored application running
// with an adopted repair patch installed. The patch is generated the real
// way — a single-exploit campaign (290162) runs until ClearView adopts a
// repair — and then deployed on the page-load workload, so the table
// answers "unmonitored vs monitored vs patched" from one command.
func MeasureOverheadWithPatch(s *Setup, repeats int) ([]OverheadRow, error) {
	rows, err := MeasureTable2(s.App, repeats)
	if err != nil {
		return nil, err
	}

	var target *Exploit
	for _, ex := range Exploits() {
		if ex.Bugzilla == "290162" {
			e := ex
			target = &e
			break
		}
	}
	if target == nil {
		return nil, fmt.Errorf("overhead: exploit 290162 not in corpus")
	}
	cv, err := s.ClearView(target.NeedsStackScope)
	if err != nil {
		return nil, err
	}
	res := RunSingleVariant(cv, s.App, *target, 24)
	if !res.Patched {
		return nil, fmt.Errorf("overhead: campaign did not adopt a repair for %s", target.Bugzilla)
	}
	var patches []*vm.Patch
	for _, fc := range cv.Cases() {
		if fc.Current != nil {
			patches = append(patches, fc.Current.Repair.BuildPatches(fc.ID)...)
		}
	}
	if len(patches) == 0 {
		return nil, fmt.Errorf("overhead: no deployed patch after successful campaign")
	}

	mc := monitorConfig{
		name: "All detectors + adopted repair",
		mons: replay.AllMonitors(),
	}
	if repeats <= 0 {
		repeats = 1
	}
	// The repair campaign above leaves allocator/GC state that would
	// inflate the patched row relative to the monitor rows measured under
	// steady state; one discarded sweep restores comparability.
	if _, err := measureConfig(s.App, EvaluationPages(), mc, patches, 1); err != nil {
		return nil, err
	}
	row, err := measureConfig(s.App, EvaluationPages(), mc, patches, repeats)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)
	finalizeRows(rows)
	return rows, nil
}

// LearningOverhead reports the cost of running the learning corpus with
// the Daikon front end enabled versus disabled (§4.4.1: the paper measured
// a factor of ~300; the structure — instrumentation dominating run time —
// is what this reproduces).
type LearningOverhead struct {
	BareWall     time.Duration
	LearnWall    time.Duration
	Ratio        float64
	Observations uint64
	Invariants   int
}

// MeasureLearningOverhead runs the default corpus bare and under learning.
func MeasureLearningOverhead(app *webapp.App, repeats int) (LearningOverhead, error) {
	if repeats <= 0 {
		repeats = 1
	}
	corpus := LearningCorpus()
	var out LearningOverhead

	start := time.Now()
	for r := 0; r < repeats; r++ {
		machine, err := vm.New(vm.Config{Image: app.Image, Input: corpus})
		if err != nil {
			return out, err
		}
		if res := machine.Run(); res.Outcome != vm.OutcomeExit {
			return out, fmt.Errorf("bare corpus run failed: %v", res.Outcome)
		}
	}
	out.BareWall = time.Since(start)

	start = time.Now()
	var db *daikon.DB
	var stats core.LearnStats
	for r := 0; r < repeats; r++ {
		var err error
		db, stats, err = core.Learn(app.Image, core.LearnConfig{Inputs: [][]byte{corpus}})
		if err != nil {
			return out, err
		}
	}
	out.LearnWall = time.Since(start)
	out.Ratio = float64(out.LearnWall) / float64(out.BareWall)
	out.Observations = stats.Observations
	out.Invariants = db.Len()
	return out, nil
}

// PrintTable2 renders overhead rows, including the interpreter-throughput
// columns (instructions/second and ns/instruction) that make the table a
// before/after perf readout as well as the paper's ratio story.
func PrintTable2(w io.Writer, rows []OverheadRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ClearView Configuration\tTime\tRatio\tInstrs\tInstrs/sec\tns/instr\tHook runs")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%d\t%.2fM\t%.1f\t%d\n",
			r.Config, r.Wall.Round(time.Microsecond), r.Ratio,
			r.Steps, r.InstrPerSec/1e6, r.NsPerInstr, r.HookRuns)
	}
	tw.Flush()
}
